// proto_fuzz — mutational protocol fuzz harness for steersimd
// (docs/SERVICE.md §Failure modes).
//
//   $ proto_fuzz [--frames N] [--seed S] [--socket PATH]
//
// Self-hosts a SimService + SocketServer on a private socket, then throws
// N seeded mutations of valid protocol frames at it: bit flips, span
// deletions/duplications, junk insertion, digit-run inflation (the
// "max_cycles": 99999... classics), truncation, frame concatenation and
// embedded newlines. The contract under test is the server's worst-case
// posture, not its parser's taste: for EVERY mutant the daemon must
// either answer a typed error / normal reply or cleanly drop the
// connection — never crash, never wedge. Each iteration chases the
// mutant with a uniquely-id'd ping on the same connection; because the
// server answers frames in order, seeing that pong proves the mutant was
// fully digested. EOF counts as a clean drop. Only a deadline expiry
// (hang) or a dead server fails the run, with the offending iteration,
// seed and mutant bytes printed for replay.
//
// Exit codes: 0 all mutants handled, 1 hang/crash detected, 2 usage.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "svc/protocol.hpp"

#if !defined(_WIN32)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <thread>

#include "svc/server.hpp"
#include "svc/service.hpp"
#endif

using namespace steersim;
using namespace steersim::svc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--frames N] [--seed S] [--socket PATH]\n",
               argv0);
  return 2;
}

/// Valid frames the mutator starts from — every request kind except
/// shutdown (the fuzz run must outlive its own inputs).
std::vector<std::string> build_corpus() {
  std::vector<std::string> corpus;
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = "corpus-ping";
  corpus.push_back(ping.to_json());
  Request stats;
  stats.type = RequestType::kStats;
  corpus.push_back(stats.to_json());
  Request submit;
  submit.type = RequestType::kSubmit;
  submit.id = "corpus-submit";
  submit.kernel = "fib";
  submit.max_cycles = 1000;
  corpus.push_back(submit.to_json());
  submit.kernel = "";
  submit.asm_source = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
  submit.policy = "oracle";
  submit.wall_ms = 50;
  submit.config.emplace_back("fetch_width", 4.0);
  corpus.push_back(submit.to_json());
  Request knobs;
  knobs.type = RequestType::kSubmit;
  knobs.kernel = "crc_mix";
  knobs.interval = 64;
  knobs.confirm = 2;
  knobs.lookahead = true;
  knobs.seed = 7;
  corpus.push_back(knobs.to_json());
  return corpus;
}

/// Applies 1-3 random mutations drawn from the classic mutational-fuzz
/// menu. May return an empty string (total truncation) — still a legal
/// thing to throw at a server.
std::string mutate(const std::vector<std::string>& corpus, Xoshiro256& rng) {
  std::string frame = corpus[static_cast<std::size_t>(
      rng.next_below(corpus.size()))];
  const std::uint64_t rounds = 1 + rng.next_below(3);
  for (std::uint64_t round = 0; round < rounds; ++round) {
    switch (rng.next_below(8)) {
      case 0: {  // bit flip
        if (frame.empty()) {
          break;
        }
        const std::size_t pos =
            static_cast<std::size_t>(rng.next_below(frame.size()));
        frame[pos] = static_cast<char>(
            static_cast<unsigned char>(frame[pos]) ^
            (1u << rng.next_below(8)));
        break;
      }
      case 1: {  // delete a span
        if (frame.empty()) {
          break;
        }
        const std::size_t start =
            static_cast<std::size_t>(rng.next_below(frame.size()));
        const std::size_t len = 1 + static_cast<std::size_t>(rng.next_below(
                                        frame.size() - start));
        frame.erase(start, len);
        break;
      }
      case 2: {  // duplicate a span
        if (frame.empty()) {
          break;
        }
        const std::size_t start =
            static_cast<std::size_t>(rng.next_below(frame.size()));
        const std::size_t len =
            1 + static_cast<std::size_t>(
                    rng.next_below(std::min<std::size_t>(
                        32, frame.size() - start)));
        frame.insert(start, frame.substr(start, len));
        break;
      }
      case 3: {  // insert junk bytes
        const std::size_t pos = static_cast<std::size_t>(
            rng.next_below(frame.size() + 1));
        std::string junk;
        const std::uint64_t count = 1 + rng.next_below(8);
        for (std::uint64_t j = 0; j < count; ++j) {
          junk += static_cast<char>(rng.next_below(256));
        }
        frame.insert(pos, junk);
        break;
      }
      case 4: {  // inflate a digit run into a huge number
        const std::size_t digit = frame.find_first_of("0123456789");
        if (digit == std::string::npos) {
          break;
        }
        std::size_t end = digit;
        while (end < frame.size() &&
               frame[end] >= '0' && frame[end] <= '9') {
          ++end;
        }
        std::string huge = "9";
        const std::uint64_t digits = 1 + rng.next_below(30);
        for (std::uint64_t d = 0; d < digits; ++d) {
          huge += static_cast<char>('0' + rng.next_below(10));
        }
        frame.replace(digit, end - digit, huge);
        break;
      }
      case 5: {  // truncate
        frame.resize(static_cast<std::size_t>(
            rng.next_below(frame.size() + 1)));
        break;
      }
      case 6: {  // concatenate another corpus frame (framing confusion)
        frame += corpus[static_cast<std::size_t>(
            rng.next_below(corpus.size()))];
        break;
      }
      case 7: {  // embed a newline (splits into two bogus frames)
        const std::size_t pos = static_cast<std::size_t>(
            rng.next_below(frame.size() + 1));
        frame.insert(pos, 1, '\n');
        break;
      }
    }
  }
  return frame;
}

}  // namespace

#if defined(_WIN32)

int main(int, char**) {
  std::fprintf(stderr,
               "proto_fuzz: Unix domain sockets unavailable; skipping\n");
  return 0;
}

#else

namespace {

int connect_to(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data.data(), data.size());
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

enum class Outcome { kSurvived, kDropped, kHang };

/// Reads replies until the chaser pong (or EOF / the deadline). The pong
/// id is matched as a substring of any reply line, which is robust even
/// if earlier mutant-triggered replies interleave.
Outcome await_pong(int fd, const std::string& pong_id, int deadline_ms) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) {
        break;
      }
      const std::string_view line(buffer.data() + start, newline - start);
      if (line.find(pong_id) != std::string_view::npos) {
        return Outcome::kSurvived;
      }
      start = newline + 1;
    }
    buffer.erase(0, start);
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, deadline_ms);
    if (ready < 0 && errno == EINTR) {
      continue;
    }
    if (ready == 0) {
      return Outcome::kHang;
    }
    if (ready < 0) {
      return Outcome::kDropped;
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return Outcome::kDropped;  // clean close is an acceptable answer
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

void dump_mutant(const std::string& mutant) {
  std::fprintf(stderr, "mutant (%zu bytes):", mutant.size());
  for (const char c : mutant) {
    std::fprintf(stderr, " %02x", static_cast<unsigned char>(c));
  }
  std::fprintf(stderr, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t frames = 10'000;
  std::uint64_t seed = 1;
  std::string socket_path;
  for (int a = 1; a < argc; ++a) {
    const auto flag_u64 = [&](std::uint64_t& out) {
      if (a + 1 >= argc) {
        return false;
      }
      const auto value = parse_positive_u64(argv[++a]);
      if (!value) {
        return false;
      }
      out = *value;
      return true;
    };
    if (std::strcmp(argv[a], "--frames") == 0) {
      if (!flag_u64(frames)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[a], "--seed") == 0) {
      if (!flag_u64(seed)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[a], "--socket") == 0) {
      if (a + 1 >= argc) {
        return usage(argv[0]);
      }
      socket_path = argv[++a];
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) {
    socket_path =
        "/tmp/steersim-fuzz-" + std::to_string(::getpid()) + ".sock";
  }

  // Small budgets keep even a mutant that parses into a *valid* submit
  // cheap; a short idle timeout exercises the slowloris guard too.
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 16;
  config.cache_entries = 128;
  config.default_max_cycles = 2'000;
  config.max_cycles_ceiling = 20'000;
  SimService service(config);
  ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.idle_timeout_ms = 2'000;
  SocketServer server(service, server_options);
  if (!server.listen()) {
    return 1;
  }
  std::jthread serve_thread([&server] { server.serve(); });

  const std::vector<std::string> corpus = build_corpus();
  Xoshiro256 rng(seed);
  std::uint64_t survived = 0;
  std::uint64_t dropped = 0;
  constexpr int kDeadlineMs = 5'000;

  for (std::uint64_t i = 0; i < frames; ++i) {
    const int fd = connect_to(socket_path);
    if (fd < 0) {
      std::fprintf(stderr,
                   "proto_fuzz: FAIL at iteration %llu: cannot connect "
                   "(server died?)\n",
                   static_cast<unsigned long long>(i));
      return 1;
    }
    const std::string mutant = mutate(corpus, rng);
    const std::string pong_id = "fz-" + std::to_string(i);
    Request chaser;
    chaser.type = RequestType::kPing;
    chaser.id = pong_id;
    // Terminate the mutant with our own newline so the chaser is always
    // its own frame, whatever the mutant did to its framing.
    const bool sent = send_all(fd, mutant) && send_all(fd, "\n") &&
                      send_all(fd, chaser.to_json() + "\n");
    const Outcome outcome =
        sent ? await_pong(fd, pong_id, kDeadlineMs) : Outcome::kDropped;
    ::close(fd);
    switch (outcome) {
      case Outcome::kSurvived:
        ++survived;
        break;
      case Outcome::kDropped:
        ++dropped;
        break;
      case Outcome::kHang:
        std::fprintf(stderr,
                     "proto_fuzz: FAIL at iteration %llu (seed %llu): no "
                     "reply within %d ms\n",
                     static_cast<unsigned long long>(i),
                     static_cast<unsigned long long>(seed), kDeadlineMs);
        dump_mutant(mutant);
        return 1;
    }
  }

  // Clean shutdown proves the daemon is still fully in control.
  const int fd = connect_to(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "proto_fuzz: FAIL: server gone at shutdown\n");
    return 1;
  }
  Request shutdown_request;
  shutdown_request.type = RequestType::kShutdown;
  shutdown_request.id = "fz-shutdown";
  send_all(fd, shutdown_request.to_json() + "\n");
  const Outcome outcome = await_pong(fd, "fz-shutdown", kDeadlineMs);
  ::close(fd);
  serve_thread.join();
  if (outcome == Outcome::kHang) {
    std::fprintf(stderr, "proto_fuzz: FAIL: shutdown hung\n");
    return 1;
  }
  std::printf("proto_fuzz: %llu mutants, %llu answered, %llu dropped, "
              "0 hangs (seed %llu)\n",
              static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(survived),
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(seed));
  return 0;
}

#endif  // !defined(_WIN32)
