// Regenerates the committed RV32 ELF fixture binaries from the encoder
// arrays in src/workload/rv32_fixtures.cpp:
//
//   $ ./tools/make_fixtures [output_dir]      (default tests/fixtures)
//
// The ELF builder is fully deterministic, so regeneration is a no-op
// unless the fixture programs themselves changed; the encoder self-test
// in tests/test_elf_loader.cpp fails when the committed bytes and the
// arrays disagree, which is the cue to rerun this tool and commit.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "workload/rv32_fixtures.hpp"

using namespace steersim;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/fixtures";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  int failures = 0;
  for (const Rv32Fixture& fx : rv32_fixture_library()) {
    const std::vector<std::uint8_t> image = rv32_fixture_elf(fx);
    const std::string path = dir + "/" + fx.name + ".elf";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out ||
        !out.write(reinterpret_cast<const char*>(image.data()),
                   static_cast<std::streamsize>(image.size()))) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      ++failures;
      continue;
    }
    std::printf("wrote %s (%zu bytes, %zu text words)\n", path.c_str(),
                image.size(), fx.text.size());
  }
  return failures == 0 ? 0 : 1;
}
