// steersim_client — command-line client for steersimd (docs/SERVICE.md).
//
//   $ steersim_client <socket> ping
//   $ steersim_client <socket> stats
//   $ steersim_client <socket> shutdown
//   $ steersim_client <socket> submit --kernel fib [--policy steered]
//       [--max-cycles N] [--interval N] [--confirm N] [--lookahead]
//       [--seed N] [--set knob=value]... [--id ID]
//       [--expect-cache hit|miss] [--expect-error CODE]
//   $ steersim_client <socket> submit --asm-file prog.s ...
//
// Prints the reply line verbatim. Exit codes: 0 success (and every
// --expect assertion held), 1 transport/protocol failure, 2 usage,
// 3 unexpected error reply, 4 an --expect assertion failed — distinct
// codes so CI smoke scripts can assert cache hits and deadline rejects.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/strings.hpp"
#include "svc/protocol.hpp"

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#endif

using namespace steersim;
using namespace steersim::svc;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <socket-path> ping|stats|shutdown\n"
      "       %s <socket-path> submit (--kernel NAME | --asm-file PATH)\n"
      "           [--policy P] [--max-cycles N] [--interval N] [--confirm N]\n"
      "           [--lookahead] [--seed N] [--set knob=value]... [--id ID]\n"
      "           [--expect-cache hit|miss] [--expect-error CODE]\n",
      argv0, argv0);
  return 2;
}

#if !defined(_WIN32)

/// One round trip: connect, send the request line, read one reply line.
int exchange(const std::string& socket_path, const std::string& request_line,
             std::string& reply_line) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", socket_path.c_str());
    return 1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::perror(("connect " + socket_path).c_str());
    ::close(fd);
    return 1;
  }
  const std::string frame = request_line + "\n";
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      std::perror("write");
      ::close(fd);
      return 1;
    }
    sent += static_cast<std::size_t>(n);
  }
  reply_line.clear();
  char chunk[4096];
  while (reply_line.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      std::fprintf(stderr, "connection closed before a reply arrived\n");
      ::close(fd);
      return 1;
    }
    reply_line.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  reply_line.resize(reply_line.find('\n'));
  return 0;
}

#else

int exchange(const std::string&, const std::string&, std::string&) {
  std::fprintf(stderr,
               "steersim_client: Unix domain sockets unavailable on this "
               "platform\n");
  return 1;
}

#endif

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage(argv[0]);
  }
  const std::string socket_path = argv[1];
  const std::string command = argv[2];

  Request request;
  std::string expect_cache;
  std::string expect_error;
  if (command == "ping") {
    request.type = RequestType::kPing;
  } else if (command == "stats") {
    request.type = RequestType::kStats;
  } else if (command == "shutdown") {
    request.type = RequestType::kShutdown;
  } else if (command == "submit") {
    request.type = RequestType::kSubmit;
    for (int a = 3; a < argc; ++a) {
      const auto flag_value = [&](std::string& out) {
        if (a + 1 >= argc) {
          return false;
        }
        out = argv[++a];
        return true;
      };
      const auto flag_u64 = [&](std::uint64_t& out) {
        std::string text;
        if (!flag_value(text)) {
          return false;
        }
        const auto value = parse_positive_u64(text);
        if (!value) {
          return false;
        }
        out = *value;
        return true;
      };
      std::string text;
      if (std::strcmp(argv[a], "--kernel") == 0) {
        if (!flag_value(request.kernel)) {
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--asm-file") == 0) {
        if (!flag_value(text)) {
          return usage(argv[0]);
        }
        std::ifstream file(text);
        if (!file) {
          std::fprintf(stderr, "cannot open '%s'\n", text.c_str());
          return 2;
        }
        std::stringstream buffer;
        buffer << file.rdbuf();
        request.asm_source = buffer.str();
      } else if (std::strcmp(argv[a], "--policy") == 0) {
        if (!flag_value(request.policy)) {
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--max-cycles") == 0) {
        if (!flag_u64(request.max_cycles)) {
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--interval") == 0) {
        if (!flag_u64(request.interval)) {
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--confirm") == 0) {
        if (!flag_u64(request.confirm)) {
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--lookahead") == 0) {
        request.lookahead = true;
      } else if (std::strcmp(argv[a], "--seed") == 0) {
        if (!flag_u64(request.seed)) {
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--set") == 0) {
        if (!flag_value(text)) {
          return usage(argv[0]);
        }
        const std::size_t eq = text.find('=');
        if (eq == std::string::npos || eq == 0) {
          std::fprintf(stderr, "--set expects knob=value, got '%s'\n",
                       text.c_str());
          return 2;
        }
        request.config.emplace_back(text.substr(0, eq),
                                    std::strtod(text.c_str() + eq + 1,
                                                nullptr));
      } else if (std::strcmp(argv[a], "--id") == 0) {
        if (!flag_value(request.id)) {
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--expect-cache") == 0) {
        if (!flag_value(expect_cache)) {
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--expect-error") == 0) {
        if (!flag_value(expect_error)) {
          return usage(argv[0]);
        }
      } else {
        std::fprintf(stderr, "unknown flag '%s'\n", argv[a]);
        return usage(argv[0]);
      }
    }
    if (request.kernel.empty() == request.asm_source.empty()) {
      std::fprintf(stderr,
                   "submit needs exactly one of --kernel / --asm-file\n");
      return 2;
    }
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage(argv[0]);
  }

  std::string reply_line;
  const int transport = exchange(socket_path, request.to_json(), reply_line);
  if (transport != 0) {
    return transport;
  }
  std::printf("%s\n", reply_line.c_str());

  Reply reply;
  std::string parse_error;
  if (!Reply::parse(reply_line, reply, parse_error)) {
    std::fprintf(stderr, "malformed reply: %s\n", parse_error.c_str());
    return 1;
  }
  if (!expect_error.empty()) {
    if (reply.type != ReplyType::kError || reply.code != expect_error) {
      std::fprintf(stderr, "expected error '%s', got %s reply%s%s\n",
                   expect_error.c_str(),
                   std::string(reply_type_name(reply.type)).c_str(),
                   reply.code.empty() ? "" : " with code ",
                   reply.code.c_str());
      return 4;
    }
    return 0;
  }
  if (reply.type == ReplyType::kError) {
    std::fprintf(stderr, "error reply: %s (%s)\n", reply.code.c_str(),
                 reply.message.c_str());
    return 3;
  }
  if (!expect_cache.empty() && reply.cache != expect_cache) {
    std::fprintf(stderr, "expected cache '%s', got '%s'\n",
                 expect_cache.c_str(), reply.cache.c_str());
    return 4;
  }
  return 0;
}
