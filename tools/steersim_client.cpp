// steersim_client — command-line client for steersimd (docs/SERVICE.md).
//
//   $ steersim_client <socket> ping
//   $ steersim_client <socket> stats
//   $ steersim_client <socket> shutdown
//   $ steersim_client <socket> submit --kernel fib [--policy steered]
//       [--max-cycles N] [--wall-ms N] [--interval N] [--confirm N]
//       [--lookahead] [--seed N] [--set knob=value]... [--id ID]
//       [--expect-cache hit|miss] [--expect-error CODE]
//   $ steersim_client <socket> submit --asm-file prog.s ...
//
// Every command also takes [--retries N] [--timeout-ms N] [--backoff-ms N]:
// the CLI is a thin shell over the SteersimClient library (svc/client.hpp),
// so it reconnects on EOF and retries retriable errors with jittered
// backoff — under a chaos-injected daemon it simply keeps going until the
// job completes or the attempt budget runs out.
//
// Prints the reply line verbatim (the canonical rendering — byte-identical
// to what the server sent). Exit codes: 0 success (and every --expect
// assertion held), 1 transport/protocol failure (including retry budget
// exhausted), 2 usage, 3 unexpected error reply, 4 an --expect assertion
// failed — distinct codes so CI smoke scripts can assert cache hits and
// deadline rejects.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/strings.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"

using namespace steersim;
using namespace steersim::svc;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <socket-path> ping|stats|--stats|shutdown [common flags]\n"
      "       %s <socket-path> submit (--kernel NAME | --asm-file PATH |"
      " --elf NAME\n"
      "            | --multi PROG[:POLICY]... [--arbiter A])\n"
      "           [--policy P] [--max-cycles N] [--wall-ms N]\n"
      "           [--interval N] [--confirm N] [--lookahead] [--seed N]\n"
      "           [--set knob=value]... [--id ID]\n"
      "           [--expect-cache hit|miss] [--expect-error CODE]\n"
      "           [common flags]\n"
      "common flags: [--retries N] [--timeout-ms N] [--backoff-ms N]\n"
      "--multi runs one core per occurrence; PROG is a kernel name or\n"
      "elf:FIXTURE, with an optional per-core :POLICY suffix.\n"
      "--arbiter is round-robin (default), priority or prop-share.\n",
      argv0, argv0);
  return 2;
}

/// Parses one --multi operand: `PROG[:POLICY]` where PROG is a kernel
/// name or `elf:FIXTURE`. `elf:FIXTURE:POLICY` also works.
MultiEntry parse_multi_entry(const std::string& text) {
  MultiEntry entry;
  std::string prog = text;
  if (prog.rfind("elf:", 0) == 0) {
    prog = prog.substr(4);
    const std::size_t colon = prog.find(':');
    if (colon != std::string::npos) {
      entry.policy = prog.substr(colon + 1);
      prog = prog.substr(0, colon);
    }
    entry.elf = prog;
  } else {
    const std::size_t colon = prog.find(':');
    if (colon != std::string::npos) {
      entry.policy = prog.substr(colon + 1);
      prog = prog.substr(0, colon);
    }
    entry.kernel = prog;
  }
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage(argv[0]);
  }
  ClientOptions options;
  options.socket_path = argv[1];
  const std::string command = argv[2];

  Request request;
  std::string expect_cache;
  std::string expect_error;
  bool retries_set = false;
  const bool is_submit = command == "submit";
  if (command == "ping") {
    request.type = RequestType::kPing;
  } else if (command == "stats" || command == "--stats") {
    // `--stats` is a flag-spelled alias: "show me the live svc.* registry".
    request.type = RequestType::kStats;
  } else if (command == "shutdown") {
    request.type = RequestType::kShutdown;
  } else if (is_submit) {
    request.type = RequestType::kSubmit;
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage(argv[0]);
  }

  for (int a = 3; a < argc; ++a) {
    const auto flag_value = [&](std::string& out) {
      if (a + 1 >= argc) {
        return false;
      }
      out = argv[++a];
      return true;
    };
    const auto flag_u64 = [&](std::uint64_t& out) {
      std::string text;
      if (!flag_value(text)) {
        return false;
      }
      const auto value = parse_positive_u64(text);
      if (!value) {
        return false;
      }
      out = *value;
      return true;
    };
    std::string text;
    std::uint64_t number = 0;
    if (std::strcmp(argv[a], "--retries") == 0) {
      if (!flag_u64(number)) {
        return usage(argv[0]);
      }
      options.max_attempts = static_cast<unsigned>(number);
      retries_set = true;
    } else if (std::strcmp(argv[a], "--timeout-ms") == 0) {
      if (!flag_u64(number)) {
        return usage(argv[0]);
      }
      options.read_timeout_ms = number;
      options.connect_timeout_ms = number;
    } else if (std::strcmp(argv[a], "--backoff-ms") == 0) {
      if (!flag_u64(number)) {
        return usage(argv[0]);
      }
      options.backoff_base_ms = number;
    } else if (std::strcmp(argv[a], "--id") == 0) {
      if (!flag_value(request.id)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--kernel") == 0) {
      if (!flag_value(request.kernel)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--elf") == 0) {
      if (!flag_value(request.elf)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--asm-file") == 0) {
      if (!flag_value(text)) {
        return usage(argv[0]);
      }
      std::ifstream file(text);
      if (!file) {
        std::fprintf(stderr, "cannot open '%s'\n", text.c_str());
        return 2;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      request.asm_source = buffer.str();
    } else if (is_submit && std::strcmp(argv[a], "--multi") == 0) {
      if (!flag_value(text) || text.empty()) {
        return usage(argv[0]);
      }
      request.multi.push_back(parse_multi_entry(text));
    } else if (is_submit && std::strcmp(argv[a], "--arbiter") == 0) {
      if (!flag_value(request.arbiter)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--policy") == 0) {
      if (!flag_value(request.policy)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--max-cycles") == 0) {
      if (!flag_u64(request.max_cycles)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--wall-ms") == 0) {
      if (!flag_u64(request.wall_ms)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--interval") == 0) {
      if (!flag_u64(request.interval)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--confirm") == 0) {
      if (!flag_u64(request.confirm)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--lookahead") == 0) {
      request.lookahead = true;
    } else if (is_submit && std::strcmp(argv[a], "--seed") == 0) {
      if (!flag_u64(request.seed)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--set") == 0) {
      if (!flag_value(text)) {
        return usage(argv[0]);
      }
      const std::size_t eq = text.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "--set expects knob=value, got '%s'\n",
                     text.c_str());
        return 2;
      }
      request.config.emplace_back(text.substr(0, eq),
                                  std::strtod(text.c_str() + eq + 1,
                                              nullptr));
    } else if (is_submit && std::strcmp(argv[a], "--expect-cache") == 0) {
      if (!flag_value(expect_cache)) {
        return usage(argv[0]);
      }
    } else if (is_submit && std::strcmp(argv[a], "--expect-error") == 0) {
      if (!flag_value(expect_error)) {
        return usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[a]);
      return usage(argv[0]);
    }
  }
  const int single_sources = static_cast<int>(!request.kernel.empty()) +
                             static_cast<int>(!request.asm_source.empty()) +
                             static_cast<int>(!request.elf.empty());
  if (is_submit && request.multi.empty() && single_sources != 1) {
    std::fprintf(stderr,
                 "submit needs exactly one of --kernel / --asm-file / "
                 "--elf, or --multi\n");
    return 2;
  }
  if (is_submit && !request.multi.empty() && single_sources != 0) {
    std::fprintf(stderr,
                 "--multi is exclusive with --kernel / --asm-file / --elf\n");
    return 2;
  }
  if (!expect_error.empty() && !retries_set) {
    // The caller is *asserting* an error reply; retrying a retriable one
    // away would turn the assertion into a timeout-shaped mystery.
    options.max_attempts = 1;
  }

  SteersimClient client(options);
  const Reply reply = client.call(request);
  if (reply.type == ReplyType::kError &&
      reply.code == error_code::kTransport) {
    std::fprintf(stderr, "transport failure: %s\n", reply.message.c_str());
    return 1;
  }
  std::printf("%s\n", reply.to_json().c_str());

  if (!expect_error.empty()) {
    if (reply.type != ReplyType::kError || reply.code != expect_error) {
      std::fprintf(stderr, "expected error '%s', got %s reply%s%s\n",
                   expect_error.c_str(),
                   std::string(reply_type_name(reply.type)).c_str(),
                   reply.code.empty() ? "" : " with code ",
                   reply.code.c_str());
      return 4;
    }
    return 0;
  }
  if (reply.type == ReplyType::kError) {
    std::fprintf(stderr, "error reply: %s (%s)\n", reply.code.c_str(),
                 reply.message.c_str());
    return 3;
  }
  if (!expect_cache.empty() && reply.cache != expect_cache) {
    std::fprintf(stderr, "expected cache '%s', got '%s'\n",
                 expect_cache.c_str(), reply.cache.c_str());
    return 4;
  }
  return 0;
}
