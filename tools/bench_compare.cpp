// CLI over compare_bench_dirs() (docs/OBSERVABILITY.md).
//
//   bench_compare [--warn-only] [--host-tol FRAC] <baseline-dir> <candidate-dir>
//
// Exit codes: 0 = no regression (or --warn-only), 1 = regression detected,
// 2 = usage or I/O error. CI gates on this against the committed
// bench/baseline/ snapshot: sim metrics compare exactly, host metrics with
// a wide direction-aware tolerance (--host-tol 0.6) that absorbs runner
// noise but catches order-of-magnitude slowdowns. Use --warn-only for
// exploratory local comparisons.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/bench_compare.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--warn-only] [--host-tol FRAC] "
               "<baseline-dir> <candidate-dir>\n"
               "  --warn-only     report regressions but exit 0\n"
               "  --host-tol FRAC relative tolerance for host metrics "
               "(default 0.20)\n");
}

}  // namespace

int main(int argc, char** argv) {
  steersim::BenchCompareOptions options;
  bool warn_only = false;
  std::string dirs[2];
  int ndirs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg == "--host-tol") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      char* end = nullptr;
      options.host_tolerance = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || options.host_tolerance < 0.0) {
        std::fprintf(stderr, "bench_compare: bad --host-tol '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown option '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    } else if (ndirs < 2) {
      dirs[ndirs++] = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (ndirs != 2) {
    usage();
    return 2;
  }

  const steersim::CompareReport report =
      steersim::compare_bench_dirs(dirs[0], dirs[1], options);
  std::fputs(report.to_string().c_str(), stdout);
  if (report.has_regression()) {
    if (warn_only) {
      std::puts("bench_compare: regressions found (warn-only mode)");
      return 0;
    }
    return 1;
  }
  return 0;
}
