// Command-line ELF runner: load a static RV32 ELF (or a named committed
// fixture), translate it through the RV32 front end and execute it on the
// reconfigurable superscalar, printing the full statistics report.
//
//   $ ./tools/run_elf program.elf [policy] [--dump-words N] [--report ID]
//                      [--trace PATH]
//   $ ./tools/run_elf --fixture rv32_phases steered --report elf_smoke
//
// policy ∈ steered|static-ffu|static-integer|static-memory|static-float|
//          oracle|full-reconfig|random|greedy            (default steered)
//
// --report ID writes BENCH_<ID>.json in the steersim-bench/1 schema (the
// same report path every bench uses), so tools/bench_compare can diff two
// runs — CI runs the committed fixtures twice and requires the simulated
// metrics to be bit-identical.
//
// --trace PATH streams a Chrome trace-event JSON of the run (open in
// Perfetto / chrome://tracing); see docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "frontend/elf_loader.hpp"
#include "isa/rv32.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "workload/rv32_fixtures.hpp"

using namespace steersim;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (program.elf | --fixture NAME) [policy] "
               "[--dump-words N] [--report ID] [--trace PATH]\n"
               "fixtures:",
               argv0);
  for (const Rv32Fixture& fx : rv32_fixture_library()) {
    std::fprintf(stderr, " %s", fx.name.c_str());
  }
  std::fputc('\n', stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(argv[0]);
  }

  std::string input_name;
  std::vector<std::uint8_t> image;
  PolicySpec spec;
  unsigned dump_words = 0;
  std::string report_id;
  std::string trace_path;

  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--fixture") == 0 && a + 1 < argc) {
      input_name = argv[++a];
      const Rv32Fixture* fx = rv32_fixture_find(input_name);
      if (fx == nullptr) {
        std::fprintf(stderr, "unknown fixture '%s'\n", input_name.c_str());
        return usage(argv[0]);
      }
      image = rv32_fixture_elf(*fx);
    } else if (std::strcmp(argv[a], "--dump-words") == 0 && a + 1 < argc) {
      dump_words = static_cast<unsigned>(std::atoi(argv[++a]));
    } else if (std::strcmp(argv[a], "--report") == 0 && a + 1 < argc) {
      report_id = argv[++a];
    } else if (std::strcmp(argv[a], "--trace") == 0 && a + 1 < argc) {
      trace_path = argv[++a];
    } else if (input_name.empty() && argv[a][0] != '-') {
      input_name = argv[a];
      std::ifstream file(input_name, std::ios::binary);
      if (!file) {
        std::fprintf(stderr, "cannot open '%s'\n", input_name.c_str());
        return 2;
      }
      image.assign(std::istreambuf_iterator<char>(file),
                   std::istreambuf_iterator<char>());
    } else if (!parse_policy(argv[a], spec)) {
      std::fprintf(stderr, "unknown policy '%s'\n", argv[a]);
      return usage(argv[0]);
    }
  }
  if (image.empty()) {
    std::fprintf(stderr, "no ELF input\n");
    return usage(argv[0]);
  }

  Program program;
  try {
    program = elf::load_elf_program(image, input_name);
  } catch (const elf::ElfError& e) {
    std::fprintf(stderr, "%s: %s\n", input_name.c_str(), e.what());
    return 1;
  } catch (const rv32::Rv32Error& e) {
    std::fprintf(stderr, "%s: %s\n", input_name.c_str(), e.what());
    return 1;
  }
  std::printf("loaded %zu instructions, %zu data words (%zu ELF bytes)\n",
              program.code.size(), program.data.size(), image.size());

  MachineConfig config;
  if (!trace_path.empty()) {
    config.trace.enabled = true;
    config.trace.path = trace_path;
  }
  auto cpu = make_processor(program, config, spec);
  const std::uint64_t max_cycles = bench::cycle_budget();
  const RunOutcome outcome = cpu->run(max_cycles);

  const SimResult result = collect_result(*cpu, spec, outcome);
  std::fputs(format_report(result).c_str(), stdout);
  if (!trace_path.empty()) {
    cpu->tracer()->close();  // finalize the JSON document before reporting
    std::printf("trace: %s (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(
                    cpu->tracer()->events_emitted()));
  }

  if (outcome == RunOutcome::kFault || outcome == RunOutcome::kStalled) {
    std::fprintf(stderr, "%s\n", cpu->fault_message().c_str());
    return 1;
  }
  if (dump_words > 0) {
    std::printf("data memory (first %u words):\n", dump_words);
    for (unsigned w = 0; w < dump_words; ++w) {
      std::printf("  [%4u] %lld\n", w * 8,
                  static_cast<long long>(cpu->memory().load_word(w * 8)));
    }
  }
  if (!report_id.empty()) {
    bench::BenchReport report(report_id);
    report.note("input", input_name)
        .note("policy", result.policy)
        .note("max_cycles", max_cycles)
        .note("code_size", program.code.size())
        .add_sim_result(input_name + "/" + result.policy, result)
        .embed_result(input_name + "/" + result.policy, result);
    if (!report.write()) {
      return 1;
    }
  }
  return outcome == RunOutcome::kHalted || outcome == RunOutcome::kMaxCycles
             ? 0
             : 1;
}
