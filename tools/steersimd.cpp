// steersimd — long-running simulation job server (docs/SERVICE.md).
//
//   $ steersimd /tmp/steersim.sock [--workers N] [--queue N] [--cache N]
//               [--default-max-cycles N] [--max-cycles-ceiling N]
//               [--idle-timeout-ms N] [--watchdog-grace-ms N]
//
// Speaks the JSON-lines protocol of src/svc/protocol.hpp over a Unix
// domain socket; serves until a `shutdown` request, then drains in-flight
// jobs and prints the final service metric registry (svc.*) so a session's
// admit/reject/hit/miss story is visible in the log. Setting the
// STEERSIM_CHAOS environment variable (grammar in svc/chaos.hpp) turns on
// deterministic fault injection — announced loudly at startup and
// summarized at exit.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/strings.hpp"
#include "svc/chaos.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

using namespace steersim;
using namespace steersim::svc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <socket-path> [--workers N] [--queue N] "
               "[--cache N] [--default-max-cycles N] "
               "[--max-cycles-ceiling N] [--idle-timeout-ms N] "
               "[--watchdog-grace-ms N]\n",
               argv0);
  return 2;
}

bool parse_u64_flag(int argc, char** argv, int& a, std::uint64_t& out) {
  if (a + 1 >= argc) {
    return false;
  }
  const auto value = parse_positive_u64(argv[++a]);
  if (!value) {
    return false;
  }
  out = *value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') {
    return usage(argv[0]);
  }
  ServiceConfig config;
  ServerOptions server_options;
  server_options.socket_path = argv[1];
  std::uint64_t workers = 0;
  std::uint64_t queue_capacity = config.queue_capacity;
  std::uint64_t cache_entries = 0;
  bool cache_set = false;
  for (int a = 2; a < argc; ++a) {
    std::uint64_t value = 0;
    if (std::strcmp(argv[a], "--workers") == 0) {
      if (!parse_u64_flag(argc, argv, a, workers)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[a], "--queue") == 0) {
      if (!parse_u64_flag(argc, argv, a, queue_capacity)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[a], "--cache") == 0) {
      if (!parse_u64_flag(argc, argv, a, cache_entries)) {
        return usage(argv[0]);
      }
      cache_set = true;
    } else if (std::strcmp(argv[a], "--default-max-cycles") == 0) {
      if (!parse_u64_flag(argc, argv, a, value)) {
        return usage(argv[0]);
      }
      config.default_max_cycles = value;
    } else if (std::strcmp(argv[a], "--max-cycles-ceiling") == 0) {
      if (!parse_u64_flag(argc, argv, a, value)) {
        return usage(argv[0]);
      }
      config.max_cycles_ceiling = value;
    } else if (std::strcmp(argv[a], "--idle-timeout-ms") == 0) {
      if (!parse_u64_flag(argc, argv, a, value)) {
        return usage(argv[0]);
      }
      server_options.idle_timeout_ms = value;
    } else if (std::strcmp(argv[a], "--watchdog-grace-ms") == 0) {
      if (!parse_u64_flag(argc, argv, a, value)) {
        return usage(argv[0]);
      }
      config.watchdog_grace_ms = value;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[a]);
      return usage(argv[0]);
    }
  }
  config.workers = static_cast<unsigned>(workers);
  config.queue_capacity = static_cast<std::size_t>(queue_capacity);
  if (cache_set) {
    config.cache_entries = static_cast<std::size_t>(cache_entries);
  }

  SimService service(config);
  SocketServer server(service, server_options);
  if (!server.listen()) {
    return 1;
  }
  // Touching the global here (not lazily at the first injected fault)
  // puts the CHAOS INJECTION ENABLED banner at the top of the log.
  const std::shared_ptr<ChaosInjector> chaos = ChaosInjector::global();
  std::printf("steersimd: listening on %s (%u workers, queue %zu, cache "
              "%zu, default budget %llu cycles)\n",
              argv[1], service.config().workers,
              service.config().queue_capacity,
              service.config().cache_entries,
              static_cast<unsigned long long>(
                  service.config().default_max_cycles));
  std::fflush(stdout);
  if (!server.serve()) {
    return 1;
  }
  std::printf("steersimd: drained; final metrics:\n%s\n",
              canonical_metrics_json(service.metrics()).c_str());
  if (chaos != nullptr) {
    std::printf("steersimd: chaos injections: %s\n",
                chaos->summary().c_str());
  }
  return 0;
}
