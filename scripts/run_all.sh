#!/usr/bin/env bash
# Builds, tests, and runs every reproduction/experiment binary, teeing the
# outputs the repo's EXPERIMENTS.md references.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt
{
  for b in build/bench/*; do
    [ -x "$b" ] && "$b"
  done
} 2>&1 | tee bench_output.txt
