#!/usr/bin/env bash
# Builds, tests, and runs every reproduction/experiment binary, teeing the
# outputs the repo's EXPERIMENTS.md references. Every bench runs even if an
# earlier one fails; failures are summarized at the end and make the script
# exit nonzero.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt
{
  status=0
  failed=""
  for b in build/bench/*; do
    if [ ! -f "$b" ] || [ ! -x "$b" ]; then
      continue
    fi
    if ! "$b"; then
      status=1
      failed="$failed $(basename "$b")"
    fi
  done
  if [ "$status" -ne 0 ]; then
    echo "FAILED benches:$failed"
  else
    echo "all benches passed"
  fi
  exit "$status"
} 2>&1 | tee bench_output.txt

# Service smoke (docs/SERVICE.md): the benches above exercised SimService
# in-process (bench_service, whose BENCH_service.json is collected below);
# this drives the real socket path — duplicate submit must hit the cache,
# an over-budget submit must be rejected with `deadline`.
sock="$(mktemp -u /tmp/steersim-runall-XXXXXX.sock)"
./build/tools/steersimd "$sock" --workers 2 --queue 4 &
daemon=$!
for _ in $(seq 50); do
  [ -S "$sock" ] && break
  sleep 0.1
done
./build/tools/steersim_client "$sock" submit --kernel fib --expect-cache miss
./build/tools/steersim_client "$sock" submit --kernel fib --expect-cache hit
./build/tools/steersim_client "$sock" submit --kernel matmul_int \
  --max-cycles 50 --expect-error deadline
./build/tools/steersim_client "$sock" submit --elf rv32_phases \
  --expect-cache miss
./build/tools/steersim_client "$sock" submit --elf rv32_phases \
  --expect-cache hit
# Multi-core smoke (docs/SERVICE.md §The multi job kind): a contended
# two-core job must complete, replay as a cache hit, and a different
# arbiter must be distinct work (a miss, not a hit).
./build/tools/steersim_client "$sock" submit --multi dot_int \
  --multi saxpy:greedy --expect-cache miss
./build/tools/steersim_client "$sock" submit --multi dot_int \
  --multi saxpy:greedy --expect-cache hit
./build/tools/steersim_client "$sock" submit --multi dot_int \
  --multi saxpy:greedy --arbiter prop-share --expect-cache miss
# Live introspection: the svc.* registry snapshot must be well-formed and
# reflect the submits above (docs/SERVICE.md §stats).
snapshot=$(./build/tools/steersim_client "$sock" --stats)
echo "$snapshot" | grep -F '"type":"stats"' >/dev/null
echo "$snapshot" | grep -F '"svc.workers_live":' >/dev/null
./build/tools/steersim_client "$sock" shutdown
wait "$daemon"
echo "service smoke passed"

# RV32 ELF smoke (docs/EXTENDING.md §Running ELF binaries): committed
# fixture binaries must match freshly encoded bytes, and the same binary
# through run_elf twice must produce bit-identical simulated metrics.
./build/tools/make_fixtures /tmp/steersim-fresh-fixtures
for f in tests/fixtures/*.elf; do
  cmp "$f" "/tmp/steersim-fresh-fixtures/$(basename "$f")"
done
rm -rf elf_run1 elf_run2
mkdir -p elf_run1 elf_run2
for fx in rv32_int rv32_fp rv32_phases; do
  (cd elf_run1 && ../build/tools/run_elf --fixture "$fx" steered \
    --report "elf_$fx" > /dev/null)
  (cd elf_run2 && ../build/tools/run_elf --fixture "$fx" steered \
    --report "elf_$fx" > /dev/null)
done
./build/tools/bench_compare elf_run1 elf_run2
rm -rf elf_run1 elf_run2
echo "elf smoke passed"

# Chaos smoke (docs/SERVICE.md §Failure modes): the same daemon under a
# seeded fault storm — reply frames dropped/corrupted/truncated, workers
# stalled and crashed — while the client retries with backoff. Every
# submit must still complete, and shutdown must stay graceful; the daemon
# prints the injector's per-site counts at exit.
./build/tools/proto_fuzz --frames 2000 --seed 1
chaos_sock="$(mktemp -u /tmp/steersim-chaos-XXXXXX.sock)"
STEERSIM_CHAOS="corrupt=0.15,drop=0.1,truncate=0.05,stall=0.05,stall_ms=20,crash=0.08:4242" \
  ./build/tools/steersimd "$chaos_sock" --workers 2 --queue 8 &
chaos_daemon=$!
for _ in $(seq 50); do
  [ -S "$chaos_sock" ] && break
  sleep 0.1
done
for i in $(seq 15); do
  ./build/tools/steersim_client "$chaos_sock" submit --kernel fib \
    --seed "$i" --retries 32 --timeout-ms 2000 --backoff-ms 2
done
./build/tools/steersim_client "$chaos_sock" shutdown --retries 8 \
  --timeout-ms 2000
wait "$chaos_daemon"
echo "chaos smoke passed (15/15 submits through the storm)"

# Collect the machine-readable reports every bench just wrote (see
# bench/bench_util.hpp BenchReport) under a per-commit directory, so two
# checkouts can be diffed with tools/bench_compare.
sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
out="bench_out/$sha"
mkdir -p "$out"
mv BENCH_*.json "$out"/ 2>/dev/null || true
echo "bench reports collected in $out ($(ls "$out" | wc -l) files)"
echo "compare against another run with: build/tools/bench_compare <baseline> $out"
