// Command-line assembly runner: assemble a .s file and execute it on the
// reconfigurable superscalar, printing the full statistics report and
// (optionally) the final data-memory words.
//
//   $ ./examples/run_asm program.s [policy] [--dump-words N]
//
// policy ∈ steered|static-ffu|static-integer|static-memory|static-float|
//          oracle|full-reconfig|random|greedy            (default steered)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "isa/assembler.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace steersim;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s program.s [policy] [--dump-words N]\n", argv[0]);
    return 2;
  }
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  PolicySpec spec;
  unsigned dump_words = 0;
  for (int a = 2; a < argc; ++a) {
    if (std::strcmp(argv[a], "--dump-words") == 0 && a + 1 < argc) {
      dump_words = static_cast<unsigned>(std::atoi(argv[++a]));
    } else if (!parse_policy(argv[a], spec)) {
      std::fprintf(stderr, "unknown policy '%s'\n", argv[a]);
      return 2;
    }
  }

  Program program;
  try {
    program = assemble(buffer.str(), argv[1]);
  } catch (const AssemblyError& e) {
    std::fprintf(stderr, "%s: %s\n", argv[1], e.what());
    return 1;
  }
  std::printf("assembled %zu instructions, %zu data words, %zu labels\n",
              program.code.size(), program.data.size(),
              program.code_labels.size());

  MachineConfig config;
  auto cpu = make_processor(program, config, spec);
  const RunOutcome outcome = cpu->run();

  const SimResult result = collect_result(*cpu, spec, outcome);
  std::fputs(format_report(result).c_str(), stdout);

  if (outcome == RunOutcome::kFault) {
    std::fprintf(stderr, "fault: %s\n", cpu->fault_message().c_str());
    return 1;
  }
  if (outcome == RunOutcome::kStalled) {
    std::fprintf(stderr, "%s\n", cpu->fault_message().c_str());
    return 1;
  }
  if (dump_words > 0) {
    std::printf("data memory (first %u words):\n", dump_words);
    for (unsigned w = 0; w < dump_words; ++w) {
      std::printf("  [%4u] %lld\n", w * 8,
                  static_cast<long long>(cpu->memory().load_word(w * 8)));
    }
  }
  return outcome == RunOutcome::kHalted ? 0 : 1;
}
