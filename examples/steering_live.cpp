// Watch the configuration manager steer, cycle by cycle.
//
// Runs a phased workload (integer-heavy loop, then FP-heavy loop) and
// prints a live timeline: the ready-queue requirement vector, the
// selection unit's choice, the fabric's allocation vector, and rewrite
// activity — the paper's Figures 2/3 in motion.
//
//   $ ./examples/steering_live
#include <cstdio>

#include "sim/runner.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace steersim;

  const Program program =
      generate_synthetic(alternating_phases(1024, 1, 7));
  MachineConfig config;
  config.loader.cycles_per_slot = 4;
  auto cpu = make_processor(program, config, PolicySpec{});

  std::printf("phased workload: %zu static instructions "
              "(int-heavy phase then fp-heavy phase)\n\n",
              program.code.size());
  std::printf("%-8s %-22s %-32s %s\n", "cycle", "fabric (8 RFU slots)",
              "configured units [ALU MDU LSU FPA FPM]", "rewriting");

  std::string last_fabric;
  while (!cpu->halted() && cpu->stats().cycles < 100000) {
    cpu->step();
    const std::string fabric = cpu->loader().allocation().to_string();
    if (fabric != last_fabric) {
      const FuCounts counts = cpu->engine().configured_units();
      std::string units;
      for (const FuType t : kAllFuTypes) {
        units += std::to_string(counts[fu_index(t)]) + " ";
      }
      const SlotMask rewriting = cpu->loader().reconfiguring();
      std::string rw;
      for (unsigned s = 0; s < config.loader.num_slots; ++s) {
        rw += rewriting.test(s) ? '#' : '.';
      }
      std::printf("%-8llu %-22s %-32s %s\n",
                  static_cast<unsigned long long>(cpu->stats().cycles),
                  fabric.c_str(), units.c_str(), rw.c_str());
      last_fabric = fabric;
    }
  }

  std::printf("\nfinal: IPC %.3f over %llu cycles; selection distribution "
              "current/cfg1/cfg2/cfg3 =",
              cpu->stats().ipc(),
              static_cast<unsigned long long>(cpu->stats().cycles));
  for (const auto n : cpu->policy().stats().selections) {
    std::printf(" %llu", static_cast<unsigned long long>(n));
  }
  std::printf("\nslots rewritten: %llu, rewrite-blocked cycles: %llu\n",
              static_cast<unsigned long long>(
                  cpu->loader().stats().slots_rewritten),
              static_cast<unsigned long long>(
                  cpu->loader().stats().blocked_cycles));
  return cpu->halted() ? 0 : 1;
}
