// Architect's example: define a custom steering basis and machine shape,
// then evaluate it against the paper's Table-1 basis over the standard
// workload mixes. Shows the configuration-as-data API: SteeringSet,
// MachineConfig, LoaderParams.
//
//   $ ./examples/design_space
#include <cstdio>

#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace steersim;

  // A custom basis: suppose profiling says our deployment is 60% memory
  // streaming, 40% fp — we trade the integer preset for a second
  // memory-leaning one.
  SteeringSet custom;
  custom.name = "mem-tilted";
  custom.num_slots = 8;
  custom.ffu = {1, 1, 1, 1, 1};
  custom.presets[0] = {2, 0, 6, 0, 0};  // pure streaming: 2 ALU + 6 LSU
  custom.presets[1] = {1, 0, 4, 1, 0};  // stream + one FP-ALU
  custom.presets[2] = {0, 0, 2, 1, 1};  // fp with enough load bandwidth
  custom.preset_names = {"stream", "stream-fp", "fp"};
  if (!custom.feasible()) {
    std::fprintf(stderr, "custom basis exceeds the slot budget\n");
    return 1;
  }

  // A wider machine than the paper's default.
  MachineConfig wide;
  wide.fetch_width = 8;
  wide.queue_entries = 15;
  wide.retire_width = 8;
  wide.loader.cycles_per_slot = 8;

  const auto evaluate = [&](const SteeringSet& basis) {
    MachineConfig cfg = wide;
    cfg.steering = basis;
    cfg.loader.num_slots = basis.num_slots;
    std::vector<std::function<double()>> jobs;
    for (const MixSpec& mix : standard_mixes()) {
      jobs.emplace_back([cfg, mix] {
        const Program p = generate_synthetic(single_phase(mix, 64, 300, 19));
        return simulate(p, cfg, PolicySpec{}).stats.ipc();
      });
    }
    return parallel_map(jobs);
  };

  const auto table1 = evaluate(default_steering_set());
  const auto tilted = evaluate(custom);

  Table table({"mix", "table1 basis IPC", "mem-tilted basis IPC", "ratio"});
  for (std::size_t i = 0; i < standard_mixes().size(); ++i) {
    table.add_row({standard_mixes()[i].name, Table::num(table1[i]),
                   Table::num(tilted[i]),
                   Table::num(tilted[i] / table1[i], 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nReading: the tilted basis buys memory-mix IPC at the cost of the "
      "integer corner — the basis is a deployment-time tuning knob, "
      "exactly the design space the paper's conclusion points at.\n");
  return 0;
}
