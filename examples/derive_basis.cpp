// Basis advisor: derive a steering basis from workload profiles.
//
// The paper leaves "how to formulate an optimal basis" open. This example
// shows the data-driven path an architect would take with steersim:
//   1. profile each workload's dynamic unit demand (reference-interpreter
//      observer — no timing simulation needed);
//   2. cluster the demand vectors into three groups (one per preset slot);
//   3. pack each cluster's mean demand into an 8-slot configuration;
//   4. evaluate the derived basis against the paper's Table-1 basis by
//      running the steered machine on the same workloads.
//
//   $ ./examples/derive_basis
#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/policy.hpp"
#include "core/reference.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"
#include "workload/kernels.hpp"

using namespace steersim;

namespace {

using Shares = std::array<double, kNumFuTypes>;

Shares profile(const Program& program) {
  std::array<std::uint64_t, kNumFuTypes> counts{};
  ReferenceInterpreter ref;
  ref.run(program, 2'000'000,
          [&counts](const Instruction& inst, std::uint32_t,
                    const ExecOutput&) {
            ++counts[fu_index(fu_type_of(inst.op))];
          });
  std::uint64_t total = 0;
  for (const auto c : counts) {
    total += c;
  }
  Shares shares{};
  for (unsigned t = 0; t < kNumFuTypes; ++t) {
    shares[t] = total == 0 ? 0.0
                           : static_cast<double>(counts[t]) /
                                 static_cast<double>(total);
  }
  return shares;
}

double l1_distance(const Shares& a, const Shares& b) {
  double d = 0;
  for (unsigned t = 0; t < kNumFuTypes; ++t) {
    d += std::abs(a[t] - b[t]);
  }
  return d;
}

/// Packs a demand-share vector into an 8-slot preset: scale shares to a
/// 7-instruction queue's worth of demand and greedy-pack.
FuCounts pack_shares(const Shares& shares, const FuCounts& ffu) {
  FuCounts demand{};
  for (unsigned t = 0; t < kNumFuTypes; ++t) {
    demand[t] = static_cast<std::uint8_t>(
        std::min(7.0, std::round(7.0 * shares[t])));
  }
  return OraclePolicy::pack(demand, ffu, kDefaultRfuSlots).counts();
}

}  // namespace

int main() {
  // 1. Profile.
  std::vector<Shares> shares;
  std::vector<Program> programs;
  std::vector<std::string> names;
  for (const auto& kernel : kernel_library()) {
    programs.push_back(kernel.assemble_program());
    names.push_back(kernel.name);
    shares.push_back(profile(programs.back()));
  }
  Table prof({"kernel", "Int-ALU %", "Int-MDU %", "LSU %", "FP-ALU %",
              "FP-MDU %"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    prof.add_row({names[i], Table::num(100 * shares[i][0], 1),
                  Table::num(100 * shares[i][1], 1),
                  Table::num(100 * shares[i][2], 1),
                  Table::num(100 * shares[i][3], 1),
                  Table::num(100 * shares[i][4], 1)});
  }
  std::printf("dynamic unit-demand profile (reference interpreter):\n");
  std::fputs(prof.to_string().c_str(), stdout);

  // 2. Cluster into 3 groups: seed with the most ALU-, LSU- and FP-heavy
  //    profiles, one k-means-style refinement pass.
  std::array<Shares, 3> centroids{};
  const unsigned seed_axes[3] = {fu_index(FuType::kIntAlu),
                                 fu_index(FuType::kLsu),
                                 fu_index(FuType::kFpMdu)};
  for (int c = 0; c < 3; ++c) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < shares.size(); ++i) {
      if (shares[i][seed_axes[c]] > shares[best][seed_axes[c]]) {
        best = i;
      }
    }
    centroids[static_cast<std::size_t>(c)] = shares[best];
  }
  for (int pass = 0; pass < 4; ++pass) {
    std::array<Shares, 3> sums{};
    std::array<unsigned, 3> members{};
    for (const auto& s : shares) {
      std::size_t nearest = 0;
      for (std::size_t c = 1; c < 3; ++c) {
        if (l1_distance(s, centroids[c]) <
            l1_distance(s, centroids[nearest])) {
          nearest = c;
        }
      }
      for (unsigned t = 0; t < kNumFuTypes; ++t) {
        sums[nearest][t] += s[t];
      }
      ++members[nearest];
    }
    for (std::size_t c = 0; c < 3; ++c) {
      if (members[c] > 0) {
        for (unsigned t = 0; t < kNumFuTypes; ++t) {
          centroids[c][t] = sums[c][t] / members[c];
        }
      }
    }
  }

  // 3. Pack.
  SteeringSet derived = default_steering_set();
  derived.name = "derived";
  derived.preset_names = {"cluster-a", "cluster-b", "cluster-c"};
  for (std::size_t c = 0; c < 3; ++c) {
    derived.presets[c] = pack_shares(centroids[c], derived.ffu);
  }
  std::printf("\nderived basis (RFU counts [ALU MDU LSU FPA FPM]):\n");
  for (std::size_t c = 0; c < 3; ++c) {
    std::printf("  %s: [", derived.preset_names[c].c_str());
    for (const FuType t : kAllFuTypes) {
      std::printf("%u", derived.presets[c][fu_index(t)]);
    }
    std::printf("]\n");
  }

  // 4. Evaluate.
  auto geomean_ipc = [&](const SteeringSet& basis) {
    MachineConfig cfg;
    cfg.steering = basis;
    cfg.loader.num_slots = basis.num_slots;
    std::vector<std::function<double()>> jobs;
    for (const auto& program : programs) {
      jobs.emplace_back([&program, cfg] {
        return simulate(program, cfg, PolicySpec{}).stats.ipc();
      });
    }
    double log_sum = 0;
    for (const double ipc : parallel_map(jobs)) {
      log_sum += std::log(ipc);
    }
    return std::exp(log_sum / static_cast<double>(programs.size()));
  };
  const double table1 = geomean_ipc(default_steering_set());
  const double ours = geomean_ipc(derived);
  std::printf("\ngeomean steered IPC over the kernel suite: table1 basis "
              "%.3f, derived basis %.3f (%+.1f%%)\n",
              table1, ours, 100.0 * (ours - table1) / table1);
  std::printf("A basis tuned to the deployment's own demand profile is "
              "how the paper's open 'optimal basis' question gets answered "
              "in practice.\n");
  return 0;
}
