// Observability walkthrough (docs/OBSERVABILITY.md): run a phased workload
// with the cycle tracer, steering audit log, and interval sampler enabled,
// then point at the artifacts — a Perfetto-loadable trace JSON with
// counter tracks, a steering-decision CSV, a windowed-telemetry CSV, and
// the flat metric namespace.
//
//   $ ./examples/trace_run
//   then open trace_run.json at https://ui.perfetto.dev
#include <cstdio>

#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace steersim;

  // A workload whose demand shifts (int phase -> fp phase) so the trace
  // shows real steering activity: selection flips, region rewrites.
  const Program program = generate_synthetic(alternating_phases(1024, 2, 7));

  MachineConfig config;
  config.trace.enabled = true;
  config.trace.path = "trace_run.json";
  // Categories and cycle window are filters; default is everything. E.g.
  //   config.trace.categories = trace_cat::kSteer | trace_cat::kLoader;
  //   config.trace.start_cycle = 1000; config.trace.end_cycle = 2000;
  config.audit.enabled = true;
  config.audit.csv_path = "trace_run_audit.csv";
  // Windowed telemetry: one row per 256 cycles (windowed IPC + per-counter
  // deltas) streamed to CSV, and — because the tracer is on — "win.*"
  // counter tracks rendered above the event lanes in Perfetto.
  config.sample.period = 256;
  config.sample.csv_path = "trace_run_windows.csv";

  const SimResult result =
      simulate(program, config, {.kind = PolicyKind::kSteered}, 200'000);
  std::fputs(format_report(result).c_str(), stdout);

  // The flat metric namespace: every stats struct's counters under one
  // subsystem-prefixed name each.
  const MetricRegistry metrics = collect_metrics(result);
  std::printf("\nselected metrics (%zu registered):\n", metrics.size());
  for (const char* name : {"sim.ipc", "steer.steer_events",
                           "loader.slots_rewritten", "tcache.hit_rate"}) {
    if (const Metric* m = metrics.find(name)) {
      std::printf("  %-24s %g\n", m->name.c_str(), m->value);
    }
  }

  std::printf(
      "\nartifacts:\n"
      "  trace_run.json         — load at https://ui.perfetto.dev or\n"
      "                           chrome://tracing (1 cycle = 1 us);\n"
      "                           'win.*' counter tracks show IPC and\n"
      "                           issue/steer/rewrite rates over time\n"
      "  trace_run_audit.csv    — one row per steering decision: demand,\n"
      "                           per-candidate CEM error + rewrite cost,\n"
      "                           winner, tie-break, confirm streak, intent\n"
      "  trace_run_windows.csv  — one row per 256-cycle window: windowed\n"
      "                           IPC plus every counter's window delta\n");
  return 0;
}
