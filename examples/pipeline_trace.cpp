// Text pipeline diagram: one row per committed instruction, one column per
// cycle, showing dispatch (D), wait (.), execute (E), done-awaiting-retire
// (w) and retire (R) — a quick visual of how the machine extracts ILP and
// where it stalls waiting for functional units.
//
//   $ ./examples/pipeline_trace [kernel-name]        (default: dot_int)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/runner.hpp"
#include "workload/kernels.hpp"

using namespace steersim;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "dot_int";
  const Program program = kernel_by_name(name).assemble_program();

  MachineConfig config;
  auto cpu = make_processor(program, config, PolicySpec{});

  struct Row {
    std::string text;
    std::uint64_t dispatch, issue, complete, retire;
  };
  std::vector<Row> rows;
  const std::uint64_t kMaxRows = 48;
  cpu->set_retire_hook([&rows, &cpu](const RuuEntry& e) {
    if (rows.size() < kMaxRows) {
      rows.push_back(Row{disassemble(e.inst), e.cycle_dispatch,
                         e.cycle_issue, e.cycle_complete,
                         cpu->stats().cycles});
    }
  });
  cpu->run(100000);

  if (rows.empty()) {
    std::fprintf(stderr, "nothing retired\n");
    return 1;
  }
  const std::uint64_t base = rows.front().dispatch;
  std::uint64_t last = 0;
  for (const auto& row : rows) {
    last = std::max(last, row.retire);
  }
  const auto width = static_cast<std::size_t>(last - base + 1);

  std::printf("%s on the steered machine — first %zu committed "
              "instructions\n(D dispatch, . waiting, E executing, w done "
              "awaiting in-order retire, R retire)\n\n",
              name.c_str(), rows.size());
  for (const auto& row : rows) {
    std::string lane(width, ' ');
    auto at = [&](std::uint64_t cycle) -> char& {
      return lane[static_cast<std::size_t>(cycle - base)];
    };
    for (std::uint64_t c = row.dispatch; c <= row.retire; ++c) {
      at(c) = '.';
    }
    at(row.dispatch) = 'D';
    for (std::uint64_t c = row.issue; c <= row.complete; ++c) {
      at(c) = 'E';
    }
    for (std::uint64_t c = row.complete + 1; c < row.retire; ++c) {
      at(c) = 'w';
    }
    at(row.retire) = 'R';
    std::printf("%-22s |%s|\n", row.text.c_str(), lane.c_str());
  }
  std::printf("\ntotal: %llu instructions in %llu cycles (IPC %.2f)\n",
              static_cast<unsigned long long>(cpu->stats().retired),
              static_cast<unsigned long long>(cpu->stats().cycles),
              cpu->stats().ipc());
  return 0;
}
