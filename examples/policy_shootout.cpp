// Compare configuration-management policies on a workload of your choice.
//
// Usage:
//   $ ./examples/policy_shootout              # default: saxpy kernel
//   $ ./examples/policy_shootout fir          # any kernel from the library
//   $ ./examples/policy_shootout mixed        # or a synthetic mix name
//
// Every run is validated against the in-order reference interpreter, then
// the full policy roster is simulated and summarized.
#include <cstdio>
#include <cstring>

#include "core/reference.hpp"
#include "sim/runner.hpp"
#include "sim/table.hpp"
#include "workload/kernels.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace steersim;

  const std::string name = argc > 1 ? argv[1] : "saxpy";

  // Resolve the workload: kernel library first, then synthetic mixes.
  Program program;
  bool found = false;
  for (const auto& kernel : kernel_library()) {
    if (kernel.name == name) {
      program = kernel.assemble_program();
      std::printf("kernel '%s': %s\n", name.c_str(),
                  kernel.description.c_str());
      found = true;
      break;
    }
  }
  if (!found) {
    for (const MixSpec& mix : standard_mixes()) {
      if (mix.name == name) {
        program = generate_synthetic(single_phase(mix, 64, 400, 11));
        std::printf("synthetic '%s' workload\n", name.c_str());
        found = true;
        break;
      }
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown workload '%s'; kernels:", name.c_str());
    for (const auto& kernel : kernel_library()) {
      std::fprintf(stderr, " %s", kernel.name.c_str());
    }
    std::fprintf(stderr, "; mixes:");
    for (const MixSpec& mix : standard_mixes()) {
      std::fprintf(stderr, " %s", mix.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  MachineConfig config;

  // Validate the out-of-order machine against the architectural oracle.
  ReferenceInterpreter ref(config.data_memory_bytes);
  const auto ref_result = ref.run(program);
  {
    auto cpu = make_processor(program, config, PolicySpec{});
    if (cpu->run() != RunOutcome::kHalted ||
        !(cpu->registers() == ref.registers()) ||
        !(cpu->memory() == ref.memory())) {
      std::fprintf(stderr, "architectural mismatch vs reference!\n");
      return 1;
    }
  }
  std::printf("validated: OoO state == reference state (%llu dynamic "
              "instructions)\n\n",
              static_cast<unsigned long long>(ref_result.instructions));

  Table table({"policy", "IPC", "cycles", "speedup vs static-ffu",
               "slots rewritten", "starved entry-cycles"});
  double ffu_ipc = 0.0;
  std::vector<SimResult> results;
  for (const PolicySpec& spec : standard_policies()) {
    results.push_back(simulate(program, config, spec));
    if (spec.kind == PolicyKind::kStaticFfu) {
      ffu_ipc = results.back().stats.ipc();
    }
  }
  for (const auto& r : results) {
    table.add_row({r.policy, Table::num(r.stats.ipc()),
                   Table::num(r.stats.cycles),
                   Table::num(r.stats.ipc() / ffu_ipc, 3),
                   Table::num(r.loader.slots_rewritten),
                   Table::num(r.stats.resource_starved)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
