// Quickstart: assemble a program, run it on the reconfigurable superscalar
// with the paper's steering manager, and read out results + statistics.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "isa/assembler.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace steersim;

  // 1. Write a program in steersim assembly (MIPS-flavoured; see
  //    src/isa/assembler.hpp for the full grammar).
  const Program program = assemble(R"(
# Sum the integers 1..100 and leave the result in memory and in r3.
  la  r1, out        # address of the result cell
  li  r2, 100        # loop counter
  addi r3, r0, 0     # accumulator
loop:
  add  r3, r3, r2
  addi r2, r2, -1
  bne  r2, r0, loop
  sw   r3, 0(r1)
  halt
.data
out: .word 0
)",
                                   "quickstart");

  // 2. Configure the machine. Defaults reproduce the paper's architecture:
  //    5 fixed units, 8 RFU slots, 7-entry instruction queue, the Table-1
  //    steering basis, partial reconfiguration at 8 cycles/slot.
  MachineConfig config;

  // 3. Pick a configuration-management policy. PolicySpec{} is the paper's
  //    steering manager; see PolicyKind for baselines.
  auto cpu = make_processor(program, config, PolicySpec{});

  // 4. Run to completion.
  const RunOutcome outcome = cpu->run();
  if (outcome != RunOutcome::kHalted) {
    std::fprintf(stderr, "did not halt: %s\n",
                 cpu->fault_message().c_str());
    return 1;
  }

  // 5. Read architectural state and statistics.
  std::printf("sum(1..100)            = %lld (r3), %lld (memory)\n",
              static_cast<long long>(cpu->registers().read_int(3)),
              static_cast<long long>(
                  cpu->memory().load_word(program.data_labels.at("out"))));
  const SimStats& stats = cpu->stats();
  std::printf("instructions retired   = %llu\n",
              static_cast<unsigned long long>(stats.retired));
  std::printf("cycles                 = %llu\n",
              static_cast<unsigned long long>(stats.cycles));
  std::printf("IPC                    = %.3f\n", stats.ipc());
  std::printf("branch mispredict rate = %.1f%%\n",
              100.0 * stats.mispredict_rate());
  std::printf("RFU slots rewritten    = %llu\n",
              static_cast<unsigned long long>(
                  cpu->loader().stats().slots_rewritten));
  std::printf("final fabric           = %s\n",
              cpu->loader().allocation().to_string().c_str());
  return 0;
}
