// Architectural-equivalence property tests: randomly generated synthetic
// workloads (all mixes, multiple seeds, dependency densities, machine
// shapes, and steering policies) must leave the out-of-order machine in
// exactly the reference interpreter's architectural state. This is the
// strongest correctness property in the suite: it exercises speculation,
// squashing, store-to-load forwarding, partial reconfiguration and the
// wake-up scheduler against an oracle simultaneously.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/reference.hpp"
#include "cosim.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "workload/kernels.hpp"
#include "workload/synthetic.hpp"

namespace steersim {
namespace {

struct EquivalenceCase {
  std::string label;
  SyntheticSpec workload;
  MachineConfig machine;
  PolicySpec policy;
};

::testing::AssertionResult check_equivalence(const EquivalenceCase& c) {
  const Program program = generate_synthetic(c.workload);

  ReferenceInterpreter ref(c.machine.data_memory_bytes);
  const auto ref_result = ref.run(program);
  if (!ref_result.halted) {
    return ::testing::AssertionFailure()
           << c.label << ": reference did not halt";
  }

  auto cpu = make_processor(program, c.machine, c.policy);
  const RunOutcome outcome = cpu->run(20'000'000);
  if (outcome != RunOutcome::kHalted) {
    return ::testing::AssertionFailure()
           << c.label << ": outcome " << static_cast<int>(outcome)
           << " fault='" << cpu->fault_message() << "'";
  }
  if (cpu->stats().retired != ref_result.instructions) {
    return ::testing::AssertionFailure()
           << c.label << ": retired " << cpu->stats().retired
           << " != reference " << ref_result.instructions;
  }
  if (!(cpu->registers() == ref.registers())) {
    return ::testing::AssertionFailure() << c.label << ": register mismatch";
  }
  if (!(cpu->memory() == ref.memory())) {
    return ::testing::AssertionFailure() << c.label << ": memory mismatch";
  }
  return ::testing::AssertionSuccess();
}

MachineConfig fast_machine() {
  MachineConfig cfg;
  cfg.loader.cycles_per_slot = 2;
  return cfg;
}

TEST(Equivalence, AllMixesAllPoliciesSeedSweep) {
  std::vector<EquivalenceCase> cases;
  for (const MixSpec& mix : standard_mixes()) {
    for (const PolicySpec& policy : standard_policies()) {
      for (const std::uint64_t seed : {11u, 23u}) {
        EquivalenceCase c;
        c.workload = single_phase(mix, 48, 40, seed);
        c.machine = fast_machine();
        c.policy = policy;
        c.label = mix.name + "/" + policy.label(c.machine.steering) +
                  "/seed" + std::to_string(seed);
        cases.push_back(std::move(c));
      }
    }
  }
  // parallel_map needs default-constructible results; carry failures as
  // non-empty strings.
  std::vector<std::function<std::string()>> jobs;
  jobs.reserve(cases.size());
  for (const auto& c : cases) {
    jobs.emplace_back([&c]() -> std::string {
      const auto result = check_equivalence(c);
      return result ? std::string() : result.message();
    });
  }
  for (const auto& r : parallel_map(jobs)) {
    EXPECT_TRUE(r.empty()) << r;
  }
}

TEST(Equivalence, DependencyDensitySweep) {
  for (const double density : {0.0, 0.3, 0.7, 1.0}) {
    EquivalenceCase c;
    c.workload = single_phase(mixed_mix(), 64, 30, 5);
    c.workload.dep_density = density;
    c.machine = fast_machine();
    c.label = "density" + std::to_string(density);
    EXPECT_TRUE(check_equivalence(c));
  }
}

TEST(Equivalence, PhasedWorkloads) {
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    EquivalenceCase c;
    c.workload = alternating_phases(2048, 3, seed);
    c.machine = fast_machine();
    c.label = "alternating/seed" + std::to_string(seed);
    EXPECT_TRUE(check_equivalence(c));
  }
}

TEST(Equivalence, MachineShapeSweep) {
  struct Shape {
    unsigned fetch, queue, ruu, retire;
  };
  const Shape shapes[] = {{1, 4, 8, 1},
                          {2, 7, 16, 2},
                          {4, 7, 32, 4},
                          {8, 15, 32, 8},
                          {4, 31, 32, 4}};
  for (const auto& shape : shapes) {
    EquivalenceCase c;
    c.workload = single_phase(mixed_mix(), 48, 30, 7);
    c.machine = fast_machine();
    c.machine.fetch_width = shape.fetch;
    c.machine.queue_entries = shape.queue;
    c.machine.ruu_entries = shape.ruu;
    c.machine.retire_width = shape.retire;
    c.label = "shape" + std::to_string(shape.fetch) + "-" +
              std::to_string(shape.queue) + "-" + std::to_string(shape.ruu);
    EXPECT_TRUE(check_equivalence(c));
  }
}

TEST(Equivalence, PredictorAndTraceCacheVariants) {
  for (const PredictorKind pk :
       {PredictorKind::kNotTaken, PredictorKind::kBtfn,
        PredictorKind::kTwoBit}) {
    for (const bool tc : {false, true}) {
      EquivalenceCase c;
      c.workload = single_phase(int_heavy_mix(), 48, 40, 13);
      c.machine = fast_machine();
      c.machine.predictor = pk;
      c.machine.use_trace_cache = tc;
      c.label = "pred" + std::to_string(static_cast<int>(pk)) + "-tc" +
                std::to_string(tc);
      EXPECT_TRUE(check_equivalence(c));
    }
  }
}

TEST(Equivalence, ReconfigLatencySweep) {
  for (const unsigned lat : {1u, 8u, 64u}) {
    EquivalenceCase c;
    c.workload = alternating_phases(1024, 2, 31);
    c.machine = fast_machine();
    c.machine.loader.cycles_per_slot = lat;
    c.label = "lat" + std::to_string(lat);
    EXPECT_TRUE(check_equivalence(c));
  }
}

TEST(Equivalence, SteeringBasisSweep) {
  for (const SteeringSet& basis : all_bases()) {
    EquivalenceCase c;
    c.workload = single_phase(mixed_mix(), 48, 30, 41);
    c.machine = fast_machine();
    c.machine.steering = basis;
    c.machine.loader.num_slots = basis.num_slots;
    c.label = "basis-" + basis.name;
    EXPECT_TRUE(check_equivalence(c));
  }
}

TEST(Equivalence, TieBreakAndCemVariants) {
  for (const CemMode cem : {CemMode::kShiftApprox, CemMode::kExactDivide}) {
    for (const TieBreak tb : {TieBreak::kPaper, TieBreak::kLeastReconfig,
                              TieBreak::kLowestIndex}) {
      EquivalenceCase c;
      c.workload = single_phase(fp_heavy_mix(), 48, 30, 53);
      c.machine = fast_machine();
      c.policy.cem = cem;
      c.policy.tie_break = tb;
      c.label = "cem" + std::to_string(static_cast<int>(cem)) + "-tb" +
                std::to_string(static_cast<int>(tb));
      EXPECT_TRUE(check_equivalence(c));
    }
  }
}

TEST(Equivalence, SteerIntervalSweep) {
  for (const unsigned interval : {1u, 4u, 32u}) {
    EquivalenceCase c;
    c.workload = single_phase(mem_heavy_mix(), 48, 30, 61);
    c.machine = fast_machine();
    c.policy.interval = interval;
    c.label = "interval" + std::to_string(interval);
    EXPECT_TRUE(check_equivalence(c));
  }
}

TEST(Equivalence, RandomizedMachineConfigFuzz) {
  // Random machine shapes x loader geometries x cache geometries x
  // policies on random workloads: architecture must never depend on any
  // timing parameter.
  Xoshiro256 rng(0xFEED);
  std::vector<EquivalenceCase> cases;
  for (int trial = 0; trial < 24; ++trial) {
    EquivalenceCase c;
    const auto& mixes = standard_mixes();
    c.workload = single_phase(mixes[rng.next_below(mixes.size())], 48, 25,
                              1000 + static_cast<std::uint64_t>(trial));
    c.machine = fast_machine();
    c.machine.fetch_width =
        1u + static_cast<unsigned>(rng.next_below(kMaxFetchWidth));
    c.machine.queue_entries =
        2u + static_cast<unsigned>(rng.next_below(30));
    c.machine.ruu_entries =
        c.machine.queue_entries +
        static_cast<unsigned>(rng.next_below(32));
    c.machine.retire_width =
        1u + static_cast<unsigned>(rng.next_below(8));
    c.machine.issue_width = static_cast<unsigned>(rng.next_below(9));
    c.machine.loader.cycles_per_slot =
        1u + static_cast<unsigned>(rng.next_below(32));
    c.machine.loader.max_concurrent_regions =
        1u + static_cast<unsigned>(rng.next_below(4));
    c.machine.use_trace_cache = rng.next_bool(0.7);
    c.machine.use_dcache = rng.next_bool(0.5);
    c.machine.dcache.num_sets = 1u << rng.next_below(7);
    c.machine.dcache.ways =
        1u + static_cast<unsigned>(rng.next_below(4));
    c.machine.predictor =
        static_cast<PredictorKind>(rng.next_below(3));
    const auto roster = standard_policies();
    c.policy = roster[rng.next_below(roster.size())];
    c.label = "fuzz" + std::to_string(trial);
    cases.push_back(std::move(c));
  }
  std::vector<std::function<std::string()>> jobs;
  jobs.reserve(cases.size());
  for (const auto& c : cases) {
    jobs.emplace_back([&c]() -> std::string {
      const auto result = check_equivalence(c);
      return result ? std::string() : result.message();
    });
  }
  for (const auto& r : parallel_map(jobs)) {
    EXPECT_TRUE(r.empty()) << r;
  }
}

TEST(Equivalence, PipelinedUnitsAreTimingOnly) {
  for (const MixSpec& mix : {mdu_heavy_mix(), fp_heavy_mix()}) {
    EquivalenceCase c;
    c.workload = single_phase(mix, 48, 30, 83);
    c.machine = fast_machine();
    c.machine.pipelined_units = true;
    c.label = mix.name + "/pipelined";
    EXPECT_TRUE(check_equivalence(c));
  }
}

TEST(Equivalence, MillionInstructionSoak) {
  // One long phased run (~1M dynamic instructions) through the steered
  // machine: exercises trace-cache churn, thousands of reconfigurations
  // and deep speculation at scale.
  EquivalenceCase c;
  c.workload = alternating_phases(8192, 4, 4242);
  c.workload.outer_repeats = 16;
  c.machine = fast_machine();
  const ::testing::AssertionResult result = check_equivalence(c);
  EXPECT_TRUE(result);
}

TEST(Equivalence, CommitStreamCosim) {
  // Instruction-by-instruction commit-stream comparison (pc, successor,
  // integer result) — stronger than end-state equality and pinpoints the
  // first divergence on failure.
  MachineConfig cfg = fast_machine();
  for (const char* kernel : {"histogram", "bubble_sort", "binsearch"}) {
    EXPECT_TRUE(cosim_match(kernel_by_name(kernel).assemble_program(), cfg,
                            PolicySpec{}))
        << kernel;
  }
  for (const std::uint64_t seed : {5u, 29u}) {
    EXPECT_TRUE(cosim_match(
        generate_synthetic(single_phase(mixed_mix(), 48, 30, seed)), cfg,
        PolicySpec{}))
        << "seed " << seed;
  }
}

TEST(Equivalence, IssueWidthSweep) {
  for (const unsigned width : {1u, 2u, 0u}) {
    EquivalenceCase c;
    c.workload = single_phase(mixed_mix(), 48, 30, 79);
    c.machine = fast_machine();
    c.machine.issue_width = width;
    c.label = "issue-width" + std::to_string(width);
    EXPECT_TRUE(check_equivalence(c));
  }
}

TEST(Equivalence, DataCacheTimingDoesNotChangeArchitecture) {
  // The cache is timing-only; architectural state must be unaffected at
  // any geometry, including pathologically small caches.
  for (const unsigned sets : {1u, 4u, 64u}) {
    EquivalenceCase c;
    c.workload = single_phase(mem_heavy_mix(), 48, 40, 73);
    c.machine = fast_machine();
    c.machine.use_dcache = true;
    c.machine.dcache.num_sets = sets;
    c.machine.dcache.ways = 1;
    c.machine.dcache.miss_latency = 30;
    c.label = "dcache-sets" + std::to_string(sets);
    EXPECT_TRUE(check_equivalence(c));
  }
}

TEST(Equivalence, ExtensionPolicies) {
  for (const MixSpec& mix : {mixed_mix(), fp_heavy_mix()}) {
    for (const unsigned confirm : {2u, 4u}) {
      EquivalenceCase c;
      c.workload = single_phase(mix, 48, 30, 67);
      c.machine = fast_machine();
      c.policy.confirm = confirm;
      c.label = mix.name + "/confirm" + std::to_string(confirm);
      EXPECT_TRUE(check_equivalence(c));
    }
    EquivalenceCase g;
    g.workload = alternating_phases(1024, 2, 67);
    g.machine = fast_machine();
    g.policy.kind = PolicyKind::kGreedy;
    g.label = mix.name + "/greedy";
    EXPECT_TRUE(check_equivalence(g));

    EquivalenceCase la;
    la.workload = single_phase(mix, 48, 30, 67);
    la.machine = fast_machine();
    la.policy.lookahead = true;
    la.label = mix.name + "/lookahead";
    EXPECT_TRUE(check_equivalence(la));
  }
}

}  // namespace
}  // namespace steersim
