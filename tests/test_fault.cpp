// Fault-injection, scrubbing and graceful-degradation tests: injector
// determinism and scripting, loader corruption masking, scrub detection
// and repair accounting, permanent-failure fencing with target
// re-placement, kill/retry of in-flight executions, forward progress with
// the whole RFU fabric fenced off, and bit-identity of the fault-free
// path.
#include <gtest/gtest.h>

#include "config/steering_set.hpp"
#include "core/reference.hpp"
#include "cosim.hpp"
#include "fault/injector.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "workload/kernels.hpp"
#include "workload/synthetic.hpp"

namespace steersim {
namespace {

// ---------------------------------------------------------------- injector

TEST(FaultInjector, ScriptedEventsFireInCycleOrder) {
  FaultParams fp;
  fp.script = {{5, FaultKind::kTransientUpset, 1},
               {2, FaultKind::kPermanentFailure, 0}};  // deliberately unsorted
  FaultInjector inj(fp, 8);
  EXPECT_EQ(inj.sample(0).size(), 0u);
  EXPECT_EQ(inj.sample(1).size(), 0u);
  const auto at2 = inj.sample(2);
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2[0].kind, FaultKind::kPermanentFailure);
  EXPECT_EQ(at2[0].slot, 0u);
  EXPECT_EQ(inj.sample(3).size(), 0u);
  const auto at5 = inj.sample(5);
  ASSERT_EQ(at5.size(), 1u);
  EXPECT_EQ(at5[0].kind, FaultKind::kTransientUpset);
  EXPECT_EQ(at5[0].slot, 1u);
  EXPECT_EQ(inj.sample(100).size(), 0u);
}

TEST(FaultInjector, PassedScriptedEventsFireOnFirstConsultation) {
  FaultParams fp;
  fp.script = {{3, FaultKind::kTransientUpset, 2},
               {7, FaultKind::kTransientUpset, 4}};
  FaultInjector inj(fp, 8);
  const auto late = inj.sample(50);
  ASSERT_EQ(late.size(), 2u);
  EXPECT_EQ(late[0].slot, 2u);
  EXPECT_EQ(late[1].slot, 4u);
}

TEST(FaultInjector, RateSamplingIsDeterministicAcrossInstances) {
  FaultParams fp;
  fp.upset_rate = 0.05;
  fp.permanent_rate = 0.01;
  fp.seed = 77;
  FaultInjector a(fp, 8);
  FaultInjector b(fp, 8);
  unsigned total = 0;
  for (std::uint64_t c = 0; c < 2000; ++c) {
    const auto ea = a.sample(c);
    const auto eb = b.sample(c);
    ASSERT_EQ(ea.size(), eb.size()) << c;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i], eb[i]) << c;
      EXPECT_LT(ea[i].slot, 8u);
    }
    total += static_cast<unsigned>(ea.size());
  }
  EXPECT_GT(total, 0u) << "rates this high must fire within 2000 cycles";
}

TEST(FaultInjector, CertainRateFiresEveryCycle) {
  FaultParams fp;
  fp.upset_rate = 1.0;
  FaultInjector inj(fp, 4);
  for (std::uint64_t c = 0; c < 100; ++c) {
    const auto events = inj.sample(c);
    ASSERT_EQ(events.size(), 1u) << c;
    EXPECT_EQ(events[0].kind, FaultKind::kTransientUpset);
    EXPECT_LT(events[0].slot, 4u);
  }
}

TEST(FaultInjector, DisabledParamsReportDisabled) {
  EXPECT_FALSE(FaultParams{}.enabled());
  FaultParams scripted;
  scripted.script = {{0, FaultKind::kTransientUpset, 0}};
  EXPECT_TRUE(scripted.enabled());
  FaultParams rated;
  rated.upset_rate = 1e-6;
  EXPECT_TRUE(rated.enabled());
}

// ------------------------------------------------------------------ loader

LoaderParams fault_params(unsigned cycles_per_slot = 4,
                          unsigned scrub_interval = 0) {
  LoaderParams p;
  p.num_slots = 8;
  p.cycles_per_slot = cycles_per_slot;
  p.scrub_interval = scrub_interval;
  return p;
}

TEST(LoaderFaults, CorruptionMasksUnitFromEffectiveAllocationOnly) {
  const SteeringSet set = default_steering_set();
  ConfigurationLoader loader(fault_params(), set.preset_allocation(0));
  const FuCounts before = loader.allocation().counts();
  ASSERT_TRUE(loader.corrupt_slot(4));  // MDU head slot
  // Bookkeeping view unchanged (the hardware does not know), but the
  // engine-facing view loses the whole MDU.
  EXPECT_EQ(loader.allocation().counts(), before);
  const FuCounts effective = loader.effective_allocation().counts();
  EXPECT_EQ(effective[fu_index(FuType::kIntMdu)], 0u);
  EXPECT_EQ(effective[fu_index(FuType::kIntAlu)],
            before[fu_index(FuType::kIntAlu)]);
  EXPECT_TRUE(loader.corrupted().test(4));
}

TEST(LoaderFaults, ScrubDetectsRepairsAndRecordsLatency) {
  const SteeringSet set = default_steering_set();
  ConfigurationLoader loader(fault_params(4, /*scrub_interval=*/1),
                             set.preset_allocation(0));
  loader.request(set.preset_allocation(0));
  ASSERT_TRUE(loader.corrupt_slot(4));  // MDU occupies slots 4-5

  // Readback walks one slot per cycle from slot 0: detection at cycle 4.
  for (int c = 0; c < 5; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.stats().upsets_detected, 1u);
  EXPECT_EQ(loader.stats().detection_latency.count(), 1u);
  EXPECT_DOUBLE_EQ(loader.stats().detection_latency.mean(), 4.0);
  EXPECT_TRUE(loader.corrupted().none()) << "detection clears corruption";
  EXPECT_TRUE(loader.repairing().test(4));
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kIntMdu)], 0u)
      << "damaged region scrapped pending rewrite";

  // The repair rewrite flows through the ordinary partial-reconfig path.
  for (int c = 0; c < 16; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.stats().slots_repaired, 1u);
  EXPECT_TRUE(loader.repairing().none());
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kIntMdu)], 1u);
  EXPECT_EQ(loader.effective_allocation(), loader.allocation());
  EXPECT_GT(loader.stats().degraded_cycles, 0u);
  EXPECT_GT(loader.stats().scrub_reads, 4u);
}

TEST(LoaderFaults, CorruptedEmptySlotDetectedWithoutRepairTraffic) {
  ConfigurationLoader loader(fault_params(4, 1), AllocationVector(8));
  ASSERT_TRUE(loader.corrupt_slot(3));
  for (int c = 0; c < 4; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.stats().upsets_detected, 1u);
  EXPECT_EQ(loader.stats().slots_repaired, 0u);
  EXPECT_TRUE(loader.repairing().none());
  EXPECT_TRUE(loader.corrupted().none());
  EXPECT_TRUE(loader.idle()) << "no rewrite scheduled for an empty slot";
}

TEST(LoaderFaults, RewriteIncidentallyHealsUndetectedCorruption) {
  // An upset on a slot that steering rewrites anyway is healed by the
  // fresh frames without ever being counted as detected.
  ConfigurationLoader loader(fault_params(2), AllocationVector(8));
  ASSERT_TRUE(loader.corrupt_slot(0));
  loader.request(AllocationVector::place({1, 0, 0, 0, 0}, 8));
  for (int c = 0; c < 4; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_TRUE(loader.corrupted().none());
  EXPECT_EQ(loader.stats().upsets_detected, 0u);
  EXPECT_EQ(loader.effective_allocation().counts()[0], 1u);
}

TEST(LoaderFaults, FenceEvictsReplacesTargetAndDropsWhatCannotFit) {
  const SteeringSet set = default_steering_set();
  ConfigurationLoader loader(fault_params(1), set.preset_allocation(0));
  loader.request(set.preset_allocation(0));

  ASSERT_TRUE(loader.fence_slot(0));
  EXPECT_FALSE(loader.fence_slot(0)) << "double fence is a no-op";
  EXPECT_EQ(loader.stats().fence_events, 1u);
  EXPECT_EQ(loader.allocation().code(0), kEncEmpty);
  EXPECT_EQ(loader.effective_allocation().counts()[0], 3u)
      << "the fenced slot's ALU is gone, its neighbours survive";

  // Integer preset (4 ALU, 1 MDU, 2 LSU = 8 slots) on 7 surviving slots:
  // first fit keeps 4 ALU + MDU + 1 LSU and drops the second LSU.
  EXPECT_EQ(loader.stats().units_dropped, 1u);
  const FuCounts target = loader.target().counts();
  EXPECT_EQ(target[fu_index(FuType::kIntAlu)], 4u);
  EXPECT_EQ(target[fu_index(FuType::kIntMdu)], 1u);
  EXPECT_EQ(target[fu_index(FuType::kLsu)], 1u);

  // The loader converges to the re-placed target and never touches slot 0.
  for (int c = 0; c < 40; ++c) {
    loader.step(SlotMask{});
    EXPECT_EQ(loader.allocation().code(0), kEncEmpty) << c;
  }
  EXPECT_EQ(loader.reconfig_cost(set.preset_allocation(0)), 0u)
      << "cost is measured against the realizable placement";
  EXPECT_EQ(loader.allocation().counts(), loader.target().counts());
}

TEST(LoaderFaults, FenceAbortsInFlightRewriteAndRelocatesUnit) {
  ConfigurationLoader loader(fault_params(4), AllocationVector(8));
  loader.request(AllocationVector::place({0, 1, 0, 0, 0}, 8));  // MDU @ 0-1
  loader.step(SlotMask{});
  ASSERT_TRUE(loader.reconfiguring().test(0));

  ASSERT_TRUE(loader.fence_slot(0));
  EXPECT_TRUE(loader.reconfiguring().none()) << "in-flight write aborted";
  for (int c = 0; c < 20; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kIntMdu)], 1u);
  EXPECT_EQ(loader.allocation().code(0), kEncEmpty);
  EXPECT_EQ(loader.allocation().code(1), encoding_of(FuType::kIntMdu))
      << "unit re-placed at the first non-fenced base";
}

TEST(LoaderFaults, CorruptingFencedSlotIsRejected) {
  ConfigurationLoader loader(fault_params(), AllocationVector(8));
  ASSERT_TRUE(loader.fence_slot(5));
  EXPECT_FALSE(loader.corrupt_slot(5));
}

TEST(LoaderFaults, AllSlotsFencedYieldsEmptyRealizableTarget) {
  const SteeringSet set = default_steering_set();
  ConfigurationLoader loader(fault_params(1), set.preset_allocation(2));
  for (unsigned s = 0; s < 8; ++s) {
    ASSERT_TRUE(loader.fence_slot(s));
  }
  loader.request(set.preset_allocation(0));
  EXPECT_EQ(loader.target().counts(), FuCounts{});
  EXPECT_EQ(loader.reconfig_cost(set.preset_allocation(0)), 0u);
  EXPECT_EQ(loader.effective_allocation().counts(), FuCounts{});
  for (int c = 0; c < 10; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_TRUE(loader.idle());
  EXPECT_EQ(loader.stats().degraded_cycles, 10u);
}

// --------------------------------------------------------------- processor

TEST(ProcessorFaults, UpsetsKillExecutionsWhichRetryToCompletion) {
  // MDU-heavy work on the frozen integer preset keeps the RFU multiplier
  // busy; a high upset rate guarantees some executions die mid-flight.
  // Every killed instruction must retry and the final architectural state
  // must still match the in-order reference exactly.
  const Program program =
      generate_synthetic(single_phase(mdu_heavy_mix(), 48, 150, 7));
  MachineConfig cfg;
  cfg.loader.cycles_per_slot = 4;
  cfg.loader.scrub_interval = 16;
  cfg.fault.upset_rate = 0.1;
  cfg.fault.seed = 99;

  ReferenceInterpreter ref(cfg.data_memory_bytes);
  const auto ref_result = ref.run(program);
  ASSERT_TRUE(ref_result.halted);

  auto cpu = make_processor(
      program, cfg, {.kind = PolicyKind::kStaticPreset, .preset_index = 0});
  const RunOutcome outcome = cpu->run(5'000'000);
  ASSERT_EQ(outcome, RunOutcome::kHalted) << cpu->fault_message();

  EXPECT_TRUE(cpu->registers() == ref.registers());
  EXPECT_TRUE(cpu->memory() == ref.memory());
  EXPECT_EQ(cpu->stats().retired, ref_result.instructions);

  const FaultStats& fs = cpu->fault_stats();
  EXPECT_GT(fs.upsets_injected, 0u);
  EXPECT_GT(fs.executions_killed, 0u);
  EXPECT_GT(fs.instructions_retried, 0u);
  EXPECT_LE(fs.instructions_retried, fs.executions_killed);
  const LoaderStats& ls = cpu->loader().stats();
  EXPECT_GT(ls.upsets_detected, 0u);
  EXPECT_GT(ls.slots_repaired, 0u);
  EXPECT_GT(ls.degraded_cycles, 0u);
}

TEST(ProcessorFaults, ForwardProgressWithEntireFabricFencedMidRun) {
  // Script: permanently fence all 8 slots at staggered cycles while
  // transient upsets also rain down. The machine must finish on FFUs
  // alone, architecturally intact (the paper's forward-progress argument).
  MachineConfig cfg;
  cfg.loader.cycles_per_slot = 4;
  cfg.loader.scrub_interval = 8;
  cfg.fault.upset_rate = 0.02;
  cfg.fault.seed = 3;
  for (unsigned s = 0; s < 8; ++s) {
    cfg.fault.script.push_back(
        {200 + 150 * static_cast<std::uint64_t>(s),
         FaultKind::kPermanentFailure, s});
  }
  const Program program = generate_synthetic(alternating_phases(512, 3, 11));
  EXPECT_TRUE(cosim_match(program, cfg, {.kind = PolicyKind::kSteered}));

  auto cpu = make_processor(program, cfg, {.kind = PolicyKind::kSteered});
  ASSERT_EQ(cpu->run(10'000'000), RunOutcome::kHalted)
      << cpu->fault_message();
  EXPECT_EQ(cpu->fault_stats().permanent_failures, 8u);
  EXPECT_EQ(cpu->loader().fenced().count(), 8u);
  EXPECT_EQ(cpu->loader().effective_allocation().counts(), FuCounts{});
}

TEST(ProcessorFaults, RandomizedProgramsSurviveAggressiveUpsets) {
  // Property: across seeds, aggressive rate-based injection never breaks
  // architectural equivalence and never wedges the machine.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Program program = generate_synthetic(
        single_phase(mixed_mix(), 40, 100, seed));
    MachineConfig cfg;
    cfg.loader.cycles_per_slot = 2;
    cfg.loader.scrub_interval = 4;
    cfg.fault.upset_rate = 0.05;
    cfg.fault.permanent_rate = 0.0005;
    cfg.fault.seed = seed * 13 + 1;
    EXPECT_TRUE(cosim_match(program, cfg, {.kind = PolicyKind::kSteered}))
        << "seed " << seed;
  }
}

TEST(ProcessorFaults, ZeroRateConfigurationIsBitIdenticalToSeedPath) {
  // Enabling the scrubber with no fault source must leave every statistic
  // of a normal run untouched (readback is free and finds nothing).
  const Program program = kernel_by_name("fir").assemble_program();
  MachineConfig plain;
  MachineConfig scrubbed;
  scrubbed.loader.scrub_interval = 64;

  const PolicySpec spec{.kind = PolicyKind::kSteered};
  const SimResult a = simulate(program, plain, spec);
  const SimResult b = simulate(program, scrubbed, spec);

  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.retired, b.stats.retired);
  EXPECT_EQ(a.stats.dispatched, b.stats.dispatched);
  EXPECT_EQ(a.stats.issued, b.stats.issued);
  EXPECT_EQ(a.stats.squashed, b.stats.squashed);
  EXPECT_EQ(a.stats.branches, b.stats.branches);
  EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
  EXPECT_EQ(a.stats.resource_starved, b.stats.resource_starved);
  EXPECT_EQ(a.stats.queue_occupancy_sum, b.stats.queue_occupancy_sum);
  EXPECT_EQ(a.loader.targets_requested, b.loader.targets_requested);
  EXPECT_EQ(a.loader.regions_started, b.loader.regions_started);
  EXPECT_EQ(a.loader.slots_rewritten, b.loader.slots_rewritten);
  EXPECT_EQ(a.loader.blocked_cycles, b.loader.blocked_cycles);
  // The only difference the scrubber may make: readbacks happened.
  EXPECT_EQ(a.loader.scrub_reads, 0u);
  EXPECT_GT(b.loader.scrub_reads, 0u);
  EXPECT_EQ(b.loader.upsets_detected, 0u);
  EXPECT_EQ(b.loader.degraded_cycles, 0u);
  EXPECT_EQ(b.fault.upsets_injected, 0u);
}

TEST(ProcessorFaults, ReportContainsFaultSectionOnlyWhenActive) {
  const Program program = kernel_by_name("fib").assemble_program();
  MachineConfig cfg;
  const SimResult quiet = simulate(program, cfg, {});
  EXPECT_EQ(format_report(quiet).find("faults & scrubbing"),
            std::string::npos);

  cfg.fault.script = {{10, FaultKind::kTransientUpset, 0}};
  cfg.loader.scrub_interval = 8;
  const SimResult noisy = simulate(program, cfg, {});
  const std::string report = format_report(noisy);
  EXPECT_NE(report.find("faults & scrubbing"), std::string::npos);
  EXPECT_NE(report.find("upsets injected / detected"), std::string::npos);
}

}  // namespace
}  // namespace steersim
