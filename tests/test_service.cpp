// steersimd service tests (docs/SERVICE.md): protocol round-trips for
// every request/reply kind, strict JSON framing, the bounded queue's
// backpressure contract, worker-pool restartability, LRU cache behavior,
// and the SimService end-to-end guarantees the issue pins down — a replayed
// submit returns identical metrics with the second reply flagged
// "cache":"hit", and a flooded queue answers `queue_full` instead of
// hanging or dropping.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/json.hpp"
#include "svc/cache.hpp"
#include "svc/chaos.hpp"
#include "svc/protocol.hpp"
#include "svc/queue.hpp"
#include "svc/service.hpp"
#include "svc/worker_pool.hpp"

namespace steersim::svc {
namespace {

// ---------------------------------------------------------------------------
// Protocol round-trips: parse(to_json()) must compare equal for every kind.

Request parsed_request(const Request& in) {
  Request out;
  std::string error;
  EXPECT_TRUE(Request::parse(in.to_json(), out, error)) << error;
  return out;
}

Reply parsed_reply(const Reply& in) {
  Reply out;
  std::string error;
  EXPECT_TRUE(Reply::parse(in.to_json(), out, error)) << error;
  return out;
}

MultiEntry kernel_entry(std::string name, std::string policy = "steered") {
  MultiEntry entry;
  entry.kernel = std::move(name);
  entry.policy = std::move(policy);
  return entry;
}

MultiEntry elf_entry(std::string name, std::string policy = "steered") {
  MultiEntry entry;
  entry.elf = std::move(name);
  entry.policy = std::move(policy);
  return entry;
}

TEST(Protocol, RequestRoundTripsEveryKind) {
  for (const RequestType type :
       {RequestType::kPing, RequestType::kStats, RequestType::kShutdown}) {
    Request request;
    request.type = type;
    request.id = "req-7";
    EXPECT_EQ(parsed_request(request), request)
        << request_type_name(type);
  }
}

TEST(Protocol, SubmitRoundTripsWithDefaultsAndWithEveryFieldSet) {
  Request minimal;
  minimal.type = RequestType::kSubmit;
  minimal.kernel = "fib";
  EXPECT_EQ(parsed_request(minimal), minimal);

  Request full;
  full.type = RequestType::kSubmit;
  full.id = "job-42";
  full.asm_source = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
  full.policy = "oracle";
  full.max_cycles = 123456;
  full.interval = 64;
  full.confirm = 3;
  full.lookahead = true;
  full.seed = 7;
  full.wall_ms = 1500;
  full.config = {{"fetch_width", 8.0}, {"use_dcache", 1.0}};
  EXPECT_EQ(parsed_request(full), full);
  // Byte-stable: rendering the parsed message reproduces the same bytes.
  EXPECT_EQ(parsed_request(full).to_json(), full.to_json());
}

TEST(Protocol, IntegersPast2p53RoundTripExactly) {
  // Cycle budgets and counters are u64 on the wire; routing them through
  // a double would silently round anything >= 2^53. 2^53 + 1 is the
  // first casualty, so it is the canary.
  constexpr std::uint64_t kCanary = 9007199254740993ull;  // 2^53 + 1

  Request request;
  request.type = RequestType::kSubmit;
  request.kernel = "fib";
  request.max_cycles = kCanary;
  request.wall_ms = 18446744073709551615ull;  // UINT64_MAX
  request.seed = (1ull << 62) + 3;
  EXPECT_EQ(parsed_request(request), request);
  EXPECT_NE(request.to_json().find("9007199254740993"), std::string::npos);
  EXPECT_NE(request.to_json().find("18446744073709551615"),
            std::string::npos);

  Reply reply;
  reply.type = ReplyType::kResult;
  reply.cache = "miss";
  reply.digest = "0123456789abcdef";
  reply.policy = "steered";
  reply.outcome = "halted";
  reply.cycles = kCanary;
  reply.retired = kCanary + 2;
  reply.metrics_json = R"({"core.cycles":9007199254740993})";
  EXPECT_EQ(parsed_reply(reply), reply);
  // The embedded metrics object re-renders canonically, digit-identical.
  EXPECT_EQ(parsed_reply(reply).to_json(), reply.to_json());
}

TEST(Protocol, ElfSubmitRoundTrips) {
  Request request;
  request.type = RequestType::kSubmit;
  request.id = "elf-1";
  request.elf = "rv32_phases";
  request.max_cycles = 250000;
  EXPECT_EQ(parsed_request(request), request);
  EXPECT_EQ(parsed_request(request).to_json(), request.to_json());
}

TEST(Protocol, MultiSubmitRoundTrips) {
  Request request;
  request.type = RequestType::kSubmit;
  request.id = "multi-1";
  request.multi.push_back(kernel_entry("fib"));
  request.multi.push_back(elf_entry("rv32_int", "greedy"));
  request.arbiter = "prop-share";
  request.max_cycles = 100000;
  EXPECT_EQ(parsed_request(request), request);
  EXPECT_EQ(parsed_request(request).to_json(), request.to_json());

  // Default arbiter and default per-core policies stay off the wire.
  Request defaults;
  defaults.type = RequestType::kSubmit;
  defaults.multi.push_back(kernel_entry("fib"));
  EXPECT_EQ(parsed_request(defaults), defaults);
  EXPECT_EQ(defaults.to_json().find("arbiter"), std::string::npos);
  EXPECT_EQ(defaults.to_json().find("policy"), std::string::npos);
}

TEST(Protocol, ReplyRoundTripsEveryKind) {
  Reply pong;
  pong.type = ReplyType::kPong;
  pong.id = "p";
  EXPECT_EQ(parsed_reply(pong), pong);

  Reply goodbye;
  goodbye.type = ReplyType::kGoodbye;
  EXPECT_EQ(parsed_reply(goodbye), goodbye);

  Reply stats;
  stats.type = ReplyType::kStats;
  stats.stats_json = R"({"svc.admitted":2,"svc.submitted":4})";
  EXPECT_EQ(parsed_reply(stats), stats);

  Reply result;
  result.type = ReplyType::kResult;
  result.id = "job-42";
  result.cache = "miss";
  result.digest = "6de84f50c6a075fd";
  result.policy = "steered";
  result.outcome = "halted";
  result.cycles = 89;
  result.retired = 156;
  result.metrics_json = R"({"core.cycles":89,"core.retired":156})";
  EXPECT_EQ(parsed_reply(result), result);
  EXPECT_EQ(parsed_reply(result).to_json(), result.to_json());
}

TEST(Protocol, ErrorReplyRoundTripsWithRetriableBit) {
  const Reply retriable =
      Reply::error("j1", error_code::kQueueFull, "queue at capacity",
                   /*retriable=*/true);
  EXPECT_EQ(retriable.type, ReplyType::kError);
  EXPECT_TRUE(retriable.retriable);
  EXPECT_EQ(parsed_reply(retriable), retriable);

  const Reply fatal =
      Reply::error("j2", error_code::kBadRequest, "unknown kernel");
  EXPECT_FALSE(fatal.retriable);
  EXPECT_EQ(parsed_reply(fatal), fatal);
}

TEST(Protocol, ConcatenatedFramesAreRejected) {
  // The strict framing the protocol relies on: two objects on one line can
  // never be read as one message.
  Request request;
  std::string error;
  const std::string frame = Request{}.to_json();
  EXPECT_TRUE(Request::parse(frame, request, error));
  EXPECT_FALSE(Request::parse(frame + frame, request, error));
  EXPECT_FALSE(Request::parse(frame + " x", request, error));

  Reply reply;
  const std::string reply_frame = Reply{}.to_json();
  EXPECT_TRUE(Reply::parse(reply_frame, reply, error));
  EXPECT_FALSE(Reply::parse(reply_frame + reply_frame, reply, error));
}

TEST(Protocol, StrictJsonRejectsTrailingGarbageLenientPrefixDoesNot) {
  JsonValue value;
  EXPECT_TRUE(parse_json_strict(R"({"a":1})", value));
  EXPECT_FALSE(parse_json_strict(R"({"a":1}{"b":2})", value));
  EXPECT_FALSE(parse_json_strict(R"({"a":1} trailing)", value));
  EXPECT_TRUE(parse_json_strict("  {\"a\":1}\n", value))
      << "surrounding whitespace is not garbage";

  std::size_t consumed = 0;
  EXPECT_TRUE(parse_json_prefix(R"({"a":1}{"b":2})", value, consumed));
  EXPECT_EQ(consumed, 7u);
  EXPECT_EQ(render_json(value), R"({"a":1})");
}

TEST(Protocol, RenderJsonIsCanonical) {
  JsonValue value;
  ASSERT_TRUE(parse_json_strict(R"({ "b" : 2 , "a" : [ 1 , true , "x" ] })",
                                value));
  EXPECT_EQ(render_json(value), R"({"a":[1,true,"x"],"b":2})")
      << "keys sorted, whitespace normalized";
}

TEST(Protocol, Fnv1aChunkSentinelPreventsAliasing) {
  const std::uint64_t ab_c = Fnv1a().mix("ab").mix("c").value();
  const std::uint64_t a_bc = Fnv1a().mix("a").mix("bc").value();
  EXPECT_NE(ab_c, a_bc);
  EXPECT_EQ(Fnv1a().mix("ab").mix("c").hex().size(), 16u);
  EXPECT_EQ(Fnv1a().mix("x").value(), Fnv1a().mix("x").value());
}

// ---------------------------------------------------------------------------
// BoundedQueue: explicit backpressure, close-then-drain semantics.

TEST(BoundedQueue, TryPushReportsFullInsteadOfBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3)) << "at capacity: reject, never wait";
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_TRUE(queue.try_push(3)) << "pop freed a slot";
}

TEST(BoundedQueue, CloseDrainsQueuedItemsThenReturnsNullopt) {
  BoundedQueue<int> queue(4);
  queue.try_push(1);
  queue.try_push(2);
  queue.close();
  EXPECT_FALSE(queue.try_push(3)) << "closed queues admit nothing";
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt) << "closed and drained";
  queue.reopen();
  EXPECT_TRUE(queue.try_push(4));
  EXPECT_EQ(queue.pop(), 4);
}

TEST(BoundedQueue, ZeroCapacityIsPinnedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_FALSE(queue.try_push(2));
}

// ---------------------------------------------------------------------------
// WorkerPool: drains on stop, restartable.

TEST(WorkerPool, StopDrainsEveryQueuedJobAndStartRestarts) {
  BoundedQueue<int> queue(64);
  std::atomic<int> sum{0};
  WorkerPool<int> pool(queue, [&sum](int& job) { sum += job; });

  pool.start(3);
  EXPECT_EQ(pool.workers(), 3u);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(queue.try_push(i));
  }
  pool.stop();  // close + drain + join: all ten jobs must have run
  EXPECT_EQ(sum.load(), 55);
  EXPECT_FALSE(pool.running());

  pool.start(1);  // second generation reuses the reopened queue
  ASSERT_TRUE(queue.try_push(45));
  pool.stop();
  EXPECT_EQ(sum.load(), 100);
}

// Spins until `pred` holds; fails the test (returns false) after ~2 s so a
// broken pool cannot hang the suite.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(WorkerPool, CrashingJobIsIsolatedCountedAndHandedToTheHandler) {
  BoundedQueue<int> queue(8);
  std::atomic<int> sum{0};
  std::atomic<int> crashed_job{0};
  std::atomic<int> handler_runs{0};
  WorkerPool<int> pool(queue, [&sum](int& job) {
    if (job == -7) {
      throw std::runtime_error("boom");
    }
    if (job == -9) {
      throw ChaosCrash{};  // not a std::exception: needs the catch-all
    }
    sum += job;
  });
  pool.set_crash_handler([&](int& job, std::exception_ptr error) {
    crashed_job = job;
    ++handler_runs;
    EXPECT_NE(error, nullptr);
  });

  pool.start(2);
  for (const int job : {-7, 1, 2, 3}) {
    ASSERT_TRUE(queue.try_push(job));
  }
  pool.stop();
  EXPECT_EQ(sum.load(), 6) << "the crash costs one job, not the pool";
  EXPECT_EQ(pool.crashes(), 1u);
  EXPECT_EQ(handler_runs.load(), 1);
  EXPECT_EQ(crashed_job.load(), -7);

  // Restart after the exception: the next generation is undamaged, and a
  // crash that is NOT a std::exception is absorbed just the same.
  pool.start(1);
  ASSERT_TRUE(queue.try_push(-9));
  ASSERT_TRUE(queue.try_push(4));
  pool.stop();
  EXPECT_EQ(sum.load(), 10);
  EXPECT_EQ(pool.crashes(), 2u);
  EXPECT_EQ(crashed_job.load(), -9);
}

TEST(WorkerPool, ReplaceEvictsAWedgedWorkerWithoutLosingCapacity) {
  BoundedQueue<int> queue(8);
  std::atomic<bool> wedged{false};
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  std::atomic<unsigned> seen_slot{WorkerPool<int>::kNoSlot};
  WorkerPool<int> pool(queue, [&](int& job) {
    seen_slot = WorkerPool<int>::current_slot();
    if (job == 0) {  // simulates a worker that ignores cancellation
      wedged = true;
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    ++done;
  });
  EXPECT_EQ(WorkerPool<int>::current_slot(), WorkerPool<int>::kNoSlot)
      << "only worker threads have a slot";

  pool.start(1);
  ASSERT_TRUE(queue.try_push(0));
  ASSERT_TRUE(eventually([&] { return wedged.load(); }));
  EXPECT_EQ(seen_slot.load(), 0u);

  EXPECT_FALSE(pool.replace(99)) << "unknown slot";
  ASSERT_TRUE(pool.replace(0));
  EXPECT_EQ(pool.replaced(), 1u);
  EXPECT_EQ(pool.workers(), 1u) << "the slot is refilled, not removed";

  // The replacement serves new work while the evictee is still stuck.
  ASSERT_TRUE(queue.try_push(5));
  ASSERT_TRUE(eventually([&] { return done.load() == 1; }));

  release = true;  // let the detached straggler reach its exit check
  pool.stop();     // waits for joined AND detached workers
  EXPECT_EQ(done.load(), 2);
  EXPECT_FALSE(pool.replace(0)) << "stopped pools have nothing to evict";
}

// ---------------------------------------------------------------------------
// ResultCache: LRU order, refresh on lookup, disabled at capacity 0.

Reply result_reply(std::string id) {
  Reply reply;
  reply.type = ReplyType::kResult;
  reply.id = std::move(id);
  return reply;
}

TEST(ResultCache, EvictsLeastRecentlyUsedAndRefreshesOnLookup) {
  ResultCache cache(2);
  cache.insert(1, result_reply("one"));
  cache.insert(2, result_reply("two"));
  EXPECT_TRUE(cache.lookup(1).has_value());  // 1 becomes most recent
  cache.insert(3, result_reply("three"));    // evicts 2, not 1
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup(2).has_value());
  ASSERT_TRUE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.lookup(1)->id, "one");
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.insert(1, result_reply("one"));
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

// ---------------------------------------------------------------------------
// SimService end-to-end (in-process; the socket layer is exercised by the
// CI service-smoke job).

Request submit_kernel(std::string kernel, std::string id = "") {
  Request request;
  request.type = RequestType::kSubmit;
  request.kernel = std::move(kernel);
  request.id = std::move(id);
  return request;
}

TEST(SimService, ReplayedSubmitHitsCacheWithByteIdenticalMetrics) {
  SimService service({.workers = 2, .queue_capacity = 8});
  const Request request = submit_kernel("fib", "job-1");

  const Reply cold = service.handle(request);
  ASSERT_EQ(cold.type, ReplyType::kResult) << cold.message;
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(cold.outcome, "halted");
  EXPECT_GT(cold.cycles, 0u);
  EXPECT_FALSE(cold.metrics_json.empty());
  EXPECT_EQ(cold.digest.size(), 16u);

  const Reply hit = service.handle(request);
  ASSERT_EQ(hit.type, ReplyType::kResult) << hit.message;
  EXPECT_EQ(hit.cache, "hit");

  // Identical simulated metrics: the hit differs from the cold run only in
  // the cache flag — restoring it makes the replies bit-identical.
  Reply normalized = hit;
  normalized.cache = "miss";
  EXPECT_EQ(normalized, cold);
  EXPECT_EQ(normalized.to_json(), cold.to_json());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 1u) << "a hit reruns nothing";
}

TEST(SimService, DistinctConfigsGetDistinctDigests) {
  SimService service({.workers = 1, .queue_capacity = 4});
  const Reply base = service.handle(submit_kernel("fib"));
  Request tweaked = submit_kernel("fib");
  tweaked.config = {{"fetch_width", 8.0}};
  const Reply other = service.handle(tweaked);
  ASSERT_EQ(base.type, ReplyType::kResult) << base.message;
  ASSERT_EQ(other.type, ReplyType::kResult) << other.message;
  EXPECT_NE(base.digest, other.digest);
  EXPECT_EQ(other.cache, "miss") << "a different config is different work";
}

Request submit_elf(std::string fixture, std::string id = "") {
  Request request;
  request.type = RequestType::kSubmit;
  request.elf = std::move(fixture);
  request.id = std::move(id);
  return request;
}

TEST(SimService, ElfSubmitRunsAndReplaysFromCache) {
  SimService service({.workers = 2, .queue_capacity = 8});
  const Request request = submit_elf("rv32_int", "elf-job");

  const Reply cold = service.handle(request);
  ASSERT_EQ(cold.type, ReplyType::kResult) << cold.message;
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(cold.outcome, "halted");
  EXPECT_GT(cold.cycles, 0u);
  EXPECT_FALSE(cold.metrics_json.empty());

  const Reply hit = service.handle(request);
  ASSERT_EQ(hit.type, ReplyType::kResult) << hit.message;
  EXPECT_EQ(hit.cache, "hit");
  Reply normalized = hit;
  normalized.cache = "miss";
  EXPECT_EQ(normalized.to_json(), cold.to_json());

  // The digest covers the ELF image bytes, not the fixture name, and is
  // distinct from an unrelated binary's digest.
  const Reply other = service.handle(submit_elf("rv32_fp"));
  ASSERT_EQ(other.type, ReplyType::kResult) << other.message;
  EXPECT_NE(other.digest, cold.digest);
}

Request submit_multi(std::vector<MultiEntry> entries,
                     std::string arbiter = "round-robin",
                     std::string id = "") {
  Request request;
  request.type = RequestType::kSubmit;
  request.multi = std::move(entries);
  request.arbiter = std::move(arbiter);
  request.id = std::move(id);
  request.max_cycles = 60000;
  return request;
}

TEST(SimService, MultiSubmitRunsMergesMetricsAndReplaysFromCache) {
  SimService service({.workers = 2, .queue_capacity = 8});
  const Request request = submit_multi(
      {kernel_entry("fib"), kernel_entry("saxpy", "greedy")},
      "round-robin", "mc-1");

  const Reply cold = service.handle(request);
  ASSERT_EQ(cold.type, ReplyType::kResult) << cold.message;
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(cold.outcome, "halted");
  EXPECT_EQ(cold.policy, "multi:round-robin");
  EXPECT_GT(cold.cycles, 0u);
  EXPECT_GT(cold.retired, 0u);
  // Per-core namespaces plus fabric counters, merged in one registry.
  EXPECT_NE(cold.metrics_json.find("\"core0.sim.ipc\""), std::string::npos);
  EXPECT_NE(cold.metrics_json.find("\"core1.sim.ipc\""), std::string::npos);
  EXPECT_NE(cold.metrics_json.find("\"fabric.port_grants\""),
            std::string::npos);

  const Reply hit = service.handle(request);
  ASSERT_EQ(hit.type, ReplyType::kResult) << hit.message;
  EXPECT_EQ(hit.cache, "hit");
  Reply normalized = hit;
  normalized.cache = "miss";
  EXPECT_EQ(normalized.to_json(), cold.to_json());

  // The arbiter is part of the digest: different arbitration is
  // different work.
  const Reply other = service.handle(submit_multi(
      {kernel_entry("fib"), kernel_entry("saxpy", "greedy")},
      "priority"));
  ASSERT_EQ(other.type, ReplyType::kResult) << other.message;
  EXPECT_EQ(other.cache, "miss");
  EXPECT_NE(other.digest, cold.digest);
}

TEST(SimService, MultiBadRequestsAreTypedAndNotRetriable) {
  SimService service({.workers = 1, .queue_capacity = 4});

  Request mixed = submit_multi({kernel_entry("fib")});
  mixed.kernel = "fib";
  const Reply exclusive = service.handle(mixed);
  ASSERT_EQ(exclusive.type, ReplyType::kError);
  EXPECT_EQ(exclusive.code, error_code::kBadRequest);
  EXPECT_FALSE(exclusive.retriable);

  const Reply arbiter =
      service.handle(submit_multi({kernel_entry("fib")}, "no-such-arbiter"));
  EXPECT_EQ(arbiter.code, error_code::kBadRequest);

  const Reply both = service.handle(
      submit_multi({[] {
        MultiEntry entry = kernel_entry("fib");
        entry.elf = "rv32_int";
        return entry;
      }()}));
  EXPECT_EQ(both.code, error_code::kBadRequest);

  const Reply unknown =
      service.handle(submit_multi({kernel_entry("no_such_kernel")}));
  EXPECT_EQ(unknown.code, error_code::kBadRequest);

  const Reply too_many = service.handle(submit_multi(
      std::vector<MultiEntry>(9, kernel_entry("fib"))));
  EXPECT_EQ(too_many.code, error_code::kBadRequest);
}

TEST(SimService, ElfBadRequestsAreTypedAndNotRetriable) {
  SimService service({.workers = 1, .queue_capacity = 4});

  const Reply unknown = service.handle(submit_elf("no_such_fixture"));
  ASSERT_EQ(unknown.type, ReplyType::kError);
  EXPECT_EQ(unknown.code, error_code::kBadRequest);
  EXPECT_FALSE(unknown.retriable);

  Request both = submit_elf("rv32_int");
  both.kernel = "fib";
  EXPECT_EQ(service.handle(both).code, error_code::kBadRequest);
}

TEST(SimService, BadRequestsAreTypedAndNotRetriable) {
  SimService service({.workers = 1, .queue_capacity = 4});

  const Reply unknown = service.handle(submit_kernel("no_such_kernel"));
  ASSERT_EQ(unknown.type, ReplyType::kError);
  EXPECT_EQ(unknown.code, error_code::kBadRequest);
  EXPECT_FALSE(unknown.retriable);

  Request both = submit_kernel("fib");
  both.asm_source = "halt\n";
  EXPECT_EQ(service.handle(both).code, error_code::kBadRequest);

  Request bad_policy = submit_kernel("fib");
  bad_policy.policy = "clairvoyant";
  EXPECT_EQ(service.handle(bad_policy).code, error_code::kBadRequest);

  Request bad_knob = submit_kernel("fib");
  bad_knob.config = {{"warp_drive", 1.0}};
  EXPECT_EQ(service.handle(bad_knob).code, error_code::kBadRequest);

  Request bad_asm;
  bad_asm.type = RequestType::kSubmit;
  bad_asm.asm_source = "frobnicate r1, r2\n";
  EXPECT_EQ(service.handle(bad_asm).code, error_code::kBadRequest);

  EXPECT_EQ(service.stats().bad_requests, 5u);
}

TEST(SimService, OverBudgetJobIsRejectedWithDeadline) {
  SimService service({.workers = 1, .queue_capacity = 4});
  Request request;
  request.type = RequestType::kSubmit;
  // Never halts: the budget must end the run.
  request.asm_source = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
  request.max_cycles = 200;
  const Reply reply = service.handle(request);
  ASSERT_EQ(reply.type, ReplyType::kError);
  EXPECT_EQ(reply.code, error_code::kDeadline);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(SimService, FloodedQueueAnswersQueueFullNotAHangOrDrop) {
  // One worker, a one-slot queue, caching off: a burst of concurrent
  // submits must split into completed jobs and immediate retriable
  // queue_full rejections — every caller gets exactly one reply.
  SimService service({.workers = 1, .queue_capacity = 1, .cache_entries = 0});
  constexpr int kClients = 8;
  std::vector<Reply> replies(kClients);
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&service, &replies, c] {
        Request request = submit_kernel("matmul_int");
        request.seed = static_cast<std::uint64_t>(c);  // distinct jobs
        replies[static_cast<std::size_t>(c)] = service.handle(request);
      });
    }
  }
  int completed = 0;
  int rejected = 0;
  for (const Reply& reply : replies) {
    if (reply.type == ReplyType::kResult) {
      ++completed;
    } else {
      ASSERT_EQ(reply.type, ReplyType::kError);
      EXPECT_EQ(reply.code, error_code::kQueueFull);
      EXPECT_TRUE(reply.retriable) << "backpressure must invite a retry";
      ++rejected;
    }
  }
  EXPECT_EQ(completed + rejected, kClients) << "no reply lost";
  EXPECT_GE(completed, 1);
  EXPECT_GE(rejected, 1) << "a one-slot queue cannot absorb the burst";
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full,
            static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(completed));
}

TEST(SimService, ShutdownStopsAdmissionAndDrains) {
  SimService service({.workers = 2, .queue_capacity = 8});
  Request shutdown;
  shutdown.type = RequestType::kShutdown;
  EXPECT_EQ(service.handle(shutdown).type, ReplyType::kGoodbye);
  EXPECT_TRUE(service.draining());
  const Reply late = service.handle(submit_kernel("fib"));
  ASSERT_EQ(late.type, ReplyType::kError);
  EXPECT_EQ(late.code, error_code::kShuttingDown);
  service.drain();
}

TEST(SimService, CancelAllStopsInFlightJobsAtTheCheckWindow) {
  SimService service(
      {.workers = 1, .queue_capacity = 4, .cancel_check_cycles = 1024});
  Request request;
  request.type = RequestType::kSubmit;
  request.asm_source = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
  request.max_cycles = 40'000'000;  // far beyond any test's patience

  Reply reply;
  std::jthread submitter(
      [&service, &request, &reply] { reply = service.handle(request); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.cancel_all();
  submitter.join();

  ASSERT_EQ(reply.type, ReplyType::kError);
  EXPECT_EQ(reply.code, error_code::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(SimService, PingAndStatsRequestsAnswerInline) {
  SimService service({.workers = 1, .queue_capacity = 4});
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = "are-you-there";
  const Reply pong = service.handle(ping);
  EXPECT_EQ(pong.type, ReplyType::kPong);
  EXPECT_EQ(pong.id, "are-you-there");

  (void)service.handle(submit_kernel("fib"));
  Request stats;
  stats.type = RequestType::kStats;
  const Reply reply = service.handle(stats);
  ASSERT_EQ(reply.type, ReplyType::kStats);
  JsonValue value;
  ASSERT_TRUE(parse_json_strict(reply.stats_json, value))
      << "stats payload must be one strict JSON object";
  EXPECT_NE(reply.stats_json.find("\"svc.submitted\":1"), std::string::npos);
  EXPECT_NE(reply.stats_json.find("\"svc.workers\":1"), std::string::npos);

  const MetricRegistry registry = service.metrics();
  ASSERT_NE(registry.find("svc.completed"), nullptr);
  EXPECT_EQ(registry.find("svc.completed")->value, 1.0);
  ASSERT_NE(registry.find("svc.latency_ms_p50"), nullptr)
      << "latency quantiles ride the same registry";
}

TEST(SimService, JobDigestIsStableAndInputSensitive) {
  const std::uint64_t a = SimService::job_digest("halt\n", "fetch_width=4;");
  EXPECT_EQ(a, SimService::job_digest("halt\n", "fetch_width=4;"));
  EXPECT_NE(a, SimService::job_digest("halt\n", "fetch_width=8;"));
  EXPECT_NE(a, SimService::job_digest("nop\nhalt\n", "fetch_width=4;"));
}

// ---------------------------------------------------------------------------
// Wall-clock deadlines and the watchdog (docs/SERVICE.md §Failure modes).

/// Installs a programmatic chaos injector for one test and guarantees it
/// is removed again even on assertion failure. Tests must quiesce any
/// thread that might still be inside an injector hook (e.g. sleep past
/// stall_ms) before the guard's scope ends.
class ChaosGuard {
 public:
  explicit ChaosGuard(const ChaosSpec& spec) {
    ChaosInjector::install(std::make_unique<ChaosInjector>(spec));
  }
  ~ChaosGuard() { ChaosInjector::install(nullptr); }
  ChaosGuard(const ChaosGuard&) = delete;
  ChaosGuard& operator=(const ChaosGuard&) = delete;
};

TEST(SimService, WallDeadlineCancelsOverdueJobCooperatively) {
  SimService service({.workers = 1,
                      .queue_capacity = 4,
                      .cancel_check_cycles = 512,
                      .watchdog_poll_ms = 5,
                      // Generous grace: the worker notices the cooperative
                      // cancel long before the poison path would fire.
                      .watchdog_grace_ms = 10'000});
  Request request;
  request.type = RequestType::kSubmit;
  request.asm_source = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
  request.max_cycles = 40'000'000;
  request.wall_ms = 30;

  const Reply reply = service.handle(request);
  ASSERT_EQ(reply.type, ReplyType::kError) << reply.message;
  EXPECT_EQ(reply.code, error_code::kWallDeadline);
  EXPECT_TRUE(reply.retriable) << "a wall deadline invites a resubmit";
  EXPECT_NE(reply.message.find("wall deadline"), std::string::npos);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.wall_deadline_exceeded, 1u);
  EXPECT_EQ(stats.workers_poisoned, 0u)
      << "a cooperative worker must not be evicted";
  EXPECT_GE(stats.watchdog_scans, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(SimService, PlainJobsNeverWakeTheWatchdog) {
  SimService service({.workers = 1, .queue_capacity = 4});
  ASSERT_EQ(service.handle(submit_kernel("fib")).type, ReplyType::kResult);
  EXPECT_EQ(service.stats().watchdog_scans, 0u)
      << "without wall_ms the watchdog sleeps: zero overhead";
}

TEST(SimService, WallDeadlineIsAnSlaNotPartOfTheCacheDigest) {
  SimService service({.workers = 1, .queue_capacity = 4});
  const Reply cold = service.handle(submit_kernel("fib"));
  ASSERT_EQ(cold.type, ReplyType::kResult) << cold.message;

  Request again = submit_kernel("fib");
  again.wall_ms = 60'000;  // generous: can never fire
  const Reply hit = service.handle(again);
  ASSERT_EQ(hit.type, ReplyType::kResult) << hit.message;
  EXPECT_EQ(hit.cache, "hit") << "wall_ms changes no simulated semantics";
  EXPECT_EQ(hit.digest, cold.digest);
}

TEST(SimService, WedgedWorkerIsPoisonedReplacedAndTheReplyStillArrives) {
  ChaosSpec spec;
  spec.site(ChaosSite::kWorkerStall) = 1.0;
  spec.stall_ms = 300;  // ignores cancellation far past the grace window
  spec.seed = 9;
  const ChaosGuard chaos(spec);

  SimService service({.workers = 1,
                      .queue_capacity = 4,
                      .cache_entries = 0,
                      .watchdog_poll_ms = 5,
                      .watchdog_grace_ms = 40});
  Request request = submit_kernel("fib");
  request.wall_ms = 20;
  const Reply reply = service.handle(request);
  ASSERT_EQ(reply.type, ReplyType::kError) << reply.message;
  EXPECT_EQ(reply.code, error_code::kWallDeadline);
  EXPECT_TRUE(reply.retriable);

  // deliver() unblocks this thread *before* the watchdog finishes the
  // eviction bookkeeping: wait for the poison counter, don't race it.
  EXPECT_TRUE(eventually(
      [&] { return service.stats().workers_poisoned == 1; }));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.workers_poisoned, 1u);
  EXPECT_EQ(stats.wall_deadline_exceeded, 1u);
  EXPECT_EQ(stats.workers, 1u) << "capacity survives the eviction";

  // Let the detached straggler clear its stall and exit before the guard
  // tears the injector down, then prove the replacement worker is healthy.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ChaosInjector::install(nullptr);
  const Reply ok = service.handle(submit_kernel("fib"));
  EXPECT_EQ(ok.type, ReplyType::kResult) << ok.message;
  EXPECT_EQ(service.stats().completed, 1u);
}

TEST(SimService, WorkerCrashAnswersRetriableErrorAndThePoolSurvives) {
  ChaosSpec spec;
  spec.site(ChaosSite::kWorkerCrash) = 1.0;
  spec.seed = 3;
  const ChaosGuard chaos(spec);

  SimService service({.workers = 2, .queue_capacity = 4});
  const Reply reply = service.handle(submit_kernel("fib"));
  ASSERT_EQ(reply.type, ReplyType::kError) << reply.message;
  EXPECT_EQ(reply.code, error_code::kWorkerCrashed);
  EXPECT_TRUE(reply.retriable);
  EXPECT_EQ(service.stats().worker_crashes, 1u);

  ChaosInjector::install(nullptr);
  const Reply ok = service.handle(submit_kernel("fib"));
  ASSERT_EQ(ok.type, ReplyType::kResult)
      << "a crash consumes a job, never a worker: " << ok.message;
  EXPECT_EQ(ok.cache, "miss") << "the crashed attempt cached nothing";
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.workers, 2u);
}

// ---------------------------------------------------------------------------
// ChaosSpec grammar and ChaosInjector determinism.

TEST(Chaos, SpecParsesProbabilitiesDurationsAndSeed) {
  ChaosSpec spec;
  std::string error;
  ASSERT_TRUE(ChaosSpec::parse(
      "corrupt=0.15, drop=0.1, stall=1, stall_ms=40 : 4242", spec, error))
      << error;
  EXPECT_DOUBLE_EQ(spec.site(ChaosSite::kFrameCorrupt), 0.15);
  EXPECT_DOUBLE_EQ(spec.site(ChaosSite::kFrameDrop), 0.1);
  EXPECT_DOUBLE_EQ(spec.site(ChaosSite::kWorkerStall), 1.0);
  EXPECT_DOUBLE_EQ(spec.site(ChaosSite::kWorkerCrash), 0.0);
  EXPECT_EQ(spec.stall_ms, 40u);
  EXPECT_EQ(spec.seed, 4242u);
  EXPECT_TRUE(spec.any());
}

TEST(Chaos, SpecRejectsMalformedInput) {
  ChaosSpec spec;
  std::string error;
  EXPECT_FALSE(ChaosSpec::parse("", spec, error));
  EXPECT_FALSE(ChaosSpec::parse("warp_drive=0.5", spec, error))
      << "unknown key";
  EXPECT_FALSE(ChaosSpec::parse("drop=1.5", spec, error))
      << "probability above 1";
  EXPECT_FALSE(ChaosSpec::parse("drop=-0.1", spec, error));
  EXPECT_FALSE(ChaosSpec::parse("drop=0.5:nope", spec, error))
      << "non-numeric seed";
  EXPECT_FALSE(ChaosSpec::parse("stall_ms=40", spec, error))
      << "durations alone enable no site";
  EXPECT_FALSE(ChaosSpec::parse("drop=0", spec, error))
      << "all-zero spec is a configuration mistake, not silence";
  EXPECT_FALSE(ChaosSpec::parse("drop", spec, error)) << "missing '='";
}

TEST(Chaos, SameSpecReplaysTheSameInjectionSequence) {
  ChaosSpec spec;
  spec.site(ChaosSite::kFrameDrop) = 0.5;
  spec.seed = 77;
  ChaosInjector a(spec);
  ChaosInjector b(spec);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.roll(ChaosSite::kFrameDrop), b.roll(ChaosSite::kFrameDrop));
  }
  EXPECT_EQ(a.count(ChaosSite::kFrameDrop), b.count(ChaosSite::kFrameDrop));
  EXPECT_GT(a.count(ChaosSite::kFrameDrop), 0u);
  EXPECT_LT(a.count(ChaosSite::kFrameDrop), 200u);
  EXPECT_FALSE(a.roll(ChaosSite::kWorkerCrash))
      << "zero-probability sites consume no randomness";
}

TEST(Chaos, CorruptFlipsExactlyOneBit) {
  ChaosSpec spec;
  spec.site(ChaosSite::kFrameCorrupt) = 1.0;
  spec.seed = 11;
  ChaosInjector injector(spec);
  const std::string original = R"({"id":"j","type":"pong"})";
  std::string frame = original;
  ASSERT_TRUE(injector.corrupt(frame));
  ASSERT_EQ(frame.size(), original.size());
  int flipped = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    flipped += std::popcount(static_cast<unsigned char>(
        static_cast<unsigned char>(frame[i]) ^
        static_cast<unsigned char>(original[i])));
  }
  EXPECT_EQ(flipped, 1);
  EXPECT_EQ(injector.count(ChaosSite::kFrameCorrupt), 1u);
  EXPECT_EQ(injector.summary(), "corrupt=1");
}

}  // namespace
}  // namespace steersim::svc
