// steersimd service tests (docs/SERVICE.md): protocol round-trips for
// every request/reply kind, strict JSON framing, the bounded queue's
// backpressure contract, worker-pool restartability, LRU cache behavior,
// and the SimService end-to-end guarantees the issue pins down — a replayed
// submit returns identical metrics with the second reply flagged
// "cache":"hit", and a flooded queue answers `queue_full` instead of
// hanging or dropping.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "sim/json.hpp"
#include "svc/cache.hpp"
#include "svc/protocol.hpp"
#include "svc/queue.hpp"
#include "svc/service.hpp"
#include "svc/worker_pool.hpp"

namespace steersim::svc {
namespace {

// ---------------------------------------------------------------------------
// Protocol round-trips: parse(to_json()) must compare equal for every kind.

Request parsed_request(const Request& in) {
  Request out;
  std::string error;
  EXPECT_TRUE(Request::parse(in.to_json(), out, error)) << error;
  return out;
}

Reply parsed_reply(const Reply& in) {
  Reply out;
  std::string error;
  EXPECT_TRUE(Reply::parse(in.to_json(), out, error)) << error;
  return out;
}

TEST(Protocol, RequestRoundTripsEveryKind) {
  for (const RequestType type :
       {RequestType::kPing, RequestType::kStats, RequestType::kShutdown}) {
    Request request;
    request.type = type;
    request.id = "req-7";
    EXPECT_EQ(parsed_request(request), request)
        << request_type_name(type);
  }
}

TEST(Protocol, SubmitRoundTripsWithDefaultsAndWithEveryFieldSet) {
  Request minimal;
  minimal.type = RequestType::kSubmit;
  minimal.kernel = "fib";
  EXPECT_EQ(parsed_request(minimal), minimal);

  Request full;
  full.type = RequestType::kSubmit;
  full.id = "job-42";
  full.asm_source = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
  full.policy = "oracle";
  full.max_cycles = 123456;
  full.interval = 64;
  full.confirm = 3;
  full.lookahead = true;
  full.seed = 7;
  full.config = {{"fetch_width", 8.0}, {"use_dcache", 1.0}};
  EXPECT_EQ(parsed_request(full), full);
  // Byte-stable: rendering the parsed message reproduces the same bytes.
  EXPECT_EQ(parsed_request(full).to_json(), full.to_json());
}

TEST(Protocol, ReplyRoundTripsEveryKind) {
  Reply pong;
  pong.type = ReplyType::kPong;
  pong.id = "p";
  EXPECT_EQ(parsed_reply(pong), pong);

  Reply goodbye;
  goodbye.type = ReplyType::kGoodbye;
  EXPECT_EQ(parsed_reply(goodbye), goodbye);

  Reply stats;
  stats.type = ReplyType::kStats;
  stats.stats_json = R"({"svc.admitted":2,"svc.submitted":4})";
  EXPECT_EQ(parsed_reply(stats), stats);

  Reply result;
  result.type = ReplyType::kResult;
  result.id = "job-42";
  result.cache = "miss";
  result.digest = "6de84f50c6a075fd";
  result.policy = "steered";
  result.outcome = "halted";
  result.cycles = 89;
  result.retired = 156;
  result.metrics_json = R"({"core.cycles":89,"core.retired":156})";
  EXPECT_EQ(parsed_reply(result), result);
  EXPECT_EQ(parsed_reply(result).to_json(), result.to_json());
}

TEST(Protocol, ErrorReplyRoundTripsWithRetriableBit) {
  const Reply retriable =
      Reply::error("j1", error_code::kQueueFull, "queue at capacity",
                   /*retriable=*/true);
  EXPECT_EQ(retriable.type, ReplyType::kError);
  EXPECT_TRUE(retriable.retriable);
  EXPECT_EQ(parsed_reply(retriable), retriable);

  const Reply fatal =
      Reply::error("j2", error_code::kBadRequest, "unknown kernel");
  EXPECT_FALSE(fatal.retriable);
  EXPECT_EQ(parsed_reply(fatal), fatal);
}

TEST(Protocol, ConcatenatedFramesAreRejected) {
  // The strict framing the protocol relies on: two objects on one line can
  // never be read as one message.
  Request request;
  std::string error;
  const std::string frame = Request{}.to_json();
  EXPECT_TRUE(Request::parse(frame, request, error));
  EXPECT_FALSE(Request::parse(frame + frame, request, error));
  EXPECT_FALSE(Request::parse(frame + " x", request, error));

  Reply reply;
  const std::string reply_frame = Reply{}.to_json();
  EXPECT_TRUE(Reply::parse(reply_frame, reply, error));
  EXPECT_FALSE(Reply::parse(reply_frame + reply_frame, reply, error));
}

TEST(Protocol, StrictJsonRejectsTrailingGarbageLenientPrefixDoesNot) {
  JsonValue value;
  EXPECT_TRUE(parse_json_strict(R"({"a":1})", value));
  EXPECT_FALSE(parse_json_strict(R"({"a":1}{"b":2})", value));
  EXPECT_FALSE(parse_json_strict(R"({"a":1} trailing)", value));
  EXPECT_TRUE(parse_json_strict("  {\"a\":1}\n", value))
      << "surrounding whitespace is not garbage";

  std::size_t consumed = 0;
  EXPECT_TRUE(parse_json_prefix(R"({"a":1}{"b":2})", value, consumed));
  EXPECT_EQ(consumed, 7u);
  EXPECT_EQ(render_json(value), R"({"a":1})");
}

TEST(Protocol, RenderJsonIsCanonical) {
  JsonValue value;
  ASSERT_TRUE(parse_json_strict(R"({ "b" : 2 , "a" : [ 1 , true , "x" ] })",
                                value));
  EXPECT_EQ(render_json(value), R"({"a":[1,true,"x"],"b":2})")
      << "keys sorted, whitespace normalized";
}

TEST(Protocol, Fnv1aChunkSentinelPreventsAliasing) {
  const std::uint64_t ab_c = Fnv1a().mix("ab").mix("c").value();
  const std::uint64_t a_bc = Fnv1a().mix("a").mix("bc").value();
  EXPECT_NE(ab_c, a_bc);
  EXPECT_EQ(Fnv1a().mix("ab").mix("c").hex().size(), 16u);
  EXPECT_EQ(Fnv1a().mix("x").value(), Fnv1a().mix("x").value());
}

// ---------------------------------------------------------------------------
// BoundedQueue: explicit backpressure, close-then-drain semantics.

TEST(BoundedQueue, TryPushReportsFullInsteadOfBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3)) << "at capacity: reject, never wait";
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_TRUE(queue.try_push(3)) << "pop freed a slot";
}

TEST(BoundedQueue, CloseDrainsQueuedItemsThenReturnsNullopt) {
  BoundedQueue<int> queue(4);
  queue.try_push(1);
  queue.try_push(2);
  queue.close();
  EXPECT_FALSE(queue.try_push(3)) << "closed queues admit nothing";
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt) << "closed and drained";
  queue.reopen();
  EXPECT_TRUE(queue.try_push(4));
  EXPECT_EQ(queue.pop(), 4);
}

TEST(BoundedQueue, ZeroCapacityIsPinnedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_FALSE(queue.try_push(2));
}

// ---------------------------------------------------------------------------
// WorkerPool: drains on stop, restartable.

TEST(WorkerPool, StopDrainsEveryQueuedJobAndStartRestarts) {
  BoundedQueue<int> queue(64);
  std::atomic<int> sum{0};
  WorkerPool<int> pool(queue, [&sum](int& job) { sum += job; });

  pool.start(3);
  EXPECT_EQ(pool.workers(), 3u);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(queue.try_push(i));
  }
  pool.stop();  // close + drain + join: all ten jobs must have run
  EXPECT_EQ(sum.load(), 55);
  EXPECT_FALSE(pool.running());

  pool.start(1);  // second generation reuses the reopened queue
  ASSERT_TRUE(queue.try_push(45));
  pool.stop();
  EXPECT_EQ(sum.load(), 100);
}

// ---------------------------------------------------------------------------
// ResultCache: LRU order, refresh on lookup, disabled at capacity 0.

Reply result_reply(std::string id) {
  Reply reply;
  reply.type = ReplyType::kResult;
  reply.id = std::move(id);
  return reply;
}

TEST(ResultCache, EvictsLeastRecentlyUsedAndRefreshesOnLookup) {
  ResultCache cache(2);
  cache.insert(1, result_reply("one"));
  cache.insert(2, result_reply("two"));
  EXPECT_TRUE(cache.lookup(1).has_value());  // 1 becomes most recent
  cache.insert(3, result_reply("three"));    // evicts 2, not 1
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup(2).has_value());
  ASSERT_TRUE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.lookup(1)->id, "one");
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.insert(1, result_reply("one"));
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

// ---------------------------------------------------------------------------
// SimService end-to-end (in-process; the socket layer is exercised by the
// CI service-smoke job).

Request submit_kernel(std::string kernel, std::string id = "") {
  Request request;
  request.type = RequestType::kSubmit;
  request.kernel = std::move(kernel);
  request.id = std::move(id);
  return request;
}

TEST(SimService, ReplayedSubmitHitsCacheWithByteIdenticalMetrics) {
  SimService service({.workers = 2, .queue_capacity = 8});
  const Request request = submit_kernel("fib", "job-1");

  const Reply cold = service.handle(request);
  ASSERT_EQ(cold.type, ReplyType::kResult) << cold.message;
  EXPECT_EQ(cold.cache, "miss");
  EXPECT_EQ(cold.outcome, "halted");
  EXPECT_GT(cold.cycles, 0u);
  EXPECT_FALSE(cold.metrics_json.empty());
  EXPECT_EQ(cold.digest.size(), 16u);

  const Reply hit = service.handle(request);
  ASSERT_EQ(hit.type, ReplyType::kResult) << hit.message;
  EXPECT_EQ(hit.cache, "hit");

  // Identical simulated metrics: the hit differs from the cold run only in
  // the cache flag — restoring it makes the replies bit-identical.
  Reply normalized = hit;
  normalized.cache = "miss";
  EXPECT_EQ(normalized, cold);
  EXPECT_EQ(normalized.to_json(), cold.to_json());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 1u) << "a hit reruns nothing";
}

TEST(SimService, DistinctConfigsGetDistinctDigests) {
  SimService service({.workers = 1, .queue_capacity = 4});
  const Reply base = service.handle(submit_kernel("fib"));
  Request tweaked = submit_kernel("fib");
  tweaked.config = {{"fetch_width", 8.0}};
  const Reply other = service.handle(tweaked);
  ASSERT_EQ(base.type, ReplyType::kResult) << base.message;
  ASSERT_EQ(other.type, ReplyType::kResult) << other.message;
  EXPECT_NE(base.digest, other.digest);
  EXPECT_EQ(other.cache, "miss") << "a different config is different work";
}

TEST(SimService, BadRequestsAreTypedAndNotRetriable) {
  SimService service({.workers = 1, .queue_capacity = 4});

  const Reply unknown = service.handle(submit_kernel("no_such_kernel"));
  ASSERT_EQ(unknown.type, ReplyType::kError);
  EXPECT_EQ(unknown.code, error_code::kBadRequest);
  EXPECT_FALSE(unknown.retriable);

  Request both = submit_kernel("fib");
  both.asm_source = "halt\n";
  EXPECT_EQ(service.handle(both).code, error_code::kBadRequest);

  Request bad_policy = submit_kernel("fib");
  bad_policy.policy = "clairvoyant";
  EXPECT_EQ(service.handle(bad_policy).code, error_code::kBadRequest);

  Request bad_knob = submit_kernel("fib");
  bad_knob.config = {{"warp_drive", 1.0}};
  EXPECT_EQ(service.handle(bad_knob).code, error_code::kBadRequest);

  Request bad_asm;
  bad_asm.type = RequestType::kSubmit;
  bad_asm.asm_source = "frobnicate r1, r2\n";
  EXPECT_EQ(service.handle(bad_asm).code, error_code::kBadRequest);

  EXPECT_EQ(service.stats().bad_requests, 5u);
}

TEST(SimService, OverBudgetJobIsRejectedWithDeadline) {
  SimService service({.workers = 1, .queue_capacity = 4});
  Request request;
  request.type = RequestType::kSubmit;
  // Never halts: the budget must end the run.
  request.asm_source = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
  request.max_cycles = 200;
  const Reply reply = service.handle(request);
  ASSERT_EQ(reply.type, ReplyType::kError);
  EXPECT_EQ(reply.code, error_code::kDeadline);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(SimService, FloodedQueueAnswersQueueFullNotAHangOrDrop) {
  // One worker, a one-slot queue, caching off: a burst of concurrent
  // submits must split into completed jobs and immediate retriable
  // queue_full rejections — every caller gets exactly one reply.
  SimService service({.workers = 1, .queue_capacity = 1, .cache_entries = 0});
  constexpr int kClients = 8;
  std::vector<Reply> replies(kClients);
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&service, &replies, c] {
        Request request = submit_kernel("matmul_int");
        request.seed = static_cast<std::uint64_t>(c);  // distinct jobs
        replies[static_cast<std::size_t>(c)] = service.handle(request);
      });
    }
  }
  int completed = 0;
  int rejected = 0;
  for (const Reply& reply : replies) {
    if (reply.type == ReplyType::kResult) {
      ++completed;
    } else {
      ASSERT_EQ(reply.type, ReplyType::kError);
      EXPECT_EQ(reply.code, error_code::kQueueFull);
      EXPECT_TRUE(reply.retriable) << "backpressure must invite a retry";
      ++rejected;
    }
  }
  EXPECT_EQ(completed + rejected, kClients) << "no reply lost";
  EXPECT_GE(completed, 1);
  EXPECT_GE(rejected, 1) << "a one-slot queue cannot absorb the burst";
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full,
            static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(completed));
}

TEST(SimService, ShutdownStopsAdmissionAndDrains) {
  SimService service({.workers = 2, .queue_capacity = 8});
  Request shutdown;
  shutdown.type = RequestType::kShutdown;
  EXPECT_EQ(service.handle(shutdown).type, ReplyType::kGoodbye);
  EXPECT_TRUE(service.draining());
  const Reply late = service.handle(submit_kernel("fib"));
  ASSERT_EQ(late.type, ReplyType::kError);
  EXPECT_EQ(late.code, error_code::kShuttingDown);
  service.drain();
}

TEST(SimService, CancelAllStopsInFlightJobsAtTheCheckWindow) {
  SimService service(
      {.workers = 1, .queue_capacity = 4, .cancel_check_cycles = 1024});
  Request request;
  request.type = RequestType::kSubmit;
  request.asm_source = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
  request.max_cycles = 40'000'000;  // far beyond any test's patience

  Reply reply;
  std::jthread submitter(
      [&service, &request, &reply] { reply = service.handle(request); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.cancel_all();
  submitter.join();

  ASSERT_EQ(reply.type, ReplyType::kError);
  EXPECT_EQ(reply.code, error_code::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(SimService, PingAndStatsRequestsAnswerInline) {
  SimService service({.workers = 1, .queue_capacity = 4});
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = "are-you-there";
  const Reply pong = service.handle(ping);
  EXPECT_EQ(pong.type, ReplyType::kPong);
  EXPECT_EQ(pong.id, "are-you-there");

  (void)service.handle(submit_kernel("fib"));
  Request stats;
  stats.type = RequestType::kStats;
  const Reply reply = service.handle(stats);
  ASSERT_EQ(reply.type, ReplyType::kStats);
  JsonValue value;
  ASSERT_TRUE(parse_json_strict(reply.stats_json, value))
      << "stats payload must be one strict JSON object";
  EXPECT_NE(reply.stats_json.find("\"svc.submitted\":1"), std::string::npos);
  EXPECT_NE(reply.stats_json.find("\"svc.workers\":1"), std::string::npos);

  const MetricRegistry registry = service.metrics();
  ASSERT_NE(registry.find("svc.completed"), nullptr);
  EXPECT_EQ(registry.find("svc.completed")->value, 1.0);
  ASSERT_NE(registry.find("svc.latency_ms_p50"), nullptr)
      << "latency quantiles ride the same registry";
}

TEST(SimService, JobDigestIsStableAndInputSensitive) {
  const std::uint64_t a = SimService::job_digest("halt\n", "fetch_width=4;");
  EXPECT_EQ(a, SimService::job_digest("halt\n", "fetch_width=4;"));
  EXPECT_NE(a, SimService::job_digest("halt\n", "fetch_width=8;"));
  EXPECT_NE(a, SimService::job_digest("nop\nhalt\n", "fetch_width=4;"));
}

}  // namespace
}  // namespace steersim::svc
