// Randomized co-simulation of the columnar wake-up kernel against the
// preserved row-major scalar implementation (tests/wakeup_scalar_ref.hpp).
// Seeded operation sequences — insert, select+grant, reschedule, retire,
// squash, tick — drive both arrays in lockstep; after every operation the
// observable state must match bit for bit: request/unscheduled masks under
// random availability, free-entry counts, age order, per-entry fields, and
// statistics. This is the safety net the ISSUE's "bit-identical" claim
// rests on beyond the end-to-end bench digests.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sched/select_logic.hpp"
#include "wakeup_scalar_ref.hpp"

namespace steersim {
namespace {

ResourceAvail random_avail(Xoshiro256& rng) {
  ResourceAvail avail;
  for (auto& line : avail) {
    line = rng.next_below(2) == 1;
  }
  return avail;
}

FuType random_fu(Xoshiro256& rng) {
  return static_cast<FuType>(rng.next_below(kNumFuTypes));
}

/// A dependence mask drawn from the currently valid rows (the insert
/// contract both implementations share).
EntryMask random_deps(Xoshiro256& rng, const ScalarWakeupArray& ref) {
  EntryMask deps;
  for (unsigned i = 0; i < ref.num_entries(); ++i) {
    if (ref.entry(i).valid && rng.next_below(4) == 0) {
      deps.set(i);
    }
  }
  return deps;
}

::testing::AssertionResult same_state(const WakeupArray& dut,
                                      const ScalarWakeupArray& ref,
                                      const ResourceAvail& avail) {
  if (dut.free_entries() != ref.free_entries()) {
    return ::testing::AssertionFailure()
           << "free_entries " << dut.free_entries() << " vs "
           << ref.free_entries();
  }
  if (dut.full() != ref.full()) {
    return ::testing::AssertionFailure() << "full() differs";
  }
  if (dut.unscheduled() != ref.unscheduled()) {
    return ::testing::AssertionFailure()
           << "unscheduled " << dut.unscheduled().raw() << " vs "
           << ref.unscheduled().raw();
  }
  if (dut.request_execution(avail) != ref.request_execution(avail)) {
    return ::testing::AssertionFailure()
           << "request_execution " << dut.request_execution(avail).raw()
           << " vs " << ref.request_execution(avail).raw();
  }
  const auto dut_order = dut.age_order();
  const auto ref_order = ref.age_order();
  if (!std::equal(dut_order.begin(), dut_order.end(), ref_order.begin(),
                  ref_order.end())) {
    return ::testing::AssertionFailure() << "age_order differs";
  }
  for (unsigned i = 0; i < dut.num_entries(); ++i) {
    const WakeupEntry& a = dut.entry(i);
    const WakeupEntry& b = ref.entry(i);
    if (a.valid != b.valid || a.scheduled != b.scheduled ||
        a.result_available != b.result_available || a.deps != b.deps ||
        a.timer != b.timer || a.tag != b.tag ||
        (a.valid && (a.fu != b.fu || a.age != b.age))) {
      return ::testing::AssertionFailure() << "entry " << i << " differs";
    }
  }
  const WakeupStats& s = dut.stats();
  const WakeupStats& t = ref.stats();
  if (s.inserts != t.inserts || s.grants != t.grants ||
      s.reschedules != t.reschedules || s.retires != t.retires ||
      s.squashes != t.squashes) {
    return ::testing::AssertionFailure() << "stats differ";
  }
  return ::testing::AssertionSuccess();
}

/// One randomized episode: `steps` operations against both arrays.
void run_episode(std::uint64_t seed, unsigned num_entries, unsigned steps) {
  Xoshiro256 rng(seed);
  WakeupArray dut(num_entries);
  ScalarWakeupArray ref(num_entries);
  std::uint64_t next_tag = 1;
  for (unsigned step = 0; step < steps; ++step) {
    const auto op = rng.next_below(6);
    switch (op) {
      case 0:
      case 1: {  // insert (weighted: keeps the arrays populated)
        const FuType fu = random_fu(rng);
        const EntryMask deps = random_deps(rng, ref);
        const auto a = dut.insert(fu, deps, next_tag);
        const auto b = ref.insert(fu, deps, next_tag);
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
        if (a.has_value()) {
          ASSERT_EQ(*a, *b) << "step " << step;
          ++next_tag;
        }
        break;
      }
      case 2: {  // oldest-first select + grant with random resources
        const ResourceAvail avail = random_avail(rng);
        std::array<unsigned, kNumFuTypes> free{};
        for (auto& f : free) {
          f = static_cast<unsigned>(rng.next_below(3));
        }
        const unsigned latency = 1 + static_cast<unsigned>(rng.next_below(6));
        const auto dut_requests = dut.request_execution(avail);
        const auto ref_requests = ref.request_execution(avail);
        ASSERT_EQ(dut_requests, ref_requests) << "step " << step;
        const auto ref_order = ref.age_order();
        const GrantList a = select_oldest_first(dut, dut_requests,
                                                dut.age_order(), free);
        const GrantList b = select_oldest_first(
            dut, ref_requests, {ref_order.begin(), ref_order.size()}, free);
        ASSERT_EQ(a.size(), b.size()) << "step " << step;
        for (unsigned i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i], b[i]) << "step " << step;
          dut.grant(a[i], latency);
          ref.grant(a[i], latency);
        }
        break;
      }
      case 3: {  // reschedule a random scheduled row
        for (unsigned i = 0; i < ref.num_entries(); ++i) {
          if (ref.entry(i).valid && ref.entry(i).scheduled &&
              rng.next_below(2) == 0) {
            dut.reschedule(i);
            ref.reschedule(i);
            break;
          }
        }
        break;
      }
      case 4: {  // retire or squash a random valid row
        for (unsigned i = 0; i < ref.num_entries(); ++i) {
          if (ref.entry(i).valid && rng.next_below(3) == 0) {
            if (rng.next_below(2) == 0) {
              dut.retire(i);
              ref.retire(i);
            } else {
              dut.squash(i);
              ref.squash(i);
            }
            break;
          }
        }
        break;
      }
      default:  // tick
        dut.tick();
        ref.tick();
        break;
    }
    const ResourceAvail probe = random_avail(rng);
    ASSERT_TRUE(same_state(dut, ref, probe))
        << "seed " << seed << " step " << step << " op " << op;
  }
}

TEST(WakeupCosim, RandomEpisodesMatchScalarReference) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    run_episode(seed, /*num_entries=*/7, /*steps=*/400);
  }
}

TEST(WakeupCosim, FullWidthArrayMatches) {
  for (std::uint64_t seed = 100; seed <= 108; ++seed) {
    run_episode(seed, kMaxWakeupEntries, /*steps=*/400);
  }
}

TEST(WakeupCosim, TinyArrayChurnMatches) {
  // num_entries=2 maximizes row reuse: retire/insert/retire cycling is
  // where a stale column bit or order-list bug would surface first.
  for (std::uint64_t seed = 1000; seed <= 1012; ++seed) {
    run_episode(seed, /*num_entries=*/2, /*steps=*/600);
  }
}

TEST(WakeupCosim, AdvanceMatchesScalarTickLoop) {
  // The skip-ahead entry point: advance(k) against k scalar ticks.
  Xoshiro256 rng(42);
  WakeupArray dut(8);
  ScalarWakeupArray ref(8);
  for (std::uint64_t tag = 1; tag <= 6; ++tag) {
    const FuType fu = random_fu(rng);
    dut.insert(fu, {}, tag);
    ref.insert(fu, {}, tag);
  }
  for (unsigned row = 0; row < 6; ++row) {
    const unsigned latency = 2 + static_cast<unsigned>(rng.next_below(8));
    dut.grant(row, latency);
    ref.grant(row, latency);
  }
  while (dut.min_timer() > 0) {
    const unsigned k = std::max(1u, dut.min_timer());
    dut.advance(k);
    for (unsigned t = 0; t < k; ++t) {
      ref.tick();
    }
    ResourceAvail avail;
    avail.fill(true);
    ASSERT_TRUE(same_state(dut, ref, avail));
  }
}

}  // namespace
}  // namespace steersim
