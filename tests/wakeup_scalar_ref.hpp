// Reference oracle for the columnar wake-up kernel: the original row-major
// scalar implementation of WakeupArray, preserved verbatim (test-only).
// tests/test_wakeup_cosim.cpp drives random operation sequences through
// both and asserts bit-identical masks, stats, order, and grant behavior.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "sched/wakeup_array.hpp"

namespace steersim {

class ScalarWakeupArray {
 public:
  explicit ScalarWakeupArray(unsigned num_entries) : entries_(num_entries) {
    STEERSIM_EXPECTS(num_entries >= 1 && num_entries <= kMaxWakeupEntries);
  }

  unsigned num_entries() const {
    return static_cast<unsigned>(entries_.size());
  }

  bool full() const { return free_entries() == 0; }

  unsigned free_entries() const {
    unsigned n = 0;
    for (const auto& e : entries_) {
      n += e.valid ? 0u : 1u;
    }
    return n;
  }

  std::optional<unsigned> insert(FuType fu, EntryMask deps,
                                 std::uint64_t tag) {
    for (unsigned i = 0; i < num_entries(); ++i) {
      if (!entries_[i].valid) {
        WakeupEntry& e = entries_[i];
        e.valid = true;
        e.scheduled = false;
        e.fu = fu;
        e.deps = deps;
        e.timer = 0;
        e.result_available = false;
        e.age = next_age_++;
        e.tag = tag;
        ++stats_.inserts;
        return i;
      }
    }
    return std::nullopt;
  }

  EntryMask request_execution(const ResourceAvail& resource_available) const {
    EntryMask requests;
    for (unsigned i = 0; i < num_entries(); ++i) {
      const WakeupEntry& e = entries_[i];
      if (!e.valid || e.scheduled) {
        continue;
      }
      bool ready = resource_available[fu_index(e.fu)];
      for (unsigned j = 0; ready && j < num_entries(); ++j) {
        if (e.deps.test(j)) {
          ready = entries_[j].valid && entries_[j].result_available;
        }
      }
      if (ready) {
        requests.set(i);
      }
    }
    return requests;
  }

  void grant(unsigned idx, unsigned latency) {
    STEERSIM_EXPECTS(idx < num_entries());
    STEERSIM_EXPECTS(latency >= 1);
    WakeupEntry& e = entries_[idx];
    STEERSIM_EXPECTS(e.valid && !e.scheduled);
    e.scheduled = true;
    e.timer = latency;
    e.result_available = false;
    ++stats_.grants;
  }

  void reschedule(unsigned idx) {
    STEERSIM_EXPECTS(idx < num_entries());
    WakeupEntry& e = entries_[idx];
    STEERSIM_EXPECTS(e.valid);
    e.scheduled = false;
    e.timer = 0;
    e.result_available = false;
    ++stats_.reschedules;
  }

  void retire(unsigned idx) {
    STEERSIM_EXPECTS(idx < num_entries());
    STEERSIM_EXPECTS(entries_[idx].valid);
    clear_entry(idx);
    ++stats_.retires;
  }

  void squash(unsigned idx) {
    STEERSIM_EXPECTS(idx < num_entries());
    STEERSIM_EXPECTS(entries_[idx].valid);
    clear_entry(idx);
    ++stats_.squashes;
  }

  void tick() {
    for (auto& e : entries_) {
      if (e.valid && e.scheduled && e.timer > 0) {
        if (--e.timer == 0) {
          e.result_available = true;
        }
      }
    }
  }

  const WakeupEntry& entry(unsigned idx) const {
    STEERSIM_EXPECTS(idx < num_entries());
    return entries_[idx];
  }

  std::vector<unsigned> age_order() const {
    std::vector<unsigned> order;
    order.reserve(entries_.size());
    for (unsigned i = 0; i < num_entries(); ++i) {
      if (entries_[i].valid) {
        order.push_back(i);
      }
    }
    std::ranges::sort(order, [this](unsigned a, unsigned b) {
      return entries_[a].age < entries_[b].age;
    });
    return order;
  }

  EntryMask unscheduled() const {
    EntryMask mask;
    for (unsigned i = 0; i < num_entries(); ++i) {
      if (entries_[i].valid && !entries_[i].scheduled) {
        mask.set(i);
      }
    }
    return mask;
  }

  const WakeupStats& stats() const { return stats_; }

 private:
  void clear_entry(unsigned idx) {
    entries_[idx] = WakeupEntry{};
    for (auto& e : entries_) {
      e.deps.reset(idx);
    }
  }

  std::vector<WakeupEntry> entries_;
  std::uint64_t next_age_ = 0;
  WakeupStats stats_;
};

}  // namespace steersim
