// Unit tests for the workload layer: mix invariants, synthetic generator
// properties (determinism, mix fidelity, runnability), and kernel library
// coverage of all five unit types.
#include <gtest/gtest.h>

#include <map>

#include "core/reference.hpp"
#include "workload/kernels.hpp"
#include "workload/synthetic.hpp"

namespace steersim {
namespace {

TEST(Mixes, StandardMixesWellFormed) {
  const auto& mixes = standard_mixes();
  ASSERT_EQ(mixes.size(), 5u);
  for (const auto& mix : mixes) {
    EXPECT_FALSE(mix.name.empty());
    EXPECT_GT(mix.total(), 0.0) << mix.name;
  }
}

TEST(Synthetic, DeterministicPerSeed) {
  const auto spec = single_phase(mixed_mix(), 64, 10, 77);
  EXPECT_EQ(generate_synthetic_asm(spec), generate_synthetic_asm(spec));
  auto other = spec;
  other.seed = 78;
  EXPECT_NE(generate_synthetic_asm(spec), generate_synthetic_asm(other));
}

TEST(Synthetic, AssemblesAndHalts) {
  for (const MixSpec& mix : standard_mixes()) {
    const Program p = generate_synthetic(single_phase(mix, 32, 5, 3));
    ReferenceInterpreter ref;
    const auto result = ref.run(p);
    EXPECT_TRUE(result.halted) << mix.name;
    EXPECT_GT(result.instructions, 32u * 5u) << mix.name;
  }
}

std::map<FuType, double> dynamic_fu_shares(const SyntheticSpec& spec) {
  const Program p = generate_synthetic(spec);
  // Count dynamic instructions per FU type via the reference interpreter's
  // committed path (approximated by a static count over the loop body
  // weighted by its trip count: here we just execute and count statically
  // over code, which matches because all phases loop uniformly).
  std::map<FuType, double> counts;
  double total = 0;
  for (const auto& inst : p.code) {
    counts[fu_type_of(inst.op)] += 1;
    total += 1;
  }
  for (auto& [t, c] : counts) {
    c /= total;
  }
  return counts;
}

TEST(Synthetic, MixWeightsShapeTheInstructionStream) {
  const auto int_shares =
      dynamic_fu_shares(single_phase(int_heavy_mix(), 256, 1, 5));
  const auto fp_shares =
      dynamic_fu_shares(single_phase(fp_heavy_mix(), 256, 1, 5));
  EXPECT_GT(int_shares.at(FuType::kIntAlu), 0.5);
  EXPECT_GT(fp_shares.at(FuType::kFpAlu) + fp_shares.at(FuType::kFpMdu),
            0.4);
  EXPECT_GT(int_shares.at(FuType::kIntAlu),
            fp_shares.at(FuType::kIntAlu));
}

TEST(Synthetic, PhasedSpecRunsAllPhases) {
  SyntheticSpec spec = alternating_phases(256, 2, 9);
  ASSERT_EQ(spec.phases.size(), 4u);
  const Program p = generate_synthetic(spec);
  ReferenceInterpreter ref;
  const auto result = ref.run(p);
  EXPECT_TRUE(result.halted);
  // Both labels exist.
  EXPECT_TRUE(p.code_labels.contains("phase0"));
  EXPECT_TRUE(p.code_labels.contains("phase3"));
}

TEST(Synthetic, OuterRepeatsMultiplyDynamicLength) {
  auto spec = single_phase(int_heavy_mix(), 32, 4, 2);
  ReferenceInterpreter ref;
  const auto once = ref.run(generate_synthetic(spec)).instructions;
  spec.outer_repeats = 3;
  ReferenceInterpreter ref3;
  const auto thrice = ref3.run(generate_synthetic(spec)).instructions;
  EXPECT_GT(thrice, 2 * once);
}

TEST(Synthetic, BranchMixProducesForwardBranches) {
  MixSpec mix = int_heavy_mix();
  mix.branch = 5.0;
  const Program p = generate_synthetic(single_phase(mix, 128, 2, 21));
  unsigned branches = 0;
  for (const auto& inst : p.code) {
    if (op_info(inst.op).is_branch && inst.imm > 0) {
      ++branches;
    }
  }
  EXPECT_GT(branches, 5u);
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
}

TEST(Kernels, LibraryCoversAllFiveUnitTypes) {
  std::array<bool, kNumFuTypes> seen{};
  for (const auto& kernel : kernel_library()) {
    for (const auto& inst : kernel.assemble_program().code) {
      seen[fu_index(fu_type_of(inst.op))] = true;
    }
  }
  for (unsigned t = 0; t < kNumFuTypes; ++t) {
    EXPECT_TRUE(seen[t]) << fu_type_name(static_cast<FuType>(t));
  }
}

TEST(Kernels, NamesUniqueAndLookupWorks) {
  std::set<std::string> names;
  for (const auto& kernel : kernel_library()) {
    EXPECT_TRUE(names.insert(kernel.name).second) << kernel.name;
    EXPECT_EQ(kernel_by_name(kernel.name).name, kernel.name);
    EXPECT_FALSE(kernel.description.empty()) << kernel.name;
  }
  EXPECT_GE(names.size(), 15u);
}

}  // namespace
}  // namespace steersim
