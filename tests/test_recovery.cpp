// ECC and checkpoint/rollback tests: SECDED codec round-trips over every
// single- and double-bit corruption, loader detect-at-read behaviour,
// undo-journal memory rewind, and full-machine rollback producing the same
// retired-instruction stream as a fault-free run.
#include <gtest/gtest.h>

#include <vector>

#include "config/ecc.hpp"
#include "config/steering_set.hpp"
#include "cosim.hpp"
#include "recovery/recovery.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "workload/kernels.hpp"
#include "workload/synthetic.hpp"

namespace steersim {
namespace {

// ------------------------------------------------------------------- codec

TEST(Ecc, CleanCodewordsRoundTripAllPayloads) {
  for (unsigned data = 0; data < 16; ++data) {
    const std::uint8_t cw = ecc_encode(static_cast<std::uint8_t>(data));
    const EccDecoded d = ecc_decode(cw);
    EXPECT_EQ(d.outcome, EccOutcome::kClean) << "data " << data;
    EXPECT_EQ(d.data, data);
  }
}

TEST(Ecc, EverySingleBitFlipIsCorrectedToTheOriginalPayload) {
  for (unsigned data = 0; data < 16; ++data) {
    const std::uint8_t cw = ecc_encode(static_cast<std::uint8_t>(data));
    for (unsigned bit = 0; bit < 8; ++bit) {
      const EccDecoded d =
          ecc_decode(static_cast<std::uint8_t>(cw ^ (1u << bit)));
      EXPECT_EQ(d.outcome, EccOutcome::kCorrected)
          << "data " << data << " bit " << bit;
      EXPECT_EQ(d.data, data) << "data " << data << " bit " << bit;
    }
  }
}

TEST(Ecc, EveryDoubleBitFlipIsDetectedAsUncorrectable) {
  for (unsigned data = 0; data < 16; ++data) {
    const std::uint8_t cw = ecc_encode(static_cast<std::uint8_t>(data));
    for (unsigned a = 0; a < 8; ++a) {
      for (unsigned b = a + 1; b < 8; ++b) {
        const EccDecoded d = ecc_decode(
            static_cast<std::uint8_t>(cw ^ (1u << a) ^ (1u << b)));
        EXPECT_EQ(d.outcome, EccOutcome::kUncorrectable)
            << "data " << data << " bits " << a << "," << b;
      }
    }
  }
}

// ------------------------------------------------------------- loader + ECC

LoaderParams ecc_params() {
  LoaderParams p;
  p.num_slots = 8;
  p.cycles_per_slot = 4;
  p.ecc = true;
  return p;
}

TEST(LoaderEcc, SingleUpsetCorrectedAtNextReadWithoutRepairTraffic) {
  const SteeringSet set = default_steering_set();
  ConfigurationLoader loader(ecc_params(), set.preset_allocation(0));
  const FuCounts before = loader.allocation().counts();
  ASSERT_TRUE(loader.corrupt_slot(4));
  EXPECT_TRUE(loader.corrupted().test(4));

  loader.step(SlotMask{});
  EXPECT_EQ(loader.stats().ecc_corrections, 1u);
  EXPECT_EQ(loader.stats().ecc_uncorrectable, 0u);
  EXPECT_TRUE(loader.corrupted().none()) << "corrected in place";
  EXPECT_TRUE(loader.repairing().none()) << "no rewrite needed";
  EXPECT_EQ(loader.allocation().counts(), before);
  EXPECT_EQ(loader.effective_allocation().counts(), before);
  // Detect-at-read: latency is the cycles until the next loader step.
  EXPECT_EQ(loader.stats().detection_latency.count(), 1u);
  EXPECT_EQ(loader.stats().scrub_reads, 0u) << "no readback traffic";
}

TEST(LoaderEcc, DoubleUpsetEscalatesToRepairPath) {
  const SteeringSet set = default_steering_set();
  ConfigurationLoader loader(ecc_params(), set.preset_allocation(0));
  // Two upsets on the same slot in one cycle flip two distinct codeword
  // bits: beyond SECDED correction, so detection must escalate to the
  // scrub-style scrap-and-rewrite path.
  ASSERT_TRUE(loader.corrupt_slot(4));
  ASSERT_TRUE(loader.corrupt_slot(4));

  loader.step(SlotMask{});
  EXPECT_EQ(loader.stats().ecc_corrections, 0u);
  EXPECT_EQ(loader.stats().ecc_uncorrectable, 1u);
  EXPECT_EQ(loader.stats().upsets_detected, 1u);
  EXPECT_TRUE(loader.corrupted().none()) << "detection clears corruption";
  EXPECT_TRUE(loader.repairing().test(4));
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kIntMdu)], 0u)
      << "damaged region scrapped pending rewrite";
  loader.request(set.preset_allocation(0));
  for (int c = 0; c < 20; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.stats().slots_repaired, 1u);
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kIntMdu)], 1u);
}

TEST(LoaderEcc, EccIdleWithNoUpsetsChangesNothing) {
  const SteeringSet set = default_steering_set();
  ConfigurationLoader loader(ecc_params(), set.preset_allocation(1));
  for (int c = 0; c < 50; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.stats().ecc_corrections, 0u);
  EXPECT_EQ(loader.stats().ecc_uncorrectable, 0u);
  EXPECT_EQ(loader.stats().degraded_cycles, 0u);
}

// --------------------------------------------------------- recovery manager

TEST(RecoveryManager, JournalUnwindRestoresOverlappingWrites) {
  RecoveryParams rp;
  rp.checkpoint_interval = 64;
  RecoveryManager mgr(rp);
  DataMemory mem(256);
  mem.store_word(8, 0x1122334455667788LL);
  mem.store_byte(40, 0x5a);

  mgr.take_checkpoint(Checkpoint{});
  // Overlapping writes: whole word, then a byte inside it, then the word
  // again (deduped). Undo replays newest-first, so the original image must
  // come back exactly.
  mgr.journal_store(mem, 8, 8);
  mem.store_word(8, -1);
  mgr.journal_store(mem, 12, 1);
  mem.store_byte(12, 0x7f);
  mgr.journal_store(mem, 8, 8);  // duplicate (addr,size): no new record
  mem.store_word(8, 42);
  mgr.journal_store(mem, 40, 1);
  mem.store_byte(40, 0);

  EXPECT_EQ(mgr.stats().journal_records, 3u);
  mgr.unwind_memory(mem);
  EXPECT_EQ(mem.load_word(8), 0x1122334455667788LL);
  EXPECT_EQ(mem.load_byte(40), 0x5a);
  EXPECT_EQ(mgr.stats().journal_records_peak, 3u);
}

TEST(RecoveryManager, CheckpointOpensFreshJournalEpoch) {
  RecoveryParams rp;
  rp.checkpoint_interval = 10;
  RecoveryManager mgr(rp);
  EXPECT_FALSE(mgr.has_checkpoint());
  DataMemory mem(64);
  mgr.journal_store(mem, 0, 8);  // before any checkpoint: ignored
  EXPECT_EQ(mgr.stats().journal_records, 0u);

  mgr.take_checkpoint(Checkpoint{});
  ASSERT_TRUE(mgr.has_checkpoint());
  mgr.journal_store(mem, 0, 8);
  EXPECT_EQ(mgr.stats().journal_records, 1u);
  mgr.take_checkpoint(Checkpoint{});
  mgr.journal_store(mem, 0, 8);  // same address journals again: new epoch
  EXPECT_EQ(mgr.stats().journal_records, 2u);
  EXPECT_TRUE(mgr.checkpoint_due(20));
  EXPECT_FALSE(mgr.checkpoint_due(25));
}

// --------------------------------------------------------------- processor

/// Runs with checkpointing and the given faults; asserts the observed
/// retired stream (rollback-truncated) matches the fault-free reference.
void expect_rollback_preserves_commit_stream(const MachineConfig& cfg,
                                             const Program& program) {
  const auto ref =
      reference_commits(program, cfg.data_memory_bytes, 5'000'000);

  auto cpu = make_processor(program, cfg, {.kind = PolicyKind::kSteered});
  ASSERT_NE(cpu->recovery(), nullptr);
  std::vector<CommitRecord> ooo;
  cpu->set_retire_hook([&ooo](const RuuEntry& e) {
    ooo.push_back(CommitRecord{e.pc, e.actual_next, e.int_result});
  });
  cpu->recovery()->set_rollback_hook([&ooo](const Checkpoint& cp) {
    ASSERT_LE(cp.retired, ooo.size());
    ooo.resize(cp.retired);  // commits past the checkpoint will replay
  });
  ASSERT_EQ(cpu->run(10'000'000), RunOutcome::kHalted)
      << cpu->fault_message();

  EXPECT_GT(cpu->recovery()->stats().rollbacks, 0u)
      << "scenario must actually exercise a rollback";
  ASSERT_EQ(ooo.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ooo[i].pc, ref[i].pc) << "commit #" << i;
    ASSERT_EQ(ooo[i].next_pc, ref[i].next_pc) << "commit #" << i;
    ASSERT_EQ(ooo[i].int_result, ref[i].int_result) << "commit #" << i;
  }
}

TEST(ProcessorRecovery, RollbackOnPermanentFailureReplaysIdentically) {
  MachineConfig cfg;
  cfg.loader.cycles_per_slot = 4;
  cfg.recovery.checkpoint_interval = 256;
  cfg.fault.script.push_back({900, FaultKind::kPermanentFailure, 2});
  cfg.fault.script.push_back({2500, FaultKind::kPermanentFailure, 5});
  const Program program = generate_synthetic(alternating_phases(512, 3, 11));
  expect_rollback_preserves_commit_stream(cfg, program);
}

TEST(ProcessorRecovery, RollbackUnderUpsetRainStaysArchitecturallyCorrect) {
  MachineConfig cfg;
  cfg.loader.cycles_per_slot = 2;
  cfg.loader.ecc = true;
  cfg.recovery.checkpoint_interval = 128;
  cfg.fault.upset_rate = 0.01;
  cfg.fault.seed = 21;
  cfg.fault.script.push_back({700, FaultKind::kPermanentFailure, 1});
  const Program program =
      generate_synthetic(single_phase(mixed_mix(), 48, 120, 5));
  expect_rollback_preserves_commit_stream(cfg, program);
}

TEST(ProcessorRecovery, RecoveryStatsAccountForTheRewind) {
  MachineConfig cfg;
  cfg.recovery.checkpoint_interval = 512;
  cfg.fault.script.push_back({1500, FaultKind::kPermanentFailure, 3});
  const Program program = generate_synthetic(alternating_phases(512, 2, 9));

  const SimResult r =
      simulate(program, cfg, {.kind = PolicyKind::kSteered}, 10'000'000);
  ASSERT_EQ(r.outcome, RunOutcome::kHalted);
  EXPECT_GT(r.recovery.checkpoints_taken, 0u);
  ASSERT_EQ(r.recovery.rollbacks, 1u);
  EXPECT_GT(r.recovery.cycles_rewound, 0u);
  EXPECT_LE(r.recovery.cycles_rewound, 512u)
      << "rewind never exceeds the checkpoint interval";
  EXPECT_GT(r.recovery.journal_records, 0u);

  const std::string report = format_report(r);
  EXPECT_NE(report.find("checkpoint recovery"), std::string::npos);
  EXPECT_NE(report.find("rollbacks"), std::string::npos);
}

TEST(ProcessorRecovery, EccAloneMatchesReferenceWithoutScrubbing) {
  // ECC with no scrubber: upsets are corrected at the read path and the
  // machine stays architecturally exact.
  MachineConfig cfg;
  cfg.loader.cycles_per_slot = 2;
  cfg.loader.ecc = true;
  cfg.loader.scrub_interval = 0;
  cfg.fault.upset_rate = 0.05;
  cfg.fault.seed = 31;
  const Program program =
      generate_synthetic(single_phase(mdu_heavy_mix(), 40, 120, 3));
  EXPECT_TRUE(cosim_match(program, cfg, {.kind = PolicyKind::kSteered}));
}

TEST(ProcessorRecovery, DisabledRecoveryAndEccAreBitIdenticalToPlain) {
  // The whole subsystem off (the default) must leave every statistic of a
  // normal run untouched; enabled-but-quiet checkpointing may only add
  // checkpoint accounting, never perturb the machine.
  const Program program = kernel_by_name("fir").assemble_program();
  MachineConfig plain;
  MachineConfig quiet;
  quiet.loader.ecc = true;
  quiet.recovery.checkpoint_interval = 1024;

  const PolicySpec spec{.kind = PolicyKind::kSteered};
  const SimResult a = simulate(program, plain, spec);
  const SimResult b = simulate(program, quiet, spec);

  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.retired, b.stats.retired);
  EXPECT_EQ(a.stats.dispatched, b.stats.dispatched);
  EXPECT_EQ(a.stats.issued, b.stats.issued);
  EXPECT_EQ(a.stats.squashed, b.stats.squashed);
  EXPECT_EQ(a.stats.mispredicts, b.stats.mispredicts);
  EXPECT_EQ(a.stats.queue_occupancy_sum, b.stats.queue_occupancy_sum);
  EXPECT_EQ(a.loader.targets_requested, b.loader.targets_requested);
  EXPECT_EQ(a.loader.slots_rewritten, b.loader.slots_rewritten);
  EXPECT_EQ(a.loader.blocked_cycles, b.loader.blocked_cycles);
  EXPECT_EQ(b.loader.ecc_corrections, 0u);
  EXPECT_EQ(b.loader.ecc_uncorrectable, 0u);
  EXPECT_EQ(b.recovery.rollbacks, 0u);
  EXPECT_GT(b.recovery.checkpoints_taken, 0u);
  EXPECT_EQ(a.recovery.checkpoints_taken, 0u);
}

}  // namespace
}  // namespace steersim
