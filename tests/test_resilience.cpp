// Resilience-surface tests (docs/SERVICE.md §Failure modes): the idle-read
// (slowloris) timeout, SIGPIPE immunity when a client vanishes before its
// reply, SteersimClient's reconnect/retry/backoff discipline — including
// recovery through injected frame chaos — and the full-jitter backoff math.
//
// The socket tests drive a real SocketServer over a Unix domain socket in
// /tmp; they are POSIX-only, like the server itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "common/rng.hpp"
#include "svc/chaos.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace steersim::svc {
namespace {

// ---------------------------------------------------------------------------
// Full-jitter backoff: pure math, portable.

TEST(Backoff, ZeroBaseNeverSleeps) {
  Xoshiro256 rng(1);
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    EXPECT_EQ(SteersimClient::backoff_delay_ms(attempt, 0, 1000, rng), 0u);
  }
}

TEST(Backoff, DelayIsBoundedByTheGrowingCeilingAndTheCap) {
  Xoshiro256 rng(42);
  std::set<std::uint64_t> seen;
  for (int draw = 0; draw < 200; ++draw) {
    EXPECT_LE(SteersimClient::backoff_delay_ms(0, 8, 1000, rng), 8u);
    EXPECT_LE(SteersimClient::backoff_delay_ms(3, 8, 1000, rng), 64u);
    // Attempt 77 would shift base off the end of uint64: the cap holds.
    const std::uint64_t capped =
        SteersimClient::backoff_delay_ms(77, 8, 1000, rng);
    EXPECT_LE(capped, 1000u);
    seen.insert(capped);
  }
  EXPECT_GT(seen.size(), 1u) << "full jitter must actually jitter";
}

// ---------------------------------------------------------------------------
// Client vs a daemon that does not exist: fail fast, typed, retriable.

TEST(Client, AbsentDaemonYieldsASynthesizedTransportError) {
  ClientOptions options;
  options.socket_path = "/tmp/steersim-test-no-such-daemon.sock";
  options.connect_timeout_ms = 200;
  options.max_attempts = 3;
  options.backoff_base_ms = 0;
  SteersimClient client(options);

  Request ping;
  ping.type = RequestType::kPing;
  ping.id = "anyone-home";
  const Reply reply = client.call(ping);
  ASSERT_EQ(reply.type, ReplyType::kError);
  EXPECT_EQ(reply.code, error_code::kTransport)
      << "a code the server never sends: unmistakably client-side";
  EXPECT_TRUE(reply.retriable);
  EXPECT_EQ(reply.id, "anyone-home");
  EXPECT_NE(reply.message.find("after 3 attempts"), std::string::npos)
      << reply.message;
  EXPECT_EQ(client.stats().connects, 0u);
  EXPECT_FALSE(client.connected());
}

#ifndef _WIN32

// ---------------------------------------------------------------------------
// Socket-level harness: a real SimService + SocketServer on a /tmp socket.

std::string unique_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/steersim-test-" + std::string(tag) + "-" +
         std::to_string(static_cast<long>(::getpid())) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

class ServerHarness {
 public:
  ServerHarness(const ServiceConfig& config, ServerOptions options,
                const char* tag)
      : service_(config) {
    options.socket_path = unique_socket_path(tag);
    server_ = std::make_unique<SocketServer>(service_, options);
    listening_ = server_->listen();
    EXPECT_TRUE(listening_);
    if (listening_) {
      serve_thread_ = std::jthread([this] { server_->serve(); });
    }
  }

  ~ServerHarness() {
    server_->stop();
    if (serve_thread_.joinable()) {
      serve_thread_.join();
    }
    ::unlink(server_->socket_path().c_str());
  }

  SimService& service() { return service_; }
  const std::string& path() const { return server_->socket_path(); }

 private:
  SimService service_;
  std::unique_ptr<SocketServer> server_;
  bool listening_ = false;
  std::jthread serve_thread_;
};

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
#ifdef MSG_NOSIGNAL
    const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                          MSG_NOSIGNAL);
#else
    const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
#endif
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until EOF or `deadline_ms`; returns everything received.
std::string raw_read_until_eof(int fd, int deadline_ms) {
  std::string out;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  char buffer[4096];
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      break;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready <= 0) {
      break;
    }
    const auto n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      break;  // EOF (or error): the server closed its side
    }
    out.append(buffer, static_cast<std::size_t>(n));
  }
  return out;
}

Request submit_fib(std::uint64_t seed, std::string id = "") {
  Request request;
  request.type = RequestType::kSubmit;
  request.kernel = "fib";
  request.seed = seed;
  request.id = std::move(id);
  return request;
}

// ---------------------------------------------------------------------------
// Satellite: the slowloris guard. A connection holding a half frame open
// gets a typed retriable `timeout` error, then the server closes it.

TEST(Resilience, IdleConnectionIsTimedOutWithATypedError) {
  ServerHarness harness({.workers = 1, .queue_capacity = 4},
                        {.idle_timeout_ms = 100}, "idle");
  const int fd = raw_connect(harness.path());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, R"({"type":"ping")"));  // half a frame, no '\n'

  const std::string received = raw_read_until_eof(fd, 5000);
  ::close(fd);
  const std::size_t newline = received.find('\n');
  ASSERT_NE(newline, std::string::npos)
      << "expected one error frame, got: " << received;
  Reply reply;
  std::string error;
  ASSERT_TRUE(Reply::parse(received.substr(0, newline), reply, error))
      << error;
  ASSERT_EQ(reply.type, ReplyType::kError);
  EXPECT_EQ(reply.code, error_code::kTimeout);
  EXPECT_TRUE(reply.retriable) << "an idle cut invites a clean retry";
  EXPECT_EQ(received.substr(newline + 1), "")
      << "nothing after the error frame: the connection is closed";
}

// ---------------------------------------------------------------------------
// Satellite: SIGPIPE immunity. A client that submits and vanishes before
// reading its reply must cost the daemon one EPIPE, not the process.

TEST(Resilience, ServerSurvivesAClientThatVanishesBeforeItsReply) {
  ServerHarness harness({.workers = 1, .queue_capacity = 4}, {}, "vanish");
  const int fd = raw_connect(harness.path());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, submit_fib(1, "doomed").to_json() + "\n"));
  ::close(fd);  // gone before the reply: the server's write hits EPIPE

  // Wait for the submit to have been processed, then prove the daemon is
  // still answering.
  for (int i = 0; i < 2000 && harness.service().stats().submitted == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(harness.service().stats().submitted, 1u);

  ClientOptions options;
  options.socket_path = harness.path();
  SteersimClient client(options);
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = "still-there";
  const Reply pong = client.call(ping);
  ASSERT_EQ(pong.type, ReplyType::kPong) << pong.message;
  EXPECT_EQ(pong.id, "still-there");
}

// ---------------------------------------------------------------------------
// Tentpole: the resilient client completes every job through frame chaos.

TEST(Resilience, ClientRetriesThroughFrameChaosToEventualSuccess) {
  ChaosSpec spec;
  spec.site(ChaosSite::kFrameDrop) = 0.5;
  spec.site(ChaosSite::kFrameCorrupt) = 0.25;
  spec.seed = 1234;
  ChaosInjector::install(std::make_unique<ChaosInjector>(spec));

  {
    ServerHarness harness({.workers = 2, .queue_capacity = 8}, {}, "chaos");
    ClientOptions options;
    options.socket_path = harness.path();
    options.read_timeout_ms = 2000;
    options.max_attempts = 64;
    options.backoff_base_ms = 1;
    options.backoff_cap_ms = 4;
    SteersimClient client(options);

    // Type is the only safe assertion on the payload: a corrupt-site bit
    // flip in a *data* byte (say, inside `outcome`) yields a frame that
    // still parses — the protocol has no checksum, so such corruption is
    // indistinguishable from a genuine reply. A flip that breaks the
    // JSON or the type tag is caught by strict parsing and retried.
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const Reply reply = client.call(submit_fib(seed));
      ASSERT_EQ(reply.type, ReplyType::kResult)
          << "seed " << seed << ": " << reply.message;
    }
    const ClientStats stats = client.stats();
    EXPECT_GE(stats.retries_transport, 1u)
        << "a 50% drop rate must have forced at least one retry";
    EXPECT_GE(stats.reconnects, 1u)
        << "dropped frames close the connection: reconnects follow";
    EXPECT_GT(stats.attempts, 6u);
  }
  // The harness (and its connection threads) are down: safe to retire the
  // injector.
  ChaosInjector::install(nullptr);
}

// ---------------------------------------------------------------------------
// Retriable error replies retry on the live connection (no reconnect).

TEST(Resilience, RetriableErrorRepliesRetryWithoutReconnecting) {
  ServerHarness harness({.workers = 1,
                         .queue_capacity = 4,
                         .cancel_check_cycles = 512,
                         .watchdog_poll_ms = 5,
                         .watchdog_grace_ms = 10'000},
                        {}, "retriable");
  ClientOptions options;
  options.socket_path = harness.path();
  options.max_attempts = 2;
  options.backoff_base_ms = 0;
  SteersimClient client(options);

  Request hopeless;
  hopeless.type = RequestType::kSubmit;
  hopeless.asm_source = "loop:\n  addi r1, r1, 1\n  beq r0, r0, loop\n";
  hopeless.max_cycles = 40'000'000;
  hopeless.wall_ms = 30;
  const Reply reply = client.call(hopeless);
  ASSERT_EQ(reply.type, ReplyType::kError);
  EXPECT_EQ(reply.code, error_code::kWallDeadline)
      << "attempts exhausted: the last retriable reply comes back verbatim";
  EXPECT_TRUE(reply.retriable);

  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.retries_retriable, 1u);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.reconnects, 0u)
      << "error replies are healthy transport: keep the connection";
  EXPECT_EQ(harness.service().stats().wall_deadline_exceeded, 2u);
}

#endif  // !_WIN32

}  // namespace
}  // namespace steersim::svc
