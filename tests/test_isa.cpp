// ISA-level tests: opcode metadata invariants, encode/decode round-trips
// (including randomized property sweeps), and disassembly formatting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/instruction.hpp"

namespace steersim {
namespace {

TEST(OpInfo, EveryOpcodeHasMnemonicAndLatency) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    const OpInfo& info = op_info(static_cast<Opcode>(i));
    EXPECT_FALSE(info.mnemonic.empty()) << i;
    EXPECT_GE(info.latency, 1u) << info.mnemonic;
  }
}

TEST(OpInfo, EachOpcodeRequiresExactlyOneFuType) {
  // The paper's premise: every instruction is supported by exactly one
  // type of functional unit. fu_type_of is total and single-valued by
  // construction; check the classification is sensible.
  EXPECT_EQ(fu_type_of(Opcode::kAdd), FuType::kIntAlu);
  EXPECT_EQ(fu_type_of(Opcode::kBeq), FuType::kIntAlu);
  EXPECT_EQ(fu_type_of(Opcode::kMul), FuType::kIntMdu);
  EXPECT_EQ(fu_type_of(Opcode::kDiv), FuType::kIntMdu);
  EXPECT_EQ(fu_type_of(Opcode::kLw), FuType::kLsu);
  EXPECT_EQ(fu_type_of(Opcode::kFsw), FuType::kLsu);
  EXPECT_EQ(fu_type_of(Opcode::kFadd), FuType::kFpAlu);
  EXPECT_EQ(fu_type_of(Opcode::kCvtFI), FuType::kFpAlu);
  EXPECT_EQ(fu_type_of(Opcode::kFmul), FuType::kFpMdu);
  EXPECT_EQ(fu_type_of(Opcode::kFsqrt), FuType::kFpMdu);
}

TEST(OpInfo, LatencyOrdering) {
  // Divides are the long-latency ops in each class.
  EXPECT_GT(op_info(Opcode::kDiv).latency, op_info(Opcode::kMul).latency);
  EXPECT_GT(op_info(Opcode::kFdiv).latency, op_info(Opcode::kFmul).latency);
  EXPECT_GT(op_info(Opcode::kFsqrt).latency, op_info(Opcode::kFdiv).latency);
  EXPECT_EQ(op_info(Opcode::kAdd).latency, 1u);
}

TEST(OpInfo, ControlFlagsConsistent) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    const OpInfo& info = op_info(static_cast<Opcode>(i));
    EXPECT_FALSE(info.is_branch && info.is_jump) << info.mnemonic;
    EXPECT_FALSE(info.is_load && info.is_store) << info.mnemonic;
    if (info.is_branch || info.is_jump) {
      EXPECT_EQ(info.fu, FuType::kIntAlu) << info.mnemonic;
    }
    if (info.is_load || info.is_store) {
      EXPECT_EQ(info.fu, FuType::kLsu) << info.mnemonic;
    }
  }
}

TEST(Encoding, RoundTripRepresentative) {
  const Instruction cases[] = {
      make_rr(Opcode::kAdd, 1, 2, 3),
      make_ri(Opcode::kAddi, 5, 0, -42),
      make_ri(Opcode::kLw, 7, 2, 8),
      make_store(Opcode::kSw, 9, 2, -16),
      make_branch(Opcode::kBne, 3, 0, -100),
      make_branch(Opcode::kBltu, 1, 2, 32),
      make_branch(Opcode::kBgeu, 4, 5, -8),
      make_jump(Opcode::kJal, 31, 12345),
      Instruction{Opcode::kJr, 0, 31, 0, 0},
      Instruction{Opcode::kHalt, 0, 0, 0, 0},
      make_ri(Opcode::kLui, 4, 0, kImm15Max),
  };
  for (const auto& inst : cases) {
    EXPECT_EQ(decode(encode(inst)), inst) << disassemble(inst);
  }
}

TEST(Encoding, RoundTripRandomizedPropertySweep) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20000; ++trial) {
    Instruction inst;
    inst.op = static_cast<Opcode>(rng.next_below(kNumOpcodes));
    const OpInfo& info = op_info(inst.op);
    auto reg = [&rng] {
      return static_cast<std::uint8_t>(rng.next_below(kNumIntRegs));
    };
    switch (info.format) {
      case Format::kR:
        inst.rd = reg();
        inst.rs1 = reg();
        inst.rs2 = reg();
        break;
      case Format::kI:
        inst.rd = reg();
        inst.rs1 = info.rs1_class == RegClass::kNone ? 0 : reg();
        inst.imm = static_cast<std::int32_t>(
                       rng.next_below(kImm15Max - kImm15Min + 1)) +
                   kImm15Min;
        break;
      case Format::kS:
      case Format::kB:
        inst.rs1 = reg();
        inst.rs2 = reg();
        inst.imm = static_cast<std::int32_t>(
                       rng.next_below(kImm15Max - kImm15Min + 1)) +
                   kImm15Min;
        break;
      case Format::kJ:
        inst.rd = inst.op == Opcode::kJal ? reg() : 0;
        inst.imm = static_cast<std::int32_t>(
                       rng.next_below(kImm20Max - kImm20Min + 1)) +
                   kImm20Min;
        break;
      case Format::kJr:
        inst.rs1 = reg();
        break;
      case Format::kNone:
        break;
    }
    EXPECT_EQ(decode(encode(inst)), inst) << disassemble(inst);
  }
}

TEST(Disassemble, Formats) {
  EXPECT_EQ(disassemble(make_rr(Opcode::kAdd, 1, 2, 3)), "add r1, r2, r3");
  EXPECT_EQ(disassemble(make_ri(Opcode::kAddi, 5, 0, -7)),
            "addi r5, r0, -7");
  EXPECT_EQ(disassemble(make_ri(Opcode::kLw, 7, 2, 8)), "lw r7, 8(r2)");
  EXPECT_EQ(disassemble(make_store(Opcode::kFsw, 3, 2, 16)),
            "fsw f3, 16(r2)");
  EXPECT_EQ(disassemble(make_branch(Opcode::kBeq, 1, 2, -4)),
            "beq r1, r2, -4");
  EXPECT_EQ(disassemble(make_rr(Opcode::kFadd, 1, 2, 3)),
            "fadd f1, f2, f3");
  EXPECT_EQ(disassemble(Instruction{Opcode::kFabs, 1, 2, 0, 0}),
            "fabs f1, f2");
  EXPECT_EQ(disassemble(Instruction{Opcode::kHalt, 0, 0, 0, 0}), "halt");
  EXPECT_EQ(disassemble(make_jump(Opcode::kJ, 0, -9)), "j -9");
  EXPECT_EQ(disassemble(Instruction{Opcode::kCvtIF, 4, 6, 0, 0}),
            "cvt.i.f f4, r6");
}

}  // namespace
}  // namespace steersim
