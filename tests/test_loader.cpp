// Unit tests for the configuration loader (Sec. 3.2): partial
// reconfiguration timing, busy-slot skipping (the steering behaviour),
// eviction of overlapping idle units, reconfiguration-cost computation,
// target changes mid-flight, full-fabric mode, and the instant oracle mode.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "config/loader.hpp"
#include "config/steering_set.hpp"

namespace steersim {
namespace {

LoaderParams params(unsigned cycles_per_slot = 4, bool partial = true,
                    unsigned concurrent = 1) {
  LoaderParams p;
  p.num_slots = 8;
  p.cycles_per_slot = cycles_per_slot;
  p.max_concurrent_regions = concurrent;
  p.partial = partial;
  return p;
}

TEST(Loader, IdleWithoutTarget) {
  ConfigurationLoader loader(params(), AllocationVector(8));
  loader.step(SlotMask{});
  EXPECT_TRUE(loader.idle());
  EXPECT_EQ(loader.stats().regions_started, 0u);
}

TEST(Loader, LoadsOneRegionAtATimeWithLatency) {
  ConfigurationLoader loader(params(4), AllocationVector(8));
  // Target: 2 IntAlu (two 1-slot regions).
  loader.request(AllocationVector::place({2, 0, 0, 0, 0}, 8));
  // Region 1 takes 4 cycles.
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(loader.allocation().counts()[0], 0) << c;
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.allocation().counts()[0], 1);
  for (int c = 0; c < 4; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.allocation().counts()[0], 2);
  EXPECT_TRUE(loader.idle());
  EXPECT_EQ(loader.stats().regions_started, 2u);
  EXPECT_EQ(loader.stats().slots_rewritten, 2u);
}

TEST(Loader, MultiSlotRegionLatencyScalesWithSize) {
  ConfigurationLoader loader(params(4), AllocationVector(8));
  loader.request(AllocationVector::place({0, 0, 0, 1, 0}, 8));  // FpAlu: 3
  for (int c = 0; c < 12; ++c) {
    EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kFpAlu)], 0);
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kFpAlu)], 1);
}

TEST(Loader, BusySlotsAreSkippedAndRetriedLater) {
  // Fabric already holds an IntAlu at slot 0; target wants an IntMdu at
  // slots 0-1 but slot 0 is busy executing.
  ConfigurationLoader loader(params(2),
                             AllocationVector::place({1, 0, 0, 0, 0}, 8));
  loader.request(AllocationVector::place({0, 1, 0, 0, 0}, 8));
  SlotMask busy;
  busy.set(0);
  for (int c = 0; c < 5; ++c) {
    loader.step(busy);
    EXPECT_EQ(loader.allocation().counts()[0], 1) << "unit must survive";
    EXPECT_TRUE(loader.reconfiguring().none());
  }
  EXPECT_GE(loader.stats().blocked_cycles, 5u);
  // Unit finishes: rewrite begins next step and evicts it.
  loader.step(SlotMask{});
  EXPECT_TRUE(loader.reconfiguring().test(0));
  EXPECT_TRUE(loader.reconfiguring().test(1));
  EXPECT_EQ(loader.allocation().counts()[0], 0);  // evicted at start
  loader.step(SlotMask{});
  loader.step(SlotMask{});
  loader.step(SlotMask{});
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kIntMdu)], 1);
}

TEST(Loader, HybridOverlapEmergesWhenPartOfFabricIsBusy) {
  // Current = integer preset. Target = float preset. The two LSU slots
  // (6,7) stay busy forever: steering converts everything else but keeps
  // those LSUs -> a hybrid of both configurations.
  const SteeringSet set = default_steering_set();
  ConfigurationLoader loader(params(1), set.preset_allocation(0));
  loader.request(set.preset_allocation(2));
  SlotMask busy;
  busy.set(6);
  busy.set(7);
  for (int c = 0; c < 100; ++c) {
    loader.step(busy);
  }
  const FuCounts counts = loader.allocation().counts();
  // Float preset wants Lsu@1... slots differ; with slots 6-7 pinned as the
  // old LSUs, the fabric holds the float preset's units that fit in slots
  // 0-5 plus the surviving LSUs.
  EXPECT_GE(counts[fu_index(FuType::kLsu)], 1u);
  EXPECT_GE(counts[fu_index(FuType::kFpAlu)] +
                counts[fu_index(FuType::kFpMdu)],
            1u);
}

TEST(Loader, ReconfigCostCountsUnsatisfiedRegionSlots) {
  const SteeringSet set = default_steering_set();
  ConfigurationLoader loader(params(), set.preset_allocation(0));
  EXPECT_EQ(loader.reconfig_cost(set.preset_allocation(0)), 0u);
  // Integer preset: ALU ALU ALU ALU MDU > LSU LSU
  // Memory  preset: ALU ALU LSU LSU LSU FPA > >
  // Shared prefix: slots 0-1 (two IntAlus) -> cost is the other 6 slots.
  EXPECT_EQ(loader.reconfig_cost(set.preset_allocation(1)), 6u);
  EXPECT_EQ(loader.reconfig_cost(AllocationVector(8)), 0u)
      << "empty target needs nothing";
}

TEST(Loader, RetargetMidFlightFinishesInFlightRegion) {
  ConfigurationLoader loader(params(4), AllocationVector(8));
  loader.request(AllocationVector::place({1, 0, 0, 0, 0}, 8));
  loader.step(SlotMask{});  // starts ALU rewrite at slot 0
  EXPECT_TRUE(loader.reconfiguring().test(0));
  // Retarget to an Lsu-only configuration: in-flight write completes
  // anyway ("by the time it is available, a different configuration may
  // have been selected").
  loader.request(AllocationVector::place({0, 0, 1, 0, 0}, 8));
  for (int c = 0; c < 3; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.allocation().counts()[0], 1);  // the ALU landed
  // Now the loader converts slot 0 to the LSU the new target wants.
  for (int c = 0; c < 8; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kLsu)], 1);
}

TEST(Loader, ConcurrencyCapHonoured) {
  ConfigurationLoader loader(params(8, true, 2), AllocationVector(8));
  loader.request(AllocationVector::place({4, 0, 0, 0, 0}, 8));
  loader.step(SlotMask{});
  EXPECT_EQ(loader.reconfiguring().count(), 2u);  // exactly two regions
}

TEST(Loader, FullReconfigWaitsForWholeFabricIdle) {
  ConfigurationLoader loader(params(2, /*partial=*/false),
                             AllocationVector::place({4, 1, 2, 0, 0}, 8));
  loader.request(AllocationVector::place({1, 0, 1, 1, 1}, 8));
  SlotMask busy;
  busy.set(3);  // one busy ALU blocks everything in full mode
  for (int c = 0; c < 10; ++c) {
    loader.step(busy);
    EXPECT_EQ(loader.allocation().counts()[0], 4u) << "nothing rewritten";
  }
  EXPECT_GE(loader.stats().blocked_cycles, 10u);
  // Fabric drains: the whole rewrite takes slots*cycles = 16 cycles and
  // during it no units exist at all.
  loader.step(SlotMask{});  // cycle 1 of 16
  const FuCounts empty{};
  EXPECT_EQ(loader.allocation().counts(), empty);
  for (int c = 0; c < 15; ++c) {
    EXPECT_FALSE(loader.idle());
    loader.step(SlotMask{});
  }
  EXPECT_TRUE(loader.idle());
  EXPECT_EQ(loader.allocation().counts(),
            (FuCounts{1, 0, 1, 1, 1}));
}

TEST(Loader, InstantModeAppliesSameCycle) {
  LoaderParams p = params(100);
  p.instant = true;
  p.max_concurrent_regions = 8;
  ConfigurationLoader loader(p, AllocationVector(8));
  loader.request(AllocationVector::place({2, 1, 1, 0, 0}, 8));
  loader.step(SlotMask{});
  EXPECT_EQ(loader.allocation().counts(), (FuCounts{2, 1, 1, 0, 0}));
  EXPECT_TRUE(loader.idle());
}

TEST(Loader, InstantModeStillRespectsBusySlots) {
  LoaderParams p = params(1);
  p.instant = true;
  p.max_concurrent_regions = 8;
  ConfigurationLoader loader(p, AllocationVector::place({1, 0, 0, 0, 0}, 8));
  loader.request(AllocationVector::place({0, 0, 1, 0, 0}, 8));
  SlotMask busy;
  busy.set(0);
  loader.step(busy);
  EXPECT_EQ(loader.allocation().counts()[0], 1) << "busy unit survives";
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kLsu)], 0);
}

TEST(Loader, FuzzInvariants) {
  // Random request/busy sequences; after every step:
  //   1. the allocation holds only complete unit regions (no truncated
  //      multi-slot unit is ever reported as a unit);
  //   2. slots being rewritten are never slots that were busy when the
  //      rewrite started (we approximate: reconfiguring & busy-this-step
  //      may overlap only if busy arrived after the start — so we instead
  //      check rewrites never start on busy slots by keeping busy stable
  //      between target changes);
  //   3. the allocation never exceeds the slot budget.
  Xoshiro256 rng(909);
  const SteeringSet set = default_steering_set();
  for (int trial = 0; trial < 50; ++trial) {
    ConfigurationLoader loader(params(1 + static_cast<unsigned>(
                                          rng.next_below(4))),
                               AllocationVector(8));
    SlotMask busy;
    for (int step = 0; step < 200; ++step) {
      if (rng.next_bool(0.1)) {
        loader.request(set.preset_allocation(
            static_cast<unsigned>(rng.next_below(kNumPresetConfigs))));
      }
      if (rng.next_bool(0.2)) {
        busy = SlotMask{};
        for (unsigned s = 0; s < 8; ++s) {
          // Busy whole units only (hardware: a unit drives all its slots).
          busy.set(s, false);
        }
        for (const auto& region : loader.allocation().regions()) {
          if (rng.next_bool(0.3)) {
            for (unsigned i = 0; i < region.len; ++i) {
              busy.set(region.base + i);
            }
          }
        }
      }
      // Clear busy bits for units that no longer exist.
      SlotMask unit_slots;
      for (const auto& region : loader.allocation().regions()) {
        for (unsigned i = 0; i < region.len; ++i) {
          unit_slots.set(region.base + i);
        }
      }
      busy &= unit_slots;
      loader.step(busy);

      // Invariant 1+3: every region is complete; total slots <= 8.
      unsigned used = 0;
      for (const auto& region : loader.allocation().regions()) {
        EXPECT_EQ(region.len, slot_cost(region.type))
            << trial << "/" << step;
        used += region.len;
      }
      EXPECT_LE(used, 8u);
      // Invariant 2: a rewrite never overlaps a unit (rewrite slots were
      // cleared when the rewrite started).
      const SlotMask rw = loader.reconfiguring();
      SlotMask occupied;
      for (const auto& region : loader.allocation().regions()) {
        for (unsigned i = 0; i < region.len; ++i) {
          occupied.set(region.base + i);
        }
      }
      EXPECT_TRUE((rw & occupied).none()) << trial << "/" << step;
    }
  }
}

TEST(Loader, ConvergesToAnyTargetOnceIdle) {
  // Property: with no busy slots, any requested preset is fully realized
  // within slots*cycles_per_slot steps (upper bound, single config port).
  Xoshiro256 rng(31337);
  const SteeringSet set = default_steering_set();
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned cps = 1 + static_cast<unsigned>(rng.next_below(8));
    ConfigurationLoader loader(
        params(cps),
        set.preset_allocation(
            static_cast<unsigned>(rng.next_below(kNumPresetConfigs))));
    const auto target = set.preset_allocation(
        static_cast<unsigned>(rng.next_below(kNumPresetConfigs)));
    loader.request(target);
    const unsigned budget = 8 * cps + 8;
    for (unsigned c = 0; c < budget; ++c) {
      loader.step(SlotMask{});
    }
    EXPECT_EQ(loader.reconfig_cost(target), 0u) << trial;
    EXPECT_TRUE(loader.idle()) << trial;
  }
}

TEST(Loader, RetargetWhileRewriteInFlightConvergesToNewTarget) {
  // Retarget twice while a write is in the air: the in-flight region still
  // completes (it is never aborted by a target change), and the loader
  // then converts the fabric to the *latest* target, not an earlier one.
  ConfigurationLoader loader(params(4), AllocationVector(8));
  loader.request(AllocationVector::place({0, 1, 0, 0, 0}, 8));  // MDU @ 0-1
  loader.step(SlotMask{});
  ASSERT_TRUE(loader.reconfiguring().test(0));
  loader.request(AllocationVector::place({0, 0, 0, 1, 0}, 8));  // FpAlu
  loader.request(AllocationVector::place({1, 0, 1, 0, 0}, 8));  // ALU+LSU
  EXPECT_EQ(loader.stats().targets_requested, 3u);
  EXPECT_TRUE(loader.reconfiguring().test(0)) << "in-flight write survives";
  for (int c = 0; c < 40; ++c) {
    loader.step(SlotMask{});
  }
  const FuCounts final_counts = loader.allocation().counts();
  EXPECT_EQ(final_counts[fu_index(FuType::kIntAlu)], 1u);
  EXPECT_EQ(final_counts[fu_index(FuType::kLsu)], 1u);
  EXPECT_EQ(final_counts[fu_index(FuType::kIntMdu)], 0u)
      << "first target's unit must be evicted again";
  EXPECT_EQ(final_counts[fu_index(FuType::kFpAlu)], 0u)
      << "the intermediate target must leave no trace";
  EXPECT_TRUE(loader.idle());
}

TEST(Loader, ReconfigCostTracksPartiallyRewrittenFabric) {
  // Cost must reflect exactly the still-unsatisfied region slots while a
  // multi-region target is being realized piecewise.
  ConfigurationLoader loader(params(4), AllocationVector(8));
  const auto target = AllocationVector::place({2, 1, 0, 0, 0}, 8);
  EXPECT_EQ(loader.reconfig_cost(target), 4u);  // 2x ALU + 2-slot MDU
  loader.request(target);
  loader.step(SlotMask{});  // first ALU rewrite begins (not finished)
  EXPECT_EQ(loader.reconfig_cost(target), 4u)
      << "an in-flight rewrite has not satisfied anything yet";
  for (int c = 0; c < 3; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.reconfig_cost(target), 3u) << "first ALU landed";
  for (int c = 0; c < 4; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.reconfig_cost(target), 2u) << "second ALU landed";
  for (int c = 0; c < 8; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.reconfig_cost(target), 0u);
  // A different candidate sharing the satisfied prefix prices only its
  // own unsatisfied remainder against this hybrid fabric.
  const auto other = AllocationVector::place({2, 0, 1, 0, 0}, 8);
  EXPECT_EQ(loader.reconfig_cost(other), 1u);  // LSU @ slot 2 missing
}

TEST(Loader, StatsTrackTargetChanges) {
  ConfigurationLoader loader(params(), AllocationVector(8));
  const auto target = AllocationVector::place({1, 0, 0, 0, 0}, 8);
  loader.request(target);
  loader.request(target);  // identical: not a change
  EXPECT_EQ(loader.stats().targets_requested, 1u);
  loader.request(AllocationVector::place({0, 0, 1, 0, 0}, 8));
  EXPECT_EQ(loader.stats().targets_requested, 2u);
}

}  // namespace
}  // namespace steersim
