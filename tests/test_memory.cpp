// Unit tests for the memory system: register files and data memory.
#include <gtest/gtest.h>

#include <cmath>

#include "memory/cache.hpp"
#include "memory/data_memory.hpp"
#include "memory/instruction_memory.hpp"
#include "memory/register_file.hpp"

namespace steersim {
namespace {

TEST(RegisterFile, R0IsHardwiredZero) {
  RegisterFile regs;
  regs.write_int(0, 1234);
  EXPECT_EQ(regs.read_int(0), 0);
  regs.write_int(1, 1234);
  EXPECT_EQ(regs.read_int(1), 1234);
}

TEST(RegisterFile, FpRegistersIndependent) {
  RegisterFile regs;
  regs.write_fp(0, 1.5);  // f0 is a normal register
  regs.write_int(5, 7);
  regs.write_fp(5, 2.5);
  EXPECT_DOUBLE_EQ(regs.read_fp(0), 1.5);
  EXPECT_EQ(regs.read_int(5), 7);
  EXPECT_DOUBLE_EQ(regs.read_fp(5), 2.5);
}

TEST(RegisterFile, EqualityIsBitExactForNan) {
  RegisterFile a;
  RegisterFile b;
  a.write_fp(1, std::nan(""));
  b.write_fp(1, std::nan(""));
  EXPECT_TRUE(a == b);
  b.write_fp(2, 0.5);
  EXPECT_FALSE(a == b);
}

TEST(RegisterFile, NegativeZeroDiffersFromZero) {
  RegisterFile a;
  RegisterFile b;
  a.write_fp(1, 0.0);
  b.write_fp(1, -0.0);
  EXPECT_FALSE(a == b);  // bit-exact comparison
}

TEST(DataMemory, WordRoundTrip) {
  DataMemory mem(1024);
  mem.store_word(8, -123456789);
  EXPECT_EQ(mem.load_word(8), -123456789);
  EXPECT_EQ(mem.load_word(0), 0);
}

TEST(DataMemory, ByteSignExtension) {
  DataMemory mem(64);
  mem.store_byte(3, 0xFF);
  EXPECT_EQ(mem.load_byte(3), -1);
  mem.store_byte(4, 0x7F);
  EXPECT_EQ(mem.load_byte(4), 127);
}

TEST(DataMemory, BytesComposeIntoWords) {
  DataMemory mem(64);
  for (std::uint64_t i = 0; i < 8; ++i) {
    mem.store_byte(i, static_cast<std::int64_t>(i + 1));
  }
  // little-endian composition
  EXPECT_EQ(mem.load_word(0), 0x0807060504030201LL);
}

TEST(DataMemory, FpRoundTripIncludingNan) {
  DataMemory mem(64);
  mem.store_fp(16, 3.25);
  EXPECT_DOUBLE_EQ(mem.load_fp(16), 3.25);
  mem.store_fp(24, std::nan(""));
  EXPECT_TRUE(std::isnan(mem.load_fp(24)));
}

TEST(DataMemory, LoadImageAtBase) {
  DataMemory mem(128);
  const std::int64_t words[] = {10, 20, 30};
  mem.load_image(words, 16);
  EXPECT_EQ(mem.load_word(16), 10);
  EXPECT_EQ(mem.load_word(32), 30);
  EXPECT_EQ(mem.load_word(0), 0);
}

TEST(DataMemory, ResetClears) {
  DataMemory mem(64);
  mem.store_word(0, 99);
  mem.reset();
  EXPECT_EQ(mem.load_word(0), 0);
}

using DataMemoryDeathTest = ::testing::Test;

TEST(DataMemoryDeathTest, OutOfRangeWordAborts) {
  DataMemory mem(64);
  EXPECT_DEATH(mem.load_word(64), "Expects");
  EXPECT_DEATH(mem.store_word(1000, 1), "Expects");
}

TEST(DataMemoryDeathTest, MisalignedWordAborts) {
  DataMemory mem(64);
  EXPECT_DEATH(mem.load_word(4), "Expects");
}

CacheParams small_cache() {
  CacheParams p;
  p.line_bytes = 64;
  p.num_sets = 4;
  p.ways = 2;
  p.hit_latency = 3;
  p.miss_latency = 20;
  return p;
}

TEST(DataCache, ColdMissThenHit) {
  DataCache cache(small_cache());
  EXPECT_FALSE(cache.would_hit(0));
  EXPECT_EQ(cache.access(0), 20u);  // cold miss
  EXPECT_TRUE(cache.would_hit(0));
  EXPECT_EQ(cache.access(8), 3u);  // same line
  EXPECT_EQ(cache.access(63), 3u);
  EXPECT_EQ(cache.access(64), 20u);  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(DataCache, SetConflictEvictsLru) {
  DataCache cache(small_cache());
  // Lines mapping to set 0: addresses k * 64 * 4 (4 sets).
  const std::uint64_t stride = 64 * 4;
  EXPECT_EQ(cache.access(0 * stride), 20u);
  EXPECT_EQ(cache.access(1 * stride), 20u);  // fills both ways
  EXPECT_EQ(cache.access(0 * stride), 3u);   // touch way 0 (now MRU)
  EXPECT_EQ(cache.access(2 * stride), 20u);  // evicts way 1 (LRU)
  EXPECT_TRUE(cache.would_hit(0 * stride));
  EXPECT_FALSE(cache.would_hit(1 * stride));
  EXPECT_TRUE(cache.would_hit(2 * stride));
}

TEST(DataCache, WouldHitHasNoSideEffects) {
  DataCache cache(small_cache());
  (void)cache.would_hit(128);
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.would_hit(128));
}

TEST(DataCache, ClearInvalidatesEverything) {
  DataCache cache(small_cache());
  cache.access(0);
  cache.clear();
  EXPECT_FALSE(cache.would_hit(0));
}

TEST(DataCache, SequentialStreamMissRateMatchesLineSize) {
  DataCache cache(small_cache());
  unsigned misses = 0;
  for (std::uint64_t addr = 0; addr < 1024; addr += 8) {
    if (cache.access(addr) == 20u) {
      ++misses;
    }
  }
  EXPECT_EQ(misses, 1024 / 64);  // one miss per 64-byte line
}

TEST(InstructionMemory, EncodesAndFetchesProgram) {
  Program p;
  p.code.push_back(make_ri(Opcode::kAddi, 1, 0, 5));
  p.code.push_back(Instruction{Opcode::kHalt, 0, 0, 0, 0});
  InstructionMemory imem(p);
  EXPECT_EQ(imem.size(), 2u);
  EXPECT_TRUE(imem.contains(1));
  EXPECT_FALSE(imem.contains(2));
  EXPECT_EQ(decode(imem.fetch(0)), p.code[0]);
  EXPECT_EQ(decode(imem.fetch(1)), p.code[1]);
}

}  // namespace
}  // namespace steersim
