// JSON layer tests for the canonical-rendering guarantees the service
// digest and cache depend on: \uXXXX escapes (including surrogate pairs)
// decode to real UTF-8 and re-render symmetrically, 64-bit integers
// round-trip digit-identical past 2^53, and number parsing/rendering is
// locale-independent — flipping the global locale to a comma decimal
// point must not change a single rendered byte.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdint>
#include <locale>
#include <string>
#include <vector>

#include "sim/json.hpp"

namespace steersim {
namespace {

JsonValue parsed(const std::string& text) {
  JsonValue doc;
  EXPECT_TRUE(parse_json_strict(text, doc)) << text;
  return doc;
}

bool parses(const std::string& text) {
  JsonValue doc;
  return parse_json_strict(text, doc);
}

TEST(JsonUnicode, EscapesDecodeToUtf8) {
  EXPECT_EQ(parsed("\"\\u0041\"").string, "A");
  EXPECT_EQ(parsed("\"\\u00e9\"").string, "\xc3\xa9");          // é
  EXPECT_EQ(parsed("\"\\u20ac\"").string, "\xe2\x82\xac");      // €
  // Surrogate pair: U+1F600 needs a 4-byte sequence.
  EXPECT_EQ(parsed("\"\\ud83d\\ude00\"").string, "\xf0\x9f\x98\x80");
  // Mixed with plain characters and short escapes.
  EXPECT_EQ(parsed("\"a\\u0041\\n\"").string, "aA\n");
}

TEST(JsonUnicode, LoneAndMalformedSurrogatesAreRejected) {
  EXPECT_FALSE(parses("\"\\ud800\""));        // lone high surrogate
  EXPECT_FALSE(parses("\"\\udc00\""));        // lone low surrogate
  EXPECT_FALSE(parses("\"\\ud800x\""));       // high not followed by \u
  EXPECT_FALSE(parses("\"\\ud800\\u0041\"")); // high followed by non-low
  EXPECT_FALSE(parses("\"\\u12\""));          // too few hex digits
  EXPECT_FALSE(parses("\"\\uzzzz\""));        // not hex at all
}

TEST(JsonUnicode, RenderEscapesSymmetrically) {
  JsonValue doc;
  doc.kind = JsonValue::Kind::kString;
  doc.string = "tab\there \"quoted\" \x01 and \xe2\x82\xac";
  const std::string rendered = render_json(doc);
  // Control characters escape, multi-byte UTF-8 passes through raw.
  EXPECT_NE(rendered.find("\\t"), std::string::npos);
  EXPECT_NE(rendered.find("\\\""), std::string::npos);
  EXPECT_NE(rendered.find("\\u0001"), std::string::npos);
  EXPECT_NE(rendered.find("\xe2\x82\xac"), std::string::npos);
  // And the round trip is exact.
  EXPECT_EQ(parsed(rendered).string, doc.string);
}

TEST(JsonIntegers, U64RoundTripsDigitIdenticalPast2p53) {
  for (const std::string token :
       {"9007199254740993",      // 2^53 + 1: first double casualty
        "18446744073709551615",  // UINT64_MAX
        "12345678901234567890"}) {
    const JsonValue doc = parsed(token);
    ASSERT_EQ(doc.kind, JsonValue::Kind::kNumber) << token;
    EXPECT_EQ(doc.repr, JsonValue::NumberRepr::kU64) << token;
    std::uint64_t value = 0;
    EXPECT_TRUE(doc.as_u64(value)) << token;
    EXPECT_EQ(render_json(doc), token);
  }
  EXPECT_EQ(parsed("18446744073709551615").u64,
            18446744073709551615ull);
}

TEST(JsonIntegers, NegativeI64RoundTripsDigitIdentical) {
  for (const std::string token :
       {"-9223372036854775808", "-9007199254740993"}) {
    const JsonValue doc = parsed(token);
    ASSERT_EQ(doc.kind, JsonValue::Kind::kNumber) << token;
    EXPECT_EQ(doc.repr, JsonValue::NumberRepr::kI64) << token;
    std::uint64_t value = 0;
    EXPECT_FALSE(doc.as_u64(value)) << "negative must not read as u64";
    EXPECT_EQ(render_json(doc), token);
  }
}

TEST(JsonIntegers, SmallIntegersStayExactThroughAsU64) {
  const JsonValue doc = parsed("42");
  std::uint64_t value = 0;
  EXPECT_TRUE(doc.as_u64(value));
  EXPECT_EQ(value, 42u);
  EXPECT_EQ(render_json(doc), "42");
}

TEST(JsonNumbers, DoublesStillParseAndRoundTrip) {
  for (const std::string token : {"1.5", "-0.25"}) {
    const JsonValue doc = parsed(token);
    ASSERT_EQ(doc.kind, JsonValue::Kind::kNumber) << token;
    EXPECT_EQ(doc.repr, JsonValue::NumberRepr::kDouble) << token;
    EXPECT_EQ(render_json(doc), token);
  }
  EXPECT_DOUBLE_EQ(parsed("1e3").number, 1000.0);
}

// --- Locale independence --------------------------------------------------

/// A numpunct facet with a comma decimal point and dot grouping — the
/// classic German-style formatting that breaks printf/strtod round trips.
class CommaDecimal : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// Flips both the C locale (if any non-"C" locale exists in the image)
/// and the C++ global locale, restoring them on destruction.
class LocaleFlipper {
 public:
  LocaleFlipper() : previous_(std::locale()) {
    for (const char* name :
         {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR", "C.utf8"}) {
      if (std::setlocale(LC_ALL, name) != nullptr) {
        c_flipped_ = true;
        break;
      }
    }
    // The facet flip works even in a container with only the C locale.
    std::locale::global(std::locale(std::locale::classic(),
                                    new CommaDecimal));
  }
  ~LocaleFlipper() {
    std::locale::global(previous_);
    std::setlocale(LC_ALL, "C");
  }

 private:
  std::locale previous_;
  bool c_flipped_ = false;
};

TEST(JsonLocale, RenderingIsByteStableUnderALocaleFlip) {
  // A config-digest-shaped document: doubles that a comma-decimal locale
  // would mangle, plus a u64 past 2^53. The canonical rendering (and
  // therefore every digest derived from it) must not move by one byte.
  const std::string text =
      R"({"alpha":0.1,"big":9007199254740993,"gamma":1234.5678,)"
      R"("tiny":1e-07})";
  const std::string before = render_json(parsed(text));
  const std::string tenth = json_number(0.1);
  const std::string mixed = json_number(1234.5678);

  {
    LocaleFlipper flip;
    EXPECT_EQ(render_json(parsed(text)), before)
        << "rendering changed under a flipped locale";
    // Parsing is locale-independent too: "0,1"-style output would also
    // corrupt reads, so a full parse of the pre-flip bytes must succeed
    // and re-render identically.
    JsonValue doc;
    ASSERT_TRUE(parse_json_strict(before, doc));
    EXPECT_EQ(render_json(doc), before);
    EXPECT_EQ(json_number(0.1), tenth);
    EXPECT_EQ(json_number(1234.5678), mixed);
    EXPECT_EQ(tenth.find(','), std::string::npos);
  }

  // And back: the restore really restored.
  EXPECT_EQ(render_json(parsed(text)), before);
}

}  // namespace
}  // namespace steersim
