// Unit tests for the Eq. 1 / Fig. 7 availability circuit: multi-slot units
// counted once, continuation codes matching nothing, fixed resources
// appended after the reconfigurable slots.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "config/availability.hpp"

namespace steersim {
namespace {

SlotMask all_slots(unsigned n) {
  SlotMask mask;
  for (unsigned i = 0; i < n; ++i) {
    mask.set(i);
  }
  return mask;
}

TEST(Availability, EmptyFabricOnlyFfusAvailable) {
  const AllocationVector alloc(8);
  const FuCounts ffu = {1, 1, 1, 1, 1};
  const bool ffu_avail[] = {true, true, true, true, true};
  const auto rv = ResourceVector::build(alloc, all_slots(8), ffu, ffu_avail);
  for (const FuType t : kAllFuTypes) {
    EXPECT_TRUE(rv.available(t));
    EXPECT_EQ(rv.count_available(t), 1u);
  }
}

TEST(Availability, BusyFfuDropsType) {
  const AllocationVector alloc(8);
  const FuCounts ffu = {1, 1, 1, 1, 1};
  const bool ffu_avail[] = {true, false, true, true, true};  // IntMdu busy
  const auto rv = ResourceVector::build(alloc, all_slots(8), ffu, ffu_avail);
  EXPECT_FALSE(rv.available(FuType::kIntMdu));
  EXPECT_TRUE(rv.available(FuType::kIntAlu));
}

TEST(Availability, MultiSlotUnitCountedOnce) {
  // One FpAlu spanning slots 0-2: exactly one available unit, despite
  // three slots being involved (the continuation codes match no type).
  const auto alloc = AllocationVector::place({0, 0, 0, 1, 0}, 8);
  const FuCounts no_ffu = {0, 0, 0, 0, 0};
  const auto rv = ResourceVector::build(alloc, all_slots(8), no_ffu, {});
  EXPECT_EQ(rv.count_available(FuType::kFpAlu), 1u);
  EXPECT_EQ(rv.count_configured(FuType::kFpAlu), 1u);
  EXPECT_FALSE(rv.available(FuType::kIntAlu));
}

TEST(Availability, BusySlotMakesUnitUnavailableButStillConfigured) {
  const auto alloc = AllocationVector::place({2, 0, 0, 0, 0}, 8);
  SlotMask avail = all_slots(8);
  avail.reset(0);  // first IntAlu busy
  const FuCounts no_ffu = {0, 0, 0, 0, 0};
  const auto rv = ResourceVector::build(alloc, avail, no_ffu, {});
  EXPECT_TRUE(rv.available(FuType::kIntAlu));  // second one idle
  EXPECT_EQ(rv.count_available(FuType::kIntAlu), 1u);
  EXPECT_EQ(rv.count_configured(FuType::kIntAlu), 2u);

  avail.reset(1);
  const auto rv2 = ResourceVector::build(alloc, avail, no_ffu, {});
  EXPECT_FALSE(rv2.available(FuType::kIntAlu));
  EXPECT_EQ(rv2.count_configured(FuType::kIntAlu), 2u);
}

TEST(Availability, MixedFabricFullInventory) {
  // Integer preset: 4 IntAlu, 1 IntMdu, 2 Lsu + full FFU row.
  const auto alloc = AllocationVector::place({4, 1, 2, 0, 0}, 8);
  const FuCounts ffu = {1, 1, 1, 1, 1};
  const bool ffu_avail[] = {true, true, true, true, true};
  const auto rv = ResourceVector::build(alloc, all_slots(8), ffu, ffu_avail);
  EXPECT_EQ(rv.count_available(FuType::kIntAlu), 5u);
  EXPECT_EQ(rv.count_available(FuType::kIntMdu), 2u);
  EXPECT_EQ(rv.count_available(FuType::kLsu), 3u);
  EXPECT_EQ(rv.count_available(FuType::kFpAlu), 1u);
  EXPECT_EQ(rv.count_available(FuType::kFpMdu), 1u);
  // Entry layout: 8 RFU slots then 5 FFU entries (Fig. 7 ordering).
  EXPECT_EQ(rv.entries().size(), 13u);
}

TEST(Availability, Equation1RandomizedCrossCheck) {
  // Property: available(t) computed by the circuit equals a direct
  // evaluation of Eq. 1 over the entries.
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    // Random feasible fabric.
    FuCounts counts{};
    unsigned slots_left = 8;
    for (const FuType t : kAllFuTypes) {
      const unsigned max_units = slots_left / slot_cost(t);
      if (max_units > 0 && rng.next_bool(0.6)) {
        const auto n =
            static_cast<std::uint8_t>(rng.next_below(max_units + 1));
        counts[fu_index(t)] = n;
        slots_left -= n * slot_cost(t);
      }
    }
    const auto alloc = AllocationVector::place(counts, 8);
    SlotMask avail;
    for (unsigned i = 0; i < 8; ++i) {
      avail.set(i, rng.next_bool(0.7));
    }
    const FuCounts ffu = {1, 1, 1, 1, 1};
    bool ffu_avail[5];
    for (auto& f : ffu_avail) {
      f = rng.next_bool(0.7);
    }
    const auto rv = ResourceVector::build(alloc, avail, ffu, ffu_avail);
    for (const FuType t : kAllFuTypes) {
      bool direct = false;
      for (const auto& entry : rv.entries()) {
        direct = direct || (entry.code == encoding_of(t) && entry.available);
      }
      EXPECT_EQ(rv.available(t), direct) << trial;
    }
  }
}

}  // namespace
}  // namespace steersim
