// Unit tests for the execution engine: unit inventory from FFUs + fabric,
// non-pipelined busy tracking, Eq. 1 integration, slot-busy reporting for
// the loader, cancellation, and utilization accounting.
#include <gtest/gtest.h>

#include "core/execution_engine.hpp"
#include "config/steering_set.hpp"

namespace steersim {
namespace {

const FuCounts kFfu = {1, 1, 1, 1, 1};

TEST(Engine, FfuOnlyInventory) {
  ExecutionEngine engine(kFfu);
  engine.begin_cycle(AllocationVector(8));
  EXPECT_EQ(engine.units().size(), 5u);
  EXPECT_EQ(engine.configured_units(), kFfu);
  const auto free = engine.free_units();
  for (unsigned t = 0; t < kNumFuTypes; ++t) {
    EXPECT_EQ(free[t], 1u);
  }
}

TEST(Engine, FabricUnitsAppearInInventory) {
  ExecutionEngine engine(kFfu);
  const auto alloc = AllocationVector::place({4, 1, 2, 0, 0}, 8);
  engine.begin_cycle(alloc);
  EXPECT_EQ(engine.configured_units(),
            (FuCounts{5, 2, 3, 1, 1}));
}

TEST(Engine, AssignConsumesUnitUntilLatencyElapses) {
  ExecutionEngine engine(kFfu);
  engine.begin_cycle(AllocationVector(8));
  EXPECT_TRUE(engine.assign(FuType::kIntMdu, 3, /*wakeup_row=*/7));
  EXPECT_EQ(engine.free_units()[fu_index(FuType::kIntMdu)], 0u);
  EXPECT_FALSE(engine.assign(FuType::kIntMdu, 1, 8));

  EXPECT_TRUE(engine.step().empty());  // cycle 1 -> 2 remaining
  EXPECT_TRUE(engine.step().empty());
  const auto done = engine.step();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 7u);
  EXPECT_EQ(engine.free_units()[fu_index(FuType::kIntMdu)], 1u);
}

TEST(Engine, PrefersFixedUnitsOverRfus) {
  ExecutionEngine engine(kFfu);
  const auto alloc = AllocationVector::place({2, 0, 0, 0, 0}, 8);
  engine.begin_cycle(alloc);
  EXPECT_TRUE(engine.assign(FuType::kIntAlu, 10, 0));
  // The fixed ALU should be busy; no RFU slot is.
  EXPECT_TRUE(engine.slot_busy().none());
  EXPECT_TRUE(engine.assign(FuType::kIntAlu, 10, 1));
  EXPECT_TRUE(engine.slot_busy().test(0));
}

TEST(Engine, SlotBusyCoversWholeMultiSlotUnit) {
  const FuCounts no_ffu{};
  ExecutionEngine engine(no_ffu);
  const auto alloc = AllocationVector::place({0, 0, 0, 1, 0}, 8);
  engine.begin_cycle(alloc);
  EXPECT_TRUE(engine.assign(FuType::kFpAlu, 5, 3));
  const SlotMask busy = engine.slot_busy();
  EXPECT_TRUE(busy.test(0));
  EXPECT_TRUE(busy.test(1));
  EXPECT_TRUE(busy.test(2));
  EXPECT_FALSE(busy.test(3));
}

TEST(Engine, AvailabilityLinesReflectBusyUnits) {
  ExecutionEngine engine(kFfu);
  const AllocationVector alloc(8);
  engine.begin_cycle(alloc);
  EXPECT_TRUE(engine.availability(alloc)[fu_index(FuType::kLsu)]);
  engine.assign(FuType::kLsu, 4, 0);
  EXPECT_FALSE(engine.availability(alloc)[fu_index(FuType::kLsu)]);
  EXPECT_TRUE(engine.availability(alloc)[fu_index(FuType::kIntAlu)]);
}

TEST(Engine, BusyRfuSurvivesFabricRefresh) {
  const FuCounts no_ffu{};
  ExecutionEngine engine(no_ffu);
  const auto alloc = AllocationVector::place({1, 0, 1, 0, 0}, 8);
  engine.begin_cycle(alloc);
  EXPECT_TRUE(engine.assign(FuType::kIntAlu, 10, 0));
  // Fabric refresh mid-execution (other slots changed): the busy unit's
  // in-flight work keeps counting down.
  engine.begin_cycle(alloc);
  EXPECT_EQ(engine.free_units()[fu_index(FuType::kIntAlu)], 0u);
  EXPECT_TRUE(engine.slot_busy().test(0));
}

TEST(Engine, CancelFreesUnitImmediately) {
  ExecutionEngine engine(kFfu);
  engine.begin_cycle(AllocationVector(8));
  engine.assign(FuType::kFpMdu, 20, 5);
  EXPECT_EQ(engine.free_units()[fu_index(FuType::kFpMdu)], 0u);
  engine.cancel(5);
  EXPECT_EQ(engine.free_units()[fu_index(FuType::kFpMdu)], 1u);
  EXPECT_TRUE(engine.step().empty()) << "cancelled work never completes";
  EXPECT_EQ(engine.stats().cancels, 1u);
}

TEST(Engine, MultipleCompletionsSameCycle) {
  ExecutionEngine engine(kFfu);
  engine.begin_cycle(AllocationVector(8));
  engine.assign(FuType::kIntAlu, 1, 1);
  engine.assign(FuType::kLsu, 1, 2);
  const auto done = engine.step();
  EXPECT_EQ(done.size(), 2u);
}

TEST(Engine, UtilizationAccounting) {
  ExecutionEngine engine(kFfu);
  engine.begin_cycle(AllocationVector(8));
  engine.assign(FuType::kIntAlu, 2, 0);
  engine.note_utilization();
  engine.step();
  engine.note_utilization();
  EXPECT_EQ(engine.stats().busy_unit_cycles[fu_index(FuType::kIntAlu)], 2u);
  EXPECT_EQ(engine.stats().configured_unit_cycles[fu_index(FuType::kIntAlu)],
            2u);
  EXPECT_EQ(engine.stats().issues, 1u);
}

TEST(Engine, PipelinedUnitAcceptsBackToBack) {
  ExecutionEngine engine(kFfu, /*pipelined=*/true);
  engine.begin_cycle(AllocationVector(8));
  EXPECT_TRUE(engine.assign(FuType::kIntMdu, 4, 1));
  // Same cycle: the initiation interval blocks a second issue.
  EXPECT_FALSE(engine.assign(FuType::kIntMdu, 4, 2));
  // Next cycle: the unit accepts again while the first op drains.
  engine.step();
  engine.begin_cycle(AllocationVector(8));
  EXPECT_TRUE(engine.assign(FuType::kIntMdu, 4, 2));
  // Both complete at their own times.
  engine.step();          // op1: 2 left, op2: 3 left
  engine.step();          // op1: 1, op2: 2
  auto done = engine.step();  // op1 completes
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  done = engine.step();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2u);
}

TEST(Engine, PipelinedAvailabilityStaysHighWhileDraining) {
  ExecutionEngine engine(kFfu, /*pipelined=*/true);
  const AllocationVector alloc(8);
  engine.begin_cycle(alloc);
  engine.assign(FuType::kFpMdu, 16, 0);
  EXPECT_FALSE(engine.availability(alloc)[fu_index(FuType::kFpMdu)])
      << "initiation interval blocks within the issue cycle";
  engine.step();
  engine.begin_cycle(alloc);
  EXPECT_TRUE(engine.availability(alloc)[fu_index(FuType::kFpMdu)])
      << "next cycle the pipelined unit can accept again";
  // The loader still sees the slot busy while the op drains... for fixed
  // units there are no slots; check the non-pipelined contrast instead.
  ExecutionEngine serial(kFfu, /*pipelined=*/false);
  serial.begin_cycle(alloc);
  serial.assign(FuType::kFpMdu, 16, 0);
  serial.step();
  serial.begin_cycle(alloc);
  EXPECT_FALSE(serial.availability(alloc)[fu_index(FuType::kFpMdu)]);
}

TEST(Engine, PipelinedRfuSlotsStayBusyForLoader) {
  const FuCounts no_ffu{};
  ExecutionEngine engine(no_ffu, /*pipelined=*/true);
  const auto alloc = AllocationVector::place({1, 0, 0, 0, 0}, 8);
  engine.begin_cycle(alloc);
  engine.assign(FuType::kIntAlu, 4, 0);
  engine.step();
  engine.begin_cycle(alloc);
  // Still draining: the slot must not be reconfigurable.
  EXPECT_TRUE(engine.slot_busy().test(0));
}

TEST(Engine, IncompleteRegionIsNotAUnit) {
  const FuCounts no_ffu{};
  ExecutionEngine engine(no_ffu);
  AllocationVector alloc(8);
  // A truncated FpAlu: head code with only one continuation (mid-rewrite
  // artifact) must not be usable.
  alloc.set_code(0, encoding_of(FuType::kFpAlu));
  alloc.set_code(1, kEncContinuation);
  engine.begin_cycle(alloc);
  EXPECT_EQ(engine.units().size(), 0u);
  EXPECT_FALSE(engine.assign(FuType::kFpAlu, 1, 0));
}

}  // namespace
}  // namespace steersim
