// End-to-end processor tests: every kernel, on every policy variant, must
// halt with exactly the reference interpreter's architectural state
// (registers, data memory, retired-instruction count).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/reference.hpp"
#include "isa/assembler.hpp"
#include "sim/runner.hpp"
#include "workload/kernels.hpp"

namespace steersim {
namespace {

MachineConfig small_machine() {
  MachineConfig cfg;
  cfg.loader.cycles_per_slot = 4;
  return cfg;
}

void expect_architectural_match(const Program& program,
                                const PolicySpec& spec,
                                const std::string& context) {
  ReferenceInterpreter ref(1 << 20);
  const auto ref_result = ref.run(program);
  ASSERT_TRUE(ref_result.halted) << context;

  auto cpu = make_processor(program, small_machine(), spec);
  const RunOutcome outcome = cpu->run(5'000'000);
  ASSERT_EQ(outcome, RunOutcome::kHalted)
      << context << " fault: " << cpu->fault_message();

  EXPECT_EQ(cpu->stats().retired, ref_result.instructions) << context;
  EXPECT_TRUE(cpu->registers() == ref.registers()) << context;
  EXPECT_TRUE(cpu->memory() == ref.memory()) << context;
}

class KernelPolicyTest
    : public ::testing::TestWithParam<std::tuple<std::string, PolicyKind>> {
};

TEST_P(KernelPolicyTest, MatchesReference) {
  const auto& [kernel_name, kind] = GetParam();
  PolicySpec spec;
  spec.kind = kind;
  expect_architectural_match(
      kernel_by_name(kernel_name).assemble_program(), spec,
      kernel_name + "/" +
          spec.label(default_steering_set()));
}

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const auto& k : kernel_library()) {
    names.push_back(k.name);
  }
  return names;
}

std::string policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kSteered:
      return "steered";
    case PolicyKind::kStaticFfu:
      return "static_ffu";
    case PolicyKind::kStaticPreset:
      return "static_preset";
    case PolicyKind::kOracle:
      return "oracle";
    case PolicyKind::kFullReconfig:
      return "full_reconfig";
    case PolicyKind::kRandom:
      return "random";
    case PolicyKind::kGreedy:
      return "greedy";
  }
  return "unknown";
}

std::string kernel_policy_test_name(
    const ::testing::TestParamInfo<std::tuple<std::string, PolicyKind>>&
        param_info) {
  return std::get<0>(param_info.param) + "_" +
         policy_kind_name(std::get<1>(param_info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllPolicies, KernelPolicyTest,
    ::testing::Combine(
        ::testing::ValuesIn(kernel_names()),
        ::testing::Values(PolicyKind::kSteered, PolicyKind::kStaticFfu,
                          PolicyKind::kStaticPreset, PolicyKind::kOracle,
                          PolicyKind::kFullReconfig, PolicyKind::kRandom,
                          PolicyKind::kGreedy)),
    kernel_policy_test_name);

TEST(Processor, SingleInstructionProgram) {
  const Program p = assemble("  halt\n");
  auto cpu = make_processor(p, small_machine(), {});
  EXPECT_EQ(cpu->run(1000), RunOutcome::kHalted);
  EXPECT_EQ(cpu->stats().retired, 1u);
}

TEST(Processor, IpcNeverExceedsRetireWidth) {
  const Program p = kernel_by_name("sum_array").assemble_program();
  auto cpu = make_processor(p, small_machine(), {});
  EXPECT_EQ(cpu->run(1'000'000), RunOutcome::kHalted);
  EXPECT_LE(cpu->stats().ipc(),
            static_cast<double>(small_machine().retire_width));
  EXPECT_GT(cpu->stats().ipc(), 0.0);
}

TEST(Processor, MispredictionRecovery) {
  // A data-dependent branch pattern the 2-bit predictor cannot learn
  // perfectly: alternating taken/not-taken.
  const Program p = assemble(R"(
  li r1, 64
  addi r2, r0, 0   # toggle
  addi r3, r0, 0   # count of taken paths
loop:
  xori r2, r2, 1
  beq r2, r0, skip
  addi r3, r3, 1
skip:
  addi r1, r1, -1
  bne r1, r0, loop
  halt
)");
  ReferenceInterpreter ref(1 << 20);
  const auto ref_result = ref.run(p);
  auto cpu = make_processor(p, small_machine(), {});
  ASSERT_EQ(cpu->run(1'000'000), RunOutcome::kHalted);
  EXPECT_EQ(cpu->registers().read_int(3), ref.registers().read_int(3));
  EXPECT_EQ(cpu->stats().retired, ref_result.instructions);
  EXPECT_GT(cpu->stats().mispredicts, 0u);
  EXPECT_GT(cpu->stats().squashed, 0u);
}

TEST(Processor, StoreToLoadForwarding) {
  // Write then immediately read the same address; the load must see the
  // in-flight store's data, not stale memory.
  const Program p = assemble(R"(
  la r1, slot
  li r2, 77
  sw r2, 0(r1)
  lw r3, 0(r1)
  addi r3, r3, 1
  sw r3, 0(r1)
  lw r4, 0(r1)
  halt
.data
slot: .word 5
)");
  auto cpu = make_processor(p, small_machine(), {});
  ASSERT_EQ(cpu->run(10'000), RunOutcome::kHalted);
  EXPECT_EQ(cpu->registers().read_int(3), 78);
  EXPECT_EQ(cpu->registers().read_int(4), 78);
}

TEST(Processor, PartialOverlapStoreBlocksLoad) {
  // sb writes one byte inside the word a younger lw reads: the load must
  // wait for the store to retire and then see the merged bytes.
  const Program p = assemble(R"(
  la r1, slot
  li r2, 0xFF
  sb r2, 3(r1)
  lw r3, 0(r1)
  halt
.data
slot: .word 0
)");
  ReferenceInterpreter ref(1 << 20);
  ref.run(p);
  auto cpu = make_processor(p, small_machine(), {});
  ASSERT_EQ(cpu->run(10'000), RunOutcome::kHalted);
  EXPECT_EQ(cpu->registers().read_int(3), ref.registers().read_int(3));
  EXPECT_EQ(cpu->registers().read_int(3), 0xFFL << 24);
}

TEST(Processor, StallDetectionOnInfiniteLoop) {
  const Program p = assemble("spin:\n  j spin\n");
  auto cpu = make_processor(p, small_machine(), {});
  // An infinite loop retires forever, so it hits max cycles, not kStalled.
  EXPECT_EQ(cpu->run(50'000), RunOutcome::kMaxCycles);
  EXPECT_GT(cpu->stats().retired, 0u);
}

TEST(Processor, FaultOnWildCommittedStore) {
  const Program p = assemble(R"(
  li r1, 123456789
  sw r0, 0(r1)
  halt
)");
  MachineConfig cfg = small_machine();
  cfg.data_memory_bytes = 4096;
  auto cpu = make_processor(p, cfg, {});
  EXPECT_EQ(cpu->run(10'000), RunOutcome::kFault);
  EXPECT_FALSE(cpu->fault_message().empty());
}

TEST(Processor, SpeculativeWildLoadIsBenignWhenSquashed) {
  // The branch is always taken at runtime but predicted not-taken on the
  // first encounter, so the wild load issues speculatively and must be
  // squashed without faulting.
  const Program p = assemble(R"(
  li r1, 1
  li r2, 123456
  bne r1, r0, good
  lw r3, 0(r2)
good:
  halt
)");
  MachineConfig cfg = small_machine();
  cfg.data_memory_bytes = 4096;
  cfg.predictor = PredictorKind::kNotTaken;
  auto cpu = make_processor(p, cfg, {});
  EXPECT_EQ(cpu->run(10'000), RunOutcome::kHalted);
}

TEST(Processor, TinyMachineBackpressure) {
  // RUU of 4 and single-wide everything: heavy backpressure, still exact.
  const Program p = kernel_by_name("dot_int").assemble_program();
  MachineConfig cfg = small_machine();
  cfg.fetch_width = 1;
  cfg.queue_entries = 4;
  cfg.ruu_entries = 4;
  cfg.retire_width = 1;
  ReferenceInterpreter ref(1 << 20);
  const auto ref_result = ref.run(p);
  auto cpu = make_processor(p, cfg, {});
  ASSERT_EQ(cpu->run(5'000'000), RunOutcome::kHalted);
  EXPECT_EQ(cpu->stats().retired, ref_result.instructions);
  EXPECT_TRUE(cpu->memory() == ref.memory());
  EXPECT_LE(cpu->stats().ipc(), 1.0);
}

TEST(Processor, DeepCallNestingExceedsRasDepth) {
  // 12 nested calls against an 8-entry RAS: returns past the RAS depth
  // mispredict but must still commit correctly.
  std::string src = "  addi r1, r0, 0\n  call f0\n  halt\n";
  for (int level = 0; level < 12; ++level) {
    src += "f" + std::to_string(level) + ":\n";
    src += "  addi r1, r1, 1\n";
    if (level < 11) {
      // Save and restore the link register around the nested call.
      src += "  mv r" + std::to_string(10 + level) + ", ra\n";
      src += "  call f" + std::to_string(level + 1) + "\n";
      src += "  mv ra, r" + std::to_string(10 + level) + "\n";
    }
    src += "  ret\n";
  }
  const Program p = assemble(src);
  ReferenceInterpreter ref(1 << 20);
  const auto ref_result = ref.run(p);
  ASSERT_TRUE(ref_result.halted);
  auto cpu = make_processor(p, small_machine(), {});
  ASSERT_EQ(cpu->run(100'000), RunOutcome::kHalted);
  EXPECT_EQ(cpu->registers().read_int(1), 12);
  EXPECT_EQ(cpu->stats().retired, ref_result.instructions);
}

TEST(Processor, InstructionFlowConservation) {
  // dispatched == retired + squashed, and issued is bounded by both ends.
  const Program p = assemble(R"(
  li r1, 200
  addi r2, r0, 0
cl:
  xori r2, r2, 1
  beq r2, r0, cs
  addi r3, r3, 1
cs:
  addi r1, r1, -1
  bne r1, r0, cl
  halt
)");
  auto cpu = make_processor(p, small_machine(), {});
  ASSERT_EQ(cpu->run(1'000'000), RunOutcome::kHalted);
  const SimStats& s = cpu->stats();
  EXPECT_EQ(s.retired + s.squashed, s.dispatched);
  EXPECT_GE(s.issued, s.retired);
  EXPECT_LE(s.issued, s.dispatched);
  EXPECT_GT(s.squashed, 0u) << "this workload must mispredict";
}

TEST(Processor, NoTraceCacheStillCorrect) {
  const Program p = kernel_by_name("fir").assemble_program();
  MachineConfig cfg = small_machine();
  cfg.use_trace_cache = false;
  ReferenceInterpreter ref(1 << 20);
  ref.run(p);
  auto cpu = make_processor(p, cfg, {});
  ASSERT_EQ(cpu->run(1'000'000), RunOutcome::kHalted);
  EXPECT_TRUE(cpu->memory() == ref.memory());
  EXPECT_EQ(cpu->trace_cache(), nullptr);
}

TEST(Processor, TraceCacheImprovesFetchOnLoops) {
  const Program p = kernel_by_name("sum_array").assemble_program();
  MachineConfig with = small_machine();
  MachineConfig without = small_machine();
  without.use_trace_cache = false;
  auto cpu_with = make_processor(p, with, {});
  auto cpu_without = make_processor(p, without, {});
  ASSERT_EQ(cpu_with->run(1'000'000), RunOutcome::kHalted);
  ASSERT_EQ(cpu_without->run(1'000'000), RunOutcome::kHalted);
  // A tight taken-branch loop limits conventional fetch to one iteration
  // per cycle group; the trace cache must not be slower.
  EXPECT_LE(cpu_with->stats().cycles, cpu_without->stats().cycles + 5);
}

TEST(Processor, OutOfOrderCompletionObservable) {
  // A long divide followed by independent adds: the adds issue and
  // complete while the divide is still executing, so total cycles are far
  // below the serialized sum.
  const Program p = assemble(R"(
  li r1, 1000
  li r2, 7
  div r3, r1, r2
  addi r4, r0, 1
  addi r5, r0, 2
  addi r6, r0, 3
  addi r7, r0, 4
  halt
)");
  auto cpu = make_processor(p, small_machine(), {});
  ASSERT_EQ(cpu->run(10'000), RunOutcome::kHalted);
  EXPECT_EQ(cpu->registers().read_int(3), 142);
  EXPECT_EQ(cpu->registers().read_int(7), 4);
}

// ------------------------------------------- construction validation

/// Expects Processor construction to reject `cfg` with a message
/// mentioning `needle` (descriptive errors beat deep-in-module aborts).
void expect_rejected(const MachineConfig& cfg, const std::string& needle) {
  const Program p = assemble("  halt\n");
  try {
    Processor cpu(p, cfg, std::make_unique<StaticPolicy>("test"));
    FAIL() << "expected std::invalid_argument mentioning '" << needle
           << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ConfigValidation, DefaultConfigIsAccepted) {
  const Program p = assemble("  halt\n");
  EXPECT_NO_THROW(
      Processor(p, MachineConfig{}, std::make_unique<StaticPolicy>("test")));
}

TEST(ConfigValidation, RejectsSlotCountMismatchWithSteeringSet) {
  MachineConfig cfg;
  cfg.loader.num_slots = 4;  // steering set still declares 8
  expect_rejected(cfg, "num_slots");
}

TEST(ConfigValidation, RejectsZeroCyclesPerSlot) {
  MachineConfig cfg;
  cfg.loader.cycles_per_slot = 0;
  expect_rejected(cfg, "cycles_per_slot");
}

TEST(ConfigValidation, RejectsZeroConcurrentRegions) {
  MachineConfig cfg;
  cfg.loader.max_concurrent_regions = 0;
  expect_rejected(cfg, "max_concurrent_regions");
}

TEST(ConfigValidation, RejectsZeroEntryRuuAndQueue) {
  MachineConfig cfg;
  cfg.ruu_entries = 0;
  expect_rejected(cfg, "ruu_entries");
  cfg = MachineConfig{};
  cfg.queue_entries = 0;
  expect_rejected(cfg, "queue_entries");
  cfg = MachineConfig{};
  cfg.queue_entries = kMaxWakeupEntries + 1;
  expect_rejected(cfg, "queue_entries");
}

TEST(ConfigValidation, RejectsRuuSmallerThanQueue) {
  MachineConfig cfg;
  cfg.ruu_entries = 4;  // < default queue_entries (7)
  expect_rejected(cfg, "queue_entries");
}

TEST(ConfigValidation, RejectsBadWidthsAndMemory) {
  MachineConfig cfg;
  cfg.fetch_width = 0;
  expect_rejected(cfg, "fetch_width");
  cfg = MachineConfig{};
  cfg.fetch_width = kMaxFetchWidth + 1;
  expect_rejected(cfg, "fetch_width");
  cfg = MachineConfig{};
  cfg.retire_width = 0;
  expect_rejected(cfg, "retire_width");
  cfg = MachineConfig{};
  cfg.data_memory_bytes = 0;
  expect_rejected(cfg, "data_memory_bytes");
}

TEST(ConfigValidation, RejectsBadFaultParameters) {
  MachineConfig cfg;
  cfg.fault.upset_rate = 1.5;
  expect_rejected(cfg, "upset_rate");
  cfg = MachineConfig{};
  cfg.fault.permanent_rate = -0.25;
  expect_rejected(cfg, "permanent_rate");
  cfg = MachineConfig{};
  cfg.fault.script = {{0, FaultKind::kTransientUpset, 8}};  // slots are 0-7
  expect_rejected(cfg, "script slot");
}

// ------------------------------------------------- stall diagnostics

TEST(StallDetection, StallProducesMachineStateDigest) {
  // A machine whose steering set has no FP-MDU anywhere (FFU count zeroed,
  // fabric left empty by the static-ffu policy) can never issue an fmul:
  // the RUU head waits forever and the stall detector must fire with an
  // actionable one-line digest instead of a bare return code.
  MachineConfig cfg;
  cfg.steering.ffu[fu_index(FuType::kFpMdu)] = 0;
  const Program p = assemble("  fmul f1, f2, f3\n  halt\n");
  auto cpu = make_processor(p, cfg, {.kind = PolicyKind::kStaticFfu});
  ASSERT_EQ(cpu->run(300'000), RunOutcome::kStalled);
  const std::string& digest = cpu->fault_message();
  ASSERT_FALSE(digest.empty());
  EXPECT_NE(digest.find("stalled"), std::string::npos) << digest;
  EXPECT_NE(digest.find("fmul"), std::string::npos)
      << "digest must name the stuck RUU-head instruction: " << digest;
  EXPECT_NE(digest.find("ruu"), std::string::npos) << digest;
  EXPECT_NE(digest.find("queue"), std::string::npos) << digest;
  EXPECT_NE(digest.find("alloc"), std::string::npos) << digest;
}

}  // namespace
}  // namespace steersim
