// Unit tests for the common substrate: bitsets, fixed vectors, RNG,
// statistics, string helpers, saturating counters.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/bitset.hpp"
#include "common/fixed_vector.hpp"
#include "common/rng.hpp"
#include "common/sat_counter.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"

namespace steersim {
namespace {

TEST(SmallBitset, SetResetCount) {
  SmallBitset<7> bits;
  EXPECT_TRUE(bits.none());
  bits.set(0);
  bits.set(6);
  EXPECT_EQ(bits.count(), 2u);
  EXPECT_TRUE(bits.test(0));
  EXPECT_FALSE(bits.test(3));
  bits.reset(0);
  EXPECT_EQ(bits.count(), 1u);
  EXPECT_EQ(bits.lowest(), 6u);
}

TEST(SmallBitset, BitwiseOperators) {
  SmallBitset<8> a(0b10110000);
  SmallBitset<8> b(0b10010001);
  EXPECT_EQ((a & b).raw(), 0b10010000u);
  EXPECT_EQ((a | b).raw(), 0b10110001u);
  EXPECT_EQ((a ^ b).raw(), 0b00100001u);
  EXPECT_EQ((~a).raw(), 0b01001111u);
}

TEST(SmallBitset, ComplementStaysInRange) {
  SmallBitset<5> empty;
  EXPECT_EQ((~empty).raw(), 0b11111u);
  EXPECT_EQ((~empty).count(), 5u);
}

TEST(SmallBitset, FullWidth64) {
  SmallBitset<64> bits;
  bits.set(63);
  EXPECT_EQ(bits.raw(), 1ull << 63);
  EXPECT_EQ((~bits).count(), 63u);
}

TEST(FixedVector, PushPopFrontErase) {
  FixedVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  v.push_back(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
  v.erase_front(2);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 3);
  v.pop_back();
  EXPECT_TRUE(v.empty());
}

TEST(FixedVector, FullDetection) {
  FixedVector<int, 2> v;
  v.push_back(1);
  EXPECT_FALSE(v.full());
  v.push_back(2);
  EXPECT_TRUE(v.full());
}

TEST(FixedVector, Equality) {
  FixedVector<int, 4> a;
  FixedVector<int, 4> b;
  a.push_back(1);
  b.push_back(1);
  EXPECT_EQ(a, b);
  b.push_back(2);
  EXPECT_FALSE(a == b);
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  Xoshiro256 c(43);
  bool any_differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    any_differs = any_differs || (va != c.next());
  }
  EXPECT_TRUE(any_differs);
}

TEST(Xoshiro, NextBelowInRangeAndCoversValues) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RunningStat, Moments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(RunningStat, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, EmptyMinMaxAreNaN) {
  // min()/max() of no samples used to report the +/-inf priming sentinels
  // as if they were data; NaN is the honest answer (rendered "-").
  const RunningStat s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  RunningStat one;
  one.add(3.0);
  EXPECT_DOUBLE_EQ(one.min(), 3.0);
  EXPECT_DOUBLE_EQ(one.max(), 3.0);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i % 10) + 0.5);
  }
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.bucket_count(b), 10u);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
}

TEST(Histogram, OutOfRangeClampsToEndBuckets) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
}

TEST(Histogram, InfinitiesClampAndNaNIsDroppedCounted) {
  // Infinities used to flow into a float->size_t cast (UB); they now clamp
  // into the end buckets like any out-of-range sample, and NaN (which has
  // no defensible bucket) is dropped but counted.
  Histogram h(0.0, 10.0, 4);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.nan_samples(), 2u);
}

TEST(Histogram, TopQuantileReturnsTopOccupiedBucket) {
  // quantile(1.0) used to fall off the distribution and return hi_ even
  // when the top buckets were empty.
  Histogram h(0.0, 100.0, 10);
  h.add(5.0);
  h.add(15.0);
  h.add(25.0);
  // Top occupied bucket is [20,30): its lower edge is 20.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  const Histogram empty(0.0, 100.0, 10);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
}

TEST(SatCounter, TwoBitHysteresis) {
  SatCounter c(2, 1);  // weakly not-taken
  EXPECT_FALSE(c.predict_taken());
  c.update(true);
  EXPECT_TRUE(c.predict_taken());
  c.update(true);
  EXPECT_EQ(c.value(), 3);
  c.update(true);  // saturates
  EXPECT_EQ(c.value(), 3);
  c.update(false);
  EXPECT_TRUE(c.predict_taken());  // hysteresis: one miss keeps prediction
  c.update(false);
  EXPECT_FALSE(c.predict_taken());
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
  // NaN means "no data" everywhere it can reach a report; render as "-".
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN(), 3), "-");
}

TEST(Strings, ParsePositiveU64AcceptsOnlyPureDecimal) {
  EXPECT_EQ(parse_positive_u64("1"), 1u);
  EXPECT_EQ(parse_positive_u64("200000"), 200000u);
  EXPECT_EQ(parse_positive_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());

  // Everything else is rejected — most importantly "-1", which strtoull
  // would happily wrap to 2^64-1 and thereby disable a cycle budget.
  EXPECT_FALSE(parse_positive_u64("").has_value());
  EXPECT_FALSE(parse_positive_u64("0").has_value());
  EXPECT_FALSE(parse_positive_u64("-1").has_value());
  EXPECT_FALSE(parse_positive_u64("+1").has_value());
  EXPECT_FALSE(parse_positive_u64("12x").has_value());
  EXPECT_FALSE(parse_positive_u64("0x10").has_value());
  EXPECT_FALSE(parse_positive_u64(" 1").has_value());
  EXPECT_FALSE(parse_positive_u64("1 ").has_value());
  EXPECT_FALSE(parse_positive_u64("1e6").has_value());
  EXPECT_FALSE(parse_positive_u64("18446744073709551616").has_value());
  EXPECT_FALSE(parse_positive_u64("99999999999999999999999").has_value());
}

TEST(Strings, PadBothDirections) {
  EXPECT_EQ(pad("ab", 5), "   ab");
  EXPECT_EQ(pad("ab", -5), "ab   ");
  EXPECT_EQ(pad("abcdef", 3), "abcdef");
}

TEST(Strings, SplitAndTrim) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, FormatBits) {
  EXPECT_EQ(format_bits(0b101, 3), "101");
  EXPECT_EQ(format_bits(1, 5), "00001");
}

}  // namespace
}  // namespace steersim
