// Reference-interpreter tests: golden architectural results for the kernel
// library, plus semantics spot checks through real programs.
#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "isa/assembler.hpp"
#include "workload/kernels.hpp"

namespace steersim {
namespace {

TEST(Reference, Fib30) {
  const Program p = kernel_by_name("fib").assemble_program();
  ReferenceInterpreter ref;
  const auto result = ref.run(p);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(ref.memory().load_word(p.data_labels.at("out")), 832040);
}

TEST(Reference, SumArray) {
  const Program p = kernel_by_name("sum_array").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  EXPECT_EQ(ref.memory().load_word(p.data_labels.at("out")),
            64 * 65 / 2);  // sum 1..64 = 2080
}

TEST(Reference, DotInt) {
  const Program p = kernel_by_name("dot_int").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  std::int64_t expected = 0;
  for (unsigned i = 0; i < 48; ++i) {
    expected += static_cast<std::int64_t>(i + 1) * (2 * i + 1);
  }
  EXPECT_EQ(ref.memory().load_word(p.data_labels.at("out")), expected);
}

TEST(Reference, Saxpy) {
  const Program p = kernel_by_name("saxpy").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  const std::uint64_t ys = p.data_labels.at("ys");
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(ref.memory().load_fp(ys + 8 * i), 2.5 * i + 1.0) << i;
  }
}

TEST(Reference, MemcpyWords) {
  const Program p = kernel_by_name("memcpy_words").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  const std::uint64_t dst = p.data_labels.at("dst");
  for (unsigned i = 0; i < 128; ++i) {
    EXPECT_EQ(ref.memory().load_word(dst + 8 * i), 1000 + i) << i;
  }
}

TEST(Reference, MatmulIdentity) {
  const Program p = kernel_by_name("matmul_int").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  const std::uint64_t c = p.data_labels.at("C");
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(ref.memory().load_word(c + 8 * i), i) << i;  // C == A
  }
}

TEST(Reference, Strlen) {
  const Program p = kernel_by_name("strlen").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  EXPECT_EQ(ref.memory().load_word(p.data_labels.at("out")), 43);
}

TEST(Reference, NewtonSqrt) {
  const Program p = kernel_by_name("newton_sqrt").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  EXPECT_NEAR(ref.memory().load_fp(p.data_labels.at("out")),
              1.4142135623730951, 1e-12);
}

TEST(Reference, Histogram) {
  const Program p = kernel_by_name("histogram").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  std::int64_t bins[8] = {};
  for (unsigned i = 0; i < 128; ++i) {
    ++bins[((i * 37 + 11) % 23) & 7];
  }
  const std::uint64_t addr = p.data_labels.at("bins");
  std::int64_t total = 0;
  for (unsigned b = 0; b < 8; ++b) {
    EXPECT_EQ(ref.memory().load_word(addr + 8 * b), bins[b]) << b;
    total += bins[b];
  }
  EXPECT_EQ(total, 128);
}

TEST(Reference, VectorScale) {
  const Program p = kernel_by_name("vector_scale").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  const std::uint64_t c = p.data_labels.at("c");
  for (unsigned i = 0; i < 96; ++i) {
    EXPECT_DOUBLE_EQ(ref.memory().load_fp(c + 8 * i),
                     3.0 * (0.25 * i + 1.0))
        << i;
  }
}

TEST(Reference, BubbleSort) {
  const Program p = kernel_by_name("bubble_sort").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  const std::uint64_t arr = p.data_labels.at("arr");
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(ref.memory().load_word(arr + 8 * i), i + 1) << i;
  }
}

TEST(Reference, BinarySearch) {
  const Program p = kernel_by_name("binsearch").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  // Keys 1, 49, 94, 190 are in {3i+1}; 2, 50, 95, 191 are not.
  EXPECT_EQ(ref.memory().load_word(p.data_labels.at("out")), 4);
}

TEST(Reference, Transpose) {
  const Program p = kernel_by_name("transpose").assemble_program();
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  const std::uint64_t t = p.data_labels.at("T");
  for (unsigned i = 0; i < 8; ++i) {
    for (unsigned j = 0; j < 8; ++j) {
      EXPECT_EQ(ref.memory().load_word(t + 8 * (i * 8 + j)),
                100 + j * 8 + i)
          << i << "," << j;
    }
  }
}

TEST(Reference, AllKernelsHalt) {
  for (const auto& kernel : kernel_library()) {
    ReferenceInterpreter ref;
    const auto result = ref.run(kernel.assemble_program());
    EXPECT_TRUE(result.halted) << kernel.name;
    EXPECT_GT(result.instructions, 10u) << kernel.name;
  }
}

TEST(Reference, MaxInstructionBudgetStopsRunaway) {
  const Program p = assemble("spin:\n  j spin\n");
  ReferenceInterpreter ref;
  const auto result = ref.run(p, 1000);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.instructions, 1000u);
}

TEST(Reference, DivisionByZeroIsDefined) {
  const Program p = assemble(R"(
  addi r1, r0, 7
  addi r2, r0, 0
  div r3, r1, r2
  rem r4, r1, r2
  halt
)");
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  EXPECT_EQ(ref.registers().read_int(3), 0);
  EXPECT_EQ(ref.registers().read_int(4), 7);
}

TEST(Reference, JalAndJrRoundTrip) {
  const Program p = assemble(R"(
  addi r1, r0, 1
  call fn
  addi r1, r1, 100
  halt
fn:
  addi r1, r1, 10
  ret
)");
  ReferenceInterpreter ref;
  EXPECT_TRUE(ref.run(p).halted);
  EXPECT_EQ(ref.registers().read_int(1), 111);
}

}  // namespace
}  // namespace steersim
