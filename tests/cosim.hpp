// Co-simulation helper for tests: runs a program on the out-of-order
// machine and the in-order reference simultaneously (retired-stream
// comparison) and reports the FIRST divergence with full context — far
// more actionable than an end-state mismatch.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/reference.hpp"
#include "sim/runner.hpp"

namespace steersim {

struct CommitRecord {
  std::uint32_t pc = 0;
  std::uint32_t next_pc = 0;
  std::int64_t int_result = 0;
};

/// Reference commit stream via a bare interpreter loop.
inline std::vector<CommitRecord> reference_commits(
    const Program& program, std::size_t data_bytes,
    std::uint64_t max_instructions) {
  std::vector<CommitRecord> commits;
  RegisterFile regs;
  DataMemory mem(data_bytes);
  mem.load_image(program.data);
  std::uint32_t pc = 0;
  while (commits.size() < max_instructions && pc < program.code.size()) {
    const Instruction& inst = program.code[pc];
    const OpInfo& info = op_info(inst.op);
    ExecInput in;
    in.pc = pc;
    if (info.rs1_class == RegClass::kInt) {
      in.rs1_int = regs.read_int(inst.rs1);
    } else if (info.rs1_class == RegClass::kFp) {
      in.rs1_fp = regs.read_fp(inst.rs1);
    }
    if (info.rs2_class == RegClass::kInt) {
      in.rs2_int = regs.read_int(inst.rs2);
    } else if (info.rs2_class == RegClass::kFp) {
      in.rs2_fp = regs.read_fp(inst.rs2);
    }
    const ExecOutput out = execute_op(inst, in);
    std::int64_t committed_int = out.int_value;
    if (info.is_load) {
      switch (inst.op) {
        case Opcode::kLw:
          committed_int = mem.load_word(out.mem_addr);
          regs.write_int(inst.rd, committed_int);
          break;
        case Opcode::kLb:
          committed_int = mem.load_byte(out.mem_addr);
          regs.write_int(inst.rd, committed_int);
          break;
        default:
          regs.write_fp(inst.rd, mem.load_fp(out.mem_addr));
          break;
      }
    } else if (info.is_store) {
      switch (inst.op) {
        case Opcode::kSw:
          mem.store_word(out.mem_addr, out.int_value);
          break;
        case Opcode::kSb:
          mem.store_byte(out.mem_addr, out.int_value);
          break;
        default:
          mem.store_fp(out.mem_addr, out.fp_value);
          break;
      }
    } else if (out.writes_int) {
      regs.write_int(inst.rd, out.int_value);
    } else if (out.writes_fp) {
      regs.write_fp(inst.rd, out.fp_value);
    }
    commits.push_back(CommitRecord{pc, out.next_pc, committed_int});
    if (info.is_halt) {
      break;
    }
    pc = out.next_pc;
  }
  return commits;
}

/// Runs both machines and compares the committed streams instruction by
/// instruction (pc, successor pc, integer result).
inline ::testing::AssertionResult cosim_match(
    const Program& program, const MachineConfig& config,
    const PolicySpec& spec, std::uint64_t max_cycles = 10'000'000) {
  const auto ref = reference_commits(program, config.data_memory_bytes,
                                     5'000'000);
  auto cpu = make_processor(program, config, spec);
  std::vector<CommitRecord> ooo;
  cpu->set_retire_hook([&ooo](const RuuEntry& e) {
    ooo.push_back(CommitRecord{e.pc, e.actual_next, e.int_result});
  });
  const RunOutcome outcome = cpu->run(max_cycles);
  if (outcome != RunOutcome::kHalted) {
    return ::testing::AssertionFailure()
           << "outcome " << static_cast<int>(outcome) << " fault='"
           << cpu->fault_message() << "'";
  }
  const std::size_t n = std::min(ref.size(), ooo.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ref[i].pc != ooo[i].pc || ref[i].next_pc != ooo[i].next_pc ||
        ref[i].int_result != ooo[i].int_result) {
      auto failure = ::testing::AssertionFailure();
      failure << "first divergence at committed instruction #" << i
              << ": ref{pc=" << ref[i].pc << " -> " << ref[i].next_pc
              << " int=" << ref[i].int_result << "} ooo{pc=" << ooo[i].pc
              << " -> " << ooo[i].next_pc << " int=" << ooo[i].int_result
              << "} inst='" << disassemble(program.code[ref[i].pc]) << "'";
      return failure;
    }
  }
  if (ref.size() != ooo.size()) {
    return ::testing::AssertionFailure()
           << "commit stream lengths differ: ref " << ref.size() << " ooo "
           << ooo.size();
  }
  return ::testing::AssertionSuccess();
}

}  // namespace steersim
