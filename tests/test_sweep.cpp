// parallel_map contract tests: index-deterministic results at any worker
// count, all jobs running even when some throw, and exception propagation
// (the lowest-index failure is rethrown after every worker joined — an
// exception escaping a jthread body would call std::terminate).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/sweep.hpp"

namespace steersim {
namespace {

std::vector<std::function<int()>> square_jobs(int n) {
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < n; ++i) {
    jobs.emplace_back([i] { return i * i; });
  }
  return jobs;
}

TEST(ParallelMap, ResultsAreIndexedDeterministicallyAtAnyWorkerCount) {
  const auto jobs = square_jobs(37);
  const std::vector<int> serial = parallel_map(jobs, 1);
  ASSERT_EQ(serial.size(), jobs.size());
  for (int i = 0; i < 37; ++i) {
    EXPECT_EQ(serial[static_cast<std::size_t>(i)], i * i);
  }
  EXPECT_EQ(parallel_map(jobs, 2), serial);
  EXPECT_EQ(parallel_map(jobs, 3), serial);
  EXPECT_EQ(parallel_map(jobs), serial);  // hardware concurrency
  EXPECT_EQ(parallel_map(jobs, 1000), serial) << "workers clamp to jobs";
}

TEST(ParallelMap, EmptyJobListReturnsEmpty) {
  EXPECT_TRUE(parallel_map(std::vector<std::function<int()>>{}).empty());
}

#if !defined(_WIN32)
TEST(DefaultWorkerCount, HonorsStrictEnvOverride) {
  ::unsetenv("STEERSIM_WORKERS");
  const unsigned fallback = default_worker_count();
  EXPECT_GE(fallback, 1u);

  ::setenv("STEERSIM_WORKERS", "3", 1);
  EXPECT_EQ(default_worker_count(), 3u);
  ::setenv("STEERSIM_WORKERS", "999999", 1);
  EXPECT_EQ(default_worker_count(), 1024u) << "absurd counts are clamped";

  // Strict parse: anything but a positive decimal integer is ignored with
  // a warning, never wrapped or prefix-parsed into a thread count.
  for (const char* bad : {"-1", "0", "4x", "0x10", " 8", ""}) {
    ::setenv("STEERSIM_WORKERS", bad, 1);
    EXPECT_EQ(default_worker_count(), fallback) << "value '" << bad << "'";
  }
  ::unsetenv("STEERSIM_WORKERS");
  EXPECT_EQ(default_worker_count(), fallback);
}
#endif

TEST(ParallelMap, ThrowingJobPropagatesToCaller) {
  std::vector<std::function<int()>> jobs = square_jobs(8);
  jobs[5] = []() -> int { throw std::runtime_error("job 5 failed"); };
  for (const unsigned workers : {1u, 4u}) {
    EXPECT_THROW(parallel_map(jobs, workers), std::runtime_error)
        << "workers=" << workers;
  }
}

TEST(ParallelMap, LowestIndexExceptionWinsAndAllJobsStillRun) {
  std::atomic<int> ran{0};
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.emplace_back([i, &ran]() -> int {
      ++ran;
      if (i == 3 || i == 11) {
        throw std::runtime_error("job " + std::to_string(i));
      }
      return i;
    });
  }
  try {
    parallel_map(jobs, 4);
    FAIL() << "expected a propagated exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 3");
  }
  EXPECT_EQ(ran.load(), 16)
      << "a failing job must not abort the rest of the sweep";
}

}  // namespace
}  // namespace steersim
