// Multi-core shared-fabric tests (docs/DESIGN.md §Multi-core shared
// fabric): arbiter grant order per policy, loader quota semantics, the
// N=1 bit-identity cosim gate (a single-core MultiCoreSim must reproduce
// simulate() exactly), determinism of contended runs, retirement
// conservation, and prop-share quota repartitioning invariants.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "config/loader.hpp"
#include "multicore/multicore.hpp"
#include "sim/metrics.hpp"
#include "workload/kernels.hpp"

namespace steersim {
namespace {

LoaderParams loader_params(unsigned cycles_per_slot = 4) {
  LoaderParams p;
  p.num_slots = 8;
  p.cycles_per_slot = cycles_per_slot;
  p.max_concurrent_regions = 1;
  p.partial = true;
  return p;
}

// ---------------------------------------------------------------------------
// Arbiter: grant order per policy.

TEST(Arbiter, RoundRobinRotatesAmongWaiters) {
  FabricStats stats;
  Arbiter arbiter(ArbiterKind::kRoundRobin, 3, stats);
  arbiter.begin_cycle(0, 0);
  EXPECT_TRUE(arbiter.acquire(0)) << "free port: first claimant wins";
  EXPECT_FALSE(arbiter.acquire(1));
  EXPECT_FALSE(arbiter.acquire(2));
  EXPECT_EQ(arbiter.holder(), 0);
  EXPECT_EQ(stats.port_grants, 1u);
  EXPECT_EQ(stats.port_denials, 2u);

  // Core 0 drains: the rotation hands the port to core 1, then core 2.
  arbiter.begin_cycle(1, 1ull << 0);
  EXPECT_EQ(arbiter.holder(), 1);
  EXPECT_TRUE(arbiter.acquire(1)) << "holder reacquires for free";
  arbiter.begin_cycle(2, 1ull << 1);
  EXPECT_EQ(arbiter.holder(), 2);
  arbiter.begin_cycle(3, 1ull << 2);
  EXPECT_EQ(arbiter.holder(), -1) << "no waiters left: port goes free";
  EXPECT_EQ(stats.port_grants, 3u);
  EXPECT_EQ(stats.grant_latency.count(), 2u);
}

TEST(Arbiter, PriorityGrantsTheLowestWaitingCore) {
  FabricStats stats;
  Arbiter arbiter(ArbiterKind::kPriority, 4, stats);
  arbiter.begin_cycle(0, 0);
  EXPECT_TRUE(arbiter.acquire(3));
  EXPECT_FALSE(arbiter.acquire(2));
  EXPECT_FALSE(arbiter.acquire(1));
  arbiter.begin_cycle(1, 1ull << 3);
  EXPECT_EQ(arbiter.holder(), 1) << "static priority: lowest index first";
  arbiter.begin_cycle(2, 1ull << 1);
  EXPECT_EQ(arbiter.holder(), 2);
}

TEST(Arbiter, HolderKeepsThePortWhileItsLoaderIsBusy) {
  FabricStats stats;
  Arbiter arbiter(ArbiterKind::kRoundRobin, 2, stats);
  arbiter.begin_cycle(0, 0);
  EXPECT_TRUE(arbiter.acquire(0));
  EXPECT_FALSE(arbiter.acquire(1));
  // Core 0's loader is still mid-rewrite (idle bit clear): no handover.
  arbiter.begin_cycle(1, 0);
  EXPECT_EQ(arbiter.holder(), 0);
  EXPECT_FALSE(arbiter.acquire(1));
  EXPECT_GE(stats.port_busy_cycles, 1u);
  arbiter.begin_cycle(2, 1ull << 0);
  EXPECT_EQ(arbiter.holder(), 1);
}

// ---------------------------------------------------------------------------
// Loader quota / port-gating semantics.

TEST(LoaderQuota, SetQuotaEvictsUnitsOnRevokedSlots) {
  // place() packs from slot 0: IntAlu at 0 and 1, FpAlu spanning 2-4.
  ConfigurationLoader loader(loader_params(),
                             AllocationVector::place({2, 0, 0, 1, 0}, 8));
  ASSERT_EQ(loader.allocation().counts()[fu_index(FuType::kFpAlu)], 1);
  SlotMask lower_half;
  for (unsigned s = 0; s < 4; ++s) {
    lower_half.set(s);
  }
  const unsigned evicted = loader.set_quota(lower_half);
  EXPECT_EQ(evicted, 1u) << "the FpAlu region overlaps barred slot 4";
  EXPECT_EQ(loader.allocation().counts()[fu_index(FuType::kFpAlu)], 0);
  EXPECT_EQ(loader.allocation().counts()[0], 2) << "in-quota units survive";
  EXPECT_EQ(loader.stats().quota_evictions, 1u);
  EXPECT_EQ(loader.quota(), lower_half);
  EXPECT_TRUE(loader.unplaceable().test(4));
  EXPECT_FALSE(loader.unplaceable().test(3));
}

TEST(LoaderQuota, FullQuotaIsIdentity) {
  ConfigurationLoader loader(loader_params(),
                             AllocationVector::place({2, 0, 0, 1, 0}, 8));
  SlotMask full;
  for (unsigned s = 0; s < 8; ++s) {
    full.set(s);
  }
  EXPECT_EQ(loader.set_quota(full), 0u) << "quota starts at the whole pool";
  EXPECT_TRUE(loader.unplaceable().none());
  EXPECT_EQ(loader.stats().quota_evictions, 0u);
}

TEST(LoaderQuota, PlacementNeverUsesBarredSlots) {
  ConfigurationLoader loader(loader_params(1), AllocationVector(8));
  SlotMask lower_half;
  for (unsigned s = 0; s < 4; ++s) {
    lower_half.set(s);
  }
  loader.set_quota(lower_half);
  // Four 1-slot IntAlu units fit the quota exactly.
  loader.request(AllocationVector::place({4, 0, 0, 0, 0}, 8));
  for (int c = 0; c < 64; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_TRUE(loader.idle());
  EXPECT_EQ(loader.allocation().counts()[0], 4);
  for (const auto& region : loader.allocation().regions()) {
    for (unsigned s = region.base; s < region.base + region.len; ++s) {
      EXPECT_LT(s, 4u) << "unit placed outside the quota";
    }
  }
}

struct DenyingArbiter final : ConfigPortArbiter {
  bool acquire(unsigned) override { return false; }
};

TEST(LoaderQuota, DeniedPortBlocksRewritesAndCounts) {
  ConfigurationLoader loader(loader_params(1), AllocationVector(8));
  DenyingArbiter deny;
  loader.set_port_arbiter(&deny, 0);
  loader.request(AllocationVector::place({2, 0, 0, 0, 0}, 8));
  for (int c = 0; c < 10; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.allocation().counts()[0], 0) << "no port, no rewrite";
  EXPECT_GE(loader.stats().port_denied_cycles, 10u);
  // Port restored: the pending target completes normally.
  loader.set_port_arbiter(nullptr, 0);
  for (int c = 0; c < 64; ++c) {
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.allocation().counts()[0], 2);
}

// ---------------------------------------------------------------------------
// MultiCoreSim: N=1 bit-identity, determinism, conservation.

CoreSpec core_spec(const std::string& kernel,
                   PolicySpec policy = PolicySpec{}) {
  return CoreSpec{kernel_by_name(kernel).assemble_program(), policy};
}

TEST(MultiCore, SingleCoreIsBitIdenticalToSimulate) {
  const MachineConfig cfg;
  for (const ArbiterKind arbiter : all_arbiters()) {
    MultiCoreParams params;
    params.arbiter = arbiter;
    params.machine = cfg;
    MultiCoreSim sim({core_spec("dot_int")}, params);
    const RunOutcome outcome = sim.run(50'000'000);
    const MultiCoreResult result = sim.collect();

    const SimResult reference =
        simulate(kernel_by_name("dot_int").assemble_program(), cfg,
                 PolicySpec{});
    EXPECT_EQ(outcome, reference.outcome);
    ASSERT_EQ(result.cores.size(), 1u);
    EXPECT_EQ(result.cores[0].policy, reference.policy);
    // Every subsystem counter, byte for byte: the lockstep driver must
    // not perturb single-core semantics in any way.
    EXPECT_EQ(metrics_json(result.cores[0]), metrics_json(reference))
        << "arbiter " << arbiter_name(arbiter);
    EXPECT_EQ(result.fabric.total_retired, reference.stats.retired);
  }
}

TEST(MultiCore, ContendedRunIsDeterministic) {
  const auto run_once = [] {
    MultiCoreParams params;
    params.arbiter = ArbiterKind::kPropShare;
    MultiCoreSim sim({core_spec("dot_int"), core_spec("saxpy"),
                      core_spec("crc_mix")},
                     params);
    sim.run(50'000'000);
    return collect_multicore_metrics(sim.collect()).to_json();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(MultiCore, RetirementIsConserved) {
  MultiCoreParams params;
  MultiCoreSim sim({core_spec("dot_int"), core_spec("saxpy")}, params);
  const RunOutcome outcome = sim.run(50'000'000);
  EXPECT_EQ(outcome, RunOutcome::kHalted);
  const MultiCoreResult result = sim.collect();
  std::uint64_t sum = 0;
  for (const SimResult& core : result.cores) {
    EXPECT_EQ(core.outcome, RunOutcome::kHalted);
    EXPECT_GT(core.stats.retired, 0u);
    sum += core.stats.retired;
  }
  EXPECT_EQ(sum, result.fabric.total_retired);
  EXPECT_LE(result.fabric.slot_cycles_used, result.fabric.slot_cycles_total);
  EXPECT_EQ(result.fabric.cycles, result.cycles);
}

TEST(MultiCore, QuotasPartitionThePoolDisjointly) {
  MultiCoreParams params;
  params.arbiter = ArbiterKind::kPropShare;
  params.repartition_interval = 32;
  MultiCoreSim sim({core_spec("dot_int"), core_spec("saxpy"),
                    core_spec("fib")},
                   params);
  sim.run(50'000'000);
  const unsigned n = sim.num_cores();
  SlotMask seen;
  for (unsigned k = 0; k < n; ++k) {
    const SlotMask quota = sim.fabric().quota_of(k);
    EXPECT_TRUE(quota.any()) << "every core keeps at least one slot";
    EXPECT_TRUE((quota & seen).none()) << "quotas overlap at core " << k;
    seen = seen | quota;
  }
  EXPECT_EQ(seen.count(), MachineConfig{}.loader.num_slots);
  const MultiCoreResult result = sim.collect();
  EXPECT_GT(result.fabric.repartitions, 0u)
      << "prop-share repartitions on its cadence";
}

TEST(MultiCore, ContendingCoresSerializeOnTheOnePort) {
  MultiCoreParams params;
  MultiCoreSim sim({core_spec("dot_int"), core_spec("saxpy")}, params);
  sim.run(50'000'000);
  const MultiCoreResult result = sim.collect();
  EXPECT_GT(result.fabric.port_grants, 0u);
  EXPECT_GT(result.fabric.port_busy_cycles, 0u);
  std::uint64_t denied = 0;
  for (const SimResult& core : result.cores) {
    denied += core.loader.port_denied_cycles;
  }
  EXPECT_EQ(result.fabric.port_denials, denied)
      << "fabric and per-core denial counters agree";
}

TEST(MultiCore, MergedTraceIsDeterministicAndCoversEveryPid) {
  const auto trace_once = [](const std::string& path) {
    MachineConfig cfg;
    cfg.trace.enabled = true;
    cfg.trace.path = path;
    MultiCoreParams params;
    params.machine = cfg;
    MultiCoreSim sim({core_spec("fib"), core_spec("dot_int")}, params);
    sim.run(50'000'000);
    sim.collect();
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
  };
  const std::string base = testing::TempDir() + "steersim_mc_trace";
  const std::string a = trace_once(base + "_a.json");
  const std::string b = trace_once(base + "_b.json");
  EXPECT_EQ(a, b) << "same workloads, same bytes";
  // One merged Chrome document: every core's pid plus the fabric's.
  EXPECT_NE(a.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(a.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(a.find("\"pid\":2"), std::string::npos) << "fabric lane pid";
  EXPECT_EQ(a.rfind("{\"traceEvents\":["), 0u) << "single document";
  // The per-core part files were merged and removed.
  EXPECT_FALSE(std::ifstream(base + "_a.json.core0").good());
  EXPECT_FALSE(std::ifstream(base + "_a.json.fabric").good());
  std::remove((base + "_a.json").c_str());
  std::remove((base + "_b.json").c_str());
}

}  // namespace
}  // namespace steersim
