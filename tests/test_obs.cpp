// Observability layer (docs/OBSERVABILITY.md): the cycle tracer's JSON
// output, the steering audit log, the metric registry, the interval
// sampler, and — most importantly — that enabling any of it leaves
// simulated statistics bit-identical.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/json.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"
#include "workload/synthetic.hpp"

namespace steersim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// RAII deleter for test artifact files.
struct FileGuard {
  explicit FileGuard(std::string p) : path(std::move(p)) {}
  ~FileGuard() { std::remove(path.c_str()); }
  std::string path;
};

Program phased_program() {
  return generate_synthetic(alternating_phases(512, 2, 7));
}

// --- TraceArgs / Tracer unit level. --------------------------------------

TEST(TraceArgs, RendersTypedMembers) {
  TraceArgs args;
  args.num("a", std::uint64_t{7})
      .num("b", std::int64_t{-3})
      .num("c", 1.5)
      .str("d", "x\"y");
  EXPECT_EQ(args.body(), R"("a":7,"b":-3,"c":1.5,"d":"x\"y")");
}

TEST(Tracer, EmitsParseableJson) {
  const FileGuard file("test_tracer_basic.json");
  {
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.path = file.path;
    Tracer tracer(cfg);
    tracer.ensure_lane(0, "lane zero");
    TraceArgs args;
    args.num("pc", std::uint64_t{16});
    tracer.instant("tick", trace_cat::kFetch, 0, 5, args);
    tracer.complete("span", trace_cat::kExecute, 1, 10, 4);
    EXPECT_EQ(tracer.events_emitted(), 2u);
    tracer.close();
  }
  JsonValue doc;
  ASSERT_TRUE(JsonParser(slurp(file.path)).parse(doc));
  const JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  // 2 metadata events for the named lane + 2 real events.
  ASSERT_EQ(events->array.size(), 4u);
  const JsonValue& instant = events->array[2];
  EXPECT_EQ(instant.get("name")->string, "tick");
  EXPECT_EQ(instant.get("ph")->string, "i");
  EXPECT_EQ(instant.get("ts")->number, 5.0);
  EXPECT_EQ(instant.get("args")->get("pc")->number, 16.0);
  const JsonValue& complete = events->array[3];
  EXPECT_EQ(complete.get("ph")->string, "X");
  EXPECT_EQ(complete.get("ts")->number, 10.0);
  EXPECT_EQ(complete.get("dur")->number, 4.0);
}

TEST(Tracer, CategoryAndWindowFilters) {
  const FileGuard file("test_tracer_filter.json");
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.path = file.path;
  cfg.categories = trace_cat::kSteer;
  cfg.start_cycle = 100;
  cfg.end_cycle = 200;
  Tracer tracer(cfg);
  tracer.instant("in", trace_cat::kSteer, 0, 150);
  tracer.instant("wrong-cat", trace_cat::kFetch, 0, 150);
  tracer.instant("early", trace_cat::kSteer, 0, 99);
  tracer.instant("late", trace_cat::kSteer, 0, 201);
  // A span straddling the window start overlaps it and is kept.
  tracer.complete("straddle", trace_cat::kSteer, 0, 90, 20);
  tracer.complete("before", trace_cat::kSteer, 0, 10, 20);
  EXPECT_EQ(tracer.events_emitted(), 2u);
  EXPECT_FALSE(tracer.wants(trace_cat::kFetch, 150));
  EXPECT_TRUE(tracer.wants(trace_cat::kSteer, 150));
  EXPECT_FALSE(tracer.wants(trace_cat::kSteer, 99));
}

// --- Whole-machine tracing. ----------------------------------------------

TEST(Tracing, ProducesValidEventStreamFromSteeredRun) {
  const FileGuard file("test_trace_run.json");
  MachineConfig cfg;
  cfg.trace.enabled = true;
  cfg.trace.path = file.path;
  const SimResult result = simulate(phased_program(), cfg,
                                    {.kind = PolicyKind::kSteered}, 100'000);
  ASSERT_EQ(result.outcome, RunOutcome::kHalted);

  JsonValue doc;
  ASSERT_TRUE(JsonParser(slurp(file.path)).parse(doc));
  const JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->array.size(), 100u);

  std::map<double, double> last_ts_per_lane;
  std::map<std::string, std::uint64_t> per_category;
  for (const JsonValue& ev : events->array) {
    ASSERT_EQ(ev.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = ev.get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      continue;  // metadata carries no timestamp
    }
    ASSERT_NE(ev.get("name"), nullptr);
    ASSERT_NE(ev.get("ts"), nullptr);
    ASSERT_NE(ev.get("tid"), nullptr);
    ASSERT_NE(ev.get("cat"), nullptr);
    ++per_category[ev.get("cat")->string];
    // Event start timestamps never go backwards within a lane.
    const double lane = ev.get("tid")->number;
    const double ts = ev.get("ts")->number;
    const auto it = last_ts_per_lane.find(lane);
    if (it != last_ts_per_lane.end()) {
      EXPECT_LE(it->second, ts) << "lane " << lane;
    }
    last_ts_per_lane[lane] = ts;
  }
  // A steered phased run exercises the whole pipeline.
  for (const char* cat :
       {"fetch", "dispatch", "execute", "commit", "steer", "loader"}) {
    EXPECT_GT(per_category[cat], 0u) << cat;
  }
}

TEST(Tracing, DisabledRunIsBitIdentical) {
  const FileGuard file("test_trace_identical.json");
  MachineConfig plain_cfg;
  MachineConfig traced_cfg;
  traced_cfg.trace.enabled = true;
  traced_cfg.trace.path = file.path;
  traced_cfg.audit.enabled = true;  // in-memory audit must not perturb either
  const Program program = phased_program();
  const SimResult plain =
      simulate(program, plain_cfg, {.kind = PolicyKind::kSteered}, 100'000);
  const SimResult traced =
      simulate(program, traced_cfg, {.kind = PolicyKind::kSteered}, 100'000);

  EXPECT_EQ(plain.stats.cycles, traced.stats.cycles);
  EXPECT_EQ(plain.stats.retired, traced.stats.retired);
  EXPECT_EQ(plain.stats.dispatched, traced.stats.dispatched);
  EXPECT_EQ(plain.stats.issued, traced.stats.issued);
  EXPECT_EQ(plain.stats.squashed, traced.stats.squashed);
  EXPECT_EQ(plain.stats.mispredicts, traced.stats.mispredicts);
  EXPECT_EQ(plain.stats.resource_starved, traced.stats.resource_starved);
  EXPECT_EQ(plain.steering.steer_events, traced.steering.steer_events);
  EXPECT_EQ(plain.steering.selections, traced.steering.selections);
  EXPECT_EQ(plain.loader.slots_rewritten, traced.loader.slots_rewritten);
  EXPECT_EQ(plain.loader.targets_requested, traced.loader.targets_requested);
}

TEST(Tracing, WindowLimitsEventsToCycleRange) {
  const FileGuard file("test_trace_window.json");
  MachineConfig cfg;
  cfg.trace.enabled = true;
  cfg.trace.path = file.path;
  cfg.trace.categories = trace_cat::kCommit;
  cfg.trace.start_cycle = 200;
  cfg.trace.end_cycle = 400;
  simulate(phased_program(), cfg, {.kind = PolicyKind::kSteered}, 100'000);

  JsonValue doc;
  ASSERT_TRUE(JsonParser(slurp(file.path)).parse(doc));
  std::uint64_t counted = 0;
  for (const JsonValue& ev : doc.get("traceEvents")->array) {
    if (ev.get("ph")->string == "M") {
      continue;
    }
    EXPECT_EQ(ev.get("cat")->string, "commit");
    EXPECT_GE(ev.get("ts")->number, 200.0);
    EXPECT_LE(ev.get("ts")->number, 400.0);
    ++counted;
  }
  EXPECT_GT(counted, 0u);
}

// --- Batched pipeline: skip-ahead stays engaged under observation. -------

/// Event lines of a rendered trace document, in order, trailing comma
/// stripped. Metadata ("ph":"M") and the synthetic skip-lane events are
/// excluded so a skip-engaged document can compare against a live-stepped
/// one (which has neither a skip lane nor skip spans).
std::vector<std::string> comparable_event_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"name\":", 0) != 0) {
      continue;  // document prefix/suffix
    }
    if (!line.empty() && line.back() == ',') {
      line.pop_back();
    }
    if (line.find("\"ph\":\"M\"") != std::string::npos ||
        line.find("\"cat\":\"skip\"") != std::string::npos) {
      continue;
    }
    lines.push_back(line);
  }
  return lines;
}

std::uint64_t count_skip_spans(const std::string& text) {
  std::uint64_t spans = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"cat\":\"skip\"") != std::string::npos &&
        line.find("\"ph\":\"X\"") != std::string::npos) {
      ++spans;
    }
  }
  return spans;
}

/// run() keeps skip-ahead engaged with a tracer attached; a manual step()
/// loop never skips. Modulo the synthetic skip spans, the two must render
/// the same events in the same order — the batched replay of skipped
/// steering decisions is exact.
TEST(Tracing, SkipAheadEventStreamMatchesLiveStepping) {
  const FileGuard batched_file("test_trace_skip_batched.json");
  const FileGuard live_file("test_trace_skip_live.json");
  const Program program = phased_program();

  MachineConfig batched_cfg;
  batched_cfg.trace.enabled = true;
  batched_cfg.trace.path = batched_file.path;
  const SimResult batched = simulate(program, batched_cfg,
                                     {.kind = PolicyKind::kSteered}, 100'000);
  ASSERT_EQ(batched.outcome, RunOutcome::kHalted);

  MachineConfig live_cfg = batched_cfg;
  live_cfg.trace.path = live_file.path;
  std::uint64_t live_cycles = 0;
  std::uint64_t live_retired = 0;
  {
    auto cpu = make_processor(program, live_cfg,
                              {.kind = PolicyKind::kSteered});
    for (std::uint64_t c = 0; c < 100'000 && !cpu->halted(); ++c) {
      cpu->step();
    }
    ASSERT_TRUE(cpu->halted());
    live_cycles = cpu->stats().cycles;
    live_retired = cpu->stats().retired;
  }  // processor destruction finalizes the trace document

  EXPECT_EQ(batched.stats.cycles, live_cycles);
  EXPECT_EQ(batched.stats.retired, live_retired);

  const std::string batched_text = slurp(batched_file.path);
  EXPECT_GT(count_skip_spans(batched_text), 0u)
      << "run() never engaged skip-ahead with a tracer attached";
  EXPECT_EQ(count_skip_spans(slurp(live_file.path)), 0u);
  EXPECT_EQ(comparable_event_lines(batched_text),
            comparable_event_lines(slurp(live_file.path)));
}

TEST(Tracer, UnopenablePathDegradesToNullSink) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.path = "test_no_such_dir/nested/trace.json";
  Tracer tracer(cfg);
  EXPECT_TRUE(tracer.null_sink());
  tracer.ensure_lane(0, "lane zero");
  tracer.instant("tick", trace_cat::kFetch, 0, 5);
  tracer.complete("span", trace_cat::kExecute, 1, 10, 4);
  // Events are still accepted and counted; only rendering is discarded.
  EXPECT_EQ(tracer.events_emitted(), 2u);
  tracer.close();  // must not abort on the dead sink
  std::ifstream in(cfg.path);
  EXPECT_FALSE(in.good());
}

TEST(Tracing, NullSinkRunIsBitIdentical) {
  MachineConfig plain_cfg;
  MachineConfig dead_cfg;
  dead_cfg.trace.enabled = true;
  dead_cfg.trace.path = "test_no_such_dir/nested/trace.json";
  const Program program = phased_program();
  const SimResult plain =
      simulate(program, plain_cfg, {.kind = PolicyKind::kSteered}, 100'000);
  const SimResult dead =
      simulate(program, dead_cfg, {.kind = PolicyKind::kSteered}, 100'000);
  EXPECT_EQ(plain.stats.cycles, dead.stats.cycles);
  EXPECT_EQ(plain.stats.retired, dead.stats.retired);
  EXPECT_EQ(plain.stats.issued, dead.stats.issued);
  EXPECT_EQ(plain.steering.selections, dead.steering.selections);
  EXPECT_EQ(plain.loader.slots_rewritten, dead.loader.slots_rewritten);
}

/// Skip-ahead now crosses sampler territory: try_skip caps each skip at
/// the next window boundary, so the sampler sees every boundary cycle and
/// its output is byte-identical to a live-stepped run's.
TEST(Sampler, WindowsBitIdenticalAcrossSkipAheadAndLiveStepping) {
  const FileGuard batched_csv("test_sampler_skip_batched.csv");
  const FileGuard live_csv("test_sampler_skip_live.csv");
  const FileGuard trace_file("test_sampler_skip_trace.json");
  const Program program = phased_program();

  MachineConfig batched_cfg;
  batched_cfg.sample.period = 97;  // prime: boundaries land mid-skip
  batched_cfg.sample.csv_path = batched_csv.path;
  batched_cfg.trace.enabled = true;
  batched_cfg.trace.path = trace_file.path;
  const SimResult batched = simulate(program, batched_cfg,
                                     {.kind = PolicyKind::kSteered}, 100'000);
  ASSERT_EQ(batched.outcome, RunOutcome::kHalted);
  EXPECT_GT(count_skip_spans(slurp(trace_file.path)), 0u);

  MachineConfig live_cfg;
  live_cfg.sample.period = 97;
  live_cfg.sample.csv_path = live_csv.path;
  {
    auto cpu = make_processor(program, live_cfg,
                              {.kind = PolicyKind::kSteered});
    for (std::uint64_t c = 0; c < 100'000 && !cpu->halted(); ++c) {
      cpu->step();
    }
    ASSERT_TRUE(cpu->halted());
    cpu->flush_sampler();  // close the final partial window, as run() does
    EXPECT_EQ(batched.stats.cycles, cpu->stats().cycles);
  }
  EXPECT_EQ(slurp(batched_csv.path), slurp(live_csv.path));
}

/// Window-delta conservation (deltas sum to end-of-run totals) must hold
/// even when entire windows are skipped rather than stepped.
TEST(Sampler, ConservationHoldsAcrossSkippedWindows) {
  const FileGuard trace_file("test_sampler_skip_conserve.json");
  MachineConfig cfg;
  cfg.sample.period = 97;
  cfg.sample.counter_tracks = false;
  cfg.trace.enabled = true;
  cfg.trace.path = trace_file.path;
  auto cpu = make_processor(phased_program(), cfg,
                            {.kind = PolicyKind::kSteered});
  cpu->run(100'000);
  ASSERT_TRUE(cpu->halted());
  cpu->tracer()->close();
  EXPECT_GT(count_skip_spans(slurp(trace_file.path)), 0u)
      << "no skip-ahead engaged; this test would not cover skipped windows";

  const IntervalSampler* sampler = cpu->sampler();
  ASSERT_NE(sampler, nullptr);
  const auto& names = sampler->counter_names();
  std::vector<double> sums(names.size(), 0.0);
  std::uint64_t cycles_covered = 0;
  for (const SampleWindow& w : sampler->windows()) {
    ASSERT_EQ(w.deltas.size(), names.size());
    cycles_covered += w.window_cycles;
    for (std::size_t i = 0; i < names.size(); ++i) {
      sums[i] += w.deltas[i];
    }
  }
  EXPECT_EQ(cycles_covered, cpu->stats().cycles);

  const MetricRegistry live = cpu->live_metrics();
  for (const Metric& m : live.metrics()) {
    if (m.derived) {
      continue;
    }
    const auto it = std::find(names.begin(), names.end(), m.name);
    ASSERT_NE(it, names.end()) << m.name << " missing from sampler schema";
    const auto idx = static_cast<std::size_t>(it - names.begin());
    EXPECT_DOUBLE_EQ(sums[idx], m.value) << m.name;
  }
}

/// Seeded skip-cosim episodes, wakeup-cosim style: across several seeded
/// workloads, the skip-engaged run() and a live step() loop must agree on
/// statistics, rendered events, and sampled windows.
TEST(SkipCosim, SeededEpisodesMatchLiveStepping) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    const std::string tag = std::to_string(seed);
    const FileGuard batched_file("test_skip_cosim_b" + tag + ".json");
    const FileGuard live_file("test_skip_cosim_l" + tag + ".json");
    const FileGuard batched_csv("test_skip_cosim_b" + tag + ".csv");
    const FileGuard live_csv("test_skip_cosim_l" + tag + ".csv");
    const Program program =
        generate_synthetic(alternating_phases(256, 2, seed));

    MachineConfig batched_cfg;
    batched_cfg.trace.enabled = true;
    batched_cfg.trace.path = batched_file.path;
    batched_cfg.sample.period = 61;
    batched_cfg.sample.csv_path = batched_csv.path;
    const SimResult batched = simulate(
        program, batched_cfg, {.kind = PolicyKind::kSteered}, 100'000);
    ASSERT_EQ(batched.outcome, RunOutcome::kHalted) << "seed " << seed;

    MachineConfig live_cfg = batched_cfg;
    live_cfg.trace.path = live_file.path;
    live_cfg.sample.csv_path = live_csv.path;
    {
      auto cpu = make_processor(program, live_cfg,
                                {.kind = PolicyKind::kSteered});
      for (std::uint64_t c = 0; c < 100'000 && !cpu->halted(); ++c) {
        cpu->step();
      }
      ASSERT_TRUE(cpu->halted()) << "seed " << seed;
      cpu->flush_sampler();
      EXPECT_EQ(batched.stats.cycles, cpu->stats().cycles) << "seed " << seed;
      EXPECT_EQ(batched.stats.retired, cpu->stats().retired)
          << "seed " << seed;
    }
    EXPECT_EQ(comparable_event_lines(slurp(batched_file.path)),
              comparable_event_lines(slurp(live_file.path)))
        << "seed " << seed;
    EXPECT_EQ(slurp(batched_csv.path), slurp(live_csv.path))
        << "seed " << seed;
  }
}

// --- Steering audit log. -------------------------------------------------

TEST(Audit, SummaryMatchesPolicySelectionCounters) {
  MachineConfig cfg;
  cfg.audit.enabled = true;
  const SimResult result = simulate(phased_program(), cfg,
                                    {.kind = PolicyKind::kSteered}, 100'000);
  ASSERT_EQ(result.outcome, RunOutcome::kHalted);
  EXPECT_EQ(result.audit.records, result.steering.steer_events);
  for (unsigned c = 0; c < kNumCandidates; ++c) {
    EXPECT_EQ(result.audit.selections[c], result.steering.selections[c])
        << "candidate " << c;
  }
  EXPECT_EQ(result.audit.holds + result.audit.retargets +
                result.audit.confirm_suppressed,
            result.audit.records);
  // confirm=1 (the paper's behaviour) never suppresses.
  EXPECT_EQ(result.audit.confirm_suppressed, 0u);
}

TEST(Audit, CsvRowsMatchSelectionTotals) {
  const FileGuard file("test_audit.csv");
  MachineConfig cfg;
  cfg.audit.enabled = true;
  cfg.audit.csv_path = file.path;
  const SimResult result = simulate(phased_program(), cfg,
                                    {.kind = PolicyKind::kSteered}, 100'000);

  std::ifstream in(file.path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header.substr(0, 5), "cycle");
  EXPECT_NE(header.find("err0"), std::string::npos);
  EXPECT_NE(header.find("cost0"), std::string::npos);
  EXPECT_NE(header.find("intent"), std::string::npos);

  // Count per-selection rows; the selection column position comes from the
  // header so the test does not hard-code the schema width.
  std::vector<std::string> cols;
  std::stringstream hs(header);
  std::string col;
  while (std::getline(hs, col, ',')) {
    cols.push_back(col);
  }
  std::size_t sel_col = 0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == "selection") {
      sel_col = i;
    }
  }
  ASSERT_GT(sel_col, 0u);

  std::array<std::uint64_t, kNumCandidates> csv_selections{};
  std::uint64_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::stringstream ls(line);
    std::string field;
    for (std::size_t i = 0; i <= sel_col; ++i) {
      ASSERT_TRUE(static_cast<bool>(std::getline(ls, field, ',')));
    }
    const auto sel = static_cast<unsigned>(std::stoul(field));
    ASSERT_LT(sel, kNumCandidates);
    ++csv_selections[sel];
    ++rows;
  }
  EXPECT_EQ(rows, result.steering.steer_events);
  for (unsigned c = 0; c < kNumCandidates; ++c) {
    EXPECT_EQ(csv_selections[c], result.steering.selections[c])
        << "candidate " << c;
  }
}

TEST(Audit, ConfirmHysteresisShowsUpAsSuppressedDecisions) {
  MachineConfig cfg;
  cfg.audit.enabled = true;
  const SimResult result = simulate(
      phased_program(), cfg,
      {.kind = PolicyKind::kSteered, .confirm = 3}, 100'000);
  // With confirm=3 every non-current winner needs a 3-long streak, so some
  // decisions must be suppressed before any retarget happens.
  EXPECT_GT(result.audit.confirm_suppressed, 0u);
  EXPECT_EQ(result.audit.holds + result.audit.retargets +
                result.audit.confirm_suppressed,
            result.audit.records);
}

TEST(Audit, RecordsKeptInMemoryWithoutCsvPath) {
  AuditConfig cfg;
  cfg.enabled = true;
  SteeringAuditLog log(cfg);
  AuditRecord rec;
  rec.cycle = 42;
  rec.num_types = 5;
  rec.num_candidates = 4;
  rec.selection = 2;
  rec.tie_broken = true;
  rec.intent = AuditIntent::kRetarget;
  log.record(rec);
  ASSERT_EQ(log.records().size(), 1u);
  EXPECT_EQ(log.records()[0].cycle, 42u);
  EXPECT_EQ(log.summary().retargets, 1u);
  EXPECT_EQ(log.summary().ties_broken, 1u);
  const std::string row = SteeringAuditLog::csv_row(rec);
  EXPECT_EQ(row.substr(0, 3), "42,");
  EXPECT_NE(row.find("retarget"), std::string::npos);
}

// --- Metric registry. ----------------------------------------------------

TEST(Metrics, RegistryCollectsEverySubsystemWithExactValues) {
  MachineConfig cfg;
  const SimResult result = simulate(phased_program(), cfg,
                                    {.kind = PolicyKind::kSteered}, 100'000);
  const MetricRegistry reg = collect_metrics(result);
  EXPECT_GT(reg.size(), 40u);

  const Metric* cycles = reg.find("sim.cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(cycles->value, static_cast<double>(result.stats.cycles));
  const Metric* ipc = reg.find("sim.ipc");
  ASSERT_NE(ipc, nullptr);
  EXPECT_DOUBLE_EQ(ipc->value, result.stats.ipc());
  const Metric* rewrites = reg.find("loader.slots_rewritten");
  ASSERT_NE(rewrites, nullptr);
  EXPECT_EQ(rewrites->value,
            static_cast<double>(result.loader.slots_rewritten));
  const Metric* steer = reg.find("steer.steer_events");
  ASSERT_NE(steer, nullptr);
  EXPECT_EQ(steer->value, static_cast<double>(result.steering.steer_events));
  EXPECT_NE(reg.find("engine.issues"), nullptr);
  EXPECT_NE(reg.find("fetch.fetched"), nullptr);
  EXPECT_NE(reg.find("tcache.hit_rate"), nullptr);
  EXPECT_NE(reg.find("wakeup.grants"), nullptr);
  EXPECT_NE(reg.find("dcache.miss_rate"), nullptr);
  EXPECT_NE(reg.find("fault.upsets_injected"), nullptr);
  EXPECT_NE(reg.find("recovery.rollbacks"), nullptr);
  EXPECT_EQ(reg.find("no.such.metric"), nullptr);

  // No name registered twice.
  std::map<std::string, int> seen;
  for (const Metric& m : reg.metrics()) {
    EXPECT_EQ(++seen[m.name], 1) << m.name;
  }
}

TEST(Metrics, CsvRendersCountersAsIntegers) {
  MetricRegistry reg;
  reg.add("a.count", 123.0);
  reg.add("a.rate", 0.5);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("metric,value\n"), std::string::npos);
  EXPECT_NE(csv.find("a.count,123\n"), std::string::npos);
  EXPECT_NE(csv.find("a.rate,0.5"), std::string::npos);
}

// --- Interval sampler. ---------------------------------------------------

TEST(Sampler, WindowDeltasSumToEndOfRunTotalsForEveryCounter) {
  MachineConfig cfg;
  cfg.sample.period = 64;
  cfg.sample.counter_tracks = false;
  auto cpu = make_processor(phased_program(), cfg,
                            {.kind = PolicyKind::kSteered});
  cpu->run(100'000);
  ASSERT_TRUE(cpu->halted());

  const IntervalSampler* sampler = cpu->sampler();
  ASSERT_NE(sampler, nullptr);
  const auto& names = sampler->counter_names();
  ASSERT_FALSE(names.empty());
  ASSERT_FALSE(sampler->windows().empty());

  // Telescoping: per-window deltas sum to final-minus-initial, and initial
  // is zero, so the sum must equal the end-of-run registry value — for
  // EVERY counter metric, including the flushed final partial window.
  std::vector<double> sums(names.size(), 0.0);
  std::uint64_t cycles_covered = 0;
  std::uint64_t last_cycle = 0;
  for (const SampleWindow& w : sampler->windows()) {
    ASSERT_EQ(w.deltas.size(), names.size());
    EXPECT_GT(w.cycle, last_cycle);  // strictly increasing sample points
    last_cycle = w.cycle;
    cycles_covered += w.window_cycles;
    for (std::size_t i = 0; i < names.size(); ++i) {
      sums[i] += w.deltas[i];
    }
  }
  EXPECT_EQ(cycles_covered, cpu->stats().cycles);

  const MetricRegistry live = cpu->live_metrics();
  std::size_t counters_in_registry = 0;
  for (const Metric& m : live.metrics()) {
    if (m.derived) {
      continue;
    }
    ++counters_in_registry;
    const auto it = std::find(names.begin(), names.end(), m.name);
    ASSERT_NE(it, names.end()) << m.name << " missing from sampler schema";
    const auto idx = static_cast<std::size_t>(it - names.begin());
    EXPECT_DOUBLE_EQ(sums[idx], m.value) << m.name;
  }
  // The schema is exactly the non-derived registry, nothing more.
  EXPECT_EQ(counters_in_registry, names.size());
}

TEST(Sampler, EnabledRunIsBitIdentical) {
  const FileGuard file("test_sampler_identical.csv");
  MachineConfig plain_cfg;
  MachineConfig sampled_cfg;
  sampled_cfg.sample.period = 128;
  sampled_cfg.sample.csv_path = file.path;
  const Program program = phased_program();
  const SimResult plain =
      simulate(program, plain_cfg, {.kind = PolicyKind::kSteered}, 100'000);
  const SimResult sampled =
      simulate(program, sampled_cfg, {.kind = PolicyKind::kSteered}, 100'000);

  EXPECT_EQ(plain.stats.cycles, sampled.stats.cycles);
  EXPECT_EQ(plain.stats.retired, sampled.stats.retired);
  EXPECT_EQ(plain.stats.dispatched, sampled.stats.dispatched);
  EXPECT_EQ(plain.stats.issued, sampled.stats.issued);
  EXPECT_EQ(plain.stats.squashed, sampled.stats.squashed);
  EXPECT_EQ(plain.stats.mispredicts, sampled.stats.mispredicts);
  EXPECT_EQ(plain.stats.resource_starved, sampled.stats.resource_starved);
  EXPECT_EQ(plain.steering.steer_events, sampled.steering.steer_events);
  EXPECT_EQ(plain.steering.selections, sampled.steering.selections);
  EXPECT_EQ(plain.loader.slots_rewritten, sampled.loader.slots_rewritten);
}

TEST(Sampler, StreamsCsvWithOneRowPerSample) {
  const FileGuard file("test_sampler_stream.csv");
  MachineConfig cfg;
  cfg.sample.period = 100;
  cfg.sample.csv_path = file.path;
  auto cpu = make_processor(phased_program(), cfg,
                            {.kind = PolicyKind::kSteered});
  cpu->run(100'000);
  const IntervalSampler* sampler = cpu->sampler();
  ASSERT_NE(sampler, nullptr);
  EXPECT_TRUE(sampler->windows().empty());  // streamed, not retained

  std::ifstream in(file.path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header, sampler->csv_header());
  EXPECT_EQ(header.substr(0, 26), "cycle,window_cycles,window");
  std::uint64_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, sampler->samples_taken());
  // Final partial window flushed: periods covered + 1 unless the halt
  // cycle landed exactly on a period boundary.
  const std::uint64_t cycles = cpu->stats().cycles;
  const std::uint64_t expected =
      cycles / cfg.sample.period + (cycles % cfg.sample.period != 0 ? 1 : 0);
  EXPECT_EQ(rows, expected);
}

TEST(Sampler, CounterTrackEventsParseAndAreMonotone) {
  const FileGuard file("test_sampler_counters.json");
  MachineConfig cfg;
  cfg.trace.enabled = true;
  cfg.trace.path = file.path;
  cfg.sample.period = 64;
  const SimResult result = simulate(phased_program(), cfg,
                                    {.kind = PolicyKind::kSteered}, 100'000);
  ASSERT_EQ(result.outcome, RunOutcome::kHalted);

  JsonValue doc;
  ASSERT_TRUE(JsonParser(slurp(file.path)).parse(doc));
  const JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<std::string, double> last_ts;
  std::map<std::string, std::uint64_t> count;
  for (const JsonValue& ev : events->array) {
    if (ev.get("ph") == nullptr || ev.get("ph")->string != "C") {
      continue;
    }
    const JsonValue* name = ev.get("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->string.substr(0, 4), "win.");
    EXPECT_EQ(ev.get("cat")->string, "counter");
    const JsonValue* args = ev.get("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->get("value"), nullptr);
    const double ts = ev.get("ts")->number;
    const auto it = last_ts.find(name->string);
    if (it != last_ts.end()) {
      EXPECT_LT(it->second, ts) << name->string;
    }
    last_ts[name->string] = ts;
    ++count[name->string];
  }
  EXPECT_GT(count["win.ipc"], 1u);
  EXPECT_GT(count["win.sim.retired"], 1u);
  // Every tracked series sampled the same number of times.
  for (const auto& [name, n] : count) {
    EXPECT_EQ(n, count["win.ipc"]) << name;
  }
}

TEST(Sampler, DisabledConfigMeansNoSamplerObject) {
  MachineConfig cfg;
  ASSERT_FALSE(cfg.sample.enabled());
  auto cpu = make_processor(phased_program(), cfg,
                            {.kind = PolicyKind::kSteered});
  cpu->run(10'000);
  EXPECT_EQ(cpu->sampler(), nullptr);
}

// --- Host profile. -------------------------------------------------------

TEST(HostProfile, SimulateFillsPhaseTimings) {
  MachineConfig cfg;
  const SimResult result = simulate(phased_program(), cfg,
                                    {.kind = PolicyKind::kSteered}, 100'000);
  EXPECT_GE(result.host.build_seconds, 0.0);
  EXPECT_GT(result.host.run_seconds, 0.0);
  EXPECT_GE(result.host.collect_seconds, 0.0);
  EXPECT_GT(result.host.cycles_per_sec(result.stats.cycles), 0.0);
  EXPECT_GT(result.host.kips(result.stats.retired), 0.0);
  HostProfile idle;
  EXPECT_EQ(idle.cycles_per_sec(1000), 0.0);
  EXPECT_EQ(idle.kips(1000), 0.0);
}

}  // namespace
}  // namespace steersim
