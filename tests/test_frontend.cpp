// Unit tests for the front end: branch predictors, the trace cache
// (build-at-retire, fetch-across-taken-branches), and the fetch unit
// (group formation, RAS, redirects).
#include <gtest/gtest.h>

#include "frontend/fetch_unit.hpp"
#include "isa/assembler.hpp"

namespace steersim {
namespace {

TEST(Predictors, StaticPolicies) {
  NotTakenPredictor nt;
  EXPECT_FALSE(nt.predict(10, 5));
  EXPECT_FALSE(nt.predict(10, 20));

  BtfnPredictor btfn;
  EXPECT_TRUE(btfn.predict(10, 5));    // backward: taken
  EXPECT_FALSE(btfn.predict(10, 20));  // forward: not taken
}

TEST(Predictors, TwoBitLearnsDirection) {
  TwoBitPredictor p(64);
  EXPECT_FALSE(p.predict(7, 0));  // weakly not-taken initial state
  p.update(7, true);
  p.update(7, true);
  EXPECT_TRUE(p.predict(7, 0));
  p.update(7, false);
  EXPECT_TRUE(p.predict(7, 0)) << "hysteresis";
  p.update(7, false);
  EXPECT_FALSE(p.predict(7, 0));
}

TEST(Predictors, TwoBitEntriesIndependentModuloTable) {
  TwoBitPredictor p(64);
  p.update(1, true);
  p.update(1, true);
  EXPECT_TRUE(p.predict(1, 0));
  EXPECT_FALSE(p.predict(2, 0));
  EXPECT_TRUE(p.predict(65, 0)) << "aliases to the same entry as pc 1";
}

TEST(TraceCache, BuildsFromRetireStreamAndHits) {
  TraceCache tc(16, 4);
  const Instruction add = make_rr(Opcode::kAdd, 1, 2, 3);
  // Retire pcs 10,11,12,13 -> installs a trace starting at 10.
  for (std::uint32_t pc = 10; pc < 14; ++pc) {
    tc.observe_retired(pc, add, pc + 1);
  }
  const TraceLine* line = tc.lookup(10);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->slots.size(), 4u);
  EXPECT_EQ(line->slots[0].pc, 10u);
  EXPECT_EQ(line->slots[3].next_pc, 14u);
  EXPECT_EQ(tc.lookup(11), nullptr) << "traces are keyed by start pc";
  EXPECT_EQ(tc.stats().installs, 1u);
}

TEST(TraceCache, TraceEmbedsTakenBranches) {
  TraceCache tc(16, 4);
  const Instruction add = make_rr(Opcode::kAdd, 1, 2, 3);
  const Instruction bne = make_branch(Opcode::kBne, 1, 0, -2);
  tc.observe_retired(5, add, 6);
  tc.observe_retired(6, bne, 4);  // taken backward branch
  tc.observe_retired(4, add, 5);
  tc.observe_retired(5, add, 6);
  const TraceLine* line = tc.lookup(5);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->slots[1].next_pc, 4u) << "taken branch inside the trace";
}

TEST(TraceCache, DiscontinuityRestartsFillAndWaitsForTarget) {
  TraceCache tc(16, 4);
  const Instruction add = make_rr(Opcode::kAdd, 1, 2, 3);
  const Instruction jmp = make_jump(Opcode::kJ, 0, 20);
  tc.observe_retired(1, add, 2);
  tc.observe_retired(2, add, 3);
  // Retire stream jumps without the previous slot predicting it (squash
  // artifact): the fill buffer restarts AND the builder idles until the
  // next taken-transfer target (where fetch would actually look up).
  tc.observe_retired(50, add, 51);
  tc.observe_retired(51, add, 52);
  tc.observe_retired(52, add, 53);
  tc.observe_retired(53, add, 54);
  EXPECT_EQ(tc.lookup(50), nullptr) << "mid-stream pc is not a trace start";
  EXPECT_EQ(tc.lookup(1), nullptr) << "pre-squash prefix discarded";
  // A committed taken jump makes its target a legal trace start.
  tc.observe_retired(54, jmp, 74);
  for (std::uint32_t pc = 74; pc < 78; ++pc) {
    tc.observe_retired(pc, add, pc + 1);
  }
  const TraceLine* line = tc.lookup(74);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->slots.front().pc, 74u);
}

TEST(TraceCache, LoopTracesStartAtLoopHead) {
  // Steady loop: head 10..13 with a taken back-branch. All installed
  // traces must start at the loop head (pc 10), never mid-body, so the
  // fetch unit's post-branch lookups hit.
  TraceCache tc(16, 8);
  const Instruction add = make_rr(Opcode::kAdd, 1, 2, 3);
  const Instruction bne = make_branch(Opcode::kBne, 1, 0, -3);
  for (int iter = 0; iter < 8; ++iter) {
    tc.observe_retired(10, add, 11);
    tc.observe_retired(11, add, 12);
    tc.observe_retired(12, add, 13);
    tc.observe_retired(13, bne, 10);
  }
  EXPECT_NE(tc.lookup(10), nullptr);
  EXPECT_EQ(tc.lookup(11), nullptr);
  EXPECT_EQ(tc.lookup(12), nullptr);
  // The cached trace crosses the taken branch into the next iteration.
  const TraceLine* line = tc.lookup(10);
  ASSERT_GE(line->slots.size(), 5u);
  EXPECT_EQ(line->slots[3].next_pc, 10u);
  EXPECT_EQ(line->slots[4].pc, 10u);
}

TEST(TraceCache, PreDecodedRequirementsAnnotation) {
  TraceCache tc(16, 8);
  const Instruction add = make_rr(Opcode::kAdd, 1, 2, 3);
  const Instruction mul = make_rr(Opcode::kMul, 4, 5, 6);
  const Instruction flw = make_ri(Opcode::kFlw, 1, 2, 0);
  tc.observe_retired(0, add, 1);
  tc.observe_retired(1, mul, 2);
  tc.observe_retired(2, flw, 3);
  tc.observe_retired(3, add, 4);
  tc.flush_fill_buffer();
  const TraceLine* line = tc.peek(0);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->requirements[fu_index(FuType::kIntAlu)], 2);
  EXPECT_EQ(line->requirements[fu_index(FuType::kIntMdu)], 1);
  EXPECT_EQ(line->requirements[fu_index(FuType::kLsu)], 1);
  EXPECT_EQ(line->requirements[fu_index(FuType::kFpAlu)], 0);
}

TEST(TraceCache, PeekHasNoStatisticsSideEffects) {
  TraceCache tc(4, 2);
  const Instruction add = make_rr(Opcode::kAdd, 1, 2, 3);
  tc.observe_retired(0, add, 1);
  tc.observe_retired(1, add, 2);
  (void)tc.peek(0);
  (void)tc.peek(99);
  EXPECT_EQ(tc.stats().lookups, 0u);
  EXPECT_EQ(tc.stats().hits, 0u);
}

TEST(TraceCache, HitRateStatistics) {
  TraceCache tc(4, 2);
  const Instruction add = make_rr(Opcode::kAdd, 1, 2, 3);
  tc.observe_retired(0, add, 1);
  tc.observe_retired(1, add, 2);
  (void)tc.lookup(0);
  (void)tc.lookup(2);
  EXPECT_EQ(tc.stats().lookups, 2u);
  EXPECT_EQ(tc.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(tc.stats().hit_rate(), 0.5);
}

class FetchFixture : public ::testing::Test {
 protected:
  void load(const std::string& src) {
    program_ = assemble(src);
    imem_ = InstructionMemory(program_);
    fetch_ = std::make_unique<FetchUnit>(imem_, nullptr, predictor_, 4);
  }
  Program program_;
  InstructionMemory imem_;
  NotTakenPredictor predictor_;
  std::unique_ptr<FetchUnit> fetch_;
};

TEST_F(FetchFixture, SequentialGroupOfWidth) {
  load("  nop\n  nop\n  nop\n  nop\n  nop\n  halt\n");
  FetchGroup group;
  fetch_->fetch_group(group);
  ASSERT_EQ(group.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(group[i].pc, i);
    EXPECT_EQ(group[i].predicted_next, i + 1);
  }
  EXPECT_EQ(fetch_->pc(), 4u);
}

TEST_F(FetchFixture, GroupEndsAtPredictedTakenJump) {
  load("  nop\n  j target\n  nop\n  nop\ntarget:\n  halt\n");
  FetchGroup group;
  fetch_->fetch_group(group);
  ASSERT_EQ(group.size(), 2u);  // nop + j; jump ends the group
  EXPECT_EQ(group[1].predicted_next, 4u);
  EXPECT_EQ(fetch_->pc(), 4u);
}

TEST_F(FetchFixture, NotTakenBranchDoesNotEndGroup) {
  load("  nop\n  beq r1, r2, 3\n  nop\n  nop\n  halt\n");
  FetchGroup group;
  fetch_->fetch_group(group);
  EXPECT_EQ(group.size(), 4u);  // predictor says not taken: fall through
}

TEST_F(FetchFixture, HaltEndsGroupAndStreamStops) {
  load("  nop\n  halt\n");
  FetchGroup group;
  fetch_->fetch_group(group);
  EXPECT_EQ(group.size(), 2u);
  group.clear();
  fetch_->fetch_group(group);  // past the end of the program
  EXPECT_TRUE(group.empty());
}

TEST_F(FetchFixture, RasPredictsReturn) {
  load(R"(
  call fn
  halt
fn:
  ret
)");
  FetchGroup group;
  fetch_->fetch_group(group);  // call (jal): group ends, RAS pushes 1
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].predicted_next, 2u);
  group.clear();
  fetch_->fetch_group(group);  // fn: ret -> RAS pops 1
  ASSERT_GE(group.size(), 1u);
  EXPECT_EQ(group[0].predicted_next, 1u) << "return address from RAS";
}

TEST_F(FetchFixture, RedirectRestartsStream) {
  load("  nop\n  nop\n  nop\n  halt\n");
  FetchGroup group;
  fetch_->fetch_group(group);
  fetch_->redirect(1);
  group.clear();
  fetch_->fetch_group(group);
  EXPECT_EQ(group[0].pc, 1u);
  EXPECT_EQ(fetch_->stats().redirects, 1u);
}

TEST(FetchWithTraceCache, StreamsAcrossTakenBranchInOneCycle) {
  // Loop body with a taken back-branch: conventional fetch breaks the
  // group at the branch; a trace hit streams straight through it.
  const Program p = assemble(R"(
loop:
  addi r1, r1, 1
  addi r2, r2, 1
  bne r1, r3, loop
  halt
)");
  InstructionMemory imem(p);
  BtfnPredictor predictor;
  TraceCache tc(16, 8);
  // Pretend two committed loop iterations built a trace at pc 0.
  const auto& code = p.code;
  tc.observe_retired(0, code[0], 1);
  tc.observe_retired(1, code[1], 2);
  tc.observe_retired(2, code[2], 0);  // taken
  tc.observe_retired(0, code[0], 1);
  tc.observe_retired(1, code[1], 2);
  tc.observe_retired(2, code[2], 0);
  tc.observe_retired(0, code[0], 1);
  tc.observe_retired(1, code[1], 2);

  FetchUnit fetch(imem, &tc, predictor, 4);
  FetchGroup group;
  fetch.fetch_group(group);
  ASSERT_EQ(group.size(), 4u);
  EXPECT_TRUE(group[0].from_trace);
  EXPECT_EQ(group[2].pc, 2u);
  EXPECT_EQ(group[2].predicted_next, 0u);
  EXPECT_EQ(group[3].pc, 0u) << "fetched across the taken branch";
}

}  // namespace
}  // namespace steersim
