// Unit tests for the select-free wake-up array (Figs. 4, 5, 6), including
// a faithful reconstruction of the paper's worked 7-instruction example.
#include <gtest/gtest.h>

#include "sched/select_logic.hpp"
#include "sched/wakeup_array.hpp"

namespace steersim {
namespace {

ResourceAvail all_available() {
  ResourceAvail a;
  a.fill(true);
  return a;
}

ResourceAvail none_available() {
  ResourceAvail a;
  a.fill(false);
  return a;
}

EntryMask deps_of(std::initializer_list<unsigned> rows) {
  EntryMask m;
  for (const unsigned r : rows) {
    m.set(r);
  }
  return m;
}

/// The paper's Figure 4/5 example: entries 1..7 (rows 0..6 here).
///   Entry 1 Shift  (IntAlu)  no deps
///   Entry 2 Sub    (IntAlu)  no deps
///   Entry 3 Add    (IntAlu)  needs results of entries 1 and 2
///   Entry 4 Mul    (IntMdu)  needs result of entry 2
///   Entry 5 Load   (Lsu)     no deps
///   Entry 6 FPMul  (FpMdu)   needs result of entry 5
///   Entry 7 FPAdd  (FpAlu)   needs results of entries 5 and 6
struct PaperExample {
  WakeupArray array{7};
  PaperExample() {
    EXPECT_EQ(array.insert(FuType::kIntAlu, deps_of({}), 1), 0u);
    EXPECT_EQ(array.insert(FuType::kIntAlu, deps_of({}), 2), 1u);
    EXPECT_EQ(array.insert(FuType::kIntAlu, deps_of({0, 1}), 3), 2u);
    EXPECT_EQ(array.insert(FuType::kIntMdu, deps_of({1}), 4), 3u);
    EXPECT_EQ(array.insert(FuType::kLsu, deps_of({}), 5), 4u);
    EXPECT_EQ(array.insert(FuType::kFpMdu, deps_of({4}), 6), 5u);
    EXPECT_EQ(array.insert(FuType::kFpAlu, deps_of({4, 5}), 7), 6u);
  }
};

TEST(WakeupPaperExample, Fig5BitMatrix) {
  PaperExample ex;
  // Execution-unit-required columns (one-hot rows of Fig. 5).
  EXPECT_EQ(ex.array.entry(0).fu, FuType::kIntAlu);
  EXPECT_EQ(ex.array.entry(3).fu, FuType::kIntMdu);
  EXPECT_EQ(ex.array.entry(4).fu, FuType::kLsu);
  EXPECT_EQ(ex.array.entry(5).fu, FuType::kFpMdu);
  EXPECT_EQ(ex.array.entry(6).fu, FuType::kFpAlu);
  // Result-required columns: only the edges of the dependency graph.
  EXPECT_EQ(ex.array.entry(2).deps, deps_of({0, 1}));
  EXPECT_EQ(ex.array.entry(3).deps, deps_of({1}));
  EXPECT_EQ(ex.array.entry(6).deps, deps_of({4, 5}));
  EXPECT_TRUE(ex.array.entry(0).deps.none());
  EXPECT_TRUE(ex.array.entry(4).deps.none());
}

TEST(WakeupPaperExample, InitialRequestsAreTheRoots) {
  PaperExample ex;
  // With every resource available, exactly the dependency-graph roots
  // (Shift, Sub, Load) request execution.
  const EntryMask requests = ex.array.request_execution(all_available());
  EXPECT_EQ(requests, deps_of({0, 1, 4}));
}

TEST(WakeupPaperExample, DependentWakesWhenProducersFinish) {
  PaperExample ex;
  // Grant Shift and Sub (1-cycle ALU ops) and Load (3-cycle).
  ex.array.grant(0, 1);
  ex.array.grant(1, 1);
  ex.array.grant(4, 3);
  ex.array.tick();  // end of cycle: 1-cycle results become available
  EXPECT_TRUE(ex.array.entry(0).result_available);
  EXPECT_TRUE(ex.array.entry(1).result_available);
  EXPECT_FALSE(ex.array.entry(4).result_available);

  // Next cycle: Add (deps 0,1) and Mul (dep 1) request; FP ops still wait
  // on the load.
  const EntryMask requests = ex.array.request_execution(all_available());
  EXPECT_EQ(requests, deps_of({2, 3}));

  ex.array.tick();
  ex.array.tick();  // load's 3 cycles elapse
  EXPECT_TRUE(ex.array.entry(4).result_available);
  const EntryMask later = ex.array.request_execution(all_available());
  EXPECT_TRUE(later.test(5));   // FPMul wakes
  EXPECT_FALSE(later.test(6));  // FPAdd still needs FPMul's result
}

TEST(WakeupPaperExample, ResourceLineGatesRequests) {
  PaperExample ex;
  ResourceAvail avail = all_available();
  avail[fu_index(FuType::kIntAlu)] = false;
  const EntryMask requests = ex.array.request_execution(avail);
  // Shift and Sub (IntAlu) are blocked; Load (Lsu) still requests.
  EXPECT_EQ(requests, deps_of({4}));
}

TEST(WakeupPaperExample, FullScheduleDrains) {
  PaperExample ex;
  // One unit of each type, oldest-first select, every op latency 1 for
  // simplicity: the example must drain in dependency order.
  std::vector<std::uint64_t> grant_order;
  for (int cycle = 0; cycle < 20 && ex.array.stats().grants < 7; ++cycle) {
    const EntryMask requests = ex.array.request_execution(all_available());
    const auto age_order = ex.array.age_order();
    const GrantList grants = select_oldest_first(
        ex.array, requests, age_order, {1, 1, 1, 1, 1});
    for (const unsigned row : grants) {
      grant_order.push_back(ex.array.entry(row).tag);
      ex.array.grant(row, 1);
    }
    ex.array.tick();
  }
  ASSERT_EQ(grant_order.size(), 7u);
  // Topological constraints from Fig. 4.
  auto pos = [&grant_order](std::uint64_t tag) {
    return std::find(grant_order.begin(), grant_order.end(), tag) -
           grant_order.begin();
  };
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
  EXPECT_LT(pos(2), pos(4));
  EXPECT_LT(pos(5), pos(6));
  EXPECT_LT(pos(6), pos(7));
  // Only one IntAlu: Shift and Sub can't both go in cycle 0; contention
  // resolved oldest-first.
  EXPECT_LT(pos(1), pos(2));
}

TEST(Wakeup, ScheduledBitStopsRerequest) {
  WakeupArray array(4);
  const auto row = array.insert(FuType::kIntAlu, {}, 10);
  array.grant(*row, 5);
  EXPECT_TRUE(array.request_execution(all_available()).none());
}

TEST(Wakeup, RescheduleReopensEntry) {
  WakeupArray array(4);
  const auto row = array.insert(FuType::kIntAlu, {}, 10);
  array.grant(*row, 5);
  array.reschedule(*row);
  EXPECT_TRUE(array.request_execution(all_available()).test(*row));
  EXPECT_EQ(array.stats().reschedules, 1u);
}

TEST(Wakeup, TimerAssertsAfterLatencyTicks) {
  WakeupArray array(4);
  const auto row = array.insert(FuType::kIntMdu, {}, 1);
  array.grant(*row, 4);
  for (int t = 0; t < 3; ++t) {
    array.tick();
    EXPECT_FALSE(array.entry(*row).result_available) << t;
  }
  array.tick();
  EXPECT_TRUE(array.entry(*row).result_available);
}

TEST(Wakeup, RetireClearsColumnAcrossArray) {
  WakeupArray array(4);
  const auto producer = array.insert(FuType::kLsu, {}, 1);
  const auto consumer =
      array.insert(FuType::kIntAlu, deps_of({*producer}), 2);
  // Consumer blocked on producer's result.
  EXPECT_FALSE(array.request_execution(all_available()).test(*consumer));
  // Producer completes and retires: the column clears and the consumer no
  // longer waits (it reads the register file instead).
  array.grant(*producer, 1);
  array.retire(*producer);
  EXPECT_TRUE(array.request_execution(all_available()).test(*consumer));
  EXPECT_TRUE(array.entry(*consumer).deps.none());
}

TEST(Wakeup, RowReuseAfterRetireDoesNotResurrectDeps) {
  WakeupArray array(2);
  const auto a = array.insert(FuType::kIntAlu, {}, 1);
  const auto b = array.insert(FuType::kIntAlu, deps_of({*a}), 2);
  array.grant(*a, 1);
  array.retire(*a);
  // New instruction lands in the retired row; the old consumer must not
  // become dependent on it.
  const auto c = array.insert(FuType::kFpAlu, {}, 3);
  EXPECT_EQ(*c, *a);
  EXPECT_TRUE(array.entry(*b).deps.none());
}

TEST(Wakeup, SquashClearsLikeRetireButCountsSeparately) {
  WakeupArray array(4);
  const auto a = array.insert(FuType::kIntAlu, {}, 1);
  array.squash(*a);
  EXPECT_EQ(array.stats().squashes, 1u);
  EXPECT_EQ(array.stats().retires, 0u);
  EXPECT_EQ(array.free_entries(), 4u);
}

TEST(Wakeup, FullArrayRejectsInsert) {
  WakeupArray array(2);
  EXPECT_TRUE(array.insert(FuType::kIntAlu, {}, 1).has_value());
  EXPECT_TRUE(array.insert(FuType::kIntAlu, {}, 2).has_value());
  EXPECT_FALSE(array.insert(FuType::kIntAlu, {}, 3).has_value());
  EXPECT_TRUE(array.full());
}

TEST(Wakeup, NoResourcesNoRequests) {
  PaperExample ex;
  EXPECT_TRUE(ex.array.request_execution(none_available()).none());
}

TEST(WakeupDeathTest, DepOnInvalidRowIsAContractViolation) {
  // A dependence column pointing at a row nothing occupies can never be
  // satisfied — the consumer would silently block forever. insert()
  // promotes that latent hang to a loud contract failure.
  WakeupArray array(4);
  array.insert(FuType::kIntAlu, {}, 1);  // row 0 valid; rows 1..3 are not
  EXPECT_DEATH(array.insert(FuType::kIntAlu, deps_of({2}), 2), "Expects");
}

TEST(WakeupDeathTest, DepOnRetiredRowIsAContractViolation) {
  WakeupArray array(4);
  const auto producer = array.insert(FuType::kIntAlu, {}, 1);
  array.grant(*producer, 1);
  array.retire(*producer);
  // The producer's row is free again: depending on it now is the same
  // forever-blocked shape as depending on a never-used row.
  EXPECT_DEATH(array.insert(FuType::kIntAlu, deps_of({*producer}), 2),
               "Expects");
}

TEST(Wakeup, RequestDecomposesIntoDepAndResourceReady) {
  PaperExample ex;
  ResourceAvail avail = all_available();
  avail[fu_index(FuType::kIntAlu)] = false;
  // request_execution is exactly the AND of its two column planes.
  EXPECT_EQ(ex.array.request_execution(avail),
            ex.array.dep_ready() & ex.array.resource_ready(avail));
  // dep_ready ignores resources: all three roots are dependence-ready even
  // with their unit lines low.
  EXPECT_EQ(ex.array.dep_ready(), deps_of({0, 1, 4}));
  EXPECT_EQ(ex.array.resource_ready(none_available()), EntryMask{});
}

TEST(Wakeup, ReadyVersionTracksReadySetNotTimers) {
  WakeupArray array(4);
  const std::uint64_t v0 = array.ready_version();
  const auto row = array.insert(FuType::kIntMdu, {}, 1);
  const std::uint64_t v1 = array.ready_version();
  EXPECT_NE(v0, v1);
  array.grant(*row, 4);
  const std::uint64_t v2 = array.ready_version();
  EXPECT_NE(v1, v2);
  // Ticks move timers, not the ready set: the version must hold still so
  // the steering path can keep its cached ready-ops snapshot.
  array.tick();
  array.tick();
  EXPECT_EQ(array.ready_version(), v2);
  array.retire(*row);
  EXPECT_NE(array.ready_version(), v2);
}

TEST(Wakeup, AdvanceMatchesRepeatedTicks) {
  WakeupArray a(4);
  WakeupArray b(4);
  for (WakeupArray* arr : {&a, &b}) {
    arr->insert(FuType::kIntMdu, {}, 1);
    arr->insert(FuType::kLsu, {}, 2);
    arr->grant(0, 4);
    arr->grant(1, 6);
  }
  EXPECT_EQ(a.min_timer(), 4u);  // timer arms with the full latency
  a.advance(4);
  for (int t = 0; t < 4; ++t) {
    b.tick();
  }
  EXPECT_EQ(a.entry(0).result_available, b.entry(0).result_available);
  EXPECT_TRUE(a.entry(0).result_available);
  EXPECT_FALSE(a.entry(1).result_available);
  EXPECT_EQ(a.min_timer(), b.min_timer());
  EXPECT_EQ(a.min_timer(), 2u);  // the load's remaining countdown
}

TEST(SelectLogic, BudgetPerTypeRespected) {
  WakeupArray array(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    array.insert(FuType::kIntAlu, {}, i);
  }
  const auto order = array.age_order();
  const auto grants = select_oldest_first(
      array, array.request_execution(all_available()), order,
      {2, 0, 0, 0, 0});
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(array.entry(grants[0]).tag, 0u);
  EXPECT_EQ(array.entry(grants[1]).tag, 1u);
}

TEST(SelectLogic, IssueWidthCapsTotalGrants) {
  WakeupArray array(6);
  for (std::uint64_t i = 0; i < 6; ++i) {
    array.insert(i % 2 == 0 ? FuType::kIntAlu : FuType::kLsu, {}, i);
  }
  ResourceAvail avail;
  avail.fill(true);
  const auto unlimited = select_oldest_first(
      array, array.request_execution(avail), array.age_order(),
      {3, 0, 3, 0, 0});
  EXPECT_EQ(unlimited.size(), 6u);
  const auto capped = select_oldest_first(
      array, array.request_execution(avail), array.age_order(),
      {3, 0, 3, 0, 0}, /*max_grants=*/2);
  ASSERT_EQ(capped.size(), 2u);
  EXPECT_EQ(array.entry(capped[0]).tag, 0u);
  EXPECT_EQ(array.entry(capped[1]).tag, 1u);
}

TEST(SelectLogic, MixedTypesGrantIndependently) {
  WakeupArray array(4);
  array.insert(FuType::kIntAlu, {}, 0);
  array.insert(FuType::kFpMdu, {}, 1);
  array.insert(FuType::kIntAlu, {}, 2);
  const auto grants = select_oldest_first(
      array, array.request_execution(all_available()), array.age_order(),
      {1, 0, 0, 0, 1});
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(array.entry(grants[0]).tag, 0u);
  EXPECT_EQ(array.entry(grants[1]).tag, 1u);
}

}  // namespace
}  // namespace steersim
