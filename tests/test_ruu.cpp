// Unit tests for the register update unit: allocation order, producer
// lookup (the dependency buffer), id-based find, in-order retirement, and
// squash semantics (including id rollback).
#include <gtest/gtest.h>

#include "core/ruu.hpp"

namespace steersim {
namespace {

RuuEntry& add_writer(RegisterUpdateUnit& ruu, Opcode op, std::uint8_t rd) {
  RuuEntry& e = ruu.allocate();
  e.inst = Instruction{op, rd, 1, 2, 0};
  return e;
}

TEST(Ruu, AllocateAssignsSequentialIds) {
  RegisterUpdateUnit ruu(4);
  EXPECT_EQ(ruu.allocate().id, 0u);
  EXPECT_EQ(ruu.allocate().id, 1u);
  EXPECT_EQ(ruu.size(), 2u);
  EXPECT_FALSE(ruu.full());
}

TEST(Ruu, FindByIdAndRetire) {
  RegisterUpdateUnit ruu(4);
  const auto id0 = ruu.allocate().id;
  const auto id1 = ruu.allocate().id;
  EXPECT_NE(ruu.find(id0), nullptr);
  EXPECT_EQ(ruu.find(999), nullptr);
  const RuuEntry head = ruu.retire_head();
  EXPECT_EQ(head.id, id0);
  EXPECT_EQ(ruu.find(id0), nullptr);  // retired
  EXPECT_NE(ruu.find(id1), nullptr);
  EXPECT_EQ(ruu.at(0).id, id1);
}

TEST(Ruu, RingWrapsAcrossManyRetirements) {
  RegisterUpdateUnit ruu(3);
  for (int round = 0; round < 10; ++round) {
    const auto id = ruu.allocate().id;
    EXPECT_EQ(ruu.find(id)->id, id);
    ruu.retire_head();
  }
  EXPECT_TRUE(ruu.empty());
}

TEST(Ruu, LatestProducerFindsYoungestWriter) {
  RegisterUpdateUnit ruu(8);
  const auto first = add_writer(ruu, Opcode::kAdd, 5).id;
  add_writer(ruu, Opcode::kAdd, 6);
  const auto second = add_writer(ruu, Opcode::kMul, 5).id;
  EXPECT_NE(first, second);
  EXPECT_EQ(ruu.latest_producer(RegClass::kInt, 5), second);
  EXPECT_EQ(ruu.latest_producer(RegClass::kInt, 7), kNoProducer);
}

TEST(Ruu, R0HasNoProducer) {
  RegisterUpdateUnit ruu(8);
  add_writer(ruu, Opcode::kAdd, 0);
  EXPECT_EQ(ruu.latest_producer(RegClass::kInt, 0), kNoProducer);
}

TEST(Ruu, IntAndFpNamespacesSeparate) {
  RegisterUpdateUnit ruu(8);
  const auto int_writer = add_writer(ruu, Opcode::kAdd, 3).id;
  RuuEntry& fp = ruu.allocate();
  fp.inst = make_rr(Opcode::kFadd, 3, 1, 2);
  EXPECT_EQ(ruu.latest_producer(RegClass::kInt, 3), int_writer);
  EXPECT_EQ(ruu.latest_producer(RegClass::kFp, 3), fp.id);
}

TEST(Ruu, FpCompareProducesIntRegister) {
  RegisterUpdateUnit ruu(8);
  RuuEntry& cmp = ruu.allocate();
  cmp.inst = make_rr(Opcode::kFlt, 4, 1, 2);  // writes int r4
  EXPECT_EQ(ruu.latest_producer(RegClass::kInt, 4), cmp.id);
  EXPECT_EQ(ruu.latest_producer(RegClass::kFp, 4), kNoProducer);
}

TEST(Ruu, SquashYoungerRollsBackIds) {
  RegisterUpdateUnit ruu(8);
  const auto keep = add_writer(ruu, Opcode::kAdd, 1).id;
  add_writer(ruu, Opcode::kAdd, 2);
  add_writer(ruu, Opcode::kAdd, 3);
  std::vector<std::uint64_t> squashed;
  const unsigned n = ruu.squash_younger_than(
      keep, [&squashed](const RuuEntry& e) { squashed.push_back(e.id); });
  EXPECT_EQ(n, 2u);
  ASSERT_EQ(squashed.size(), 2u);
  EXPECT_GT(squashed[0], squashed[1]) << "youngest squashed first";
  EXPECT_EQ(ruu.size(), 1u);
  // Ids restart contiguously after the survivor.
  const auto next = ruu.allocate().id;
  EXPECT_EQ(next, keep + 1);
  EXPECT_EQ(ruu.find(next)->id, next);
}

TEST(Ruu, SquashEverythingYoungerThanNothingClearsAll) {
  RegisterUpdateUnit ruu(4);
  add_writer(ruu, Opcode::kAdd, 1);
  add_writer(ruu, Opcode::kAdd, 2);
  unsigned count = 0;
  // id threshold below every entry squashes the whole window... except the
  // oldest entry id 0 (id <= threshold keeps it). Use the head's id.
  ruu.squash_younger_than(ruu.at(0).id, [&count](const RuuEntry&) {
    ++count;
  });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(ruu.size(), 1u);
}

TEST(Ruu, WritesRegHelper) {
  RegisterUpdateUnit ruu(8);
  RuuEntry& add = ruu.allocate();
  add.inst = make_rr(Opcode::kAdd, 5, 1, 2);
  EXPECT_TRUE(add.writes_reg());
  RuuEntry& addr0 = ruu.allocate();
  addr0.inst = make_rr(Opcode::kAdd, 0, 1, 2);
  EXPECT_FALSE(addr0.writes_reg());
  RuuEntry& store = ruu.allocate();
  store.inst = make_store(Opcode::kSw, 1, 2, 0);
  EXPECT_FALSE(store.writes_reg());
  RuuEntry& fp0 = ruu.allocate();
  fp0.inst = make_rr(Opcode::kFadd, 0, 1, 2);
  EXPECT_TRUE(fp0.writes_reg()) << "f0 is a real register";
}

TEST(Ruu, FullRejectsViaContract) {
  RegisterUpdateUnit ruu(2);
  ruu.allocate();
  ruu.allocate();
  EXPECT_TRUE(ruu.full());
  EXPECT_DEATH(ruu.allocate(), "Expects");
}

}  // namespace
}  // namespace steersim
