// Unit tests for instruction semantics (core/exec.hpp), especially the
// defined-behaviour corners: division by zero, INT64_MIN overflow, shift
// masking, FP->int saturation, NaN handling, and control-flow targets.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/exec.hpp"

namespace steersim {
namespace {

ExecOutput run_rr(Opcode op, std::int64_t a, std::int64_t b) {
  ExecInput in;
  in.rs1_int = a;
  in.rs2_int = b;
  return execute_op(make_rr(op, 1, 2, 3), in);
}

ExecOutput run_fp(Opcode op, double a, double b) {
  ExecInput in;
  in.rs1_fp = a;
  in.rs2_fp = b;
  return execute_op(make_rr(op, 1, 2, 3), in);
}

TEST(Exec, IntegerAluBasics) {
  EXPECT_EQ(run_rr(Opcode::kAdd, 3, 4).int_value, 7);
  EXPECT_EQ(run_rr(Opcode::kSub, 3, 4).int_value, -1);
  EXPECT_EQ(run_rr(Opcode::kAnd, 0b1100, 0b1010).int_value, 0b1000);
  EXPECT_EQ(run_rr(Opcode::kOr, 0b1100, 0b1010).int_value, 0b1110);
  EXPECT_EQ(run_rr(Opcode::kXor, 0b1100, 0b1010).int_value, 0b0110);
  EXPECT_EQ(run_rr(Opcode::kSlt, -1, 0).int_value, 1);
  EXPECT_EQ(run_rr(Opcode::kSltu, -1, 0).int_value, 0);  // unsigned compare
}

TEST(Exec, AddWrapsOnOverflowWithoutUb) {
  const auto max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(run_rr(Opcode::kAdd, max, 1).int_value,
            std::numeric_limits<std::int64_t>::min());
}

TEST(Exec, ShiftAmountsMaskedTo6Bits) {
  EXPECT_EQ(run_rr(Opcode::kSll, 1, 64).int_value, 1);  // 64 & 63 == 0
  EXPECT_EQ(run_rr(Opcode::kSll, 1, 65).int_value, 2);
  EXPECT_EQ(run_rr(Opcode::kSrl, -1, 63).int_value, 1);
  EXPECT_EQ(run_rr(Opcode::kSra, -8, 2).int_value, -2);
}

TEST(Exec, ImmediateShifts) {
  ExecInput in;
  in.rs1_int = -8;
  EXPECT_EQ(execute_op(make_ri(Opcode::kSrai, 1, 2, 1), in).int_value, -4);
  EXPECT_EQ(execute_op(make_ri(Opcode::kSlli, 1, 2, 3), in).int_value, -64);
}

TEST(Exec, LuiShifts14) {
  ExecInput in;
  EXPECT_EQ(execute_op(make_ri(Opcode::kLui, 1, 0, 3), in).int_value,
            3LL << 14);
  EXPECT_EQ(execute_op(make_ri(Opcode::kLui, 1, 0, -1), in).int_value,
            -16384);
}

TEST(Exec, DivisionEdgeCases) {
  EXPECT_EQ(run_rr(Opcode::kDiv, 7, 2).int_value, 3);
  EXPECT_EQ(run_rr(Opcode::kDiv, -7, 2).int_value, -3);
  EXPECT_EQ(run_rr(Opcode::kDiv, 7, 0).int_value, 0);
  EXPECT_EQ(run_rr(Opcode::kRem, 7, 0).int_value, 7);
  const auto min = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(run_rr(Opcode::kDiv, min, -1).int_value, min);  // no trap
  EXPECT_EQ(run_rr(Opcode::kRem, min, -1).int_value, 0);
}

TEST(Exec, MulhHighBits) {
  EXPECT_EQ(run_rr(Opcode::kMulh, 1LL << 40, 1LL << 40).int_value,
            1LL << 16);
  EXPECT_EQ(run_rr(Opcode::kMulh, -1, 1).int_value, -1);
}

TEST(Exec, BranchesResolveTargets) {
  ExecInput in;
  in.pc = 100;
  in.rs1_int = 5;
  in.rs2_int = 5;
  auto out = execute_op(make_branch(Opcode::kBeq, 1, 2, -10), in);
  EXPECT_TRUE(out.branch_taken);
  EXPECT_EQ(out.next_pc, 90u);

  in.rs2_int = 6;
  out = execute_op(make_branch(Opcode::kBeq, 1, 2, -10), in);
  EXPECT_FALSE(out.branch_taken);
  EXPECT_EQ(out.next_pc, 101u);

  out = execute_op(make_branch(Opcode::kBlt, 1, 2, 4), in);
  EXPECT_TRUE(out.branch_taken);
  out = execute_op(make_branch(Opcode::kBge, 1, 2, 4), in);
  EXPECT_FALSE(out.branch_taken);
}

TEST(Exec, UnsignedBranchesIgnoreTheSignBit) {
  ExecInput in;
  in.pc = 100;
  in.rs1_int = -1;  // largest unsigned value
  in.rs2_int = 1;
  auto out = execute_op(make_branch(Opcode::kBltu, 1, 2, 4), in);
  EXPECT_FALSE(out.branch_taken);  // signed blt would have taken
  EXPECT_EQ(out.next_pc, 101u);
  out = execute_op(make_branch(Opcode::kBgeu, 1, 2, 4), in);
  EXPECT_TRUE(out.branch_taken);
  EXPECT_EQ(out.next_pc, 104u);

  in.rs1_int = 3;  // small vs small stays ordinary
  out = execute_op(make_branch(Opcode::kBltu, 1, 2, 4), in);
  EXPECT_FALSE(out.branch_taken);  // 3 < 1 is false either way
  in.rs2_int = 3;
  out = execute_op(make_branch(Opcode::kBgeu, 1, 2, 4), in);
  EXPECT_TRUE(out.branch_taken);  // equal -> bgeu taken
  out = execute_op(make_branch(Opcode::kBltu, 1, 2, 4), in);
  EXPECT_FALSE(out.branch_taken);
}

TEST(Exec, JumpAndLink) {
  ExecInput in;
  in.pc = 50;
  const auto out = execute_op(make_jump(Opcode::kJal, 31, 8), in);
  EXPECT_EQ(out.next_pc, 58u);
  EXPECT_EQ(out.int_value, 51);  // link value
  EXPECT_TRUE(out.writes_int);
}

TEST(Exec, JrUsesRegisterValue) {
  ExecInput in;
  in.pc = 50;
  in.rs1_int = 7;
  const auto out =
      execute_op(Instruction{Opcode::kJr, 0, 1, 0, 0}, in);
  EXPECT_EQ(out.next_pc, 7u);
}

TEST(Exec, LoadStoreEffectiveAddress) {
  ExecInput in;
  in.rs1_int = 100;
  auto out = execute_op(make_ri(Opcode::kLw, 1, 2, -4), in);
  EXPECT_EQ(out.mem_addr, 96u);
  out = execute_op(make_store(Opcode::kSw, 3, 2, 20), in);
  EXPECT_EQ(out.mem_addr, 120u);
}

TEST(Exec, FpArithmetic) {
  EXPECT_DOUBLE_EQ(run_fp(Opcode::kFadd, 1.5, 2.25).fp_value, 3.75);
  EXPECT_DOUBLE_EQ(run_fp(Opcode::kFsub, 1.0, 0.25).fp_value, 0.75);
  EXPECT_DOUBLE_EQ(run_fp(Opcode::kFmul, 3.0, -2.0).fp_value, -6.0);
  EXPECT_DOUBLE_EQ(run_fp(Opcode::kFdiv, 1.0, 4.0).fp_value, 0.25);
  EXPECT_DOUBLE_EQ(run_fp(Opcode::kFmin, 1.0, -1.0).fp_value, -1.0);
  EXPECT_DOUBLE_EQ(run_fp(Opcode::kFmax, 1.0, -1.0).fp_value, 1.0);
}

TEST(Exec, FpDivisionByZeroIsIeee) {
  EXPECT_TRUE(std::isinf(run_fp(Opcode::kFdiv, 1.0, 0.0).fp_value));
  EXPECT_TRUE(std::isnan(run_fp(Opcode::kFdiv, 0.0, 0.0).fp_value));
}

TEST(Exec, FpCompareWritesInt) {
  EXPECT_EQ(run_fp(Opcode::kFeq, 1.0, 1.0).int_value, 1);
  EXPECT_EQ(run_fp(Opcode::kFlt, 1.0, 2.0).int_value, 1);
  EXPECT_EQ(run_fp(Opcode::kFle, 2.0, 2.0).int_value, 1);
  EXPECT_EQ(run_fp(Opcode::kFlt, 2.0, 1.0).int_value, 0);
  // NaN compares false.
  EXPECT_EQ(run_fp(Opcode::kFeq, std::nan(""), std::nan("")).int_value, 0);
  EXPECT_TRUE(run_fp(Opcode::kFeq, 1.0, 1.0).writes_int);
}

TEST(Exec, ConversionSaturation) {
  ExecInput in;
  in.rs1_fp = 1e30;
  EXPECT_EQ(execute_op(Instruction{Opcode::kCvtFI, 1, 2, 0, 0}, in).int_value,
            std::numeric_limits<std::int64_t>::max());
  in.rs1_fp = -1e30;
  EXPECT_EQ(execute_op(Instruction{Opcode::kCvtFI, 1, 2, 0, 0}, in).int_value,
            std::numeric_limits<std::int64_t>::min());
  in.rs1_fp = std::nan("");
  EXPECT_EQ(execute_op(Instruction{Opcode::kCvtFI, 1, 2, 0, 0}, in).int_value,
            0);
  in.rs1_fp = -2.9;
  EXPECT_EQ(execute_op(Instruction{Opcode::kCvtFI, 1, 2, 0, 0}, in).int_value,
            -2);  // truncation toward zero
}

TEST(Exec, IntToFpConversion) {
  ExecInput in;
  in.rs1_int = -7;
  const auto out = execute_op(Instruction{Opcode::kCvtIF, 1, 2, 0, 0}, in);
  EXPECT_DOUBLE_EQ(out.fp_value, -7.0);
  EXPECT_TRUE(out.writes_fp);
}

TEST(Exec, SqrtAbsNeg) {
  ExecInput in;
  in.rs1_fp = 9.0;
  EXPECT_DOUBLE_EQ(
      execute_op(Instruction{Opcode::kFsqrt, 1, 2, 0, 0}, in).fp_value, 3.0);
  in.rs1_fp = -2.5;
  EXPECT_DOUBLE_EQ(
      execute_op(Instruction{Opcode::kFabs, 1, 2, 0, 0}, in).fp_value, 2.5);
  EXPECT_DOUBLE_EQ(
      execute_op(Instruction{Opcode::kFneg, 1, 2, 0, 0}, in).fp_value, 2.5);
}

TEST(Exec, NonControlNextPcIsSequential) {
  ExecInput in;
  in.pc = 10;
  EXPECT_EQ(run_rr(Opcode::kAdd, 1, 2).next_pc, 1u);  // pc 0 default
  EXPECT_EQ(execute_op(make_rr(Opcode::kAdd, 1, 2, 3), in).next_pc, 11u);
}

TEST(Exec, StoreCarriesData) {
  ExecInput in;
  in.rs1_int = 64;
  in.rs2_int = 777;
  const auto out = execute_op(make_store(Opcode::kSw, 3, 2, 0), in);
  EXPECT_EQ(out.int_value, 777);
  in.rs2_fp = 2.5;
  const auto fout = execute_op(make_store(Opcode::kFsw, 3, 2, 0), in);
  EXPECT_DOUBLE_EQ(fout.fp_value, 2.5);
}

}  // namespace
}  // namespace steersim
