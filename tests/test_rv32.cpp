// RV32 front-end tests: decode-table golden vectors (every implemented
// encoding maps to the right row, FU type and latency), immediate field
// extraction, translation behaviours (materialization, zero-extension,
// entry stub, index map), typed error kinds for every rejection path, the
// committed fixtures' architectural checks, and a run_elf-vs-run_asm
// equivalence pair: a hand-written internal-ISA twin of rv32_int must
// translate to the exact same instruction vector and simulate to the
// exact same cycle/retire counts.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string_view>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/opcode.hpp"
#include "isa/rv32.hpp"
#include "sim/runner.hpp"
#include "workload/rv32_fixtures.hpp"

namespace steersim {
namespace {

namespace rv = rv32;

// RISC-V major opcodes used by hand-built error-path encodings.
constexpr std::uint8_t kMajLoad = 0x03;
constexpr std::uint8_t kMajOpImm = 0x13;
constexpr std::uint8_t kMajStore = 0x23;
constexpr std::uint8_t kMajOp = 0x33;
constexpr std::uint8_t kMajBranch = 0x63;
constexpr std::uint8_t kMajOpFp = 0x53;
constexpr std::uint8_t kMajSystem = 0x73;

/// The paper's property, restated per mnemonic: each RV32 encoding lands
/// on exactly one of the five FU types.
FuType expected_fu(const rv::Rv32Op& row) {
  const std::string_view m = row.mnemonic;
  if (m == "mul" || m == "mulh" || m == "div" || m == "rem") {
    return FuType::kIntMdu;
  }
  if (row.expand == rv::Expand::kLoad || row.expand == rv::Expand::kLbu ||
      row.expand == rv::Expand::kStore) {
    return FuType::kLsu;
  }
  if (m == "fmul.s" || m == "fdiv.s" || m == "fsqrt.s") {
    return FuType::kFpMdu;
  }
  if (m.front() == 'f' && m != "fence") {
    return FuType::kFpAlu;
  }
  return FuType::kIntAlu;
}

/// Builds one representative machine word for a table row (wildcard
/// funct3/funct7 become 0; fixed funct7 on I-format rows means the shift
/// family, whose funct7 lives in the imm bits exactly like R-format).
std::uint32_t representative_word(const rv::Rv32Op& row) {
  const std::uint8_t f3 = row.funct3 == rv::kAnyF3 ? 0 : row.funct3;
  const std::uint8_t f7 = row.funct7 == rv::kAnyF7 ? 0 : row.funct7;
  switch (row.format) {
    case rv::Format::kR:
      return rv::enc_r(row.major, f3, f7, 1, 2, 3);
    case rv::Format::kI:
      return row.funct7 == rv::kAnyF7
                 ? rv::enc_i(row.major, f3, 1, 2, 1)
                 : rv::enc_r(row.major, f3, f7, 1, 2, 3);
    case rv::Format::kS:
      return rv::enc_s(row.major, f3, 1, 2, 8);
    case rv::Format::kB:
      return rv::enc_b(row.major, f3, 1, 2, 8);
    case rv::Format::kU:
      return rv::enc_u(row.major, 1, 1);
    case rv::Format::kJ:
      return rv::enc_j(row.major, 1, 2048);
  }
  return 0;
}

TEST(Rv32Decode, EveryTableRowRoundTripsAndMapsToItsFuType) {
  for (const rv::Rv32Op& row : rv::table()) {
    const std::uint32_t word = representative_word(row);
    const rv::Rv32Op* hit = rv::lookup(word);
    ASSERT_NE(hit, nullptr) << row.mnemonic;
    EXPECT_EQ(hit->mnemonic, row.mnemonic);
    EXPECT_EQ(fu_type_of(row.internal), expected_fu(row)) << row.mnemonic;
    EXPECT_GE(op_info(row.internal).latency, 1u) << row.mnemonic;
  }
}

TEST(Rv32Decode, LatenciesFollowTheOpcodeModel) {
  // Spot-check the latency classes the steering signal depends on
  // (isa/opcode.hpp: ALU 1, load 3, mul 4, div 12, fadd 3, fmul 5,
  // fdiv 16, fsqrt 20).
  EXPECT_EQ(op_info(rv::lookup(rv::add(1, 2, 3))->internal).latency, 1u);
  EXPECT_EQ(op_info(rv::lookup(rv::lw(1, 2, 0))->internal).latency, 3u);
  EXPECT_EQ(op_info(rv::lookup(rv::mul(1, 2, 3))->internal).latency, 4u);
  EXPECT_EQ(op_info(rv::lookup(rv::div(1, 2, 3))->internal).latency, 12u);
  EXPECT_EQ(op_info(rv::lookup(rv::fadd_s(1, 2, 3))->internal).latency, 3u);
  EXPECT_EQ(op_info(rv::lookup(rv::fmul_s(1, 2, 3))->internal).latency, 5u);
  EXPECT_EQ(op_info(rv::lookup(rv::fdiv_s(1, 2, 3))->internal).latency,
            16u);
}

TEST(Rv32Decode, WellKnownEncodingsMatchTheRiscvSpec) {
  // Cross-checked against a reference assembler, so the encoders (and
  // through them every committed fixture word) agree with real RV32.
  EXPECT_EQ(rv::addi(0, 0, 0), 0x00000013u);   // nop
  EXPECT_EQ(rv::ecall(), 0x00000073u);
  EXPECT_EQ(rv::jalr(0, 1, 0), 0x00008067u);   // ret
  EXPECT_EQ(rv::add(1, 2, 3), 0x003100b3u);
  EXPECT_EQ(rv::addi(10, 0, 600), 0x25800513u);
}

TEST(Rv32Decode, SplitFieldsSignExtendsEveryImmediateFormat) {
  EXPECT_EQ(rv::split_fields(rv::addi(1, 2, -1)).imm_i, -1);
  EXPECT_EQ(rv::split_fields(rv::addi(1, 2, 2047)).imm_i, 2047);
  EXPECT_EQ(rv::split_fields(rv::sw(2, 1, -8)).imm_s, -8);
  EXPECT_EQ(rv::split_fields(rv::bne(1, 2, -12)).imm_b, -12);
  EXPECT_EQ(rv::split_fields(rv::bne(1, 2, 4094)).imm_b, 4094);
  EXPECT_EQ(rv::split_fields(rv::lui(1, 1)).imm_u, 1);
  EXPECT_EQ(rv::split_fields(rv::lui(1, -1)).imm_u, -1);
  EXPECT_EQ(rv::split_fields(rv::jal(1, -2048)).imm_j, -2048);

  const rv::Fields f = rv::split_fields(rv::add(1, 2, 3));
  EXPECT_EQ(f.rd, 1);
  EXPECT_EQ(f.rs1, 2);
  EXPECT_EQ(f.rs2, 3);
  EXPECT_EQ(f.major, kMajOp);
}

TEST(Rv32Decode, UnknownWordsHaveNoTableRow) {
  EXPECT_EQ(rv::lookup(0xffffffffu), nullptr);
  EXPECT_EQ(rv::lookup(0u), nullptr);
  // lh: valid RISC-V, deliberately unimplemented (sub-word halfword).
  EXPECT_EQ(rv::lookup(rv::enc_i(kMajLoad, 1, 1, 2, 0)), nullptr);
}

// --- Translation behaviours ----------------------------------------------

/// Translates, runs under the default steered machine and returns the
/// 64-bit data cell at `addr`.
std::int64_t run_and_load(const std::vector<std::uint32_t>& text,
                          std::uint64_t addr, std::uint32_t base = 0,
                          std::uint32_t entry_delta = 0) {
  const rv::Translation tr = rv::translate(text, base, base + entry_delta);
  Program program;
  program.name = "rv32-test";
  program.code = tr.code;
  auto cpu = make_processor(program, MachineConfig{}, PolicySpec{});
  const RunOutcome outcome = cpu->run(2'000'000);
  EXPECT_EQ(outcome, RunOutcome::kHalted) << cpu->fault_message();
  return cpu->memory().load_word(addr);
}

TEST(Rv32Translate, SmallLuiCollapsesToOneImmediate) {
  // 4096 fits imm15, so lui materializes in a single addi.
  const rv::Translation tr =
      rv::translate(std::vector<std::uint32_t>{rv::lui(5, 1), rv::ecall()},
                    0, 0);
  ASSERT_EQ(tr.code.size(), 2u);
  EXPECT_EQ(tr.code[0], make_ri(Opcode::kAddi, 5, 0, 4096));
  EXPECT_EQ(tr.expanded_words, 0u);

  EXPECT_EQ(run_and_load({rv::lui(5, 1), rv::sw(0, 5, 0), rv::ecall()}, 0),
            4096);
}

TEST(Rv32Translate, LargeLuiMaterializesTheFullConstant) {
  // 0x12345 << 12 = 305419264: beyond the lui+ori window, so the chunked
  // path (addi/slli/ori) must reconstruct it exactly.
  const std::int64_t want = std::int64_t{0x12345} << 12;
  EXPECT_EQ(
      run_and_load({rv::lui(5, 0x12345), rv::sw(0, 5, 0), rv::ecall()}, 0),
      want);
  // Negative upper immediate: lui x5, 0xfffff (signed imm20 -1) == -4096.
  EXPECT_EQ(
      run_and_load({rv::lui(5, -1), rv::sw(0, 5, 0), rv::ecall()}, 0),
      -4096);
}

TEST(Rv32Translate, AuipcResolvesToItsOwnByteAddress) {
  // auipc at word 1 of base 0x1000: value = 0x1004 + (1 << 12).
  const std::vector<std::uint32_t> text = {
      rv::addi(1, 0, 0),
      rv::enc_u(0x17, 5, 1),  // auipc x5, 1
      rv::sw(0, 5, 0),
      rv::ecall(),
  };
  EXPECT_EQ(run_and_load(text, 0, 0x1000), 0x1004 + 4096);
}

TEST(Rv32Translate, LbuZeroExtendsWhereLbSignExtends) {
  const std::vector<std::uint32_t> lbu_text = {
      rv::addi(1, 0, -1),
      rv::sw(0, 1, 0),                     // cell 0 = all ones
      rv::enc_i(kMajLoad, 4, 2, 0, 0),     // lbu x2, 0(x0)
      rv::sw(0, 2, 8),
      rv::ecall(),
  };
  EXPECT_EQ(run_and_load(lbu_text, 8), 0xff);

  const std::vector<std::uint32_t> lb_text = {
      rv::addi(1, 0, -1),
      rv::sw(0, 1, 0),
      rv::enc_i(kMajLoad, 0, 2, 0, 0),     // lb x2, 0(x0)
      rv::sw(0, 2, 8),
      rv::ecall(),
  };
  EXPECT_EQ(run_and_load(lb_text, 8), -1);
}

TEST(Rv32Decode, UnsignedBranchesDecodeToTheirOwnInternalOpcodes) {
  const rv::Rv32Op* bltu = rv::lookup(rv::enc_b(kMajBranch, 6, 1, 2, 8));
  ASSERT_NE(bltu, nullptr);
  EXPECT_EQ(bltu->mnemonic, std::string_view("bltu"));
  EXPECT_EQ(bltu->internal, Opcode::kBltu);
  const rv::Rv32Op* bgeu = rv::lookup(rv::enc_b(kMajBranch, 7, 1, 2, 8));
  ASSERT_NE(bgeu, nullptr);
  EXPECT_EQ(bgeu->mnemonic, std::string_view("bgeu"));
  EXPECT_EQ(bgeu->internal, Opcode::kBgeu);
  // Branch-kind metadata carries through to the internal ISA.
  EXPECT_TRUE(op_info(Opcode::kBltu).is_branch);
  EXPECT_TRUE(op_info(Opcode::kBgeu).is_branch);
  EXPECT_EQ(fu_type_of(Opcode::kBltu), FuType::kIntAlu);
}

TEST(Rv32Translate, BltuAndBgeuCompareUnsigned) {
  const auto bltu = [](std::uint8_t rs1, std::uint8_t rs2,
                       std::int32_t offset) {
    return rv::enc_b(kMajBranch, 6, rs1, rs2, offset);
  };
  const auto bgeu = [](std::uint8_t rs1, std::uint8_t rs2,
                       std::int32_t offset) {
    return rv::enc_b(kMajBranch, 7, rs1, rs2, offset);
  };
  // -1 is the largest unsigned value, so bltu x1(-1), x2(1) must fall
  // through (where the signed blt would have been taken).
  EXPECT_EQ(run_and_load({rv::addi(1, 0, -1),   // x1 = 0xffff...
                          rv::addi(2, 0, 1),    // x2 = 1
                          rv::addi(3, 0, 7),
                          bltu(1, 2, 8),        // not taken: -1u > 1u
                          rv::addi(3, 0, 9),    // executes
                          rv::sw(0, 3, 0), rv::ecall()},
                         0),
            9);
  // bgeu with the same operands is taken and skips the overwrite.
  EXPECT_EQ(run_and_load({rv::addi(1, 0, -1),
                          rv::addi(2, 0, 1),
                          rv::addi(3, 0, 7),
                          bgeu(1, 2, 8),        // taken: -1u >= 1u
                          rv::addi(3, 0, 9),    // skipped
                          rv::sw(0, 3, 0), rv::ecall()},
                         0),
            7);
  // Equal operands: bltu falls through, bgeu takes.
  EXPECT_EQ(run_and_load({rv::addi(1, 0, 5),
                          rv::addi(2, 0, 5),
                          rv::addi(3, 0, 1),
                          bltu(1, 2, 8),
                          rv::addi(3, 0, 2),
                          rv::sw(0, 3, 0), rv::ecall()},
                         0),
            2);
}

TEST(Rv32Equivalence, UnsignedBranchLoopMatchesHandWrittenAsmTwin) {
  // A count-down loop steered by bgeu, written once as RV32 words and
  // once in the internal grammar: both front ends must emit the exact
  // same instruction vector and simulate bit-identically.
  const auto bgeu = [](std::uint8_t rs1, std::uint8_t rs2,
                       std::int32_t offset) {
    return rv::enc_b(kMajBranch, 7, rs1, rs2, offset);
  };
  const std::vector<std::uint32_t> real_text = {
      rv::addi(10, 0, 1),      // i = 1
      rv::addi(12, 0, 50),     // limit = 50
      rv::addi(11, 0, 0),      // sum = 0
      rv::add(11, 11, 10),     // loop: sum += i
      rv::addi(10, 10, 1),     //       i += 1
      bgeu(12, 10, -8),        //       while (limit >= i unsigned)
      rv::sw(0, 11, 0),
      rv::ecall(),
  };
  const rv::Translation tr = rv::translate(real_text, 0, 0);
  Program from_elf;
  from_elf.name = "bgeu-loop";
  from_elf.code = tr.code;
  const Program from_asm = assemble(R"(
      addi r10, r0, 1
      addi r12, r0, 50
      addi r11, r0, 0
    loop:
      add  r11, r11, r10
      addi r10, r10, 1
      bgeu r12, r10, loop
      sw   r11, 0(r0)
      halt
  )",
                                    "bgeu-loop-twin");
  ASSERT_EQ(from_elf.code.size(), from_asm.code.size());
  for (std::size_t i = 0; i < from_elf.code.size(); ++i) {
    EXPECT_EQ(from_elf.code[i], from_asm.code[i]) << "instruction " << i;
  }
  auto elf_cpu = make_processor(from_elf, MachineConfig{}, PolicySpec{});
  auto asm_cpu = make_processor(from_asm, MachineConfig{}, PolicySpec{});
  ASSERT_EQ(elf_cpu->run(1'000'000), RunOutcome::kHalted);
  ASSERT_EQ(asm_cpu->run(1'000'000), RunOutcome::kHalted);
  EXPECT_EQ(elf_cpu->stats().cycles, asm_cpu->stats().cycles);
  EXPECT_EQ(elf_cpu->stats().retired, asm_cpu->stats().retired);
  EXPECT_EQ(elf_cpu->memory().load_word(0), 50 * 51 / 2);
  EXPECT_EQ(asm_cpu->memory().load_word(0), 50 * 51 / 2);
}

TEST(Rv32Translate, SltiuComparesUnsigned) {
  const auto sltiu = [](std::uint8_t rd, std::uint8_t rs1,
                        std::int32_t imm) {
    return rv::enc_i(kMajOpImm, 3, rd, rs1, imm);
  };
  // 3 < 5 unsigned -> 1.
  EXPECT_EQ(run_and_load({rv::addi(1, 0, 3), sltiu(2, 1, 5),
                          rv::sw(0, 2, 0), rv::ecall()},
                         0),
            1);
  // -1 is huge unsigned -> 0.
  EXPECT_EQ(run_and_load({rv::addi(1, 0, -1), sltiu(2, 1, 5),
                          rv::sw(0, 2, 0), rv::ecall()},
                         0),
            0);
}

TEST(Rv32Translate, EntryStubJumpsOverLeadingText) {
  // Entry at word 1: translation must prepend a jump stub and keep the
  // word->index map shifted by one.
  const std::vector<std::uint32_t> text = {
      rv::ecall(),           // dead word at the base
      rv::addi(1, 0, 7),     // entry
      rv::sw(0, 1, 0),
      rv::ecall(),
  };
  const rv::Translation tr = rv::translate(text, 0, 4);
  ASSERT_EQ(tr.code.size(), text.size() + 1);
  EXPECT_TRUE(op_info(tr.code[0].op).is_jump);
  EXPECT_EQ(tr.index_of[0], 1u);
  EXPECT_EQ(run_and_load(text, 0, 0, 4), 7);
}

TEST(Rv32Translate, IndexMapAccountsForExpansions) {
  const std::vector<std::uint32_t> text = {
      rv::lui(5, 0x12345),                 // expands to several words
      rv::addi(1, 0, 1),
      rv::ecall(),
  };
  const rv::Translation tr = rv::translate(text, 0, 0);
  EXPECT_EQ(tr.expanded_words, 1u);
  EXPECT_EQ(tr.index_of[0], 0u);
  EXPECT_GT(tr.index_of[1], 1u);  // lui occupied more than one slot
  EXPECT_EQ(tr.code[tr.index_of[1]], make_ri(Opcode::kAddi, 1, 0, 1));
}

// --- Typed rejection paths -----------------------------------------------

rv::Rv32Error::Kind translate_error(const std::vector<std::uint32_t>& text,
                                    std::uint32_t base = 0,
                                    std::uint32_t entry_delta = 0) {
  try {
    (void)rv::translate(text, base, base + entry_delta);
  } catch (const rv::Rv32Error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "translate did not throw";
  return rv::Rv32Error::Kind::kUnknownInstruction;
}

TEST(Rv32Errors, EveryRejectionHasATypedKind) {
  using Kind = rv::Rv32Error::Kind;
  // Garbage word.
  EXPECT_EQ(translate_error({0xffffffffu}), Kind::kUnknownInstruction);
  // Valid RISC-V outside the mapped subset.
  EXPECT_EQ(translate_error({rv::enc_i(kMajLoad, 1, 1, 2, 0)}),
            Kind::kUnsupported);  // lh
  EXPECT_EQ(translate_error({rv::enc_r(kMajOp, 5, 0x01, 1, 2, 3)}),
            Kind::kUnsupported);  // divu
  // Operand constraints.
  EXPECT_EQ(translate_error({rv::enc_i(kMajOpImm, 3, 5, 5, 1)}),
            Kind::kBadOperand);  // sltiu rd == rs1
  EXPECT_EQ(translate_error({rv::jalr(2, 1, 0)}),
            Kind::kUnsupported);  // linking jalr
  EXPECT_EQ(translate_error({rv::jalr(0, 1, 4)}),
            Kind::kUnsupported);  // jalr with offset
  EXPECT_EQ(translate_error({rv::enc_r(kMajOpFp, 0, 0x10, 1, 2, 3)}),
            Kind::kUnsupported);  // general fsgnj (rs1 != rs2)
  EXPECT_EQ(translate_error({rv::enc_i(kMajSystem, 0, 0, 0, 2)}),
            Kind::kUnsupported);  // SYSTEM beyond ecall/ebreak
  // Control-flow targets.
  EXPECT_EQ(translate_error({rv::bne(1, 2, 2), rv::ecall()}),
            Kind::kBadTarget);  // misaligned (C extension)
  EXPECT_EQ(translate_error({rv::beq(1, 2, 64), rv::ecall()}),
            Kind::kBadTarget);  // outside .text
  EXPECT_EQ(translate_error({rv::ecall()}, 0, 8),
            Kind::kBadTarget);  // entry outside .text
  EXPECT_EQ(translate_error({rv::ecall()}, 2),
            Kind::kBadTarget);  // misaligned base
}

TEST(Rv32Errors, JumpSpanBeyondImm20IsRejectedNotMisencoded) {
  // Constant materialization expands one RV32 word into up to five
  // internal instructions, so a jump that fits RV32's byte-offset range
  // can exceed the internal imm20 *index* range. That must raise
  // kImmOutOfRange instead of tripping the encoder contract: 110000
  // large-lui words put the jal target 550001 internal slots away
  // (> 2^19 - 1) while the byte offset stays a legal J-format value.
  constexpr int kWords = 110'000;
  std::vector<std::uint32_t> text;
  text.reserve(kWords + 2);
  text.push_back(rv::jal(0, 4 * (kWords + 1)));  // jump to the last word
  for (int i = 0; i < kWords; ++i) {
    text.push_back(rv::lui(5, 0x12345));  // 5 internal instructions each
  }
  text.push_back(rv::ecall());
  EXPECT_EQ(translate_error(text), rv::Rv32Error::Kind::kImmOutOfRange);
}

// --- Committed fixtures end to end ---------------------------------------

TEST(Rv32Fixtures, ArchitecturalChecksHoldUnderEveryFixture) {
  for (const Rv32Fixture& fx : rv32_fixture_library()) {
    const Program program = rv32_fixture_program(fx);
    auto cpu = make_processor(program, MachineConfig{}, PolicySpec{});
    const RunOutcome outcome = cpu->run(5'000'000);
    ASSERT_EQ(outcome, RunOutcome::kHalted)
        << fx.name << ": " << cpu->fault_message();
    ASSERT_FALSE(fx.checks.empty()) << fx.name;
    for (const Rv32Check& check : fx.checks) {
      const std::int64_t cell = cpu->memory().load_word(check.addr);
      if (check.is_fp) {
        EXPECT_EQ(std::bit_cast<double>(cell), check.fp_value)
            << fx.name << " @" << check.addr;
      } else {
        EXPECT_EQ(cell, check.int_value) << fx.name << " @" << check.addr;
      }
    }
  }
}

TEST(Rv32Fixtures, EntryStubOnlyWhereTheEntryIsNotTheBase) {
  const Program phases =
      rv32_fixture_program(rv32_fixture_by_name("rv32_phases"));
  const Program plain = rv32_fixture_program(rv32_fixture_by_name("rv32_int"));
  EXPECT_TRUE(op_info(phases.code.front().op).is_jump);
  EXPECT_FALSE(op_info(plain.code.front().op).is_jump);
}

// --- run_elf vs run_asm equivalence --------------------------------------

TEST(Rv32Equivalence, TranslatedIntFixtureMatchesHandWrittenAsmTwin) {
  // The same program written twice: once as RV32 machine words (the
  // committed rv32_int fixture) and once in the internal assembly
  // grammar. Both front ends must produce the identical instruction
  // vector, and therefore bit-identical simulations.
  const Program from_elf =
      rv32_fixture_program(rv32_fixture_by_name("rv32_int"));
  const Program from_asm = assemble(R"(
      addi r10, r0, 600
      addi r11, r0, 1
      addi r12, r0, 0
    loop:
      jal  r1, func
      add  r12, r12, r13
      addi r11, r11, 1
      bne  r11, r10, loop
      sw   r12, 0(r0)
      halt
    func:
      mul  r13, r11, r11
      srli r14, r13, 3
      add  r13, r13, r14
      div  r14, r13, r11
      rem  r15, r13, r10
      add  r13, r14, r15
      jr   r1
  )",
                                    "rv32_int_twin");

  ASSERT_EQ(from_elf.code.size(), from_asm.code.size());
  for (std::size_t i = 0; i < from_elf.code.size(); ++i) {
    EXPECT_EQ(from_elf.code[i], from_asm.code[i]) << "instruction " << i;
  }

  auto elf_cpu = make_processor(from_elf, MachineConfig{}, PolicySpec{});
  auto asm_cpu = make_processor(from_asm, MachineConfig{}, PolicySpec{});
  ASSERT_EQ(elf_cpu->run(5'000'000), RunOutcome::kHalted);
  ASSERT_EQ(asm_cpu->run(5'000'000), RunOutcome::kHalted);
  EXPECT_EQ(elf_cpu->stats().cycles, asm_cpu->stats().cycles);
  EXPECT_EQ(elf_cpu->stats().retired, asm_cpu->stats().retired);
  EXPECT_EQ(elf_cpu->memory().load_word(0), asm_cpu->memory().load_word(0));
}

}  // namespace
}  // namespace steersim
