// Unit tests for the dataflow ILP-bound analyzer.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sim/ilp_bound.hpp"
#include "sim/runner.hpp"
#include "workload/kernels.hpp"

namespace steersim {
namespace {

TEST(IlpBound, SerialChainBoundsAtOne) {
  // 64 chained adds: critical path == chain length, max IPC ~ 1.
  std::string src;
  for (int i = 0; i < 64; ++i) {
    src += "  addi r1, r1, 1\n";
  }
  src += "  halt\n";
  const IlpBound bound = compute_ilp_bound(assemble(src));
  EXPECT_EQ(bound.instructions, 65u);
  EXPECT_EQ(bound.critical_path, 64u);  // the chain; halt is independent
  EXPECT_NEAR(bound.max_ipc(), 1.0, 0.05);
}

TEST(IlpBound, IndependentOpsBoundIsWide) {
  // 16 independent adds: everything completes in one cycle.
  std::string src;
  for (int i = 1; i <= 16; ++i) {
    src += "  addi r" + std::to_string(i) + ", r0, " + std::to_string(i) +
           "\n";
  }
  src += "  halt\n";
  const IlpBound bound = compute_ilp_bound(assemble(src));
  EXPECT_EQ(bound.critical_path, 1u);
  EXPECT_NEAR(bound.max_ipc(), 17.0, 0.01);
  EXPECT_EQ(bound.tail_width, 17u);
}

TEST(IlpBound, LatencyWeighted) {
  // A chain of two divides (12 cycles each) dominates any number of
  // parallel single-cycle ops.
  const Program p = assemble(R"(
  li r1, 100
  li r2, 3
  div r3, r1, r2
  div r4, r3, r2
  addi r5, r0, 1
  addi r6, r0, 2
  halt
)");
  const IlpBound bound = compute_ilp_bound(p);
  // li r1 (1) -> div (12) -> div (12) = 25.
  EXPECT_EQ(bound.critical_path, 25u);
}

TEST(IlpBound, MemoryRawDependenceHonoured) {
  // store -> load -> use of the same word is a serial chain through
  // memory; loads from different words are independent.
  const Program p = assemble(R"(
  la r1, a
  li r2, 7
  sw r2, 0(r1)
  lw r3, 0(r1)
  addi r4, r3, 1
  halt
.data
a: .word 0
)");
  const IlpBound bound = compute_ilp_bound(p);
  // la(1) -> sw(3) -> lw(3) -> addi(1) = 8, + nothing longer.
  EXPECT_EQ(bound.critical_path, 8u);
}

TEST(IlpBound, ControlDependencesIgnored) {
  // A loop of independent iterations: the oracle bound sees through the
  // branch (iterations only chain through the counter, latency 1/iter).
  const Program p = assemble(R"(
  li r1, 50
loop:
  xor r2, r3, r4
  and r5, r6, r7
  addi r1, r1, -1
  bne r1, r0, loop
  halt
)");
  const IlpBound bound = compute_ilp_bound(p);
  // Counter chain: 50 x addi = 50 (+ li + trailing bne/halt slack).
  EXPECT_LE(bound.critical_path, 54u);
  EXPECT_GT(bound.max_ipc(), 3.0);
}

TEST(IlpBound, KernelsOrderedSensibly) {
  const IlpBound fib = compute_ilp_bound(
      kernel_by_name("fib").assemble_program());
  const IlpBound newton = compute_ilp_bound(
      kernel_by_name("newton_sqrt").assemble_program());
  const IlpBound scale = compute_ilp_bound(
      kernel_by_name("vector_scale").assemble_program());
  // Newton's fdiv chain is the most serial; vector_scale is embarrassingly
  // parallel; fib sits between.
  EXPECT_LT(newton.max_ipc(), 1.0);
  EXPECT_GT(scale.max_ipc(), 3.0);
  EXPECT_GT(fib.max_ipc(), newton.max_ipc());
  EXPECT_LT(fib.max_ipc(), scale.max_ipc());
}

TEST(IlpBound, MeasuredIpcNeverExceedsBound) {
  for (const char* name : {"fib", "saxpy", "sum_array", "newton_sqrt"}) {
    const Program p = kernel_by_name(name).assemble_program();
    const IlpBound bound = compute_ilp_bound(p);
    const SimResult r =
        simulate(p, MachineConfig{}, {.kind = PolicyKind::kOracle});
    EXPECT_LE(r.stats.ipc(), bound.max_ipc() * 1.001) << name;
  }
}

}  // namespace
}  // namespace steersim
