// Bench-regression comparator (sim/bench_compare.hpp): exact comparison
// for simulated metrics, tolerance-with-direction for host metrics, digest
// gating, and directory-level missing-report handling.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/bench_compare.hpp"

namespace steersim {
namespace {

std::string report_json(double sim_mean, double host_time, double host_rate,
                        const std::string& digest = "abc123") {
  return std::string(R"({"schema":"steersim-bench/1","bench":"demo",)") +
         R"("git":"test","config":{"k":"v"},"config_digest":")" + digest +
         R"(","repeats":1,"metrics":{)" +
         R"("a.cycles":{"kind":"sim","count":1,"mean":)" +
         std::to_string(sim_mean) + R"(,"stddev":0},)" +
         R"("a.wall":{"kind":"host_time","count":1,"mean":)" +
         std::to_string(host_time) + R"(,"stddev":0},)" +
         R"("a.rate":{"kind":"host_rate","count":1,"mean":)" +
         std::to_string(host_rate) + R"(,"stddev":0}}})";
}

CompareReport compare_one(const std::string& a, const std::string& b,
                          double host_tol = 0.20) {
  CompareReport report;
  BenchCompareOptions options;
  options.host_tolerance = host_tol;
  compare_bench_reports("BENCH_demo.json", a, b, options, report);
  return report;
}

TEST(BenchCompare, IdenticalReportsProduceNoIssues) {
  const std::string r = report_json(1000, 1.0, 500);
  const CompareReport report = compare_one(r, r);
  EXPECT_FALSE(report.has_regression());
  EXPECT_TRUE(report.issues.empty()) << report.to_string();
  EXPECT_EQ(report.benches_compared, 1u);
  EXPECT_EQ(report.metrics_compared, 3u);
}

TEST(BenchCompare, SimulatedMetricsCompareExactly) {
  // Even a tiny simulated drift is a regression — the machine is
  // deterministic, so any change is a real behaviour change.
  const CompareReport report =
      compare_one(report_json(1000, 1.0, 500), report_json(1001, 1.0, 500));
  EXPECT_TRUE(report.has_regression());
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].metric, "a.cycles");
}

TEST(BenchCompare, HostTimeRegressesOnlyWhenSlowerBeyondTolerance) {
  // 10% slower: within the 20% tolerance.
  EXPECT_FALSE(compare_one(report_json(1000, 1.0, 500),
                           report_json(1000, 1.1, 500))
                   .has_regression());
  // 30% slower: regression.
  EXPECT_TRUE(compare_one(report_json(1000, 1.0, 500),
                          report_json(1000, 1.3, 500))
                  .has_regression());
  // 50% FASTER: improvement, never a regression.
  EXPECT_FALSE(compare_one(report_json(1000, 1.0, 500),
                           report_json(1000, 0.5, 500))
                   .has_regression());
}

TEST(BenchCompare, HostRateRegressesOnlyWhenLowerBeyondTolerance) {
  // Rate halved: regression.
  EXPECT_TRUE(compare_one(report_json(1000, 1.0, 500),
                          report_json(1000, 1.0, 250))
                  .has_regression());
  // Rate doubled: improvement.
  EXPECT_FALSE(compare_one(report_json(1000, 1.0, 500),
                           report_json(1000, 1.0, 1000))
                   .has_regression());
  // Tolerance is configurable: a 10% drop fails a 5% gate.
  EXPECT_TRUE(compare_one(report_json(1000, 1.0, 500),
                          report_json(1000, 1.0, 450), 0.05)
                  .has_regression());
}

TEST(BenchCompare, DigestMismatchSkipsMetricsWithWarning) {
  const CompareReport report =
      compare_one(report_json(1000, 1.0, 500, "aaa"),
                  report_json(9999, 9.0, 1, "bbb"));
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.count(IssueSeverity::kWarning), 1u);
  EXPECT_EQ(report.metrics_compared, 0u);
}

TEST(BenchCompare, MissingMetricInCandidateIsARegression) {
  std::string b = report_json(1000, 1.0, 500);
  const std::size_t pos = b.find(R"("a.rate")");
  ASSERT_NE(pos, std::string::npos);
  b.erase(pos - 1, b.find('}', pos) - pos + 2);  // drop ,"a.rate":{...}
  const CompareReport report = compare_one(report_json(1000, 1.0, 500), b);
  EXPECT_TRUE(report.has_regression());
}

TEST(BenchCompare, UnparseableCandidateIsARegression) {
  const CompareReport report =
      compare_one(report_json(1000, 1.0, 500), "{not json");
  EXPECT_TRUE(report.has_regression());
}

TEST(BenchCompare, DirectoriesCompareByFileNameWithMissingAsRegression) {
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() / "steersim_bc_test";
  fs::remove_all(base);
  fs::create_directories(base / "a");
  fs::create_directories(base / "b");
  const auto write = [](const fs::path& p, const std::string& body) {
    std::ofstream(p) << body;
  };
  write(base / "a" / "BENCH_demo.json", report_json(1000, 1.0, 500));
  write(base / "b" / "BENCH_demo.json", report_json(1000, 1.0, 500));
  write(base / "a" / "BENCH_gone.json", report_json(1, 1.0, 1));
  write(base / "b" / "BENCH_new.json", report_json(2, 1.0, 2));
  write(base / "b" / "not_a_report.json", "ignored");

  const CompareReport report =
      compare_bench_dirs((base / "a").string(), (base / "b").string());
  EXPECT_TRUE(report.has_regression());  // BENCH_gone missing from b
  EXPECT_EQ(report.count(IssueSeverity::kRegression), 1u);
  EXPECT_EQ(report.count(IssueSeverity::kNote), 1u);  // BENCH_new
  EXPECT_EQ(report.benches_compared, 1u);

  // Identical directories: clean.
  const CompareReport same =
      compare_bench_dirs((base / "a").string(), (base / "a").string());
  EXPECT_FALSE(same.has_regression());
  EXPECT_EQ(same.count(IssueSeverity::kWarning), 0u);
  fs::remove_all(base);
}

TEST(BenchCompare, EmptyBaselineDirectoryWarns) {
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() / "steersim_bc_empty";
  fs::remove_all(base);
  fs::create_directories(base);
  const CompareReport report =
      compare_bench_dirs((base / "missing").string(), base.string());
  EXPECT_FALSE(report.has_regression());
  EXPECT_EQ(report.count(IssueSeverity::kWarning), 1u);
  fs::remove_all(base);
}

}  // namespace
}  // namespace steersim
