// ELF32 loader tests: well-formed round trips through ElfBuilder, every
// malformed-input family mapped to its typed ElfError kind (truncation,
// bad magic, unsupported class/endian/type/machine, broken layout), and
// the committed tests/fixtures/*.elf images verified byte-identical to
// freshly encoded ones so the checked-in binaries cannot rot.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "frontend/elf_loader.hpp"
#include "isa/rv32.hpp"
#include "workload/rv32_fixtures.hpp"

namespace steersim {
namespace {

namespace rv = rv32;
using elf::ElfBuilder;
using elf::ElfError;
using elf::ElfFile;

std::vector<std::uint8_t> int_fixture_image() {
  return rv32_fixture_elf(rv32_fixture_by_name("rv32_int"));
}

/// Parses and reports the typed kind; fails the test when no ElfError is
/// raised (malformed input must never be undefined behaviour).
ElfError::Kind parse_error(const std::vector<std::uint8_t>& image) {
  try {
    (void)elf::parse_elf32(image);
  } catch (const ElfError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "parse_elf32 did not throw";
  return ElfError::Kind::kTruncated;
}

ElfError::Kind load_error(const std::vector<std::uint8_t>& image) {
  try {
    (void)elf::load_elf_program(image, "bad");
  } catch (const ElfError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "load_elf_program did not throw";
  return ElfError::Kind::kTruncated;
}

TEST(ElfLoader, ParsesTheBuilderRoundTrip) {
  const std::vector<std::uint32_t> words = {rv::addi(1, 0, 7), rv::ecall()};
  const std::vector<std::uint8_t> image = ElfBuilder()
                                              .entry(0x1000)
                                              .text(0x1000, words)
                                              .segment(0, {1, 2, 3}, false,
                                                       /*memsz_extra=*/5)
                                              .build();
  const ElfFile file = elf::parse_elf32(image);
  EXPECT_EQ(file.entry, 0x1000u);
  ASSERT_EQ(file.segments.size(), 2u);
  EXPECT_TRUE(file.segments[0].executable);
  EXPECT_EQ(file.segments[0].vaddr, 0x1000u);
  EXPECT_EQ(file.segments[0].bytes.size(), words.size() * 4);
  EXPECT_FALSE(file.segments[1].executable);
  // BSS: p_memsz beyond p_filesz arrives zero-filled.
  ASSERT_EQ(file.segments[1].bytes.size(), 8u);
  EXPECT_EQ(file.segments[1].bytes[2], 3u);
  EXPECT_EQ(file.segments[1].bytes[7], 0u);
}

TEST(ElfLoader, FixtureImagesParseToTheirDeclaredShape) {
  const ElfFile plain = elf::parse_elf32(int_fixture_image());
  EXPECT_EQ(plain.entry, 0x1000u);
  ASSERT_EQ(plain.segments.size(), 1u);
  EXPECT_TRUE(plain.segments[0].executable);

  const Rv32Fixture& fp = rv32_fixture_by_name("rv32_fp");
  const ElfFile with_data = elf::parse_elf32(rv32_fixture_elf(fp));
  EXPECT_EQ(with_data.entry, 0x2000u);
  ASSERT_EQ(with_data.segments.size(), 2u);
  EXPECT_EQ(with_data.segments[1].bytes.size(), fp.data.size());
}

TEST(ElfLoader, LoadedProgramMatchesTheDirectFixturePath) {
  // Round-tripping a fixture through its ELF image must land on the same
  // Program the in-process path builds (the service digest relies on the
  // image alone describing the job).
  for (const Rv32Fixture& fx : rv32_fixture_library()) {
    const Program direct = rv32_fixture_program(fx);
    const Program loaded =
        elf::load_elf_program(rv32_fixture_elf(fx), fx.name);
    EXPECT_EQ(loaded.code, direct.code) << fx.name;
    EXPECT_EQ(loaded.data, direct.data) << fx.name;
    EXPECT_EQ(loaded.code_labels, direct.code_labels) << fx.name;
  }
}

TEST(ElfLoader, CommittedFixtureBytesMatchFreshlyEncodedOnes) {
  // tests/fixtures/*.elf are committed binaries; tools/make_fixtures
  // writes them from the same arrays this test encodes, so any drift
  // between code and committed bytes fails here (and in the CI
  // self-check) instead of silently shipping a stale binary.
  for (const Rv32Fixture& fx : rv32_fixture_library()) {
    const std::string path = std::string(STEERSIM_SOURCE_DIR) +
                             "/tests/fixtures/" + fx.name + ".elf";
    std::ifstream file(path, std::ios::binary);
    ASSERT_TRUE(file) << "missing committed fixture " << path
                      << " (regenerate with tools/make_fixtures)";
    const std::vector<std::uint8_t> committed(
        (std::istreambuf_iterator<char>(file)),
        std::istreambuf_iterator<char>());
    EXPECT_EQ(committed, rv32_fixture_elf(fx))
        << fx.name << " is stale (regenerate with tools/make_fixtures)";
  }
}

TEST(ElfErrors, TruncationIsAlwaysTyped) {
  const std::vector<std::uint8_t> image = int_fixture_image();

  std::vector<std::uint8_t> empty;
  EXPECT_EQ(parse_error(empty), ElfError::Kind::kTruncated);

  std::vector<std::uint8_t> header_cut(image.begin(), image.begin() + 20);
  EXPECT_EQ(parse_error(header_cut), ElfError::Kind::kTruncated);

  std::vector<std::uint8_t> phdr_cut(image.begin(), image.begin() + 60);
  EXPECT_EQ(parse_error(phdr_cut), ElfError::Kind::kTruncated);

  std::vector<std::uint8_t> payload_cut(image.begin(), image.end() - 1);
  EXPECT_EQ(parse_error(payload_cut), ElfError::Kind::kTruncated);
}

TEST(ElfErrors, NonElfAndNonRv32ImagesAreTyped) {
  std::vector<std::uint8_t> bad_magic = int_fixture_image();
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(parse_error(bad_magic), ElfError::Kind::kBadMagic);

  std::vector<std::uint8_t> elf64 = int_fixture_image();
  elf64[4] = 2;  // EI_CLASS = ELFCLASS64
  EXPECT_EQ(parse_error(elf64), ElfError::Kind::kUnsupported);

  std::vector<std::uint8_t> big_endian = int_fixture_image();
  big_endian[5] = 2;  // EI_DATA = ELFDATA2MSB
  EXPECT_EQ(parse_error(big_endian), ElfError::Kind::kUnsupported);

  std::vector<std::uint8_t> dyn = int_fixture_image();
  dyn[16] = 3;  // e_type = ET_DYN
  EXPECT_EQ(parse_error(dyn), ElfError::Kind::kUnsupported);

  std::vector<std::uint8_t> x86 = int_fixture_image();
  x86[18] = 0x3e;  // e_machine = EM_X86_64
  EXPECT_EQ(parse_error(x86), ElfError::Kind::kUnsupported);
}

TEST(ElfErrors, BrokenSegmentLayoutsAreTyped) {
  const std::vector<std::uint32_t> words = {rv::ecall()};

  // Overlapping PT_LOAD segments.
  const auto overlapping = ElfBuilder()
                               .entry(0x1000)
                               .text(0x1000, words)
                               .segment(0, {1, 2, 3, 4}, false)
                               .segment(2, {5, 6}, false)
                               .build();
  EXPECT_EQ(parse_error(overlapping), ElfError::Kind::kBadLayout);

  // No executable segment at all.
  const auto data_only =
      ElfBuilder().entry(0).segment(0, {1, 2, 3, 4}, false).build();
  EXPECT_EQ(load_error(data_only), ElfError::Kind::kBadLayout);

  // Two executable segments: which one is .text would be ambiguous.
  const auto two_text = ElfBuilder()
                            .entry(0x1000)
                            .text(0x1000, words)
                            .text(0x2000, words)
                            .build();
  EXPECT_EQ(load_error(two_text), ElfError::Kind::kBadLayout);

  // Misaligned text segment address.
  const auto misaligned =
      ElfBuilder().entry(0x1002).segment(0x1002, {0x73, 0, 0, 0}, true)
          .build();
  EXPECT_EQ(load_error(misaligned), ElfError::Kind::kBadLayout);

  // A data segment whose end exceeds the 16 MiB flat-image ceiling.
  const auto huge = ElfBuilder()
                        .entry(0x1000)
                        .text(0x1000, words)
                        .segment(static_cast<std::uint32_t>(
                                     elf::kMaxDataImageBytes),
                                 {1}, false)
                        .build();
  EXPECT_EQ(load_error(huge), ElfError::Kind::kBadLayout);
}

TEST(ElfErrors, EntryOutsideTextIsARv32TargetError) {
  // The loader hands the entry to the translator, which rejects a target
  // outside .text with a typed Rv32Error rather than reading off the end.
  const auto image = ElfBuilder()
                         .entry(0x2000)
                         .text(0x1000, std::vector<std::uint32_t>{
                                           rv::ecall()})
                         .build();
  EXPECT_THROW((void)elf::load_elf_program(image, "bad"), rv::Rv32Error);
}

}  // namespace
}  // namespace steersim
