// Unit tests for the configuration selection unit (Figs. 2 and 3): unit
// decoders, requirement encoders, the shift-approximated CEM (exhaustive
// comparison against the exact equation), and minimal-error selection with
// every tie-break rule.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "config/circuit_cost.hpp"
#include "config/selection_unit.hpp"

namespace steersim {
namespace {

TEST(UnitDecoder, OneHotPerOpcode) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const UnitOneHot hot = unit_decode(op);
    EXPECT_EQ(hot.count(), 1u);
    EXPECT_TRUE(hot.test(fu_index(fu_type_of(op))));
  }
}

TEST(RequirementsEncoder, CountsPerType) {
  const Opcode ops[] = {Opcode::kAdd, Opcode::kSub, Opcode::kLw,
                        Opcode::kMul, Opcode::kFadd, Opcode::kFmul,
                        Opcode::kSw};
  const FuCounts req = encode_requirements(ops);
  EXPECT_EQ(req[fu_index(FuType::kIntAlu)], 2);
  EXPECT_EQ(req[fu_index(FuType::kIntMdu)], 1);
  EXPECT_EQ(req[fu_index(FuType::kLsu)], 2);
  EXPECT_EQ(req[fu_index(FuType::kFpAlu)], 1);
  EXPECT_EQ(req[fu_index(FuType::kFpMdu)], 1);
}

TEST(RequirementsEncoder, SaturatesAt3Bits) {
  std::vector<Opcode> ops(12, Opcode::kAdd);
  const FuCounts req = encode_requirements(ops);
  EXPECT_EQ(req[fu_index(FuType::kIntAlu)], 7);  // 3-bit saturation
}

TEST(CemShift, Fig3cTruthTable) {
  // Fig. 3c: the divisor is selected from the two high-order bits of the
  // 3-bit available-quantity input.
  EXPECT_EQ(cem_shift_amount(0b000), 0u);  // divide by 1
  EXPECT_EQ(cem_shift_amount(0b001), 0u);
  EXPECT_EQ(cem_shift_amount(0b010), 1u);  // divide by 2
  EXPECT_EQ(cem_shift_amount(0b011), 1u);
  EXPECT_EQ(cem_shift_amount(0b100), 2u);  // divide by 4
  EXPECT_EQ(cem_shift_amount(0b101), 2u);
  EXPECT_EQ(cem_shift_amount(0b110), 2u);
  EXPECT_EQ(cem_shift_amount(0b111), 2u);
}

TEST(Cem, SingleTypeValues) {
  FuCounts req{};
  FuCounts avail{};
  req[0] = 6;
  avail[0] = 4;  // divide by 4 -> 1
  for (unsigned t = 1; t < kNumFuTypes; ++t) {
    avail[t] = 1;
  }
  EXPECT_EQ(cem_error_approx(req, avail), 6u >> 2);
  avail[0] = 2;  // divide by 2 -> 3
  EXPECT_EQ(cem_error_approx(req, avail), 3u);
  avail[0] = 1;  // divide by 1 -> 6
  EXPECT_EQ(cem_error_approx(req, avail), 6u);
}

TEST(Cem, ApproxNeverExceedsRequirementSum) {
  // Every shifted term <= required(t); the 3-bit adder never saturates
  // because Σ required <= 7 (the queue bound).
  for (unsigned r0 = 0; r0 <= 7; ++r0) {
    for (unsigned a0 = 0; a0 <= 7; ++a0) {
      FuCounts req{};
      FuCounts avail{};
      req[0] = static_cast<std::uint8_t>(r0);
      avail[0] = static_cast<std::uint8_t>(a0);
      EXPECT_LE(cem_error_approx(req, avail), r0);
    }
  }
}

TEST(Cem, ExhaustiveApproxVsExactMonotonicity) {
  // For every (req, avail) pair in 3-bit range, the shift approximation
  // divides by {1,2,4}, i.e. by at most the true availability when
  // avail >= 1, so approx >= floor(exact) / 2 and approx <= req.
  for (unsigned r = 0; r <= 7; ++r) {
    for (unsigned a = 1; a <= 7; ++a) {
      const unsigned shift = cem_shift_amount(static_cast<std::uint8_t>(a));
      const unsigned divisor = 1u << shift;
      EXPECT_LE(divisor, a) << "divisor must round down (Fig. 3c)";
      EXPECT_GT(2 * divisor, a) << "divisor is the nearest power of two <= a";
      const double exact = static_cast<double>(r) / a;
      const double approx = static_cast<double>(r >> shift);
      // Approximation uses a >= divisor, so floor(r/divisor) >= floor(r/a).
      EXPECT_GE(approx, std::floor(exact));
    }
  }
}

std::array<unsigned, kNumCandidates> zero_cost() { return {0, 0, 0, 0}; }

TEST(Selection, PicksIntegerConfigForIntegerQueue) {
  const ConfigSelectionUnit unit(default_steering_set());
  // A queue full of ALU + MDU work with only the FFUs configured.
  const Opcode ops[] = {Opcode::kAdd, Opcode::kSub, Opcode::kMul,
                        Opcode::kAdd, Opcode::kXor, Opcode::kLw,
                        Opcode::kAdd};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  auto cost = zero_cost();
  cost[1] = 8;
  cost[2] = 8;
  cost[3] = 8;
  const SelectionTrace trace = unit.select(ops, ffu_only, cost);
  EXPECT_EQ(trace.selection, 1u);  // Config 1 = "integer"
  EXPECT_EQ(trace.required[fu_index(FuType::kIntAlu)], 5);
}

TEST(Selection, PicksFloatConfigForFpQueue) {
  const ConfigSelectionUnit unit(default_steering_set());
  const Opcode ops[] = {Opcode::kFadd, Opcode::kFmul, Opcode::kFadd,
                        Opcode::kFsqrt, Opcode::kFlw};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  const SelectionTrace trace = unit.select(ops, ffu_only, zero_cost());
  EXPECT_EQ(trace.selection, 3u);  // Config 3 = "float"
}

TEST(Selection, CurrentWinsWhenAlreadyMatched) {
  const ConfigSelectionUnit unit(default_steering_set());
  const Opcode ops[] = {Opcode::kAdd, Opcode::kAdd, Opcode::kLw};
  // Current fabric already is the integer preset + FFUs.
  const FuCounts current = default_steering_set().preset_total(0);
  auto cost = zero_cost();
  cost[1] = 0;  // even a free switch to config 1 must not beat current
  cost[2] = 8;
  cost[3] = 8;
  const SelectionTrace trace = unit.select(ops, current, cost);
  EXPECT_EQ(trace.selection, 0u);
}

TEST(Selection, EmptyQueueKeepsCurrent) {
  const ConfigSelectionUnit unit(default_steering_set());
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  const SelectionTrace trace =
      unit.select({}, ffu_only, zero_cost());
  EXPECT_EQ(trace.selection, 0u);  // all errors 0; current favoured
  for (const double e : trace.errors) {
    EXPECT_EQ(e, 0.0);
  }
}

TEST(Selection, TieBreakLeastReconfigAmongPresets) {
  const ConfigSelectionUnit unit(default_steering_set());
  // Make current strictly worse than all presets so only presets tie.
  const Opcode ops[] = {Opcode::kAdd, Opcode::kAdd, Opcode::kLw,
                        Opcode::kFadd};
  const FuCounts weak_current = {1, 1, 1, 1, 1};
  auto cost = zero_cost();
  cost[1] = 8;
  cost[2] = 3;  // config 2 is cheapest to reach
  cost[3] = 8;
  const SelectionTrace trace = unit.select(ops, weak_current, cost);
  // Verify that whatever won, no strictly-better (error, cost) candidate
  // among presets was passed over.
  const unsigned sel = trace.selection;
  ASSERT_GE(sel, 1u);
  for (unsigned c = 1; c < kNumCandidates; ++c) {
    EXPECT_FALSE(trace.errors[c] < trace.errors[sel]);
    if (trace.errors[c] == trace.errors[sel]) {
      EXPECT_GE(cost[c], cost[sel]);
    }
  }
}

TEST(Selection, TieBreakModesDiffer) {
  const SteeringSet set = default_steering_set();
  const ConfigSelectionUnit paper(set, CemMode::kShiftApprox,
                                  TieBreak::kPaper);
  const ConfigSelectionUnit naive(set, CemMode::kShiftApprox,
                                  TieBreak::kLowestIndex);
  const ConfigSelectionUnit least(set, CemMode::kShiftApprox,
                                  TieBreak::kLeastReconfig);
  // All-zero requirements: every error ties at 0.
  auto cost = zero_cost();
  cost[0] = 0;
  cost[1] = 5;
  cost[2] = 1;
  cost[3] = 5;
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  EXPECT_EQ(paper.select({}, ffu_only, cost).selection, 0u);
  EXPECT_EQ(naive.select({}, ffu_only, cost).selection, 0u);
  EXPECT_EQ(least.select({}, ffu_only, cost).selection, 0u);  // cost[0]=0

  // Current expensive: least-reconfig switches away, paper stays.
  cost[0] = 4;
  EXPECT_EQ(paper.select({}, ffu_only, cost).selection, 0u);
  EXPECT_EQ(least.select({}, ffu_only, cost).selection, 2u);
}

TEST(Selection, ExactCemDisagreesWithApproxSometimes) {
  const SteeringSet set = default_steering_set();
  const ConfigSelectionUnit approx(set, CemMode::kShiftApprox);
  const ConfigSelectionUnit exact(set, CemMode::kExactDivide);
  // Sweep simple queues and count disagreements; both must at least agree
  // on the all-integer and all-FP corners.
  const Opcode int_ops[] = {Opcode::kAdd, Opcode::kAdd, Opcode::kAdd,
                            Opcode::kAdd, Opcode::kMul};
  const Opcode fp_ops[] = {Opcode::kFadd, Opcode::kFadd, Opcode::kFmul,
                           Opcode::kFmul, Opcode::kFsqrt};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  auto cost = zero_cost();
  cost[1] = cost[2] = cost[3] = 8;
  EXPECT_EQ(approx.select(int_ops, ffu_only, cost).selection,
            exact.select(int_ops, ffu_only, cost).selection);
  EXPECT_EQ(approx.select(fp_ops, ffu_only, cost).selection,
            exact.select(fp_ops, ffu_only, cost).selection);
}

TEST(Selection, RandomizedBruteForceCrossCheck) {
  // Property: for every tie-break mode, the selection equals an
  // independently computed argmin with the documented tie rules.
  const SteeringSet set = default_steering_set();
  Xoshiro256 rng(515);
  for (const TieBreak tb : {TieBreak::kPaper, TieBreak::kLeastReconfig,
                            TieBreak::kLowestIndex}) {
    const ConfigSelectionUnit unit(set, CemMode::kShiftApprox, tb);
    for (int trial = 0; trial < 2000; ++trial) {
      std::vector<Opcode> ops;
      for (std::uint64_t k = rng.next_below(8); k > 0; --k) {
        ops.push_back(static_cast<Opcode>(rng.next_below(kNumOpcodes)));
      }
      FuCounts current{};
      for (auto& c : current) {
        c = static_cast<std::uint8_t>(1 + rng.next_below(5));
      }
      std::array<unsigned, kNumCandidates> cost{};
      for (unsigned p = 1; p < kNumCandidates; ++p) {
        cost[p] = static_cast<unsigned>(rng.next_below(9));
      }
      const SelectionTrace trace = unit.select(ops, current, cost);

      // Brute-force reference.
      std::array<double, kNumCandidates> errors;
      const FuCounts req = encode_requirements(ops);
      errors[0] = cem_error_approx(req, current);
      for (unsigned p = 0; p < kNumPresetConfigs; ++p) {
        errors[p + 1] = cem_error_approx(req, set.preset_total(p));
      }
      unsigned best = 0;
      for (unsigned c = 1; c < kNumCandidates; ++c) {
        bool wins = errors[c] < errors[best];
        if (!wins && errors[c] == errors[best]) {
          switch (tb) {
            case TieBreak::kPaper:
              wins = best != 0 && cost[c] < cost[best];
              break;
            case TieBreak::kLeastReconfig:
              wins = cost[c] < cost[best];
              break;
            case TieBreak::kLowestIndex:
              wins = false;
              break;
          }
        }
        if (wins) {
          best = c;
        }
      }
      ASSERT_EQ(trace.selection, best)
          << "tb=" << static_cast<int>(tb) << " trial=" << trial;
    }
  }
}

class SelectionQueueSizeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SelectionQueueSizeTest, SaturationKeepsSelectionWellDefined) {
  // Queues deeper than 7 saturate the 3-bit encoders but the selection
  // must stay within range and prefer a matching preset.
  const unsigned queue_size = GetParam();
  const ConfigSelectionUnit unit(default_steering_set());
  // FP-MDU demand: only the float config adds FP-MDU capacity, so the
  // choice is unambiguous at any queue depth.
  std::vector<Opcode> ops(queue_size, Opcode::kFmul);
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  const std::array<unsigned, kNumCandidates> cost{0, 8, 8, 8};
  const SelectionTrace trace = unit.select(ops, ffu_only, cost);
  EXPECT_LT(trace.selection, kNumCandidates);
  EXPECT_EQ(trace.selection, 3u);  // float config
  EXPECT_LE(trace.required[fu_index(FuType::kFpMdu)], 7);
}

INSTANTIATE_TEST_SUITE_P(DepthSweep, SelectionQueueSizeTest,
                         ::testing::Values(1u, 7u, 8u, 15u, 31u));

TEST(CircuitCost, ExactDividerCostsStrictlyMore) {
  const CircuitCost approx = cem_approx_cost();
  const CircuitCost exact = cem_exact_cost();
  EXPECT_GT(exact.gates, 2 * approx.gates);
  EXPECT_GT(exact.depth, 2 * approx.depth);
  const CircuitCost unit_a = selection_unit_cost(7, false);
  const CircuitCost unit_e = selection_unit_cost(7, true);
  EXPECT_GT(unit_e.gates, unit_a.gates);
  EXPECT_GT(unit_e.depth, unit_a.depth);
}

TEST(CircuitCost, ScalesWithQueueDepth) {
  const CircuitCost q7 = selection_unit_cost(7, false);
  const CircuitCost q15 = selection_unit_cost(15, false);
  EXPECT_GT(q15.gates, q7.gates) << "more decoders and wider popcounts";
}

TEST(CircuitCost, CompositionRules) {
  const CircuitCost a{10, 3};
  const CircuitCost b{5, 2};
  const CircuitCost serial = a + b;
  EXPECT_EQ(serial.gates, 15u);
  EXPECT_EQ(serial.depth, 5u);
  const CircuitCost par = CircuitCost::parallel(a, 4);
  EXPECT_EQ(par.gates, 40u);
  EXPECT_EQ(par.depth, 3u);
}

TEST(Selection, TraceExposesAllFourStages) {
  const ConfigSelectionUnit unit(default_steering_set());
  const Opcode ops[] = {Opcode::kAdd, Opcode::kFmul};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  const SelectionTrace trace = unit.select(ops, ffu_only, zero_cost());
  ASSERT_EQ(trace.num_entries, 2u);
  EXPECT_TRUE(trace.one_hots[0].test(fu_index(FuType::kIntAlu)));
  EXPECT_TRUE(trace.one_hots[1].test(fu_index(FuType::kFpMdu)));
  EXPECT_EQ(trace.required[fu_index(FuType::kIntAlu)], 1);
  EXPECT_LT(trace.selection, kNumCandidates);
}

}  // namespace
}  // namespace steersim
