// Unit tests for Table-1 encodings, slot costs, the resource allocation
// vector, canonical placement, region recovery, diffs, and the steering
// bases.
#include <gtest/gtest.h>

#include "config/steering_set.hpp"

namespace steersim {
namespace {

TEST(Encoding, Table1Codes) {
  EXPECT_EQ(encoding_of(FuType::kIntAlu), 0b001);
  EXPECT_EQ(encoding_of(FuType::kIntMdu), 0b010);
  EXPECT_EQ(encoding_of(FuType::kLsu), 0b011);
  EXPECT_EQ(encoding_of(FuType::kFpAlu), 0b100);
  EXPECT_EQ(encoding_of(FuType::kFpMdu), 0b101);
}

TEST(Encoding, RoundTripAndSpecialCodes) {
  for (const FuType t : kAllFuTypes) {
    EXPECT_EQ(type_from_encoding(encoding_of(t)), t);
  }
  EXPECT_FALSE(type_from_encoding(kEncEmpty).has_value());
  EXPECT_FALSE(type_from_encoding(kEncContinuation).has_value());
  EXPECT_FALSE(type_from_encoding(0b110).has_value());
}

TEST(Encoding, SlotCosts) {
  EXPECT_EQ(slot_cost(FuType::kIntAlu), 1u);
  EXPECT_EQ(slot_cost(FuType::kLsu), 1u);
  EXPECT_EQ(slot_cost(FuType::kIntMdu), 2u);
  EXPECT_EQ(slot_cost(FuType::kFpAlu), 3u);
  EXPECT_EQ(slot_cost(FuType::kFpMdu), 3u);
}

TEST(Encoding, SlotsUsed) {
  const FuCounts counts = {4, 1, 2, 0, 0};
  EXPECT_EQ(slots_used(counts), 8u);
  const FuCounts fp = {0, 0, 0, 1, 1};
  EXPECT_EQ(slots_used(fp), 6u);
}

TEST(Allocation, EmptyByDefault) {
  const AllocationVector alloc(8);
  EXPECT_EQ(alloc.num_slots(), 8u);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(alloc.code(i), kEncEmpty);
  }
  EXPECT_EQ(alloc.regions().size(), 0u);
}

TEST(Allocation, PlaceWritesHeadAndContinuations) {
  // 1 IntMdu (2 slots) + 1 FpAlu (3 slots) + 1 Lsu.
  const FuCounts counts = {0, 1, 1, 1, 0};
  const AllocationVector alloc = AllocationVector::place(counts, 8);
  // Canonical order: IntMdu @0-1, Lsu @2, FpAlu @3-5.
  EXPECT_EQ(alloc.code(0), kEncIntMdu);
  EXPECT_EQ(alloc.code(1), kEncContinuation);
  EXPECT_EQ(alloc.code(2), kEncLsu);
  EXPECT_EQ(alloc.code(3), kEncFpAlu);
  EXPECT_EQ(alloc.code(4), kEncContinuation);
  EXPECT_EQ(alloc.code(5), kEncContinuation);
  EXPECT_EQ(alloc.code(6), kEncEmpty);
  EXPECT_EQ(alloc.counts(), counts);
}

TEST(Allocation, RegionsRecoverPlacement) {
  const FuCounts counts = {2, 1, 0, 0, 1};
  const auto alloc = AllocationVector::place(counts, 8);
  const auto regions = alloc.regions();
  ASSERT_EQ(regions.size(), 4u);
  EXPECT_EQ(regions[0], (SlotRegion{FuType::kIntAlu, 0, 1}));
  EXPECT_EQ(regions[1], (SlotRegion{FuType::kIntAlu, 1, 1}));
  EXPECT_EQ(regions[2], (SlotRegion{FuType::kIntMdu, 2, 2}));
  EXPECT_EQ(regions[3], (SlotRegion{FuType::kFpMdu, 4, 3}));
}

TEST(Allocation, DiffIsXorLike) {
  const auto a = AllocationVector::place({4, 1, 2, 0, 0}, 8);
  const auto b = AllocationVector::place({4, 1, 2, 0, 0}, 8);
  EXPECT_TRUE(a.diff(b).none());

  const auto c = AllocationVector::place({2, 0, 3, 1, 0}, 8);
  const auto diff = a.diff(c);
  EXPECT_TRUE(diff.any());
  // Slots 0 and 1 hold IntAlu in both layouts: no rewrite needed there.
  EXPECT_FALSE(diff.test(0));
  EXPECT_FALSE(diff.test(1));
  EXPECT_TRUE(diff.test(2));
}

TEST(Allocation, ClearSpanOrphansContinuationsSafely) {
  auto alloc = AllocationVector::place({0, 0, 0, 1, 0}, 8);  // FpAlu @0-2
  alloc.clear_span(0, 1);  // head gone, continuations at 1,2 orphaned
  const auto regions = alloc.regions();
  EXPECT_EQ(regions.size(), 0u);  // orphaned continuations form no unit
  const FuCounts empty{};
  EXPECT_EQ(alloc.counts(), empty);
}

TEST(Allocation, ToStringFormat) {
  const auto alloc = AllocationVector::place({1, 1, 0, 0, 0}, 5);
  EXPECT_EQ(alloc.to_string(), "ALU MDU > . .");
}

TEST(SteeringSet, DefaultTable1Reconstruction) {
  const SteeringSet set = default_steering_set();
  EXPECT_TRUE(set.feasible());
  EXPECT_EQ(set.num_slots, 8u);
  // FFUs: one of each type.
  for (const FuType t : kAllFuTypes) {
    EXPECT_EQ(set.ffu[fu_index(t)], 1);
  }
  // Every preset fills exactly the 8-slot budget.
  for (unsigned p = 0; p < kNumPresetConfigs; ++p) {
    EXPECT_EQ(slots_used(set.presets[p]), 8u) << p;
  }
  // The "integer" preset is the only one with extra Int-MDU capacity; the
  // "float" preset is the only one with extra FP-MDU capacity.
  EXPECT_EQ(set.presets[0][fu_index(FuType::kIntMdu)], 1);
  EXPECT_EQ(set.presets[1][fu_index(FuType::kIntMdu)], 0);
  EXPECT_EQ(set.presets[2][fu_index(FuType::kFpMdu)], 1);
}

TEST(SteeringSet, PresetTotalsIncludeFfus) {
  const SteeringSet set = default_steering_set();
  const FuCounts total = set.preset_total(0);
  EXPECT_EQ(total[fu_index(FuType::kIntAlu)], 5);  // 4 RFU + 1 FFU
  EXPECT_EQ(total[fu_index(FuType::kFpMdu)], 1);   // FFU only
}

TEST(SteeringSet, PresetAllocationsAreCanonical) {
  const SteeringSet set = default_steering_set();
  for (unsigned p = 0; p < kNumPresetConfigs; ++p) {
    const auto alloc = set.preset_allocation(p);
    EXPECT_EQ(alloc.counts(), set.presets[p]) << p;
  }
}

TEST(SteeringSet, AllBasesFeasible) {
  for (const SteeringSet& basis : all_bases()) {
    EXPECT_TRUE(basis.feasible()) << basis.name;
    EXPECT_FALSE(basis.name.empty());
  }
}

}  // namespace
}  // namespace steersim
