// Assembler tests: syntax, labels, data directives, pseudo-instructions,
// and error reporting.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace steersim {
namespace {

TEST(Assembler, MinimalProgram) {
  const Program p = assemble("  addi r1, r0, 5\n  halt\n");
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0], make_ri(Opcode::kAddi, 1, 0, 5));
  EXPECT_EQ(p.code[1].op, Opcode::kHalt);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
# full-line comment
  addi r1, r0, 1   # trailing comment
  ; semicolon comment
  halt ; done
)");
  EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, BackwardAndForwardBranchLabels) {
  const Program p = assemble(R"(
start:
  addi r1, r0, 3
loop:
  addi r1, r1, -1
  bne r1, r0, loop
  beq r0, r0, end
  addi r2, r0, 99
end:
  halt
)");
  ASSERT_EQ(p.code.size(), 6u);
  EXPECT_EQ(p.code[2].op, Opcode::kBne);
  EXPECT_EQ(p.code[2].imm, -1);  // back to 'loop' at pc 1 from pc 2
  EXPECT_EQ(p.code[3].op, Opcode::kBeq);
  EXPECT_EQ(p.code[3].imm, 2);  // forward to 'end' at pc 5 from pc 3
  EXPECT_EQ(p.code_labels.at("loop"), 1u);
  EXPECT_EQ(p.code_labels.at("end"), 5u);
}

TEST(Assembler, DataSectionWordsDoublesSpace) {
  const Program p = assemble(R"(
.data
a: .word 1 -2 0x10
b: .double 1.5
c: .space 3
.text
  halt
)");
  ASSERT_EQ(p.data.size(), 7u);
  EXPECT_EQ(p.data[0], 1);
  EXPECT_EQ(p.data[1], -2);
  EXPECT_EQ(p.data[2], 16);
  EXPECT_EQ(p.data[4], 0);
  EXPECT_EQ(p.data_labels.at("a"), 0u);
  EXPECT_EQ(p.data_labels.at("b"), 24u);
  EXPECT_EQ(p.data_labels.at("c"), 32u);
}

TEST(Assembler, LoadStoreOperandSyntax) {
  const Program p = assemble(R"(
  lw r1, 8(r2)
  sw r3, -16(r4)
  flw f1, 0(r5)
  fsw f2, 24(r6)
  lb r7, 3(r8)
  halt
)");
  EXPECT_EQ(p.code[0], make_ri(Opcode::kLw, 1, 2, 8));
  EXPECT_EQ(p.code[1], make_store(Opcode::kSw, 3, 4, -16));
  EXPECT_EQ(p.code[2], make_ri(Opcode::kFlw, 1, 5, 0));
  EXPECT_EQ(p.code[3], make_store(Opcode::kFsw, 2, 6, 24));
  EXPECT_EQ(p.code[4], make_ri(Opcode::kLb, 7, 8, 3));
}

TEST(Assembler, PseudoLiSmallAndLarge) {
  const Program small = assemble("  li r1, 100\n  halt\n");
  ASSERT_EQ(small.code.size(), 2u);
  EXPECT_EQ(small.code[0], make_ri(Opcode::kAddi, 1, 0, 100));

  const Program large = assemble("  li r1, 1000000\n  halt\n");
  ASSERT_EQ(large.code.size(), 3u);
  EXPECT_EQ(large.code[0].op, Opcode::kLui);
  EXPECT_EQ(large.code[1].op, Opcode::kOri);
  // (hi << 14) | lo == 1000000
  const std::int64_t reconstructed =
      (static_cast<std::int64_t>(large.code[0].imm) << 14) |
      large.code[1].imm;
  EXPECT_EQ(reconstructed, 1000000);

  const Program negative = assemble("  li r1, -100000\n  halt\n");
  ASSERT_EQ(negative.code.size(), 3u);
  const std::int64_t neg =
      (static_cast<std::int64_t>(negative.code[0].imm) << 14) |
      negative.code[1].imm;
  EXPECT_EQ(neg, -100000);
}

TEST(Assembler, PseudoLaMvCallRet) {
  const Program p = assemble(R"(
.data
  buf: .space 4
  tag: .word 7
.text
  la r1, tag
  mv r2, r1
  call fn
  halt
fn:
  ret
)");
  // la resolves to the byte address of 'tag' (4 words of buf = 32 bytes).
  EXPECT_EQ(p.code[0], make_ri(Opcode::kAddi, 1, 0, 32));
  EXPECT_EQ(p.code[1], make_rr(Opcode::kAdd, 2, 1, 0));
  EXPECT_EQ(p.code[2].op, Opcode::kJal);
  EXPECT_EQ(p.code[2].rd, kLinkReg);
  EXPECT_EQ(p.code[4].op, Opcode::kJr);
  EXPECT_EQ(p.code[4].rs1, kLinkReg);
}

TEST(Assembler, RegisterAliases) {
  const Program p = assemble("  add r1, zero, ra\n  mv sp, r1\n  halt\n");
  EXPECT_EQ(p.code[0], make_rr(Opcode::kAdd, 1, 0, 31));
  EXPECT_EQ(p.code[1], make_rr(Opcode::kAdd, 30, 1, 0));
}

TEST(Assembler, JalWithExplicitLinkRegister) {
  const Program p = assemble(R"(
  jal r5, target
target:
  halt
)");
  EXPECT_EQ(p.code[0].rd, 5);
  EXPECT_EQ(p.code[0].imm, 1);
}

TEST(AssemblerErrors, ReportLineNumbers) {
  try {
    assemble("  addi r1, r0, 1\n  bogus r1\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(AssemblerErrors, UnknownLabel) {
  EXPECT_THROW(assemble("  beq r0, r0, nowhere\n  halt\n"), AssemblyError);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble("x:\n  nop\nx:\n  halt\n"), AssemblyError);
}

TEST(AssemblerErrors, BadRegisterClass) {
  EXPECT_THROW(assemble("  fadd f1, r2, f3\n  halt\n"), AssemblyError);
  EXPECT_THROW(assemble("  add r1, f2, r3\n  halt\n"), AssemblyError);
}

TEST(AssemblerErrors, ImmediateRange) {
  EXPECT_THROW(assemble("  addi r1, r0, 999999\n"), AssemblyError);
  EXPECT_NO_THROW(assemble("  addi r1, r0, 16383\n  halt\n"));
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble("  add r1, r2\n"), AssemblyError);
  EXPECT_THROW(assemble("  halt r1\n"), AssemblyError);
}

TEST(Assembler, NumericBranchOffsets) {
  const Program p = assemble("  beq r0, r0, 2\n  nop\n  halt\n");
  EXPECT_EQ(p.code[0].imm, 2);
}

TEST(AssemblerErrors, NegativeSpace) {
  EXPECT_THROW(assemble(".data\nbuf: .space -1\n.text\n  halt\n"),
               AssemblyError);
}

TEST(AssemblerErrors, DataDirectiveNeedsOperandCount) {
  EXPECT_THROW(assemble(".data\n  .space\n.text\n  halt\n"), AssemblyError);
  EXPECT_THROW(assemble(".data\n  .bogus 1\n.text\n  halt\n"),
               AssemblyError);
}

TEST(AssemblerErrors, LiOutOfRange) {
  // |value| beyond 29 bits cannot be materialized by lui+ori.
  EXPECT_THROW(assemble("  li r1, 999999999999\n  halt\n"), AssemblyError);
}

TEST(AssemblerErrors, MalformedMemOperand) {
  EXPECT_THROW(assemble("  lw r1, r2\n  halt\n"), AssemblyError);
  EXPECT_THROW(assemble("  lw r1, 8(r2\n  halt\n"), AssemblyError);
  EXPECT_THROW(assemble("  lw r1, 99999(r2)\n  halt\n"), AssemblyError);
}

TEST(AssemblerErrors, RegisterIndexOutOfRange) {
  EXPECT_THROW(assemble("  add r1, r32, r2\n  halt\n"), AssemblyError);
  EXPECT_THROW(assemble("  fadd f1, f99, f2\n  halt\n"), AssemblyError);
}

TEST(Assembler, DataLabelOnItsOwnLine) {
  const Program p = assemble(R"(
.data
standalone:
  .word 42
.text
  halt
)");
  EXPECT_EQ(p.data_labels.at("standalone"), 0u);
  EXPECT_EQ(p.data[0], 42);
}

TEST(Assembler, LabelsOnSameLineAsInstruction) {
  const Program p = assemble("top:  addi r1, r0, 1\n  j top\n");
  EXPECT_EQ(p.code_labels.at("top"), 0u);
  EXPECT_EQ(p.code[1].imm, -1);
}

TEST(Assembler, HexAndNegativeImmediates) {
  const Program p = assemble("  addi r1, r0, 0x7f\n  addi r2, r0, -0x10\n"
                             "  halt\n");
  EXPECT_EQ(p.code[0].imm, 127);
  EXPECT_EQ(p.code[1].imm, -16);
}

TEST(Assembler, DoubleDirectiveBitPattern) {
  const Program p = assemble(".data\nd: .double 1.0\n.text\n  halt\n");
  EXPECT_EQ(p.data[0], 0x3ff0000000000000LL);
}

/// Asserts that assembling `source` fails with an error locating the
/// problem at exactly `expected_line` and mentioning `needle` — a bad line
/// must never crash, be skipped silently, or be blamed on another line.
void expect_error_at_line(const std::string& source, int expected_line,
                          const std::string& needle) {
  try {
    assemble(source);
    FAIL() << "expected AssemblyError for:\n" << source;
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), expected_line) << e.what();
    const std::string what = e.what();
    EXPECT_NE(what.find("line " + std::to_string(expected_line)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

TEST(AssemblerErrors, MalformedOpcodeNamesItsSourceLine) {
  expect_error_at_line("  addi r1, r0, 1\n  nop\n  frobnicate r1, r2\n"
                       "  halt\n",
                       3, "frobnicate");
}

TEST(AssemblerErrors, OutOfRangeRegisterNamesItsSourceLine) {
  expect_error_at_line("# leading comment\n  nop\n\n  add r1, r32, r2\n"
                       "  halt\n",
                       4, "r32");
  expect_error_at_line("  fadd f1, f2, f40\n  halt\n", 1, "f40");
}

TEST(AssemblerErrors, BadImmediateNamesItsSourceLine) {
  // Non-numeric immediate (not a known label either).
  expect_error_at_line("  nop\n  addi r1, r0, banana\n  halt\n", 2,
                       "banana");
  // Out-of-range immediate.
  expect_error_at_line("  nop\n  nop\n  addi r1, r0, 999999\n  halt\n", 3,
                       "999999");
}

}  // namespace
}  // namespace steersim
