// Reproduction-shape regression tests: the qualitative claims of
// EXPERIMENTS.md, asserted on reduced-size workloads so they run in CI.
// These lock in *who wins and by roughly what factor*, not absolute
// numbers — exactly the reproduction contract. If a change to the
// scheduler, loader or selection unit breaks a paper-level conclusion,
// this suite fails before a human reads a bench table.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "workload/synthetic.hpp"

namespace steersim {
namespace {

double ipc_of(const Program& program, const MachineConfig& cfg,
              const PolicySpec& spec) {
  return simulate(program, cfg, spec).stats.ipc();
}

Program corner(const MixSpec& mix, std::uint64_t seed = 5) {
  return generate_synthetic(single_phase(mix, 64, 250, seed));
}

TEST(Shapes, SteeringBeatsFfuOnlyOnEveryMix) {
  MachineConfig cfg;
  for (const MixSpec& mix : standard_mixes()) {
    const Program p = corner(mix);
    const double steered = ipc_of(p, cfg, {.kind = PolicyKind::kSteered});
    const double ffu = ipc_of(p, cfg, {.kind = PolicyKind::kStaticFfu});
    EXPECT_GT(steered, 1.05 * ffu) << mix.name;
  }
}

TEST(Shapes, SteeringTracksBestPresetOnCornerMixes) {
  MachineConfig cfg;
  const MixSpec corners[] = {int_heavy_mix(), mem_heavy_mix(),
                             fp_heavy_mix(), mdu_heavy_mix()};
  for (const MixSpec& mix : corners) {
    const Program p = corner(mix);
    const double steered = ipc_of(p, cfg, {.kind = PolicyKind::kSteered});
    double best_preset = 0.0;
    for (unsigned idx = 0; idx < kNumPresetConfigs; ++idx) {
      best_preset = std::max(
          best_preset, ipc_of(p, cfg,
                              {.kind = PolicyKind::kStaticPreset,
                               .preset_index = idx}));
    }
    EXPECT_GT(steered, 0.93 * best_preset) << mix.name;
  }
}

TEST(Shapes, SteeringNearOracleEverywhere) {
  MachineConfig cfg;
  for (const MixSpec& mix : standard_mixes()) {
    const Program p = corner(mix);
    const double steered = ipc_of(p, cfg, {.kind = PolicyKind::kSteered});
    const double oracle = ipc_of(p, cfg, {.kind = PolicyKind::kOracle});
    EXPECT_GT(steered, 0.85 * oracle) << mix.name;
  }
}

TEST(Shapes, PhasedCodeFavorsSteeringOverFrozenChoices) {
  MachineConfig cfg;
  const Program phased = generate_synthetic(alternating_phases(4096, 3, 5));
  const double steered = ipc_of(phased, cfg, {.kind = PolicyKind::kSteered});
  const double ffu = ipc_of(phased, cfg, {.kind = PolicyKind::kStaticFfu});
  EXPECT_GT(steered, 1.2 * ffu);
  for (unsigned idx = 0; idx < kNumPresetConfigs; ++idx) {
    const double frozen = ipc_of(
        phased, cfg,
        {.kind = PolicyKind::kStaticPreset, .preset_index = idx});
    EXPECT_GT(steered, 0.95 * frozen) << "preset " << idx;
  }
}

TEST(Shapes, PartialReconfigBeatsFullOnFluctuatingDemand) {
  MachineConfig cfg;
  const Program mixed = corner(mixed_mix());
  const double partial = ipc_of(mixed, cfg, {.kind = PolicyKind::kSteered});
  const double full =
      ipc_of(mixed, cfg, {.kind = PolicyKind::kFullReconfig});
  EXPECT_GT(partial, 1.1 * full)
      << "whole-fabric rewrites must hurt on fluctuating mixes";
}

TEST(Shapes, SteeringDegradesGracefullyWithRewriteCost) {
  const Program phased = generate_synthetic(alternating_phases(4096, 3, 5));
  MachineConfig cheap;
  cheap.loader.cycles_per_slot = 1;
  MachineConfig expensive;
  expensive.loader.cycles_per_slot = 256;
  const double at_cheap =
      ipc_of(phased, cheap, {.kind = PolicyKind::kSteered});
  const double at_expensive =
      ipc_of(phased, expensive, {.kind = PolicyKind::kSteered});
  EXPECT_GT(at_cheap, at_expensive);
  EXPECT_GT(at_expensive, 0.9 * at_cheap)
      << "degradation must be graceful, not a cliff";
}

TEST(Shapes, OrthogonalBasisBeatsDegenerateOnGeomean) {
  auto geomean_for = [](const SteeringSet& basis) {
    MachineConfig cfg;
    cfg.steering = basis;
    cfg.loader.num_slots = basis.num_slots;
    double log_sum = 0.0;
    int n = 0;
    for (const MixSpec& mix : standard_mixes()) {
      log_sum += std::log(
          ipc_of(corner(mix), cfg, {.kind = PolicyKind::kSteered}));
      ++n;
    }
    return std::exp(log_sum / n);
  };
  EXPECT_GT(geomean_for(default_steering_set()),
            geomean_for(degenerate_basis()));
}

TEST(Shapes, HysteresisCutsChurnWithoutIpcLoss) {
  // The E11 workload where steering churns hardest: mem-heavy queues
  // whose LSU/ALU balance flickers around a CEM tie.
  MachineConfig cfg;
  const Program churny =
      generate_synthetic(single_phase(mem_heavy_mix(), 64, 400, 123));
  const SimResult base =
      simulate(churny, cfg, {.kind = PolicyKind::kSteered});
  const SimResult damped =
      simulate(churny, cfg, {.kind = PolicyKind::kSteered, .confirm = 4});
  ASSERT_GT(base.loader.slots_rewritten, 100u)
      << "workload must exhibit churn for this test to mean anything";
  EXPECT_LT(damped.loader.slots_rewritten,
            base.loader.slots_rewritten / 5);
  EXPECT_GT(damped.stats.ipc(), 0.95 * base.stats.ipc());
}

TEST(Shapes, RandomSteeringIsWorseThanPaperSteering) {
  MachineConfig cfg;
  const Program phased = generate_synthetic(alternating_phases(4096, 3, 5));
  const double steered = ipc_of(phased, cfg, {.kind = PolicyKind::kSteered});
  const double random = ipc_of(phased, cfg, {.kind = PolicyKind::kRandom});
  EXPECT_GT(steered, random);
}

TEST(Shapes, CemApproxAgreementMajority) {
  const SteeringSet set = default_steering_set();
  const ConfigSelectionUnit approx(set, CemMode::kShiftApprox);
  const ConfigSelectionUnit exact(set, CemMode::kExactDivide);
  Xoshiro256 rng(99);
  unsigned agree = 0;
  const unsigned trials = 5000;
  for (unsigned i = 0; i < trials; ++i) {
    std::vector<Opcode> ops;
    for (std::uint64_t k = rng.next_below(8); k > 0; --k) {
      ops.push_back(static_cast<Opcode>(rng.next_below(kNumOpcodes)));
    }
    FuCounts current{};
    for (auto& c : current) {
      c = static_cast<std::uint8_t>(1 + rng.next_below(5));
    }
    std::array<unsigned, kNumCandidates> cost{};
    for (unsigned p = 1; p < kNumCandidates; ++p) {
      cost[p] = static_cast<unsigned>(rng.next_below(9));
    }
    if (approx.select(ops, current, cost).selection ==
        exact.select(ops, current, cost).selection) {
      ++agree;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / trials, 0.6)
      << "the Fig. 3c approximation must agree with exact division on a "
         "solid majority of states";
}

}  // namespace
}  // namespace steersim
