// Unit tests for steering policies: the paper's manager drives the loader
// toward the matching preset; the oracle packer; static/random behaviour.
#include <gtest/gtest.h>

#include "core/policy.hpp"

namespace steersim {
namespace {

const SteeringSet kSet = default_steering_set();

LoaderParams loader_params() {
  LoaderParams p;
  p.num_slots = kSet.num_slots;
  p.cycles_per_slot = 1;
  return p;
}

SteerContext context(std::span<const Opcode> ops, const FuCounts& current) {
  SteerContext ctx;
  ctx.ready_ops = ops;
  ctx.current_total = current;
  return ctx;
}

TEST(SteeredPolicy, RequestsIntegerPresetForIntegerQueue) {
  SteeredPolicy policy(kSet);
  ConfigurationLoader loader(loader_params(), AllocationVector(8));
  const Opcode ops[] = {Opcode::kAdd, Opcode::kSub, Opcode::kXor,
                        Opcode::kAdd, Opcode::kMul};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  policy.steer(context(ops, ffu_only), loader);
  EXPECT_EQ(loader.target(), kSet.preset_allocation(0));
  EXPECT_EQ(policy.stats().selections[1], 1u);
}

TEST(SteeredPolicy, SelectingCurrentFreezesTarget) {
  SteeredPolicy policy(kSet);
  // Fabric already holds the float preset; queue is FP work.
  ConfigurationLoader loader(loader_params(), kSet.preset_allocation(2));
  const Opcode ops[] = {Opcode::kFadd, Opcode::kFmul};
  policy.steer(context(ops, kSet.preset_total(2)), loader);
  EXPECT_EQ(policy.stats().selections[0], 1u);
  EXPECT_EQ(loader.target(), loader.allocation());
}

TEST(SteeredPolicy, IntervalThrottlesDecisions) {
  SteeredPolicy policy(kSet, CemMode::kShiftApprox, TieBreak::kPaper,
                       /*interval=*/4);
  ConfigurationLoader loader(loader_params(), AllocationVector(8));
  const Opcode ops[] = {Opcode::kAdd, Opcode::kAdd, Opcode::kAdd};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  for (int c = 0; c < 8; ++c) {
    policy.steer(context(ops, ffu_only), loader);
  }
  EXPECT_EQ(policy.stats().steer_events, 2u);  // cycles 0 and 4
}

TEST(SteeredPolicy, NameReflectsVariant) {
  EXPECT_EQ(SteeredPolicy(kSet).name(), "steered");
  EXPECT_EQ(SteeredPolicy(kSet, CemMode::kExactDivide).name(),
            "steered-exact");
}

TEST(OraclePack, ProvisionsForDominantDemand) {
  // Demand: 5 IntAlu, 1 Lsu against single FFUs -> mostly ALUs.
  FuCounts required{};
  required[fu_index(FuType::kIntAlu)] = 5;
  required[fu_index(FuType::kLsu)] = 1;
  const FuCounts ffu = {1, 1, 1, 1, 1};
  const auto alloc = OraclePolicy::pack(required, ffu, 8);
  const FuCounts counts = alloc.counts();
  EXPECT_GE(counts[fu_index(FuType::kIntAlu)], 4u);
  EXPECT_GE(counts[fu_index(FuType::kLsu)], 1u);
  EXPECT_EQ(counts[fu_index(FuType::kFpMdu)], 0u);
}

TEST(OraclePack, EmptyDemandLeavesFabricEmpty) {
  const FuCounts required{};
  const FuCounts ffu = {1, 1, 1, 1, 1};
  const auto alloc = OraclePolicy::pack(required, ffu, 8);
  EXPECT_EQ(alloc.regions().size(), 0u);
}

TEST(OraclePack, FillsAllSlotsUnderUniformDemand) {
  FuCounts required{};
  required.fill(3);
  const FuCounts ffu = {1, 1, 1, 1, 1};
  const auto alloc = OraclePolicy::pack(required, ffu, 8);
  unsigned used = 0;
  for (const auto& region : alloc.regions()) {
    used += region.len;
  }
  EXPECT_GE(used, 7u) << "at most one dead slot under mixed demand";
}

TEST(OraclePack, ZeroFfuTypesGetAbsolutePriority) {
  FuCounts required{};
  required[fu_index(FuType::kFpMdu)] = 1;
  required[fu_index(FuType::kIntAlu)] = 7;
  FuCounts no_fp_ffu = {1, 1, 1, 1, 0};
  const auto alloc = OraclePolicy::pack(required, no_fp_ffu, 8);
  EXPECT_GE(alloc.counts()[fu_index(FuType::kFpMdu)], 1u)
      << "a type with zero configured units must be provisioned first";
}

TEST(StaticPolicy, NeverTouchesLoader) {
  StaticPolicy policy("static-test");
  ConfigurationLoader loader(loader_params(), kSet.preset_allocation(1));
  const Opcode ops[] = {Opcode::kFadd, Opcode::kFmul, Opcode::kFsqrt};
  policy.steer(context(ops, kSet.preset_total(1)), loader);
  EXPECT_EQ(loader.stats().targets_requested, 0u);
  EXPECT_EQ(loader.target(), kSet.preset_allocation(1));
}

TEST(SteeredPolicy, HysteresisDelaysRetarget) {
  SteeredPolicy policy(kSet, CemMode::kShiftApprox, TieBreak::kPaper,
                       /*interval=*/1, /*confirm=*/3);
  ConfigurationLoader loader(loader_params(), AllocationVector(8));
  const Opcode ops[] = {Opcode::kAdd, Opcode::kSub, Opcode::kXor,
                        Opcode::kAdd, Opcode::kMul};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  const AllocationVector empty(8);
  policy.steer(context(ops, ffu_only), loader);
  EXPECT_EQ(loader.target(), empty) << "1st selection: no retarget yet";
  policy.steer(context(ops, ffu_only), loader);
  EXPECT_EQ(loader.target(), empty) << "2nd selection: still pending";
  policy.steer(context(ops, ffu_only), loader);
  EXPECT_EQ(loader.target(), kSet.preset_allocation(0))
      << "3rd consecutive selection commits";
}

TEST(SteeredPolicy, HysteresisStreakResetsOnDifferentSelection) {
  SteeredPolicy policy(kSet, CemMode::kShiftApprox, TieBreak::kPaper, 1,
                       /*confirm=*/2);
  ConfigurationLoader loader(loader_params(), AllocationVector(8));
  const Opcode int_ops[] = {Opcode::kAdd, Opcode::kAdd, Opcode::kAdd,
                            Opcode::kAdd, Opcode::kMul};
  const Opcode fp_ops[] = {Opcode::kFadd, Opcode::kFmul, Opcode::kFadd,
                           Opcode::kFsqrt, Opcode::kFlw};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  const AllocationVector empty(8);
  policy.steer(context(int_ops, ffu_only), loader);  // cfg1, streak 1
  policy.steer(context(fp_ops, ffu_only), loader);   // cfg3, streak 1
  policy.steer(context(int_ops, ffu_only), loader);  // cfg1, streak 1
  EXPECT_EQ(loader.target(), empty) << "alternating selections never commit";
  policy.steer(context(int_ops, ffu_only), loader);  // cfg1, streak 2
  EXPECT_EQ(loader.target(), kSet.preset_allocation(0));
}

TEST(GreedyPolicy, PacksForSustainedDemand) {
  GreedyPolicy policy(kSet, /*interval=*/4, /*smoothing=*/0.5);
  ConfigurationLoader loader(loader_params(), AllocationVector(8));
  const Opcode ops[] = {Opcode::kAdd, Opcode::kAdd, Opcode::kAdd,
                        Opcode::kAdd, Opcode::kLw};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  for (int c = 0; c < 32; ++c) {
    policy.steer(context(ops, ffu_only), loader);
    loader.step(SlotMask{});
  }
  const FuCounts target = loader.target().counts();
  EXPECT_GE(target[fu_index(FuType::kIntAlu)], 3u)
      << "sustained ALU demand must dominate the pack";
  EXPECT_EQ(target[fu_index(FuType::kFpMdu)], 0u);
}

TEST(GreedyPolicy, NoDemandNoRetargeting) {
  GreedyPolicy policy(kSet, 2, 0.5);
  ConfigurationLoader loader(loader_params(), AllocationVector(8));
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  for (int c = 0; c < 16; ++c) {
    policy.steer(context({}, ffu_only), loader);
    loader.step(SlotMask{});
  }
  EXPECT_EQ(loader.stats().targets_requested, 0u);
}

TEST(GreedyPolicy, EqualCountsRepackingSuppressed) {
  // Once a target providing the demanded counts is set, repacking to the
  // same counts (different slot layout) must not retarget.
  GreedyPolicy policy(kSet, 1, 1.0);
  ConfigurationLoader loader(loader_params(), AllocationVector(8));
  const Opcode ops[] = {Opcode::kAdd, Opcode::kAdd, Opcode::kAdd};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  for (int c = 0; c < 20; ++c) {
    policy.steer(context(ops, ffu_only), loader);
    loader.step(SlotMask{});
  }
  EXPECT_LE(loader.stats().targets_requested, 2u);
}

TEST(RandomPolicy, DeterministicPerSeedAndCoversCandidates) {
  const Opcode ops[] = {Opcode::kAdd};
  const FuCounts ffu_only = {1, 1, 1, 1, 1};
  auto run = [&](std::uint64_t seed) {
    RandomPolicy policy(kSet, seed, /*interval=*/1);
    ConfigurationLoader loader(loader_params(), AllocationVector(8));
    for (int c = 0; c < 200; ++c) {
      policy.steer(context(ops, ffu_only), loader);
    }
    return policy.stats().selections;
  };
  EXPECT_EQ(run(5), run(5));
  const auto counts = run(5);
  for (unsigned c = 0; c < kNumCandidates; ++c) {
    EXPECT_GT(counts[c], 0u) << c;
  }
}

}  // namespace
}  // namespace steersim
