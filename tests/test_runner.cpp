// Unit tests for the experiment harness: policy specs/labels, simulate()
// result bundles, the parallel sweep runner, and table/CSV rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/csv.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"
#include "workload/kernels.hpp"

namespace steersim {
namespace {

TEST(PolicySpec, Labels) {
  const SteeringSet set = default_steering_set();
  EXPECT_EQ(PolicySpec{}.label(set), "steered");
  PolicySpec exact;
  exact.cem = CemMode::kExactDivide;
  EXPECT_EQ(exact.label(set), "steered-exact");
  PolicySpec preset;
  preset.kind = PolicyKind::kStaticPreset;
  preset.preset_index = 2;
  EXPECT_EQ(preset.label(set), "static-float");
  PolicySpec throttled;
  throttled.interval = 8;
  EXPECT_EQ(throttled.label(set), "steered@8");
}

TEST(PolicySpec, StandardRosterShape) {
  const auto roster = standard_policies();
  ASSERT_EQ(roster.size(), 7u);
  EXPECT_EQ(roster.front().kind, PolicyKind::kSteered);
  EXPECT_EQ(roster.back().kind, PolicyKind::kOracle);
}

TEST(Simulate, ReturnsFullStatisticsBundle) {
  const Program p = kernel_by_name("dot_int").assemble_program();
  const MachineConfig cfg;
  const SimResult r = simulate(p, cfg, PolicySpec{});
  EXPECT_EQ(r.outcome, RunOutcome::kHalted);
  EXPECT_EQ(r.policy, "steered");
  EXPECT_GT(r.stats.retired, 0u);
  EXPECT_GT(r.stats.cycles, 0u);
  EXPECT_GT(r.stats.ipc(), 0.0);
  EXPECT_GT(r.wakeup.grants, 0u);
  EXPECT_GT(r.fetch.fetched, r.stats.retired - 1);
  EXPECT_GT(r.steering.steer_events, 0u);
}

TEST(Simulate, DeterministicAcrossRuns) {
  const Program p = kernel_by_name("histogram").assemble_program();
  const MachineConfig cfg;
  const SimResult a = simulate(p, cfg, PolicySpec{});
  const SimResult b = simulate(p, cfg, PolicySpec{});
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.retired, b.stats.retired);
  EXPECT_EQ(a.loader.slots_rewritten, b.loader.slots_rewritten);
}

TEST(ParallelMap, PreservesOrderAndRunsAllJobs) {
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 100; ++i) {
    jobs.emplace_back([i] { return i * i; });
  }
  const auto results = parallel_map(jobs, 8);
  ASSERT_EQ(results.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ParallelMap, SingleWorkerAndEmptyInput) {
  std::vector<std::function<int()>> none;
  EXPECT_TRUE(parallel_map(none).empty());
  std::vector<std::function<int()>> one;
  one.emplace_back([] { return 7; });
  EXPECT_EQ(parallel_map(one, 1).at(0), 7);
}

TEST(ParallelMap, ResultIndependentOfWorkerCount) {
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 37; ++i) {
    jobs.emplace_back([i] { return 3 * i + 1; });
  }
  EXPECT_EQ(parallel_map(jobs, 1), parallel_map(jobs, 13));
}

TEST(Table, AlignedRendering) {
  Table t({"name", "ipc"});
  t.add_row({"steered", "1.50"});
  t.add_row({"static-ffu", "0.75"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("steered"), std::string::npos);
  // Numeric cells right-align: "1.50" preceded by spaces up to width 4+.
  EXPECT_NE(out.find(" 1.50 |"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

TEST(Report, ContainsEverySection) {
  const Program p = kernel_by_name("saxpy").assemble_program();
  const SimResult r = simulate(p, MachineConfig{}, PolicySpec{});
  const std::string report = format_report(r);
  for (const char* needle :
       {"policy: steered", "throughput", "IPC", "front end",
        "branch mispredict rate", "scheduler", "configuration manager",
        "selections", "slots", "utilization", "Int-ALU", "FP-MDU"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, OutcomeNames) {
  SimResult r;
  r.policy = "x";
  r.outcome = RunOutcome::kFault;
  EXPECT_NE(format_report(r).find("fault"), std::string::npos);
  r.outcome = RunOutcome::kMaxCycles;
  EXPECT_NE(format_report(r).find("max-cycles"), std::string::npos);
}

TEST(Csv, QuotingAndRoundTrip) {
  const std::string path = ::testing::TempDir() + "/steersim_test.csv";
  {
    CsvWriter csv(path);
    csv.row({"a", "b,c", "d\"e"});
    csv.row({"1", "2", "3"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1,2,3");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace steersim
