#include "workload/synthetic.hpp"

#include <algorithm>
#include <array>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "isa/assembler.hpp"

namespace steersim {
namespace {

// Register conventions used by generated code.
constexpr unsigned kOuterCounter = 1;
constexpr unsigned kArrayBase = 2;
constexpr unsigned kLoopCounter = 3;
constexpr unsigned kIntPoolBase = 8;
constexpr unsigned kIntPoolSize = 16;
constexpr unsigned kFpPoolBase = 1;
constexpr unsigned kFpPoolSize = 16;

enum class Category : std::uint8_t {
  kIntAlu,
  kIntMul,
  kIntDiv,
  kLoad,
  kStore,
  kFpLoad,
  kFpStore,
  kFpAdd,
  kFpMul,
  kFpDiv,
  kBranch,
};

class BodyEmitter {
 public:
  BodyEmitter(const SyntheticSpec& spec, Xoshiro256& rng, std::string& out)
      : spec_(spec), rng_(rng), out_(out) {}

  void emit_body(const PhaseSpec& phase, unsigned phase_idx) {
    const MixSpec& mix = phase.mix;
    const std::array<std::pair<Category, double>, 11> weights = {{
        {Category::kIntAlu, mix.int_alu},
        {Category::kIntMul, mix.int_mul},
        {Category::kIntDiv, mix.int_div},
        {Category::kLoad, mix.load},
        {Category::kStore, mix.store},
        {Category::kFpLoad, mix.fp_load},
        {Category::kFpStore, mix.fp_store},
        {Category::kFpAdd, mix.fp_add},
        {Category::kFpMul, mix.fp_mul},
        {Category::kFpDiv, mix.fp_div},
        {Category::kBranch, mix.branch},
    }};
    const double total = mix.total();
    STEERSIM_EXPECTS(total > 0.0);

    for (unsigned i = 0; i < phase.body_length; ++i) {
      if (pending_skip_ > 0 && --pending_skip_ == 0) {
        out_ += skip_label_ + ":\n";
      }
      double pick = rng_.next_double() * total;
      Category cat = Category::kIntAlu;
      for (const auto& [c, w] : weights) {
        if (pick < w) {
          cat = c;
          break;
        }
        pick -= w;
      }
      // A branch as the final body instruction would need its landing
      // label outside the body; just use an ALU op instead.
      if (cat == Category::kBranch &&
          (pending_skip_ > 0 || i + 3 >= phase.body_length)) {
        cat = Category::kIntAlu;
      }
      emit_one(cat, phase_idx, i);
    }
    if (pending_skip_ > 0) {
      out_ += skip_label_ + ":\n";
      pending_skip_ = 0;
    }
  }

 private:
  std::string int_reg(unsigned idx) const {
    return "r" + std::to_string(kIntPoolBase + idx);
  }
  std::string fp_reg(unsigned idx) const {
    return "f" + std::to_string(kFpPoolBase + idx);
  }

  unsigned pick_int_src() {
    if (!recent_int_.empty() && rng_.next_bool(spec_.dep_density)) {
      return recent_int_[rng_.next_below(recent_int_.size())];
    }
    return static_cast<unsigned>(rng_.next_below(kIntPoolSize));
  }
  unsigned pick_fp_src() {
    if (!recent_fp_.empty() && rng_.next_bool(spec_.dep_density)) {
      return recent_fp_[rng_.next_below(recent_fp_.size())];
    }
    return static_cast<unsigned>(rng_.next_below(kFpPoolSize));
  }
  unsigned pick_int_dst() {
    const auto dst = static_cast<unsigned>(rng_.next_below(kIntPoolSize));
    note_recent(recent_int_, dst);
    return dst;
  }
  unsigned pick_fp_dst() {
    const auto dst = static_cast<unsigned>(rng_.next_below(kFpPoolSize));
    note_recent(recent_fp_, dst);
    return dst;
  }
  static void note_recent(std::vector<unsigned>& recent, unsigned reg) {
    recent.push_back(reg);
    if (recent.size() > 4) {
      recent.erase(recent.begin());
    }
  }

  std::string random_offset() {
    const unsigned limit = std::min(spec_.array_words, 2047u);
    return std::to_string(8 * rng_.next_below(limit));
  }

  void emit_one(Category cat, unsigned phase_idx, unsigned inst_idx) {
    switch (cat) {
      case Category::kIntAlu: {
        static constexpr std::array<const char*, 6> kOps = {
            "add", "sub", "xor", "and", "or", "slt"};
        out_ += std::string("  ") + kOps[rng_.next_below(kOps.size())] +
                " " + int_reg(pick_int_dst()) + ", " +
                int_reg(pick_int_src()) + ", " + int_reg(pick_int_src()) +
                "\n";
        break;
      }
      case Category::kIntMul:
        out_ += "  mul " + int_reg(pick_int_dst()) + ", " +
                int_reg(pick_int_src()) + ", " + int_reg(pick_int_src()) +
                "\n";
        break;
      case Category::kIntDiv:
        out_ += "  div " + int_reg(pick_int_dst()) + ", " +
                int_reg(pick_int_src()) + ", " + int_reg(pick_int_src()) +
                "\n";
        break;
      case Category::kLoad:
        out_ += "  lw " + int_reg(pick_int_dst()) + ", " + random_offset() +
                "(r" + std::to_string(kArrayBase) + ")\n";
        break;
      case Category::kStore:
        out_ += "  sw " + int_reg(pick_int_src()) + ", " + random_offset() +
                "(r" + std::to_string(kArrayBase) + ")\n";
        break;
      case Category::kFpLoad:
        out_ += "  flw " + fp_reg(pick_fp_dst()) + ", " + random_offset() +
                "(r" + std::to_string(kArrayBase) + ")\n";
        break;
      case Category::kFpStore:
        out_ += "  fsw " + fp_reg(pick_fp_src()) + ", " + random_offset() +
                "(r" + std::to_string(kArrayBase) + ")\n";
        break;
      case Category::kFpAdd: {
        const char* op = rng_.next_bool(0.5) ? "fadd" : "fsub";
        out_ += std::string("  ") + op + " " + fp_reg(pick_fp_dst()) + ", " +
                fp_reg(pick_fp_src()) + ", " + fp_reg(pick_fp_src()) + "\n";
        break;
      }
      case Category::kFpMul:
        out_ += "  fmul " + fp_reg(pick_fp_dst()) + ", " +
                fp_reg(pick_fp_src()) + ", " + fp_reg(pick_fp_src()) + "\n";
        break;
      case Category::kFpDiv:
        out_ += "  fdiv " + fp_reg(pick_fp_dst()) + ", " +
                fp_reg(pick_fp_src()) + ", " + fp_reg(pick_fp_src()) + "\n";
        break;
      case Category::kBranch: {
        skip_label_ = "skip_" + std::to_string(phase_idx) + "_" +
                      std::to_string(inst_idx);
        pending_skip_ = 1 + static_cast<unsigned>(rng_.next_below(3));
        out_ += "  blt " + int_reg(pick_int_src()) + ", " +
                int_reg(pick_int_src()) + ", " + skip_label_ + "\n";
        break;
      }
    }
  }

  const SyntheticSpec& spec_;
  Xoshiro256& rng_;
  std::string& out_;
  std::vector<unsigned> recent_int_;
  std::vector<unsigned> recent_fp_;
  unsigned pending_skip_ = 0;
  std::string skip_label_;
};

}  // namespace

std::string generate_synthetic_asm(const SyntheticSpec& spec) {
  STEERSIM_EXPECTS(!spec.phases.empty());
  STEERSIM_EXPECTS(spec.outer_repeats >= 1);
  STEERSIM_EXPECTS(spec.array_words >= 16);

  Xoshiro256 rng(spec.seed);
  std::string out;
  out += "# synthetic workload '" + spec.name + "'\n";
  out += ".data\n";
  out += "arr: .space " + std::to_string(spec.array_words) + "\n";
  out += ".text\n";
  out += "  la r" + std::to_string(kArrayBase) + ", arr\n";
  out += "  li r" + std::to_string(kOuterCounter) + ", " +
         std::to_string(spec.outer_repeats) + "\n";

  // Initialize the integer pool with small distinct constants and seed the
  // array's first words so loads see nonzero data.
  for (unsigned i = 0; i < kIntPoolSize; ++i) {
    out += "  addi r" + std::to_string(kIntPoolBase + i) + ", r0, " +
           std::to_string(3 + 7 * i) + "\n";
  }
  for (unsigned i = 0; i < kIntPoolSize; ++i) {
    out += "  sw r" + std::to_string(kIntPoolBase + i) + ", " +
           std::to_string(8 * i) + "(r" + std::to_string(kArrayBase) +
           ")\n";
  }
  for (unsigned i = 0; i < kFpPoolSize; ++i) {
    out += "  cvt.i.f f" + std::to_string(kFpPoolBase + i) + ", r" +
           std::to_string(kIntPoolBase + (i % kIntPoolSize)) + "\n";
  }

  out += "outer:\n";
  BodyEmitter emitter(spec, rng, out);
  for (unsigned p = 0; p < spec.phases.size(); ++p) {
    const PhaseSpec& phase = spec.phases[p];
    STEERSIM_EXPECTS(phase.body_length >= 1 && phase.iterations >= 1);
    const std::string label = "phase" + std::to_string(p);
    out += label + ":\n";
    out += "  li r" + std::to_string(kLoopCounter) + ", " +
           std::to_string(phase.iterations) + "\n";
    out += label + "_loop:\n";
    emitter.emit_body(phase, p);
    out += "  addi r" + std::to_string(kLoopCounter) + ", r" +
           std::to_string(kLoopCounter) + ", -1\n";
    out += "  bne r" + std::to_string(kLoopCounter) + ", r0, " + label +
           "_loop\n";
  }
  out += "  addi r" + std::to_string(kOuterCounter) + ", r" +
         std::to_string(kOuterCounter) + ", -1\n";
  out += "  bne r" + std::to_string(kOuterCounter) + ", r0, outer\n";
  out += "  halt\n";
  return out;
}

Program generate_synthetic(const SyntheticSpec& spec) {
  return assemble(generate_synthetic_asm(spec), spec.name);
}

SyntheticSpec single_phase(const MixSpec& mix, unsigned body_length,
                           unsigned iterations, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = mix.name;
  spec.phases.push_back(PhaseSpec{mix, body_length, iterations});
  spec.seed = seed;
  return spec;
}

SyntheticSpec alternating_phases(unsigned phase_instructions,
                                 unsigned num_phase_pairs,
                                 std::uint64_t seed) {
  STEERSIM_EXPECTS(phase_instructions >= 64);
  SyntheticSpec spec;
  spec.name = "alternating";
  spec.seed = seed;
  const unsigned body = 64;
  const unsigned iters = std::max(1u, phase_instructions / body);
  for (unsigned i = 0; i < num_phase_pairs; ++i) {
    spec.phases.push_back(PhaseSpec{int_heavy_mix(), body, iters});
    spec.phases.push_back(PhaseSpec{fp_heavy_mix(), body, iters});
  }
  return spec;
}

}  // namespace steersim
