#include "workload/rv32_fixtures.hpp"

#include <bit>

#include "common/contracts.hpp"
#include "frontend/elf_loader.hpp"
#include "isa/rv32.hpp"

namespace steersim {
namespace {

namespace rv = rv32;

void append_double(std::vector<std::uint8_t>& out, double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xff));
  }
}

/// rv32_int: 599 iterations of a leaf call computing a mul/div/rem mix.
///
///    0  addi x10, x0, 600      # N
///    1  addi x11, x0, 1        # i
///    2  addi x12, x0, 0        # acc
///  loop (3):
///    3  jal  x1, func          # +24 bytes -> word 9
///    4  add  x12, x12, x13
///    5  addi x11, x11, 1
///    6  bne  x11, x10, loop    # -12 bytes -> word 3
///    7  sw   x12, 0(x0)
///    8  ecall
///  func (9):
///    9  mul  x13, x11, x11
///   10  srli x14, x13, 3
///   11  add  x13, x13, x14
///   12  div  x14, x13, x11
///   13  rem  x15, x13, x10
///   14  add  x13, x14, x15
///   15  jalr x0, x1, 0         # ret
Rv32Fixture build_int_fixture() {
  Rv32Fixture fx;
  fx.name = "rv32_int";
  fx.description =
      "integer mul/div/rem loop with a jal/jalr leaf call (599 iterations)";
  fx.text_base = 0x1000;
  fx.entry = 0x1000;
  fx.text = {
      rv::addi(10, 0, 600),
      rv::addi(11, 0, 1),
      rv::addi(12, 0, 0),
      rv::jal(1, 24),
      rv::add(12, 12, 13),
      rv::addi(11, 11, 1),
      rv::bne(11, 10, -12),
      rv::sw(0, 12, 0),
      rv::ecall(),
      rv::mul(13, 11, 11),
      rv::srli(14, 13, 3),
      rv::add(13, 13, 14),
      rv::div(14, 13, 11),
      rv::rem(15, 13, 10),
      rv::add(13, 14, 15),
      rv::jalr(0, 1, 0),
  };
  // C++ mirror of the program (64-bit register semantics).
  std::int64_t acc = 0;
  for (std::int64_t i = 1; i != 600; ++i) {
    std::int64_t t = i * i;
    t += static_cast<std::int64_t>(static_cast<std::uint64_t>(t) >> 3);
    acc += t / i + t % 600;
  }
  fx.checks.push_back(Rv32Check{0, false, acc, 0.0});
  return fx;
}

/// rv32_fp: squared-plus-ratio reduction over 256 doubles loaded from the
/// data segment at address 0; result stored at 4096 via a lui-built base.
///
///    0  addi x1, x0, 0         # i
///    1  addi x2, x0, 256       # N
///    2  addi x3, x0, 0         # byte pointer
///    3  fcvt.s.w f1, x0        # acc = 0.0
///  loop (4):
///    4  flw  f2, 0(x3)
///    5  fmul f3, f2, f2
///    6  fadd f1, f1, f3
///    7  fdiv f4, f3, f2
///    8  fadd f1, f1, f4
///    9  addi x3, x3, 8
///   10  addi x1, x1, 1
///   11  bne  x1, x2, loop      # -28 bytes -> word 4
///   12  lui  x4, 1             # 4096
///   13  fsw  f1, 0(x4)
///   14  ecall
Rv32Fixture build_fp_fixture() {
  Rv32Fixture fx;
  fx.name = "rv32_fp";
  fx.description =
      "FP mul/add/div reduction over a 256-double data segment";
  fx.text_base = 0x2000;
  fx.entry = 0x2000;
  fx.text = {
      rv::addi(1, 0, 0),
      rv::addi(2, 0, 256),
      rv::addi(3, 0, 0),
      rv::fcvt_s_w(1, 0),
      rv::flw(2, 3, 0),
      rv::fmul_s(3, 2, 2),
      rv::fadd_s(1, 1, 3),
      rv::fdiv_s(4, 3, 2),
      rv::fadd_s(1, 1, 4),
      rv::addi(3, 3, 8),
      rv::addi(1, 1, 1),
      rv::bne(1, 2, -28),
      rv::lui(4, 1),
      rv::fsw(4, 1, 0),
      rv::ecall(),
  };
  fx.data_vaddr = 0;
  double acc = 0.0;
  for (unsigned i = 0; i < 256; ++i) {
    const double a = 1.0 + static_cast<double>(i % 9) * 0.5;
    append_double(fx.data, a);
    const double sq = a * a;
    acc += sq;
    acc += sq / a;
  }
  fx.checks.push_back(Rv32Check{4096, true, 0, acc});
  return fx;
}

/// rv32_phases: six outer rounds alternating an integer phase (leaf call
/// + div/rem) and an FP phase (cvt/mul/add/div). The entry point is word
/// 4, *after* the callee — a non-leading entry exercising the
/// translator's jump stub.
///
///  helper (0, 0x3000):
///    0  mul  x7, x5, x5
///    1  add  x6, x6, x7
///    2  jalr x0, x1, 0
///    3  ecall                  # padding, never reached
///  entry (4, 0x3010):
///    4  addi x10, x0, 6        # outer rounds
///    5  addi x6, x0, 0         # int acc
///    6  fcvt.s.w f1, x0        # fp acc
///  outer (7):
///    7  addi x5, x0, 1
///    8  addi x4, x0, 200
///  iloop (9):
///    9  jal  x1, helper        # -36 bytes -> word 0
///   10  div  x7, x6, x5
///   11  rem  x8, x7, x4
///   12  add  x6, x6, x8
///   13  addi x5, x5, 1
///   14  bne  x5, x4, iloop     # -20 bytes -> word 9
///   15  addi x5, x0, 1
///   16  fcvt.s.w f2, x5
///  floop (17):
///   17  fcvt.s.w f3, x5
///   18  fmul f4, f3, f3
///   19  fadd f1, f1, f4
///   20  fdiv f5, f4, f3
///   21  fadd f2, f2, f5
///   22  addi x5, x5, 1
///   23  bne  x5, x4, floop     # -24 bytes -> word 17
///   24  fadd f1, f1, f2
///   25  addi x10, x10, -1
///   26  bne  x10, x0, outer    # -76 bytes -> word 7
///   27  lui  x9, 2             # 8192
///   28  sw   x6, 0(x9)
///   29  fsw  f1, 8(x9)
///   30  ecall
Rv32Fixture build_phases_fixture() {
  Rv32Fixture fx;
  fx.name = "rv32_phases";
  fx.description =
      "alternating integer and FP phases (6 rounds), non-leading entry";
  fx.text_base = 0x3000;
  fx.entry = 0x3010;
  fx.text = {
      rv::mul(7, 5, 5),
      rv::add(6, 6, 7),
      rv::jalr(0, 1, 0),
      rv::ecall(),
      rv::addi(10, 0, 6),
      rv::addi(6, 0, 0),
      rv::fcvt_s_w(1, 0),
      rv::addi(5, 0, 1),
      rv::addi(4, 0, 200),
      rv::jal(1, -36),
      rv::div(7, 6, 5),
      rv::rem(8, 7, 4),
      rv::add(6, 6, 8),
      rv::addi(5, 5, 1),
      rv::bne(5, 4, -20),
      rv::addi(5, 0, 1),
      rv::fcvt_s_w(2, 5),
      rv::fcvt_s_w(3, 5),
      rv::fmul_s(4, 3, 3),
      rv::fadd_s(1, 1, 4),
      rv::fdiv_s(5, 4, 3),
      rv::fadd_s(2, 2, 5),
      rv::addi(5, 5, 1),
      rv::bne(5, 4, -24),
      rv::fadd_s(1, 1, 2),
      rv::addi(10, 10, -1),
      rv::bne(10, 0, -76),
      rv::lui(9, 2),
      rv::sw(9, 6, 0),
      rv::fsw(9, 1, 8),
      rv::ecall(),
  };
  // C++ mirror.
  std::int64_t int_acc = 0;
  double fp_acc = 0.0;
  for (int round = 0; round < 6; ++round) {
    for (std::int64_t i = 1; i != 200; ++i) {
      int_acc += i * i;
      int_acc += (int_acc / i) % 200;
    }
    double f2 = 1.0;
    for (std::int64_t i = 1; i != 200; ++i) {
      const double v = static_cast<double>(i);
      const double sq = v * v;
      fp_acc += sq;
      f2 += sq / v;
    }
    fp_acc += f2;
  }
  fx.checks.push_back(Rv32Check{8192, false, int_acc, 0.0});
  fx.checks.push_back(Rv32Check{8200, true, 0, fp_acc});
  return fx;
}

}  // namespace

const std::vector<Rv32Fixture>& rv32_fixture_library() {
  static const std::vector<Rv32Fixture> fixtures = {
      build_int_fixture(),
      build_fp_fixture(),
      build_phases_fixture(),
  };
  return fixtures;
}

const Rv32Fixture* rv32_fixture_find(const std::string& name) {
  for (const Rv32Fixture& fx : rv32_fixture_library()) {
    if (fx.name == name) {
      return &fx;
    }
  }
  return nullptr;
}

const Rv32Fixture& rv32_fixture_by_name(const std::string& name) {
  const Rv32Fixture* fx = rv32_fixture_find(name);
  STEERSIM_EXPECTS(fx != nullptr);
  return *fx;
}

std::vector<std::uint8_t> rv32_fixture_elf(const Rv32Fixture& fixture) {
  elf::ElfBuilder builder;
  builder.entry(fixture.entry).text(fixture.text_base, fixture.text);
  if (!fixture.data.empty()) {
    builder.segment(fixture.data_vaddr, fixture.data, false);
  }
  return builder.build();
}

Program rv32_fixture_program(const Rv32Fixture& fixture) {
  const std::vector<std::uint8_t> image = rv32_fixture_elf(fixture);
  return elf::load_elf_program(image, fixture.name);
}

}  // namespace steersim
