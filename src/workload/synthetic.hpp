// Synthetic phase-structured workload generator.
//
// Emits assembly text (then assembled by the project assembler): a data
// array, an initialization prologue, and one counted loop per phase whose
// body is sampled from the phase's MixSpec with a controllable dependency
// density. Phases model the program behaviour the paper targets — regions
// whose functional-unit demand shifts over time — so sweeping phase
// specifications sweeps the steering problem's difficulty.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "workload/mix.hpp"

namespace steersim {

struct PhaseSpec {
  MixSpec mix;
  /// Instructions in the loop body (excluding loop control).
  unsigned body_length = 64;
  /// Loop trip count.
  unsigned iterations = 100;
};

struct SyntheticSpec {
  std::string name = "synthetic";
  std::vector<PhaseSpec> phases;
  /// Repeats of the whole phase sequence (an outer loop).
  unsigned outer_repeats = 1;
  /// Probability a source register is a recently written one (RAW chain
  /// density); the rest read long-lived initialized registers.
  double dep_density = 0.5;
  /// Size of the data array touched by loads/stores, in 64-bit words.
  unsigned array_words = 1024;
  std::uint64_t seed = 1;
};

/// Generates the assembly source for `spec`.
std::string generate_synthetic_asm(const SyntheticSpec& spec);

/// Generates and assembles in one step.
Program generate_synthetic(const SyntheticSpec& spec);

/// Convenience: a single-phase workload of `mix`.
SyntheticSpec single_phase(const MixSpec& mix, unsigned body_length = 64,
                           unsigned iterations = 200,
                           std::uint64_t seed = 1);

/// Convenience: alternating int-heavy / fp-heavy phases (the classic
/// steering stress test).
SyntheticSpec alternating_phases(unsigned phase_instructions,
                                 unsigned num_phase_pairs,
                                 std::uint64_t seed = 1);

}  // namespace steersim
