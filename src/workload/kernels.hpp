// Library of hand-written assembly kernels: the realistic end-to-end
// workloads for examples, tests and the E10 kernel benchmark. Each kernel
// halts with a checkable result in memory/registers; tests verify both the
// architectural result and OoO-vs-reference equivalence.
#pragma once

#include <string>
#include <vector>

#include "isa/program.hpp"

namespace steersim {

struct Kernel {
  std::string name;
  std::string description;
  std::string source;

  Program assemble_program() const;
};

/// All kernels: fib, sum_array, dot_int, saxpy, memcpy_words, fir,
/// matmul_int, strlen, newton_sqrt, crc_mix, vector_scale, histogram.
const std::vector<Kernel>& kernel_library();

/// Lookup by name; fails a contract check if absent.
const Kernel& kernel_by_name(const std::string& name);

}  // namespace steersim
