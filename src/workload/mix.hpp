// Instruction-mix specifications for the synthetic workload generator.
//
// The paper's motivation is that code regions differ in which functional
// units they demand; a MixSpec is a point in that demand space (relative
// sampling weights per instruction category), and the standard mixes span
// the corners the steering configurations target.
#pragma once

#include <string>
#include <vector>

namespace steersim {

struct MixSpec {
  std::string name;
  double int_alu = 1.0;
  double int_mul = 0.0;
  double int_div = 0.0;
  double load = 0.0;
  double store = 0.0;
  double fp_load = 0.0;
  double fp_store = 0.0;
  double fp_add = 0.0;
  double fp_mul = 0.0;
  double fp_div = 0.0;
  /// Short forward branches inside the body (control-flow noise).
  double branch = 0.0;

  double total() const {
    return int_alu + int_mul + int_div + load + store + fp_load + fp_store +
           fp_add + fp_mul + fp_div + branch;
  }
};

/// ALU-dominated integer code (targets the "integer" steering config).
MixSpec int_heavy_mix();
/// Load/store-dominated code (targets the "memory" steering config).
MixSpec mem_heavy_mix();
/// FP-dominated numeric code (targets the "float" steering config).
MixSpec fp_heavy_mix();
/// Multiply/divide-heavy integer code.
MixSpec mdu_heavy_mix();
/// A balanced blend of everything.
MixSpec mixed_mix();

/// The five standard mixes above, in that order.
const std::vector<MixSpec>& standard_mixes();

}  // namespace steersim
