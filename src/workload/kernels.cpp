#include "workload/kernels.hpp"

#include <cstdint>
#include <functional>

#include "common/contracts.hpp"
#include "isa/assembler.hpp"

namespace steersim {
namespace {

std::string word_list(unsigned n,
                      const std::function<std::int64_t(unsigned)>& value) {
  std::string out = ".word";
  for (unsigned i = 0; i < n; ++i) {
    out += " " + std::to_string(value(i));
  }
  return out;
}

std::string double_list(unsigned n,
                        const std::function<double(unsigned)>& value) {
  std::string out = ".double";
  for (unsigned i = 0; i < n; ++i) {
    out += " " + std::to_string(value(i));
  }
  return out;
}

/// Packs a NUL-terminated string into little-endian 64-bit words.
std::string packed_string(const std::string& text) {
  std::vector<std::int64_t> words((text.size() + 1 + 7) / 8, 0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    words[i / 8] |= static_cast<std::int64_t>(
                        static_cast<std::uint8_t>(text[i]))
                    << (8 * (i % 8));
  }
  std::string out = ".word";
  for (const auto w : words) {
    out += " " + std::to_string(w);
  }
  return out;
}

std::vector<Kernel> build_kernels() {
  std::vector<Kernel> kernels;

  kernels.push_back(Kernel{
      "fib", "iterative Fibonacci(30); serial integer dependency chain",
      R"(  li r1, 30
  addi r2, r0, 0
  addi r3, r0, 1
fib_loop:
  add r4, r2, r3
  mv r2, r3
  mv r3, r4
  addi r1, r1, -1
  bne r1, r0, fib_loop
  la r5, out
  sw r2, 0(r5)
  halt
.data
out: .word 0
)"});

  kernels.push_back(Kernel{
      "sum_array", "integer reduction over 64 words (load + ALU)",
      R"(  la r1, arr
  li r2, 64
  addi r3, r0, 0
sum_loop:
  lw r4, 0(r1)
  add r3, r3, r4
  addi r1, r1, 8
  addi r2, r2, -1
  bne r2, r0, sum_loop
  la r5, out
  sw r3, 0(r5)
  halt
.data
arr: )" + word_list(64, [](unsigned i) { return i + 1; }) + R"(
out: .word 0
)"});

  kernels.push_back(Kernel{
      "dot_int", "integer dot product, 48 elements (loads + multiply)",
      R"(  la r1, a
  la r2, b
  li r3, 48
  addi r4, r0, 0
dot_loop:
  lw r5, 0(r1)
  lw r6, 0(r2)
  mul r7, r5, r6
  add r4, r4, r7
  addi r1, r1, 8
  addi r2, r2, 8
  addi r3, r3, -1
  bne r3, r0, dot_loop
  la r8, out
  sw r4, 0(r8)
  halt
.data
a: )" + word_list(48, [](unsigned i) { return i + 1; }) + R"(
b: )" + word_list(48, [](unsigned i) { return 2 * i + 1; }) + R"(
out: .word 0
)"});

  kernels.push_back(Kernel{
      "saxpy", "y[i] = 2.5*x[i] + y[i] over 64 doubles (FP pipeline)",
      R"(  la r1, xs
  la r2, ys
  la r3, aconst
  flw f1, 0(r3)
  li r4, 64
saxpy_loop:
  flw f2, 0(r1)
  flw f3, 0(r2)
  fmul f4, f2, f1
  fadd f5, f4, f3
  fsw f5, 0(r2)
  addi r1, r1, 8
  addi r2, r2, 8
  addi r4, r4, -1
  bne r4, r0, saxpy_loop
  halt
.data
aconst: .double 2.5
xs: )" + double_list(64, [](unsigned i) { return i; }) + R"(
ys: )" + double_list(64, [](unsigned) { return 1.0; }) + R"(
)"});

  kernels.push_back(Kernel{
      "memcpy_words", "copy 128 words (pure load/store streaming)",
      R"(  la r1, src
  la r2, dst
  li r3, 128
copy_loop:
  lw r4, 0(r1)
  sw r4, 0(r2)
  addi r1, r1, 8
  addi r2, r2, 8
  addi r3, r3, -1
  bne r3, r0, copy_loop
  halt
.data
src: )" + word_list(128, [](unsigned i) { return 1000 + i; }) + R"(
dst: .space 128
)"});

  kernels.push_back(Kernel{
      "fir", "4-tap FIR filter over 64 samples (FP multiply-accumulate)",
      R"(  la r1, x
  li r4, 60
fir_outer:
  la r2, taps
  mv r6, r1
  addi r5, r0, 4
  cvt.i.f f1, r0
fir_inner:
  flw f2, 0(r6)
  flw f3, 0(r2)
  fmul f4, f2, f3
  fadd f1, f1, f4
  addi r6, r6, 8
  addi r2, r2, 8
  addi r5, r5, -1
  bne r5, r0, fir_inner
  la r7, outv
  li r8, 60
  sub r8, r8, r4
  slli r8, r8, 3
  add r7, r7, r8
  fsw f1, 0(r7)
  addi r1, r1, 8
  addi r4, r4, -1
  bne r4, r0, fir_outer
  halt
.data
taps: .double 0.25 0.5 0.25 0.125
x: )" + double_list(64, [](unsigned i) { return 0.5 * i; }) + R"(
outv: .space 60
)"});

  kernels.push_back(Kernel{
      "matmul_int", "8x8 integer matrix multiply (B = identity, so C = A)",
      R"(  la r4, A
  la r5, B
  la r6, C
  addi r1, r0, 0
mm_i:
  addi r2, r0, 0
mm_j:
  addi r3, r0, 0
  addi r7, r0, 0
mm_k:
  slli r8, r1, 3
  add r8, r8, r3
  slli r8, r8, 3
  add r8, r8, r4
  lw r9, 0(r8)
  slli r10, r3, 3
  add r10, r10, r2
  slli r10, r10, 3
  add r10, r10, r5
  lw r11, 0(r10)
  mul r12, r9, r11
  add r7, r7, r12
  addi r3, r3, 1
  slti r13, r3, 8
  bne r13, r0, mm_k
  slli r8, r1, 3
  add r8, r8, r2
  slli r8, r8, 3
  add r8, r8, r6
  sw r7, 0(r8)
  addi r2, r2, 1
  slti r13, r2, 8
  bne r13, r0, mm_j
  addi r1, r1, 1
  slti r13, r1, 8
  bne r13, r0, mm_i
  halt
.data
A: )" + word_list(64, [](unsigned i) { return i; }) + R"(
B: )" +
          word_list(64,
                    [](unsigned i) { return (i / 8 == i % 8) ? 1 : 0; }) +
          R"(
C: .space 64
)"});

  kernels.push_back(Kernel{
      "strlen", "byte-wise string scan (unaligned lb accesses)",
      R"(  la r1, str
  addi r2, r0, 0
len_loop:
  lb r3, 0(r1)
  beq r3, r0, len_done
  addi r1, r1, 1
  addi r2, r2, 1
  j len_loop
len_done:
  la r4, out
  sw r2, 0(r4)
  halt
.data
str: )" +
          packed_string("the quick brown fox jumps over the lazy dog") +
          R"(
out: .word 0
)"});

  kernels.push_back(Kernel{
      "newton_sqrt",
      "Newton iteration for sqrt(2), 16 steps (serial FP divide chain)",
      R"(  la r1, consts
  flw f1, 0(r1)
  flw f2, 8(r1)
  flw f3, 16(r1)
  li r2, 16
nw_loop:
  fdiv f4, f1, f2
  fadd f5, f2, f4
  fmul f2, f5, f3
  addi r2, r2, -1
  bne r2, r0, nw_loop
  la r3, out
  fsw f2, 0(r3)
  halt
.data
consts: .double 2.0 1.0 0.5
out: .double 0.0
)"});

  kernels.push_back(Kernel{
      "crc_mix", "shift/xor mixing over 64 words (ALU-dense with loads)",
      R"(  la r1, arr
  li r2, 64
  addi r3, r0, -1
crc_loop:
  lw r4, 0(r1)
  slli r5, r3, 1
  srli r6, r3, 3
  xor r3, r5, r4
  xor r3, r3, r6
  addi r1, r1, 8
  addi r2, r2, -1
  bne r2, r0, crc_loop
  la r7, out
  sw r3, 0(r7)
  halt
.data
arr: )" +
          word_list(64, [](unsigned i) {
            return static_cast<std::int64_t>(i) * 2654435761LL;
          }) + R"(
out: .word 0
)"});

  kernels.push_back(Kernel{
      "vector_scale", "c[i] = 3.0 * a[i] over 96 doubles (FP streaming)",
      R"(  la r1, a
  la r2, c
  la r3, k
  flw f1, 0(r3)
  li r4, 96
vs_loop:
  flw f2, 0(r1)
  fmul f3, f2, f1
  fsw f3, 0(r2)
  addi r1, r1, 8
  addi r2, r2, 8
  addi r4, r4, -1
  bne r4, r0, vs_loop
  halt
.data
k: .double 3.0
a: )" + double_list(96, [](unsigned i) { return 0.25 * i + 1.0; }) + R"(
c: .space 96
)"});

  kernels.push_back(Kernel{
      "bubble_sort",
      "bubble sort 32 words, worst case (branchy, swap-heavy memory)",
      R"(  la r1, arr
  li r2, 32
  addi r3, r2, -1
bs_outer:
  mv r4, r1
  mv r5, r3
bs_inner:
  lw r6, 0(r4)
  lw r7, 8(r4)
  bge r7, r6, bs_noswap
  sw r7, 0(r4)
  sw r6, 8(r4)
bs_noswap:
  addi r4, r4, 8
  addi r5, r5, -1
  bne r5, r0, bs_inner
  addi r3, r3, -1
  bne r3, r0, bs_outer
  halt
.data
arr: )" + word_list(32, [](unsigned i) { return 32 - i; }) + R"(
)"});

  kernels.push_back(Kernel{
      "binsearch",
      "binary search of 8 keys in a 64-entry sorted array (data-dependent "
      "branches)",
      R"(  la r9, sarr
  la r10, keys
  li r11, 8
  addi r12, r0, 0
key_loop:
  lw r13, 0(r10)
  addi r1, r0, 0
  li r2, 64
search_loop:
  bge r1, r2, key_done
  add r3, r1, r2
  srli r3, r3, 1
  slli r4, r3, 3
  add r5, r9, r4
  lw r6, 0(r5)
  beq r6, r13, key_found
  blt r6, r13, go_right
  mv r2, r3
  j search_loop
go_right:
  addi r1, r3, 1
  j search_loop
key_found:
  addi r12, r12, 1
key_done:
  addi r10, r10, 8
  addi r11, r11, -1
  bne r11, r0, key_loop
  la r14, out
  sw r12, 0(r14)
  halt
.data
sarr: )" + word_list(64, [](unsigned i) { return 3 * i + 1; }) + R"(
keys: .word 1 49 94 190 2 50 95 191
out: .word 0
)"});

  kernels.push_back(Kernel{
      "transpose",
      "8x8 integer matrix transpose (strided addressing, no ALU chains)",
      R"(  la r1, M
  la r2, T
  addi r3, r0, 0
tr_i:
  addi r4, r0, 0
tr_j:
  slli r5, r3, 3
  add r5, r5, r4
  slli r5, r5, 3
  add r5, r5, r1
  lw r6, 0(r5)
  slli r7, r4, 3
  add r7, r7, r3
  slli r7, r7, 3
  add r7, r7, r2
  sw r6, 0(r7)
  addi r4, r4, 1
  slti r8, r4, 8
  bne r8, r0, tr_j
  addi r3, r3, 1
  slti r8, r3, 8
  bne r8, r0, tr_i
  halt
.data
M: )" + word_list(64, [](unsigned i) { return 100 + i; }) + R"(
T: .space 64
)"});

  kernels.push_back(Kernel{
      "histogram",
      "bins[v&7]++ over 128 values (store-to-load forwarding stress)",
      R"(  la r1, vals
  la r2, bins
  li r3, 128
h_loop:
  lw r4, 0(r1)
  andi r4, r4, 7
  slli r4, r4, 3
  add r5, r4, r2
  lw r6, 0(r5)
  addi r6, r6, 1
  sw r6, 0(r5)
  addi r1, r1, 8
  addi r3, r3, -1
  bne r3, r0, h_loop
  halt
.data
vals: )" +
          word_list(128,
                    [](unsigned i) {
                      return static_cast<std::int64_t>((i * 37 + 11) % 23);
                    }) +
          R"(
bins: .space 8
)"});

  return kernels;
}

}  // namespace

Program Kernel::assemble_program() const { return assemble(source, name); }

const std::vector<Kernel>& kernel_library() {
  static const std::vector<Kernel> kernels = build_kernels();
  return kernels;
}

const Kernel& kernel_by_name(const std::string& name) {
  for (const auto& k : kernel_library()) {
    if (k.name == name) {
      return k;
    }
  }
  STEERSIM_UNREACHABLE("unknown kernel");
}

}  // namespace steersim
