#include "workload/mix.hpp"

namespace steersim {

MixSpec int_heavy_mix() {
  MixSpec m;
  m.name = "int-heavy";
  m.int_alu = 10.0;
  m.int_mul = 0.5;
  m.load = 1.5;
  m.store = 0.5;
  m.branch = 1.0;
  return m;
}

MixSpec mem_heavy_mix() {
  MixSpec m;
  m.name = "mem-heavy";
  m.int_alu = 3.0;
  m.load = 6.0;
  m.store = 3.0;
  m.fp_load = 1.0;
  m.branch = 0.5;
  return m;
}

MixSpec fp_heavy_mix() {
  MixSpec m;
  m.name = "fp-heavy";
  m.int_alu = 1.5;
  m.fp_load = 2.0;
  m.fp_store = 0.5;
  m.fp_add = 5.0;
  m.fp_mul = 3.5;
  m.fp_div = 0.5;
  m.branch = 0.5;
  return m;
}

MixSpec mdu_heavy_mix() {
  MixSpec m;
  m.name = "mdu-heavy";
  m.int_alu = 3.0;
  m.int_mul = 5.0;
  m.int_div = 1.0;
  m.load = 1.0;
  m.branch = 0.5;
  return m;
}

MixSpec mixed_mix() {
  MixSpec m;
  m.name = "mixed";
  m.int_alu = 4.0;
  m.int_mul = 1.0;
  m.load = 2.5;
  m.store = 1.0;
  m.fp_load = 1.0;
  m.fp_add = 2.0;
  m.fp_mul = 1.0;
  m.branch = 1.0;
  return m;
}

const std::vector<MixSpec>& standard_mixes() {
  static const std::vector<MixSpec> mixes = {
      int_heavy_mix(), mem_heavy_mix(), fp_heavy_mix(), mdu_heavy_mix(),
      mixed_mix()};
  return mixes;
}

}  // namespace steersim
