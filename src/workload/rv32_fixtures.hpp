// Committed RV32 fixture programs: hand-encoded machine-word arrays built
// from the isa/rv32.hpp encoders, so CI exercises the ELF path without a
// cross-toolchain. Three workloads cover the paper's phase axes:
//
//   rv32_int    — integer loop with a jal/jalr leaf call (IntAlu + IntMdu)
//   rv32_fp     — FP reduction over a data segment of doubles (Lsu + FpAlu
//                 + FpMdu)
//   rv32_phases — alternating integer and FP phases with a non-leading
//                 entry point (exercises the translator's entry stub)
//
// Each fixture carries architectural checks (address -> expected value
// computed by a C++ mirror of the program), so tests verify the decoder,
// translator, loader and machine agree end to end. The committed
// tests/fixtures/*.elf bytes are produced by tools/make_fixtures from
// exactly these arrays; the encoder self-test diffs committed bytes
// against freshly built ones so they cannot rot silently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace steersim {

/// One architectural postcondition: the 64-bit cell at `addr` must hold
/// the expected integer (or binary64 bit pattern when `is_fp`).
struct Rv32Check {
  std::uint64_t addr = 0;
  bool is_fp = false;
  std::int64_t int_value = 0;
  double fp_value = 0.0;
};

struct Rv32Fixture {
  std::string name;
  std::string description;
  std::uint32_t text_base = 0;
  std::uint32_t entry = 0;
  std::vector<std::uint32_t> text;
  /// Optional initial data segment (empty => none).
  std::uint32_t data_vaddr = 0;
  std::vector<std::uint8_t> data;
  std::vector<Rv32Check> checks;
};

/// All committed fixtures, built once per process.
const std::vector<Rv32Fixture>& rv32_fixture_library();

/// Lookup by name; fails a contract check if absent (use find variant for
/// user input).
const Rv32Fixture& rv32_fixture_by_name(const std::string& name);

/// Lookup by name; nullptr when absent.
const Rv32Fixture* rv32_fixture_find(const std::string& name);

/// The fixture as a deterministic ELF32 image (what make_fixtures writes
/// to tests/fixtures/<name>.elf).
std::vector<std::uint8_t> rv32_fixture_elf(const Rv32Fixture& fixture);

/// The fixture loaded and translated into a runnable Program.
Program rv32_fixture_program(const Rv32Fixture& fixture);

}  // namespace steersim
