// Checkpoint/rollback recovery for the reconfigurable machine
// (docs/FAULTS.md).
//
// PR 1's kill-and-retry granularity recovers single executions; it cannot
// recover a run whose fabric loses slots permanently mid-flight without
// paying the full re-execution cost from cycle 0. This subsystem adds the
// missing tier: the processor periodically snapshots architectural state
// (register files, a copy-on-write-style undo journal of data-memory
// writes, the resume PC, and the loader's fabric/steering intent), and on
// a permanent slot failure or an unrecoverable ECC event it rolls the
// machine back to the last snapshot, re-places the fabric around the
// fences, and resumes. Snapshots are cheap: registers are copied, but
// memory is journaled incrementally — only the first store to an address
// per checkpoint epoch records the bytes it overwrites.
//
// The RecoveryManager owns the policy (cadence, which events trigger a
// rollback), the snapshot, the journal and the statistics; the Processor
// performs the actual capture and restore since they touch every module.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "config/allocation.hpp"
#include "memory/data_memory.hpp"
#include "memory/register_file.hpp"

namespace steersim {

struct RecoveryParams {
  /// Cycles between architectural snapshots; 0 disables the subsystem
  /// entirely (the machine is then bit-identical to a build without it).
  unsigned checkpoint_interval = 0;
  /// Roll back to the last checkpoint when a permanent slot failure is
  /// accepted, instead of relying on kill/retry granularity alone.
  bool rollback_on_permanent = true;
  /// Roll back when the loader escalates an uncorrectable ECC event.
  bool rollback_on_uncorrectable = true;

  bool enabled() const { return checkpoint_interval > 0; }
};

struct RecoveryStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t rollbacks = 0;
  /// Commits undone by rollbacks and re-executed on the replay path.
  std::uint64_t instructions_replayed = 0;
  /// Sum over rollbacks of (rollback cycle - checkpoint cycle).
  std::uint64_t cycles_rewound = 0;
  /// In-flight RUU entries flushed by rollbacks.
  std::uint64_t flushed_in_flight = 0;
  std::uint64_t journal_records = 0;       ///< undo records written overall
  std::uint64_t journal_records_peak = 0;  ///< largest single-epoch journal

  /// Metric-registry enumeration (docs/OBSERVABILITY.md).
  template <typename V>
  void visit_metrics(V&& visit) const {
    visit("checkpoints_taken", static_cast<double>(checkpoints_taken));
    visit("rollbacks", static_cast<double>(rollbacks));
    visit("instructions_replayed",
          static_cast<double>(instructions_replayed));
    visit("cycles_rewound", static_cast<double>(cycles_rewound));
    visit("flushed_in_flight", static_cast<double>(flushed_in_flight));
    visit("journal_records", static_cast<double>(journal_records));
    visit("journal_records_peak",
          static_cast<double>(journal_records_peak));
  }
};

/// One architectural snapshot. Everything needed to resume: committed
/// register state, the PC of the oldest un-retired instruction, and the
/// loader's fabric view + steering intent (fences are physical and are
/// never rolled back — the restore re-places `requested` around whatever
/// is fenced *now*).
struct Checkpoint {
  std::uint64_t cycle = 0;
  std::uint64_t retired = 0;  ///< commit count at snapshot time
  std::uint32_t resume_pc = 0;
  RegisterFile regs;
  AllocationVector fabric;     ///< loader bookkeeping allocation
  AllocationVector requested;  ///< externally requested steering target
  SlotMask fenced;             ///< fence set at snapshot time
};

class RecoveryManager {
 public:
  explicit RecoveryManager(const RecoveryParams& params);

  const RecoveryParams& params() const { return params_; }

  bool checkpoint_due(std::uint64_t cycle) const {
    return cycle % params_.checkpoint_interval == 0;
  }
  /// Installs a new snapshot and opens a fresh journal epoch.
  void take_checkpoint(Checkpoint snapshot);
  bool has_checkpoint() const { return has_checkpoint_; }
  const Checkpoint& checkpoint() const;

  /// Copy-on-write-style undo journaling: called before a store commits,
  /// records the bytes about to be overwritten — once per (address, size)
  /// per checkpoint epoch, so steady-state stores to hot addresses are
  /// free after the first.
  void journal_store(const DataMemory& mem, std::uint64_t addr,
                     unsigned size);

  /// Rolls `mem` back to the checkpoint image by undoing the journal
  /// newest-first, then resets the journal for the replay epoch.
  void unwind_memory(DataMemory& mem);

  /// Accounting for a rollback the processor just performed; fires the
  /// rollback hook (tests use it to truncate observed commit streams).
  void note_rollback(std::uint64_t cycle, std::uint64_t retired,
                     unsigned flushed_in_flight);

  /// Invoked after every completed rollback with the restored checkpoint.
  void set_rollback_hook(std::function<void(const Checkpoint&)> hook) {
    on_rollback_ = std::move(hook);
  }

  const RecoveryStats& stats() const { return stats_; }

 private:
  struct UndoRecord {
    std::uint64_t addr = 0;
    std::int64_t old_value = 0;  ///< raw bytes via load_word / load_byte
    unsigned size = 0;           ///< access bytes (1 or 8)
  };

  RecoveryParams params_;
  bool has_checkpoint_ = false;
  Checkpoint checkpoint_;
  std::vector<UndoRecord> journal_;
  /// (addr, size) pairs already journaled this epoch, keyed addr*2|byte.
  std::unordered_set<std::uint64_t> journaled_;
  RecoveryStats stats_;
  std::function<void(const Checkpoint&)> on_rollback_;
};

}  // namespace steersim
