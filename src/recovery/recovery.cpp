#include "recovery/recovery.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace steersim {
namespace {

std::uint64_t journal_key(std::uint64_t addr, unsigned size) {
  return addr * 2 + (size == 1 ? 1 : 0);
}

}  // namespace

RecoveryManager::RecoveryManager(const RecoveryParams& params)
    : params_(params) {
  STEERSIM_EXPECTS(params.enabled());
}

void RecoveryManager::take_checkpoint(Checkpoint snapshot) {
  checkpoint_ = std::move(snapshot);
  has_checkpoint_ = true;
  journal_.clear();
  journaled_.clear();
  ++stats_.checkpoints_taken;
}

const Checkpoint& RecoveryManager::checkpoint() const {
  STEERSIM_EXPECTS(has_checkpoint_);
  return checkpoint_;
}

void RecoveryManager::journal_store(const DataMemory& mem,
                                    std::uint64_t addr, unsigned size) {
  if (!has_checkpoint_) {
    return;  // nothing to roll back to yet
  }
  STEERSIM_EXPECTS(size == 1 || size == 8);
  if (!journaled_.insert(journal_key(addr, size)).second) {
    return;  // this epoch already holds the pre-image
  }
  UndoRecord record;
  record.addr = addr;
  record.size = size;
  record.old_value = size == 1 ? mem.load_byte(addr) : mem.load_word(addr);
  journal_.push_back(record);
  ++stats_.journal_records;
  stats_.journal_records_peak =
      std::max(stats_.journal_records_peak,
               static_cast<std::uint64_t>(journal_.size()));
}

void RecoveryManager::unwind_memory(DataMemory& mem) {
  STEERSIM_EXPECTS(has_checkpoint_);
  // Newest-first: overlapping records (a word journaled before a byte
  // inside it, or vice versa) each restore the state before their own
  // first write, so reverse replay lands exactly on the snapshot image.
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    if (it->size == 1) {
      mem.store_byte(it->addr, it->old_value);
    } else {
      mem.store_word(it->addr, it->old_value);
    }
  }
  journal_.clear();
  journaled_.clear();
}

void RecoveryManager::note_rollback(std::uint64_t cycle,
                                    std::uint64_t retired,
                                    unsigned flushed_in_flight) {
  STEERSIM_EXPECTS(has_checkpoint_);
  STEERSIM_EXPECTS(cycle >= checkpoint_.cycle);
  STEERSIM_EXPECTS(retired >= checkpoint_.retired);
  ++stats_.rollbacks;
  stats_.instructions_replayed += retired - checkpoint_.retired;
  stats_.cycles_rewound += cycle - checkpoint_.cycle;
  stats_.flushed_in_flight += flushed_in_flight;
  if (on_rollback_) {
    on_rollback_(checkpoint_);
  }
}

}  // namespace steersim
