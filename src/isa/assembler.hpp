// Two-pass assembler for the steersim RISC ISA.
//
// Grammar (one statement per line, '#' or ';' starts a comment, commas are
// optional whitespace):
//
//   .text                         switch to code section (default)
//   .data                         switch to data section
//   label:                        define a label in the current section
//   .word  v1 v2 ...              emit 64-bit integer words (data section)
//   .double v1 v2 ...             emit doubles, bit-cast into words
//   .space N                      emit N zero words
//   add r1, r2, r3                machine instructions per the ISA
//   lw  r1, 8(r2)   /  sw r1, 8(r2)
//   beq r1, r2, label             branch targets are labels
//
// Pseudo-instructions: li rd, imm; la rd, data_label; mv rd, rs;
// call label (jal r31); ret (jr r31); b label (j).
//
// Register aliases: zero=r0, sp=r30, ra=r31.
//
// Errors in the source are user-input errors and are reported by throwing
// AssemblyError with the offending line number (Core Guidelines E.x: use
// exceptions at the input boundary only).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace steersim {

class AssemblyError : public std::runtime_error {
 public:
  AssemblyError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Assembles `source` into a Program named `name`.
/// Throws AssemblyError on malformed input.
Program assemble(std::string_view source, std::string name = "program");

}  // namespace steersim
