#include "isa/opcode.hpp"

#include <array>

#include "common/contracts.hpp"

namespace steersim {
namespace {

constexpr OpInfo make_alu_rr(std::string_view mnemonic) {
  return {mnemonic, FuType::kIntAlu, Format::kR,       1,
          RegClass::kInt, RegClass::kInt, RegClass::kInt,
          false,          false,          false,        false, false};
}

constexpr OpInfo make_alu_ri(std::string_view mnemonic) {
  return {mnemonic, FuType::kIntAlu, Format::kI,        1,
          RegClass::kInt, RegClass::kInt, RegClass::kNone,
          false,          false,          false,         false, false};
}

constexpr OpInfo make_branch(std::string_view mnemonic) {
  return {mnemonic, FuType::kIntAlu, Format::kB,       1,
          RegClass::kNone, RegClass::kInt, RegClass::kInt,
          true,            false,          false,       false, false};
}

constexpr OpInfo make_mdu(std::string_view mnemonic, std::uint8_t latency) {
  return {mnemonic, FuType::kIntMdu, Format::kR,       latency,
          RegClass::kInt, RegClass::kInt, RegClass::kInt,
          false,          false,          false,        false, false};
}

constexpr OpInfo make_fp_rr(std::string_view mnemonic, FuType fu,
                            std::uint8_t latency) {
  return {mnemonic, fu,            Format::kR,      latency,
          RegClass::kFp, RegClass::kFp, RegClass::kFp,
          false,         false,         false,       false, false};
}

constexpr OpInfo make_fp_cmp(std::string_view mnemonic) {
  // FP compares read the FP file but write an integer predicate.
  return {mnemonic, FuType::kFpAlu, Format::kR,     3,
          RegClass::kInt, RegClass::kFp, RegClass::kFp,
          false,          false,         false,      false, false};
}

constexpr std::array<OpInfo, kNumOpcodes> build_table() {
  std::array<OpInfo, kNumOpcodes> t{};
  auto at = [&t](Opcode op) -> OpInfo& {
    return t[static_cast<std::size_t>(op)];
  };

  at(Opcode::kAdd) = make_alu_rr("add");
  at(Opcode::kSub) = make_alu_rr("sub");
  at(Opcode::kAnd) = make_alu_rr("and");
  at(Opcode::kOr) = make_alu_rr("or");
  at(Opcode::kXor) = make_alu_rr("xor");
  at(Opcode::kSll) = make_alu_rr("sll");
  at(Opcode::kSrl) = make_alu_rr("srl");
  at(Opcode::kSra) = make_alu_rr("sra");
  at(Opcode::kSlt) = make_alu_rr("slt");
  at(Opcode::kSltu) = make_alu_rr("sltu");

  at(Opcode::kAddi) = make_alu_ri("addi");
  at(Opcode::kAndi) = make_alu_ri("andi");
  at(Opcode::kOri) = make_alu_ri("ori");
  at(Opcode::kXori) = make_alu_ri("xori");
  at(Opcode::kSlti) = make_alu_ri("slti");
  at(Opcode::kSlli) = make_alu_ri("slli");
  at(Opcode::kSrli) = make_alu_ri("srli");
  at(Opcode::kSrai) = make_alu_ri("srai");
  at(Opcode::kLui) = {"lui",          FuType::kIntAlu, Format::kI,      1,
                      RegClass::kInt, RegClass::kNone, RegClass::kNone,
                      false,          false,           false,           false,
                      false};
  at(Opcode::kNop) = {"nop",           FuType::kIntAlu, Format::kNone,   1,
                      RegClass::kNone, RegClass::kNone, RegClass::kNone,
                      false,           false,           false,           false,
                      false};

  at(Opcode::kBeq) = make_branch("beq");
  at(Opcode::kBne) = make_branch("bne");
  at(Opcode::kBlt) = make_branch("blt");
  at(Opcode::kBge) = make_branch("bge");
  at(Opcode::kBltu) = make_branch("bltu");
  at(Opcode::kBgeu) = make_branch("bgeu");
  at(Opcode::kJ) = {"j",             FuType::kIntAlu, Format::kJ,      1,
                    RegClass::kNone, RegClass::kNone, RegClass::kNone,
                    false,           true,            false,           false,
                    false};
  at(Opcode::kJal) = {"jal",          FuType::kIntAlu, Format::kJ,      1,
                      RegClass::kInt, RegClass::kNone, RegClass::kNone,
                      false,          true,            false,           false,
                      false};
  at(Opcode::kJr) = {"jr",            FuType::kIntAlu, Format::kJr,     1,
                     RegClass::kNone, RegClass::kInt,  RegClass::kNone,
                     false,           true,            false,           false,
                     false};
  at(Opcode::kHalt) = {"halt",          FuType::kIntAlu, Format::kNone, 1,
                       RegClass::kNone, RegClass::kNone, RegClass::kNone,
                       false,           false,           false,         false,
                       true};

  at(Opcode::kMul) = make_mdu("mul", 4);
  at(Opcode::kMulh) = make_mdu("mulh", 4);
  at(Opcode::kDiv) = make_mdu("div", 12);
  at(Opcode::kRem) = make_mdu("rem", 12);

  at(Opcode::kLw) = {"lw",           FuType::kLsu,   Format::kI,      3,
                     RegClass::kInt, RegClass::kInt, RegClass::kNone,
                     false,          false,          true,            false,
                     false};
  at(Opcode::kLb) = {"lb",           FuType::kLsu,   Format::kI,      3,
                     RegClass::kInt, RegClass::kInt, RegClass::kNone,
                     false,          false,          true,            false,
                     false};
  at(Opcode::kSw) = {"sw",            FuType::kLsu,  Format::kS,      3,
                     RegClass::kNone, RegClass::kInt, RegClass::kInt,
                     false,           false,          false,          true,
                     false};
  at(Opcode::kSb) = {"sb",            FuType::kLsu,  Format::kS,      3,
                     RegClass::kNone, RegClass::kInt, RegClass::kInt,
                     false,           false,          false,          true,
                     false};
  at(Opcode::kFlw) = {"flw",         FuType::kLsu,   Format::kI,      3,
                      RegClass::kFp, RegClass::kInt, RegClass::kNone,
                      false,         false,          true,            false,
                      false};
  at(Opcode::kFsw) = {"fsw",           FuType::kLsu,  Format::kS,     3,
                      RegClass::kNone, RegClass::kInt, RegClass::kFp,
                      false,           false,          false,         true,
                      false};

  at(Opcode::kFadd) = make_fp_rr("fadd", FuType::kFpAlu, 3);
  at(Opcode::kFsub) = make_fp_rr("fsub", FuType::kFpAlu, 3);
  at(Opcode::kFmin) = make_fp_rr("fmin", FuType::kFpAlu, 3);
  at(Opcode::kFmax) = make_fp_rr("fmax", FuType::kFpAlu, 3);
  at(Opcode::kFabs) = {"fabs",        FuType::kFpAlu, Format::kR,      3,
                       RegClass::kFp, RegClass::kFp,  RegClass::kNone,
                       false,         false,          false,           false,
                       false};
  at(Opcode::kFneg) = {"fneg",        FuType::kFpAlu, Format::kR,      3,
                       RegClass::kFp, RegClass::kFp,  RegClass::kNone,
                       false,         false,          false,           false,
                       false};
  at(Opcode::kFeq) = make_fp_cmp("feq");
  at(Opcode::kFlt) = make_fp_cmp("flt");
  at(Opcode::kFle) = make_fp_cmp("fle");
  at(Opcode::kCvtIF) = {"cvt.i.f",     FuType::kFpAlu, Format::kR,      3,
                        RegClass::kFp, RegClass::kInt, RegClass::kNone,
                        false,         false,          false,           false,
                        false};
  at(Opcode::kCvtFI) = {"cvt.f.i",      FuType::kFpAlu, Format::kR,      3,
                        RegClass::kInt, RegClass::kFp,  RegClass::kNone,
                        false,          false,          false,           false,
                        false};

  at(Opcode::kFmul) = make_fp_rr("fmul", FuType::kFpMdu, 5);
  at(Opcode::kFdiv) = make_fp_rr("fdiv", FuType::kFpMdu, 16);
  at(Opcode::kFsqrt) = {"fsqrt",       FuType::kFpMdu, Format::kR,      20,
                        RegClass::kFp, RegClass::kFp,  RegClass::kNone,
                        false,         false,          false,           false,
                        false};

  return t;
}

constexpr std::array<OpInfo, kNumOpcodes> kOpTable = build_table();

}  // namespace

const OpInfo& op_info(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  STEERSIM_EXPECTS(idx < kNumOpcodes);
  return kOpTable[idx];
}

}  // namespace steersim
