// RV32IM+F front end: decodes real RISC-V machine words and translates
// them onto the steersim machine (docs/ISA.md, DESIGN.md §RV32 front end).
//
// The paper's steering hypothesis is about phase behaviour of *real* code,
// so this front end lets compiled RV32 programs exercise the RFU steering:
// every implemented RISC-V opcode maps onto exactly one of the five
// functional-unit types (IntAlu/IntMdu/Lsu/FpAlu/FpMdu) at the latencies
// in isa/opcode.hpp — M-extension ops land on IntMdu, F ops on
// FpAlu/FpMdu — and translates into the existing Instruction/Program
// representation that the fetch unit already executes.
//
// Address spaces (the key translation decision):
//   * The internal PC is an instruction *index*, not a byte address.
//     Translation maps RV32 text word i at byte address base+4i to one or
//     more internal instructions and rewrites all control-flow offsets
//     into index space. `jal` links and `jr` targets therefore live in
//     index space — consistent as long as jump targets only come from
//     jal/jalr links (function call/return), which translated code
//     guarantees.
//   * `auipc`/`lui` materialize their architectural byte-address/constant
//     value (auipc resolves statically at translation time); deriving an
//     *indirect jump target* from an auipc value is out of scope and will
//     misbehave, so fixtures and supported programs must not do it.
//   * Data addresses are RV32 byte addresses into the simulated data
//     memory. The memory model keeps the host machine's 64-bit cells:
//     lw/sw move 64-bit words and flw/fsw move binary64 values, so word
//     arrays stride 8 bytes, not 4 (see docs/ISA.md for the full list of
//     modelling divergences).
//
// Unsupported encodings (A/C extensions, sub-word halfword accesses,
// unsigned divide/branches, bit-pattern FP moves, linking jalr) raise
// Rv32Error with a typed kind and the faulting byte address — malformed
// input is never undefined behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/program.hpp"

namespace steersim::rv32 {

/// Typed decode/translation failure; `addr` is the byte address of the
/// offending word (or 0 when no address applies).
class Rv32Error : public std::runtime_error {
 public:
  enum class Kind {
    kUnknownInstruction,  ///< no table entry matches the word
    kUnsupported,         ///< decodes, but has no internal mapping
    kBadOperand,          ///< operand constraint violated (e.g. sltiu rd==rs1)
    kBadTarget,           ///< branch/jump target misaligned or outside .text
    kImmOutOfRange,       ///< translated offset exceeds imm15/imm20
  };

  Rv32Error(Kind kind, std::uint32_t addr, const std::string& message)
      : std::runtime_error("rv32: 0x" + hex(addr) + ": " + message),
        kind_(kind),
        addr_(addr) {}

  Kind kind() const { return kind_; }
  std::uint32_t addr() const { return addr_; }

 private:
  static std::string hex(std::uint32_t v);
  Kind kind_;
  std::uint32_t addr_;
};

/// How a matched RV32 instruction becomes internal instruction(s).
enum class Expand : std::uint8_t {
  kAluRR,    ///< R-type -> internal R-type, registers verbatim
  kAluRI,    ///< I-type -> internal I-type (imm12 fits imm15)
  kShift,    ///< slli/srli/srai: shamt from rs2 field
  kLoad,     ///< lb/lw/flw -> internal load
  kLbu,      ///< lb + andi 0xff zero-extension (2 instructions)
  kStore,    ///< sb/sw/fsw -> internal store
  kBranch,   ///< beq/bne/blt/bge, offset rewritten to index space
  kLui,      ///< materialize imm20<<12 (lui + ori, 2 instructions)
  kAuipc,    ///< materialize pc + imm20<<12 statically (2 instructions)
  kJal,      ///< j / jal, offset rewritten to index space
  kJalr,     ///< rd=x0, imm=0 -> jr; anything else unsupported
  kSltiu,    ///< addi tmp + sltu (2 instructions, requires rd != rs1)
  kFpRR,     ///< R-type FP -> internal FP R-type
  kFpUnary,  ///< fsqrt: rd, rs1 only (rs2 must be 0)
  kFsgnj,    ///< rs1==rs2 pseudo forms fmv/fneg.s/fabs.s only
  kFcvt,     ///< fcvt.w.s / fcvt.s.w (rs2 selects signedness)
  kFcmp,     ///< feq/flt/fle: FP sources, integer destination
  kNop,      ///< fence et al: no architectural effect here
  kHalt,     ///< ecall/ebreak end the simulated program
};

/// Instruction encoding format (which immediate decoding applies).
enum class Format : std::uint8_t { kR, kI, kS, kB, kU, kJ };

inline constexpr std::uint8_t kAnyF3 = 0xff;
inline constexpr std::uint8_t kAnyF7 = 0xff;

/// One row of the decode table: an (opcode, funct3, funct7) pattern plus
/// the translation recipe.
struct Rv32Op {
  std::string_view mnemonic;
  std::uint8_t major;   ///< bits [6:0]
  std::uint8_t funct3;  ///< bits [14:12] or kAnyF3
  std::uint8_t funct7;  ///< bits [31:25] or kAnyF7
  Format format;
  Expand expand;
  /// Internal opcode for 1:1 recipes; the first/defining opcode for
  /// multi-instruction expansions (what golden tests check FU/latency on).
  Opcode internal;
};

/// The full decode table (every implemented RV32IM+F encoding), for
/// golden-vector tests that want to sweep each row.
std::span<const Rv32Op> table();

/// Raw field split of one word (immediates sign-extended per format).
struct Fields {
  std::uint32_t word = 0;
  std::uint8_t major = 0;
  std::uint8_t rd = 0;
  std::uint8_t funct3 = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t funct7 = 0;
  std::int32_t imm_i = 0;  ///< I-type, sign-extended 12-bit
  std::int32_t imm_s = 0;  ///< S-type
  std::int32_t imm_b = 0;  ///< B-type (byte offset, bit 0 zero)
  std::int32_t imm_u = 0;  ///< U-type: upper 20 bits, NOT shifted
  std::int32_t imm_j = 0;  ///< J-type (byte offset, bit 0 zero)
};

Fields split_fields(std::uint32_t word);

/// Table lookup; nullptr when no row matches (unknown instruction).
const Rv32Op* lookup(std::uint32_t word);

/// Translation of one text image. `index_of[i]` is the internal index of
/// the first instruction emitted for text word i — the addr->index map
/// the control-flow rewrite used, exposed for tests and debuggers.
struct Translation {
  std::vector<Instruction> code;
  std::vector<std::uint32_t> index_of;
  /// Static translation census: how many RV32 words expanded to more than
  /// one internal instruction.
  std::uint32_t expanded_words = 0;
};

/// Translates RV32 text into internal instructions. `text_base` is the
/// byte address of text[0]; `entry` is the program entry point (when it
/// is not `text_base`, a jump stub is prepended). Throws Rv32Error.
Translation translate(std::span<const std::uint32_t> text,
                      std::uint32_t text_base, std::uint32_t entry);

// --- Encoding helpers (fixtures and tests) -------------------------------
// Hand-encoded fixture programs are built from these, and the decoder
// golden tests check encode -> decode round trips against the table.

std::uint32_t enc_r(std::uint8_t major, std::uint8_t funct3,
                    std::uint8_t funct7, std::uint8_t rd, std::uint8_t rs1,
                    std::uint8_t rs2);
std::uint32_t enc_i(std::uint8_t major, std::uint8_t funct3, std::uint8_t rd,
                    std::uint8_t rs1, std::int32_t imm);
std::uint32_t enc_s(std::uint8_t major, std::uint8_t funct3, std::uint8_t rs1,
                    std::uint8_t rs2, std::int32_t imm);
std::uint32_t enc_b(std::uint8_t major, std::uint8_t funct3, std::uint8_t rs1,
                    std::uint8_t rs2, std::int32_t offset);
std::uint32_t enc_u(std::uint8_t major, std::uint8_t rd, std::int32_t imm20);
std::uint32_t enc_j(std::uint8_t major, std::uint8_t rd, std::int32_t offset);

// Mnemonic-level conveniences for the common fixture vocabulary.
std::uint32_t addi(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm);
std::uint32_t add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t mul(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t div(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t rem(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t slli(std::uint8_t rd, std::uint8_t rs1, std::uint8_t shamt);
std::uint32_t srli(std::uint8_t rd, std::uint8_t rs1, std::uint8_t shamt);
std::uint32_t lui(std::uint8_t rd, std::int32_t imm20);
std::uint32_t lw(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm);
std::uint32_t sw(std::uint8_t rs1, std::uint8_t rs2, std::int32_t imm);
std::uint32_t flw(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm);
std::uint32_t fsw(std::uint8_t rs1, std::uint8_t rs2, std::int32_t imm);
std::uint32_t beq(std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset);
std::uint32_t bne(std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset);
std::uint32_t blt(std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset);
std::uint32_t bge(std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset);
std::uint32_t jal(std::uint8_t rd, std::int32_t offset);
std::uint32_t jalr(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm);
std::uint32_t fadd_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t fsub_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t fmul_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t fdiv_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t fcvt_s_w(std::uint8_t rd, std::uint8_t rs1);
std::uint32_t fcvt_w_s(std::uint8_t rd, std::uint8_t rs1);
std::uint32_t flt_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
std::uint32_t ecall();

}  // namespace steersim::rv32
