// Decoded instruction representation plus the 32-bit binary encoding.
//
// Instruction memory stores encoded words (the fetch/decode pipeline is
// real, and the trace cache caches decoded instructions), so the encoding
// round-trip is part of the simulated machine, not just serialization.
//
// Word layout (bit 31 .. bit 0):
//   [31:25] opcode (7 bits)
//   kR    : [24:20] rd   [19:15] rs1  [14:10] rs2
//   kI    : [24:20] rd   [19:15] rs1  [14:0]  imm15 (signed)
//   kS/kB : [24:20] rs1  [19:15] rs2  [14:0]  imm15 (signed)
//   kJ    : [24:20] rd   [19:0]  imm20 (signed)
//   kJr   : [24:20] rs1
//   kNone : zero
#pragma once

#include <cstdint>
#include <string>

#include "isa/opcode.hpp"

namespace steersim {

inline constexpr unsigned kNumIntRegs = 32;
inline constexpr unsigned kNumFpRegs = 32;
/// r31 doubles as the link register for `jal`/`call`.
inline constexpr std::uint8_t kLinkReg = 31;

inline constexpr std::int32_t kImm15Min = -(1 << 14);
inline constexpr std::int32_t kImm15Max = (1 << 14) - 1;
inline constexpr std::int32_t kImm20Min = -(1 << 19);
inline constexpr std::int32_t kImm20Max = (1 << 19) - 1;

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Encodes to the 32-bit word; contract-checks field ranges.
std::uint32_t encode(const Instruction& inst);

/// Decodes a 32-bit word. Invalid opcodes fail a contract check; words are
/// produced only by the assembler/encoder in this system.
Instruction decode(std::uint32_t word);

/// Human-readable rendering, e.g. "addi r5, r0, 42" or "lw r3, 8(r2)".
std::string disassemble(const Instruction& inst);

/// Convenience constructors used by tests and the workload generator.
Instruction make_rr(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                    std::uint8_t rs2);
Instruction make_ri(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                    std::int32_t imm);
Instruction make_store(Opcode op, std::uint8_t value_reg,
                       std::uint8_t base_reg, std::int32_t imm);
Instruction make_branch(Opcode op, std::uint8_t rs1, std::uint8_t rs2,
                        std::int32_t offset);
Instruction make_jump(Opcode op, std::uint8_t rd, std::int32_t offset);

}  // namespace steersim
