// Opcode set of the steersim RISC ISA.
//
// A deliberately small MIPS-flavoured ISA with the one property the paper
// requires: each opcode is served by exactly one functional-unit type.
// Latencies follow common textbook superscalar models (ALU 1, load 3,
// multiply 4, divide 12, FP add 3, FP multiply 5, FP divide 16, sqrt 20).
#pragma once

#include <cstdint>
#include <string_view>

#include "isa/fu_type.hpp"

namespace steersim {

enum class Opcode : std::uint8_t {
  // Integer ALU, register-register.
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSra,
  kSlt,
  kSltu,
  // Integer ALU, register-immediate.
  kAddi,
  kAndi,
  kOri,
  kXori,
  kSlti,
  kSlli,
  kSrli,
  kSrai,
  kLui,
  kNop,
  // Control flow (resolved on the Int-ALU).
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kJ,
  kJal,
  kJr,
  kHalt,
  // Integer multiply/divide.
  kMul,
  kMulh,
  kDiv,
  kRem,
  // Loads/stores (integer and FP data).
  kLw,
  kLb,
  kSw,
  kSb,
  kFlw,
  kFsw,
  // FP ALU.
  kFadd,
  kFsub,
  kFmin,
  kFmax,
  kFabs,
  kFneg,
  kFeq,
  kFlt,
  kFle,
  kCvtIF,  ///< int -> fp
  kCvtFI,  ///< fp -> int (truncating)
  // FP multiply/divide.
  kFmul,
  kFdiv,
  kFsqrt,

  kCount_,
};

inline constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::kCount_);

/// Instruction encoding formats (fields used by the opcode).
enum class Format : std::uint8_t {
  kR,     ///< rd, rs1, rs2
  kI,     ///< rd, rs1, imm15   (ALU-immediate and loads)
  kS,     ///< rs1, rs2, imm15  (stores: mem[rs1+imm] = rs2)
  kB,     ///< rs1, rs2, imm15  (conditional branch, pc-relative)
  kJ,     ///< rd, imm20        (J ignores rd; JAL links into rd)
  kJr,    ///< rs1
  kNone,  ///< no operands (NOP, HALT)
};

/// Which register file an operand slot addresses.
enum class RegClass : std::uint8_t { kNone, kInt, kFp };

struct OpInfo {
  std::string_view mnemonic;
  FuType fu;
  Format format;
  std::uint8_t latency;  ///< execution latency in cycles (>= 1)
  RegClass rd_class;
  RegClass rs1_class;
  RegClass rs2_class;
  bool is_branch;  ///< conditional branch
  bool is_jump;    ///< unconditional control transfer
  bool is_load;
  bool is_store;
  bool is_halt;
};

/// Metadata for an opcode; total function over valid opcodes.
const OpInfo& op_info(Opcode op);

/// Functional-unit type required by an opcode (paper: exactly one per op).
inline FuType fu_type_of(Opcode op) { return op_info(op).fu; }

/// True for any instruction that can redirect the PC.
inline bool is_control(Opcode op) {
  const auto& info = op_info(op);
  return info.is_branch || info.is_jump;
}

}  // namespace steersim
