// The five functional-unit types of the architecture (paper Table 1).
//
// The paper assumes a RISC ISA in which every instruction is supported by
// exactly one type of functional unit; FuType is that classification and is
// the currency exchanged between the decoder, the configuration manager and
// the scheduler.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace steersim {

enum class FuType : std::uint8_t {
  kIntAlu = 0,  ///< Integer arithmetic/logic (also branches/jumps).
  kIntMdu = 1,  ///< Integer multiply/divide.
  kLsu = 2,     ///< Load/store.
  kFpAlu = 3,   ///< Floating-point arithmetic/logic.
  kFpMdu = 4,   ///< Floating-point multiply/divide.
};

inline constexpr unsigned kNumFuTypes = 5;

inline constexpr std::array<FuType, kNumFuTypes> kAllFuTypes = {
    FuType::kIntAlu, FuType::kIntMdu, FuType::kLsu, FuType::kFpAlu,
    FuType::kFpMdu};

constexpr std::string_view fu_type_name(FuType t) {
  switch (t) {
    case FuType::kIntAlu:
      return "Int-ALU";
    case FuType::kIntMdu:
      return "Int-MDU";
    case FuType::kLsu:
      return "LSU";
    case FuType::kFpAlu:
      return "FP-ALU";
    case FuType::kFpMdu:
      return "FP-MDU";
  }
  return "?";
}

constexpr unsigned fu_index(FuType t) { return static_cast<unsigned>(t); }

/// Per-type quantity vector (e.g. required units, configured units).
using FuCounts = std::array<std::uint8_t, kNumFuTypes>;

constexpr unsigned fu_counts_total(const FuCounts& c) {
  unsigned total = 0;
  for (const auto v : c) {
    total += v;
  }
  return total;
}

}  // namespace steersim
