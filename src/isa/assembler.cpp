#include "isa/assembler.hpp"

#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace steersim {
namespace {

const std::map<std::string, Opcode>& mnemonic_table() {
  static const std::map<std::string, Opcode> table = [] {
    std::map<std::string, Opcode> t;
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
      const auto op = static_cast<Opcode>(i);
      t.emplace(std::string(op_info(op).mnemonic), op);
    }
    return t;
  }();
  return table;
}

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (c == ' ' || c == '\t' || c == ',') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

class Assembler {
 public:
  explicit Assembler(std::string_view source, std::string name) {
    program_.name = std::move(name);
    for (const auto& raw_line : split(source, '\n')) {
      std::string_view line(raw_line);
      const auto hash = line.find_first_of("#;");
      if (hash != std::string_view::npos) {
        line = line.substr(0, hash);
      }
      lines_.emplace_back(trim(line));
    }
  }

  Program run() {
    data_pass();
    code_pass(/*emit=*/false);
    code_pass(/*emit=*/true);
    return std::move(program_);
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw AssemblyError(line_number_, message);
  }

  /// Splits off a leading "label:" if present; records it via `define`.
  template <typename DefineFn>
  std::vector<std::string> strip_label(std::vector<std::string> tokens,
                                       DefineFn define) {
    if (!tokens.empty() && tokens.front().back() == ':') {
      std::string label = tokens.front().substr(0, tokens.front().size() - 1);
      if (label.empty()) {
        fail("empty label");
      }
      define(std::move(label));
      tokens.erase(tokens.begin());
    }
    return tokens;
  }

  static bool is_directive(const std::vector<std::string>& tokens,
                           std::string_view name) {
    return !tokens.empty() && tokens.front() == name;
  }

  std::int64_t parse_int(const std::string& tok) const {
    try {
      std::size_t pos = 0;
      const std::int64_t value = std::stoll(tok, &pos, 0);
      if (pos != tok.size()) {
        fail("bad integer '" + tok + "'");
      }
      return value;
    } catch (const AssemblyError&) {
      throw;
    } catch (const std::exception&) {
      fail("bad integer '" + tok + "'");
    }
  }

  double parse_fp(const std::string& tok) const {
    try {
      std::size_t pos = 0;
      const double value = std::stod(tok, &pos);
      if (pos != tok.size()) {
        fail("bad float '" + tok + "'");
      }
      return value;
    } catch (const AssemblyError&) {
      throw;
    } catch (const std::exception&) {
      fail("bad float '" + tok + "'");
    }
  }

  std::uint8_t parse_reg(const std::string& tok, RegClass cls) const {
    STEERSIM_EXPECTS(cls != RegClass::kNone);
    std::string name = tok;
    if (cls == RegClass::kInt) {
      if (name == "zero") {
        name = "r0";
      } else if (name == "sp") {
        name = "r30";
      } else if (name == "ra") {
        name = "r31";
      }
    }
    const char prefix = cls == RegClass::kInt ? 'r' : 'f';
    if (name.size() < 2 || name[0] != prefix) {
      fail(std::string("expected ") + (cls == RegClass::kInt ? "integer" : "FP") +
           " register, got '" + tok + "'");
    }
    const std::int64_t idx = parse_int(name.substr(1));
    if (idx < 0 || idx >= kNumIntRegs) {
      fail("register index out of range in '" + tok + "'");
    }
    return static_cast<std::uint8_t>(idx);
  }

  /// Parses "imm(reg)" memory operands.
  std::pair<std::int32_t, std::uint8_t> parse_mem(const std::string& tok) const {
    const auto open = tok.find('(');
    const auto close = tok.find(')', open);
    if (open == std::string::npos || close != tok.size() - 1) {
      fail("expected mem operand 'imm(reg)', got '" + tok + "'");
    }
    const std::int64_t imm =
        open == 0 ? 0 : parse_int(tok.substr(0, open));
    if (imm < kImm15Min || imm > kImm15Max) {
      fail("mem offset out of range in '" + tok + "'");
    }
    const std::uint8_t base =
        parse_reg(tok.substr(open + 1, close - open - 1), RegClass::kInt);
    return {static_cast<std::int32_t>(imm), base};
  }

  void data_pass() {
    bool in_data = false;
    line_number_ = 0;
    for (const auto& line : lines_) {
      ++line_number_;
      auto tokens = tokenize(line);
      if (tokens.empty()) {
        continue;
      }
      if (is_directive(tokens, ".data")) {
        in_data = true;
        continue;
      }
      if (is_directive(tokens, ".text")) {
        in_data = false;
        continue;
      }
      if (!in_data) {
        continue;
      }
      tokens = strip_label(std::move(tokens), [this](std::string label) {
        if (!program_.data_labels.emplace(label, program_.data.size() * 8)
                 .second) {
          fail("duplicate data label '" + label + "'");
        }
      });
      if (tokens.empty()) {
        continue;
      }
      if (tokens.front() == ".word") {
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          program_.data.push_back(parse_int(tokens[i]));
        }
      } else if (tokens.front() == ".double") {
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          program_.data.push_back(
              std::bit_cast<std::int64_t>(parse_fp(tokens[i])));
        }
      } else if (tokens.front() == ".space") {
        if (tokens.size() != 2) {
          fail(".space takes one operand");
        }
        const std::int64_t n = parse_int(tokens[1]);
        if (n < 0) {
          fail(".space size must be nonnegative");
        }
        program_.data.insert(program_.data.end(),
                             static_cast<std::size_t>(n), 0);
      } else {
        fail("unknown data directive '" + tokens.front() + "'");
      }
    }
  }

  /// Emits `li`-style immediate materialization (1 or 2 instructions).
  void emit_li(bool emit, std::uint8_t rd, std::int64_t value) {
    if (value >= kImm15Min && value <= kImm15Max) {
      append(emit, make_ri(Opcode::kAddi, rd, 0,
                           static_cast<std::int32_t>(value)));
      return;
    }
    // lui rd, hi; ori rd, rd, lo  where value == (hi << 14) | lo.
    const std::int64_t hi = value >> 14;
    const std::int64_t lo = value & 0x3fff;
    if (hi < kImm15Min || hi > kImm15Max) {
      fail("immediate out of range for li: " + std::to_string(value));
    }
    append(emit, make_ri(Opcode::kLui, rd, 0, static_cast<std::int32_t>(hi)));
    append(emit,
           make_ri(Opcode::kOri, rd, rd, static_cast<std::int32_t>(lo)));
  }

  void append(bool emit, const Instruction& inst) {
    if (emit) {
      program_.code.push_back(inst);
    }
    ++pc_;
  }

  std::int32_t resolve_code_label(const std::string& label, bool emit) const {
    if (!emit) {
      return 0;  // sizing pass: offsets unknown but sizes are fixed
    }
    const auto it = program_.code_labels.find(label);
    if (it == program_.code_labels.end()) {
      fail("unknown code label '" + label + "'");
    }
    return static_cast<std::int32_t>(it->second) -
           static_cast<std::int32_t>(pc_);
  }

  std::uint64_t resolve_data_label(const std::string& label) const {
    const auto it = program_.data_labels.find(label);
    if (it == program_.data_labels.end()) {
      fail("unknown data label '" + label + "'");
    }
    return it->second;
  }

  /// A branch/jump target is either a label or a numeric relative offset.
  std::int32_t parse_target(const std::string& tok, bool emit) const {
    if (!tok.empty() &&
        (std::isdigit(static_cast<unsigned char>(tok[0])) != 0 ||
         tok[0] == '-' || tok[0] == '+')) {
      return static_cast<std::int32_t>(parse_int(tok));
    }
    return resolve_code_label(tok, emit);
  }

  void expect_operands(const std::vector<std::string>& tokens,
                       std::size_t n) const {
    if (tokens.size() != n + 1) {
      fail("'" + tokens.front() + "' expects " + std::to_string(n) +
           " operand(s), got " + std::to_string(tokens.size() - 1));
    }
  }

  void parse_statement(const std::vector<std::string>& tokens, bool emit) {
    const std::string& m = tokens.front();

    // Pseudo-instructions first.
    if (m == "li") {
      expect_operands(tokens, 2);
      emit_li(emit, parse_reg(tokens[1], RegClass::kInt),
              parse_int(tokens[2]));
      return;
    }
    if (m == "la") {
      expect_operands(tokens, 2);
      emit_li(emit, parse_reg(tokens[1], RegClass::kInt),
              static_cast<std::int64_t>(resolve_data_label(tokens[2])));
      return;
    }
    if (m == "mv") {
      expect_operands(tokens, 2);
      append(emit, make_rr(Opcode::kAdd, parse_reg(tokens[1], RegClass::kInt),
                           parse_reg(tokens[2], RegClass::kInt), 0));
      return;
    }
    if (m == "b") {
      expect_operands(tokens, 1);
      append(emit, make_jump(Opcode::kJ, 0, parse_target(tokens[1], emit)));
      return;
    }
    if (m == "call") {
      expect_operands(tokens, 1);
      append(emit,
             make_jump(Opcode::kJal, kLinkReg, parse_target(tokens[1], emit)));
      return;
    }
    if (m == "ret") {
      expect_operands(tokens, 0);
      append(emit, Instruction{Opcode::kJr, 0, kLinkReg, 0, 0});
      return;
    }

    const auto it = mnemonic_table().find(m);
    if (it == mnemonic_table().end()) {
      fail("unknown mnemonic '" + m + "'");
    }
    const Opcode op = it->second;
    const OpInfo& info = op_info(op);

    switch (info.format) {
      case Format::kR: {
        if (info.rs2_class == RegClass::kNone) {
          expect_operands(tokens, 2);
          append(emit, Instruction{op, parse_reg(tokens[1], info.rd_class),
                                   parse_reg(tokens[2], info.rs1_class), 0, 0});
        } else {
          expect_operands(tokens, 3);
          append(emit, make_rr(op, parse_reg(tokens[1], info.rd_class),
                               parse_reg(tokens[2], info.rs1_class),
                               parse_reg(tokens[3], info.rs2_class)));
        }
        return;
      }
      case Format::kI: {
        if (info.is_load) {
          expect_operands(tokens, 2);
          const auto [imm, base] = parse_mem(tokens[2]);
          append(emit, Instruction{op, parse_reg(tokens[1], info.rd_class),
                                   base, 0, imm});
          return;
        }
        if (info.rs1_class == RegClass::kNone) {  // lui
          expect_operands(tokens, 2);
          const std::int64_t imm = parse_int(tokens[2]);
          if (imm < kImm15Min || imm > kImm15Max) {
            fail("immediate out of range: " + std::to_string(imm));
          }
          append(emit, make_ri(op, parse_reg(tokens[1], info.rd_class), 0,
                               static_cast<std::int32_t>(imm)));
          return;
        }
        expect_operands(tokens, 3);
        const std::int64_t imm = parse_int(tokens[3]);
        if (imm < kImm15Min || imm > kImm15Max) {
          fail("immediate out of range: " + std::to_string(imm));
        }
        append(emit, make_ri(op, parse_reg(tokens[1], info.rd_class),
                             parse_reg(tokens[2], info.rs1_class),
                             static_cast<std::int32_t>(imm)));
        return;
      }
      case Format::kS: {
        expect_operands(tokens, 2);
        const auto [imm, base] = parse_mem(tokens[2]);
        append(emit, make_store(op, parse_reg(tokens[1], info.rs2_class),
                                base, imm));
        return;
      }
      case Format::kB: {
        expect_operands(tokens, 3);
        append(emit, make_branch(op, parse_reg(tokens[1], info.rs1_class),
                                 parse_reg(tokens[2], info.rs2_class),
                                 parse_target(tokens[3], emit)));
        return;
      }
      case Format::kJ: {
        if (op == Opcode::kJal && tokens.size() == 3) {
          append(emit, make_jump(op, parse_reg(tokens[1], RegClass::kInt),
                                 parse_target(tokens[2], emit)));
          return;
        }
        expect_operands(tokens, 1);
        const std::uint8_t rd = op == Opcode::kJal ? kLinkReg : 0;
        append(emit, make_jump(op, rd, parse_target(tokens[1], emit)));
        return;
      }
      case Format::kJr: {
        expect_operands(tokens, 1);
        append(emit,
               Instruction{op, 0, parse_reg(tokens[1], RegClass::kInt), 0, 0});
        return;
      }
      case Format::kNone: {
        expect_operands(tokens, 0);
        append(emit, Instruction{op, 0, 0, 0, 0});
        return;
      }
    }
    STEERSIM_UNREACHABLE("bad format");
  }

  void code_pass(bool emit) {
    bool in_text = true;
    pc_ = 0;
    line_number_ = 0;
    for (const auto& line : lines_) {
      ++line_number_;
      auto tokens = tokenize(line);
      if (tokens.empty()) {
        continue;
      }
      if (is_directive(tokens, ".data")) {
        in_text = false;
        continue;
      }
      if (is_directive(tokens, ".text")) {
        in_text = true;
        continue;
      }
      if (!in_text) {
        continue;
      }
      tokens = strip_label(std::move(tokens), [this, emit](std::string label) {
        if (emit) {
          return;  // already recorded during the sizing pass
        }
        if (!program_.code_labels.emplace(label, pc_).second) {
          fail("duplicate code label '" + label + "'");
        }
      });
      if (tokens.empty()) {
        continue;
      }
      parse_statement(tokens, emit);
    }
  }

  std::vector<std::string> lines_;
  Program program_;
  std::uint32_t pc_ = 0;
  int line_number_ = 0;
};

}  // namespace

Program assemble(std::string_view source, std::string name) {
  return Assembler(source, std::move(name)).run();
}

}  // namespace steersim
