#include "isa/instruction.hpp"

#include "common/contracts.hpp"

namespace steersim {
namespace {

constexpr std::uint32_t field(std::uint32_t value, unsigned shift) {
  return value << shift;
}

constexpr std::uint32_t extract(std::uint32_t word, unsigned shift,
                                unsigned bits) {
  return (word >> shift) & ((1u << bits) - 1u);
}

constexpr std::int32_t sign_extend(std::uint32_t value, unsigned bits) {
  const std::uint32_t sign_bit = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ sign_bit)) -
         static_cast<std::int32_t>(sign_bit);
}

void check_reg(std::uint8_t r) { STEERSIM_EXPECTS(r < kNumIntRegs); }

std::string reg_name(RegClass cls, std::uint8_t r) {
  return (cls == RegClass::kFp ? "f" : "r") + std::to_string(r);
}

}  // namespace

std::uint32_t encode(const Instruction& inst) {
  const OpInfo& info = op_info(inst.op);
  check_reg(inst.rd);
  check_reg(inst.rs1);
  check_reg(inst.rs2);
  std::uint32_t word = field(static_cast<std::uint32_t>(inst.op), 25);
  switch (info.format) {
    case Format::kR:
      word |= field(inst.rd, 20) | field(inst.rs1, 15) | field(inst.rs2, 10);
      break;
    case Format::kI:
      STEERSIM_EXPECTS(inst.imm >= kImm15Min && inst.imm <= kImm15Max);
      word |= field(inst.rd, 20) | field(inst.rs1, 15) |
              (static_cast<std::uint32_t>(inst.imm) & 0x7fffu);
      break;
    case Format::kS:
    case Format::kB:
      STEERSIM_EXPECTS(inst.imm >= kImm15Min && inst.imm <= kImm15Max);
      word |= field(inst.rs1, 20) | field(inst.rs2, 15) |
              (static_cast<std::uint32_t>(inst.imm) & 0x7fffu);
      break;
    case Format::kJ:
      STEERSIM_EXPECTS(inst.imm >= kImm20Min && inst.imm <= kImm20Max);
      word |= field(inst.rd, 20) |
              (static_cast<std::uint32_t>(inst.imm) & 0xfffffu);
      break;
    case Format::kJr:
      word |= field(inst.rs1, 20);
      break;
    case Format::kNone:
      break;
  }
  return word;
}

Instruction decode(std::uint32_t word) {
  const auto op_bits = extract(word, 25, 7);
  STEERSIM_EXPECTS(op_bits < kNumOpcodes);
  Instruction inst;
  inst.op = static_cast<Opcode>(op_bits);
  const OpInfo& info = op_info(inst.op);
  switch (info.format) {
    case Format::kR:
      inst.rd = static_cast<std::uint8_t>(extract(word, 20, 5));
      inst.rs1 = static_cast<std::uint8_t>(extract(word, 15, 5));
      inst.rs2 = static_cast<std::uint8_t>(extract(word, 10, 5));
      break;
    case Format::kI:
      inst.rd = static_cast<std::uint8_t>(extract(word, 20, 5));
      inst.rs1 = static_cast<std::uint8_t>(extract(word, 15, 5));
      inst.imm = sign_extend(extract(word, 0, 15), 15);
      break;
    case Format::kS:
    case Format::kB:
      inst.rs1 = static_cast<std::uint8_t>(extract(word, 20, 5));
      inst.rs2 = static_cast<std::uint8_t>(extract(word, 15, 5));
      inst.imm = sign_extend(extract(word, 0, 15), 15);
      break;
    case Format::kJ:
      inst.rd = static_cast<std::uint8_t>(extract(word, 20, 5));
      inst.imm = sign_extend(extract(word, 0, 20), 20);
      break;
    case Format::kJr:
      inst.rs1 = static_cast<std::uint8_t>(extract(word, 20, 5));
      break;
    case Format::kNone:
      break;
  }
  return inst;
}

std::string disassemble(const Instruction& inst) {
  const OpInfo& info = op_info(inst.op);
  const std::string m(info.mnemonic);
  switch (info.format) {
    case Format::kR:
      if (info.rs2_class == RegClass::kNone) {
        return m + " " + reg_name(info.rd_class, inst.rd) + ", " +
               reg_name(info.rs1_class, inst.rs1);
      }
      return m + " " + reg_name(info.rd_class, inst.rd) + ", " +
             reg_name(info.rs1_class, inst.rs1) + ", " +
             reg_name(info.rs2_class, inst.rs2);
    case Format::kI:
      if (info.is_load) {
        return m + " " + reg_name(info.rd_class, inst.rd) + ", " +
               std::to_string(inst.imm) + "(" +
               reg_name(info.rs1_class, inst.rs1) + ")";
      }
      if (info.rs1_class == RegClass::kNone) {  // lui
        return m + " " + reg_name(info.rd_class, inst.rd) + ", " +
               std::to_string(inst.imm);
      }
      return m + " " + reg_name(info.rd_class, inst.rd) + ", " +
             reg_name(info.rs1_class, inst.rs1) + ", " +
             std::to_string(inst.imm);
    case Format::kS:
      return m + " " + reg_name(info.rs2_class, inst.rs2) + ", " +
             std::to_string(inst.imm) + "(" +
             reg_name(info.rs1_class, inst.rs1) + ")";
    case Format::kB:
      return m + " " + reg_name(info.rs1_class, inst.rs1) + ", " +
             reg_name(info.rs2_class, inst.rs2) + ", " +
             std::to_string(inst.imm);
    case Format::kJ:
      if (inst.op == Opcode::kJal) {
        return m + " " + reg_name(RegClass::kInt, inst.rd) + ", " +
               std::to_string(inst.imm);
      }
      return m + " " + std::to_string(inst.imm);
    case Format::kJr:
      return m + " " + reg_name(RegClass::kInt, inst.rs1);
    case Format::kNone:
      return m;
  }
  STEERSIM_UNREACHABLE("bad format");
}

Instruction make_rr(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                    std::uint8_t rs2) {
  STEERSIM_EXPECTS(op_info(op).format == Format::kR);
  return {op, rd, rs1, rs2, 0};
}

Instruction make_ri(Opcode op, std::uint8_t rd, std::uint8_t rs1,
                    std::int32_t imm) {
  STEERSIM_EXPECTS(op_info(op).format == Format::kI);
  return {op, rd, rs1, 0, imm};
}

Instruction make_store(Opcode op, std::uint8_t value_reg,
                       std::uint8_t base_reg, std::int32_t imm) {
  STEERSIM_EXPECTS(op_info(op).format == Format::kS);
  return {op, 0, base_reg, value_reg, imm};
}

Instruction make_branch(Opcode op, std::uint8_t rs1, std::uint8_t rs2,
                        std::int32_t offset) {
  STEERSIM_EXPECTS(op_info(op).format == Format::kB);
  return {op, 0, rs1, rs2, offset};
}

Instruction make_jump(Opcode op, std::uint8_t rd, std::int32_t offset) {
  STEERSIM_EXPECTS(op_info(op).format == Format::kJ);
  return {op, rd, 0, 0, offset};
}

}  // namespace steersim
