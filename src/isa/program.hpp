// A loadable program: code image plus initial data-memory image.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace steersim {

struct Program {
  std::string name;
  std::vector<Instruction> code;
  /// Initial data memory image in 64-bit words, loaded at byte address 0.
  std::vector<std::int64_t> data;
  /// Code labels -> instruction index (debugging / test hooks).
  std::map<std::string, std::uint32_t> code_labels;
  /// Data labels -> byte address.
  std::map<std::string, std::uint64_t> data_labels;

  /// Byte size of the initial data image.
  std::uint64_t data_bytes() const { return data.size() * 8; }
};

}  // namespace steersim
