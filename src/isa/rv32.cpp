#include "isa/rv32.hpp"

#include <array>
#include <cstdio>
#include <optional>

#include "common/contracts.hpp"

namespace steersim::rv32 {

namespace {

// RV32 major opcodes (bits [6:0]).
constexpr std::uint8_t kMajLoad = 0x03;
constexpr std::uint8_t kMajLoadFp = 0x07;
constexpr std::uint8_t kMajMiscMem = 0x0f;
constexpr std::uint8_t kMajOpImm = 0x13;
constexpr std::uint8_t kMajAuipc = 0x17;
constexpr std::uint8_t kMajStore = 0x23;
constexpr std::uint8_t kMajStoreFp = 0x27;
constexpr std::uint8_t kMajOp = 0x33;
constexpr std::uint8_t kMajLui = 0x37;
constexpr std::uint8_t kMajOpFp = 0x53;
constexpr std::uint8_t kMajBranch = 0x63;
constexpr std::uint8_t kMajJalr = 0x67;
constexpr std::uint8_t kMajJal = 0x6f;
constexpr std::uint8_t kMajSystem = 0x73;

// clang-format off
constexpr std::array kTable = {
    // RV32I register-register.
    Rv32Op{"add",      kMajOp, 0, 0x00, Format::kR, Expand::kAluRR, Opcode::kAdd},
    Rv32Op{"sub",      kMajOp, 0, 0x20, Format::kR, Expand::kAluRR, Opcode::kSub},
    Rv32Op{"sll",      kMajOp, 1, 0x00, Format::kR, Expand::kAluRR, Opcode::kSll},
    Rv32Op{"slt",      kMajOp, 2, 0x00, Format::kR, Expand::kAluRR, Opcode::kSlt},
    Rv32Op{"sltu",     kMajOp, 3, 0x00, Format::kR, Expand::kAluRR, Opcode::kSltu},
    Rv32Op{"xor",      kMajOp, 4, 0x00, Format::kR, Expand::kAluRR, Opcode::kXor},
    Rv32Op{"srl",      kMajOp, 5, 0x00, Format::kR, Expand::kAluRR, Opcode::kSrl},
    Rv32Op{"sra",      kMajOp, 5, 0x20, Format::kR, Expand::kAluRR, Opcode::kSra},
    Rv32Op{"or",       kMajOp, 6, 0x00, Format::kR, Expand::kAluRR, Opcode::kOr},
    Rv32Op{"and",      kMajOp, 7, 0x00, Format::kR, Expand::kAluRR, Opcode::kAnd},
    // RV32M (all land on IntMdu; mulh is the signed-high flavour).
    Rv32Op{"mul",      kMajOp, 0, 0x01, Format::kR, Expand::kAluRR, Opcode::kMul},
    Rv32Op{"mulh",     kMajOp, 1, 0x01, Format::kR, Expand::kAluRR, Opcode::kMulh},
    Rv32Op{"div",      kMajOp, 4, 0x01, Format::kR, Expand::kAluRR, Opcode::kDiv},
    Rv32Op{"rem",      kMajOp, 6, 0x01, Format::kR, Expand::kAluRR, Opcode::kRem},
    // RV32I register-immediate.
    Rv32Op{"addi",     kMajOpImm, 0, kAnyF7, Format::kI, Expand::kAluRI, Opcode::kAddi},
    Rv32Op{"slti",     kMajOpImm, 2, kAnyF7, Format::kI, Expand::kAluRI, Opcode::kSlti},
    Rv32Op{"sltiu",    kMajOpImm, 3, kAnyF7, Format::kI, Expand::kSltiu, Opcode::kSltu},
    Rv32Op{"xori",     kMajOpImm, 4, kAnyF7, Format::kI, Expand::kAluRI, Opcode::kXori},
    Rv32Op{"ori",      kMajOpImm, 6, kAnyF7, Format::kI, Expand::kAluRI, Opcode::kOri},
    Rv32Op{"andi",     kMajOpImm, 7, kAnyF7, Format::kI, Expand::kAluRI, Opcode::kAndi},
    Rv32Op{"slli",     kMajOpImm, 1, 0x00, Format::kI, Expand::kShift, Opcode::kSlli},
    Rv32Op{"srli",     kMajOpImm, 5, 0x00, Format::kI, Expand::kShift, Opcode::kSrli},
    Rv32Op{"srai",     kMajOpImm, 5, 0x20, Format::kI, Expand::kShift, Opcode::kSrai},
    // Upper-immediate materialization.
    Rv32Op{"lui",      kMajLui,   kAnyF3, kAnyF7, Format::kU, Expand::kLui, Opcode::kLui},
    Rv32Op{"auipc",    kMajAuipc, kAnyF3, kAnyF7, Format::kU, Expand::kAuipc, Opcode::kLui},
    // Loads/stores (integer and FP data, all on the LSU).
    Rv32Op{"lb",       kMajLoad, 0, kAnyF7, Format::kI, Expand::kLoad, Opcode::kLb},
    Rv32Op{"lw",       kMajLoad, 2, kAnyF7, Format::kI, Expand::kLoad, Opcode::kLw},
    Rv32Op{"lbu",      kMajLoad, 4, kAnyF7, Format::kI, Expand::kLbu, Opcode::kLb},
    Rv32Op{"sb",       kMajStore, 0, kAnyF7, Format::kS, Expand::kStore, Opcode::kSb},
    Rv32Op{"sw",       kMajStore, 2, kAnyF7, Format::kS, Expand::kStore, Opcode::kSw},
    Rv32Op{"flw",      kMajLoadFp, 2, kAnyF7, Format::kI, Expand::kLoad, Opcode::kFlw},
    Rv32Op{"fsw",      kMajStoreFp, 2, kAnyF7, Format::kS, Expand::kStore, Opcode::kFsw},
    // Control flow (resolved on the IntAlu, like the native ISA).
    Rv32Op{"beq",      kMajBranch, 0, kAnyF7, Format::kB, Expand::kBranch, Opcode::kBeq},
    Rv32Op{"bne",      kMajBranch, 1, kAnyF7, Format::kB, Expand::kBranch, Opcode::kBne},
    Rv32Op{"blt",      kMajBranch, 4, kAnyF7, Format::kB, Expand::kBranch, Opcode::kBlt},
    Rv32Op{"bge",      kMajBranch, 5, kAnyF7, Format::kB, Expand::kBranch, Opcode::kBge},
    Rv32Op{"bltu",     kMajBranch, 6, kAnyF7, Format::kB, Expand::kBranch, Opcode::kBltu},
    Rv32Op{"bgeu",     kMajBranch, 7, kAnyF7, Format::kB, Expand::kBranch, Opcode::kBgeu},
    Rv32Op{"jal",      kMajJal,  kAnyF3, kAnyF7, Format::kJ, Expand::kJal, Opcode::kJal},
    Rv32Op{"jalr",     kMajJalr, 0, kAnyF7, Format::kI, Expand::kJalr, Opcode::kJr},
    // Fences order nothing in this single-core model.
    Rv32Op{"fence",    kMajMiscMem, kAnyF3, kAnyF7, Format::kI, Expand::kNop, Opcode::kNop},
    // ecall/ebreak end the simulated program (the runner has no OS).
    Rv32Op{"ecall",    kMajSystem, 0, kAnyF7, Format::kI, Expand::kHalt, Opcode::kHalt},
    // RV32F arithmetic (FpAlu) and multiply/divide/sqrt (FpMdu).
    Rv32Op{"fadd.s",   kMajOpFp, kAnyF3, 0x00, Format::kR, Expand::kFpRR, Opcode::kFadd},
    Rv32Op{"fsub.s",   kMajOpFp, kAnyF3, 0x04, Format::kR, Expand::kFpRR, Opcode::kFsub},
    Rv32Op{"fmul.s",   kMajOpFp, kAnyF3, 0x08, Format::kR, Expand::kFpRR, Opcode::kFmul},
    Rv32Op{"fdiv.s",   kMajOpFp, kAnyF3, 0x0c, Format::kR, Expand::kFpRR, Opcode::kFdiv},
    Rv32Op{"fsqrt.s",  kMajOpFp, kAnyF3, 0x2c, Format::kR, Expand::kFpUnary, Opcode::kFsqrt},
    Rv32Op{"fsgnj.s",  kMajOpFp, 0, 0x10, Format::kR, Expand::kFsgnj, Opcode::kFmin},
    Rv32Op{"fsgnjn.s", kMajOpFp, 1, 0x10, Format::kR, Expand::kFsgnj, Opcode::kFneg},
    Rv32Op{"fsgnjx.s", kMajOpFp, 2, 0x10, Format::kR, Expand::kFsgnj, Opcode::kFabs},
    Rv32Op{"fmin.s",   kMajOpFp, 0, 0x14, Format::kR, Expand::kFpRR, Opcode::kFmin},
    Rv32Op{"fmax.s",   kMajOpFp, 1, 0x14, Format::kR, Expand::kFpRR, Opcode::kFmax},
    Rv32Op{"fcvt.w.s", kMajOpFp, kAnyF3, 0x60, Format::kR, Expand::kFcvt, Opcode::kCvtFI},
    Rv32Op{"fcvt.s.w", kMajOpFp, kAnyF3, 0x68, Format::kR, Expand::kFcvt, Opcode::kCvtIF},
    Rv32Op{"fle.s",    kMajOpFp, 0, 0x50, Format::kR, Expand::kFcmp, Opcode::kFle},
    Rv32Op{"flt.s",    kMajOpFp, 1, 0x50, Format::kR, Expand::kFcmp, Opcode::kFlt},
    Rv32Op{"feq.s",    kMajOpFp, 2, 0x50, Format::kR, Expand::kFcmp, Opcode::kFeq},
};
// clang-format on

std::int32_t sext(std::uint32_t value, unsigned bits) {
  const std::uint32_t sign = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ sign) - sign);
}

/// Recognized-but-unmapped encodings get a precise `kUnsupported` message;
/// anything else is an unknown instruction.
std::optional<std::string_view> describe_unsupported(const Fields& f) {
  switch (f.major) {
    case kMajLoad:
      if (f.funct3 == 1 || f.funct3 == 5) {
        return "halfword loads (lh/lhu) are not modelled";
      }
      break;
    case kMajStore:
      if (f.funct3 == 1) {
        return "halfword stores (sh) are not modelled";
      }
      break;
    case kMajOp:
      if (f.funct7 == 0x01) {
        return "mulhsu/mulhu/divu/remu have no internal mapping";
      }
      break;
    case kMajOpFp:
      if (f.funct7 == 0x70 || f.funct7 == 0x78) {
        return "bit-pattern FP moves (fmv.x.w/fmv.w.x/fclass) are not "
               "modelled";
      }
      break;
    case kMajSystem:
      return "CSR and privileged instructions are not modelled";
    default:
      break;
  }
  return std::nullopt;
}

[[noreturn]] void fail(Rv32Error::Kind kind, std::uint32_t addr,
                       const std::string& message) {
  throw Rv32Error(kind, addr, message);
}

}  // namespace

std::string Rv32Error::hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

std::span<const Rv32Op> table() { return kTable; }

Fields split_fields(std::uint32_t w) {
  Fields f;
  f.word = w;
  f.major = static_cast<std::uint8_t>(w & 0x7f);
  f.rd = static_cast<std::uint8_t>((w >> 7) & 0x1f);
  f.funct3 = static_cast<std::uint8_t>((w >> 12) & 0x7);
  f.rs1 = static_cast<std::uint8_t>((w >> 15) & 0x1f);
  f.rs2 = static_cast<std::uint8_t>((w >> 20) & 0x1f);
  f.funct7 = static_cast<std::uint8_t>((w >> 25) & 0x7f);
  f.imm_i = sext(w >> 20, 12);
  f.imm_s = sext(((w >> 25) << 5) | ((w >> 7) & 0x1f), 12);
  f.imm_b = sext(((w >> 31) << 12) | (((w >> 7) & 1u) << 11) |
                     (((w >> 25) & 0x3f) << 5) | (((w >> 8) & 0xf) << 1),
                 13);
  f.imm_u = sext(w >> 12, 20);
  f.imm_j = sext(((w >> 31) << 20) | (((w >> 12) & 0xff) << 12) |
                     (((w >> 20) & 1u) << 11) | (((w >> 21) & 0x3ff) << 1),
                 21);
  return f;
}

const Rv32Op* lookup(std::uint32_t word) {
  const Fields f = split_fields(word);
  for (const Rv32Op& op : kTable) {
    if (op.major != f.major) {
      continue;
    }
    if (op.funct3 != kAnyF3 && op.funct3 != f.funct3) {
      continue;
    }
    if (op.funct7 != kAnyF7 && op.funct7 != f.funct7) {
      continue;
    }
    return &op;
  }
  return nullptr;
}

namespace {

/// Emits the 1-5 internal instructions that materialize the signed 32-bit
/// constant `value` into integer register rd. The internal immediate is
/// 15 bits (vs RV32's 20-bit lui payload), so large constants chain
/// lui/addi + shift + or in 14-bit chunks.
void emit_materialize(std::vector<Instruction>& out, std::uint8_t rd,
                      std::int32_t value) {
  const std::int32_t lo = value & 0x3fff;
  if (value >= kImm15Min && value <= kImm15Max) {
    out.push_back(make_ri(Opcode::kAddi, rd, 0, value));
    return;
  }
  if (value >= -(1 << 28) && value < (1 << 28)) {
    out.push_back(make_ri(Opcode::kLui, rd, 0, value >> 14));
    if (lo != 0) {
      out.push_back(make_ri(Opcode::kOri, rd, rd, lo));
    }
    return;
  }
  const std::int32_t mid = (value >> 14) & 0x3fff;
  out.push_back(make_ri(Opcode::kAddi, rd, 0, value >> 28));
  out.push_back(make_ri(Opcode::kSlli, rd, rd, 14));
  if (mid != 0) {
    out.push_back(make_ri(Opcode::kOri, rd, rd, mid));
  }
  out.push_back(make_ri(Opcode::kSlli, rd, rd, 14));
  if (lo != 0) {
    out.push_back(make_ri(Opcode::kOri, rd, rd, lo));
  }
}

struct Fixup {
  std::size_t emit_index = 0;     ///< internal index of the control op
  std::uint32_t source_addr = 0;  ///< byte address of the RV32 word
  std::uint32_t target_addr = 0;  ///< byte address it jumps/branches to
  bool is_branch = false;         ///< imm15 (branch) vs imm20 (jump) range
};

}  // namespace

Translation translate(std::span<const std::uint32_t> text,
                      std::uint32_t text_base, std::uint32_t entry) {
  if (text_base % 4 != 0) {
    fail(Rv32Error::Kind::kBadTarget, text_base,
         ".text base address must be 4-byte aligned");
  }
  const std::uint32_t text_end =
      text_base + static_cast<std::uint32_t>(text.size()) * 4;
  if (entry % 4 != 0 || entry < text_base || entry >= text_end) {
    fail(Rv32Error::Kind::kBadTarget, entry,
         "entry point is misaligned or outside .text");
  }

  Translation tr;
  std::vector<Fixup> fixups;
  tr.code.reserve(text.size() + 1);
  tr.index_of.reserve(text.size());

  if (entry != text_base) {
    // The internal machine always starts at index 0: reach a non-leading
    // entry point through a one-instruction jump stub. All translated
    // control flow is relative (or index-space values produced at run
    // time), so the +1 shift is invisible to the program.
    tr.code.push_back(make_jump(Opcode::kJ, 0, 0));
    fixups.push_back({0, text_base, entry, false});
  }

  for (std::size_t i = 0; i < text.size(); ++i) {
    const std::uint32_t addr =
        text_base + static_cast<std::uint32_t>(i) * 4;
    const std::uint32_t word = text[i];
    const Fields f = split_fields(word);
    const Rv32Op* op = lookup(word);
    tr.index_of.push_back(static_cast<std::uint32_t>(tr.code.size()));
    if (op == nullptr) {
      if (const auto why = describe_unsupported(f)) {
        fail(Rv32Error::Kind::kUnsupported, addr, std::string(*why));
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "unknown instruction word %08x", word);
      fail(Rv32Error::Kind::kUnknownInstruction, addr, buf);
    }
    const std::size_t before = tr.code.size();

    switch (op->expand) {
      case Expand::kAluRR:
      case Expand::kFpRR:
        tr.code.push_back(make_rr(op->internal, f.rd, f.rs1, f.rs2));
        break;
      case Expand::kAluRI:
        tr.code.push_back(make_ri(op->internal, f.rd, f.rs1, f.imm_i));
        break;
      case Expand::kShift:
        tr.code.push_back(make_ri(op->internal, f.rd, f.rs1, f.rs2));
        break;
      case Expand::kLoad:
        tr.code.push_back(make_ri(op->internal, f.rd, f.rs1, f.imm_i));
        break;
      case Expand::kLbu:
        // Zero-extension: internal lb sign-extends, so mask back down.
        tr.code.push_back(make_ri(Opcode::kLb, f.rd, f.rs1, f.imm_i));
        if (f.rd != 0) {
          tr.code.push_back(make_ri(Opcode::kAndi, f.rd, f.rd, 0xff));
        }
        break;
      case Expand::kStore:
        tr.code.push_back(make_store(op->internal, f.rs2, f.rs1, f.imm_s));
        break;
      case Expand::kBranch:
        if (f.imm_b % 4 != 0) {
          fail(Rv32Error::Kind::kBadTarget, addr,
               "branch offset is not word-aligned (C extension is out of "
               "scope)");
        }
        tr.code.push_back(make_branch(op->internal, f.rs1, f.rs2, 0));
        fixups.push_back({before, addr,
                          addr + static_cast<std::uint32_t>(f.imm_b), true});
        break;
      case Expand::kLui:
        emit_materialize(tr.code, f.rd,
                         static_cast<std::int32_t>(
                             static_cast<std::uint32_t>(f.imm_u) << 12));
        break;
      case Expand::kAuipc:
        // The word's own address is known statically, so auipc is a plain
        // constant materialization of a byte address.
        emit_materialize(
            tr.code, f.rd,
            static_cast<std::int32_t>(
                addr + (static_cast<std::uint32_t>(f.imm_u) << 12)));
        break;
      case Expand::kJal:
        if (f.imm_j % 4 != 0) {
          fail(Rv32Error::Kind::kBadTarget, addr,
               "jump offset is not word-aligned (C extension is out of "
               "scope)");
        }
        tr.code.push_back(f.rd == 0
                              ? make_jump(Opcode::kJ, 0, 0)
                              : make_jump(Opcode::kJal, f.rd, 0));
        fixups.push_back({before, addr,
                          addr + static_cast<std::uint32_t>(f.imm_j), false});
        break;
      case Expand::kJalr:
        if (f.rd != 0) {
          fail(Rv32Error::Kind::kUnsupported, addr,
               "linking jalr (rd != x0) has no internal mapping; indirect "
               "calls are out of scope");
        }
        if (f.imm_i != 0) {
          fail(Rv32Error::Kind::kUnsupported, addr,
               "jalr with a nonzero offset is out of scope (targets live "
               "in index space)");
        }
        tr.code.push_back(Instruction{Opcode::kJr, 0, f.rs1, 0, 0});
        break;
      case Expand::kSltiu:
        // No scratch registers exist (all 32 map to x0..x31), so stage the
        // immediate through rd itself; rd == rs1 would clobber the source.
        if (f.rd == 0) {
          tr.code.push_back(Instruction{});  // writes x0: architectural nop
        } else if (f.rd == f.rs1) {
          fail(Rv32Error::Kind::kBadOperand, addr,
               "sltiu with rd == rs1 needs a scratch register the mapping "
               "does not have");
        } else {
          tr.code.push_back(make_ri(Opcode::kAddi, f.rd, 0, f.imm_i));
          tr.code.push_back(make_rr(Opcode::kSltu, f.rd, f.rs1, f.rd));
        }
        break;
      case Expand::kFpUnary:
        if (f.rs2 != 0) {
          fail(Rv32Error::Kind::kUnknownInstruction, addr,
               "fsqrt.s requires rs2 == 0");
        }
        tr.code.push_back(make_rr(op->internal, f.rd, f.rs1, 0));
        break;
      case Expand::kFsgnj:
        if (f.rs1 != f.rs2) {
          fail(Rv32Error::Kind::kUnsupported, addr,
               "general sign injection is not modelled; only the "
               "fmv.s/fneg.s/fabs.s pseudo forms (rs1 == rs2) map");
        }
        // fmv.s maps to fmin(rs, rs) == rs; fneg.s/fabs.s map directly.
        tr.code.push_back(op->internal == Opcode::kFmin
                              ? make_rr(Opcode::kFmin, f.rd, f.rs1, f.rs1)
                              : make_rr(op->internal, f.rd, f.rs1, 0));
        break;
      case Expand::kFcvt:
        if (f.rs2 != 0) {
          fail(Rv32Error::Kind::kUnsupported, addr,
               "unsigned conversions (fcvt.wu.s/fcvt.s.wu) have no "
               "internal mapping");
        }
        tr.code.push_back(make_rr(op->internal, f.rd, f.rs1, 0));
        break;
      case Expand::kFcmp:
        tr.code.push_back(make_rr(op->internal, f.rd, f.rs1, f.rs2));
        break;
      case Expand::kNop:
        tr.code.push_back(Instruction{});
        break;
      case Expand::kHalt:
        if (f.imm_i != 0 && f.imm_i != 1) {
          fail(Rv32Error::Kind::kUnsupported, addr,
               "SYSTEM instructions other than ecall/ebreak are not "
               "modelled");
        }
        tr.code.push_back(Instruction{Opcode::kHalt, 0, 0, 0, 0});
        break;
    }
    if (tr.code.size() - before > 1) {
      ++tr.expanded_words;
    }
  }

  for (const Fixup& fx : fixups) {
    if (fx.target_addr % 4 != 0 || fx.target_addr < text_base ||
        fx.target_addr >= text_end) {
      fail(Rv32Error::Kind::kBadTarget, fx.source_addr,
           "control-flow target is misaligned or outside .text");
    }
    const std::uint32_t target_index =
        tr.index_of[(fx.target_addr - text_base) / 4];
    const std::int64_t delta = static_cast<std::int64_t>(target_index) -
                               static_cast<std::int64_t>(fx.emit_index);
    const std::int64_t lo = fx.is_branch ? kImm15Min : kImm20Min;
    const std::int64_t hi = fx.is_branch ? kImm15Max : kImm20Max;
    if (delta < lo || delta > hi) {
      fail(Rv32Error::Kind::kImmOutOfRange, fx.source_addr,
           "translated control-flow offset exceeds the internal immediate "
           "range");
    }
    tr.code[fx.emit_index].imm = static_cast<std::int32_t>(delta);
  }
  return tr;
}

// --- Encoding helpers ----------------------------------------------------

namespace {

std::uint32_t reg5(std::uint8_t r) {
  STEERSIM_EXPECTS(r < 32);
  return r;
}

std::uint32_t ubits(std::int32_t imm, unsigned bits) {
  const std::int32_t lo = -(1 << (bits - 1));
  const std::int32_t hi = (1 << (bits - 1)) - 1;
  STEERSIM_EXPECTS(imm >= lo && imm <= hi);
  return static_cast<std::uint32_t>(imm) & ((1u << bits) - 1u);
}

}  // namespace

std::uint32_t enc_r(std::uint8_t major, std::uint8_t funct3,
                    std::uint8_t funct7, std::uint8_t rd, std::uint8_t rs1,
                    std::uint8_t rs2) {
  return (static_cast<std::uint32_t>(funct7) << 25) | (reg5(rs2) << 20) |
         (reg5(rs1) << 15) | (static_cast<std::uint32_t>(funct3) << 12) |
         (reg5(rd) << 7) | major;
}

std::uint32_t enc_i(std::uint8_t major, std::uint8_t funct3, std::uint8_t rd,
                    std::uint8_t rs1, std::int32_t imm) {
  return (ubits(imm, 12) << 20) | (reg5(rs1) << 15) |
         (static_cast<std::uint32_t>(funct3) << 12) | (reg5(rd) << 7) |
         major;
}

std::uint32_t enc_s(std::uint8_t major, std::uint8_t funct3, std::uint8_t rs1,
                    std::uint8_t rs2, std::int32_t imm) {
  const std::uint32_t u = ubits(imm, 12);
  return ((u >> 5) << 25) | (reg5(rs2) << 20) | (reg5(rs1) << 15) |
         (static_cast<std::uint32_t>(funct3) << 12) | ((u & 0x1f) << 7) |
         major;
}

std::uint32_t enc_b(std::uint8_t major, std::uint8_t funct3, std::uint8_t rs1,
                    std::uint8_t rs2, std::int32_t offset) {
  STEERSIM_EXPECTS(offset % 2 == 0);
  const std::uint32_t u = ubits(offset, 13);
  return ((u >> 12) << 31) | (((u >> 5) & 0x3f) << 25) | (reg5(rs2) << 20) |
         (reg5(rs1) << 15) | (static_cast<std::uint32_t>(funct3) << 12) |
         (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1u) << 7) | major;
}

std::uint32_t enc_u(std::uint8_t major, std::uint8_t rd, std::int32_t imm20) {
  return (ubits(imm20, 20) << 12) | (reg5(rd) << 7) | major;
}

std::uint32_t enc_j(std::uint8_t major, std::uint8_t rd, std::int32_t offset) {
  STEERSIM_EXPECTS(offset % 2 == 0);
  const std::uint32_t u = ubits(offset, 21);
  return ((u >> 20) << 31) | (((u >> 1) & 0x3ff) << 21) |
         (((u >> 11) & 1u) << 20) | (((u >> 12) & 0xff) << 12) |
         (reg5(rd) << 7) | major;
}

std::uint32_t addi(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
  return enc_i(kMajOpImm, 0, rd, rs1, imm);
}
std::uint32_t add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOp, 0, 0x00, rd, rs1, rs2);
}
std::uint32_t sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOp, 0, 0x20, rd, rs1, rs2);
}
std::uint32_t mul(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOp, 0, 0x01, rd, rs1, rs2);
}
std::uint32_t div(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOp, 4, 0x01, rd, rs1, rs2);
}
std::uint32_t rem(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOp, 6, 0x01, rd, rs1, rs2);
}
std::uint32_t slli(std::uint8_t rd, std::uint8_t rs1, std::uint8_t shamt) {
  STEERSIM_EXPECTS(shamt < 32);
  return enc_r(kMajOpImm, 1, 0x00, rd, rs1, shamt);
}
std::uint32_t srli(std::uint8_t rd, std::uint8_t rs1, std::uint8_t shamt) {
  STEERSIM_EXPECTS(shamt < 32);
  return enc_r(kMajOpImm, 5, 0x00, rd, rs1, shamt);
}
std::uint32_t lui(std::uint8_t rd, std::int32_t imm20) {
  return enc_u(kMajLui, rd, imm20);
}
std::uint32_t lw(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
  return enc_i(kMajLoad, 2, rd, rs1, imm);
}
std::uint32_t sw(std::uint8_t rs1, std::uint8_t rs2, std::int32_t imm) {
  return enc_s(kMajStore, 2, rs1, rs2, imm);
}
std::uint32_t flw(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
  return enc_i(kMajLoadFp, 2, rd, rs1, imm);
}
std::uint32_t fsw(std::uint8_t rs1, std::uint8_t rs2, std::int32_t imm) {
  return enc_s(kMajStoreFp, 2, rs1, rs2, imm);
}
std::uint32_t beq(std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset) {
  return enc_b(kMajBranch, 0, rs1, rs2, offset);
}
std::uint32_t bne(std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset) {
  return enc_b(kMajBranch, 1, rs1, rs2, offset);
}
std::uint32_t blt(std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset) {
  return enc_b(kMajBranch, 4, rs1, rs2, offset);
}
std::uint32_t bge(std::uint8_t rs1, std::uint8_t rs2, std::int32_t offset) {
  return enc_b(kMajBranch, 5, rs1, rs2, offset);
}
std::uint32_t jal(std::uint8_t rd, std::int32_t offset) {
  return enc_j(kMajJal, rd, offset);
}
std::uint32_t jalr(std::uint8_t rd, std::uint8_t rs1, std::int32_t imm) {
  return enc_i(kMajJalr, 0, rd, rs1, imm);
}
std::uint32_t fadd_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOpFp, 0, 0x00, rd, rs1, rs2);
}
std::uint32_t fsub_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOpFp, 0, 0x04, rd, rs1, rs2);
}
std::uint32_t fmul_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOpFp, 0, 0x08, rd, rs1, rs2);
}
std::uint32_t fdiv_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOpFp, 0, 0x0c, rd, rs1, rs2);
}
std::uint32_t fcvt_s_w(std::uint8_t rd, std::uint8_t rs1) {
  return enc_r(kMajOpFp, 0, 0x68, rd, rs1, 0);
}
std::uint32_t fcvt_w_s(std::uint8_t rd, std::uint8_t rs1) {
  return enc_r(kMajOpFp, 0, 0x60, rd, rs1, 0);
}
std::uint32_t flt_s(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2) {
  return enc_r(kMajOpFp, 1, 0x50, rd, rs1, rs2);
}
std::uint32_t ecall() { return enc_i(kMajSystem, 0, 0, 0, 0); }

}  // namespace steersim::rv32
