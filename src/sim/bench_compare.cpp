#include "sim/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.hpp"
#include "sim/json.hpp"

namespace steersim {

namespace {

std::string_view severity_name(IssueSeverity severity) {
  switch (severity) {
    case IssueSeverity::kNote:
      return "note";
    case IssueSeverity::kWarning:
      return "WARNING";
    case IssueSeverity::kRegression:
      return "REGRESSION";
  }
  return "?";
}

void add_issue(CompareReport& report, IssueSeverity severity,
               std::string bench, std::string metric, std::string message) {
  report.issues.push_back(CompareIssue{severity, std::move(bench),
                                       std::move(metric),
                                       std::move(message)});
}

std::string field_string(const JsonValue& doc, const std::string& key) {
  const JsonValue* v = doc.get(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kString) ? v->string
                                                               : std::string();
}

double field_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.get(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number
                                                               : 0.0;
}

/// Relative difference of b vs a, guarding a == 0 (absolute fallback).
double rel_delta(double a, double b) {
  if (a == 0.0) {
    return b == 0.0 ? 0.0 : (b > 0.0 ? 1.0 : -1.0);
  }
  return (b - a) / std::abs(a);
}

std::string num(double v) { return json_number(v); }

void compare_metric(const std::string& bench, const std::string& name,
                    const JsonValue& a, const JsonValue& b,
                    const BenchCompareOptions& options,
                    CompareReport& report) {
  const std::string kind_a = field_string(a, "kind");
  const std::string kind_b = field_string(b, "kind");
  if (kind_a != kind_b) {
    add_issue(report, IssueSeverity::kWarning, bench, name,
              "metric kind changed (" + kind_a + " -> " + kind_b +
                  "); skipped");
    return;
  }
  const double count_a = field_number(a, "count");
  const double count_b = field_number(b, "count");
  if (count_a != count_b) {
    add_issue(report, IssueSeverity::kWarning, bench, name,
              "repeat count changed (" + num(count_a) + " -> " +
                  num(count_b) + ")");
  }
  const double mean_a = field_number(a, "mean");
  const double mean_b = field_number(b, "mean");
  ++report.metrics_compared;
  if (kind_a == "sim") {
    // Deterministic simulation: the means must match exactly.
    if (mean_a != mean_b) {
      add_issue(report, IssueSeverity::kRegression, bench, name,
                "simulated metric changed: " + num(mean_a) + " -> " +
                    num(mean_b));
    }
    return;
  }
  const double delta = rel_delta(mean_a, mean_b);
  if (kind_a == "host_time") {
    // Lower is better; regress only when the candidate is slower.
    if (delta > options.host_tolerance) {
      add_issue(report, IssueSeverity::kRegression, bench, name,
                "host time regressed " + num(delta * 100.0) + "% (" +
                    num(mean_a) + "s -> " + num(mean_b) + "s, tolerance " +
                    num(options.host_tolerance * 100.0) + "%)");
    }
    return;
  }
  if (kind_a == "host_rate") {
    // Higher is better; regress only when the candidate is lower.
    if (delta < -options.host_tolerance) {
      add_issue(report, IssueSeverity::kRegression, bench, name,
                "host rate regressed " + num(-delta * 100.0) + "% (" +
                    num(mean_a) + " -> " + num(mean_b) + ", tolerance " +
                    num(options.host_tolerance * 100.0) + "%)");
    }
    return;
  }
  add_issue(report, IssueSeverity::kWarning, bench, name,
            "unknown metric kind '" + kind_a + "'; skipped");
}

}  // namespace

bool CompareReport::has_regression() const {
  return std::any_of(issues.begin(), issues.end(), [](const CompareIssue& i) {
    return i.severity == IssueSeverity::kRegression;
  });
}

std::size_t CompareReport::count(IssueSeverity severity) const {
  return static_cast<std::size_t>(
      std::count_if(issues.begin(), issues.end(),
                    [severity](const CompareIssue& i) {
                      return i.severity == severity;
                    }));
}

std::string CompareReport::to_string() const {
  std::string out;
  for (const CompareIssue& issue : issues) {
    out += severity_name(issue.severity);
    out += ' ';
    out += issue.bench;
    if (!issue.metric.empty()) {
      out += '/';
      out += issue.metric;
    }
    out += ": ";
    out += issue.message;
    out += '\n';
  }
  char line[160];
  std::snprintf(line, sizeof(line),
                "compared %zu benches, %zu metrics: %zu regression(s), "
                "%zu warning(s), %zu note(s)\n",
                benches_compared, metrics_compared,
                count(IssueSeverity::kRegression),
                count(IssueSeverity::kWarning), count(IssueSeverity::kNote));
  out += line;
  return out;
}

void compare_bench_reports(const std::string& name,
                           const std::string& baseline_json,
                           const std::string& candidate_json,
                           const BenchCompareOptions& options,
                           CompareReport& report) {
  JsonValue a;
  JsonValue b;
  if (!JsonParser(baseline_json).parse(a) ||
      a.kind != JsonValue::Kind::kObject) {
    add_issue(report, IssueSeverity::kWarning, name, "",
              "baseline report does not parse as JSON; skipped");
    return;
  }
  if (!JsonParser(candidate_json).parse(b) ||
      b.kind != JsonValue::Kind::kObject) {
    add_issue(report, IssueSeverity::kRegression, name, "",
              "candidate report does not parse as JSON");
    return;
  }
  const std::string bench = field_string(a, "bench").empty()
                                ? name
                                : field_string(a, "bench");
  ++report.benches_compared;
  const std::string schema_a = field_string(a, "schema");
  const std::string schema_b = field_string(b, "schema");
  if (schema_a != schema_b) {
    add_issue(report, IssueSeverity::kWarning, bench, "",
              "schema changed (" + schema_a + " -> " + schema_b +
                  "); metrics skipped");
    return;
  }
  const std::string digest_a = field_string(a, "config_digest");
  const std::string digest_b = field_string(b, "config_digest");
  if (digest_a != digest_b) {
    add_issue(report, IssueSeverity::kWarning, bench, "",
              "config digest mismatch (" + digest_a + " vs " + digest_b +
                  "): runs used different knobs; metrics skipped");
    return;
  }
  const JsonValue* metrics_a = a.get("metrics");
  const JsonValue* metrics_b = b.get("metrics");
  if (metrics_a == nullptr || metrics_a->kind != JsonValue::Kind::kObject ||
      metrics_b == nullptr || metrics_b->kind != JsonValue::Kind::kObject) {
    add_issue(report, IssueSeverity::kWarning, bench, "",
              "report has no metrics object; skipped");
    return;
  }
  for (const auto& [metric, value_a] : metrics_a->object) {
    const JsonValue* value_b = metrics_b->get(metric);
    if (value_b == nullptr) {
      add_issue(report, IssueSeverity::kRegression, bench, metric,
                "metric missing from candidate report");
      continue;
    }
    compare_metric(bench, metric, value_a, *value_b, options, report);
  }
  for (const auto& [metric, value_b] : metrics_b->object) {
    (void)value_b;
    if (metrics_a->get(metric) == nullptr) {
      add_issue(report, IssueSeverity::kNote, bench, metric,
                "new metric in candidate report");
    }
  }
}

namespace {

/// BENCH_*.json files in `dir`, keyed by file name; empty map when the
/// directory is missing or unreadable (callers decide the severity).
std::map<std::string, std::string> load_reports(const std::string& dir) {
  std::map<std::string, std::string> reports;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json") {
      continue;
    }
    std::ifstream in(entry.path());
    std::ostringstream body;
    body << in.rdbuf();
    reports.emplace(file, body.str());
  }
  return reports;
}

}  // namespace

CompareReport compare_bench_dirs(const std::string& baseline_dir,
                                 const std::string& candidate_dir,
                                 const BenchCompareOptions& options) {
  CompareReport report;
  const auto baseline = load_reports(baseline_dir);
  const auto candidate = load_reports(candidate_dir);
  if (baseline.empty()) {
    add_issue(report, IssueSeverity::kWarning, baseline_dir, "",
              "no BENCH_*.json reports found in baseline directory");
  }
  for (const auto& [file, body] : baseline) {
    const auto it = candidate.find(file);
    if (it == candidate.end()) {
      add_issue(report, IssueSeverity::kRegression, file, "",
                "report missing from candidate directory");
      continue;
    }
    compare_bench_reports(file, body, it->second, options, report);
  }
  for (const auto& [file, body] : candidate) {
    (void)body;
    if (baseline.find(file) == baseline.end()) {
      add_issue(report, IssueSeverity::kNote, file, "",
                "new report in candidate directory");
    }
  }
  return report;
}

}  // namespace steersim
