#include "sim/runner.hpp"

#include "common/contracts.hpp"

namespace steersim {

std::string PolicySpec::label(const SteeringSet& set) const {
  switch (kind) {
    case PolicyKind::kSteered: {
      std::string name = "steered";
      if (cem == CemMode::kExactDivide) {
        name += "-exact";
      }
      if (interval != 1) {
        name += "@" + std::to_string(interval);
      }
      if (confirm != 1) {
        name += "-confirm" + std::to_string(confirm);
      }
      if (lookahead) {
        name += "-lookahead";
      }
      return name;
    }
    case PolicyKind::kStaticFfu:
      return "static-ffu";
    case PolicyKind::kStaticPreset:
      return "static-" + set.preset_names[preset_index];
    case PolicyKind::kOracle:
      return "oracle";
    case PolicyKind::kFullReconfig:
      return "full-reconfig";
    case PolicyKind::kRandom:
      return "random";
    case PolicyKind::kGreedy:
      return interval == 1 ? "greedy" : "greedy@" + std::to_string(interval);
  }
  return "?";
}

std::vector<PolicySpec> standard_policies() {
  std::vector<PolicySpec> specs;
  specs.push_back({.kind = PolicyKind::kSteered});
  specs.push_back({.kind = PolicyKind::kStaticFfu});
  for (unsigned p = 0; p < kNumPresetConfigs; ++p) {
    specs.push_back({.kind = PolicyKind::kStaticPreset, .preset_index = p});
  }
  specs.push_back({.kind = PolicyKind::kFullReconfig});
  specs.push_back({.kind = PolicyKind::kOracle});
  return specs;
}

std::unique_ptr<Processor> make_processor(const Program& program,
                                          const MachineConfig& config,
                                          const PolicySpec& spec) {
  MachineConfig cfg = config;
  const SteeringSet& set = cfg.steering;
  std::unique_ptr<SteeringPolicy> policy;
  AllocationVector initial(cfg.loader.num_slots);

  switch (spec.kind) {
    case PolicyKind::kSteered:
      policy = std::make_unique<SteeredPolicy>(set, spec.cem, spec.tie_break,
                                               spec.interval, spec.confirm,
                                               spec.lookahead);
      break;
    case PolicyKind::kStaticFfu:
      policy = std::make_unique<StaticPolicy>("static-ffu");
      break;
    case PolicyKind::kStaticPreset:
      STEERSIM_EXPECTS(spec.preset_index < kNumPresetConfigs);
      policy = std::make_unique<StaticPolicy>(
          "static-" + set.preset_names[spec.preset_index]);
      initial = set.preset_allocation(spec.preset_index);
      break;
    case PolicyKind::kOracle:
      policy = std::make_unique<OraclePolicy>(set);
      cfg.loader.instant = true;
      cfg.loader.max_concurrent_regions = cfg.loader.num_slots;
      break;
    case PolicyKind::kFullReconfig:
      policy = std::make_unique<SteeredPolicy>(
          set, spec.cem, spec.tie_break, spec.interval, spec.confirm);
      cfg.loader.partial = false;
      break;
    case PolicyKind::kRandom:
      policy = std::make_unique<RandomPolicy>(set, spec.seed);
      break;
    case PolicyKind::kGreedy:
      policy = std::make_unique<GreedyPolicy>(
          set, spec.interval == 1 ? 32 : spec.interval);
      break;
  }
  return std::make_unique<Processor>(program, cfg, std::move(policy),
                                     std::move(initial));
}

bool parse_policy(const std::string& name, PolicySpec& spec) {
  if (name == "steered") {
    spec.kind = PolicyKind::kSteered;
  } else if (name == "static-ffu") {
    spec.kind = PolicyKind::kStaticFfu;
  } else if (name == "static-integer") {
    spec.kind = PolicyKind::kStaticPreset;
    spec.preset_index = 0;
  } else if (name == "static-memory") {
    spec.kind = PolicyKind::kStaticPreset;
    spec.preset_index = 1;
  } else if (name == "static-float") {
    spec.kind = PolicyKind::kStaticPreset;
    spec.preset_index = 2;
  } else if (name == "oracle") {
    spec.kind = PolicyKind::kOracle;
  } else if (name == "full-reconfig") {
    spec.kind = PolicyKind::kFullReconfig;
  } else if (name == "random") {
    spec.kind = PolicyKind::kRandom;
  } else if (name == "greedy") {
    spec.kind = PolicyKind::kGreedy;
  } else {
    return false;
  }
  return true;
}

SimResult collect_result(const Processor& cpu, const PolicySpec& spec,
                         RunOutcome outcome) {
  SimResult result;
  result.policy = spec.label(cpu.config().steering);
  result.outcome = outcome;
  result.stats = cpu.stats();
  result.loader = cpu.loader().stats();
  result.steering = cpu.policy().stats();
  result.engine = cpu.engine().stats();
  result.fetch = cpu.fetch_unit().stats();
  if (cpu.trace_cache() != nullptr) {
    result.trace_cache = cpu.trace_cache()->stats();
  }
  result.wakeup = cpu.wakeup().stats();
  if (cpu.dcache() != nullptr) {
    result.dcache = cpu.dcache()->stats();
  }
  result.fault = cpu.fault_stats();
  if (cpu.recovery() != nullptr) {
    result.recovery = cpu.recovery()->stats();
  }
  if (cpu.audit_log() != nullptr) {
    result.audit = cpu.audit_log()->summary();
  }
  return result;
}

SimResult simulate(const Program& program, const MachineConfig& config,
                   const PolicySpec& spec, std::uint64_t max_cycles) {
  WallTimer timer;
  auto cpu = make_processor(program, config, spec);
  const double build_seconds = timer.seconds();
  timer.restart();
  const RunOutcome outcome = cpu->run(max_cycles);
  const double run_seconds = timer.seconds();
  timer.restart();
  SimResult result = collect_result(*cpu, spec, outcome);
  result.host.build_seconds = build_seconds;
  result.host.run_seconds = run_seconds;
  result.host.collect_seconds = timer.seconds();
  return result;
}

}  // namespace steersim
