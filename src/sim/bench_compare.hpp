// Bench-regression comparator (docs/OBSERVABILITY.md).
//
// Diffs two directories of BENCH_*.json reports (written by the BenchReport
// harness in bench/bench_util.hpp): directory A is the baseline, directory B
// the candidate. Simulated metrics ("kind":"sim") come from a deterministic
// machine and must match *exactly* — json_number round-trips doubles at 17
// significant digits, so equal simulations produce byte-equal means. Host
// metrics (wall-clock) are noisy and compare by relative tolerance,
// direction-aware: host_time regresses when the candidate is slower,
// host_rate when it is lower. Reports whose config digests differ are
// flagged and their metrics skipped — comparing a 200k-cycle smoke run
// against a full run is a setup error, not a regression.
//
// The core is a library (unit-tested in tests/test_bench_compare.cpp); the
// tools/bench_compare binary is a thin CLI over compare_bench_dirs().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace steersim {

struct BenchCompareOptions {
  /// Relative tolerance for host_time / host_rate metrics (0.20 = 20%).
  double host_tolerance = 0.20;
};

enum class IssueSeverity : std::uint8_t {
  kNote,        ///< informational (new bench, new metric)
  kWarning,     ///< comparison skipped or suspicious (digest mismatch)
  kRegression,  ///< candidate is worse; drives the nonzero exit code
};

struct CompareIssue {
  IssueSeverity severity = IssueSeverity::kNote;
  std::string bench;    ///< bench id, or file name for parse errors
  std::string metric;   ///< empty for bench-level issues
  std::string message;  ///< human-readable detail with both values
};

struct CompareReport {
  std::vector<CompareIssue> issues;
  std::size_t benches_compared = 0;
  std::size_t metrics_compared = 0;

  bool has_regression() const;
  std::size_t count(IssueSeverity severity) const;
  /// One line per issue plus a summary line, ready for stdout.
  std::string to_string() const;
};

/// Compares one baseline report body against one candidate body (both raw
/// JSON text). `name` labels issues when the documents lack a bench id.
void compare_bench_reports(const std::string& name,
                           const std::string& baseline_json,
                           const std::string& candidate_json,
                           const BenchCompareOptions& options,
                           CompareReport& report);

/// Scans both directories for BENCH_*.json and compares the intersection.
/// Baseline benches missing from the candidate are regressions (a bench
/// that stopped emitting its report is exactly what the harness exists to
/// catch); candidate-only benches are notes.
CompareReport compare_bench_dirs(const std::string& baseline_dir,
                                 const std::string& candidate_dir,
                                 const BenchCompareOptions& options = {});

}  // namespace steersim
