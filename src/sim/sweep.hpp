// Thread-parallel sweep runner.
//
// Experiments are embarrassingly parallel (independent simulations over a
// parameter grid); parallel_map shards them over a worker pool with no
// shared mutable state between jobs and merges results deterministically
// by index, so a sweep's output is identical at any thread count.
#pragma once

#include <atomic>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace steersim {

inline unsigned default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

template <typename Result>
std::vector<Result> parallel_map(
    const std::vector<std::function<Result()>>& jobs,
    unsigned workers = default_worker_count()) {
  std::vector<Result> results(jobs.size());
  if (jobs.empty()) {
    return results;
  }
  workers = std::min<unsigned>(workers, static_cast<unsigned>(jobs.size()));
  std::atomic<std::size_t> next{0};
  // An exception escaping a jthread body calls std::terminate, so workers
  // capture per-job exceptions; the lowest-index one is rethrown after
  // every worker has joined (remaining jobs still run to completion).
  std::vector<std::exception_ptr> errors(jobs.size());
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) {
        return;
      }
      try {
        results[i] = jobs[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::jthread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back(worker);
  }
  pool.clear();  // join
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
  return results;
}

}  // namespace steersim
