// Thread-parallel sweep runner.
//
// Experiments are embarrassingly parallel (independent simulations over a
// parameter grid); parallel_map shards them over a worker pool with no
// shared mutable state between jobs and merges results deterministically
// by index, so a sweep's output is identical at any thread count.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/strings.hpp"

namespace steersim {

/// Worker count for parallel_map and the service worker pool: the
/// STEERSIM_WORKERS environment variable when it holds a positive decimal
/// integer (strict parse_positive_u64 — "-1" must not wrap into billions
/// of threads), otherwise the hardware thread count. Malformed values are
/// ignored with a once-per-process warning, mirroring STEERSIM_MAX_CYCLES
/// handling in bench/bench_util.hpp.
inline unsigned default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned fallback = hw == 0 ? 4 : hw;
  if (const char* env = std::getenv("STEERSIM_WORKERS")) {
    if (const auto v = parse_positive_u64(env)) {
      return static_cast<unsigned>(std::min<std::uint64_t>(*v, 1024));
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "steersim: ignoring STEERSIM_WORKERS='%s' (expected a "
                   "positive decimal worker count); using %u\n",
                   env, fallback);
    }
  }
  return fallback;
}

template <typename Result>
std::vector<Result> parallel_map(
    const std::vector<std::function<Result()>>& jobs,
    unsigned workers = default_worker_count()) {
  std::vector<Result> results(jobs.size());
  if (jobs.empty()) {
    return results;
  }
  workers = std::min<unsigned>(workers, static_cast<unsigned>(jobs.size()));
  std::atomic<std::size_t> next{0};
  // An exception escaping a jthread body calls std::terminate, so workers
  // capture per-job exceptions; the lowest-index one is rethrown after
  // every worker has joined (remaining jobs still run to completion).
  std::vector<std::exception_ptr> errors(jobs.size());
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) {
        return;
      }
      try {
        results[i] = jobs[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::jthread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back(worker);
  }
  pool.clear();  // join
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
  return results;
}

}  // namespace steersim
