// Minimal CSV writer for experiment outputs.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/contracts.hpp"

namespace steersim {

class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path) : out_(path) {
    STEERSIM_EXPECTS(out_.good());
  }

  /// Flushes and verifies the stream: a sweep that silently wrote a
  /// truncated CSV (disk full, deleted directory) must fail loudly, not
  /// hand downstream plots a partial artifact.
  ~CsvWriter() {
    out_.flush();
    STEERSIM_ENSURES(out_.good());
  }

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) {
        out_ << ',';
      }
      // Quote cells containing separators or line breaks (\r included:
      // a bare carriage return inside a cell corrupts the record framing
      // for RFC-4180 readers just like \n does).
      if (cells[i].find_first_of(",\"\n\r") != std::string::npos) {
        out_ << '"';
        for (const char c : cells[i]) {
          if (c == '"') {
            out_ << '"';
          }
          out_ << c;
        }
        out_ << '"';
      } else {
        out_ << cells[i];
      }
    }
    out_ << '\n';
    STEERSIM_ENSURES(out_.good());
  }

 private:
  std::ofstream out_;
};

}  // namespace steersim
