// Minimal CSV writer for experiment outputs.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/contracts.hpp"

namespace steersim {

class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path) : out_(path) {
    STEERSIM_EXPECTS(out_.good());
  }

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) {
        out_ << ',';
      }
      // Quote cells containing separators.
      if (cells[i].find_first_of(",\"\n") != std::string::npos) {
        out_ << '"';
        for (const char c : cells[i]) {
          if (c == '"') {
            out_ << '"';
          }
          out_ << c;
        }
        out_ << '"';
      } else {
        out_ << cells[i];
      }
    }
    out_ << '\n';
  }

 private:
  std::ofstream out_;
};

}  // namespace steersim
