// Dataflow ILP limit study.
//
// Computes the classic oracle ILP bound of a program's committed
// instruction stream: the dataflow critical path with the machine's
// operation latencies, honouring true (RAW) dependences through registers
// and memory only — perfect branch prediction, infinite window, infinite
// units, full renaming. `bound.max_ipc()` is the ceiling no machine
// organization can exceed; comparing measured IPC against it separates
// "the workload has no ILP" from "the machine failed to extract it"
// (e.g. fib and newton_sqrt are dataflow-bound; saxpy is machine-bound).
#pragma once

#include <cstdint>

#include "isa/program.hpp"

namespace steersim {

struct IlpBound {
  std::uint64_t instructions = 0;
  /// Length of the dataflow critical path, in cycles.
  std::uint64_t critical_path = 0;
  /// Instructions whose completion time lies on the critical path's final
  /// cycle (a width hint: how many units the last step would need).
  std::uint64_t tail_width = 0;

  double max_ipc() const {
    return critical_path == 0
               ? 0.0
               : static_cast<double>(instructions) /
                     static_cast<double>(critical_path);
  }
};

/// Executes `program` on the reference interpreter (up to
/// `max_instructions`) and scans the committed stream.
IlpBound compute_ilp_bound(const Program& program,
                           std::size_t data_memory_bytes = 1 << 20,
                           std::uint64_t max_instructions = 5'000'000);

}  // namespace steersim
