// One-call simulation entry points used by tests, examples and benches:
// a PolicySpec names a machine variant; simulate() builds the processor,
// runs the program and returns the full statistics bundle.
#pragma once

#include <memory>
#include <string>

#include "core/processor.hpp"
#include "obs/profile.hpp"

namespace steersim {

enum class PolicyKind : std::uint8_t {
  kSteered,       ///< the paper's configuration manager
  kStaticFfu,     ///< fixed units only, RFU fabric left empty
  kStaticPreset,  ///< one predefined configuration preloaded and frozen
  kOracle,        ///< instant ideal fabric (upper bound)
  kFullReconfig,  ///< steered selection + whole-fabric reconfiguration
  kRandom,        ///< random candidate every 16 cycles (sanity floor)
  kGreedy,        ///< preset-free greedy repacking (paper's future work)
};

struct PolicySpec {
  PolicyKind kind = PolicyKind::kSteered;
  /// For kStaticPreset: which predefined configuration (0-based).
  unsigned preset_index = 0;
  CemMode cem = CemMode::kShiftApprox;
  TieBreak tie_break = TieBreak::kPaper;
  /// Steering decision interval in cycles.
  unsigned interval = 1;
  /// Consecutive identical selections required before retargeting
  /// (hysteresis extension; 1 = the paper's behaviour).
  unsigned confirm = 1;
  /// Merge the upcoming trace line's pre-decoded requirements into the
  /// selection (lookahead/configuration-prefetch extension).
  bool lookahead = false;
  std::uint64_t seed = 42;  ///< kRandom only

  /// Human-readable variant label ("steered", "static-ffu", ...).
  std::string label(const SteeringSet& set) const;
};

/// The standard comparison roster: steered, static-ffu, the three frozen
/// presets, full-reconfig, oracle.
std::vector<PolicySpec> standard_policies();

struct SimResult {
  std::string policy;
  RunOutcome outcome = RunOutcome::kHalted;
  SimStats stats;
  LoaderStats loader;
  PolicyStats steering;
  EngineStats engine;
  FetchStats fetch;
  TraceCacheStats trace_cache;
  WakeupStats wakeup;
  CacheStats dcache;
  FaultStats fault;
  RecoveryStats recovery;
  /// Steering audit aggregates (all zero unless MachineConfig::audit).
  AuditSummary audit;
  /// Host-side wall-clock phase timings for this simulation.
  HostProfile host;
};

/// Builds the processor for (config, spec): chooses the policy object, the
/// initial fabric allocation, and any loader overrides (oracle => instant,
/// full-reconfig => non-partial).
std::unique_ptr<Processor> make_processor(const Program& program,
                                          const MachineConfig& config,
                                          const PolicySpec& spec);

/// Parses a policy label (the names PolicySpec::label emits for default
/// specs: steered|static-ffu|static-integer|static-memory|static-float|
/// oracle|full-reconfig|random|greedy) into `spec`'s kind/preset fields,
/// leaving interval/confirm/lookahead/seed untouched. Returns false on an
/// unknown label. Shared by examples/run_asm and the svc job server.
bool parse_policy(const std::string& name, PolicySpec& spec);

/// Gathers every subsystem's statistics from a finished (or paused)
/// processor into a SimResult — the collection half of simulate(), exposed
/// so callers that drive run()/step() themselves (the service worker pool,
/// examples) assemble the same bundle without duplicating the field list.
/// Host-profile timings are left zero; simulate() fills them.
SimResult collect_result(const Processor& cpu, const PolicySpec& spec,
                         RunOutcome outcome);

SimResult simulate(const Program& program, const MachineConfig& config,
                   const PolicySpec& spec,
                   std::uint64_t max_cycles = 50'000'000);

}  // namespace steersim
