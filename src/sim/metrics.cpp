#include "sim/metrics.hpp"

namespace steersim {

void collect_metrics_into(MetricRegistry& reg, const SimResult& result,
                          const std::string& scope) {
  result.stats.visit_metrics(reg.prefixed(scope + "sim."));
  result.loader.visit_metrics(reg.prefixed(scope + "loader."));
  result.steering.visit_metrics(reg.prefixed(scope + "steer."));
  result.engine.visit_metrics(reg.prefixed(scope + "engine."));
  result.fetch.visit_metrics(reg.prefixed(scope + "fetch."));
  result.trace_cache.visit_metrics(reg.prefixed(scope + "tcache."));
  result.wakeup.visit_metrics(reg.prefixed(scope + "wakeup."));
  result.dcache.visit_metrics(reg.prefixed(scope + "dcache."));
  result.fault.visit_metrics(reg.prefixed(scope + "fault."));
  result.recovery.visit_metrics(reg.prefixed(scope + "recovery."));
}

MetricRegistry collect_metrics(const SimResult& result) {
  MetricRegistry reg;
  collect_metrics_into(reg, result, "");
  return reg;
}

std::string metrics_csv(const SimResult& result) {
  return collect_metrics(result).to_csv();
}

std::string metrics_json(const SimResult& result) {
  return collect_metrics(result).to_json();
}

}  // namespace steersim
