#include "sim/metrics.hpp"

namespace steersim {

MetricRegistry collect_metrics(const SimResult& result) {
  MetricRegistry reg;
  result.stats.visit_metrics(reg.prefixed("sim."));
  result.loader.visit_metrics(reg.prefixed("loader."));
  result.steering.visit_metrics(reg.prefixed("steer."));
  result.engine.visit_metrics(reg.prefixed("engine."));
  result.fetch.visit_metrics(reg.prefixed("fetch."));
  result.trace_cache.visit_metrics(reg.prefixed("tcache."));
  result.wakeup.visit_metrics(reg.prefixed("wakeup."));
  result.dcache.visit_metrics(reg.prefixed("dcache."));
  result.fault.visit_metrics(reg.prefixed("fault."));
  result.recovery.visit_metrics(reg.prefixed("recovery."));
  return reg;
}

std::string metrics_csv(const SimResult& result) {
  return collect_metrics(result).to_csv();
}

std::string metrics_json(const SimResult& result) {
  return collect_metrics(result).to_json();
}

}  // namespace steersim
