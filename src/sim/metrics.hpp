// Flat metric view of a simulation result (docs/OBSERVABILITY.md).
//
// collect_metrics() walks every stats struct in a SimResult through its
// visit_metrics() enumeration, prefixing each subsystem ("sim.", "loader.",
// "steer.", ...), so consumers iterate one namespace instead of reaching
// into a dozen structs.
#pragma once

#include "obs/metrics.hpp"
#include "sim/runner.hpp"

namespace steersim {

MetricRegistry collect_metrics(const SimResult& result);

/// The collection walk itself, reusable under an outer namespace: every
/// subsystem of `result` lands in `reg` as `<scope><subsystem>.<metric>`.
/// collect_metrics() is the `scope == ""` case; the multi-core fabric
/// collects each core under "coreK.".
void collect_metrics_into(MetricRegistry& reg, const SimResult& result,
                          const std::string& scope);

/// collect_metrics() rendered as CSV ("metric,value" rows).
std::string metrics_csv(const SimResult& result);

/// collect_metrics() rendered as one flat JSON object ({"sim.ipc": ...});
/// keys are escaped, non-finite values render as strings. The BenchReport
/// writer (bench/bench_util.hpp) embeds this per-policy.
std::string metrics_json(const SimResult& result);

}  // namespace steersim
