#include "sim/ilp_bound.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "core/reference.hpp"

namespace steersim {

IlpBound compute_ilp_bound(const Program& program,
                           std::size_t data_memory_bytes,
                           std::uint64_t max_instructions) {
  // Completion time of the last writer of each architectural register and
  // of each memory byte-range (tracked at word granularity; byte accesses
  // conservatively alias their containing word).
  std::array<std::uint64_t, kNumIntRegs> int_ready{};
  std::array<std::uint64_t, kNumFpRegs> fp_ready{};
  std::unordered_map<std::uint64_t, std::uint64_t> mem_ready;

  IlpBound bound;
  std::unordered_map<std::uint64_t, std::uint64_t> completions_at;

  const auto observer = [&](const Instruction& inst, std::uint32_t,
                            const ExecOutput& out) {
    const OpInfo& info = op_info(inst.op);

    std::uint64_t start = 0;
    if (info.rs1_class == RegClass::kInt) {
      start = std::max(start, int_ready[inst.rs1]);
    } else if (info.rs1_class == RegClass::kFp) {
      start = std::max(start, fp_ready[inst.rs1]);
    }
    if (info.rs2_class == RegClass::kInt) {
      start = std::max(start, int_ready[inst.rs2]);
    } else if (info.rs2_class == RegClass::kFp) {
      start = std::max(start, fp_ready[inst.rs2]);
    }
    const std::uint64_t word = out.mem_addr / 8;
    if (info.is_load) {
      // RAW through memory: wait for the last store to this word.
      const auto it = mem_ready.find(word);
      if (it != mem_ready.end()) {
        start = std::max(start, it->second);
      }
    }

    const std::uint64_t done = start + info.latency;
    if (info.is_store) {
      mem_ready[word] = done;
    } else if (info.rd_class == RegClass::kInt && inst.rd != 0) {
      int_ready[inst.rd] = done;
    } else if (info.rd_class == RegClass::kFp) {
      fp_ready[inst.rd] = done;
    }

    ++bound.instructions;
    bound.critical_path = std::max(bound.critical_path, done);
    ++completions_at[done];
  };

  ReferenceInterpreter ref(data_memory_bytes);
  ref.run(program, max_instructions, observer);

  const auto tail = completions_at.find(bound.critical_path);
  bound.tail_width = tail == completions_at.end() ? 0 : tail->second;
  return bound;
}

}  // namespace steersim
