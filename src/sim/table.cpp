#include "sim/table.hpp"

#include <algorithm>
#include <cctype>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace steersim {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  // At least one digit is required: bare punctuation ("-", "e", "x") is a
  // text cell, not a number, and must stay left-aligned.
  bool has_digit = false;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      has_digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'x' &&
               c != 'e') {
      return false;
    }
  }
  return has_digit;
}

}  // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  STEERSIM_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row, bool header) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += c == 0 ? "| " : " ";
      const int width = static_cast<int>(widths[c]);
      const bool right = !header && looks_numeric(row[c]);
      out += pad(row[c], right ? width : -width);
      out += " |";
    }
    out += "\n";
  };
  emit_row(headers_, true);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += c == 0 ? "|" : "";
    out += std::string(widths[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) {
    emit_row(row, false);
  }
  return out;
}

std::string Table::num(double value, int precision) {
  return format_double(value, precision);
}

std::string Table::num(std::uint64_t value) { return std::to_string(value); }

}  // namespace steersim
