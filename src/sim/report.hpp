// Human-readable statistics report for a completed simulation.
#pragma once

#include <string>
#include <string_view>

#include "sim/runner.hpp"

namespace steersim {

/// Stable lowercase name of a run outcome ("halted", "max-cycles",
/// "stalled", "fault"); shared by the report header and the service
/// protocol's result replies.
std::string_view outcome_name(RunOutcome outcome);

/// Multi-line summary of a SimResult: outcome, throughput, front-end,
/// scheduler, and configuration-manager sections.
std::string format_report(const SimResult& result);

}  // namespace steersim
