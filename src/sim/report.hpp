// Human-readable statistics report for a completed simulation.
#pragma once

#include <string>

#include "sim/runner.hpp"

namespace steersim {

/// Multi-line summary of a SimResult: outcome, throughput, front-end,
/// scheduler, and configuration-manager sections.
std::string format_report(const SimResult& result);

}  // namespace steersim
