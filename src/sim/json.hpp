// Minimal recursive-descent JSON reader, shared by the bench-regression
// comparator (sim/bench_compare.hpp), the tools/ CLI and the observability
// tests. Reads everything this repo emits (trace-event documents, metric
// objects, BENCH_*.json reports). \uXXXX escapes decode to real UTF-8
// (surrogate pairs included), numbers parse and render via
// std::from_chars/std::to_chars (locale-independent, so canonical
// renderings and FNV-1a digests are stable under any global locale), and
// digit-only tokens keep an exact 64-bit integer representation so
// protocol fields >= 2^53 round-trip without double rounding. Header-only
// so test binaries can use it without a link edge.
#pragma once

#include <cctype>
#include <charconv>
#include <cstdint>
#include <map>
#include <system_error>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.hpp"

namespace steersim {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  /// Exact payload carried alongside `number` for digit-only tokens: a
  /// double loses integers past 2^53, so cycle budgets and wall-clock
  /// fields keep their 64-bit value and render back digit-identical.
  enum class NumberRepr { kDouble, kU64, kI64 };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  NumberRepr repr = NumberRepr::kDouble;
  std::uint64_t u64 = 0;  ///< valid when repr == kU64
  std::int64_t i64 = 0;   ///< valid when repr == kI64 (negative integers)
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }

  /// Exact unsigned read: true when this is a number representable as
  /// u64 without rounding (integer-carried, or an integral double below
  /// 2^53 — anything bigger only exists as a digit-only token).
  bool as_u64(std::uint64_t& out) const {
    if (kind != Kind::kNumber) {
      return false;
    }
    switch (repr) {
      case NumberRepr::kU64:
        out = u64;
        return true;
      case NumberRepr::kI64:
        return false;  // negative
      case NumberRepr::kDouble:
        break;
    }
    if (number < 0.0 || number > 9007199254740992.0 ||
        number != static_cast<double>(static_cast<std::uint64_t>(number))) {
      return false;
    }
    out = static_cast<std::uint64_t>(number);
    return true;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

  /// Lenient streaming variant: parses the first top-level value and
  /// reports how many bytes it consumed (trailing whitespace included),
  /// leaving anything after it — e.g. the next message of a JSON-lines
  /// stream — for the caller.
  bool parse_prefix(JsonValue& out, std::size_t& consumed) {
    skip_ws();
    if (!value(out)) {
      return false;
    }
    skip_ws();
    consumed = pos_;
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  /// Consumes exactly four hex digits into `out`.
  bool hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) {
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      std::uint32_t nibble = 0;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<std::uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        nibble = static_cast<std::uint32_t>(c - 'A') + 10;
      } else {
        return false;
      }
      out = (out << 4) | nibble;
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  /// \uXXXX after the backslash: decodes to UTF-8, pairing surrogates.
  /// Lone or mismatched surrogates are malformed input and fail the parse
  /// (never a placeholder byte — round trips must be byte-identical).
  bool unicode_escape(std::string& out) {
    ++pos_;  // consume 'u'
    std::uint32_t cp = 0;
    if (!hex4(cp)) {
      return false;
    }
    if (cp >= 0xDC00 && cp <= 0xDFFF) {
      return false;  // low surrogate with no preceding high surrogate
    }
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return false;
      }
      pos_ += 2;
      std::uint32_t low = 0;
      if (!hex4(low) || low < 0xDC00 || low > 0xDFFF) {
        return false;
      }
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    }
    append_utf8(out, cp);
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return object(out);
    }
    if (c == '[') {
      return array(out);
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.string);
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::kBool;
      return true;
    }
    if (literal("null")) {
      return true;
    }
    return number(out);
  }

  bool string(std::string& out) {
    if (!consume('"')) {
      return false;
    }
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        switch (text_[pos_]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u':
            if (!unicode_escape(out)) {
              return false;
            }
            continue;  // unicode_escape consumed its own characters
          default:
            return false;
        }
        ++pos_;
      } else {
        out += text_[pos_++];
      }
    }
    return consume('"');
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    std::string_view token = text_.substr(start, pos_ - start);

    // Digit-only tokens (optional leading '-') carry an exact 64-bit
    // integer next to the double approximation, so values past 2^53 render
    // back digit-identical.
    const bool negative = token.front() == '-';
    const std::string_view digits = negative ? token.substr(1) : token;
    const bool digit_only =
        !digits.empty() &&
        digits.find_first_not_of("0123456789") == std::string_view::npos;
    if (digit_only) {
      if (!negative) {
        std::uint64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(digits.data(), digits.data() + digits.size(),
                            value);
        if (ec == std::errc{} && ptr == digits.data() + digits.size()) {
          out.repr = JsonValue::NumberRepr::kU64;
          out.u64 = value;
          out.number = static_cast<double>(value);
          return true;
        }
      } else {
        std::int64_t value = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc{} && ptr == token.data() + token.size()) {
          out.repr = JsonValue::NumberRepr::kI64;
          out.i64 = value;
          out.number = static_cast<double>(value);
          return true;
        }
      }
      // Out-of-range integers fall through to the double path.
    }

    // Locale-independent float parse. std::from_chars rejects a leading
    // '+', which the scan (and the old strtod path) tolerated; strip it.
    if (token.front() == '+') {
      token.remove_prefix(1);
    }
    out.repr = JsonValue::NumberRepr::kDouble;
    out.number = 0.0;  // lenient like strtod: unparsable tokens read as 0
    (void)std::from_chars(token.data(), token.data() + token.size(),
                          out.number);
    return true;
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) {
      return false;
    }
    skip_ws();
    if (consume(']')) {
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element)) {
        return false;
      }
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) {
      return false;
    }
    skip_ws();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      JsonValue val;
      if (!value(val)) {
        return false;
      }
      out.object.emplace(std::move(key), std::move(val));
      skip_ws();
      if (consume('}')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Strict entry point for wire protocols (src/svc): `text` must be exactly
/// one JSON value — trailing garbage is rejected, so a frame holding
/// `{"a":1}{"b":2}` can never be mistaken for one message.
inline bool parse_json_strict(std::string_view text, JsonValue& out) {
  return JsonParser(text).parse(out);
}

/// Lenient entry point for streams: parses the first top-level value,
/// returns the byte count consumed so the caller can resume after it.
inline bool parse_json_prefix(std::string_view text, JsonValue& out,
                              std::size_t& consumed) {
  return JsonParser(text).parse_prefix(out, consumed);
}

/// Canonical re-serialization: object keys in sorted (std::map) order,
/// numbers via json_number's round-trip rendering, strings escaped. Two
/// JsonValues parsed from equivalent documents render identically, which
/// is what the service protocol's bit-identical cache-hit replies and the
/// round-trip tests compare.
inline std::string render_json(const JsonValue& value) {
  std::string out;
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      out = "null";
      break;
    case JsonValue::Kind::kBool:
      out = value.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      switch (value.repr) {
        case JsonValue::NumberRepr::kU64:
          out = std::to_string(value.u64);
          break;
        case JsonValue::NumberRepr::kI64:
          out = std::to_string(value.i64);
          break;
        case JsonValue::NumberRepr::kDouble:
          out = json_number(value.number);
          break;
      }
      break;
    case JsonValue::Kind::kString:
      out += '"';
      append_json_escaped(out, value.string);
      out += '"';
      break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& element : value.array) {
        if (!first) {
          out += ',';
        }
        first = false;
        out += render_json(element);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.object) {
        if (!first) {
          out += ',';
        }
        first = false;
        out += '"';
        append_json_escaped(out, key);
        out += "\":";
        out += render_json(member);
      }
      out += '}';
      break;
    }
  }
  return out;
}

}  // namespace steersim
