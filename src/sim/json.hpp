// Minimal recursive-descent JSON reader, shared by the bench-regression
// comparator (sim/bench_compare.hpp), the tools/ CLI and the observability
// tests. Reads everything this repo emits (trace-event documents, metric
// objects, BENCH_*.json reports); not a general-purpose validator — escape
// handling collapses \uXXXX to a placeholder byte and numbers go through
// strtod. Header-only so test binaries can use it without a link edge.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.hpp"

namespace steersim {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

  /// Lenient streaming variant: parses the first top-level value and
  /// reports how many bytes it consumed (trailing whitespace included),
  /// leaving anything after it — e.g. the next message of a JSON-lines
  /// stream — for the caller.
  bool parse_prefix(JsonValue& out, std::size_t& consumed) {
    skip_ws();
    if (!value(out)) {
      return false;
    }
    skip_ws();
    consumed = pos_;
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return object(out);
    }
    if (c == '[') {
      return array(out);
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.string);
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::kBool;
      return true;
    }
    if (literal("null")) {
      return true;
    }
    return number(out);
  }

  bool string(std::string& out) {
    if (!consume('"')) {
      return false;
    }
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        switch (text_[pos_]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u':
            if (pos_ + 4 >= text_.size()) {
              return false;
            }
            out += '?';  // escaped control byte; exact value irrelevant
            pos_ += 4;
            break;
          default:
            return false;
        }
        ++pos_;
      } else {
        out += text_[pos_++];
      }
    }
    return consume('"');
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) {
      return false;
    }
    skip_ws();
    if (consume(']')) {
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element)) {
        return false;
      }
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) {
      return false;
    }
    skip_ws();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      JsonValue val;
      if (!value(val)) {
        return false;
      }
      out.object.emplace(std::move(key), std::move(val));
      skip_ws();
      if (consume('}')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Strict entry point for wire protocols (src/svc): `text` must be exactly
/// one JSON value — trailing garbage is rejected, so a frame holding
/// `{"a":1}{"b":2}` can never be mistaken for one message.
inline bool parse_json_strict(std::string_view text, JsonValue& out) {
  return JsonParser(text).parse(out);
}

/// Lenient entry point for streams: parses the first top-level value,
/// returns the byte count consumed so the caller can resume after it.
inline bool parse_json_prefix(std::string_view text, JsonValue& out,
                              std::size_t& consumed) {
  return JsonParser(text).parse_prefix(out, consumed);
}

/// Canonical re-serialization: object keys in sorted (std::map) order,
/// numbers via json_number's round-trip rendering, strings escaped. Two
/// JsonValues parsed from equivalent documents render identically, which
/// is what the service protocol's bit-identical cache-hit replies and the
/// round-trip tests compare.
inline std::string render_json(const JsonValue& value) {
  std::string out;
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      out = "null";
      break;
    case JsonValue::Kind::kBool:
      out = value.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      out = json_number(value.number);
      break;
    case JsonValue::Kind::kString:
      out += '"';
      append_json_escaped(out, value.string);
      out += '"';
      break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& element : value.array) {
        if (!first) {
          out += ',';
        }
        first = false;
        out += render_json(element);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.object) {
        if (!first) {
          out += ',';
        }
        first = false;
        out += '"';
        append_json_escaped(out, key);
        out += "\":";
        out += render_json(member);
      }
      out += '}';
      break;
    }
  }
  return out;
}

}  // namespace steersim
