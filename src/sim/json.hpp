// Minimal recursive-descent JSON reader, shared by the bench-regression
// comparator (sim/bench_compare.hpp), the tools/ CLI and the observability
// tests. Reads everything this repo emits (trace-event documents, metric
// objects, BENCH_*.json reports); not a general-purpose validator — escape
// handling collapses \uXXXX to a placeholder byte and numbers go through
// strtod. Header-only so test binaries can use it without a link edge.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace steersim {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return object(out);
    }
    if (c == '[') {
      return array(out);
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.string);
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::kBool;
      return true;
    }
    if (literal("null")) {
      return true;
    }
    return number(out);
  }

  bool string(std::string& out) {
    if (!consume('"')) {
      return false;
    }
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        switch (text_[pos_]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u':
            if (pos_ + 4 >= text_.size()) {
              return false;
            }
            out += '?';  // escaped control byte; exact value irrelevant
            pos_ += 4;
            break;
          default:
            return false;
        }
        ++pos_;
      } else {
        out += text_[pos_++];
      }
    }
    return consume('"');
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) {
      return false;
    }
    skip_ws();
    if (consume(']')) {
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element)) {
        return false;
      }
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) {
      return false;
    }
    skip_ws();
    if (consume('}')) {
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) {
        return false;
      }
      skip_ws();
      if (!consume(':')) {
        return false;
      }
      JsonValue val;
      if (!value(val)) {
        return false;
      }
      out.object.emplace(std::move(key), std::move(val));
      skip_ws();
      if (consume('}')) {
        return true;
      }
      if (!consume(',')) {
        return false;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace steersim
