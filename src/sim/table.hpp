// Aligned console tables for the repro/bench binaries.
#pragma once

#include <string>
#include <vector>

namespace steersim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with per-column alignment (numbers right, text left) and a
  /// header separator.
  std::string to_string() const;

  /// Formats a double with `precision` decimals (shortcut for cells).
  static std::string num(double value, int precision = 3);
  static std::string num(std::uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace steersim
