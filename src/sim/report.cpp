#include "sim/report.hpp"

#include "common/strings.hpp"

namespace steersim {
namespace {

std::string line(const std::string& key, const std::string& value) {
  return "  " + pad(key, -28) + value + "\n";
}

}  // namespace

std::string_view outcome_name(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kHalted:
      return "halted";
    case RunOutcome::kMaxCycles:
      return "max-cycles";
    case RunOutcome::kStalled:
      return "stalled";
    case RunOutcome::kFault:
      return "fault";
  }
  return "?";
}

std::string format_report(const SimResult& r) {
  std::string out;
  out += "policy: " + r.policy + " (" + std::string(outcome_name(r.outcome)) +
         ")\n";
  out += "throughput\n";
  out += line("instructions retired", std::to_string(r.stats.retired));
  out += line("cycles", std::to_string(r.stats.cycles));
  out += line("IPC", format_double(r.stats.ipc(), 3));
  out += line("dispatched / issued",
              std::to_string(r.stats.dispatched) + " / " +
                  std::to_string(r.stats.issued));
  out += line("squashed (wrong path)", std::to_string(r.stats.squashed));
  out += "front end\n";
  out += line("fetched", std::to_string(r.fetch.fetched));
  out += line("from trace cache",
              std::to_string(r.fetch.trace_fetched) + " (" +
                  format_double(100.0 * r.trace_cache.hit_rate(), 1) +
                  "% line hit rate)");
  out += line("redirects", std::to_string(r.fetch.redirects));
  out += line("branch mispredict rate",
              format_double(100.0 * r.stats.mispredict_rate(), 1) + "% of " +
                  std::to_string(r.stats.branches) + " branches");
  out += "scheduler\n";
  out += line("avg queue occupancy",
              format_double(r.stats.cycles == 0
                                ? 0.0
                                : static_cast<double>(
                                      r.stats.queue_occupancy_sum) /
                                      static_cast<double>(r.stats.cycles),
                            2));
  out += line("resource-starved entry-cycles",
              std::to_string(r.stats.resource_starved));
  out += line("reschedules", std::to_string(r.wakeup.reschedules));
  out += "configuration manager\n";
  out += line("steer decisions", std::to_string(r.steering.steer_events));
  std::string sel = "current=" + std::to_string(r.steering.selections[0]);
  for (unsigned c = 1; c < kNumCandidates; ++c) {
    sel += " cfg" + std::to_string(c) + "=" +
           std::to_string(r.steering.selections[c]);
  }
  out += line("selections", sel);
  out += line("targets requested",
              std::to_string(r.loader.targets_requested));
  out += line("region rewrites / slots",
              std::to_string(r.loader.regions_started) + " / " +
                  std::to_string(r.loader.slots_rewritten));
  out += line("rewrite-blocked cycles",
              std::to_string(r.loader.blocked_cycles));
  std::string util = "busy unit-cycles per type:";
  for (const FuType t : kAllFuTypes) {
    util += " " + std::string(fu_type_name(t)) + "=" +
            std::to_string(r.engine.busy_unit_cycles[fu_index(t)]);
  }
  out += line("utilization", util);
  if (r.fault.upsets_injected > 0 || r.fault.permanent_failures > 0 ||
      r.loader.scrub_reads > 0) {
    out += "faults & scrubbing\n";
    out += line("upsets injected / detected",
                std::to_string(r.fault.upsets_injected) + " / " +
                    std::to_string(r.loader.upsets_detected));
    out += line("slots repaired", std::to_string(r.loader.slots_repaired));
    out += line("permanent failures",
                std::to_string(r.fault.permanent_failures) + " (" +
                    std::to_string(r.loader.units_dropped) +
                    " target units dropped)");
    out += line("executions killed / retried",
                std::to_string(r.fault.executions_killed) + " / " +
                    std::to_string(r.fault.instructions_retried));
    out += line("scrub readbacks", std::to_string(r.loader.scrub_reads));
    if (r.loader.detection_latency.count() > 0) {
      out += line("detection latency",
                  "mean " +
                      format_double(r.loader.detection_latency.mean(), 1) +
                      ", max " +
                      format_double(r.loader.detection_latency.max(), 0) +
                      ", p95 " +
                      format_double(
                          r.loader.detection_latency_hist.quantile(0.95),
                          0));
    }
    out += line("degraded cycles",
                std::to_string(r.loader.degraded_cycles) + " of " +
                    std::to_string(r.stats.cycles));
    if (r.loader.ecc_corrections > 0 || r.loader.ecc_uncorrectable > 0) {
      out += line("ECC corrected/uncorrectable",
                  std::to_string(r.loader.ecc_corrections) + " / " +
                      std::to_string(r.loader.ecc_uncorrectable));
    }
  }
  if (r.audit.records > 0) {
    out += "steering audit\n";
    out += line("decisions audited", std::to_string(r.audit.records));
    out += line("retargets / holds",
                std::to_string(r.audit.retargets) + " / " +
                    std::to_string(r.audit.holds));
    out += line("confirm-suppressed",
                std::to_string(r.audit.confirm_suppressed));
    out += line("ties broken", std::to_string(r.audit.ties_broken));
  }
  if (r.recovery.checkpoints_taken > 0) {
    out += "checkpoint recovery\n";
    out += line("checkpoints taken",
                std::to_string(r.recovery.checkpoints_taken));
    out += line("rollbacks", std::to_string(r.recovery.rollbacks));
    out += line("cycles rewound / replayed",
                std::to_string(r.recovery.cycles_rewound) + " / " +
                    std::to_string(r.recovery.instructions_replayed));
    out += line("in-flight flushed",
                std::to_string(r.recovery.flushed_in_flight));
    out += line("journal records (peak)",
                std::to_string(r.recovery.journal_records) + " (" +
                    std::to_string(r.recovery.journal_records_peak) + ")");
  }
  return out;
}

}  // namespace steersim
