// Configuration-memory fault model for the RFU fabric.
//
// The paper's forward-progress argument — one fixed unit of every type
// always exists, so every instruction eventually executes regardless of
// RFU state — is only testable if the RFU state can actually go bad. This
// header defines the fault classes the injector exercises:
//
//   kTransientUpset    — a single-event upset flips configuration memory
//                        of one slot; the unit occupying that slot is
//                        silently broken until a scrub readback detects it
//                        (or a rewrite happens to replace the frame).
//   kPermanentFailure  — the slot's configuration logic dies for good; the
//                        slot is fenced off and steering must re-place
//                        configurations around it.
//
// An upset that lands on a slot whose unit is mid-execution additionally
// kills the in-flight instruction: the processor squashes it back to the
// ready queue and it retries on a fixed unit or a repaired slot.
#pragma once

#include <cstdint>
#include <vector>

namespace steersim {

enum class FaultKind : std::uint8_t {
  kTransientUpset,    ///< config memory corrupted until repaired
  kPermanentFailure,  ///< slot fenced off for the rest of the run
};

/// One scheduled or sampled fault.
struct FaultEvent {
  std::uint64_t cycle = 0;
  FaultKind kind = FaultKind::kTransientUpset;
  unsigned slot = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultParams {
  /// Per-cycle probability of one transient upset at a uniform random slot.
  double upset_rate = 0.0;
  /// Per-cycle probability of one permanent failure at a uniform random
  /// slot (already-fenced slots draw again nothing; the event is dropped).
  double permanent_rate = 0.0;
  std::uint64_t seed = 1;
  /// Scripted schedule, applied in addition to the rate-based draws.
  /// Events need not be sorted; the injector sorts at construction.
  std::vector<FaultEvent> script;

  /// True if any fault source is configured. With no sources the injector
  /// is never consulted and the machine behaves bit-identically to a
  /// fault-free build.
  bool enabled() const {
    return upset_rate > 0.0 || permanent_rate > 0.0 || !script.empty();
  }
};

/// Injection-side statistics kept by the processor (the loader keeps the
/// detection/repair side in LoaderStats, since scrubbing is its machinery).
struct FaultStats {
  std::uint64_t upsets_injected = 0;      ///< transient upsets applied
  std::uint64_t permanent_failures = 0;   ///< slots fenced
  std::uint64_t executions_killed = 0;    ///< in-flight work squashed by upsets
  std::uint64_t instructions_retried = 0; ///< killed instructions re-issued

  /// Metric-registry enumeration (docs/OBSERVABILITY.md).
  template <typename V>
  void visit_metrics(V&& visit) const {
    visit("upsets_injected", static_cast<double>(upsets_injected));
    visit("permanent_failures", static_cast<double>(permanent_failures));
    visit("executions_killed", static_cast<double>(executions_killed));
    visit("instructions_retried", static_cast<double>(instructions_retried));
  }
};

}  // namespace steersim
