#include "fault/injector.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace steersim {

FaultInjector::FaultInjector(const FaultParams& params, unsigned num_slots)
    : params_(params), num_slots_(num_slots), rng_(params.seed) {
  STEERSIM_EXPECTS(num_slots >= 1 && num_slots <= kMaxRfuSlots);
  STEERSIM_EXPECTS(params.upset_rate >= 0.0 && params.upset_rate <= 1.0);
  STEERSIM_EXPECTS(params.permanent_rate >= 0.0 &&
                   params.permanent_rate <= 1.0);
  for (const FaultEvent& ev : params_.script) {
    STEERSIM_EXPECTS(ev.slot < num_slots_);
  }
  std::ranges::stable_sort(params_.script,
                           [](const FaultEvent& a, const FaultEvent& b) {
                             return a.cycle < b.cycle;
                           });
}

FixedVector<FaultEvent, kMaxRfuSlots> FaultInjector::sample(
    std::uint64_t cycle) {
  FixedVector<FaultEvent, kMaxRfuSlots> due;
  while (script_pos_ < params_.script.size() &&
         params_.script[script_pos_].cycle <= cycle && !due.full()) {
    due.push_back(params_.script[script_pos_++]);
  }
  // Rates of zero must not consume RNG state: a machine configured with
  // the subsystem on but rates at zero is bit-identical to one without it.
  if (params_.upset_rate > 0.0 && rng_.next_bool(params_.upset_rate) &&
      !due.full()) {
    due.push_back(FaultEvent{
        cycle, FaultKind::kTransientUpset,
        static_cast<unsigned>(rng_.next_below(num_slots_))});
  }
  if (params_.permanent_rate > 0.0 &&
      rng_.next_bool(params_.permanent_rate) && !due.full()) {
    due.push_back(FaultEvent{
        cycle, FaultKind::kPermanentFailure,
        static_cast<unsigned>(rng_.next_below(num_slots_))});
  }
  return due;
}

}  // namespace steersim
