// Deterministic, seeded fault injector.
//
// Two fault sources compose: a scripted schedule (exact cycle/slot/kind
// triples, for directed tests) and rate-based sampling (one Bernoulli draw
// per configured rate per cycle, slot uniform). All randomness flows
// through one seeded Xoshiro256, and a rate of zero performs no draw at
// all, so enabling the subsystem with zero rates leaves the RNG stream —
// and therefore every simulation statistic — untouched.
#pragma once

#include "common/fixed_vector.hpp"
#include "common/rng.hpp"
#include "config/allocation.hpp"
#include "fault/fault_model.hpp"

namespace steersim {

class FaultInjector {
 public:
  /// Scripted slots must be < `num_slots`.
  FaultInjector(const FaultParams& params, unsigned num_slots);

  /// Faults due at `cycle`. Cycles must be consulted in nondecreasing
  /// order (the script cursor only advances). Scripted events whose cycle
  /// has passed fire on the first consultation at or after it.
  FixedVector<FaultEvent, kMaxRfuSlots> sample(std::uint64_t cycle);

  const FaultParams& params() const { return params_; }

 private:
  FaultParams params_;  ///< script sorted by cycle
  unsigned num_slots_;
  Xoshiro256 rng_;
  std::size_t script_pos_ = 0;
};

}  // namespace steersim
