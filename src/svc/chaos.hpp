// Service-layer chaos injection (docs/SERVICE.md §Failure modes).
//
// The simulated machine already has a fault story (src/fault/: seeded,
// deterministic, zero-overhead when off); this header gives the *service*
// the same discipline. A ChaosInjector, configured by the STEERSIM_CHAOS
// environment variable (grammar below) or installed programmatically by a
// test/bench, perturbs the seams a misbehaving peer or an unlucky host
// would hit:
//
//   frame faults  — delay, drop, truncate or bit-corrupt one reply frame
//                   at the SocketServer write boundary;
//   worker faults — stall a worker at job start (the watchdog's prey) or
//                   crash it (an exception that escapes the job wrapper,
//                   exercising WorkerPool crash isolation);
//   cache faults  — slow the result-cache lookup path.
//
// Every site is guarded by `if (auto chaos = global())`: with
// STEERSIM_CHAOS unset, global() returns an empty pointer and production
// binaries pay one atomic pointer load per site. When an injector *is*
// installed, global() hands out a shared_ptr snapshot, so install()
// swapping (or retiring) the injector can never free it under a thread
// that is mid-roll — the last in-flight user releases it. Draws flow through one seeded Xoshiro256
// (mutex-guarded), so a single-connection fuzz or smoke run replays the
// same fault sequence for the same spec string; multi-threaded runs are
// deterministic per-draw but interleaving-dependent, like src/fault under
// parallel sweeps.
//
// Spec grammar (parsed by ChaosSpec::parse):
//
//   STEERSIM_CHAOS="<key>=<value>[,<key>=<value>...][:<seed>]"
//
// where probability keys (doubles in [0,1]) are `delay`, `drop`,
// `truncate`, `corrupt`, `stall`, `crash`, `cache_slow`, and duration
// keys (positive integers, milliseconds) are `delay_ms`, `stall_ms`,
// `cache_slow_ms`. The optional `:<seed>` suffix seeds the RNG
// (default 1). Example:
//
//   STEERSIM_CHAOS="corrupt=0.15,drop=0.1,stall=0.05,stall_ms=40:4242"
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.hpp"

namespace steersim::svc {

enum class ChaosSite : std::uint8_t {
  kFrameDelay = 0,  ///< sleep delay_ms before writing a reply frame
  kFrameDrop,       ///< close the connection instead of replying
  kFrameTruncate,   ///< write half the reply frame, then close
  kFrameCorrupt,    ///< flip one bit of the reply frame
  kWorkerStall,     ///< sleep stall_ms at job start (ignores cancellation)
  kWorkerCrash,     ///< throw ChaosCrash out of the job wrapper
  kCacheSlow,       ///< sleep cache_slow_ms before the cache lookup
};
inline constexpr std::size_t kChaosSiteCount = 7;

std::string_view chaos_site_name(ChaosSite site);

struct ChaosSpec {
  double probability[kChaosSiteCount] = {};
  std::uint64_t delay_ms = 2;
  std::uint64_t stall_ms = 50;
  std::uint64_t cache_slow_ms = 1;
  std::uint64_t seed = 1;

  double site(ChaosSite s) const {
    return probability[static_cast<std::size_t>(s)];
  }
  double& site(ChaosSite s) {
    return probability[static_cast<std::size_t>(s)];
  }
  /// True if any site has a nonzero probability.
  bool any() const;

  /// Parses the STEERSIM_CHAOS grammar documented above. On failure
  /// returns false with a human-readable `error` and leaves `out`
  /// untouched.
  static bool parse(std::string_view text, ChaosSpec& out,
                    std::string& error);
};

/// Deliberately NOT derived from std::exception: a chaos crash models a
/// *broken job wrapper* — the failure the service's own try/catch around
/// the simulation cannot absorb — so it must sail past
/// `catch (const std::exception&)` and land in the WorkerPool's
/// catch-all crash isolation.
struct ChaosCrash {};

class ChaosInjector {
 public:
  explicit ChaosInjector(const ChaosSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Seeded Bernoulli draw for one site; thread-safe. Sites with zero
  /// probability consume no randomness (so single-site specs replay the
  /// same sequence regardless of which other sites are compiled in).
  bool roll(ChaosSite site);

  /// Injections fired per site so far.
  std::uint64_t count(ChaosSite site) const {
    return counts_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }

  const ChaosSpec& spec() const { return spec_; }

  /// Sleeps cache_slow_ms on a kCacheSlow roll.
  void maybe_cache_slow();
  /// Sleeps stall_ms on a kWorkerStall roll — a worker that ignores
  /// cooperative cancellation for that long, which is exactly what the
  /// watchdog's poison path exists for.
  void maybe_worker_stall();
  /// Throws ChaosCrash on a kWorkerCrash roll.
  void maybe_worker_crash();
  /// On a kFrameCorrupt roll flips one random bit of `frame`; returns
  /// true when the frame was mutated.
  bool corrupt(std::string& frame);

  /// "site=count" summary of every fired site, for logs and benches.
  std::string summary() const;

  /// The process-wide injector: parsed once from STEERSIM_CHAOS (invalid
  /// specs are ignored with a stderr warning), empty when unset — the
  /// unset fast path is one atomic pointer load, no refcount traffic.
  /// The returned snapshot keeps the injector alive across the caller's
  /// use even if install() swaps it out concurrently.
  static std::shared_ptr<ChaosInjector> global();
  /// Replaces the process-wide injector (tests and benches; pass nullptr
  /// to disable). Safe while traffic is in flight: threads holding a
  /// global() snapshot keep the old injector alive until they drop it —
  /// but they may still *fire* it during the swap, so callers who need
  /// the old sequence to stop (not just stay valid) still quiesce first.
  static void install(std::unique_ptr<ChaosInjector> injector);

 private:
  ChaosSpec spec_;
  mutable std::mutex mutex_;
  Xoshiro256 rng_;
  std::atomic<std::uint64_t> counts_[kChaosSiteCount] = {};
};

}  // namespace steersim::svc
