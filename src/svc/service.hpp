// Transport-independent simulation service core (docs/SERVICE.md).
//
// SimService::handle() is the whole request/reply contract of steersimd:
// the Unix-socket server (svc/server.hpp), the in-process throughput bench
// and the protocol tests all drive the same object. A submit is validated
// and assembled on the calling (connection) thread, digested (FNV-1a over
// program bytes + effective config), served from the LRU result cache when
// possible, and otherwise admitted into the bounded job queue — a full
// queue is an immediate retriable `queue_full` error, never a block or a
// drop — where the persistent worker pool simulates it under its cycle
// budget, checking cooperative cancellation at sampler-window granularity.
//
// Service health is exported through the same visit_metrics registry every
// machine subsystem uses (ServiceStats below; "svc." prefix), so the
// sampler/trace/bench layers and `stats` requests observe it for free.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "sim/runner.hpp"
#include "svc/cache.hpp"
#include "svc/protocol.hpp"
#include "svc/queue.hpp"
#include "svc/worker_pool.hpp"

namespace steersim::svc {

struct ServiceConfig {
  /// Worker-pool size; 0 = default_worker_count() (honors the
  /// STEERSIM_WORKERS env override, shared with parallel_map).
  unsigned workers = 0;
  /// Job-queue high-water mark; submits past it get `queue_full`.
  std::size_t queue_capacity = 64;
  /// Result-cache entries; 0 disables caching.
  std::size_t cache_entries = 256;
  /// Cycle budget for submits that do not name one.
  std::uint64_t default_max_cycles = 200'000;
  /// Hard ceiling a client-supplied max_cycles is clamped to.
  std::uint64_t max_cycles_ceiling = 50'000'000;
  /// Cancellation-check window (cycles) for jobs without sampling
  /// configured; jobs with MachineConfig::sample enabled are checked at
  /// their sampler period instead.
  std::uint64_t cancel_check_cycles = 4096;
  /// Watchdog sampling period while wall-deadline (`wall_ms`) jobs are in
  /// flight; with none in flight the watchdog sleeps on a condition
  /// variable, so plain jobs pay nothing.
  std::uint64_t watchdog_poll_ms = 20;
  /// After cooperatively cancelling an overdue job, how long the watchdog
  /// waits for the worker to notice before declaring it wedged: the reply
  /// is delivered from the watchdog and the worker is poisoned, detached,
  /// and replaced (WorkerPool::replace).
  std::uint64_t watchdog_grace_ms = 250;
};

/// One coherent snapshot of the service counters, shaped like every other
/// stats struct in the tree: visit_metrics() enumerates (name, value)
/// pairs that collect under the "svc." prefix.
struct ServiceStats {
  std::uint64_t submitted = 0;           ///< submit requests received
  std::uint64_t admitted = 0;            ///< entered the job queue
  std::uint64_t rejected_queue_full = 0;  ///< backpressure rejections
  std::uint64_t bad_requests = 0;        ///< validation failures
  std::uint64_t completed = 0;           ///< simulations that halted
  std::uint64_t deadline_exceeded = 0;   ///< budget elapsed before HALT
  std::uint64_t sim_faults = 0;          ///< stalled/faulted simulations
  std::uint64_t cancelled = 0;           ///< stopped by cancel_all()
  std::uint64_t wall_deadline_exceeded = 0;  ///< wall_ms elapsed in flight
  std::uint64_t workers_poisoned = 0;    ///< wedged workers replaced
  std::uint64_t watchdog_scans = 0;      ///< watchdog sampling passes
  std::uint64_t worker_crashes = 0;      ///< exceptions escaping run_job
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_size = 0;   ///< resident entries (gauge)
  std::uint64_t queue_depth = 0;  ///< jobs waiting (gauge)
  std::uint64_t workers = 0;      ///< configured pool size (gauge)
  std::uint64_t workers_live = 0;      ///< threads currently joinable (gauge)
  std::uint64_t workers_replaced = 0;  ///< poisoned workers respawned
  /// Completed-job wall latency, milliseconds (cache hits excluded).
  std::uint64_t latency_count = 0;
  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  template <typename V>
  void visit_metrics(V&& visit) const {
    visit("submitted", static_cast<double>(submitted));
    visit("admitted", static_cast<double>(admitted));
    visit("rejected_queue_full", static_cast<double>(rejected_queue_full));
    visit("bad_requests", static_cast<double>(bad_requests));
    visit("completed", static_cast<double>(completed));
    visit("deadline_exceeded", static_cast<double>(deadline_exceeded));
    visit("sim_faults", static_cast<double>(sim_faults));
    visit("cancelled", static_cast<double>(cancelled));
    visit("watchdog.wall_deadline_exceeded",
          static_cast<double>(wall_deadline_exceeded));
    visit("watchdog.workers_poisoned",
          static_cast<double>(workers_poisoned));
    visit("watchdog.scans", static_cast<double>(watchdog_scans));
    visit("worker_crashes", static_cast<double>(worker_crashes));
    visit("cache_hits", static_cast<double>(cache_hits));
    visit("cache_misses", static_cast<double>(cache_misses));
    visit("cache_evictions", static_cast<double>(cache_evictions));
    visit("cache_size", static_cast<double>(cache_size));
    visit("queue_depth", static_cast<double>(queue_depth));
    visit("workers", static_cast<double>(workers));
    visit("workers_live", static_cast<double>(workers_live));
    visit("workers_replaced", static_cast<double>(workers_replaced));
    visit("latency_ms_count", static_cast<double>(latency_count));
    visit("latency_ms_mean", latency_mean_ms, true);
    visit("latency_ms_p50", latency_p50_ms, true);
    visit("latency_ms_p90", latency_p90_ms, true);
    visit("latency_ms_p99", latency_p99_ms, true);
    visit("latency_ms_max", latency_max_ms, true);
  }
};

/// Canonical (sorted-key, round-trip-number) JSON rendering of a metric
/// registry: the byte-stable form embedded in result and stats replies.
std::string canonical_metrics_json(const MetricRegistry& registry);

class SimService {
 public:
  explicit SimService(ServiceConfig config = {});
  /// Graceful: stops admission, drains every queued job, joins workers.
  ~SimService();

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Serves one request to completion (submit blocks the calling thread
  /// until its job finishes or is rejected). Thread-safe: one call per
  /// connection thread.
  Reply handle(const Request& request);

  /// Stops admission (submits now answer `shutting_down`); queued jobs
  /// still drain. handle() of a shutdown request calls this.
  void begin_shutdown();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  /// Cooperative hard-stop: in-flight simulations return a `cancelled`
  /// error at their next cancellation-check window.
  void cancel_all() { stop_now_.store(true, std::memory_order_relaxed); }
  /// Blocks until the queue is drained and every worker has exited.
  void drain();

  ServiceStats stats() const;
  /// stats() under the "svc." prefix, ready for reports and comparisons.
  MetricRegistry metrics() const;
  const ServiceConfig& config() const { return config_; }

  /// The cache key recipe, exposed for tests: FNV-1a/64 over the program
  /// source bytes and the canonical effective-config rendering (machine
  /// knobs, policy spec, cycle budget).
  static std::uint64_t job_digest(std::string_view program_source,
                                  const std::string& config_key);

 private:
  struct Job;
  /// Shared between the queue/worker and the watchdog's watch map: a
  /// wall-deadline job must stay alive for whichever of the two answers
  /// it last.
  using JobPtr = std::shared_ptr<Job>;

  Reply handle_submit(const Request& request);
  void run_job(Job& job);
  /// Multi-core (`multi` job kind) body of run_job: drives a lockstep
  /// MultiCoreSim under the same budget/cancellation windows and shapes
  /// `reply` (result or typed error).
  void run_multi(Job& job, Reply& reply);
  /// Deliver-once latch: sets the job's promise if nobody has yet.
  /// Returns true when this call won the race (worker vs watchdog vs
  /// crash handler).
  bool deliver(Job& job, Reply reply);
  void on_worker_crash(Job& job);
  void register_watch(const JobPtr& job);
  void unregister_watch(const Job& job);
  void watchdog_loop(std::stop_token token);
  void watchdog_scan(std::chrono::steady_clock::time_point now);
  void record_latency(double seconds);

  ServiceConfig config_;
  BoundedQueue<JobPtr> queue_;
  ResultCache cache_;
  WorkerPool<JobPtr> pool_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_now_{false};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> sim_faults_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> wall_deadline_exceeded_{0};
  std::atomic<std::uint64_t> workers_poisoned_{0};
  std::atomic<std::uint64_t> watchdog_scans_{0};

  mutable std::mutex latency_mutex_;
  RunningStat latency_ms_;
  /// 0.5 ms buckets to 1 s: quantile() reports bucket lower edges, so the
  /// resolution must sit below typical per-job latency (tiny kernels run
  /// in well under a millisecond) or p50 would quantize to zero.
  Histogram latency_hist_ms_{0.0, 1000.0, 2000};

  /// In-flight wall-deadline jobs keyed by admission serial; only jobs
  /// with wall_ms > 0 ever enter, so the watchdog idles (cv wait, zero
  /// scans) when the feature is unused.
  mutable std::mutex watchdog_mutex_;
  std::condition_variable_any watchdog_cv_;
  std::map<std::uint64_t, JobPtr> watch_;
  std::atomic<std::uint64_t> watch_serial_{0};
  /// Declared last: destroyed (stop-requested and joined) first, while
  /// the pool, queue and watch map it samples are still alive.
  std::jthread watchdog_;
};

}  // namespace steersim::svc
