// Content-addressed LRU result cache (docs/SERVICE.md).
//
// Keyed by the FNV-1a/64 job digest over (program bytes, effective
// config); see SimService::job_digest for the exact key recipe. Values
// are complete result Replies — the stored metric registry bytes are
// returned verbatim, so a cache hit is byte-identical to the cold run
// that populated it except for the "cache":"hit" flag the service sets.
// Thread-safe: workers insert while connection threads look up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "svc/protocol.hpp"

namespace steersim::svc {

class ResultCache {
 public:
  /// `capacity` = max resident entries; 0 disables caching (every lookup
  /// misses, inserts are dropped).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the stored reply and refreshes its recency, or nullopt.
  std::optional<Reply> lookup(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);  // most recent
    return it->second->reply;
  }

  /// Inserts (or refreshes) `key`; evicts the least-recently-used entry
  /// past capacity.
  void insert(std::uint64_t key, Reply reply) {
    if (capacity_ == 0) {
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->reply = std::move(reply);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.push_front(Entry{key, std::move(reply)});
    index_[key] = entries_.begin();
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().key);
      entries_.pop_back();
      ++evictions_;
    }
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }

 private:
  struct Entry {
    std::uint64_t key;
    Reply reply;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> entries_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace steersim::svc
