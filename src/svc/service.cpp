#include "svc/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <map>
#include <span>
#include <stdexcept>
#include <utility>

#include "common/strings.hpp"
#include "frontend/elf_loader.hpp"
#include "isa/assembler.hpp"
#include "isa/rv32.hpp"
#include "multicore/multicore.hpp"
#include "svc/chaos.hpp"
#include "obs/profile.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "workload/kernels.hpp"
#include "workload/rv32_fixtures.hpp"

namespace steersim::svc {

namespace {

/// Range- and integrality-checked knob conversion: MachineConfig widths
/// are small unsigneds, so 1e9 is already far past any meaningful value.
bool knob_to_unsigned(double value, unsigned& out) {
  if (value < 0.0 || value > 1e9 || value != std::floor(value)) {
    return false;
  }
  out = static_cast<unsigned>(value);
  return true;
}

bool knob_to_bool(double value, bool& out) {
  if (value != 0.0 && value != 1.0) {
    return false;
  }
  out = value == 1.0;
  return true;
}

/// The MachineConfig surface the protocol exposes. Anything else (fault
/// injection, tracing, recovery...) stays a server-side decision.
bool apply_knob(MachineConfig& machine, const std::string& name,
                double value, std::string& error) {
  bool ok = false;
  if (name == "fetch_width") {
    ok = knob_to_unsigned(value, machine.fetch_width);
  } else if (name == "queue_entries") {
    ok = knob_to_unsigned(value, machine.queue_entries);
  } else if (name == "ruu_entries") {
    ok = knob_to_unsigned(value, machine.ruu_entries);
  } else if (name == "retire_width") {
    ok = knob_to_unsigned(value, machine.retire_width);
  } else if (name == "issue_width") {
    ok = knob_to_unsigned(value, machine.issue_width);
  } else if (name == "trace_cache_lines") {
    ok = knob_to_unsigned(value, machine.trace_cache_lines);
  } else if (name == "trace_length") {
    ok = knob_to_unsigned(value, machine.trace_length);
  } else if (name == "pipelined_units") {
    ok = knob_to_bool(value, machine.pipelined_units);
  } else if (name == "use_trace_cache") {
    ok = knob_to_bool(value, machine.use_trace_cache);
  } else if (name == "use_dcache") {
    ok = knob_to_bool(value, machine.use_dcache);
  } else {
    error = "unknown config knob '" + name + "'";
    return false;
  }
  if (!ok) {
    error = "config knob '" + name + "' has an out-of-range value";
  }
  return ok;
}

/// Canonical rendering of everything that influences a job's simulated
/// outcome besides the program bytes: the digestable half of the cache
/// key. Field order is fixed; extending the knob surface extends this
/// list (and thereby invalidates old cache entries, which is correct).
std::string effective_config_key(const MachineConfig& machine,
                                 const PolicySpec& spec,
                                 std::uint64_t budget) {
  std::string key;
  const auto field = [&key](std::string_view name, std::uint64_t value) {
    key += name;
    key += '=';
    key += std::to_string(value);
    key += ';';
  };
  field("fetch_width", machine.fetch_width);
  field("queue_entries", machine.queue_entries);
  field("ruu_entries", machine.ruu_entries);
  field("retire_width", machine.retire_width);
  field("issue_width", machine.issue_width);
  field("pipelined_units", machine.pipelined_units ? 1 : 0);
  field("use_trace_cache", machine.use_trace_cache ? 1 : 0);
  field("trace_cache_lines", machine.trace_cache_lines);
  field("trace_length", machine.trace_length);
  field("use_dcache", machine.use_dcache ? 1 : 0);
  field("policy_kind", static_cast<std::uint64_t>(spec.kind));
  field("preset_index", spec.preset_index);
  field("cem", static_cast<std::uint64_t>(spec.cem));
  field("tie_break", static_cast<std::uint64_t>(spec.tie_break));
  field("interval", spec.interval);
  field("confirm", spec.confirm);
  field("lookahead", spec.lookahead ? 1 : 0);
  field("seed", spec.seed);
  field("max_cycles", budget);
  return key;
}

const Kernel* find_kernel(const std::string& name) {
  for (const Kernel& kernel : kernel_library()) {
    if (kernel.name == name) {
      return &kernel;
    }
  }
  return nullptr;
}

}  // namespace

std::string canonical_metrics_json(const MetricRegistry& registry) {
  std::map<std::string, double> sorted;
  for (const Metric& metric : registry.metrics()) {
    sorted.emplace(metric.name, metric.value);
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : sorted) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    append_json_escaped(out, name);
    out += "\":";
    out += json_number(value);
  }
  out += '}';
  return out;
}

struct SimService::Job {
  Request request;
  Program program;
  MachineConfig machine;
  PolicySpec spec;
  /// Multi-core workload (one CoreSpec per core); empty = single-core job
  /// using `program`/`spec` above.
  std::vector<CoreSpec> cores;
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  std::uint64_t budget = 0;
  std::uint64_t key = 0;
  std::string digest_hex;
  std::promise<Reply> promise;

  // --- wall-deadline / watchdog state ----------------------------------
  /// Copied from the request; 0 means the watchdog never sees this job.
  std::uint64_t wall_ms = 0;
  /// Watch-map key, assigned at admission.
  std::uint64_t serial = 0;
  std::chrono::steady_clock::time_point admitted_at;
  /// When the watchdog set `cancel` (grace period runs from here); only
  /// the watchdog thread touches it.
  std::chrono::steady_clock::time_point cancel_at;
  /// Cooperative wall-deadline cancellation, polled by the worker at its
  /// cycle-window boundary.
  std::atomic<bool> cancel{false};
  /// Deliver-once latch for the promise (worker vs watchdog vs crash
  /// handler).
  std::atomic<bool> replied{false};
  /// Slot of the worker running this job, for WorkerPool::replace when
  /// the worker ignores cancellation past the grace period.
  std::atomic<unsigned> worker_slot{WorkerPool<JobPtr>::kNoSlot};
};

std::uint64_t SimService::job_digest(std::string_view program_source,
                                     const std::string& config_key) {
  return Fnv1a().mix(program_source).mix(config_key).value();
}

SimService::SimService(ServiceConfig config)
    : config_(config),
      queue_(config.queue_capacity),
      cache_(config.cache_entries),
      pool_(queue_, [this](JobPtr& job) { run_job(*job); }) {
  if (config_.workers == 0) {
    config_.workers = default_worker_count();
  }
  if (config_.default_max_cycles == 0) {
    config_.default_max_cycles = 200'000;
  }
  if (config_.cancel_check_cycles == 0) {
    config_.cancel_check_cycles = 4096;
  }
  if (config_.watchdog_poll_ms == 0) {
    config_.watchdog_poll_ms = 20;
  }
  // A crash (exception escaping run_job, e.g. a chaos-injected one) must
  // still answer the blocked submitter: retriable, since the job itself
  // is not known to be at fault.
  pool_.set_crash_handler([this](JobPtr& job, std::exception_ptr) {
    on_worker_crash(*job);
  });
  pool_.start(config_.workers);
  watchdog_ = std::jthread([this](std::stop_token token) {
    watchdog_loop(std::move(token));
  });
}

SimService::~SimService() {
  begin_shutdown();
  drain();
}

void SimService::begin_shutdown() {
  draining_.store(true, std::memory_order_relaxed);
  queue_.close();
}

void SimService::drain() { pool_.stop(); }

Reply SimService::handle(const Request& request) {
  switch (request.type) {
    case RequestType::kPing: {
      Reply reply;
      reply.type = ReplyType::kPong;
      reply.id = request.id;
      return reply;
    }
    case RequestType::kStats: {
      Reply reply;
      reply.type = ReplyType::kStats;
      reply.id = request.id;
      reply.stats_json = canonical_metrics_json(metrics());
      return reply;
    }
    case RequestType::kShutdown: {
      begin_shutdown();
      Reply reply;
      reply.type = ReplyType::kGoodbye;
      reply.id = request.id;
      return reply;
    }
    case RequestType::kSubmit:
      return handle_submit(request);
  }
  return Reply::error(request.id, error_code::kBadRequest,
                      "unhandled request type");
}

Reply SimService::handle_submit(const Request& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (draining()) {
    return Reply::error(request.id, error_code::kShuttingDown,
                        "service is draining");
  }

  const bool has_kernel = !request.kernel.empty();
  const bool has_asm = !request.asm_source.empty();
  const bool has_elf = !request.elf.empty();
  const bool is_multi = !request.multi.empty();
  if (is_multi) {
    if (has_kernel || has_asm || has_elf) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return Reply::error(request.id, error_code::kBadRequest,
                          "'multi' is exclusive with 'kernel', 'asm' and "
                          "'elf'");
    }
    if (request.multi.size() > 8) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return Reply::error(request.id, error_code::kBadRequest,
                          "'multi' supports 1..8 cores");
    }
  } else if (static_cast<int>(has_kernel) + static_cast<int>(has_asm) +
                 static_cast<int>(has_elf) !=
             1) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Reply::error(request.id, error_code::kBadRequest,
                        "exactly one of 'kernel', 'asm' and 'elf' is "
                        "required");
  }
  auto job = std::make_shared<Job>();
  job->request = request;
  job->wall_ms = request.wall_ms;
  if (is_multi && !parse_arbiter(request.arbiter, job->arbiter)) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Reply::error(request.id, error_code::kBadRequest,
                        "unknown arbiter '" + request.arbiter + "'");
  }
  // `source` is what the job digest covers alongside the effective
  // config: asm text for kernel/asm jobs, the raw ELF image bytes for elf
  // jobs (identical binaries share one cache entry whatever name they
  // were submitted under). Multi-core jobs digest every core's source and
  // policy label plus the arbiter, accumulated into `multi_digest`.
  std::string elf_image_bytes;
  std::string_view source;
  std::string program_name;
  Fnv1a multi_digest;
  try {
    if (is_multi) {
      multi_digest.mix("multi");
      for (const MultiEntry& entry : request.multi) {
        const bool entry_kernel = !entry.kernel.empty();
        const bool entry_elf = !entry.elf.empty();
        if (entry_kernel == entry_elf) {
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
          return Reply::error(request.id, error_code::kBadRequest,
                              "each 'multi' entry needs exactly one of "
                              "'kernel' and 'elf'");
        }
        CoreSpec core;
        if (!parse_policy(entry.policy, core.policy)) {
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
          return Reply::error(request.id, error_code::kBadRequest,
                              "unknown policy '" + entry.policy + "'");
        }
        if (entry_kernel) {
          const Kernel* kernel = find_kernel(entry.kernel);
          if (kernel == nullptr) {
            bad_requests_.fetch_add(1, std::memory_order_relaxed);
            return Reply::error(request.id, error_code::kBadRequest,
                                "unknown kernel '" + entry.kernel + "'");
          }
          multi_digest.mix(kernel->source);
          core.program = assemble(kernel->source, kernel->name);
        } else {
          const Rv32Fixture* fixture = rv32_fixture_find(entry.elf);
          if (fixture == nullptr) {
            bad_requests_.fetch_add(1, std::memory_order_relaxed);
            return Reply::error(request.id, error_code::kBadRequest,
                                "unknown elf fixture '" + entry.elf + "'");
          }
          const std::vector<std::uint8_t> image = rv32_fixture_elf(*fixture);
          multi_digest.mix(std::string_view(
              reinterpret_cast<const char*>(image.data()), image.size()));
          core.program = elf::load_elf_program(
              std::span<const std::uint8_t>(image.data(), image.size()),
              fixture->name);
        }
        multi_digest.mix(entry.policy);
        job->cores.push_back(std::move(core));
      }
      multi_digest.mix(arbiter_name(job->arbiter));
    } else {
      if (has_kernel) {
        const Kernel* kernel = find_kernel(request.kernel);
        if (kernel == nullptr) {
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
          return Reply::error(request.id, error_code::kBadRequest,
                              "unknown kernel '" + request.kernel + "'");
        }
        source = kernel->source;
        program_name = kernel->name;
      } else if (has_elf) {
        const Rv32Fixture* fixture = rv32_fixture_find(request.elf);
        if (fixture == nullptr) {
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
          return Reply::error(request.id, error_code::kBadRequest,
                              "unknown elf fixture '" + request.elf + "'");
        }
        const std::vector<std::uint8_t> image = rv32_fixture_elf(*fixture);
        elf_image_bytes.assign(image.begin(), image.end());
        source = elf_image_bytes;
        program_name = fixture->name;
      } else {
        source = request.asm_source;
        program_name = "asm";
      }
      if (has_elf) {
        const auto* bytes =
            reinterpret_cast<const std::uint8_t*>(elf_image_bytes.data());
        job->program = elf::load_elf_program(
            std::span<const std::uint8_t>(bytes, elf_image_bytes.size()),
            program_name);
      } else {
        job->program = assemble(source, program_name);
      }
    }
  } catch (const AssemblyError& e) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Reply::error(request.id, error_code::kBadRequest,
                        "assembly failed: " + std::string(e.what()));
  } catch (const elf::ElfError& e) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Reply::error(request.id, error_code::kBadRequest,
                        "elf load failed: " + std::string(e.what()));
  } catch (const rv32::Rv32Error& e) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Reply::error(request.id, error_code::kBadRequest,
                        "rv32 translation failed: " + std::string(e.what()));
  }

  if (!parse_policy(request.policy, job->spec)) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Reply::error(request.id, error_code::kBadRequest,
                        "unknown policy '" + request.policy + "'");
  }
  if (request.interval < 1 || request.interval > 1'000'000 ||
      request.confirm < 1 || request.confirm > 1'000'000) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return Reply::error(request.id, error_code::kBadRequest,
                        "'interval' and 'confirm' must be in [1, 1e6]");
  }
  job->spec.interval = static_cast<unsigned>(request.interval);
  job->spec.confirm = static_cast<unsigned>(request.confirm);
  job->spec.lookahead = request.lookahead;
  job->spec.seed = request.seed;
  // Steering cadence / seed are shared across cores; only the policy kind
  // is per-core.
  for (CoreSpec& core : job->cores) {
    core.policy.interval = job->spec.interval;
    core.policy.confirm = job->spec.confirm;
    core.policy.lookahead = job->spec.lookahead;
    core.policy.seed = job->spec.seed;
  }

  for (const auto& [name, value] : request.config) {
    std::string error;
    if (!apply_knob(job->machine, name, value, error)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return Reply::error(request.id, error_code::kBadRequest, error);
    }
  }

  job->budget = request.max_cycles == 0
                    ? config_.default_max_cycles
                    : std::min(request.max_cycles,
                               config_.max_cycles_ceiling);
  const std::string config_key =
      effective_config_key(job->machine, job->spec, job->budget);
  job->key = is_multi ? multi_digest.mix(config_key).value()
                      : job_digest(source, config_key);
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(job->key));
  job->digest_hex = hex;

  if (auto chaos = ChaosInjector::global()) {
    chaos->maybe_cache_slow();
  }
  if (auto hit = cache_.lookup(job->key)) {
    hit->id = request.id;
    hit->cache = "hit";
    return *hit;
  }

  std::future<Reply> result = job->promise.get_future();
  job->admitted_at = std::chrono::steady_clock::now();
  const JobPtr watched = job->wall_ms > 0 ? job : nullptr;
  if (!queue_.try_push(std::move(job))) {
    if (draining()) {
      return Reply::error(request.id, error_code::kShuttingDown,
                          "service is draining");
    }
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    return Reply::error(
        request.id, error_code::kQueueFull,
        "job queue at capacity (" + std::to_string(queue_.capacity()) +
            "); retry with backoff",
        /*retriable=*/true);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (watched) {
    register_watch(watched);
  }
  return result.get();
}

void SimService::run_job(Job& job) {
  job.worker_slot.store(pool_.current_slot(), std::memory_order_release);
  if (job.replied.load(std::memory_order_acquire)) {
    // The watchdog already answered this job (its deadline blew while it
    // sat in the queue and the grace period elapsed); only bookkeeping
    // remains.
    job.worker_slot.store(WorkerPool<JobPtr>::kNoSlot,
                          std::memory_order_release);
    unregister_watch(job);
    return;
  }
  if (auto chaos = ChaosInjector::global()) {
    // Deliberately outside the try below: a chaos crash models an
    // exception the job wrapper itself fails to absorb, so it must reach
    // the WorkerPool's crash isolation (and the crash handler's
    // `worker_crashed` reply), not the catch clauses here.
    chaos->maybe_worker_stall();
    chaos->maybe_worker_crash();
  }
  WallTimer timer;
  Reply reply;
  reply.id = job.request.id;
  if (stop_now_.load(std::memory_order_relaxed)) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    deliver(job, Reply::error(job.request.id, error_code::kCancelled,
                              "cancelled before start"));
    job.worker_slot.store(WorkerPool<JobPtr>::kNoSlot,
                          std::memory_order_release);
    unregister_watch(job);
    return;
  }
  if (job.cancel.load(std::memory_order_acquire)) {
    deliver(job,
            Reply::error(job.request.id, error_code::kWallDeadline,
                         "wall deadline " + std::to_string(job.wall_ms) +
                             " ms exceeded before the job started; resubmit",
                         /*retriable=*/true));
    job.worker_slot.store(WorkerPool<JobPtr>::kNoSlot,
                          std::memory_order_release);
    unregister_watch(job);
    return;
  }
  try {
    if (!job.cores.empty()) {
      run_multi(job, reply);
      if (deliver(job, std::move(reply))) {
        record_latency(timer.seconds());
      }
      job.worker_slot.store(WorkerPool<JobPtr>::kNoSlot,
                            std::memory_order_release);
      unregister_watch(job);
      return;
    }
    auto cpu = make_processor(job.program, job.machine, job.spec);
    // Deadline via the cycle budget, cancellation at sampler-window
    // granularity: run() is resumable (max_cycles is an absolute target),
    // so the worker advances one window at a time and polls the stop flag
    // between windows. Jobs with sampling configured use their own period
    // so cancellation never lands mid-window.
    const std::uint64_t window = job.machine.sample.enabled()
                                     ? job.machine.sample.period
                                     : config_.cancel_check_cycles;
    RunOutcome outcome = RunOutcome::kMaxCycles;
    bool cancelled = false;
    bool wall_expired = false;
    while (true) {
      const std::uint64_t target =
          std::min(job.budget, cpu->stats().cycles + window);
      outcome = cpu->run(target);
      if (outcome != RunOutcome::kMaxCycles ||
          cpu->stats().cycles >= job.budget) {
        break;
      }
      if (stop_now_.load(std::memory_order_relaxed)) {
        cancelled = true;
        break;
      }
      if (job.cancel.load(std::memory_order_relaxed)) {
        wall_expired = true;
        break;
      }
    }
    if (cancelled) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      reply = Reply::error(job.request.id, error_code::kCancelled,
                           "cancelled at cycle " +
                               std::to_string(cpu->stats().cycles));
    } else if (wall_expired) {
      // Counted by the watchdog when it set job.cancel.
      reply = Reply::error(job.request.id, error_code::kWallDeadline,
                           "wall deadline " + std::to_string(job.wall_ms) +
                               " ms exceeded at cycle " +
                               std::to_string(cpu->stats().cycles) +
                               "; resubmit",
                           /*retriable=*/true);
    } else if (outcome == RunOutcome::kMaxCycles) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      reply = Reply::error(job.request.id, error_code::kDeadline,
                           "cycle budget " + std::to_string(job.budget) +
                               " exhausted before HALT");
    } else if (outcome == RunOutcome::kStalled ||
               outcome == RunOutcome::kFault) {
      sim_faults_.fetch_add(1, std::memory_order_relaxed);
      reply = Reply::error(job.request.id, error_code::kSimFault,
                           cpu->fault_message());
    } else {
      const SimResult result = collect_result(*cpu, job.spec, outcome);
      reply.type = ReplyType::kResult;
      reply.cache = "miss";
      reply.digest = job.digest_hex;
      reply.policy = result.policy;
      reply.outcome = std::string(outcome_name(outcome));
      reply.cycles = result.stats.cycles;
      reply.retired = result.stats.retired;
      reply.metrics_json = canonical_metrics_json(collect_metrics(result));
      cache_.insert(job.key, reply);
      completed_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const std::invalid_argument& e) {
    // Processor::validated rejected the override combination.
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    reply = Reply::error(job.request.id, error_code::kBadRequest, e.what());
  } catch (const std::exception& e) {
    sim_faults_.fetch_add(1, std::memory_order_relaxed);
    reply = Reply::error(job.request.id, error_code::kSimFault, e.what());
  }
  if (deliver(job, std::move(reply))) {
    record_latency(timer.seconds());
  }
  job.worker_slot.store(WorkerPool<JobPtr>::kNoSlot,
                        std::memory_order_release);
  unregister_watch(job);
}

void SimService::run_multi(Job& job, Reply& reply) {
  MultiCoreParams params;
  params.arbiter = job.arbiter;
  params.machine = job.machine;
  MultiCoreSim sim(job.cores, params);
  const std::uint64_t window = job.machine.sample.enabled()
                                   ? job.machine.sample.period
                                   : config_.cancel_check_cycles;
  RunOutcome outcome = RunOutcome::kMaxCycles;
  bool cancelled = false;
  bool wall_expired = false;
  while (true) {
    const std::uint64_t target = std::min(job.budget, sim.cycles() + window);
    outcome = sim.run(target);
    if (outcome != RunOutcome::kMaxCycles || sim.cycles() >= job.budget) {
      break;
    }
    if (stop_now_.load(std::memory_order_relaxed)) {
      cancelled = true;
      break;
    }
    if (job.cancel.load(std::memory_order_relaxed)) {
      wall_expired = true;
      break;
    }
  }
  if (cancelled) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    reply = Reply::error(job.request.id, error_code::kCancelled,
                         "cancelled at cycle " +
                             std::to_string(sim.cycles()));
  } else if (wall_expired) {
    reply = Reply::error(job.request.id, error_code::kWallDeadline,
                         "wall deadline " + std::to_string(job.wall_ms) +
                             " ms exceeded at cycle " +
                             std::to_string(sim.cycles()) + "; resubmit",
                         /*retriable=*/true);
  } else if (outcome == RunOutcome::kMaxCycles) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    reply = Reply::error(job.request.id, error_code::kDeadline,
                         "cycle budget " + std::to_string(job.budget) +
                             " exhausted before every core halted");
  } else if (outcome == RunOutcome::kStalled ||
             outcome == RunOutcome::kFault) {
    sim_faults_.fetch_add(1, std::memory_order_relaxed);
    std::string message = "multi-core simulation did not halt";
    for (unsigned k = 0; k < sim.num_cores(); ++k) {
      const RunOutcome core_outcome = sim.core_outcome(k);
      if (core_outcome == RunOutcome::kFault ||
          core_outcome == RunOutcome::kStalled) {
        const std::string& fault = sim.core(k).fault_message();
        message = "core" + std::to_string(k) + ": " +
                  (fault.empty() ? std::string(outcome_name(core_outcome))
                                 : fault);
        break;
      }
    }
    reply = Reply::error(job.request.id, error_code::kSimFault, message);
  } else {
    const MultiCoreResult result = sim.collect();
    reply.type = ReplyType::kResult;
    reply.cache = "miss";
    reply.digest = job.digest_hex;
    reply.policy = "multi:" + std::string(arbiter_name(job.arbiter));
    reply.outcome = std::string(outcome_name(outcome));
    reply.cycles = result.cycles;
    reply.retired = result.fabric.total_retired;
    reply.metrics_json =
        canonical_metrics_json(collect_multicore_metrics(result));
    cache_.insert(job.key, reply);
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SimService::deliver(Job& job, Reply reply) {
  if (job.replied.exchange(true, std::memory_order_acq_rel)) {
    return false;
  }
  job.promise.set_value(std::move(reply));
  return true;
}

void SimService::on_worker_crash(Job& job) {
  deliver(job,
          Reply::error(job.request.id, error_code::kWorkerCrashed,
                       "worker crashed while running this job; resubmit",
                       /*retriable=*/true));
  unregister_watch(job);
}

void SimService::register_watch(const JobPtr& job) {
  job->serial = watch_serial_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watch_.emplace(job->serial, job);
  }
  watchdog_cv_.notify_all();
}

void SimService::unregister_watch(const Job& job) {
  if (job.wall_ms == 0) {
    return;  // never registered: plain jobs skip the watchdog lock
  }
  std::lock_guard<std::mutex> lock(watchdog_mutex_);
  watch_.erase(job.serial);
}

void SimService::watchdog_loop(std::stop_token token) {
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!token.stop_requested()) {
    if (watch_.empty()) {
      // Zero-overhead idle: no polling until a wall-deadline job shows
      // up (or shutdown stops us).
      watchdog_cv_.wait(lock, token, [this] { return !watch_.empty(); });
      continue;
    }
    watchdog_cv_.wait_for(lock, token,
                          std::chrono::milliseconds(config_.watchdog_poll_ms),
                          [] { return false; });
    if (token.stop_requested()) {
      return;
    }
    watchdog_scans_.fetch_add(1, std::memory_order_relaxed);
    watchdog_scan(std::chrono::steady_clock::now());
  }
}

void SimService::watchdog_scan(std::chrono::steady_clock::time_point now) {
  // Requires watchdog_mutex_ (held by watchdog_loop across the scan).
  for (auto it = watch_.begin(); it != watch_.end();) {
    Job& job = *it->second;
    if (job.replied.load(std::memory_order_acquire)) {
      it = watch_.erase(it);  // answered elsewhere; drop the stale entry
      continue;
    }
    if (!job.cancel.load(std::memory_order_relaxed)) {
      if (now - job.admitted_at >= std::chrono::milliseconds(job.wall_ms)) {
        // Phase 1: cooperative. The worker notices at its next cycle
        // window and answers wall_deadline itself.
        job.cancel_at = now;
        job.cancel.store(true, std::memory_order_release);
        wall_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      }
      ++it;
      continue;
    }
    if (now - job.cancel_at >=
        std::chrono::milliseconds(config_.watchdog_grace_ms)) {
      // Phase 2: the worker ignored cancellation past the grace period —
      // answer the client from here and evict the wedged worker so the
      // slot is reclaimed. The straggler's eventual reply loses the
      // deliver-once race and is dropped.
      const bool won = deliver(
          job, Reply::error(job.request.id, error_code::kWallDeadline,
                            "wall deadline " + std::to_string(job.wall_ms) +
                                " ms exceeded (worker unresponsive); "
                                "resubmit",
                            /*retriable=*/true));
      if (won) {
        const unsigned slot =
            job.worker_slot.load(std::memory_order_acquire);
        if (slot != WorkerPool<JobPtr>::kNoSlot && pool_.replace(slot)) {
          workers_poisoned_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      it = watch_.erase(it);
      continue;
    }
    ++it;
  }
}

void SimService::record_latency(double seconds) {
  const double ms = seconds * 1e3;
  std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_ms_.add(ms);
  latency_hist_ms_.add(ms);
}

ServiceStats SimService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.sim_faults = sim_faults_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.wall_deadline_exceeded =
      wall_deadline_exceeded_.load(std::memory_order_relaxed);
  s.workers_poisoned = workers_poisoned_.load(std::memory_order_relaxed);
  s.watchdog_scans = watchdog_scans_.load(std::memory_order_relaxed);
  s.worker_crashes = pool_.crashes();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_evictions = cache_.evictions();
  s.cache_size = cache_.size();
  s.queue_depth = queue_.depth();
  s.workers = config_.workers;
  s.workers_live = pool_.workers();
  s.workers_replaced = pool_.replaced();
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    s.latency_count = latency_ms_.count();
    if (s.latency_count > 0) {
      s.latency_mean_ms = latency_ms_.mean();
      s.latency_p50_ms = latency_hist_ms_.quantile(0.5);
      s.latency_p90_ms = latency_hist_ms_.quantile(0.9);
      s.latency_p99_ms = latency_hist_ms_.quantile(0.99);
      s.latency_max_ms = latency_ms_.max();
    }
  }
  return s;
}

MetricRegistry SimService::metrics() const {
  MetricRegistry registry;
  stats().visit_metrics(registry.prefixed("svc."));
  return registry;
}

}  // namespace steersim::svc
