// Resilient steersimd client library (docs/SERVICE.md §Failure modes).
//
// Extracted from tools/steersim_client.cpp so the CLI, the resilience
// bench and the chaos smoke all share one retry discipline instead of
// three ad-hoc ones. SteersimClient keeps a persistent connection to the
// daemon and turns the protocol's failure taxonomy into behaviour:
//
//   transport failures (connect refused, EOF mid-reply, read timeout,
//   unparseable frame — i.e. a chaos-corrupted one) close the socket,
//   reconnect, and retry;
//
//   retriable error replies (`queue_full`, `wall_deadline`,
//   `worker_crashed`, `timeout`) retry on the live connection;
//
//   everything else is returned to the caller verbatim.
//
// Retries are paced by capped exponential backoff with full jitter —
// delay ~ U[0, min(cap, base·2^attempt)] — the AWS-style variant that
// decorrelates a thundering herd of clients hammering a queue_full
// daemon. Resubmission is idempotent by construction: identical submits
// hash to the same FNV-1a job digest, so a retry either hits the result
// cache (the first attempt actually completed and was lost in transit)
// or re-runs the same deterministic simulation.
//
// When every attempt is exhausted the caller gets a synthesized error
// reply with code `transport` — a code the server itself never sends.
//
// POSIX only, like svc/server.hpp; on _WIN32 every call fails cleanly.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "svc/protocol.hpp"

namespace steersim::svc {

struct ClientOptions {
  std::string socket_path;
  /// Nonblocking connect() deadline.
  std::uint64_t connect_timeout_ms = 2'000;
  /// Deadline for one complete reply frame to arrive.
  std::uint64_t read_timeout_ms = 10'000;
  /// Total tries per call() — first attempt plus retries.
  unsigned max_attempts = 8;
  /// Backoff ceiling grows base·2^attempt up to cap; the actual delay is
  /// uniform in [0, ceiling] (full jitter). base 0 disables sleeping.
  std::uint64_t backoff_base_ms = 5;
  std::uint64_t backoff_cap_ms = 1'000;
  /// Seeds the jitter RNG: deterministic sleep sequences per client.
  std::uint64_t jitter_seed = 1;
  /// Retry transport failures too (not just retriable error replies).
  bool retry_transport = true;
};

/// Lifetime counters, exposed so benches can report retry pressure.
struct ClientStats {
  std::uint64_t attempts = 0;           ///< request frames sent
  std::uint64_t connects = 0;           ///< successful connect()s
  std::uint64_t reconnects = 0;         ///< connects after the first
  std::uint64_t retries_retriable = 0;  ///< retried on retriable errors
  std::uint64_t retries_transport = 0;  ///< retried on transport failure
  std::uint64_t timeouts = 0;           ///< read deadlines that expired
};

class SteersimClient {
 public:
  explicit SteersimClient(ClientOptions options);
  ~SteersimClient();

  SteersimClient(const SteersimClient&) = delete;
  SteersimClient& operator=(const SteersimClient&) = delete;

  /// Full resilience loop: up to max_attempts tries with backoff, as
  /// described above. Always returns a Reply — on total failure, a
  /// synthesized retriable error with code `transport`. Not thread-safe;
  /// use one client per thread.
  Reply call(const Request& request);

  /// One attempt, no retry and no backoff: false on transport failure
  /// (with `error` set), true with the parsed reply otherwise. The
  /// socket is closed on failure so the next call reconnects.
  bool call_once(const Request& request, Reply& reply, std::string& error);

  /// Drops the connection (next call reconnects). Idempotent.
  void close();
  bool connected() const { return fd_ >= 0; }

  const ClientStats& stats() const { return stats_; }
  const ClientOptions& options() const { return options_; }

  /// Full-jitter backoff: uniform in [0, min(cap, base << attempt)],
  /// shift-overflow safe. Exposed for tests.
  static std::uint64_t backoff_delay_ms(unsigned attempt,
                                        std::uint64_t base_ms,
                                        std::uint64_t cap_ms,
                                        Xoshiro256& rng);

 private:
  bool ensure_connected(std::string& error);
  bool send_line(const std::string& line, std::string& error);
  bool read_line(std::string& line, std::string& error);

  ClientOptions options_;
  Xoshiro256 rng_;
  ClientStats stats_;
  int fd_ = -1;
  /// Bytes read past the last consumed frame; cleared on (re)connect so
  /// a stale half-frame can never prefix a fresh reply.
  std::string inbuf_;
};

}  // namespace steersim::svc
