// Wire protocol for the steersimd job server (docs/SERVICE.md).
//
// JSON-lines over a Unix domain socket: each frame is exactly one JSON
// object terminated by '\n', parsed with the strict json.hpp entry point
// so `{"a":1}{"b":2}` can never be read as one message. Requests carry an
// assembly program or named workload kernel plus MachineConfig/PolicySpec
// overrides; replies are either a full result (the metric registry of the
// finished simulation, rendered canonically so a cache-hit reply is
// byte-identical to the cold run that populated it) or a typed error with
// a retriable bit (`queue_full` is the backpressure signal).
//
// Every message kind round-trips: to_json() then parse() compares equal
// (operator==), which tests/test_service.cpp enforces per kind.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace steersim::svc {

/// Protocol revision, echoed nowhere but bumped on breaking change.
inline constexpr std::string_view kProtocolVersion = "steersim-svc/1";

enum class RequestType : std::uint8_t {
  kSubmit,    ///< run (or cache-serve) one simulation
  kPing,      ///< liveness probe
  kStats,     ///< service metric registry snapshot
  kShutdown,  ///< drain in-flight jobs, then exit
};

std::string_view request_type_name(RequestType type);

/// One core's workload in a multi-core submit: a named kernel or a named
/// RV32 ELF fixture (exactly one), plus that core's steering policy.
struct MultiEntry {
  std::string kernel;
  std::string elf;
  std::string policy = "steered";

  bool operator==(const MultiEntry&) const = default;
};

/// One client request. Submit fields are meaningful only for kSubmit;
/// defaults here are the protocol defaults (absent keys parse to these,
/// and default-valued fields are omitted on the wire, so a round trip is
/// exact).
struct Request {
  RequestType type = RequestType::kPing;
  /// Client correlation id, echoed verbatim in the reply.
  std::string id;

  // --- submit payload ---------------------------------------------------
  /// Named workload kernel (src/workload/kernels.hpp); exclusive with
  /// `asm_source` and `elf`.
  std::string kernel;
  /// Inline assembly program (docs/ISA.md grammar).
  std::string asm_source;
  /// Named committed RV32 ELF fixture (src/workload/rv32_fixtures.hpp);
  /// the job digest covers the ELF image bytes, so identical binaries
  /// share one cache entry regardless of the name they were submitted
  /// under.
  std::string elf;
  /// Policy label: steered|static-ffu|static-integer|static-memory|
  /// static-float|oracle|full-reconfig|random|greedy.
  std::string policy = "steered";
  /// Per-job deadline in simulated cycles; 0 = server default budget.
  std::uint64_t max_cycles = 0;
  /// Per-job wall-clock deadline in host milliseconds; 0 = none. Measured
  /// from admission (queue wait counts). Enforced by the SimService
  /// watchdog: an overdue job answers a retriable `wall_deadline` error
  /// and, if its worker ignores cancellation past the grace period, the
  /// worker is poisoned and replaced. Not part of the cache digest — a
  /// wall deadline is an SLA, not simulated semantics.
  std::uint64_t wall_ms = 0;
  /// Steering decision interval / hysteresis / lookahead (PolicySpec).
  std::uint64_t interval = 1;
  std::uint64_t confirm = 1;
  bool lookahead = false;
  std::uint64_t seed = 42;
  /// Multi-core submit: one entry per core (1..8), exclusive with
  /// `kernel`/`asm_source`/`elf`. Empty = single-core submit.
  std::vector<MultiEntry> multi;
  /// Fabric arbiter policy for multi-core submits:
  /// round-robin|priority|prop-share.
  std::string arbiter = "round-robin";
  /// MachineConfig overrides as (knob, value) pairs, kept sorted by knob
  /// name (canonical order for digesting and round-trip equality). Knob
  /// names are validated server-side; unknown knobs are a bad_request.
  std::vector<std::pair<std::string, double>> config;

  std::string to_json() const;
  /// Strict parse of one frame; on failure returns false and sets `error`.
  static bool parse(std::string_view text, Request& out, std::string& error);

  bool operator==(const Request&) const = default;
};

enum class ReplyType : std::uint8_t {
  kResult,   ///< completed simulation (cold or cache-served)
  kError,    ///< typed failure, possibly retriable
  kPong,     ///< answer to ping
  kStats,    ///< service metric snapshot
  kGoodbye,  ///< shutdown acknowledged; server drains and exits
};

std::string_view reply_type_name(ReplyType type);

/// Error codes a client can dispatch on (docs/SERVICE.md §Failure modes
/// has the full code × retriability × client-behavior table). Retriable
/// codes mean the submit is safe to resend verbatim — resubmission is
/// idempotent because identical jobs share one FNV-1a digest and cache
/// entry. `deadline` means the *cycle* budget elapsed before HALT;
/// `wall_deadline` means the *host* wall-clock budget did.
namespace error_code {
inline constexpr std::string_view kQueueFull = "queue_full";
inline constexpr std::string_view kDeadline = "deadline";
inline constexpr std::string_view kWallDeadline = "wall_deadline";
inline constexpr std::string_view kWorkerCrashed = "worker_crashed";
inline constexpr std::string_view kTimeout = "timeout";
inline constexpr std::string_view kBadRequest = "bad_request";
inline constexpr std::string_view kShuttingDown = "shutting_down";
inline constexpr std::string_view kSimFault = "sim_fault";
inline constexpr std::string_view kCancelled = "cancelled";
/// Never sent by the server: synthesized by SteersimClient when the
/// transport itself failed (connect/read/write error or reply timeout).
inline constexpr std::string_view kTransport = "transport";
}  // namespace error_code

/// One server reply. Result fields are meaningful only for kResult, error
/// fields only for kError, `stats_json` only for kStats.
struct Reply {
  ReplyType type = ReplyType::kPong;
  std::string id;

  // --- result payload ---------------------------------------------------
  /// "hit" when served from the digest-keyed cache, else "miss".
  std::string cache;
  /// FNV-1a job digest (cache key) as 16 hex digits; lets a client prove
  /// two submits were considered identical work.
  std::string digest;
  std::string policy;
  /// RunOutcome name: halted|max_cycles|stalled|fault.
  std::string outcome;
  std::uint64_t cycles = 0;
  std::uint64_t retired = 0;
  /// Full end-of-run metric registry as one canonical JSON object (sorted
  /// keys); identical bytes on a cache hit.
  std::string metrics_json;

  // --- error payload ----------------------------------------------------
  std::string code;
  bool retriable = false;
  std::string message;

  // --- stats payload ----------------------------------------------------
  /// Service metric registry (svc.*) as one canonical JSON object.
  std::string stats_json;

  std::string to_json() const;
  static bool parse(std::string_view text, Reply& out, std::string& error);

  bool operator==(const Reply&) const = default;

  /// Convenience constructors.
  static Reply error(std::string id, std::string_view code,
                     std::string message, bool retriable = false);
};

/// FNV-1a/64 over length-delimited chunks, the digest the result cache
/// keys on: feed the program bytes and the canonical effective-config
/// rendering. Matches the mixing of bench_util's config_digest (each
/// chunk terminated by a 0xff sentinel so concatenation ambiguity cannot
/// alias two different jobs).
class Fnv1a {
 public:
  Fnv1a& mix(std::string_view chunk) {
    for (const char c : chunk) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 1099511628211ull;
    }
    hash_ ^= 0xff;
    hash_ *= 1099511628211ull;
    return *this;
  }
  std::uint64_t value() const { return hash_; }
  /// 16 lowercase hex digits.
  std::string hex() const;

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

}  // namespace steersim::svc
