#include "svc/client.hpp"

#include <chrono>
#include <thread>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace steersim::svc {

SteersimClient::SteersimClient(ClientOptions options)
    : options_(std::move(options)), rng_(options_.jitter_seed) {}

SteersimClient::~SteersimClient() { close(); }

std::uint64_t SteersimClient::backoff_delay_ms(unsigned attempt,
                                               std::uint64_t base_ms,
                                               std::uint64_t cap_ms,
                                               Xoshiro256& rng) {
  if (base_ms == 0 || cap_ms == 0) {
    return 0;
  }
  std::uint64_t ceiling = cap_ms;
  if (attempt < 63) {
    const std::uint64_t shifted = base_ms << attempt;
    // A shift that wrapped shows up as a round trip mismatch.
    if ((shifted >> attempt) == base_ms && shifted < cap_ms) {
      ceiling = shifted;
    }
  }
  return rng.next_below(ceiling + 1);  // full jitter: U[0, ceiling]
}

Reply SteersimClient::call(const Request& request) {
  const unsigned attempts = options_.max_attempts == 0
                                ? 1u
                                : options_.max_attempts;
  std::string last_error = "no attempt made";
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const std::uint64_t delay = backoff_delay_ms(
          attempt - 1, options_.backoff_base_ms, options_.backoff_cap_ms,
          rng_);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
    Reply reply;
    std::string error;
    if (!call_once(request, reply, error)) {
      last_error = error;
      if (!options_.retry_transport) {
        break;
      }
      if (attempt + 1 < attempts) {
        ++stats_.retries_transport;
      }
      continue;
    }
    if (reply.type == ReplyType::kError && reply.retriable &&
        attempt + 1 < attempts) {
      ++stats_.retries_retriable;
      last_error = std::string(reply.code) + ": " + reply.message;
      continue;
    }
    return reply;
  }
  return Reply::error(request.id, error_code::kTransport,
                      last_error + " (after " + std::to_string(attempts) +
                          " attempts)",
                      /*retriable=*/true);
}

#if !defined(_WIN32)

namespace {

/// Milliseconds left until `deadline`, clamped into poll()'s int domain;
/// 0 once the deadline has passed.
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) {
    return 0;
  }
  if (left.count() > 3'600'000) {
    return 3'600'000;
  }
  return static_cast<int>(left.count());
}

}  // namespace

void SteersimClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

bool SteersimClient::ensure_connected(std::string& error) {
  if (fd_ >= 0) {
    return true;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + options_.socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // Nonblocking connect so a hung daemon costs connect_timeout_ms, not
  // forever; the fd reverts to blocking afterwards (reads are paced by
  // poll(), AF_UNIX writes virtually never block).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      error = "connect " + options_.socket_path + ": " +
              std::strerror(errno);
      ::close(fd);
      return false;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int ready = ::poll(
        &pfd, 1, static_cast<int>(options_.connect_timeout_ms));
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      error = "connect " + options_.socket_path +
              (ready == 0 ? ": timed out"
                          : std::string(": ") +
                                std::strerror(so_error != 0 ? so_error
                                                            : errno));
      ::close(fd);
      return false;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  fd_ = fd;
  inbuf_.clear();
  ++stats_.connects;
  if (stats_.connects > 1) {
    ++stats_.reconnects;
  }
  return true;
}

bool SteersimClient::send_line(const std::string& line, std::string& error) {
  std::string_view data = line;
  while (!data.empty()) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd_, data.data(), data.size());
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      error = std::string("write: ") +
              (n < 0 ? std::strerror(errno) : "connection closed");
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool SteersimClient::read_line(std::string& line, std::string& error) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.read_timeout_ms);
  char chunk[4096];
  while (true) {
    const std::size_t newline = inbuf_.find('\n');
    if (newline != std::string::npos) {
      line = inbuf_.substr(0, newline);
      inbuf_.erase(0, newline + 1);
      return true;
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, remaining_ms(deadline));
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      error = std::string("poll: ") + std::strerror(errno);
      return false;
    }
    if (ready == 0) {
      ++stats_.timeouts;
      error = "no reply within " +
              std::to_string(options_.read_timeout_ms) + " ms";
      return false;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      error = n < 0 ? std::string("read: ") + std::strerror(errno)
                    : "connection closed before a reply arrived";
      return false;
    }
    inbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool SteersimClient::call_once(const Request& request, Reply& reply,
                               std::string& error) {
  if (!ensure_connected(error)) {
    return false;
  }
  ++stats_.attempts;
  std::string line;
  if (!send_line(request.to_json() + "\n", error) ||
      !read_line(line, error)) {
    close();
    return false;
  }
  std::string parse_error;
  if (!Reply::parse(line, reply, parse_error)) {
    // A frame that does not parse is indistinguishable from corruption
    // in transit: treat it as a transport failure so the caller's retry
    // goes to a fresh connection.
    error = "malformed reply: " + parse_error;
    close();
    return false;
  }
  return true;
}

#else  // _WIN32

void SteersimClient::close() {}

bool SteersimClient::ensure_connected(std::string& error) {
  error = "Unix domain sockets unavailable on this platform";
  return false;
}

bool SteersimClient::send_line(const std::string&, std::string& error) {
  error = "Unix domain sockets unavailable on this platform";
  return false;
}

bool SteersimClient::read_line(std::string&, std::string& error) {
  error = "Unix domain sockets unavailable on this platform";
  return false;
}

bool SteersimClient::call_once(const Request&, Reply&, std::string& error) {
  error = "Unix domain sockets unavailable on this platform";
  return false;
}

#endif

}  // namespace steersim::svc
