#include "svc/protocol.hpp"

#include <algorithm>
#include <cstdio>

#include "common/strings.hpp"
#include "sim/json.hpp"

namespace steersim::svc {

namespace {

void append_string_field(std::string& out, std::string_view key,
                         std::string_view value, bool& first) {
  if (!first) {
    out += ',';
  }
  first = false;
  out += '"';
  append_json_escaped(out, key);
  out += "\":\"";
  append_json_escaped(out, value);
  out += '"';
}

void append_number_field(std::string& out, std::string_view key, double value,
                         bool& first) {
  if (!first) {
    out += ',';
  }
  first = false;
  out += '"';
  append_json_escaped(out, key);
  out += "\":";
  out += json_number(value);
}

/// Integer protocol fields (cycle budgets, wall_ms, counters) render from
/// the 64-bit value directly: routing them through double would silently
/// round anything >= 2^53.
void append_u64_field(std::string& out, std::string_view key,
                      std::uint64_t value, bool& first) {
  if (!first) {
    out += ',';
  }
  first = false;
  out += '"';
  append_json_escaped(out, key);
  out += "\":";
  out += std::to_string(value);
}

void append_bool_field(std::string& out, std::string_view key, bool value,
                       bool& first) {
  if (!first) {
    out += ',';
  }
  first = false;
  out += '"';
  append_json_escaped(out, key);
  out += "\":";
  out += value ? "true" : "false";
}

void append_raw_field(std::string& out, std::string_view key,
                      std::string_view raw_json, bool& first) {
  if (!first) {
    out += ',';
  }
  first = false;
  out += '"';
  append_json_escaped(out, key);
  out += "\":";
  out += raw_json;
}

/// Field accessors that accumulate a problem description instead of
/// throwing: `ok` latches false on the first type mismatch.
std::string read_string(const JsonValue& object, const std::string& key,
                        std::string fallback, bool& ok, std::string& error) {
  const JsonValue* field = object.get(key);
  if (field == nullptr) {
    return fallback;
  }
  if (field->kind != JsonValue::Kind::kString) {
    ok = false;
    error = "field '" + key + "' must be a string";
    return fallback;
  }
  return field->string;
}

std::uint64_t read_u64(const JsonValue& object, const std::string& key,
                       std::uint64_t fallback, bool& ok, std::string& error) {
  const JsonValue* field = object.get(key);
  if (field == nullptr) {
    return fallback;
  }
  std::uint64_t value = 0;
  if (field->kind != JsonValue::Kind::kNumber || !field->as_u64(value)) {
    ok = false;
    error = "field '" + key + "' must be a non-negative integer";
    return fallback;
  }
  return value;
}

bool read_bool(const JsonValue& object, const std::string& key, bool fallback,
               bool& ok, std::string& error) {
  const JsonValue* field = object.get(key);
  if (field == nullptr) {
    return fallback;
  }
  if (field->kind != JsonValue::Kind::kBool) {
    ok = false;
    error = "field '" + key + "' must be a boolean";
    return fallback;
  }
  return field->boolean;
}

}  // namespace

std::string_view request_type_name(RequestType type) {
  switch (type) {
    case RequestType::kSubmit:
      return "submit";
    case RequestType::kPing:
      return "ping";
    case RequestType::kStats:
      return "stats";
    case RequestType::kShutdown:
      return "shutdown";
  }
  return "?";
}

std::string_view reply_type_name(ReplyType type) {
  switch (type) {
    case ReplyType::kResult:
      return "result";
    case ReplyType::kError:
      return "error";
    case ReplyType::kPong:
      return "pong";
    case ReplyType::kStats:
      return "stats";
    case ReplyType::kGoodbye:
      return "goodbye";
  }
  return "?";
}

std::string Request::to_json() const {
  std::string out = "{";
  bool first = true;
  append_string_field(out, "type", request_type_name(type), first);
  if (!id.empty()) {
    append_string_field(out, "id", id, first);
  }
  if (type == RequestType::kSubmit) {
    if (!kernel.empty()) {
      append_string_field(out, "kernel", kernel, first);
    }
    if (!asm_source.empty()) {
      append_string_field(out, "asm", asm_source, first);
    }
    if (!elf.empty()) {
      append_string_field(out, "elf", elf, first);
    }
    if (policy != "steered") {
      append_string_field(out, "policy", policy, first);
    }
    if (max_cycles != 0) {
      append_u64_field(out, "max_cycles", max_cycles, first);
    }
    if (wall_ms != 0) {
      append_u64_field(out, "wall_ms", wall_ms, first);
    }
    if (interval != 1) {
      append_u64_field(out, "interval", interval, first);
    }
    if (confirm != 1) {
      append_u64_field(out, "confirm", confirm, first);
    }
    if (lookahead) {
      append_bool_field(out, "lookahead", lookahead, first);
    }
    if (seed != 42) {
      append_u64_field(out, "seed", seed, first);
    }
    if (!multi.empty()) {
      std::string entries = "[";
      for (std::size_t k = 0; k < multi.size(); ++k) {
        if (k > 0) {
          entries += ',';
        }
        entries += '{';
        bool entry_first = true;
        if (!multi[k].kernel.empty()) {
          append_string_field(entries, "kernel", multi[k].kernel,
                              entry_first);
        }
        if (!multi[k].elf.empty()) {
          append_string_field(entries, "elf", multi[k].elf, entry_first);
        }
        if (multi[k].policy != "steered") {
          append_string_field(entries, "policy", multi[k].policy,
                              entry_first);
        }
        entries += '}';
      }
      entries += ']';
      append_raw_field(out, "multi", entries, first);
      if (arbiter != "round-robin") {
        append_string_field(out, "arbiter", arbiter, first);
      }
    }
    if (!config.empty()) {
      auto sorted = config;
      std::sort(sorted.begin(), sorted.end());
      std::string knobs = "{";
      bool knob_first = true;
      for (const auto& [name, value] : sorted) {
        append_number_field(knobs, name, value, knob_first);
      }
      knobs += '}';
      append_raw_field(out, "config", knobs, first);
    }
  }
  out += '}';
  return out;
}

bool Request::parse(std::string_view text, Request& out, std::string& error) {
  JsonValue doc;
  if (!parse_json_strict(text, doc)) {
    error = "malformed JSON frame";
    return false;
  }
  if (doc.kind != JsonValue::Kind::kObject) {
    error = "request must be a JSON object";
    return false;
  }
  bool ok = true;
  const std::string type = read_string(doc, "type", "", ok, error);
  Request parsed;
  if (type == "submit") {
    parsed.type = RequestType::kSubmit;
  } else if (type == "ping") {
    parsed.type = RequestType::kPing;
  } else if (type == "stats") {
    parsed.type = RequestType::kStats;
  } else if (type == "shutdown") {
    parsed.type = RequestType::kShutdown;
  } else {
    error = type.empty() ? "missing request 'type'"
                         : "unknown request type '" + type + "'";
    return false;
  }
  parsed.id = read_string(doc, "id", "", ok, error);
  parsed.kernel = read_string(doc, "kernel", "", ok, error);
  parsed.asm_source = read_string(doc, "asm", "", ok, error);
  parsed.elf = read_string(doc, "elf", "", ok, error);
  parsed.policy = read_string(doc, "policy", "steered", ok, error);
  parsed.max_cycles = read_u64(doc, "max_cycles", 0, ok, error);
  parsed.wall_ms = read_u64(doc, "wall_ms", 0, ok, error);
  parsed.interval = read_u64(doc, "interval", 1, ok, error);
  parsed.confirm = read_u64(doc, "confirm", 1, ok, error);
  parsed.lookahead = read_bool(doc, "lookahead", false, ok, error);
  parsed.seed = read_u64(doc, "seed", 42, ok, error);
  if (const JsonValue* entries = doc.get("multi")) {
    if (entries->kind != JsonValue::Kind::kArray) {
      error = "field 'multi' must be an array";
      return false;
    }
    for (const JsonValue& entry : entries->array) {
      if (entry.kind != JsonValue::Kind::kObject) {
        error = "field 'multi' entries must be objects";
        return false;
      }
      MultiEntry core;
      core.kernel = read_string(entry, "kernel", "", ok, error);
      core.elf = read_string(entry, "elf", "", ok, error);
      core.policy = read_string(entry, "policy", "steered", ok, error);
      parsed.multi.push_back(std::move(core));
    }
    parsed.arbiter = read_string(doc, "arbiter", "round-robin", ok, error);
  }
  if (const JsonValue* knobs = doc.get("config")) {
    if (knobs->kind != JsonValue::Kind::kObject) {
      error = "field 'config' must be an object";
      return false;
    }
    for (const auto& [name, value] : knobs->object) {
      if (value.kind != JsonValue::Kind::kNumber) {
        error = "config knob '" + name + "' must be a number";
        return false;
      }
      parsed.config.emplace_back(name, value.number);  // map order: sorted
    }
  }
  if (!ok) {
    return false;
  }
  out = std::move(parsed);
  return true;
}

std::string Reply::to_json() const {
  std::string out = "{";
  bool first = true;
  append_string_field(out, "type", reply_type_name(type), first);
  if (!id.empty()) {
    append_string_field(out, "id", id, first);
  }
  switch (type) {
    case ReplyType::kResult:
      append_string_field(out, "cache", cache, first);
      append_string_field(out, "digest", digest, first);
      append_string_field(out, "policy", policy, first);
      append_string_field(out, "outcome", outcome, first);
      append_u64_field(out, "cycles", cycles, first);
      append_u64_field(out, "retired", retired, first);
      if (!metrics_json.empty()) {
        append_raw_field(out, "metrics", metrics_json, first);
      }
      break;
    case ReplyType::kError:
      append_string_field(out, "code", code, first);
      append_bool_field(out, "retriable", retriable, first);
      if (!message.empty()) {
        append_string_field(out, "message", message, first);
      }
      break;
    case ReplyType::kPong:
    case ReplyType::kGoodbye:
      break;
    case ReplyType::kStats:
      if (!stats_json.empty()) {
        append_raw_field(out, "metrics", stats_json, first);
      }
      break;
  }
  out += '}';
  return out;
}

bool Reply::parse(std::string_view text, Reply& out, std::string& error) {
  JsonValue doc;
  if (!parse_json_strict(text, doc)) {
    error = "malformed JSON frame";
    return false;
  }
  if (doc.kind != JsonValue::Kind::kObject) {
    error = "reply must be a JSON object";
    return false;
  }
  bool ok = true;
  const std::string type = read_string(doc, "type", "", ok, error);
  Reply parsed;
  if (type == "result") {
    parsed.type = ReplyType::kResult;
  } else if (type == "error") {
    parsed.type = ReplyType::kError;
  } else if (type == "pong") {
    parsed.type = ReplyType::kPong;
  } else if (type == "stats") {
    parsed.type = ReplyType::kStats;
  } else if (type == "goodbye") {
    parsed.type = ReplyType::kGoodbye;
  } else {
    error = type.empty() ? "missing reply 'type'"
                         : "unknown reply type '" + type + "'";
    return false;
  }
  parsed.id = read_string(doc, "id", "", ok, error);
  parsed.cache = read_string(doc, "cache", "", ok, error);
  parsed.digest = read_string(doc, "digest", "", ok, error);
  parsed.policy = read_string(doc, "policy", "", ok, error);
  parsed.outcome = read_string(doc, "outcome", "", ok, error);
  parsed.cycles = read_u64(doc, "cycles", 0, ok, error);
  parsed.retired = read_u64(doc, "retired", 0, ok, error);
  parsed.code = read_string(doc, "code", "", ok, error);
  parsed.retriable = read_bool(doc, "retriable", false, ok, error);
  parsed.message = read_string(doc, "message", "", ok, error);
  if (const JsonValue* metrics = doc.get("metrics")) {
    if (metrics->kind != JsonValue::Kind::kObject) {
      error = "field 'metrics' must be an object";
      return false;
    }
    // Canonical re-rendering (sorted keys, round-trip numbers): the wire
    // form is canonical too, so parse(to_json()) is byte-stable.
    (parsed.type == ReplyType::kStats ? parsed.stats_json
                                      : parsed.metrics_json) =
        render_json(*metrics);
  }
  if (!ok) {
    return false;
  }
  out = std::move(parsed);
  return true;
}

Reply Reply::error(std::string id, std::string_view code, std::string message,
                   bool retriable) {
  Reply reply;
  reply.type = ReplyType::kError;
  reply.id = std::move(id);
  reply.code = std::string(code);
  reply.message = std::move(message);
  reply.retriable = retriable;
  return reply;
}

std::string Fnv1a::hex() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash_));
  return buf;
}

}  // namespace steersim::svc
