#include "svc/server.hpp"

#include <cstdio>

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>
#endif

namespace steersim::svc {

#if defined(_WIN32)

struct SocketServer::State {};

SocketServer::SocketServer(SimService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}
SocketServer::~SocketServer() = default;
bool SocketServer::listen() {
  std::fprintf(stderr, "steersimd: Unix domain sockets unavailable on this "
                       "platform\n");
  return false;
}
bool SocketServer::serve() { return listen(); }
void SocketServer::stop() {}
void SocketServer::handle_connection(int) {}

#else

struct SocketServer::State {
  std::mutex mutex;
  std::vector<int> connection_fds;
  std::vector<std::jthread> connection_threads;
  bool stopping = false;
};

namespace {

/// write() the whole buffer, tolerating short writes; false on error
/// (EPIPE when the client went away — the connection just closes).
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(SimService& service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      state_(std::make_unique<State>()) {}

SocketServer::~SocketServer() {
  stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

bool SocketServer::listen() {
  if (listen_fd_ >= 0) {
    return true;
  }
  if (options_.socket_path.empty()) {
    std::fprintf(stderr, "steersimd: empty socket path\n");
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "steersimd: socket path too long: %s\n",
                 options_.socket_path.c_str());
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("steersimd: socket");
    return false;
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a past run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::perror("steersimd: bind");
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) < 0) {
    std::perror("steersimd: listen");
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return false;
  }
  listen_fd_ = fd;
  return true;
}

void SocketServer::stop() {
  if (state_ == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->stopping = true;
  if (listen_fd_ >= 0) {
    // Unblocks accept(); the fd itself is closed by the destructor so a
    // concurrent accept never races a recycled descriptor number.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  for (const int fd : state_->connection_fds) {
    ::shutdown(fd, SHUT_RDWR);  // unblocks read(); thread exits
  }
}

void SocketServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool goodbye = false;
  while (!goodbye) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // client closed (or stop() shut the fd down)
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options_.max_frame_bytes &&
        buffer.find('\n') == std::string::npos) {
      write_all(fd, Reply::error("", error_code::kBadRequest,
                                 "frame exceeds " +
                                     std::to_string(options_.max_frame_bytes) +
                                     " bytes")
                            .to_json() +
                        "\n");
      break;
    }
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) {
        break;
      }
      const std::string_view line(buffer.data() + start, newline - start);
      start = newline + 1;
      if (line.empty()) {
        continue;
      }
      Request request;
      std::string parse_error;
      Reply reply;
      if (Request::parse(line, request, parse_error)) {
        reply = service_.handle(request);
      } else {
        reply = Reply::error("", error_code::kBadRequest, parse_error);
      }
      if (!write_all(fd, reply.to_json() + "\n")) {
        goodbye = true;  // client went away mid-reply
        break;
      }
      if (reply.type == ReplyType::kGoodbye) {
        stop();
        goodbye = true;
        break;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(state_->mutex);
  std::erase(state_->connection_fds, fd);
}

bool SocketServer::serve() {
  if (!listen()) {
    return false;
  }
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->stopping) {
        if (fd >= 0) {
          ::close(fd);
        }
        break;
      }
      if (fd < 0) {
        if (errno == EINTR) {
          continue;
        }
        std::perror("steersimd: accept");
        break;
      }
      state_->connection_fds.push_back(fd);
      state_->connection_threads.emplace_back(
          [this, fd] { handle_connection(fd); });
    }
  }
  {
    // Unblock any connection still reading, then join them all.
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stopping = true;
    for (const int fd : state_->connection_fds) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  std::vector<std::jthread> threads;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    threads.swap(state_->connection_threads);
  }
  threads.clear();  // join
  service_.begin_shutdown();
  service_.drain();
  return true;
}

#endif  // !defined(_WIN32)

}  // namespace steersim::svc
