#include "svc/server.hpp"

#include <cstdio>

#if !defined(_WIN32)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/chaos.hpp"
#endif

namespace steersim::svc {

#if defined(_WIN32)

struct SocketServer::Connection {};
struct SocketServer::State {};

SocketServer::SocketServer(SimService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}
SocketServer::~SocketServer() = default;
bool SocketServer::listen() {
  std::fprintf(stderr, "steersimd: Unix domain sockets unavailable on this "
                       "platform\n");
  return false;
}
bool SocketServer::serve() { return listen(); }
void SocketServer::stop() {}
void SocketServer::handle_connection(Connection&) {}
void SocketServer::reap_finished() {}

#else

/// One accepted client. `fd` lives under State::mutex (set to -1 when the
/// handler closes it, so stop() can never shutdown() a recycled
/// descriptor number); `done` tells the reaper the thread is joinable
/// without blocking.
struct SocketServer::Connection {
  int fd = -1;
  std::atomic<bool> done{false};
  std::jthread thread;
};

struct SocketServer::State {
  std::mutex mutex;
  std::vector<std::unique_ptr<Connection>> connections;
  bool stopping = false;
};

namespace {

/// write() the whole buffer, tolerating short writes; false on error
/// (EPIPE when the client went away — the connection just closes; the
/// daemon also ignores SIGPIPE and sends with MSG_NOSIGNAL, so a dying
/// client can never signal-kill the process).
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data.data(), data.size());
#endif
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Renders and writes one reply frame, applying chaos frame faults when
/// an injector is installed. Returns false when the connection should
/// close (write error, or an injected drop/truncate). Goodbye frames are
/// exempt from chaos so a chaos-storm run can always shut the daemon
/// down cleanly.
bool send_frame(int fd, const Reply& reply) {
  std::string frame = reply.to_json() + "\n";
  if (reply.type != ReplyType::kGoodbye) {
    if (auto chaos = ChaosInjector::global()) {
      if (chaos->roll(ChaosSite::kFrameDrop)) {
        return false;  // swallow the reply; client sees EOF
      }
      if (chaos->roll(ChaosSite::kFrameDelay)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(chaos->spec().delay_ms));
      }
      if (chaos->roll(ChaosSite::kFrameTruncate)) {
        write_all(fd, std::string_view(frame).substr(0, frame.size() / 2));
        return false;
      }
      chaos->corrupt(frame);
    }
  }
  return write_all(fd, frame);
}

}  // namespace

SocketServer::SocketServer(SimService& service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      state_(std::make_unique<State>()) {}

SocketServer::~SocketServer() {
  stop();
  reap_finished();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.socket_path.empty()) {
    ::unlink(options_.socket_path.c_str());
  }
}

bool SocketServer::listen() {
  if (listen_fd_ >= 0) {
    return true;
  }
  // A client that disconnects while a reply is in flight must cost at
  // most one failed write, never a process-killing SIGPIPE (belt:
  // MSG_NOSIGNAL in write_all is the suspenders).
  std::signal(SIGPIPE, SIG_IGN);
  if (options_.socket_path.empty()) {
    std::fprintf(stderr, "steersimd: empty socket path\n");
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "steersimd: socket path too long: %s\n",
                 options_.socket_path.c_str());
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("steersimd: socket");
    return false;
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a past run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::perror("steersimd: bind");
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) < 0) {
    std::perror("steersimd: listen");
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return false;
  }
  listen_fd_ = fd;
  return true;
}

void SocketServer::stop() {
  if (state_ == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->stopping = true;
  if (listen_fd_ >= 0) {
    // Unblocks accept(); the fd itself is closed by the destructor so a
    // concurrent accept never races a recycled descriptor number.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  for (const auto& conn : state_->connections) {
    if (conn->fd >= 0) {
      ::shutdown(conn->fd, SHUT_RDWR);  // unblocks poll/read; thread exits
    }
  }
}

void SocketServer::reap_finished() {
  if (state_ == nullptr) {
    return;
  }
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    for (auto it = state_->connections.begin();
         it != state_->connections.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = state_->connections.erase(it);
      } else {
        ++it;
      }
    }
  }
  finished.clear();  // jthread joins (threads already past their last line)
}

void SocketServer::handle_connection(Connection& conn) {
  const int fd = conn.fd;
  std::string buffer;
  char chunk[4096];
  bool goodbye = false;
  while (!goodbye) {
    if (options_.idle_timeout_ms > 0) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(options_.idle_timeout_ms));
      if (ready < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;
      }
      if (ready == 0) {
        // Slowloris guard: the peer owes us (the rest of) a frame and
        // has gone quiet; tell it why it is being cut off, then close.
        send_frame(fd, Reply::error(
                           "", error_code::kTimeout,
                           "no frame for " +
                               std::to_string(options_.idle_timeout_ms) +
                               " ms; closing idle connection",
                           /*retriable=*/true));
        break;
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // client closed (or stop() shut the fd down)
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options_.max_frame_bytes &&
        buffer.find('\n') == std::string::npos) {
      send_frame(fd, Reply::error("", error_code::kBadRequest,
                                  "frame exceeds " +
                                      std::to_string(
                                          options_.max_frame_bytes) +
                                      " bytes"));
      break;
    }
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) {
        break;
      }
      const std::string_view line(buffer.data() + start, newline - start);
      start = newline + 1;
      if (line.empty()) {
        continue;
      }
      Request request;
      std::string parse_error;
      Reply reply;
      if (Request::parse(line, request, parse_error)) {
        reply = service_.handle(request);
      } else {
        reply = Reply::error("", error_code::kBadRequest, parse_error);
      }
      if (!send_frame(fd, reply)) {
        goodbye = true;  // client went away mid-reply (or chaos cut it)
        break;
      }
      if (reply.type == ReplyType::kGoodbye) {
        stop();
        goodbye = true;
        break;
      }
    }
    buffer.erase(0, start);
  }
  std::lock_guard<std::mutex> lock(state_->mutex);
  ::close(fd);
  conn.fd = -1;
  conn.done.store(true, std::memory_order_release);
}

bool SocketServer::serve() {
  if (!listen()) {
    return false;
  }
  while (true) {
    reap_finished();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->stopping) {
        if (fd >= 0) {
          ::close(fd);
        }
        break;
      }
      if (fd < 0) {
        if (errno == EINTR) {
          continue;
        }
        std::perror("steersimd: accept");
        break;
      }
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      Connection* raw = conn.get();
      state_->connections.push_back(std::move(conn));
      raw->thread =
          std::jthread([this, raw] { handle_connection(*raw); });
    }
  }
  {
    // Unblock any connection still reading, then join them all.
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stopping = true;
    for (const auto& conn : state_->connections) {
      if (conn->fd >= 0) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    connections.swap(state_->connections);
  }
  connections.clear();  // join
  service_.begin_shutdown();
  service_.drain();
  return true;
}

#endif  // !defined(_WIN32)

}  // namespace steersim::svc
