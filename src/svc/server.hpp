// JSON-lines-over-Unix-domain-socket front end for SimService
// (docs/SERVICE.md). POSIX only; on other platforms listen() fails with a
// message (the service core itself is portable and in-process callers are
// unaffected).
//
// One accept loop, one thread per connection: each '\n'-terminated frame
// is parsed with the strict json.hpp entry point, dispatched through
// SimService::handle (submits block that connection's thread — admission
// control lives in the bounded job queue, not the socket layer), and
// answered with one reply line. A shutdown request answers `goodbye`,
// stops the accept loop, unblocks every open connection, and drains the
// service before serve() returns.
#pragma once

#include <memory>
#include <string>

#include "svc/service.hpp"

namespace steersim::svc {

struct ServerOptions {
  std::string socket_path = {};
  /// Frames longer than this without a newline poison the connection
  /// (error reply, then close) instead of growing without bound.
  std::size_t max_frame_bytes = 1 << 20;
  /// Slowloris guard: a connection that stays silent this long (e.g. a
  /// partial frame, then nothing) is answered with a retriable `timeout`
  /// error and closed, so it cannot pin its thread forever. 0 disables.
  std::uint64_t idle_timeout_ms = 30'000;
};

class SocketServer {
 public:
  SocketServer(SimService& service, ServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens on the socket path (an existing stale socket file
  /// is removed first). False on error, with a message to stderr.
  bool listen();

  /// Accept loop; returns after a shutdown request (or stop()) once every
  /// connection thread has exited and the service has drained. Calls
  /// listen() if it has not been called yet.
  bool serve();

  /// Thread-safe: ends the accept loop and unblocks open connections.
  void stop();

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Connection;
  void handle_connection(Connection& conn);
  /// Joins and discards connection threads that have finished, so a
  /// long-lived daemon does not accumulate one dead jthread per client.
  void reap_finished();

  SimService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  /// Open connections, guarded by impl-side mutex (see server.cpp).
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace steersim::svc
