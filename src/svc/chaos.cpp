#include "svc/chaos.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/strings.hpp"

namespace steersim::svc {

namespace {

struct SiteKey {
  std::string_view key;
  ChaosSite site;
};

constexpr SiteKey kSiteKeys[] = {
    {"delay", ChaosSite::kFrameDelay},
    {"drop", ChaosSite::kFrameDrop},
    {"truncate", ChaosSite::kFrameTruncate},
    {"corrupt", ChaosSite::kFrameCorrupt},
    {"stall", ChaosSite::kWorkerStall},
    {"crash", ChaosSite::kWorkerCrash},
    {"cache_slow", ChaosSite::kCacheSlow},
};

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Strict [0,1] probability parse: plain decimal/fractional notation only.
bool parse_probability(std::string_view text, double& out) {
  if (text.empty()) {
    return false;
  }
  const std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) {
    return false;
  }
  if (!(value >= 0.0 && value <= 1.0)) {
    return false;
  }
  out = value;
  return true;
}

}  // namespace

std::string_view chaos_site_name(ChaosSite site) {
  for (const SiteKey& entry : kSiteKeys) {
    if (entry.site == site) {
      return entry.key;
    }
  }
  return "?";
}

bool ChaosSpec::any() const {
  for (const double p : probability) {
    if (p > 0.0) {
      return true;
    }
  }
  return false;
}

bool ChaosSpec::parse(std::string_view text, ChaosSpec& out,
                      std::string& error) {
  ChaosSpec parsed;
  std::string_view body = trim(text);
  // Optional ":<seed>" suffix. Keys and values never contain ':', so the
  // last colon unambiguously starts the seed.
  if (const std::size_t colon = body.rfind(':');
      colon != std::string_view::npos) {
    const auto seed = parse_positive_u64(trim(body.substr(colon + 1)));
    if (!seed) {
      error = "seed after ':' must be a positive decimal integer";
      return false;
    }
    parsed.seed = *seed;
    body = body.substr(0, colon);
  }
  if (trim(body).empty()) {
    error = "empty chaos spec";
    return false;
  }
  for (const std::string& pair : split(std::string(body), ',')) {
    const std::string_view entry = trim(pair);
    if (entry.empty()) {
      continue;
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      error = "expected key=value, got '" + std::string(entry) + "'";
      return false;
    }
    const std::string_view key = trim(entry.substr(0, eq));
    const std::string_view value = trim(entry.substr(eq + 1));
    bool matched = false;
    for (const SiteKey& site_key : kSiteKeys) {
      if (key == site_key.key) {
        if (!parse_probability(value, parsed.site(site_key.site))) {
          error = "probability for '" + std::string(key) +
                  "' must be a number in [0,1]";
          return false;
        }
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    std::uint64_t* duration = nullptr;
    if (key == "delay_ms") {
      duration = &parsed.delay_ms;
    } else if (key == "stall_ms") {
      duration = &parsed.stall_ms;
    } else if (key == "cache_slow_ms") {
      duration = &parsed.cache_slow_ms;
    } else {
      error = "unknown chaos key '" + std::string(key) + "'";
      return false;
    }
    const auto ms = parse_positive_u64(value);
    if (!ms) {
      error = "'" + std::string(key) +
              "' must be a positive decimal millisecond count";
      return false;
    }
    *duration = *ms;
  }
  if (!parsed.any()) {
    error = "chaos spec enables no site (all probabilities zero)";
    return false;
  }
  out = parsed;
  return true;
}

bool ChaosInjector::roll(ChaosSite site) {
  const double p = spec_.site(site);
  if (p <= 0.0) {
    return false;
  }
  bool hit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hit = rng_.next_bool(p);
  }
  if (hit) {
    counts_[static_cast<std::size_t>(site)].fetch_add(
        1, std::memory_order_relaxed);
  }
  return hit;
}

void ChaosInjector::maybe_cache_slow() {
  if (roll(ChaosSite::kCacheSlow)) {
    sleep_ms(spec_.cache_slow_ms);
  }
}

void ChaosInjector::maybe_worker_stall() {
  if (roll(ChaosSite::kWorkerStall)) {
    sleep_ms(spec_.stall_ms);
  }
}

void ChaosInjector::maybe_worker_crash() {
  if (roll(ChaosSite::kWorkerCrash)) {
    throw ChaosCrash{};
  }
}

bool ChaosInjector::corrupt(std::string& frame) {
  const double p = spec_.site(ChaosSite::kFrameCorrupt);
  if (p <= 0.0 || frame.empty()) {
    return false;
  }
  std::size_t pos;
  unsigned bit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!rng_.next_bool(p)) {
      return false;
    }
    pos = static_cast<std::size_t>(rng_.next_below(frame.size()));
    bit = static_cast<unsigned>(rng_.next_below(8));
  }
  frame[pos] = static_cast<char>(static_cast<unsigned char>(frame[pos]) ^
                                 (1u << bit));
  counts_[static_cast<std::size_t>(ChaosSite::kFrameCorrupt)].fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

std::string ChaosInjector::summary() const {
  std::string out;
  for (const SiteKey& entry : kSiteKeys) {
    const std::uint64_t n = count(entry.site);
    if (n == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += entry.key;
    out += '=';
    out += std::to_string(n);
  }
  return out.empty() ? "none" : out;
}

namespace {
std::mutex g_install_mutex;
std::shared_ptr<ChaosInjector> g_owned;             // NOLINT
/// Lock-free "is an injector installed?" flag so the STEERSIM_CHAOS-unset
/// fast path stays one atomic load; the shared_ptr itself is only touched
/// under g_install_mutex.
std::atomic<bool> g_active{false};                  // NOLINT
std::once_flag g_env_once;                          // NOLINT
}  // namespace

std::shared_ptr<ChaosInjector> ChaosInjector::global() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("STEERSIM_CHAOS");
    if (env == nullptr) {
      return;
    }
    ChaosSpec spec;
    std::string error;
    if (!ChaosSpec::parse(env, spec, error)) {
      std::fprintf(stderr,
                   "steersim: ignoring STEERSIM_CHAOS='%s' (%s)\n", env,
                   error.c_str());
      return;
    }
    std::fprintf(stderr,
                 "steersim: CHAOS INJECTION ENABLED (STEERSIM_CHAOS='%s', "
                 "seed %llu) — this build is hurting itself on purpose\n",
                 env, static_cast<unsigned long long>(spec.seed));
    install(std::make_unique<ChaosInjector>(spec));
  });
  if (!g_active.load(std::memory_order_acquire)) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(g_install_mutex);
  return g_owned;
}

void ChaosInjector::install(std::unique_ptr<ChaosInjector> injector) {
  std::shared_ptr<ChaosInjector> retired;
  {
    std::lock_guard<std::mutex> lock(g_install_mutex);
    g_active.store(injector != nullptr, std::memory_order_release);
    retired = std::move(g_owned);
    g_owned = std::shared_ptr<ChaosInjector>(std::move(injector));
  }
  // `retired` drops here, outside the lock; if a site thread still holds
  // a global() snapshot, the *last* owner frees the old injector.
}

}  // namespace steersim::svc
