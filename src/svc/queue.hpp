// Bounded MPMC FIFO with explicit backpressure (docs/SERVICE.md).
//
// The admission edge of the job server: try_push never blocks — a full
// queue is reported to the caller (who turns it into a retriable
// `queue_full` error) instead of stalling the connection or silently
// dropping the job. pop() blocks until an item or close(); after close()
// the queue drains (poppers still receive queued items) and then returns
// nullopt, which is how the worker pool shuts down gracefully.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace steersim::svc {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` is the high-water mark; 0 is pinned to 1 (a zero-capacity
  /// queue would reject everything).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admit: false when at capacity or closed. Never waits —
  /// backpressure is the caller's problem to report, not ours to hide.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission and wakes every blocked popper; queued items still
  /// drain. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Reopens a drained queue so a restartable pool can reuse it.
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace steersim::svc
