// Persistent, restartable, crash-isolating worker pool (docs/SERVICE.md).
//
// Generalizes sim/sweep.hpp's one-shot parallel_map: where parallel_map
// spawns jthreads for a fixed job vector and joins, WorkerPool keeps N
// threads looping over a BoundedQueue for the lifetime of the service.
// stop() closes the queue, lets the workers drain every queued job
// (graceful shutdown), and joins; start() after stop() reopens the queue
// and spins up a fresh generation of threads.
//
// Two failure modes are survivable by design (docs/SERVICE.md §Failure
// modes):
//
//   crash — an exception escaping run_() no longer std::terminates the
//   process. The worker counts it, hands (job, exception) to the optional
//   crash handler — the service answers a retriable `worker_crashed`
//   error — and keeps looping. One poisoned job must not cost a worker,
//   let alone the daemon.
//
//   hang — a worker stuck inside run_() (ignoring cooperative
//   cancellation) can be evicted with replace(slot): its poison flag is
//   set, the thread is detached, and a fresh thread takes over the same
//   slot so capacity never shrinks. The detached thread re-checks its
//   flag at the next job boundary and exits quietly. stop() stays safe in
//   the presence of detached stragglers: every worker — joined or
//   detached — counts in `live_`, and stop() blocks until all of them
//   have signalled exit, so no worker can outlive the pool (and the
//   queue/service state it references).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "svc/queue.hpp"

namespace steersim::svc {

template <typename Job>
class WorkerPool {
 public:
  /// Sentinel returned by current_slot() off worker threads.
  static constexpr unsigned kNoSlot = ~0u;

  /// `run` executes one dequeued job; invoked concurrently from every
  /// worker thread, so it must only touch synchronized state.
  template <typename Run>
  WorkerPool(BoundedQueue<Job>& queue, Run run)
      : queue_(queue), run_(std::move(run)) {}

  ~WorkerPool() { stop(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Called with (job, exception) when run_() throws; runs on the worker
  /// thread, must not throw. Set before start().
  void set_crash_handler(
      std::function<void(Job&, std::exception_ptr)> handler) {
    crash_ = std::move(handler);
  }

  /// Spins up `workers` threads (>= 1 enforced). No-op when running.
  void start(unsigned workers) {
    STEERSIM_EXPECTS(workers >= 1);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!slots_.empty()) {
      return;
    }
    queue_.reopen();
    slots_.resize(workers);
    for (unsigned w = 0; w < workers; ++w) {
      spawn_locked(w);
    }
  }

  /// Graceful shutdown: close the queue, drain every queued job, join —
  /// then wait for any detached (poisoned) stragglers to exit too.
  /// Safe to call repeatedly; start() afterwards restarts the pool.
  void stop() {
    std::vector<Slot> generation;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (slots_.empty() && live_ == 0) {
        return;
      }
      generation = std::move(slots_);
      slots_.clear();
    }
    queue_.close();
    for (Slot& slot : generation) {
      if (slot.thread.joinable()) {
        slot.thread.join();
      }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    exited_.wait(lock, [this] { return live_ == 0; });
  }

  /// Evicts the worker in `slot`: poisons it, detaches its thread, and
  /// spawns a replacement into the same slot. Returns false when the slot
  /// is unknown or the pool is stopped. The evictee keeps running its
  /// current job until it reaches a cancellation window — callers answer
  /// the job's reply themselves (SimService delivers `wall_deadline`
  /// first, so whatever the straggler eventually produces is dropped by
  /// the deliver-once latch).
  bool replace(unsigned slot) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (slot >= slots_.size() || !slots_[slot].thread.joinable()) {
      return false;
    }
    slots_[slot].poisoned->store(true, std::memory_order_release);
    slots_[slot].thread.detach();
    spawn_locked(slot);
    replaced_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool running() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !slots_.empty();
  }
  unsigned workers() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<unsigned>(slots_.size());
  }
  /// Exceptions that escaped run_() (absorbed, not rethrown).
  std::uint64_t crashes() const {
    return crashes_.load(std::memory_order_relaxed);
  }
  /// Workers evicted via replace().
  std::uint64_t replaced() const {
    return replaced_.load(std::memory_order_relaxed);
  }

  /// The calling worker thread's slot index, kNoSlot elsewhere. Lets the
  /// job processor record which slot to replace() if this job wedges.
  static unsigned current_slot() { return tls_slot_; }

 private:
  struct Slot {
    std::jthread thread;
    std::shared_ptr<std::atomic<bool>> poisoned;
  };

  /// Requires mutex_. `slots_[slot]` may hold a detached predecessor's
  /// remains; overwriting them is the point.
  void spawn_locked(unsigned slot) {
    auto poisoned = std::make_shared<std::atomic<bool>>(false);
    ++live_;
    slots_[slot].poisoned = poisoned;
    slots_[slot].thread = std::jthread(
        [this, slot, poisoned] { worker_loop(slot, std::move(poisoned)); });
  }

  void worker_loop(unsigned slot,
                   std::shared_ptr<std::atomic<bool>> poisoned) {
    tls_slot_ = slot;
    while (!poisoned->load(std::memory_order_acquire)) {
      auto job = queue_.pop();
      if (!job) {
        break;
      }
      try {
        run_(*job);
      } catch (...) {
        crashes_.fetch_add(1, std::memory_order_relaxed);
        if (crash_) {
          crash_(*job, std::current_exception());
        }
      }
    }
    tls_slot_ = kNoSlot;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --live_;
      // Notify while still holding the lock: stop()'s waiter can then
      // only observe live_ == 0 after this broadcast has completed, so
      // the pool (and this condition variable) is safe to destroy the
      // moment stop() returns — even with detached stragglers exiting.
      exited_.notify_all();
    }
  }

  BoundedQueue<Job>& queue_;
  std::function<void(Job&)> run_;
  std::function<void(Job&, std::exception_ptr)> crash_;

  mutable std::mutex mutex_;
  std::condition_variable exited_;
  std::vector<Slot> slots_;
  /// Workers spawned but not yet exited, joined *or* detached; stop()
  /// waits for zero so detached stragglers cannot outlive the pool.
  std::size_t live_ = 0;

  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> replaced_{0};

  inline static thread_local unsigned tls_slot_ = kNoSlot;
};

}  // namespace steersim::svc
