// Persistent, restartable worker pool (docs/SERVICE.md).
//
// Generalizes sim/sweep.hpp's one-shot parallel_map: where parallel_map
// spawns jthreads for a fixed job vector and joins, WorkerPool keeps N
// threads looping over a BoundedQueue for the lifetime of the service.
// stop() closes the queue, lets the workers drain every queued job
// (graceful shutdown), and joins; start() after stop() reopens the queue
// and spins up a fresh generation of threads.
//
// Job exceptions are the worker's own bug to surface, not the pool's to
// re-throw after the fact (there is no caller left to receive them, unlike
// parallel_map): run() callbacks must catch at the job boundary — the
// service turns them into error replies. An escaping exception would
// std::terminate via jthread, which is the correct loud failure for a
// server with a broken job wrapper.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "svc/queue.hpp"

namespace steersim::svc {

template <typename Job>
class WorkerPool {
 public:
  /// `run` executes one dequeued job; invoked concurrently from every
  /// worker thread, so it must only touch synchronized state.
  template <typename Run>
  WorkerPool(BoundedQueue<Job>& queue, Run run)
      : queue_(queue), run_(std::move(run)) {}

  ~WorkerPool() { stop(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spins up `workers` threads (>= 1 enforced). No-op when running.
  void start(unsigned workers) {
    STEERSIM_EXPECTS(workers >= 1);
    if (running()) {
      return;
    }
    queue_.reopen();
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      threads_.emplace_back([this] {
        while (auto job = queue_.pop()) {
          run_(*job);
        }
      });
    }
  }

  /// Graceful shutdown: close the queue, drain every queued job, join.
  /// Safe to call repeatedly; start() afterwards restarts the pool.
  void stop() {
    if (!running()) {
      return;
    }
    queue_.close();
    threads_.clear();  // jthread joins
  }

  bool running() const { return !threads_.empty(); }
  unsigned workers() const {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  BoundedQueue<Job>& queue_;
  std::function<void(Job&)> run_;
  std::vector<std::jthread> threads_;
};

}  // namespace steersim::svc
