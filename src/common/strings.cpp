#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <system_error>

#include "common/contracts.hpp"

namespace steersim {

std::string format_double(double value, int precision) {
  STEERSIM_EXPECTS(precision >= 0 && precision <= 17);
  if (std::isnan(value)) {
    return "-";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::optional<std::uint64_t> parse_positive_u64(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;  // would overflow 64 bits
    }
    value = value * 10 + digit;
  }
  if (value == 0) {
    return std::nullopt;
  }
  return value;
}

std::string pad(std::string_view text, int width) {
  const bool left_pad = width >= 0;
  const auto target = static_cast<std::size_t>(left_pad ? width : -width);
  if (text.size() >= target) {
    return std::string(text);
  }
  std::string spaces(target - text.size(), ' ');
  return left_pad ? spaces + std::string(text) : std::string(text) + spaces;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return std::isnan(value) ? "\"nan\"" : (value > 0 ? "\"inf\"" : "\"-inf\"");
  }
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  // std::to_chars with explicit precision renders exactly like printf
  // "%.17g" in the "C" locale, but is locale-independent: canonical
  // renderings (and the FNV-1a digests over them) stay byte-identical
  // even when the process sets a comma-decimal global locale.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value,
                                       std::chars_format::general, 17);
  STEERSIM_ENSURES(ec == std::errc{});
  return std::string(buf, ptr);
}

std::string format_bits(std::uint64_t value, unsigned bits) {
  STEERSIM_EXPECTS(bits >= 1 && bits <= 64);
  std::string out(bits, '0');
  for (unsigned i = 0; i < bits; ++i) {
    if ((value >> i) & 1u) {
      out[bits - 1 - i] = '1';
    }
  }
  return out;
}

}  // namespace steersim
