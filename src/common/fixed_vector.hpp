// Fixed-capacity inline vector (no heap allocation).
//
// Pipeline stage buffers (fetch buffer, decode buffer, retire batch) have
// small compile-time capacities; FixedVector keeps them on the owning
// structure so per-cycle simulation does no allocation.
#pragma once

#include <array>
#include <cstddef>
#include <utility>

#include "common/contracts.hpp"

namespace steersim {

template <typename T, std::size_t Capacity>
class FixedVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr FixedVector() = default;

  constexpr std::size_t size() const { return size_; }
  static constexpr std::size_t capacity() { return Capacity; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr bool full() const { return size_ == Capacity; }

  constexpr void push_back(const T& value) {
    STEERSIM_EXPECTS(!full());
    items_[size_++] = value;
  }
  constexpr void push_back(T&& value) {
    STEERSIM_EXPECTS(!full());
    items_[size_++] = std::move(value);
  }
  constexpr void pop_back() {
    STEERSIM_EXPECTS(!empty());
    --size_;
  }
  constexpr void clear() { size_ = 0; }

  /// Removes the first `n` elements, shifting the rest down (keeps order).
  constexpr void erase_front(std::size_t n) {
    STEERSIM_EXPECTS(n <= size_);
    for (std::size_t i = n; i < size_; ++i) {
      items_[i - n] = std::move(items_[i]);
    }
    size_ -= n;
  }

  constexpr T& operator[](std::size_t i) {
    STEERSIM_EXPECTS(i < size_);
    return items_[i];
  }
  constexpr const T& operator[](std::size_t i) const {
    STEERSIM_EXPECTS(i < size_);
    return items_[i];
  }
  constexpr T& front() { return (*this)[0]; }
  constexpr const T& front() const { return (*this)[0]; }
  constexpr T& back() { return (*this)[size_ - 1]; }
  constexpr const T& back() const { return (*this)[size_ - 1]; }

  constexpr iterator begin() { return items_.data(); }
  constexpr iterator end() { return items_.data() + size_; }
  constexpr const_iterator begin() const { return items_.data(); }
  constexpr const_iterator end() const { return items_.data() + size_; }

  friend constexpr bool operator==(const FixedVector& a,
                                   const FixedVector& b) {
    if (a.size_ != b.size_) {
      return false;
    }
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.items_[i] == b.items_[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  std::array<T, Capacity> items_{};
  std::size_t size_ = 0;
};

}  // namespace steersim
