// Tiny string-formatting helpers shared by the table printer, the
// disassembler and the repro binaries. Kept deliberately minimal; anything
// fancier should go through Table/Csv in src/sim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace steersim {

/// Fixed-precision decimal rendering ("3.14"); no locale, no scientific.
/// NaN renders as "-" so empty statistics are visibly empty in reports.
std::string format_double(double value, int precision);

/// Strict positive-decimal parse for environment/CLI knobs: accepts only
/// pure decimal digit strings whose value is > 0 and fits in 64 bits.
/// Signs ("-1" would wrap through strtoull), whitespace, hex, exponents
/// and overflow all yield nullopt.
std::optional<std::uint64_t> parse_positive_u64(std::string_view text);

/// Left-pads (or right-pads if width < 0) to |width| columns with spaces.
std::string pad(std::string_view text, int width);

/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Renders a bit pattern LSB-last ("0b101" style without the prefix),
/// exactly `bits` characters wide.
std::string format_bits(std::uint64_t value, unsigned bits);

/// Appends `text` to `out` escaped for use inside a JSON string literal
/// (quotes, backslashes, control bytes). Shared by the tracer, the metric
/// registry and the bench-report writer.
void append_json_escaped(std::string& out, std::string_view text);

/// Renders a double as a JSON value: integral values without a fraction,
/// others via %.17g round-trip precision, non-finite as a quoted string
/// (JSON has no NaN/Inf literals).
std::string json_number(double value);

}  // namespace steersim
