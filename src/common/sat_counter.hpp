// N-bit saturating up/down counter (branch-predictor building block).
#pragma once

#include <cstdint>

#include "common/contracts.hpp"

namespace steersim {

class SatCounter {
 public:
  /// `bits` in [1,8]; `initial` must fit in `bits`.
  constexpr explicit SatCounter(unsigned bits = 2, std::uint8_t initial = 1)
      : max_(static_cast<std::uint8_t>((1u << bits) - 1)), value_(initial) {
    STEERSIM_EXPECTS(bits >= 1 && bits <= 8);
    STEERSIM_EXPECTS(initial <= max_);
  }

  constexpr void increment() {
    if (value_ < max_) {
      ++value_;
    }
  }
  constexpr void decrement() {
    if (value_ > 0) {
      --value_;
    }
  }
  constexpr void update(bool taken) { taken ? increment() : decrement(); }

  /// Predicts taken when the counter is in its upper half.
  constexpr bool predict_taken() const { return value_ > max_ / 2; }
  constexpr std::uint8_t value() const { return value_; }

 private:
  std::uint8_t max_;
  std::uint8_t value_;
};

}  // namespace steersim
