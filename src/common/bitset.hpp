// Small fixed-capacity bitset backed by a single machine word.
//
// The hardware structures in this project (one-hot unit-decoder outputs,
// wake-up array rows, resource allocation diffs) are all narrow bit vectors
// with at most a few dozen bits; SmallBitset keeps them in one uint64_t so
// the bit-level circuit models stay branch-free and cheap to copy.
#pragma once

#include <bit>
#include <cstdint>

#include "common/contracts.hpp"

namespace steersim {

template <unsigned N>
  requires(N >= 1 && N <= 64)
class SmallBitset {
 public:
  constexpr SmallBitset() = default;

  /// Constructs from a raw word; bits above N-1 must be clear.
  constexpr explicit SmallBitset(std::uint64_t raw) : bits_(raw) {
    STEERSIM_EXPECTS((raw & ~mask()) == 0);
  }

  static constexpr unsigned capacity() { return N; }

  constexpr bool test(unsigned i) const {
    STEERSIM_EXPECTS(i < N);
    return (bits_ >> i) & 1u;
  }
  constexpr void set(unsigned i, bool value = true) {
    STEERSIM_EXPECTS(i < N);
    if (value) {
      bits_ |= (std::uint64_t{1} << i);
    } else {
      bits_ &= ~(std::uint64_t{1} << i);
    }
  }
  constexpr void reset(unsigned i) { set(i, false); }
  constexpr void clear() { bits_ = 0; }

  constexpr bool any() const { return bits_ != 0; }
  constexpr bool none() const { return bits_ == 0; }
  constexpr unsigned count() const {
    return static_cast<unsigned>(std::popcount(bits_));
  }
  /// Index of the lowest set bit; requires any().
  constexpr unsigned lowest() const {
    STEERSIM_EXPECTS(any());
    return static_cast<unsigned>(std::countr_zero(bits_));
  }

  constexpr std::uint64_t raw() const { return bits_; }

  friend constexpr SmallBitset operator&(SmallBitset a, SmallBitset b) {
    return SmallBitset(a.bits_ & b.bits_);
  }
  friend constexpr SmallBitset operator|(SmallBitset a, SmallBitset b) {
    return SmallBitset(a.bits_ | b.bits_);
  }
  friend constexpr SmallBitset operator^(SmallBitset a, SmallBitset b) {
    return SmallBitset(a.bits_ ^ b.bits_);
  }
  constexpr SmallBitset operator~() const {
    return SmallBitset(~bits_ & mask());
  }
  constexpr SmallBitset& operator|=(SmallBitset other) {
    bits_ |= other.bits_;
    return *this;
  }
  constexpr SmallBitset& operator&=(SmallBitset other) {
    bits_ &= other.bits_;
    return *this;
  }
  friend constexpr bool operator==(SmallBitset, SmallBitset) = default;

 private:
  static constexpr std::uint64_t mask() {
    return N == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << N) - 1);
  }
  std::uint64_t bits_ = 0;
};

}  // namespace steersim
