#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace steersim {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  STEERSIM_EXPECTS(hi > lo);
  STEERSIM_EXPECTS(buckets >= 1);
}

void Histogram::add(double x) {
  // A NaN sample has no bucket; converting it to an integer index would be
  // undefined behavior. Drop it, visibly.
  if (std::isnan(x)) {
    ++nan_samples_;
    return;
  }
  std::size_t idx;
  if (x <= lo_) {
    idx = 0;  // below-range and -inf clamp to the first bucket
  } else if (x >= hi_) {
    idx = counts_.size() - 1;  // above-range and +inf clamp to the last
  } else {
    // In-range and finite: the scaled position is in [0, buckets), so the
    // integer conversion is well defined; min() guards the x ≈ hi_ edge
    // where rounding could land exactly on buckets.
    const double span = hi_ - lo_;
    const double pos =
        (x - lo_) / span * static_cast<double>(counts_.size());
    idx = std::min(counts_.size() - 1, static_cast<std::size_t>(pos));
  }
  ++counts_[idx];
  ++total_;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  STEERSIM_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  STEERSIM_EXPECTS(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::quantile(double p) const {
  STEERSIM_EXPECTS(p >= 0.0 && p <= 1.0);
  if (total_ == 0) {
    return lo_;
  }
  // Clamp the target rank to the last sample so p = 1.0 resolves to the
  // top *occupied* bucket's lower edge (hi_ is not a sample location).
  const auto target = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(p * static_cast<double>(total_)),
      total_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      return bucket_lo(i);
    }
  }
  return hi_;
}

std::string Histogram::to_string(int width) const {
  std::string out;
  std::uint64_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out += format_double(bucket_lo(i), 2);
    out += " | ";
    out.append(bar, '#');
    out += " ";
    out += std::to_string(counts_[i]);
    out += "\n";
  }
  return out;
}

}  // namespace steersim
