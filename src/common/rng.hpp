// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic behaviour in the simulator and workload generator flows
// through seeded Xoshiro256 instances so every experiment is reproducible
// bit-for-bit; std::mt19937 is avoided because its state is bulky and its
// distributions are not portable across standard libraries.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"

namespace steersim {

class Xoshiro256 {
 public:
  constexpr explicit Xoshiro256(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    STEERSIM_EXPECTS(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t value = next();
    while (value >= limit) {
      value = next();
    }
    return value % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  constexpr bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace steersim
