// Streaming statistics helpers used by the experiment harness.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace steersim {

/// Welford streaming mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  /// NaN when no sample was added: an empty stat must not read as a real
  /// 0.0 sample in reports (format_double renders NaN as "-").
  double min() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples (infinities
/// included) clamp to the end buckets so totals always balance. NaN
/// samples are dropped deterministically and counted in nan_samples().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t total() const { return total_; }
  /// NaN samples seen by add(); never part of total() or any bucket.
  std::uint64_t nan_samples() const { return nan_samples_; }
  std::uint64_t bucket_count(std::size_t i) const;
  std::size_t buckets() const { return counts_.size(); }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(std::size_t i) const;
  /// p in [0,1]; returns the lower edge of the bucket holding that
  /// quantile (for p = 1.0, the top occupied bucket).
  double quantile(double p) const;
  std::string to_string(int width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_samples_ = 0;
};

}  // namespace steersim
