#include "common/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace steersim {

void contract_violation(const char* kind, const char* expr, const char* file,
                        int line) {
  std::fprintf(stderr, "steersim: %s violation: %s at %s:%d\n", kind, expr,
               file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace steersim
