// Contract-checking macros in the spirit of the C++ Core Guidelines GSL
// Expects/Ensures. Violations indicate programming errors inside the
// simulator (never bad user input) and abort with a diagnostic.
#pragma once

namespace steersim {

/// Invoked on contract violation; prints the diagnostic and aborts.
/// Separated out so the macro expansion stays tiny and cold.
[[noreturn]] void contract_violation(const char* kind, const char* expr,
                                     const char* file, int line);

}  // namespace steersim

#define STEERSIM_EXPECTS(cond)                                              \
  do {                                                                      \
    if (!(cond)) [[unlikely]]                                               \
      ::steersim::contract_violation("Expects", #cond, __FILE__, __LINE__); \
  } while (false)

#define STEERSIM_ENSURES(cond)                                              \
  do {                                                                      \
    if (!(cond)) [[unlikely]]                                               \
      ::steersim::contract_violation("Ensures", #cond, __FILE__, __LINE__); \
  } while (false)

#define STEERSIM_UNREACHABLE(msg)                                         \
  ::steersim::contract_violation("Unreachable", msg, __FILE__, __LINE__)
