// Configuration-port arbitration for the multi-core shared fabric
// (docs/DESIGN.md §Multi-core shared fabric).
//
// N cores share one RFU slot pool and — like the single-core machine —
// exactly one configuration write port. Each core's ConfigurationLoader
// asks the arbiter for the port at the moment it would begin a rewrite;
// the arbiter serializes competing requests. A core that wins keeps the
// port until its loader drains idle, so one core's multi-cycle region
// rewrite is never interleaved with another's (an ICAP cannot switch
// masters mid-frame). Waiters are queued and re-granted by policy:
//
//   round-robin  — rotate among waiting cores from the last grant
//   priority     — lowest core index first (static priority)
//   prop-share   — round-robin port + periodic quota repartitioning of
//                  the slot pool proportional to per-core CEM demand
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "config/loader.hpp"

namespace steersim {

enum class ArbiterKind : std::uint8_t {
  kRoundRobin,
  kPriority,
  kPropShare,
};

/// Canonical policy label ("round-robin" | "priority" | "prop-share").
std::string_view arbiter_name(ArbiterKind kind);
/// Parses an arbiter_name() label; returns false on an unknown name.
bool parse_arbiter(const std::string& name, ArbiterKind& kind);
/// The full roster, for benches and tests.
std::vector<ArbiterKind> all_arbiters();

/// Fabric-level contention counters (per-core counters stay in each
/// core's own LoaderStats: port_denied_cycles, quota_evictions).
struct FabricStats {
  std::uint64_t cycles = 0;             ///< lockstep rounds stepped
  std::uint64_t port_grants = 0;        ///< port handovers to a core
  std::uint64_t port_denials = 0;       ///< acquire() calls refused
  std::uint64_t port_busy_cycles = 0;   ///< cycles some core held the port
  std::uint64_t repartitions = 0;       ///< prop-share quota recomputes
  std::uint64_t steal_events = 0;       ///< slots that changed owning core
  std::uint64_t quota_evictions = 0;    ///< units evicted by repartitions
  std::uint64_t slot_cycles_used = 0;   ///< Σ configured slots per cycle
  std::uint64_t slot_cycles_total = 0;  ///< num_slots * cycles
  std::uint64_t total_retired = 0;      ///< Σ per-core committed (collect)
  /// Port wait time of every granted-after-waiting request, in cycles.
  RunningStat grant_latency;

  template <typename V>
  void visit_metrics(V&& visit) const {
    visit("cycles", static_cast<double>(cycles));
    visit("port_grants", static_cast<double>(port_grants));
    visit("port_denials", static_cast<double>(port_denials));
    visit("port_busy_cycles", static_cast<double>(port_busy_cycles));
    visit("repartitions", static_cast<double>(repartitions));
    visit("steal_events", static_cast<double>(steal_events));
    visit("quota_evictions", static_cast<double>(quota_evictions));
    visit("slot_cycles_used", static_cast<double>(slot_cycles_used));
    visit("slot_cycles_total", static_cast<double>(slot_cycles_total));
    visit("total_retired", static_cast<double>(total_retired));
    if (slot_cycles_total > 0) {
      visit("utilization", static_cast<double>(slot_cycles_used) /
                               static_cast<double>(slot_cycles_total),
            true);
    }
    if (grant_latency.count() > 0) {
      visit("grant_latency_mean", grant_latency.mean(), true);
      visit("grant_latency_max", grant_latency.max(), true);
    }
  }
};

/// The shared-port state machine. Within a cycle, cores step in index
/// order and ask acquire() when they want to start rewrites; across
/// cycles, begin_cycle() releases a drained holder and pre-grants the
/// port to a waiting core chosen by policy — waiters therefore always
/// beat fresh same-cycle claimants, which is what makes the policies
/// meaningfully different under sustained contention.
class Arbiter final : public ConfigPortArbiter {
 public:
  Arbiter(ArbiterKind kind, unsigned num_cores, FabricStats& stats);

  /// ConfigPortArbiter: true if `core` holds (or just claimed) the port.
  bool acquire(unsigned core) override;

  /// Top-of-cycle bookkeeping: `idle_mask` bit k set means core k's
  /// loader is idle (no rewrite in flight). Releases a drained holder,
  /// then grants a waiting core by policy.
  void begin_cycle(std::uint64_t cycle, std::uint64_t idle_mask);

  /// Holding core index, or -1 when the port is free.
  int holder() const { return holder_; }
  ArbiterKind kind() const { return kind_; }

 private:
  /// Next waiting core by policy; requires waiting_ != 0.
  unsigned pick_waiter() const;

  ArbiterKind kind_;
  unsigned num_cores_;
  FabricStats& stats_;
  int holder_ = -1;
  unsigned last_granted_ = 0;  ///< rotation anchor (round-robin)
  std::uint64_t waiting_ = 0;  ///< bit k: core k denied while port held
  std::uint64_t cycle_ = 0;
  std::vector<std::uint64_t> wait_start_;  ///< first denial cycle per core
};

}  // namespace steersim
