#include "multicore/multicore.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace steersim {
namespace {

/// Mirrors Processor::run()'s no-retirement stall limit: the lockstep
/// driver cannot reuse run() (rounds interleave cores), so it re-applies
/// the same cutoff per core.
constexpr std::uint64_t kStallLimit = 100'000;

}  // namespace

MultiCoreSim::MultiCoreSim(std::vector<CoreSpec> specs,
                           const MultiCoreParams& params)
    : params_(params) {
  STEERSIM_EXPECTS(!specs.empty());
  const unsigned n = static_cast<unsigned>(specs.size());
  const bool split_trace = params_.machine.trace.enabled && n > 1;
  fabric_ = std::make_unique<SharedFabric>(
      n, params_.machine.loader.num_slots,
      FabricParams{params_.arbiter, params_.repartition_interval});
  for (unsigned core = 0; core < n; ++core) {
    MachineConfig cfg = params_.machine;
    if (split_trace) {
      cfg.trace.path += ".core" + std::to_string(core);
      cfg.trace.pid = core;
    }
    policies_.push_back(specs[core].policy);
    cores_.push_back(
        make_processor(specs[core].program, cfg, specs[core].policy));
    fabric_->attach(core, *cores_.back());
    core_ptrs_.push_back(cores_.back().get());
  }
  if (split_trace) {
    TraceConfig fabric_trace = params_.machine.trace;
    fabric_trace.path += ".fabric";
    fabric_trace.pid = n;
    fabric_tracer_ = std::make_unique<Tracer>(fabric_trace);
    fabric_->set_tracer(fabric_tracer_.get());
  }
  outcome_.assign(n, RunOutcome::kMaxCycles);
  finished_.assign(n, false);
  last_retired_.assign(n, 0);
  stall_window_.assign(n, 0);
  live_ = n;
}

void MultiCoreSim::finish_core(unsigned k, RunOutcome outcome) {
  finished_[k] = true;
  outcome_[k] = outcome;
  cores_[k]->flush_sampler();
  STEERSIM_ENSURES(live_ > 0);
  --live_;
}

bool MultiCoreSim::done() const { return live_ == 0; }

RunOutcome MultiCoreSim::run(std::uint64_t max_cycles) {
  const std::span<Processor* const> cores(core_ptrs_);
  while (live_ > 0 && cycle_ < max_cycles) {
    fabric_->begin_cycle(cycle_, cores);
    for (unsigned k = 0; k < cores_.size(); ++k) {
      if (finished_[k]) {
        continue;
      }
      Processor& cpu = *cores_[k];
      cpu.step();
      if (cpu.halted()) {
        finish_core(k, RunOutcome::kHalted);
      } else if (cpu.faulted()) {
        finish_core(k, RunOutcome::kFault);
      } else if (cpu.stats().retired == last_retired_[k]) {
        if (++stall_window_[k] >= kStallLimit) {
          finish_core(k, RunOutcome::kStalled);
        }
      } else {
        last_retired_[k] = cpu.stats().retired;
        stall_window_[k] = 0;
      }
    }
    fabric_->end_cycle(cores);
    ++cycle_;
  }
  if (live_ > 0) {
    return RunOutcome::kMaxCycles;
  }
  RunOutcome worst = RunOutcome::kHalted;
  for (const RunOutcome outcome : outcome_) {
    if (outcome == RunOutcome::kFault) {
      return RunOutcome::kFault;
    }
    if (outcome == RunOutcome::kStalled) {
      worst = RunOutcome::kStalled;
    }
  }
  return worst;
}

MultiCoreResult MultiCoreSim::collect() {
  MultiCoreResult result;
  result.cycles = cycle_;
  std::uint64_t total_retired = 0;
  for (unsigned k = 0; k < cores_.size(); ++k) {
    cores_[k]->flush_sampler();
    result.cores.push_back(collect_result(
        *cores_[k], policies_[k],
        finished_[k] ? outcome_[k] : RunOutcome::kMaxCycles));
    total_retired += cores_[k]->stats().retired;
  }
  result.fabric = fabric_->stats();
  result.fabric.total_retired = total_retired;
  merge_traces();
  return result;
}

void MultiCoreSim::merge_traces() {
  if (traces_merged_ || !params_.machine.trace.enabled ||
      cores_.size() < 2) {
    return;
  }
  traces_merged_ = true;
  std::vector<std::string> parts;
  for (unsigned k = 0; k < cores_.size(); ++k) {
    if (cores_[k]->tracer() != nullptr) {
      cores_[k]->tracer()->close();
    }
    parts.push_back(params_.machine.trace.path + ".core" +
                    std::to_string(k));
  }
  if (fabric_tracer_ != nullptr) {
    fabric_tracer_->close();
    parts.push_back(params_.machine.trace.path + ".fabric");
  }
  std::ofstream out(params_.machine.trace.path);
  if (!out.good()) {
    return;  // same degrade-to-null contract as the Tracer itself
  }
  out << "{\"traceEvents\":[\n";
  bool first = true;
  constexpr std::string_view kPrefix = "{\"traceEvents\":[\n";
  constexpr std::string_view kSuffix = "\n]}";
  for (const std::string& part : parts) {
    std::ifstream in(part);
    if (!in.good()) {
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = std::move(buf).str();
    const std::size_t start = text.find(kPrefix);
    const std::size_t end = text.rfind(kSuffix);
    if (start == std::string::npos || end == std::string::npos ||
        start + kPrefix.size() > end) {
      continue;
    }
    const std::string_view events =
        std::string_view(text).substr(start + kPrefix.size(),
                                      end - start - kPrefix.size());
    if (!events.empty()) {
      if (!first) {
        out << ",\n";
      }
      out << events;
      first = false;
    }
    in.close();
    std::remove(part.c_str());
  }
  out << "\n]}\n";
}

MetricRegistry collect_multicore_metrics(const MultiCoreResult& result) {
  MetricRegistry reg;
  for (std::size_t k = 0; k < result.cores.size(); ++k) {
    collect_metrics_into(reg, result.cores[k],
                         "core" + std::to_string(k) + ".");
  }
  result.fabric.visit_metrics(reg.prefixed("fabric."));
  return reg;
}

}  // namespace steersim
