// The shared reconfigurable fabric (docs/DESIGN.md §Multi-core shared
// fabric): one slot pool and one configuration write port, shared by N
// cores. The fabric owns the Arbiter, partitions the pool into per-core
// quotas (static equal spans; prop-share repartitions them periodically
// by demand), and accumulates fabric-level contention and utilization
// statistics. With one core attached everything degenerates to the
// single-core machine bit-for-bit: the quota is the whole pool and the
// port is always granted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/processor.hpp"
#include "multicore/arbiter.hpp"

namespace steersim {

struct FabricParams {
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  /// prop-share: cycles between demand-driven quota repartitions.
  unsigned repartition_interval = 64;
};

class SharedFabric {
 public:
  /// `num_slots` is the pool size every attached core's loader was built
  /// with. Requires num_cores <= num_slots (every core gets >= 1 slot).
  SharedFabric(unsigned num_cores, unsigned num_slots,
               const FabricParams& params);

  /// Wires core `k`'s loader to the shared port and installs its initial
  /// quota. Single-core fabrics leave the quota untouched (identity).
  void attach(unsigned core, Processor& cpu);

  /// Top of a lockstep round, before any core steps: releases/regrants
  /// the port and, under prop-share, repartitions quotas on schedule.
  void begin_cycle(std::uint64_t cycle, std::span<Processor* const> cores);

  /// Bottom of a lockstep round: accumulates slot utilization.
  void end_cycle(std::span<Processor* const> cores);

  const FabricStats& stats() const { return stats_; }
  FabricStats& stats() { return stats_; }
  const Arbiter& arbiter() const { return arbiter_; }
  SlotMask quota_of(unsigned core) const { return quota_[core]; }

  /// Optional arbitration tracer (lane kArbiterLane): grant handovers,
  /// repartitions and steal counts as instant events. Never owns.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Fabric trace lane index (the fabric's tracer is its own file/pid,
  /// so the lane namespace is private to it).
  static constexpr unsigned kArbiterLane = 0;

 private:
  /// Contiguous equal partition: core k's span of the pool, remainder
  /// slots going to the lowest-indexed cores.
  SlotMask equal_partition(unsigned core) const;
  void repartition(std::uint64_t cycle, std::span<Processor* const> cores);

  unsigned num_cores_;
  unsigned num_slots_;
  FabricParams params_;
  FabricStats stats_;
  Arbiter arbiter_;
  std::vector<SlotMask> quota_;
  int traced_holder_ = -1;  ///< last holder emitted to the trace
  Tracer* tracer_ = nullptr;
};

}  // namespace steersim
