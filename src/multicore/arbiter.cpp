#include "multicore/arbiter.hpp"

#include <bit>

#include "common/contracts.hpp"

namespace steersim {

std::string_view arbiter_name(ArbiterKind kind) {
  switch (kind) {
    case ArbiterKind::kRoundRobin:
      return "round-robin";
    case ArbiterKind::kPriority:
      return "priority";
    case ArbiterKind::kPropShare:
      return "prop-share";
  }
  return "?";
}

bool parse_arbiter(const std::string& name, ArbiterKind& kind) {
  for (const ArbiterKind candidate : all_arbiters()) {
    if (name == arbiter_name(candidate)) {
      kind = candidate;
      return true;
    }
  }
  return false;
}

std::vector<ArbiterKind> all_arbiters() {
  return {ArbiterKind::kRoundRobin, ArbiterKind::kPriority,
          ArbiterKind::kPropShare};
}

Arbiter::Arbiter(ArbiterKind kind, unsigned num_cores, FabricStats& stats)
    : kind_(kind), num_cores_(num_cores), stats_(stats),
      wait_start_(num_cores, 0) {
  STEERSIM_EXPECTS(num_cores >= 1 && num_cores <= 64);
}

unsigned Arbiter::pick_waiter() const {
  STEERSIM_EXPECTS(waiting_ != 0);
  if (kind_ == ArbiterKind::kPriority) {
    return static_cast<unsigned>(std::countr_zero(waiting_));
  }
  // Round-robin (prop-share shares the port policy; its fairness lever is
  // the quota repartition): first waiter scanning from last_granted_ + 1.
  for (unsigned off = 1; off <= num_cores_; ++off) {
    const unsigned core = (last_granted_ + off) % num_cores_;
    if ((waiting_ >> core) & 1u) {
      return core;
    }
  }
  STEERSIM_UNREACHABLE("waiting mask empty");
}

void Arbiter::begin_cycle(std::uint64_t cycle, std::uint64_t idle_mask) {
  cycle_ = cycle;
  if (holder_ >= 0 && ((idle_mask >> holder_) & 1u)) {
    holder_ = -1;  // drained: rewrites done, port freed
  }
  if (holder_ < 0 && waiting_ != 0) {
    const unsigned next = pick_waiter();
    waiting_ &= ~(std::uint64_t{1} << next);
    holder_ = static_cast<int>(next);
    last_granted_ = next;
    ++stats_.port_grants;
    stats_.grant_latency.add(static_cast<double>(cycle_ -
                                                 wait_start_[next]));
  }
  if (holder_ >= 0) {
    ++stats_.port_busy_cycles;
  }
}

bool Arbiter::acquire(unsigned core) {
  STEERSIM_EXPECTS(core < num_cores_);
  if (holder_ == static_cast<int>(core)) {
    return true;
  }
  if (holder_ < 0) {
    holder_ = static_cast<int>(core);
    last_granted_ = core;
    ++stats_.port_grants;
    return true;
  }
  if (((waiting_ >> core) & 1u) == 0) {
    waiting_ |= std::uint64_t{1} << core;
    wait_start_[core] = cycle_;
  }
  ++stats_.port_denials;
  return false;
}

}  // namespace steersim
