// Lockstep multi-core simulation against one shared fabric
// (docs/DESIGN.md §Multi-core shared fabric, EXPERIMENTS.md E23).
//
// MultiCoreSim steps N independent Processor instances in lockstep
// rounds — every live core advances exactly one cycle per round, in core
// order — while their ConfigurationLoaders contend for the SharedFabric's
// single write port and per-core slot quotas. Per-core semantics are the
// single-core machine's own: with one core attached, a MultiCoreSim run
// is bit-identical to Processor::run() (cosim-gated in
// tests/test_multicore.cpp and bench_multicore's self-check).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "multicore/fabric.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"

namespace steersim {

/// One core's workload assignment: a program plus its steering policy.
struct CoreSpec {
  Program program;
  PolicySpec policy;
};

struct MultiCoreParams {
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  /// prop-share quota repartition cadence (cycles).
  unsigned repartition_interval = 64;
  /// Per-core machine template. With tracing enabled, core k writes
  /// `trace.path + ".coreK"` under pid k and the fabric writes
  /// `trace.path + ".fabric"` under pid N; collect() merges every part
  /// into `trace.path` as one Chrome trace document (single-core runs
  /// keep the plain single-file behaviour).
  MachineConfig machine;
};

struct MultiCoreResult {
  /// Per-core statistics bundles, index = core id. Each carries its own
  /// RunOutcome (cores finish independently).
  std::vector<SimResult> cores;
  FabricStats fabric;
  std::uint64_t cycles = 0;  ///< lockstep rounds driven
};

class MultiCoreSim {
 public:
  MultiCoreSim(std::vector<CoreSpec> specs, const MultiCoreParams& params);

  /// Runs lockstep rounds until every core finished or the absolute
  /// cycle target is reached (resumable — the service's cancellation
  /// windows call this repeatedly with growing targets). Returns
  /// kMaxCycles while cores remain live, else the worst per-core
  /// terminal outcome (fault > stall > halt).
  RunOutcome run(std::uint64_t max_cycles);

  bool done() const;
  std::uint64_t cycles() const { return cycle_; }
  unsigned num_cores() const {
    return static_cast<unsigned>(cores_.size());
  }
  Processor& core(unsigned k) { return *cores_[k]; }
  const Processor& core(unsigned k) const { return *cores_[k]; }
  RunOutcome core_outcome(unsigned k) const { return outcome_[k]; }
  const SharedFabric& fabric() const { return *fabric_; }

  /// Gathers every core's SimResult plus fabric statistics; flushes
  /// samplers and, when tracing, closes and merges the per-core trace
  /// parts. Idempotent trace-wise (the merge happens once).
  MultiCoreResult collect();

 private:
  void finish_core(unsigned k, RunOutcome outcome);
  void merge_traces();

  MultiCoreParams params_;
  std::vector<PolicySpec> policies_;
  std::vector<std::unique_ptr<Processor>> cores_;
  std::vector<Processor*> core_ptrs_;
  std::unique_ptr<SharedFabric> fabric_;
  std::unique_ptr<Tracer> fabric_tracer_;
  std::vector<RunOutcome> outcome_;
  std::vector<bool> finished_;
  std::vector<std::uint64_t> last_retired_;
  std::vector<std::uint64_t> stall_window_;
  unsigned live_ = 0;
  std::uint64_t cycle_ = 0;
  bool traces_merged_ = false;
};

/// Flat metric namespace of a multi-core result: every core's subsystems
/// under "coreK." (core0.sim.ipc, core1.loader.port_denied_cycles, ...)
/// plus the fabric's counters under "fabric.".
MetricRegistry collect_multicore_metrics(const MultiCoreResult& result);

}  // namespace steersim
