#include "multicore/fabric.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace steersim {

SharedFabric::SharedFabric(unsigned num_cores, unsigned num_slots,
                           const FabricParams& params)
    : num_cores_(num_cores), num_slots_(num_slots), params_(params),
      arbiter_(params.arbiter, num_cores, stats_),
      quota_(num_cores) {
  STEERSIM_EXPECTS(num_cores >= 1);
  STEERSIM_EXPECTS(num_slots >= num_cores);
  STEERSIM_EXPECTS(params.repartition_interval >= 1);
  for (unsigned core = 0; core < num_cores_; ++core) {
    quota_[core] = equal_partition(core);
  }
}

SlotMask SharedFabric::equal_partition(unsigned core) const {
  const unsigned base_share = num_slots_ / num_cores_;
  const unsigned remainder = num_slots_ % num_cores_;
  const unsigned share = base_share + (core < remainder ? 1 : 0);
  unsigned start = core * base_share + std::min(core, remainder);
  SlotMask mask;
  for (unsigned i = 0; i < share; ++i) {
    mask.set(start + i);
  }
  return mask;
}

void SharedFabric::attach(unsigned core, Processor& cpu) {
  STEERSIM_EXPECTS(core < num_cores_);
  STEERSIM_EXPECTS(cpu.loader().params().num_slots == num_slots_);
  cpu.loader().set_port_arbiter(&arbiter_, core);
  if (num_cores_ > 1) {
    stats_.quota_evictions += cpu.loader().set_quota(quota_[core]);
  }
}

void SharedFabric::begin_cycle(std::uint64_t cycle,
                               std::span<Processor* const> cores) {
  STEERSIM_EXPECTS(cores.size() == num_cores_);
  std::uint64_t idle_mask = 0;
  for (unsigned core = 0; core < num_cores_; ++core) {
    if (cores[core]->loader().idle()) {
      idle_mask |= std::uint64_t{1} << core;
    }
  }
  arbiter_.begin_cycle(cycle, idle_mask);
  if (tracer_ != nullptr && arbiter_.holder() != traced_holder_ &&
      tracer_->wants(trace_cat::kLoader, cycle)) {
    traced_holder_ = arbiter_.holder();
    tracer_->ensure_lane(kArbiterLane, "config port arbiter");
    TraceArgs args;
    args.num("holder", std::int64_t{traced_holder_});
    tracer_->instant(traced_holder_ < 0 ? "release" : "grant",
                     trace_cat::kLoader, kArbiterLane, cycle, args);
  }
  if (params_.arbiter == ArbiterKind::kPropShare && num_cores_ > 1 &&
      cycle > 0 && cycle % params_.repartition_interval == 0) {
    repartition(cycle, cores);
  }
}

void SharedFabric::repartition(std::uint64_t cycle,
                               std::span<Processor* const> cores) {
  // Demand = the requirement total of each core's ready set, +1 so an
  // idle core keeps a floor share and the weights never sum to zero.
  std::vector<std::uint64_t> weight(num_cores_);
  std::uint64_t total_weight = 0;
  for (unsigned core = 0; core < num_cores_; ++core) {
    weight[core] = fu_counts_total(cores[core]->ready_requirements()) + 1;
    total_weight += weight[core];
  }
  // Every core gets one slot; the rest go proportional to demand by
  // largest remainder (ties to the lower core index — deterministic).
  std::vector<unsigned> share(num_cores_, 1);
  unsigned assigned = num_cores_;
  const unsigned spare = num_slots_ - num_cores_;
  std::vector<std::uint64_t> scaled(num_cores_);
  for (unsigned core = 0; core < num_cores_; ++core) {
    scaled[core] = weight[core] * spare;
    const unsigned extra =
        static_cast<unsigned>(scaled[core] / total_weight);
    share[core] += extra;
    assigned += extra;
  }
  while (assigned < num_slots_) {
    unsigned best = 0;
    std::uint64_t best_rem = 0;
    for (unsigned core = 0; core < num_cores_; ++core) {
      const std::uint64_t rem = scaled[core] % total_weight;
      if (rem > best_rem) {
        best_rem = rem;
        best = core;
      }
    }
    scaled[best] = 0;  // consume its remainder
    ++share[best];
    ++assigned;
  }

  // Contiguous spans in core order; count slots whose owner changed.
  unsigned steals = 0;
  unsigned start = 0;
  std::vector<SlotMask> next(num_cores_);
  for (unsigned core = 0; core < num_cores_; ++core) {
    for (unsigned i = 0; i < share[core]; ++i) {
      next[core].set(start + i);
      if (!quota_[core].test(start + i)) {
        ++steals;
      }
    }
    start += share[core];
  }
  STEERSIM_ENSURES(start == num_slots_);
  bool changed = false;
  for (unsigned core = 0; core < num_cores_; ++core) {
    changed = changed || next[core] != quota_[core];
  }
  ++stats_.repartitions;
  if (!changed) {
    return;
  }
  stats_.steal_events += steals;
  for (unsigned core = 0; core < num_cores_; ++core) {
    quota_[core] = next[core];
    stats_.quota_evictions += cores[core]->loader().set_quota(next[core]);
  }
  if (tracer_ != nullptr && tracer_->wants(trace_cat::kLoader, cycle)) {
    tracer_->ensure_lane(kArbiterLane, "config port arbiter");
    TraceArgs args;
    args.num("steals", std::uint64_t{steals});
    for (unsigned core = 0; core < num_cores_; ++core) {
      args.num("core" + std::to_string(core),
               std::uint64_t{share[core]});
    }
    tracer_->instant("repartition", trace_cat::kLoader, kArbiterLane,
                     cycle, args);
  }
}

void SharedFabric::end_cycle(std::span<Processor* const> cores) {
  unsigned used = 0;
  for (const Processor* cpu : cores) {
    for (const auto& region : cpu->loader().allocation().regions()) {
      used += region.len;
    }
  }
  stats_.slot_cycles_used += used;
  stats_.slot_cycles_total += num_slots_;
  ++stats_.cycles;
}

}  // namespace steersim
