#include "obs/metrics.hpp"

#include <cmath>
#include <fstream>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace steersim {

void MetricRegistry::add(std::string name, double value, bool derived) {
  STEERSIM_EXPECTS(!name.empty());
  STEERSIM_EXPECTS(find(name) == nullptr);
  metrics_.push_back(Metric{std::move(name), value, derived});
}

const Metric* MetricRegistry::find(std::string_view name) const {
  for (const Metric& m : metrics_) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

std::string MetricRegistry::to_csv() const {
  std::string out = "metric,value\n";
  for (const Metric& m : metrics_) {
    out += m.name;
    out += ',';
    if (std::isnan(m.value)) {
      out += "nan";
    } else if (m.value == static_cast<double>(
                              static_cast<std::int64_t>(m.value)) &&
               std::abs(m.value) < 1e15) {
      // Counters render as integers, not "123.000000".
      out += std::to_string(static_cast<std::int64_t>(m.value));
    } else {
      out += format_double(m.value, 6);
    }
    out += '\n';
  }
  return out;
}

std::string MetricRegistry::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const Metric& m : metrics_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    append_json_escaped(out, m.name);
    out += "\":";
    out += json_number(m.value);
  }
  out += '}';
  return out;
}

void MetricRegistry::dump_csv(const std::string& path) const {
  std::ofstream out(path);
  STEERSIM_EXPECTS(out.good());
  out << to_csv();
  out.flush();
  STEERSIM_ENSURES(out.good());
}

}  // namespace steersim
