// Named-metric registry (docs/OBSERVABILITY.md).
//
// The statistics structs scattered through the machine (SimStats,
// LoaderStats, PolicyStats, ...) each expose a `visit_metrics(visitor)`
// member that enumerates (name, value) pairs once, next to the fields
// themselves. The registry collects those enumerations under per-subsystem
// prefixes so reports, CSV dumps and dashboards iterate one flat namespace
// instead of hand-listing fields that drift out of date.
// `collect_metrics(SimResult)` in sim/metrics.hpp does the collecting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace steersim {

struct Metric {
  std::string name;
  double value = 0.0;
  /// Derived metrics (rates, means, quantiles) are computed from counters
  /// rather than accumulated; interval consumers (obs/sampler.hpp) must not
  /// difference them across windows — a ratio's delta is meaningless.
  bool derived = false;
};

class MetricRegistry {
 public:
  /// Registers a metric; names must be unique (enforced).
  void add(std::string name, double value, bool derived = false);

  std::size_t size() const { return metrics_.size(); }
  bool empty() const { return metrics_.empty(); }
  const std::vector<Metric>& metrics() const { return metrics_; }

  /// nullptr when no metric has that name.
  const Metric* find(std::string_view name) const;

  /// "metric,value\n" rows with a header line.
  std::string to_csv() const;
  void dump_csv(const std::string& path) const;

  /// One flat JSON object, {"name": value, ...}; names are escaped, and
  /// non-finite values (JSON has no NaN/Inf literals) render as strings.
  std::string to_json() const;

  /// Visitor adapter: prefixes every visited name ("loader." + "scrub_reads")
  /// and registers it here. Pass to a stats struct's visit_metrics(); stats
  /// structs mark ratios/means by passing `derived = true` as a third
  /// argument (two-argument calls register plain counters).
  auto prefixed(std::string prefix) {
    return [this, prefix = std::move(prefix)](std::string_view name,
                                              double value,
                                              bool derived = false) {
      add(prefix + std::string(name), value, derived);
    };
  }

 private:
  std::vector<Metric> metrics_;
};

}  // namespace steersim
