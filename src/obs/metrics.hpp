// Named-metric registry (docs/OBSERVABILITY.md).
//
// The statistics structs scattered through the machine (SimStats,
// LoaderStats, PolicyStats, ...) each expose a `visit_metrics(visitor)`
// member that enumerates (name, value) pairs once, next to the fields
// themselves. The registry collects those enumerations under per-subsystem
// prefixes so reports, CSV dumps and dashboards iterate one flat namespace
// instead of hand-listing fields that drift out of date.
// `collect_metrics(SimResult)` in sim/metrics.hpp does the collecting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace steersim {

struct Metric {
  std::string name;
  double value = 0.0;
};

class MetricRegistry {
 public:
  /// Registers a metric; names must be unique (enforced).
  void add(std::string name, double value);

  std::size_t size() const { return metrics_.size(); }
  bool empty() const { return metrics_.empty(); }
  const std::vector<Metric>& metrics() const { return metrics_; }

  /// nullptr when no metric has that name.
  const Metric* find(std::string_view name) const;

  /// "metric,value\n" rows with a header line.
  std::string to_csv() const;
  void dump_csv(const std::string& path) const;

  /// Visitor adapter: prefixes every visited name ("loader." + "scrub_reads")
  /// and registers it here. Pass to a stats struct's visit_metrics().
  auto prefixed(std::string prefix) {
    return [this, prefix = std::move(prefix)](std::string_view name,
                                              double value) {
      add(prefix + std::string(name), value);
    };
  }

 private:
  std::vector<Metric> metrics_;
};

}  // namespace steersim
