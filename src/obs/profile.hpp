// Host-side wall-clock profiling (docs/OBSERVABILITY.md).
//
// Where does *simulator* time go? simulate() times its phases (processor
// construction, the run loop, statistics collection) with these helpers
// and reports them in SimResult::host, from which bench_sim_throughput
// derives simulated-cycles-per-second and KIPS. Host timings are about the
// simulator process, never the simulated machine: they have no effect on
// any simulated statistic.
#pragma once

#include <chrono>
#include <cstdint>

namespace steersim {

/// Wall-clock stopwatch (steady clock; immune to system time changes).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-phase wall-clock breakdown of one simulate() call.
struct HostProfile {
  double build_seconds = 0.0;    ///< processor construction
  double run_seconds = 0.0;      ///< the cycle loop
  double collect_seconds = 0.0;  ///< statistics gathering

  double total_seconds() const {
    return build_seconds + run_seconds + collect_seconds;
  }

  /// Simulated cycles per host second (0 when the run took no time).
  double cycles_per_sec(std::uint64_t cycles) const {
    return run_seconds <= 0.0
               ? 0.0
               : static_cast<double>(cycles) / run_seconds;
  }
  /// Simulated kilo-instructions (retired) per host second.
  double kips(std::uint64_t retired) const {
    return run_seconds <= 0.0
               ? 0.0
               : static_cast<double>(retired) / run_seconds / 1000.0;
  }
};

}  // namespace steersim
