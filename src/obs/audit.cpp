#include "obs/audit.hpp"

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace steersim {

std::string_view audit_intent_name(AuditIntent intent) {
  switch (intent) {
    case AuditIntent::kHold:
      return "hold";
    case AuditIntent::kRetarget:
      return "retarget";
    case AuditIntent::kAwaitConfirm:
      return "await-confirm";
  }
  return "?";
}

SteeringAuditLog::SteeringAuditLog(const AuditConfig& config)
    : config_(config) {
  if (!config_.csv_path.empty()) {
    csv_.open(config_.csv_path);
    STEERSIM_EXPECTS(csv_.good());
  }
}

SteeringAuditLog::~SteeringAuditLog() {
  if (csv_.is_open()) {
    csv_.flush();
  }
}

std::string SteeringAuditLog::csv_header(unsigned num_types,
                                         unsigned num_candidates) {
  STEERSIM_EXPECTS(num_types <= kAuditMaxTypes);
  STEERSIM_EXPECTS(num_candidates <= kAuditMaxCandidates);
  std::string header = "cycle";
  for (unsigned t = 0; t < num_types; ++t) {
    header += ",req" + std::to_string(t);
  }
  for (unsigned c = 0; c < num_candidates; ++c) {
    header += ",err" + std::to_string(c);
  }
  for (unsigned c = 0; c < num_candidates; ++c) {
    header += ",cost" + std::to_string(c);
  }
  header += ",selection,tie_broken,streak,confirm,intent";
  return header;
}

std::string SteeringAuditLog::csv_row(const AuditRecord& rec) {
  std::string row = std::to_string(rec.cycle);
  for (unsigned t = 0; t < rec.num_types; ++t) {
    row += ',' + std::to_string(rec.required[t]);
  }
  for (unsigned c = 0; c < rec.num_candidates; ++c) {
    row += ',' + format_double(rec.errors[c], 4);
  }
  for (unsigned c = 0; c < rec.num_candidates; ++c) {
    row += ',' + std::to_string(rec.costs[c]);
  }
  row += ',' + std::to_string(rec.selection);
  row += rec.tie_broken ? ",1" : ",0";
  row += ',' + std::to_string(rec.streak);
  row += ',' + std::to_string(rec.confirm);
  row += ',';
  row += audit_intent_name(rec.intent);
  return row;
}

void SteeringAuditLog::record(const AuditRecord& rec) {
  STEERSIM_EXPECTS(rec.num_types <= kAuditMaxTypes);
  STEERSIM_EXPECTS(rec.num_candidates <= kAuditMaxCandidates);
  STEERSIM_EXPECTS(rec.selection < rec.num_candidates);

  ++summary_.records;
  ++summary_.selections[rec.selection];
  switch (rec.intent) {
    case AuditIntent::kHold:
      ++summary_.holds;
      break;
    case AuditIntent::kRetarget:
      ++summary_.retargets;
      break;
    case AuditIntent::kAwaitConfirm:
      ++summary_.confirm_suppressed;
      break;
  }
  if (rec.tie_broken) {
    ++summary_.ties_broken;
  }

  if (csv_.is_open()) {
    if (!header_written_) {
      csv_ << csv_header(rec.num_types, rec.num_candidates) << '\n';
      header_written_ = true;
    }
    csv_ << csv_row(rec) << '\n';
    STEERSIM_ENSURES(csv_.good());
  } else {
    records_.push_back(rec);
  }
}

}  // namespace steersim
