// Interval telemetry sampler (docs/OBSERVABILITY.md).
//
// The metric registry answers "what happened over the whole run"; the
// sampler answers "when". Every `period` cycles it snapshots the live
// visit_metrics() registry and differences the counter metrics against the
// previous snapshot, producing one window row: windowed IPC plus the
// per-window delta of every counter (per-FU-type issues, queue occupancy,
// steering decisions, slot rewrites, fault and recovery counts, ...).
// Windows stream to CSV (or accumulate in memory, audit-log style) and —
// through the tracer's kCounter category — to Chrome trace-event counter
// tracks, so Perfetto renders IPC-over-time directly under the event lanes.
//
// Contracts, shared with the tracer and test-enforced:
//   - zero overhead when off: a disabled sampler is a null pointer, so the
//     processor pays one pointer compare per cycle;
//   - observation-only: an enabled sampler changes no simulated statistic;
//   - conservation: because the final partial window is flushed at end of
//     run, each counter's window deltas sum exactly to its end-of-run
//     registry total.
//
// Derived metrics (rates, means — Metric::derived) are excluded from the
// delta schema: the difference of two ratios is meaningless. Windowed IPC
// is recomputed from the retired-count delta instead.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace steersim {

struct SamplerConfig {
  /// Window length in cycles; 0 disables sampling entirely.
  std::uint64_t period = 0;
  /// Empty: keep windows in memory (query via windows()). Non-empty:
  /// stream one CSV row per window to this file instead.
  std::string csv_path;
  /// Also emit per-window counter tracks through the machine's tracer
  /// (requires MachineConfig::trace with trace_cat::kCounter in the mask).
  bool counter_tracks = true;
  /// Counter metrics whose deltas become Perfetto tracks, selected by
  /// name prefix ("engine.issues." covers every FU type). The windowed-IPC
  /// track is always emitted. An empty list tracks every counter.
  std::vector<std::string> track_prefixes = {
      "sim.retired",          "sim.issued",
      "sim.queue_occupancy_sum", "engine.issues.",
      "steer.steer_events",   "loader.slots_rewritten",
      "fault.",               "recovery."};

  bool enabled() const { return period > 0; }
};

/// One completed sampling window.
struct SampleWindow {
  std::uint64_t cycle = 0;          ///< cycle count at the window's end
  std::uint64_t window_cycles = 0;  ///< cycles covered (final one may be short)
  double ipc = 0.0;                 ///< retired delta / window_cycles
  /// Per-counter deltas, parallel to IntervalSampler::counter_names().
  std::vector<double> deltas;
};

class IntervalSampler {
 public:
  /// `tracer` may be null (no counter tracks). The sampler never owns it.
  IntervalSampler(const SamplerConfig& config, Tracer* tracer);
  ~IntervalSampler();

  IntervalSampler(const IntervalSampler&) = delete;
  IntervalSampler& operator=(const IntervalSampler&) = delete;

  /// True when `cycle` (the just-finished cycle count) ends a window.
  bool due(std::uint64_t cycle) const { return cycle % config_.period == 0; }

  /// Records the window ending at `cycle` from a live metric snapshot.
  /// The first call fixes the counter schema; later registries must
  /// enumerate the same counters (guaranteed by visit_metrics: only
  /// derived metrics may appear conditionally).
  void sample(const MetricRegistry& live, std::uint64_t cycle);

  /// Records the final partial window at end of run; no-op when `cycle`
  /// was already sampled or nothing ran. After this, per-counter deltas
  /// sum to the end-of-run totals.
  void flush(const MetricRegistry& live, std::uint64_t cycle);

  /// Counter-metric names, in registry order (fixed at the first sample).
  const std::vector<std::string>& counter_names() const {
    return counter_names_;
  }
  /// In-memory windows (empty when streaming to CSV).
  const std::vector<SampleWindow>& windows() const { return windows_; }
  std::uint64_t samples_taken() const { return samples_; }
  const SamplerConfig& config() const { return config_; }

  /// The CSV header row matching the fixed schema.
  std::string csv_header() const;

 private:
  void capture(const MetricRegistry& live, std::uint64_t cycle);
  bool tracked(const std::string& name) const;

  SamplerConfig config_;
  Tracer* tracer_;
  std::ofstream csv_;
  bool schema_fixed_ = false;
  std::vector<std::string> counter_names_;
  /// "win."-prefixed track names, parallel to counter_names_; empty when
  /// the counter is not tracked. Built once when the schema is fixed.
  std::vector<std::string> track_names_;
  std::vector<double> last_values_;
  std::size_t retired_index_ = 0;  ///< index of "sim.retired" in the schema
  std::uint64_t last_cycle_ = 0;
  std::uint64_t samples_ = 0;
  std::vector<SampleWindow> windows_;
};

}  // namespace steersim
