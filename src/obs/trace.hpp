// Structured cycle-event tracer (docs/OBSERVABILITY.md).
//
// Emits Chrome trace-event JSON (the catapult format: load the file in
// Perfetto or chrome://tracing) for the pipeline stages, steering
// decisions, loader region rewrites and fault/recovery events. One cycle
// of simulated time maps to one microsecond of trace time, so the
// timeline reads directly in cycles.
//
// The tracer is opt-in and observation-only: every call site guards on a
// null pointer, so a machine built without tracing pays one pointer
// compare per candidate event and produces bit-identical statistics.
// Filtering is two-dimensional: a category bitmask (trace_cat::*) and a
// [start_cycle, end_cycle] window, both checked before any formatting
// work happens.
#pragma once

#include <cstdint>
#include <fstream>
#include <set>
#include <string>
#include <string_view>

namespace steersim {

/// Event-category bits for TraceConfig::categories.
namespace trace_cat {
inline constexpr std::uint32_t kFetch = 1u << 0;
inline constexpr std::uint32_t kDispatch = 1u << 1;
inline constexpr std::uint32_t kExecute = 1u << 2;
inline constexpr std::uint32_t kCommit = 1u << 3;
inline constexpr std::uint32_t kSteer = 1u << 4;
inline constexpr std::uint32_t kLoader = 1u << 5;
inline constexpr std::uint32_t kFault = 1u << 6;
inline constexpr std::uint32_t kRecovery = 1u << 7;
/// Numeric counter tracks (interval-sampler windows; "ph":"C" events).
inline constexpr std::uint32_t kCounter = 1u << 8;
inline constexpr std::uint32_t kAll = (1u << 9) - 1;

std::string_view name(std::uint32_t category);
}  // namespace trace_cat

/// Fixed lane (Chrome "tid") assignments. Execute events get one lane per
/// wake-up row and loader rewrites one lane per base slot, so concurrent
/// activity renders as parallel tracks.
namespace trace_lane {
inline constexpr unsigned kFetch = 0;
inline constexpr unsigned kDispatch = 1;
inline constexpr unsigned kCommit = 2;
inline constexpr unsigned kSteer = 3;
inline constexpr unsigned kFault = 4;
inline constexpr unsigned kRecovery = 5;
inline constexpr unsigned kLoaderTarget = 6;
inline constexpr unsigned kExecuteBase = 16;  ///< + wake-up row
inline constexpr unsigned kSlotBase = 64;     ///< + region base slot
}  // namespace trace_lane

struct TraceConfig {
  bool enabled = false;
  std::string path = "steersim_trace.json";
  /// OR of trace_cat bits; events outside the mask are skipped.
  std::uint32_t categories = trace_cat::kAll;
  /// Only cycles in [start_cycle, end_cycle] are traced (inclusive).
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = ~0ull;
};

/// Ordered key/value bag rendered as the event's "args" object. Keys must
/// be plain identifiers (no escaping is applied to keys).
class TraceArgs {
 public:
  TraceArgs& num(std::string_view key, std::uint64_t value);
  TraceArgs& num(std::string_view key, std::int64_t value);
  TraceArgs& num(std::string_view key, double value);
  TraceArgs& str(std::string_view key, std::string_view value);

  bool empty() const { return json_.empty(); }
  /// Comma-joined members, without the surrounding braces.
  const std::string& body() const { return json_; }

 private:
  void key(std::string_view k);
  std::string json_;
};

class Tracer {
 public:
  explicit Tracer(const TraceConfig& config);
  /// Finalizes the JSON document (also done by close()).
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Fast pre-check: should an event of `category` at `cycle` be built at
  /// all? Call sites use this to skip argument formatting.
  bool wants(std::uint32_t category, std::uint64_t cycle) const {
    return (config_.categories & category) != 0 &&
           cycle >= config_.start_cycle && cycle <= config_.end_cycle;
  }
  /// Window-overlap variant for duration events.
  bool wants_span(std::uint32_t category, std::uint64_t start,
                  std::uint64_t duration) const {
    return (config_.categories & category) != 0 &&
           start <= config_.end_cycle &&
           start + duration >= config_.start_cycle;
  }

  /// Instant event ("ph":"i") at `cycle` on `lane`.
  void instant(std::string_view name, std::uint32_t category, unsigned lane,
               std::uint64_t cycle, const TraceArgs& args = {});

  /// Complete event ("ph":"X"): [start, start+duration] on `lane`.
  void complete(std::string_view name, std::uint32_t category, unsigned lane,
                std::uint64_t start, std::uint64_t duration,
                const TraceArgs& args = {});

  /// Counter sample ("ph":"C", category kCounter): one point on the named
  /// counter track at `cycle`. Perfetto renders each distinct `name` as its
  /// own numeric track under the process, alongside the event lanes.
  void counter(std::string_view name, std::uint64_t cycle, double value);

  /// Names a lane in the viewer (thread_name metadata); idempotent.
  void ensure_lane(unsigned lane, std::string_view name);

  std::uint64_t events_emitted() const { return events_emitted_; }
  const TraceConfig& config() const { return config_; }

  /// Flushes and terminates the JSON document; further events are dropped.
  void close();

 private:
  void emit_prefix();
  void emit_suffix();

  TraceConfig config_;
  std::ofstream out_;
  bool open_ = false;
  bool first_event_ = true;
  std::uint64_t events_emitted_ = 0;
  std::set<unsigned> named_lanes_;
};

}  // namespace steersim
