// Structured cycle-event tracer (docs/OBSERVABILITY.md).
//
// Emits Chrome trace-event JSON (the catapult format: load the file in
// Perfetto or chrome://tracing) for the pipeline stages, steering
// decisions, loader region rewrites, skip-ahead windows and
// fault/recovery events. One cycle of simulated time maps to one
// microsecond of trace time, so the timeline reads directly in cycles.
//
// The tracer is opt-in and observation-only: every call site guards on a
// null pointer, so a machine built without tracing pays one pointer
// compare per candidate event and produces bit-identical statistics.
// Filtering is two-dimensional: a category bitmask (trace_cat::*) and a
// [start_cycle, end_cycle] window, both checked before any recording
// work happens.
//
// Recording is batched: an accepted event becomes one POD TraceRecord in
// a fixed-capacity ring filled by the simulation thread — a few stores,
// no formatting, no I/O. JSON rendering happens in flush(), which runs
// when the ring fills, at sampler window boundaries (Processor wires
// this) and at close()/destruction; the rendered bytes gather in a large
// I/O buffer and reach the file in infrequent bulk writes (kIoBufferBytes)
// so page-cache writeback never stalls the simulation loop. Event order,
// and therefore the emitted document, is deterministic: records render in
// exactly the order they were recorded.
//
// Hot call sites use the typed emitters (instant_pc_id, complete_pc_id,
// instant_fetch, instant_steer, skip_span), whose name/intent strings
// must have static storage duration (opcode tables, literals). The
// generic instant()/complete()/counter()/ensure_lane() paths copy their
// strings into a small intern pool that is recycled on flush, so any
// lifetime is safe there.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace steersim {

/// Event-category bits for TraceConfig::categories.
namespace trace_cat {
inline constexpr std::uint32_t kFetch = 1u << 0;
inline constexpr std::uint32_t kDispatch = 1u << 1;
inline constexpr std::uint32_t kExecute = 1u << 2;
inline constexpr std::uint32_t kCommit = 1u << 3;
inline constexpr std::uint32_t kSteer = 1u << 4;
inline constexpr std::uint32_t kLoader = 1u << 5;
inline constexpr std::uint32_t kFault = 1u << 6;
inline constexpr std::uint32_t kRecovery = 1u << 7;
/// Numeric counter tracks (interval-sampler windows; "ph":"C" events).
inline constexpr std::uint32_t kCounter = 1u << 8;
/// Synthetic skip-ahead spans (one per proven-quiescent window).
inline constexpr std::uint32_t kSkip = 1u << 9;
inline constexpr std::uint32_t kAll = (1u << 10) - 1;

std::string_view name(std::uint32_t category);
}  // namespace trace_cat

/// Fixed lane (Chrome "tid") assignments. Execute events get one lane per
/// wake-up row and loader rewrites one lane per base slot, so concurrent
/// activity renders as parallel tracks.
namespace trace_lane {
inline constexpr unsigned kFetch = 0;
inline constexpr unsigned kDispatch = 1;
inline constexpr unsigned kCommit = 2;
inline constexpr unsigned kSteer = 3;
inline constexpr unsigned kFault = 4;
inline constexpr unsigned kRecovery = 5;
inline constexpr unsigned kLoaderTarget = 6;
inline constexpr unsigned kSkip = 7;
inline constexpr unsigned kExecuteBase = 16;  ///< + wake-up row
inline constexpr unsigned kSlotBase = 64;     ///< + region base slot
}  // namespace trace_lane

struct TraceConfig {
  bool enabled = false;
  std::string path = "steersim_trace.json";
  /// OR of trace_cat bits; events outside the mask are skipped.
  std::uint32_t categories = trace_cat::kAll;
  /// Only cycles in [start_cycle, end_cycle] are traced (inclusive).
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = ~0ull;
  /// Chrome trace-event "pid" stamped on every event. Single-core traces
  /// keep 0; the multi-core fabric gives each core its own pid so merged
  /// traces render one process group per core (plus one for the fabric).
  unsigned pid = 0;
};

/// Ordered key/value bag rendered as the event's "args" object. Keys must
/// be plain identifiers (no escaping is applied to keys).
class TraceArgs {
 public:
  TraceArgs& num(std::string_view key, std::uint64_t value);
  TraceArgs& num(std::string_view key, std::int64_t value);
  TraceArgs& num(std::string_view key, double value);
  TraceArgs& str(std::string_view key, std::string_view value);

  bool empty() const { return json_.empty(); }
  /// Comma-joined members, without the surrounding braces.
  const std::string& body() const { return json_; }

 private:
  void key(std::string_view k);
  std::string json_;
};

/// One buffered event. POD on purpose: recording an event is a handful of
/// stores into the ring, all formatting is deferred to flush().
struct TraceRecord {
  /// How the record's payload maps onto JSON at render time.
  enum class Shape : std::uint8_t {
    kLaneMeta,      ///< thread_name + thread_sort_index metadata pair
    kInstantBody,   ///< generic instant; interned name + pre-rendered args
    kCompleteBody,  ///< generic complete; interned name + pre-rendered args
    kInstantPcId,   ///< instant with args {"pc":a,"id":b}
    kCompletePcId,  ///< complete with args {"pc":a,"id":b}
    kFetch,         ///< instant "fetch": {"pc":a,"count":b,"from_trace":c}
    kSteer,         ///< instant "steer": selection/error/cost/streak/intent
    kCounter,       ///< counter sample; value double bits in `a`
    kSkip,          ///< complete "skip" span: {"cycles":dur}
  };

  static constexpr std::uint32_t kNoString = ~0u;

  std::uint64_t ts = 0;   ///< cycle (span start for complete shapes)
  std::uint64_t dur = 0;  ///< span duration; steer streak for kSteer
  std::uint64_t a = 0;    ///< shape-dependent payload
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  /// Static-storage name for typed shapes (intent string for kSteer).
  std::string_view name;
  std::uint32_t name_index = kNoString;  ///< intern-pool name (dynamic)
  std::uint32_t body_index = kNoString;  ///< intern-pool args body
  std::uint32_t category = 0;
  std::uint32_t lane = 0;
  Shape shape = Shape::kInstantBody;
};

class Tracer {
 public:
  /// Buffered records between flushes; bounds record memory regardless of
  /// run length. Sized so a typical sampler window's events fit without an
  /// intermediate ring-full flush: the drain then runs at window
  /// boundaries and destruction only.
  static constexpr std::size_t kRingCapacity = 32768;

  /// Rendered-output threshold: flush() renders into an accumulating
  /// buffer and only writes to the file once this many bytes are pending
  /// (plus once at close()). Small traces therefore reach the file in a
  /// single large sequential write after the run, keeping page-cache
  /// writeback stalls out of the simulation loop; long runs write in
  /// ~32 MiB chunks, which also bounds tracer memory.
  static constexpr std::size_t kIoBufferBytes = 32u << 20;

  explicit Tracer(const TraceConfig& config);
  /// Finalizes the JSON document (also done by close()).
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Fast pre-check: should an event of `category` at `cycle` be built at
  /// all? Call sites use this to skip argument formatting.
  bool wants(std::uint32_t category, std::uint64_t cycle) const {
    return (config_.categories & category) != 0 &&
           cycle >= config_.start_cycle && cycle <= config_.end_cycle;
  }
  /// Window-overlap variant for duration events.
  bool wants_span(std::uint32_t category, std::uint64_t start,
                  std::uint64_t duration) const {
    return (config_.categories & category) != 0 &&
           start <= config_.end_cycle &&
           start + duration >= config_.start_cycle;
  }

  /// Instant event ("ph":"i") at `cycle` on `lane`. Name and args are
  /// copied; any string lifetime is safe.
  void instant(std::string_view name, std::uint32_t category, unsigned lane,
               std::uint64_t cycle, const TraceArgs& args = {});

  /// Complete event ("ph":"X"): [start, start+duration] on `lane`.
  void complete(std::string_view name, std::uint32_t category, unsigned lane,
                std::uint64_t start, std::uint64_t duration,
                const TraceArgs& args = {});

  /// Counter sample ("ph":"C", category kCounter): one point on the named
  /// counter track at `cycle`. Perfetto renders each distinct `name` as its
  /// own numeric track under the process, alongside the event lanes.
  void counter(std::string_view name, std::uint64_t cycle, double value);

  /// Typed fast path for per-instruction instants (dispatch/commit):
  /// args {"pc":pc,"id":id}. `name` must have static storage duration.
  void instant_pc_id(std::string_view name, std::uint32_t category,
                     unsigned lane, std::uint64_t cycle, std::uint64_t pc,
                     std::uint64_t id);

  /// Typed fast path for execute spans: args {"pc":pc,"id":id} on the
  /// per-row lane. `name` must have static storage duration.
  void complete_pc_id(std::string_view name, unsigned lane,
                      std::uint64_t start, std::uint64_t duration,
                      std::uint64_t pc, std::uint64_t id);

  /// Typed fast path for fetch instants on trace_lane::kFetch.
  void instant_fetch(std::uint64_t cycle, std::uint64_t pc,
                     std::uint64_t count, bool from_trace);

  /// Typed fast path for steering-decision instants on trace_lane::kSteer
  /// (names the lane on first use). `intent` must have static storage
  /// duration (audit_intent_name).
  void instant_steer(std::uint64_t cycle, std::uint64_t selection,
                     double error, std::uint64_t cost, std::uint64_t streak,
                     std::string_view intent);

  /// Synthetic span covering a skipped proven-quiescent window
  /// (trace_cat::kSkip on trace_lane::kSkip; names the lane on first use).
  void skip_span(std::uint64_t start, std::uint64_t cycles);

  /// Names a lane in the viewer (thread_name metadata); idempotent.
  void ensure_lane(unsigned lane, std::string_view name);

  /// O(1) pre-check so hot call sites can skip building lane-name strings.
  bool lane_named(unsigned lane) const {
    return lane < named_lanes_.size() && named_lanes_[lane];
  }

  std::uint64_t events_emitted() const { return events_emitted_; }
  const TraceConfig& config() const { return config_; }

  /// True when the output path could not be opened: events are still
  /// accepted and counted, but rendering is discarded.
  bool null_sink() const { return !sink_ok_; }

  /// Renders and writes all buffered records; also recycles the intern
  /// pool. Runs automatically when the ring fills and on close().
  void flush();

  /// Flushes and terminates the JSON document; further events are dropped.
  void close();

 private:
  void emit_prefix();
  void emit_suffix();
  /// Flushes when the ring is full. Call before interning strings for a
  /// new record so pool indices never dangle across a flush.
  void reserve_record();
  std::uint32_t intern(std::string_view text);
  void begin_event(std::string& out);
  /// Renders one record at the render cursor (hot typed shapes) or via
  /// the checked scratch string (everything else).
  void render(const TraceRecord& rec);
  void render_general(const TraceRecord& rec, std::string& out);
  /// Guarantees `need` writable bytes at the render cursor.
  void ensure_render(std::size_t need);
  void grow_render(std::size_t need);
  char* put_ts(char* p, std::uint64_t ts);

  TraceConfig config_;
  /// Pre-rendered `,"pid":N` fragment every event embeds (byte-identical
  /// to the historical literal when pid == 0).
  std::string pid_frag_;
  std::ofstream out_;
  bool open_ = false;
  bool sink_ok_ = false;
  bool first_event_ = true;
  std::uint64_t events_emitted_ = 0;
  std::vector<bool> named_lanes_;
  /// Preconstructed record slots plus a fill cursor: recording reuses
  /// slots instead of re-initializing 64 bytes per event, so each
  /// emitter writes exactly the fields its shape renders (plus `name`
  /// where the render fast-path guard inspects it).
  std::vector<TraceRecord> ring_;
  std::size_t ring_len_ = 0;
  std::vector<std::string> pool_;
  /// Flush-time render area: a flat byte buffer written through a raw
  /// cursor (one bounds check per record), handed to the sink in one
  /// write per flush.
  std::unique_ptr<char[]> render_buf_;
  std::size_t render_cap_ = 0;
  std::size_t render_len_ = 0;
  std::string scratch_;  ///< staging for the general (unbounded) shapes
  /// Steering error values repeat for long stretches (holds re-evaluate
  /// the same window); cache the last double's rendered digits. Likewise
  /// several events usually land on the same cycle, so cache the last
  /// timestamp's digits.
  std::uint64_t memo_bits_ = 0;
  unsigned memo_len_ = 0;
  char memo_buf_[40] = {};
  std::uint64_t memo_ts_ = 0;
  unsigned memo_ts_len_ = 0;
  char memo_ts_buf_[24] = {};
};

}  // namespace steersim
