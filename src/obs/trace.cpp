#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace steersim {

std::string_view trace_cat::name(std::uint32_t category) {
  switch (category) {
    case kFetch:
      return "fetch";
    case kDispatch:
      return "dispatch";
    case kExecute:
      return "execute";
    case kCommit:
      return "commit";
    case kSteer:
      return "steer";
    case kLoader:
      return "loader";
    case kFault:
      return "fault";
    case kRecovery:
      return "recovery";
    case kCounter:
      return "counter";
    default:
      return "misc";
  }
}

void TraceArgs::key(std::string_view k) {
  if (!json_.empty()) {
    json_ += ',';
  }
  json_ += '"';
  json_ += k;
  json_ += "\":";
}

TraceArgs& TraceArgs::num(std::string_view k, std::uint64_t value) {
  key(k);
  json_ += std::to_string(value);
  return *this;
}

TraceArgs& TraceArgs::num(std::string_view k, std::int64_t value) {
  key(k);
  json_ += std::to_string(value);
  return *this;
}

TraceArgs& TraceArgs::num(std::string_view k, double value) {
  key(k);
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    json_ += buf;
  } else {
    // JSON has no Inf/NaN literals; render as a string.
    json_ += '"';
    json_ += std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf");
    json_ += '"';
  }
  return *this;
}

TraceArgs& TraceArgs::str(std::string_view k, std::string_view value) {
  key(k);
  json_ += '"';
  append_json_escaped(json_, value);
  json_ += '"';
  return *this;
}

Tracer::Tracer(const TraceConfig& config) : config_(config) {
  STEERSIM_EXPECTS(!config.path.empty());
  STEERSIM_EXPECTS(config.start_cycle <= config.end_cycle);
  out_.open(config_.path);
  STEERSIM_EXPECTS(out_.good());
  open_ = true;
  emit_prefix();
}

Tracer::~Tracer() { close(); }

void Tracer::emit_prefix() { out_ << "{\"traceEvents\":[\n"; }

void Tracer::emit_suffix() { out_ << "\n]}\n"; }

void Tracer::close() {
  if (!open_) {
    return;
  }
  emit_suffix();
  out_.flush();
  STEERSIM_ENSURES(out_.good());
  out_.close();
  open_ = false;
}

void Tracer::ensure_lane(unsigned lane, std::string_view name) {
  if (!open_ || named_lanes_.contains(lane)) {
    return;
  }
  named_lanes_.insert(lane);
  std::string event;
  if (!first_event_) {
    event += ",\n";
  }
  first_event_ = false;
  event += R"({"name":"thread_name","ph":"M","pid":0,"tid":)";
  event += std::to_string(lane);
  event += R"(,"args":{"name":")";
  append_json_escaped(event, name);
  event += "\"}}";
  out_ << event;
  // Sort-index metadata keeps lanes in our numeric order in the viewer.
  event.clear();
  event += R"(,
{"name":"thread_sort_index","ph":"M","pid":0,"tid":)";
  event += std::to_string(lane);
  event += R"(,"args":{"sort_index":)";
  event += std::to_string(lane);
  event += "}}";
  out_ << event;
}

void Tracer::instant(std::string_view name, std::uint32_t category,
                     unsigned lane, std::uint64_t cycle,
                     const TraceArgs& args) {
  if (!open_ || !wants(category, cycle)) {
    return;
  }
  std::string event;
  if (!first_event_) {
    event += ",\n";
  }
  first_event_ = false;
  event += R"({"name":")";
  append_json_escaped(event, name);
  event += R"(","cat":")";
  event += trace_cat::name(category);
  event += R"(","ph":"i","s":"t","ts":)";
  event += std::to_string(cycle);
  event += R"(,"pid":0,"tid":)";
  event += std::to_string(lane);
  if (!args.empty()) {
    event += R"(,"args":{)";
    event += args.body();
    event += '}';
  }
  event += '}';
  out_ << event;
  ++events_emitted_;
}

void Tracer::complete(std::string_view name, std::uint32_t category,
                      unsigned lane, std::uint64_t start,
                      std::uint64_t duration, const TraceArgs& args) {
  if (!open_ || !wants_span(category, start, duration)) {
    return;
  }
  std::string event;
  if (!first_event_) {
    event += ",\n";
  }
  first_event_ = false;
  event += R"({"name":")";
  append_json_escaped(event, name);
  event += R"(","cat":")";
  event += trace_cat::name(category);
  event += R"(","ph":"X","ts":)";
  event += std::to_string(start);
  event += R"(,"dur":)";
  event += std::to_string(duration);
  event += R"(,"pid":0,"tid":)";
  event += std::to_string(lane);
  if (!args.empty()) {
    event += R"(,"args":{)";
    event += args.body();
    event += '}';
  }
  event += '}';
  out_ << event;
  ++events_emitted_;
}

void Tracer::counter(std::string_view name, std::uint64_t cycle,
                     double value) {
  if (!open_ || !wants(trace_cat::kCounter, cycle)) {
    return;
  }
  std::string event;
  if (!first_event_) {
    event += ",\n";
  }
  first_event_ = false;
  event += R"({"name":")";
  append_json_escaped(event, name);
  event += R"(","cat":"counter","ph":"C","ts":)";
  event += std::to_string(cycle);
  event += R"(,"pid":0,"args":{"value":)";
  event += json_number(value);
  event += "}}";
  out_ << event;
  ++events_emitted_;
}

}  // namespace steersim
