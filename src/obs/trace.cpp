#include "obs/trace.hpp"

#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace steersim {
namespace {

using namespace std::string_view_literals;

// Shared by TraceArgs and the deferred kSteer renderer so eager and
// batched paths produce identical bytes. to_chars with an explicit
// precision is specified to match printf "%.6g". JSON has no Inf/NaN
// literals; render those as strings.
void append_trace_double(std::string& out, double value) {
  if (std::isfinite(value)) {
    char buf[64];
    const auto r = std::to_chars(buf, buf + sizeof(buf), value,
                                 std::chars_format::general, 6);
    out.append(buf, static_cast<std::size_t>(r.ptr - buf));
  } else {
    out += '"';
    out += std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf");
    out += '"';
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[20];
  const auto r = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, static_cast<std::size_t>(r.ptr - buf));
}

// Unchecked cursor writes for the bounded typed shapes: the caller
// guarantees buffer capacity, so each literal inlines to a fixed-size
// memcpy and each number is one to_chars call.
inline char* put(char* p, std::string_view text) {
  std::memcpy(p, text.data(), text.size());
  return p + text.size();
}

inline char* put_u64(char* p, std::uint64_t value) {
  return std::to_chars(p, p + 20, value).ptr;
}

bool name_clean(std::string_view text) {
  for (const char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\' || c < 0x20) {
      return false;
    }
  }
  return true;
}

// append_json_escaped walks character by character; event names almost
// never need escaping, so bulk-append the clean prefix first.
void append_escaped(std::string& out, std::string_view text) {
  std::size_t clean = 0;
  while (clean < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[clean]);
    if (c == '"' || c == '\\' || c < 0x20) {
      break;
    }
    ++clean;
  }
  out.append(text.data(), clean);
  if (clean < text.size()) {
    append_json_escaped(out, text.substr(clean));
  }
}

}  // namespace

std::string_view trace_cat::name(std::uint32_t category) {
  switch (category) {
    case kFetch:
      return "fetch";
    case kDispatch:
      return "dispatch";
    case kExecute:
      return "execute";
    case kCommit:
      return "commit";
    case kSteer:
      return "steer";
    case kLoader:
      return "loader";
    case kFault:
      return "fault";
    case kRecovery:
      return "recovery";
    case kCounter:
      return "counter";
    case kSkip:
      return "skip";
    default:
      return "misc";
  }
}

void TraceArgs::key(std::string_view k) {
  if (!json_.empty()) {
    json_ += ',';
  }
  json_ += '"';
  json_ += k;
  json_ += "\":";
}

TraceArgs& TraceArgs::num(std::string_view k, std::uint64_t value) {
  key(k);
  json_ += std::to_string(value);
  return *this;
}

TraceArgs& TraceArgs::num(std::string_view k, std::int64_t value) {
  key(k);
  json_ += std::to_string(value);
  return *this;
}

TraceArgs& TraceArgs::num(std::string_view k, double value) {
  key(k);
  append_trace_double(json_, value);
  return *this;
}

TraceArgs& TraceArgs::str(std::string_view k, std::string_view value) {
  key(k);
  json_ += '"';
  append_json_escaped(json_, value);
  json_ += '"';
  return *this;
}

Tracer::Tracer(const TraceConfig& config)
    : config_(config),
      pid_frag_(",\"pid\":" + std::to_string(config.pid)) {
  STEERSIM_EXPECTS(!config.path.empty());
  STEERSIM_EXPECTS(config.start_cycle <= config.end_cycle);
  out_.open(config_.path);
  sink_ok_ = out_.good();
  if (!sink_ok_) {
    // Warn once per process: a long sweep with a bad trace directory
    // should not print thousands of identical lines. The tracer keeps
    // accepting (and counting) events so sim behaviour is unchanged.
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "steersim: warning: cannot open trace output '%s'; "
                   "tracing degrades to a null sink\n",
                   config_.path.c_str());
    }
  }
  open_ = true;
  ring_.resize(kRingCapacity);
  if (sink_ok_) {
    // Pay the I/O buffer's allocation and page faults here, outside the
    // simulation loop: rendering then appends into warm, resident memory
    // for the whole run. Slack past the write threshold absorbs the last
    // ring batch so flush() never grows the buffer mid-run.
    render_cap_ = kIoBufferBytes + kRingCapacity * 192;
    render_buf_ = std::make_unique<char[]>(render_cap_);  // zeroing prefaults
    emit_prefix();
  }
}

Tracer::~Tracer() { close(); }

void Tracer::emit_prefix() { out_ << "{\"traceEvents\":[\n"; }

void Tracer::emit_suffix() { out_ << "\n]}\n"; }

void Tracer::close() {
  if (!open_) {
    return;
  }
  flush();
  if (sink_ok_) {
    if (render_len_ > 0) {
      out_.write(render_buf_.get(),
                 static_cast<std::streamsize>(render_len_));
      render_len_ = 0;
    }
    emit_suffix();
    out_.flush();
    STEERSIM_ENSURES(out_.good());
    out_.close();
  }
  open_ = false;
}

void Tracer::reserve_record() {
  if (ring_len_ == kRingCapacity) {
    flush();
  }
}

std::uint32_t Tracer::intern(std::string_view text) {
  pool_.emplace_back(text);
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Tracer::ensure_lane(unsigned lane, std::string_view name) {
  if (!open_ || lane_named(lane)) {
    return;
  }
  if (lane >= named_lanes_.size()) {
    named_lanes_.resize(lane + 1, false);
  }
  named_lanes_[lane] = true;
  reserve_record();
  TraceRecord& rec = ring_[ring_len_++];
  rec.shape = TraceRecord::Shape::kLaneMeta;
  rec.lane = lane;
  rec.name_index = intern(name);
}

void Tracer::instant(std::string_view name, std::uint32_t category,
                     unsigned lane, std::uint64_t cycle,
                     const TraceArgs& args) {
  if (!open_ || !wants(category, cycle)) {
    return;
  }
  reserve_record();
  TraceRecord& rec = ring_[ring_len_++];
  rec.shape = TraceRecord::Shape::kInstantBody;
  rec.ts = cycle;
  rec.category = category;
  rec.lane = lane;
  rec.name_index = intern(name);
  rec.body_index =
      args.empty() ? TraceRecord::kNoString : intern(args.body());
  ++events_emitted_;
}

void Tracer::complete(std::string_view name, std::uint32_t category,
                      unsigned lane, std::uint64_t start,
                      std::uint64_t duration, const TraceArgs& args) {
  if (!open_ || !wants_span(category, start, duration)) {
    return;
  }
  reserve_record();
  TraceRecord& rec = ring_[ring_len_++];
  rec.shape = TraceRecord::Shape::kCompleteBody;
  rec.ts = start;
  rec.dur = duration;
  rec.category = category;
  rec.lane = lane;
  rec.name_index = intern(name);
  rec.body_index =
      args.empty() ? TraceRecord::kNoString : intern(args.body());
  ++events_emitted_;
}

void Tracer::counter(std::string_view name, std::uint64_t cycle,
                     double value) {
  if (!open_ || !wants(trace_cat::kCounter, cycle)) {
    return;
  }
  reserve_record();
  TraceRecord& rec = ring_[ring_len_++];
  rec.shape = TraceRecord::Shape::kCounter;
  rec.ts = cycle;
  rec.a = std::bit_cast<std::uint64_t>(value);
  rec.name_index = intern(name);
  ++events_emitted_;
}

void Tracer::instant_pc_id(std::string_view name, std::uint32_t category,
                           unsigned lane, std::uint64_t cycle,
                           std::uint64_t pc, std::uint64_t id) {
  if (!open_ || !wants(category, cycle)) {
    return;
  }
  reserve_record();
  TraceRecord& rec = ring_[ring_len_++];
  rec.shape = TraceRecord::Shape::kInstantPcId;
  rec.ts = cycle;
  rec.a = pc;
  rec.b = id;
  rec.category = category;
  rec.lane = lane;
  rec.name = name;
  ++events_emitted_;
}

void Tracer::complete_pc_id(std::string_view name, unsigned lane,
                            std::uint64_t start, std::uint64_t duration,
                            std::uint64_t pc, std::uint64_t id) {
  if (!open_ || !wants_span(trace_cat::kExecute, start, duration)) {
    return;
  }
  reserve_record();
  TraceRecord& rec = ring_[ring_len_++];
  rec.shape = TraceRecord::Shape::kCompletePcId;
  rec.ts = start;
  rec.dur = duration;
  rec.a = pc;
  rec.b = id;
  rec.category = trace_cat::kExecute;
  rec.lane = lane;
  rec.name = name;
  ++events_emitted_;
}

void Tracer::instant_fetch(std::uint64_t cycle, std::uint64_t pc,
                           std::uint64_t count, bool from_trace) {
  if (!open_ || !wants(trace_cat::kFetch, cycle)) {
    return;
  }
  reserve_record();
  TraceRecord& rec = ring_[ring_len_++];
  rec.shape = TraceRecord::Shape::kFetch;
  rec.name = {};  // reused slot; the render guard inspects the name
  rec.ts = cycle;
  rec.a = pc;
  rec.b = count;
  rec.c = from_trace ? 1 : 0;
  rec.category = trace_cat::kFetch;
  rec.lane = trace_lane::kFetch;
  ++events_emitted_;
}

void Tracer::instant_steer(std::uint64_t cycle, std::uint64_t selection,
                           double error, std::uint64_t cost,
                           std::uint64_t streak, std::string_view intent) {
  if (!open_ || !wants(trace_cat::kSteer, cycle)) {
    return;
  }
  ensure_lane(trace_lane::kSteer, "steer");
  reserve_record();
  TraceRecord& rec = ring_[ring_len_++];
  rec.shape = TraceRecord::Shape::kSteer;
  rec.ts = cycle;
  rec.dur = streak;
  rec.a = selection;
  rec.b = std::bit_cast<std::uint64_t>(error);
  rec.c = cost;
  rec.category = trace_cat::kSteer;
  rec.lane = trace_lane::kSteer;
  rec.name = intent;
  ++events_emitted_;
}

void Tracer::skip_span(std::uint64_t start, std::uint64_t cycles) {
  if (!open_ || !wants_span(trace_cat::kSkip, start, cycles)) {
    return;
  }
  ensure_lane(trace_lane::kSkip, "skip");
  reserve_record();
  TraceRecord& rec = ring_[ring_len_++];
  rec.shape = TraceRecord::Shape::kSkip;
  rec.name = {};  // reused slot; the render guard inspects the name
  rec.ts = start;
  rec.dur = cycles;
  rec.category = trace_cat::kSkip;
  rec.lane = trace_lane::kSkip;
  ++events_emitted_;
}

void Tracer::begin_event(std::string& out) {
  if (!first_event_) {
    out += ",\n";
  }
  first_event_ = false;
}

void Tracer::ensure_render(std::size_t need) {
  if (render_cap_ - render_len_ < need) {
    grow_render(need);
  }
}

void Tracer::grow_render(std::size_t need) {
  std::size_t cap = render_cap_ == 0 ? (std::size_t{1} << 20) : render_cap_;
  while (cap - render_len_ < need) {
    cap *= 2;
  }
  std::unique_ptr<char[]> grown(new char[cap]);
  if (render_len_ != 0) {
    std::memcpy(grown.get(), render_buf_.get(), render_len_);
  }
  render_buf_ = std::move(grown);
  render_cap_ = cap;
}

/// Worst case for one hot typed record: every literal, six 20-digit
/// numbers, a 13-char double and a <=64-char name stay under this.
constexpr std::size_t kHotRecordBound = 384;

char* Tracer::put_ts(char* p, std::uint64_t ts) {
  if (memo_ts_len_ != 0 && ts == memo_ts_) {
    // Fixed-size copy; the record bound leaves slack past the digits.
    std::memcpy(p, memo_ts_buf_, sizeof(memo_ts_buf_));
    return p + memo_ts_len_;
  }
  char* const end = std::to_chars(p, p + 20, ts).ptr;
  memo_ts_ = ts;
  memo_ts_len_ = static_cast<unsigned>(end - p);
  std::memcpy(memo_ts_buf_, p, memo_ts_len_);
  return end;
}

void Tracer::render(const TraceRecord& rec) {
  using Shape = TraceRecord::Shape;
  // Hot typed shapes (the bulk of any machine-level trace) render through
  // unchecked cursor writes straight into the flush buffer — one bounds
  // check per record, then each literal inlines to a fixed-size memcpy
  // and each number is one to_chars call. Every component is bounded:
  // literals, <=20-digit numbers, and a short clean name. Anything
  // unusual falls through to the general checked path below.
  const bool typed_hot =
      rec.shape == Shape::kInstantPcId || rec.shape == Shape::kCompletePcId ||
      rec.shape == Shape::kFetch || rec.shape == Shape::kSteer ||
      rec.shape == Shape::kSkip;
  if (typed_hot && rec.name.size() <= 64 && name_clean(rec.name)) {
    ensure_render(kHotRecordBound);
    char* const buf = render_buf_.get() + render_len_;
    char* p = buf;
    if (!first_event_) {
      p = put(p, ",\n"sv);
    }
    first_event_ = false;
    // One straight-line sequence per shape: constant name/cat/ph runs
    // merge into single fixed-size copies instead of a field-by-field
    // assembly, leaving one to_chars call per numeric field.
    switch (rec.shape) {
      case Shape::kInstantPcId: {
        p = put(p, R"({"name":")"sv);
        p = put(p, rec.name);
        if (rec.category == trace_cat::kDispatch) {
          p = put(p, R"(","cat":"dispatch","ph":"i","s":"t","ts":)"sv);
        } else if (rec.category == trace_cat::kCommit) {
          p = put(p, R"(","cat":"commit","ph":"i","s":"t","ts":)"sv);
        } else {
          p = put(p, R"(","cat":")"sv);
          p = put(p, trace_cat::name(rec.category));
          p = put(p, R"(","ph":"i","s":"t","ts":)"sv);
        }
        p = put_ts(p, rec.ts);
        p = put(p, pid_frag_);
        p = put(p, R"(,"tid":)"sv);
        p = put_u64(p, rec.lane);
        p = put(p, R"(,"args":{"pc":)"sv);
        p = put_u64(p, rec.a);
        p = put(p, R"(,"id":)"sv);
        p = put_u64(p, rec.b);
        p = put(p, "}}"sv);
        break;
      }
      case Shape::kCompletePcId: {
        p = put(p, R"({"name":")"sv);
        p = put(p, rec.name);
        p = put(p, R"(","cat":"execute","ph":"X","ts":)"sv);
        p = put_ts(p, rec.ts);
        p = put(p, R"(,"dur":)"sv);
        p = put_u64(p, rec.dur);
        p = put(p, pid_frag_);
        p = put(p, R"(,"tid":)"sv);
        p = put_u64(p, rec.lane);
        p = put(p, R"(,"args":{"pc":)"sv);
        p = put_u64(p, rec.a);
        p = put(p, R"(,"id":)"sv);
        p = put_u64(p, rec.b);
        p = put(p, "}}"sv);
        break;
      }
      case Shape::kFetch: {
        p = put(p, R"({"name":"fetch","cat":"fetch","ph":"i","s":"t","ts":)"sv);
        p = put_ts(p, rec.ts);
        p = put(p, pid_frag_);
        p = put(p, R"(,"tid":0,"args":{"pc":)"sv);
        p = put_u64(p, rec.a);
        p = put(p, R"(,"count":)"sv);
        p = put_u64(p, rec.b);
        p = put(p, R"(,"from_trace":)"sv);
        p = put_u64(p, rec.c);
        p = put(p, "}}"sv);
        break;
      }
      case Shape::kSteer: {
        p = put(p, R"({"name":"steer","cat":"steer","ph":"i","s":"t","ts":)"sv);
        p = put_ts(p, rec.ts);
        p = put(p, pid_frag_);
        p = put(p, R"(,"tid":3,"args":{"selection":)"sv);
        p = put_u64(p, rec.a);
        p = put(p, R"(,"error":)"sv);
        if (memo_len_ != 0 && rec.b == memo_bits_) {
          std::memcpy(p, memo_buf_, sizeof(memo_buf_));
          p += memo_len_;
        } else {
          char* const digits = p;
          const double error = std::bit_cast<double>(rec.b);
          if (std::isfinite(error)) {
            p = std::to_chars(p, p + 32, error, std::chars_format::general, 6)
                    .ptr;
          } else {
            *p++ = '"';
            p = put(p, std::isnan(error) ? "nan"sv
                                         : (error > 0 ? "inf"sv : "-inf"sv));
            *p++ = '"';
          }
          memo_bits_ = rec.b;
          memo_len_ = static_cast<unsigned>(p - digits);
          std::memcpy(memo_buf_, digits, memo_len_);
        }
        p = put(p, R"(,"cost":)"sv);
        p = put_u64(p, rec.c);
        p = put(p, R"(,"streak":)"sv);
        p = put_u64(p, rec.dur);
        p = put(p, R"(,"intent":")"sv);
        p = put(p, rec.name);
        p = put(p, "\"}}"sv);
        break;
      }
      case Shape::kSkip: {
        p = put(p, R"({"name":"skip","cat":"skip","ph":"X","ts":)"sv);
        p = put_ts(p, rec.ts);
        p = put(p, R"(,"dur":)"sv);
        p = put_u64(p, rec.dur);
        p = put(p, pid_frag_);
        p = put(p, R"(,"tid":7,"args":{"cycles":)"sv);
        p = put_u64(p, rec.dur);
        p = put(p, "}}"sv);
        break;
      }
      default:
        break;
    }
    render_len_ += static_cast<std::size_t>(p - buf);
    return;
  }
  scratch_.clear();
  render_general(rec, scratch_);
  ensure_render(scratch_.size());
  std::memcpy(render_buf_.get() + render_len_, scratch_.data(),
              scratch_.size());
  render_len_ += scratch_.size();
}

void Tracer::render_general(const TraceRecord& rec, std::string& out) {
  using Shape = TraceRecord::Shape;
  if (rec.shape == Shape::kLaneMeta) {
    begin_event(out);
    out += R"({"name":"thread_name","ph":"M")"sv;
    out += pid_frag_;
    out += R"(,"tid":)"sv;
    append_u64(out, rec.lane);
    out += R"(,"args":{"name":")"sv;
    append_escaped(out, pool_[rec.name_index]);
    out += "\"}}"sv;
    // Sort-index metadata keeps lanes in our numeric order in the viewer.
    begin_event(out);
    out += R"({"name":"thread_sort_index","ph":"M")"sv;
    out += pid_frag_;
    out += R"(,"tid":)"sv;
    append_u64(out, rec.lane);
    out += R"(,"args":{"sort_index":)"sv;
    append_u64(out, rec.lane);
    out += "}}"sv;
    return;
  }
  if (rec.shape == Shape::kCounter) {
    begin_event(out);
    out += R"({"name":")"sv;
    append_escaped(out, pool_[rec.name_index]);
    out += R"(","cat":"counter","ph":"C","ts":)"sv;
    append_u64(out, rec.ts);
    out += pid_frag_;
    out += R"(,"args":{"value":)"sv;
    out += json_number(std::bit_cast<double>(rec.a));
    out += "}}"sv;
    return;
  }

  begin_event(out);
  out += R"({"name":")"sv;
  switch (rec.shape) {
    case Shape::kInstantBody:
    case Shape::kCompleteBody:
      append_escaped(out, pool_[rec.name_index]);
      break;
    case Shape::kFetch:
      out += "fetch"sv;
      break;
    case Shape::kSteer:
      out += "steer"sv;
      break;
    case Shape::kSkip:
      out += "skip"sv;
      break;
    default:
      append_escaped(out, rec.name);
      break;
  }
  out += R"(","cat":")"sv;
  out += trace_cat::name(rec.category);
  const bool is_span = rec.shape == Shape::kCompleteBody ||
                       rec.shape == Shape::kCompletePcId ||
                       rec.shape == Shape::kSkip;
  if (is_span) {
    out += R"(","ph":"X","ts":)"sv;
    append_u64(out, rec.ts);
    out += R"(,"dur":)"sv;
    append_u64(out, rec.dur);
  } else {
    out += R"(","ph":"i","s":"t","ts":)"sv;
    append_u64(out, rec.ts);
  }
  out += pid_frag_;
  out += R"(,"tid":)"sv;
  append_u64(out, rec.lane);
  switch (rec.shape) {
    case Shape::kInstantBody:
    case Shape::kCompleteBody:
      if (rec.body_index != TraceRecord::kNoString) {
        out += R"(,"args":{)"sv;
        out += pool_[rec.body_index];
        out += '}';
      }
      break;
    case Shape::kInstantPcId:
    case Shape::kCompletePcId:
      out += R"(,"args":{"pc":)"sv;
      append_u64(out, rec.a);
      out += R"(,"id":)"sv;
      append_u64(out, rec.b);
      out += '}';
      break;
    case Shape::kFetch:
      out += R"(,"args":{"pc":)"sv;
      append_u64(out, rec.a);
      out += R"(,"count":)"sv;
      append_u64(out, rec.b);
      out += R"(,"from_trace":)"sv;
      append_u64(out, rec.c);
      out += '}';
      break;
    case Shape::kSteer:
      out += R"(,"args":{"selection":)"sv;
      append_u64(out, rec.a);
      out += R"(,"error":)"sv;
      append_trace_double(out, std::bit_cast<double>(rec.b));
      out += R"(,"cost":)"sv;
      append_u64(out, rec.c);
      out += R"(,"streak":)"sv;
      append_u64(out, rec.dur);
      out += R"(,"intent":")"sv;
      append_escaped(out, rec.name);
      out += "\"}"sv;
      break;
    case Shape::kSkip:
      out += R"(,"args":{"cycles":)"sv;
      append_u64(out, rec.dur);
      out += '}';
      break;
    default:
      break;
  }
  out += '}';
}

void Tracer::flush() {
  if (ring_len_ == 0) {
    return;
  }
  if (sink_ok_) {
    // Size hint only — the typical record renders to ~120 bytes; the
    // per-record ensure_render still guards the worst case.
    ensure_render(ring_len_ * 160);
    for (std::size_t i = 0; i < ring_len_; ++i) {
      render(ring_[i]);
    }
    // Rendered bytes accumulate across flushes and hit the file only when
    // the I/O buffer overflows (and at close()): dirtying megabytes of
    // page cache mid-run stalls the simulation loop on writeback, so the
    // drain does the formatting work at window boundaries but defers the
    // write itself out of the hot loop whenever the document fits.
    if (render_len_ >= kIoBufferBytes) {
      out_.write(render_buf_.get(),
                 static_cast<std::streamsize>(render_len_));
      render_len_ = 0;
    }
  }
  ring_len_ = 0;
  pool_.clear();
}

}  // namespace steersim
