// Steering audit log (docs/OBSERVABILITY.md).
//
// Records one row per steering decision: the per-type demand the selector
// saw, every candidate's CEM score and reconfiguration cost, the winning
// candidate, the hysteresis/confirm state, and the intent handed to the
// configuration loader. End-of-run aggregates say *what* a run steered to;
// the audit log says *why* each decision went the way it did.
//
// The log is policy-agnostic: it stores fixed-capacity candidate/type
// arrays (capacities bound the paper's 4 candidates and 5 FU types) so
// this module depends only on the common substrate. Rows either accumulate
// in memory (csv_path empty; tests and short runs) or stream to a CSV file
// as they are recorded (long runs); summary counters accumulate either way.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace steersim {

struct AuditConfig {
  bool enabled = false;
  /// Empty: keep rows in memory (query via records()). Non-empty: stream
  /// rows to this CSV file instead.
  std::string csv_path;
};

/// Capacity bounds for one record (actual counts are per-record fields).
inline constexpr unsigned kAuditMaxCandidates = 8;
inline constexpr unsigned kAuditMaxTypes = 8;

/// What the policy asked the loader to do after the decision.
enum class AuditIntent : std::uint8_t {
  kHold,          ///< selection 0: freeze the target where the fabric is
  kRetarget,      ///< request the selected candidate's allocation
  kAwaitConfirm,  ///< non-current winner suppressed by the confirm streak
};

std::string_view audit_intent_name(AuditIntent intent);

struct AuditRecord {
  std::uint64_t cycle = 0;
  unsigned num_types = 0;
  unsigned num_candidates = 0;
  /// Per-type demand (3-bit saturating counts) entering the CEM stage.
  std::array<std::uint8_t, kAuditMaxTypes> required{};
  /// Per-candidate CEM score ([0] = current configuration).
  std::array<double, kAuditMaxCandidates> errors{};
  /// Per-candidate reconfiguration cost in slots.
  std::array<unsigned, kAuditMaxCandidates> costs{};
  unsigned selection = 0;  ///< winning candidate index
  /// True when a non-winning candidate had the same score as the winner
  /// (the tie-break rule decided the outcome).
  bool tie_broken = false;
  unsigned streak = 0;   ///< consecutive identical selections so far
  unsigned confirm = 0;  ///< streak threshold configured for the policy
  AuditIntent intent = AuditIntent::kHold;
};

struct AuditSummary {
  std::uint64_t records = 0;
  std::array<std::uint64_t, kAuditMaxCandidates> selections{};
  std::uint64_t holds = 0;
  std::uint64_t retargets = 0;
  std::uint64_t confirm_suppressed = 0;
  std::uint64_t ties_broken = 0;
};

class SteeringAuditLog {
 public:
  explicit SteeringAuditLog(const AuditConfig& config);
  /// Flushes the CSV stream if one is open.
  ~SteeringAuditLog();

  SteeringAuditLog(const SteeringAuditLog&) = delete;
  SteeringAuditLog& operator=(const SteeringAuditLog&) = delete;

  void record(const AuditRecord& rec);

  /// In-memory rows (empty when streaming to CSV).
  const std::vector<AuditRecord>& records() const { return records_; }
  const AuditSummary& summary() const { return summary_; }

  /// The CSV header matching one record row.
  static std::string csv_header(unsigned num_types, unsigned num_candidates);
  static std::string csv_row(const AuditRecord& rec);

 private:
  AuditConfig config_;
  std::ofstream csv_;
  bool header_written_ = false;
  std::vector<AuditRecord> records_;
  AuditSummary summary_;
};

}  // namespace steersim
