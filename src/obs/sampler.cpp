#include "obs/sampler.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace steersim {
namespace {

/// Counter deltas are integral; windowed IPC is not. Match the metric
/// registry's CSV convention: integers without a fraction.
std::string format_value(double value) {
  if (std::isnan(value)) {
    return "nan";
  }
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  return format_double(value, 6);
}

}  // namespace

IntervalSampler::IntervalSampler(const SamplerConfig& config, Tracer* tracer)
    : config_(config), tracer_(tracer) {
  STEERSIM_EXPECTS(config.enabled());
  if (!config_.csv_path.empty()) {
    csv_.open(config_.csv_path);
    STEERSIM_EXPECTS(csv_.good());
  }
}

IntervalSampler::~IntervalSampler() {
  if (csv_.is_open()) {
    csv_.flush();
  }
}

std::string IntervalSampler::csv_header() const {
  std::string header = "cycle,window_cycles,window_ipc";
  for (const std::string& name : counter_names_) {
    header += ',';
    header += name;
  }
  return header;
}

bool IntervalSampler::tracked(const std::string& name) const {
  if (config_.track_prefixes.empty()) {
    return true;
  }
  for (const std::string& prefix : config_.track_prefixes) {
    if (starts_with(name, prefix)) {
      return true;
    }
  }
  return false;
}

void IntervalSampler::sample(const MetricRegistry& live, std::uint64_t cycle) {
  capture(live, cycle);
}

void IntervalSampler::flush(const MetricRegistry& live, std::uint64_t cycle) {
  // A window boundary may coincide with the end of run (or no cycles ran).
  if (cycle != last_cycle_) {
    capture(live, cycle);
  }
  if (csv_.is_open()) {
    csv_.flush();  // the run is over; make the file readable immediately
  }
}

void IntervalSampler::capture(const MetricRegistry& live,
                              std::uint64_t cycle) {
  STEERSIM_EXPECTS(cycle > last_cycle_ || (cycle == 0 && samples_ == 0));
  if (!schema_fixed_) {
    for (const Metric& m : live.metrics()) {
      if (!m.derived) {
        counter_names_.push_back(m.name);
      }
    }
    retired_index_ = counter_names_.size();
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      if (counter_names_[i] == "sim.retired") {
        retired_index_ = i;
      }
    }
    STEERSIM_ENSURES(retired_index_ < counter_names_.size());
    last_values_.assign(counter_names_.size(), 0.0);
    track_names_.reserve(counter_names_.size());
    for (const std::string& name : counter_names_) {
      track_names_.push_back(tracked(name) ? "win." + name : std::string());
    }
    schema_fixed_ = true;
    if (csv_.is_open()) {
      csv_ << csv_header() << '\n';
    }
  }

  SampleWindow window;
  window.cycle = cycle;
  window.window_cycles = cycle - last_cycle_;
  window.deltas.reserve(counter_names_.size());
  std::size_t i = 0;
  for (const Metric& m : live.metrics()) {
    if (m.derived) {
      continue;
    }
    // The counter schema is fixed at the first sample; every later
    // snapshot must enumerate the same counters in the same order.
    STEERSIM_ENSURES(i < counter_names_.size() &&
                     counter_names_[i] == m.name);
    window.deltas.push_back(m.value - last_values_[i]);
    last_values_[i] = m.value;
    ++i;
  }
  STEERSIM_ENSURES(i == counter_names_.size());
  window.ipc = window.window_cycles == 0
                   ? 0.0
                   : window.deltas[retired_index_] /
                         static_cast<double>(window.window_cycles);

  if (tracer_ != nullptr && config_.counter_tracks) {
    tracer_->counter("win.ipc", cycle, window.ipc);
    for (std::size_t k = 0; k < track_names_.size(); ++k) {
      if (!track_names_[k].empty()) {
        tracer_->counter(track_names_[k], cycle, window.deltas[k]);
      }
    }
  }

  if (csv_.is_open()) {
    std::string row = std::to_string(window.cycle);
    row += ',';
    row += std::to_string(window.window_cycles);
    row += ',';
    row += format_value(window.ipc);
    for (const double delta : window.deltas) {
      row += ',';
      row += format_value(delta);
    }
    csv_ << row << '\n';
  } else {
    windows_.push_back(std::move(window));
  }
  last_cycle_ = cycle;
  ++samples_;
}

}  // namespace steersim
