// Resource availability computation (paper Sec. 4.2, Eq. 1, Fig. 7).
//
// The wake-up logic needs, per unit type t, a single wire
//   available(t) = OR_i ( alloc[i] == enc(t)  AND  availability(i) )
// over a combined resource vector holding the RFU slots followed by the
// fixed functional units. Continuation-encoded slots match no type code, so
// a multi-slot unit contributes exactly once (via its head slot).
#pragma once

#include <span>

#include "common/fixed_vector.hpp"
#include "config/allocation.hpp"

namespace steersim {

struct ResourceEntry {
  std::uint8_t code = kEncEmpty;
  bool available = false;  ///< the slot's "available" output port
};

inline constexpr unsigned kMaxResourceEntries =
    kMaxRfuSlots + kNumFuTypes * 4;

/// The combined resource allocation vector of Fig. 7 (reconfigurable slots
/// followed by fixed resources) with per-entry availability signals.
class ResourceVector {
 public:
  /// `rfu_available` carries one bit per RFU slot (a busy unit drives all of
  /// its slots' bits low); `ffu_available` has one flag per fixed unit
  /// instance, laid out in FuType order.
  static ResourceVector build(const AllocationVector& rfu,
                              SlotMask rfu_available, const FuCounts& ffu,
                              std::span<const bool> ffu_available);

  /// Eq. 1: is any unit of type t configured and available?
  bool available(FuType t) const;

  /// Population count variant: number of available units of type t (used by
  /// the select stage to bound grants per cycle).
  unsigned count_available(FuType t) const;

  /// Number of units of type t configured at all (available or busy).
  unsigned count_configured(FuType t) const;

  std::span<const ResourceEntry> entries() const {
    return {entries_.begin(), entries_.end()};
  }

 private:
  FixedVector<ResourceEntry, kMaxResourceEntries> entries_;
};

}  // namespace steersim
