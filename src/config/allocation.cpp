#include "config/allocation.hpp"

#include "common/contracts.hpp"

namespace steersim {

AllocationVector::AllocationVector(unsigned num_slots) {
  STEERSIM_EXPECTS(num_slots <= kMaxRfuSlots);
  for (unsigned i = 0; i < num_slots; ++i) {
    codes_.push_back(kEncEmpty);
  }
}

AllocationVector AllocationVector::place(const FuCounts& counts,
                                         unsigned num_slots) {
  STEERSIM_EXPECTS(slots_used(counts) <= num_slots);
  AllocationVector alloc(num_slots);
  unsigned slot = 0;
  for (const FuType t : kAllFuTypes) {
    for (unsigned n = 0; n < counts[fu_index(t)]; ++n) {
      alloc.write_region(SlotRegion{t, slot, slot_cost(t)});
      slot += slot_cost(t);
    }
  }
  return alloc;
}

std::uint8_t AllocationVector::code(unsigned slot) const {
  STEERSIM_EXPECTS(slot < num_slots());
  return codes_[slot];
}

void AllocationVector::set_code(unsigned slot, std::uint8_t code) {
  STEERSIM_EXPECTS(slot < num_slots());
  STEERSIM_EXPECTS(code <= 0b111);
  codes_[slot] = code;
}

void AllocationVector::write_region(const SlotRegion& region) {
  STEERSIM_EXPECTS(region.len == slot_cost(region.type));
  STEERSIM_EXPECTS(region.base + region.len <= num_slots());
  set_code(region.base, encoding_of(region.type));
  for (unsigned i = 1; i < region.len; ++i) {
    set_code(region.base + i, kEncContinuation);
  }
}

void AllocationVector::clear_span(unsigned base, unsigned len) {
  STEERSIM_EXPECTS(base + len <= num_slots());
  for (unsigned i = 0; i < len; ++i) {
    set_code(base + i, kEncEmpty);
  }
}

FixedVector<SlotRegion, kMaxRfuSlots> AllocationVector::regions() const {
  FixedVector<SlotRegion, kMaxRfuSlots> out;
  unsigned slot = 0;
  while (slot < num_slots()) {
    const auto type = type_from_encoding(codes_[slot]);
    if (!type.has_value()) {
      ++slot;  // empty or orphaned continuation slot
      continue;
    }
    unsigned len = 1;
    while (slot + len < num_slots() &&
           codes_[slot + len] == kEncContinuation) {
      ++len;
    }
    // A truncated multi-slot unit (fewer continuations than its cost) can
    // only arise transiently while the loader is mid-rewrite; report the
    // region as its on-fabric footprint either way.
    out.push_back(SlotRegion{*type, slot, len});
    slot += len;
  }
  return out;
}

FuCounts AllocationVector::counts() const {
  FuCounts c{};
  for (const auto& region : regions()) {
    // Only complete units are usable resources.
    if (region.len == slot_cost(region.type)) {
      ++c[fu_index(region.type)];
    }
  }
  return c;
}

SlotMask AllocationVector::diff(const AllocationVector& other) const {
  STEERSIM_EXPECTS(num_slots() == other.num_slots());
  SlotMask mask;
  for (unsigned i = 0; i < num_slots(); ++i) {
    if (codes_[i] != other.codes_[i]) {
      mask.set(i);
    }
  }
  return mask;
}

std::string AllocationVector::to_string() const {
  std::string out;
  for (unsigned i = 0; i < num_slots(); ++i) {
    if (i > 0) {
      out += ' ';
    }
    const auto type = type_from_encoding(codes_[i]);
    if (type.has_value()) {
      switch (*type) {
        case FuType::kIntAlu:
          out += "ALU";
          break;
        case FuType::kIntMdu:
          out += "MDU";
          break;
        case FuType::kLsu:
          out += "LSU";
          break;
        case FuType::kFpAlu:
          out += "FPA";
          break;
        case FuType::kFpMdu:
          out += "FPM";
          break;
      }
    } else if (codes_[i] == kEncContinuation) {
      out += ">";
    } else {
      out += ".";
    }
  }
  return out;
}

}  // namespace steersim
