// Structural complexity estimates for the configuration-selection
// circuits (gate count and logic depth in 2-input-gate equivalents).
//
// The paper justifies the barrel-shifter CEM by cost: a more accurate
// divider "could be implemented, if desired, at the expense of increased
// complexity and latency". These estimators put numbers on that trade
// using standard textbook structures (one-hot decoders, carry-save adder
// trees, mux-based barrel shifters, array dividers, comparator trees).
// They are design-space estimates, not synthesis results; assumptions are
// documented per function.
#pragma once

namespace steersim {

struct CircuitCost {
  unsigned gates = 0;  ///< 2-input gate equivalents
  unsigned depth = 0;  ///< critical path in gate levels

  CircuitCost operator+(const CircuitCost& other) const {
    // Serial composition: gates add, depths add.
    return {gates + other.gates, depth + other.depth};
  }
  static CircuitCost parallel(const CircuitCost& a, unsigned copies) {
    // Parallel replication: gates scale, depth unchanged.
    return {a.gates * copies, a.depth};
  }
};

/// One unit decoder: opcode (7 bits) -> one-hot FU type (5 wires).
/// AND-plane of ~kNumOpcodes product terms + 5 OR trees.
CircuitCost unit_decoder_cost();

/// Requirements encoder for `queue` entries: per type, a population count
/// of `queue` one-hot wires into a 3-bit saturating sum (CSA tree).
CircuitCost requirements_encoder_cost(unsigned queue_entries);

/// One CEM generator, shift-approximate form (Fig. 3b/3c): five 3-bit
/// barrel shifters (2-level mux) + control (2 gates each) + a 3-bit
/// 5-operand adder tree.
CircuitCost cem_approx_cost();

/// One CEM generator with exact dividers: five 3-by-3 restoring array
/// dividers (3 rows of controlled subtract/compare) + wider adder tree.
CircuitCost cem_exact_cost();

/// Minimal-error selector over 4 candidates: 3 compare-and-select stages
/// (3-bit comparators + 2-bit index muxes) with tie-break logic.
CircuitCost minimal_error_selector_cost();

/// The whole 4-stage selection unit (Fig. 2) for a given queue size,
/// with either CEM flavour (4 CEM generators: 3 presets + current).
CircuitCost selection_unit_cost(unsigned queue_entries, bool exact_divider);

}  // namespace steersim
