#include "config/availability.hpp"

#include "common/contracts.hpp"

namespace steersim {

ResourceVector ResourceVector::build(const AllocationVector& rfu,
                                     SlotMask rfu_available,
                                     const FuCounts& ffu,
                                     std::span<const bool> ffu_available) {
  ResourceVector rv;
  for (unsigned i = 0; i < rfu.num_slots(); ++i) {
    rv.entries_.push_back(ResourceEntry{rfu.code(i), rfu_available.test(i)});
  }
  std::size_t ffu_idx = 0;
  for (const FuType t : kAllFuTypes) {
    for (unsigned n = 0; n < ffu[fu_index(t)]; ++n) {
      STEERSIM_EXPECTS(ffu_idx < ffu_available.size());
      rv.entries_.push_back(
          ResourceEntry{encoding_of(t), ffu_available[ffu_idx++]});
    }
  }
  STEERSIM_ENSURES(ffu_idx == ffu_available.size());
  return rv;
}

bool ResourceVector::available(FuType t) const {
  const std::uint8_t enc = encoding_of(t);
  for (const auto& entry : entries_) {
    if (entry.code == enc && entry.available) {
      return true;
    }
  }
  return false;
}

unsigned ResourceVector::count_available(FuType t) const {
  const std::uint8_t enc = encoding_of(t);
  unsigned count = 0;
  for (const auto& entry : entries_) {
    if (entry.code == enc && entry.available) {
      ++count;
    }
  }
  return count;
}

unsigned ResourceVector::count_configured(FuType t) const {
  const std::uint8_t enc = encoding_of(t);
  unsigned count = 0;
  for (const auto& entry : entries_) {
    if (entry.code == enc) {
      ++count;
    }
  }
  return count;
}

}  // namespace steersim
