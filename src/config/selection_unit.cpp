#include "config/selection_unit.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace steersim {

UnitOneHot unit_decode(Opcode op) {
  UnitOneHot one_hot;
  one_hot.set(fu_index(fu_type_of(op)));
  return one_hot;
}

FuCounts encode_requirements(std::span<const Opcode> ready_ops) {
  FuCounts counts{};
  for (const Opcode op : ready_ops) {
    auto& c = counts[fu_index(fu_type_of(op))];
    if (c < 7) {  // 3-bit saturating count
      ++c;
    }
  }
  return counts;
}

unsigned cem_error_approx(const FuCounts& required,
                          const FuCounts& available) {
  unsigned sum = 0;
  for (unsigned t = 0; t < kNumFuTypes; ++t) {
    const auto req = static_cast<unsigned>(required[t] & 0b111);
    const auto avail = static_cast<std::uint8_t>(
        std::min<unsigned>(available[t], 7));  // 3-bit quantity input
    sum += req >> cem_shift_amount(avail);
  }
  // The paper sizes the adder tree at 3 bits because Σ_t required(t) <= 7
  // (7-entry queue); the shifted terms can only be smaller.
  return sum & 0b111;
}

double cem_error_exact(const FuCounts& required, const FuCounts& available) {
  double sum = 0.0;
  for (unsigned t = 0; t < kNumFuTypes; ++t) {
    if (available[t] == 0) {
      sum += static_cast<double>(required[t]) * kCemUnavailablePenalty;
    } else {
      sum += static_cast<double>(required[t]) /
             static_cast<double>(available[t]);
    }
  }
  return sum;
}

ConfigSelectionUnit::ConfigSelectionUnit(SteeringSet set, CemMode mode,
                                         TieBreak tie_break)
    : set_(std::move(set)), mode_(mode), tie_break_(tie_break) {
  STEERSIM_EXPECTS(set_.feasible());
}

SelectionTrace ConfigSelectionUnit::select(
    std::span<const Opcode> ready_ops, const FuCounts& current_total,
    const std::array<unsigned, kNumCandidates>& reconfig_cost) const {
  SelectionTrace trace;

  // Stage 1: unit decoders (at most the queue capacity is wired up).
  trace.num_entries = static_cast<unsigned>(
      std::min<std::size_t>(ready_ops.size(), kQueueCapacity));
  for (unsigned i = 0; i < trace.num_entries; ++i) {
    trace.one_hots[i] = unit_decode(ready_ops[i]);
  }

  // Stage 2: resource requirements encoder (3-bit saturating counts; for
  // machines with queues deeper than 7 the counts saturate exactly as the
  // hardware encoders would).
  SelectionTrace tail =
      select_counts(encode_requirements(ready_ops), current_total,
                    reconfig_cost);
  tail.num_entries = trace.num_entries;
  tail.one_hots = trace.one_hots;
  return tail;
}

SelectionTrace ConfigSelectionUnit::select_counts(
    const FuCounts& required, const FuCounts& current_total,
    const std::array<unsigned, kNumCandidates>& reconfig_cost) const {
  SelectionTrace trace;
  trace.required = required;

  // Stage 3: one CEM generator per candidate. Candidate 0 is the current
  // configuration; candidates 1..3 are the predefined steering configs,
  // evaluated with their full complement (preset + FFUs).
  std::array<FuCounts, kNumCandidates> candidate_avail;
  candidate_avail[0] = current_total;
  for (unsigned p = 0; p < kNumPresetConfigs; ++p) {
    candidate_avail[p + 1] = set_.preset_total(p);
  }
  for (unsigned c = 0; c < kNumCandidates; ++c) {
    trace.errors[c] =
        mode_ == CemMode::kShiftApprox
            ? static_cast<double>(
                  cem_error_approx(trace.required, candidate_avail[c]))
            : cem_error_exact(trace.required, candidate_avail[c]);
  }

  // Stage 4: minimal error selection.
  trace.costs = reconfig_cost;
  unsigned best = 0;
  for (unsigned c = 1; c < kNumCandidates; ++c) {
    const bool better = trace.errors[c] < trace.errors[best];
    const bool tie = trace.errors[c] == trace.errors[best];
    bool wins_tie = false;
    switch (tie_break_) {
      case TieBreak::kPaper:
        // The current configuration (index 0) wins any tie it is part of;
        // among tied presets the least reconfiguration wins.
        wins_tie = best != 0 && reconfig_cost[c] < reconfig_cost[best];
        break;
      case TieBreak::kLeastReconfig:
        wins_tie = reconfig_cost[c] < reconfig_cost[best];
        break;
      case TieBreak::kLowestIndex:
        wins_tie = false;
        break;
    }
    if (better || (tie && wins_tie)) {
      best = c;
    }
  }
  trace.selection = best;
  for (unsigned c = 0; c < kNumCandidates; ++c) {
    trace.tie_broken =
        trace.tie_broken ||
        (c != best && trace.errors[c] == trace.errors[best]);
  }
  return trace;
}

}  // namespace steersim
