#include "config/loader.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace steersim {

ConfigurationLoader::ConfigurationLoader(const LoaderParams& params,
                                         AllocationVector initial)
    : params_(params), allocation_(std::move(initial)),
      target_(allocation_) {
  STEERSIM_EXPECTS(params.num_slots >= 1 &&
                   params.num_slots <= kMaxRfuSlots);
  STEERSIM_EXPECTS(params.cycles_per_slot >= 1);
  STEERSIM_EXPECTS(params.max_concurrent_regions >= 1);
  STEERSIM_EXPECTS(allocation_.num_slots() == params.num_slots);
}

void ConfigurationLoader::request(const AllocationVector& target) {
  STEERSIM_EXPECTS(target.num_slots() == params_.num_slots);
  if (target == target_) {
    return;
  }
  target_ = target;
  ++stats_.targets_requested;
}

bool ConfigurationLoader::region_satisfied(const SlotRegion& region) const {
  if (allocation_.code(region.base) != encoding_of(region.type)) {
    return false;
  }
  for (unsigned i = 1; i < region.len; ++i) {
    if (allocation_.code(region.base + i) != kEncContinuation) {
      return false;
    }
  }
  return true;
}

bool ConfigurationLoader::overlaps_active(unsigned base, unsigned len) const {
  for (const auto& rewrite : active_) {
    const unsigned lo = std::max(base, rewrite.region.base);
    const unsigned hi = std::min(base + len,
                                 rewrite.region.base + rewrite.region.len);
    if (lo < hi) {
      return true;
    }
  }
  return false;
}

SlotMask ConfigurationLoader::reconfiguring() const {
  SlotMask mask;
  for (const auto& rewrite : active_) {
    for (unsigned i = 0; i < rewrite.region.len; ++i) {
      mask.set(rewrite.region.base + i);
    }
  }
  if (full_remaining_ > 0) {
    for (unsigned i = 0; i < params_.num_slots; ++i) {
      mask.set(i);
    }
  }
  return mask;
}

unsigned ConfigurationLoader::reconfig_cost(
    const AllocationVector& candidate) const {
  STEERSIM_EXPECTS(candidate.num_slots() == params_.num_slots);
  // Slots covered by candidate regions not yet implemented. Target-empty
  // slots are don't-care: steering loads the units the chosen configuration
  // specifies and leaves leftover capacity in place (it can only help).
  unsigned cost = 0;
  for (const auto& region : candidate.regions()) {
    if (!region_satisfied(region)) {
      cost += region.len;
    }
  }
  return cost;
}

void ConfigurationLoader::step(SlotMask slot_busy) {
  if (params_.partial) {
    step_partial(slot_busy);
  } else {
    step_full(slot_busy);
  }
}

void ConfigurationLoader::step_partial(SlotMask slot_busy) {
  // Start rewrites for unsatisfied target regions whose slots are idle.
  // Starting precedes the tick so a rewrite's first cycle is the cycle it
  // begins (an N-cycle rewrite spans exactly N step() calls).
  bool blocked = false;
  for (const auto& region : target_.regions()) {
    if (active_.size() >= params_.max_concurrent_regions) {
      break;
    }
    if (region_satisfied(region) ||
        overlaps_active(region.base, region.len)) {
      continue;
    }
    // The region's own span must be idle...
    bool busy = false;
    for (unsigned i = 0; i < region.len; ++i) {
      busy = busy || slot_busy.test(region.base + i);
    }
    // ...and so must any current unit that pokes into the span from outside
    // (a busy unit drives all of its slots' busy bits, so checking the span
    // already covers it; an idle overlapping unit may be evicted).
    if (busy) {
      blocked = true;
      continue;
    }
    // Evict current units overlapping the span, then begin loading.
    for (const auto& current : allocation_.regions()) {
      const unsigned lo = std::max(current.base, region.base);
      const unsigned hi =
          std::min(current.base + current.len, region.base + region.len);
      if (lo < hi) {
        allocation_.clear_span(current.base, current.len);
      }
    }
    allocation_.clear_span(region.base, region.len);
    if (params_.instant) {
      allocation_.write_region(region);
      stats_.slots_rewritten += region.len;
    } else {
      active_.push_back(
          Rewrite{region, params_.cycles_per_slot * region.len});
    }
    ++stats_.regions_started;
  }
  if (blocked) {
    ++stats_.blocked_cycles;
  }

  // Tick in-flight rewrites; completed units come online.
  for (auto it = active_.begin(); it != active_.end();) {
    STEERSIM_ENSURES(it->remaining > 0);
    if (--it->remaining == 0) {
      allocation_.write_region(it->region);
      stats_.slots_rewritten += it->region.len;
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConfigurationLoader::step_full(SlotMask slot_busy) {
  if (full_remaining_ == 0) {
    const bool satisfied = std::ranges::all_of(
        target_.regions(),
        [this](const SlotRegion& r) { return region_satisfied(r); });
    if (satisfied) {
      return;
    }
    // Non-partial reconfiguration: the whole fabric is rewritten at once
    // and only when every slot is idle.
    if (slot_busy.any()) {
      ++stats_.blocked_cycles;
      return;
    }
    allocation_.clear_span(0, params_.num_slots);
    full_remaining_ = params_.cycles_per_slot * params_.num_slots;
  }
  if (--full_remaining_ == 0) {
    for (const auto& region : target_.regions()) {
      allocation_.write_region(region);
      stats_.slots_rewritten += region.len;
    }
    ++stats_.regions_started;
  }
}

}  // namespace steersim
