#include "config/loader.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "config/ecc.hpp"

namespace steersim {

ConfigurationLoader::ConfigurationLoader(const LoaderParams& params,
                                         AllocationVector initial)
    : params_(params), allocation_(std::move(initial)),
      target_(allocation_), requested_(allocation_) {
  STEERSIM_EXPECTS(params.num_slots >= 1 &&
                   params.num_slots <= kMaxRfuSlots);
  STEERSIM_EXPECTS(params.cycles_per_slot >= 1);
  STEERSIM_EXPECTS(params.max_concurrent_regions >= 1);
  STEERSIM_EXPECTS(allocation_.num_slots() == params.num_slots);
  for (unsigned i = 0; i < params_.num_slots; ++i) {
    quota_.set(i);
  }
  refresh_target_regions();
}

unsigned ConfigurationLoader::set_quota(SlotMask quota) {
  SlotMask allowed;
  for (unsigned i = 0; i < params_.num_slots; ++i) {
    if (quota.test(i)) {
      allowed.set(i);
    }
  }
  if (allowed == quota_) {
    return 0;
  }
  quota_ = allowed;
  barred_ = SlotMask{};
  for (unsigned i = 0; i < params_.num_slots; ++i) {
    if (!quota_.test(i)) {
      barred_.set(i);
    }
  }
  // Revoked slots behave like a fence arriving: abort rewrites touching
  // them and evict units straddling them — the slots now belong to some
  // other core's partition.
  unsigned evicted = 0;
  std::erase_if(active_, [this](const Rewrite& rewrite) {
    for (unsigned i = 0; i < rewrite.region.len; ++i) {
      if (barred_.test(rewrite.region.base + i)) {
        return true;
      }
    }
    return false;
  });
  for (const auto& region : allocation_.regions()) {
    bool hit = false;
    for (unsigned i = 0; i < region.len; ++i) {
      hit = hit || barred_.test(region.base + i);
    }
    if (hit) {
      allocation_.clear_span(region.base, region.len);
      ++evicted;
    }
  }
  stats_.quota_evictions += evicted;
  retarget();
  return evicted;
}

void ConfigurationLoader::refresh_target_regions() {
  target_regions_ = target_.regions();
}

void ConfigurationLoader::request(const AllocationVector& target) {
  STEERSIM_EXPECTS(target.num_slots() == params_.num_slots);
  if (target == requested_) {
    return;
  }
  requested_ = target;
  ++stats_.targets_requested;
  retarget();
  if (tracer_ != nullptr && tracer_->wants(trace_cat::kLoader, cycle_)) {
    tracer_->ensure_lane(trace_lane::kLoaderTarget, "loader target");
    TraceArgs args;
    args.str("target", target_.to_string());
    tracer_->instant("retarget", trace_cat::kLoader,
                     trace_lane::kLoaderTarget, cycle_, args);
  }
}

void ConfigurationLoader::retarget() {
  if (unplaceable().none()) {
    target_ = requested_;
    refresh_target_regions();
    return;
  }
  unsigned dropped = 0;
  target_ = place_avoiding_fence(requested_, &dropped);
  refresh_target_regions();
  stats_.units_dropped += dropped;
  // Detected-damage slots the new target no longer covers will never see a
  // repair rewrite; their span was already cleared, so stop tracking them.
  if (repairing_.any()) {
    SlotMask cover;
    for (const auto& region : target_regions_) {
      for (unsigned i = 0; i < region.len; ++i) {
        cover.set(region.base + i);
      }
    }
    repairing_ = repairing_ & cover;
  }
}

AllocationVector ConfigurationLoader::place_avoiding_fence(
    const AllocationVector& wanted, unsigned* dropped) const {
  if (unplaceable().none()) {
    return wanted;
  }
  AllocationVector placed(params_.num_slots);
  SlotMask used = unplaceable();
  for (const auto& region : wanted.regions()) {
    bool fits = false;
    for (unsigned base = 0; base + region.len <= params_.num_slots; ++base) {
      bool free = true;
      for (unsigned i = 0; i < region.len; ++i) {
        free = free && !used.test(base + i);
      }
      if (!free) {
        continue;
      }
      placed.write_region(SlotRegion{region.type, base, region.len});
      for (unsigned i = 0; i < region.len; ++i) {
        used.set(base + i);
      }
      fits = true;
      break;
    }
    if (!fits && dropped != nullptr) {
      ++*dropped;
    }
  }
  return placed;
}

bool ConfigurationLoader::region_satisfied(const SlotRegion& region) const {
  if (allocation_.code(region.base) != encoding_of(region.type)) {
    return false;
  }
  for (unsigned i = 1; i < region.len; ++i) {
    if (allocation_.code(region.base + i) != kEncContinuation) {
      return false;
    }
  }
  return true;
}

bool ConfigurationLoader::overlaps_active(unsigned base, unsigned len) const {
  for (const auto& rewrite : active_) {
    const unsigned lo = std::max(base, rewrite.region.base);
    const unsigned hi = std::min(base + len,
                                 rewrite.region.base + rewrite.region.len);
    if (lo < hi) {
      return true;
    }
  }
  return false;
}

SlotMask ConfigurationLoader::reconfiguring() const {
  SlotMask mask;
  for (const auto& rewrite : active_) {
    for (unsigned i = 0; i < rewrite.region.len; ++i) {
      mask.set(rewrite.region.base + i);
    }
  }
  if (full_remaining_ > 0) {
    for (unsigned i = 0; i < params_.num_slots; ++i) {
      mask.set(i);
    }
  }
  return mask;
}

bool ConfigurationLoader::quiescent() const {
  // Mirrors step(): with no active rewrites, no fault state, the scrubber
  // and ECC read path disabled, and every target region already on the
  // fabric, step() only advances cycle_ (step_partial starts nothing and
  // step_full returns satisfied).
  if (!active_.empty() || full_remaining_ != 0) {
    return false;
  }
  if ((corrupted_ | fenced_ | repairing_).any()) {
    return false;
  }
  if (params_.scrub_interval > 0 || params_.ecc) {
    return false;
  }
  return std::ranges::all_of(target_regions_, [this](const SlotRegion& r) {
    return region_satisfied(r);
  });
}

unsigned ConfigurationLoader::reconfig_cost(
    const AllocationVector& candidate) const {
  STEERSIM_EXPECTS(candidate.num_slots() == params_.num_slots);
  // Slots covered by candidate regions not yet implemented. Target-empty
  // slots are don't-care: steering loads the units the chosen configuration
  // specifies and leaves leftover capacity in place (it can only help).
  // With fenced slots the cost is that of the *realizable* placement, so
  // selectors rank candidates by what they would actually get.
  const AllocationVector placed = place_avoiding_fence(candidate);
  unsigned cost = 0;
  for (const auto& region : placed.regions()) {
    if (!region_satisfied(region)) {
      cost += region.len;
    }
  }
  return cost;
}

const AllocationVector& ConfigurationLoader::effective_allocation() const {
  const SlotMask broken = corrupted_ | fenced_;
  if (broken.none()) {
    return allocation_;
  }
  if (effective_valid_ && broken == effective_broken_ &&
      allocation_ == effective_base_) {
    return effective_;
  }
  AllocationVector effective = allocation_;
  for (const auto& region : allocation_.regions()) {
    bool hit = false;
    for (unsigned i = 0; i < region.len; ++i) {
      hit = hit || broken.test(region.base + i);
    }
    if (hit) {
      effective.clear_span(region.base, region.len);
    }
  }
  // Stray codes on broken slots outside any complete region read as garbage.
  for (unsigned slot = 0; slot < params_.num_slots; ++slot) {
    if (broken.test(slot)) {
      effective.clear_span(slot, 1);
    }
  }
  effective_broken_ = broken;
  effective_base_ = allocation_;
  effective_ = std::move(effective);
  effective_valid_ = true;
  return effective_;
}

bool ConfigurationLoader::corrupt_slot(unsigned slot) {
  STEERSIM_EXPECTS(slot < params_.num_slots);
  if (fenced_.test(slot)) {
    return false;
  }
  if (params_.ecc) {
    // Each upset flips one deterministic codeword bit, varied by the
    // slot's upset ordinal so a scripted double hit lands on two distinct
    // bits. Flipping the same bit an even number of times restores it.
    const unsigned bit = (slot + upset_seq_[slot]++) % 8u;
    ecc_flips_[slot] = static_cast<std::uint8_t>(ecc_flips_[slot] ^
                                                 (1u << bit));
  }
  if (!corrupted_.test(slot)) {
    corrupted_.set(slot);
    corrupt_cycle_[slot] = cycle_;  // detection latency from first upset
  }
  return true;
}

bool ConfigurationLoader::fence_slot(unsigned slot) {
  STEERSIM_EXPECTS(slot < params_.num_slots);
  if (fenced_.test(slot)) {
    return false;
  }
  fenced_.set(slot);
  corrupted_.reset(slot);
  repairing_.reset(slot);
  ecc_flips_[slot] = 0;
  ++stats_.fence_events;
  // Abort rewrites touching the slot: the write can never complete.
  std::erase_if(active_, [slot](const Rewrite& rewrite) {
    return slot >= rewrite.region.base &&
           slot < rewrite.region.base + rewrite.region.len;
  });
  // Evict the unit straddling the slot, if any; the survivors of its span
  // become free capacity for the re-placed target.
  for (const auto& region : allocation_.regions()) {
    if (slot >= region.base && slot < region.base + region.len) {
      allocation_.clear_span(region.base, region.len);
      break;
    }
  }
  allocation_.clear_span(slot, 1);
  retarget();
  return true;
}

void ConfigurationLoader::begin_span_write(unsigned base, unsigned len) {
  // Fresh frames replace whatever was in the span: pre-existing silent
  // corruption is healed incidentally (not counted as detected/repaired —
  // those are scrubber metrics). Upsets arriving *during* the rewrite set
  // corrupted_ again afterwards and persist past completion, modeling a
  // write whose frames were hit in flight.
  for (unsigned i = 0; i < len; ++i) {
    corrupted_.reset(base + i);
    ecc_flips_[base + i] = 0;
  }
}

void ConfigurationLoader::finish_span_write(unsigned base, unsigned len) {
  for (unsigned i = 0; i < len; ++i) {
    if (repairing_.test(base + i)) {
      repairing_.reset(base + i);
      ++stats_.slots_repaired;
    }
  }
}

void ConfigurationLoader::escalate_corruption(unsigned slot) {
  // Repair is region-granular: schedule a rewrite of the whole containing
  // unit by clearing its span — step_partial() then sees the target region
  // unsatisfied and rewrites it through the ordinary configuration port,
  // competing with steering rewrites.
  const auto detect = [this](unsigned s) {
    ++stats_.upsets_detected;
    const double latency = static_cast<double>(cycle_ - corrupt_cycle_[s]);
    stats_.detection_latency.add(latency);
    stats_.detection_latency_hist.add(latency);
    corrupted_.reset(s);
    ecc_flips_[s] = 0;
  };
  SlotMask target_cover;
  for (const auto& region : target_regions_) {
    for (unsigned i = 0; i < region.len; ++i) {
      target_cover.set(region.base + i);
    }
  }
  bool in_region = false;
  for (const auto& region : allocation_.regions()) {
    if (slot < region.base || slot >= region.base + region.len) {
      continue;
    }
    in_region = true;
    for (unsigned i = 0; i < region.len; ++i) {
      const unsigned s = region.base + i;
      if (corrupted_.test(s)) {
        detect(s);
        if (target_cover.test(s)) {
          repairing_.set(s);
        }
      }
    }
    allocation_.clear_span(region.base, region.len);
    break;
  }
  if (!in_region) {
    // Corrupted slot outside any complete unit (empty or a stray code):
    // detection rewrites it to empty on the spot — no port traffic.
    detect(slot);
    allocation_.clear_span(slot, 1);
  }
}

void ConfigurationLoader::scrub_readback() {
  const unsigned n = params_.num_slots;
  for (unsigned tried = 0; tried < n; ++tried) {
    const unsigned slot = scrub_ptr_;
    scrub_ptr_ = (scrub_ptr_ + 1) % n;
    if (fenced_.test(slot)) {
      continue;  // nothing to read back; advance to a live slot
    }
    ++stats_.scrub_reads;
    if (full_remaining_ > 0 || overlaps_active(slot, 1)) {
      return;  // frames changing under the readback; retry next pass
    }
    if (!corrupted_.test(slot)) {
      return;
    }
    escalate_corruption(slot);
    return;
  }
}

void ConfigurationLoader::ecc_check() {
  // The decoder sits on the functional configuration read path, so every
  // slot is (conceptually) decoded each cycle; only slots with an
  // outstanding upset can decode non-clean, so iterate those.
  if (corrupted_.none()) {
    return;
  }
  for (unsigned slot = 0; slot < params_.num_slots; ++slot) {
    if (!corrupted_.test(slot)) {
      continue;
    }
    const std::uint8_t flips = ecc_flips_[slot];
    if (flips == 0) {
      // An even number of upsets hit the same bit: the codeword reads
      // clean again. Nothing to detect or repair.
      corrupted_.reset(slot);
      continue;
    }
    const std::uint8_t truth = allocation_.code(slot);
    const EccDecoded dec =
        ecc_decode(static_cast<std::uint8_t>(ecc_encode(truth) ^ flips));
    if (dec.outcome == EccOutcome::kCorrected && dec.data == truth) {
      // Single-bit upset: corrected at read. No scrub pass, no rewrite —
      // the per-slot parity storage paid for the instant detection.
      ecc_flips_[slot] = 0;
      corrupted_.reset(slot);
      ++stats_.ecc_corrections;
      const double latency =
          static_cast<double>(cycle_ - corrupt_cycle_[slot]);
      stats_.detection_latency.add(latency);
      stats_.detection_latency_hist.add(latency);
    } else {
      // Double-bit (or aliased multi-bit) error: the decoder can only
      // flag it. Escalate to the ordinary repair path, exactly like a
      // scrub detection.
      ++stats_.ecc_uncorrectable;
      escalate_corruption(slot);
    }
  }
}

void ConfigurationLoader::step(SlotMask slot_busy) {
  // A corrected ECC upset still cost this cycle (the slot was masked from
  // issue until the read), so sample degradation before the correction.
  const bool ecc_degraded = params_.ecc && corrupted_.any();
  if (params_.ecc) {
    ecc_check();
  }
  if (params_.scrub_interval > 0) {
    if (scrub_countdown_ == 0) {
      scrub_readback();
      scrub_countdown_ = params_.scrub_interval;
    }
    --scrub_countdown_;
  }
  if (params_.partial) {
    step_partial(slot_busy);
  } else {
    step_full(slot_busy);
  }
  if (ecc_degraded || (corrupted_ | fenced_ | repairing_).any()) {
    ++stats_.degraded_cycles;
  }
  ++cycle_;
}

void ConfigurationLoader::step_partial(SlotMask slot_busy) {
  // Start rewrites for unsatisfied target regions whose slots are idle.
  // Starting precedes the tick so a rewrite's first cycle is the cycle it
  // begins (an N-cycle rewrite spans exactly N step() calls).
  bool blocked = false;
  for (const auto& region : target_regions_) {
    if (active_.size() >= params_.max_concurrent_regions) {
      break;
    }
    if (region_satisfied(region) ||
        overlaps_active(region.base, region.len)) {
      continue;
    }
    // The region's own span must be idle...
    bool busy = false;
    for (unsigned i = 0; i < region.len; ++i) {
      busy = busy || slot_busy.test(region.base + i);
    }
    // ...and so must any current unit that pokes into the span from outside
    // (a busy unit drives all of its slots' busy bits, so checking the span
    // already covers it; an idle overlapping unit may be evicted).
    if (busy) {
      blocked = true;
      continue;
    }
    // The shared configuration port must be ours before frames move. A
    // denial blocks every start this cycle (the port is core-granular),
    // but in-flight rewrites still tick below — the holder's port is
    // released only once its loader drains idle.
    if (port_ != nullptr && !port_->acquire(port_core_)) {
      ++stats_.port_denied_cycles;
      break;
    }
    // Evict current units overlapping the span, then begin loading.
    for (const auto& current : allocation_.regions()) {
      const unsigned lo = std::max(current.base, region.base);
      const unsigned hi =
          std::min(current.base + current.len, region.base + region.len);
      if (lo < hi) {
        allocation_.clear_span(current.base, current.len);
        begin_span_write(current.base, current.len);
      }
    }
    allocation_.clear_span(region.base, region.len);
    begin_span_write(region.base, region.len);
    if (params_.instant) {
      allocation_.write_region(region);
      stats_.slots_rewritten += region.len;
      finish_span_write(region.base, region.len);
      trace_rewrite(region, cycle_, 0);
    } else {
      active_.push_back(
          Rewrite{region, params_.cycles_per_slot * region.len, cycle_});
    }
    ++stats_.regions_started;
  }
  if (blocked) {
    ++stats_.blocked_cycles;
  }

  // Tick in-flight rewrites; completed units come online.
  for (auto it = active_.begin(); it != active_.end();) {
    STEERSIM_ENSURES(it->remaining > 0);
    if (--it->remaining == 0) {
      allocation_.write_region(it->region);
      stats_.slots_rewritten += it->region.len;
      finish_span_write(it->region.base, it->region.len);
      trace_rewrite(it->region, it->start, cycle_ - it->start + 1);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void ConfigurationLoader::trace_rewrite(const SlotRegion& region,
                                        std::uint64_t start,
                                        std::uint64_t duration) const {
  if (tracer_ == nullptr ||
      !tracer_->wants_span(trace_cat::kLoader, start, duration)) {
    return;
  }
  const unsigned lane = trace_lane::kSlotBase + region.base;
  if (!tracer_->lane_named(lane)) {
    tracer_->ensure_lane(lane, "rfu slot " + std::to_string(region.base));
  }
  TraceArgs args;
  args.num("base", std::uint64_t{region.base})
      .num("len", std::uint64_t{region.len});
  tracer_->complete(fu_type_name(region.type), trace_cat::kLoader, lane,
                    start, duration, args);
}

void ConfigurationLoader::step_full(SlotMask slot_busy) {
  if (full_remaining_ == 0) {
    const bool satisfied = std::ranges::all_of(
        target_regions_,
        [this](const SlotRegion& r) { return region_satisfied(r); });
    if (satisfied) {
      return;
    }
    // Non-partial reconfiguration: the whole fabric is rewritten at once
    // and only when every slot is idle.
    if (slot_busy.any()) {
      ++stats_.blocked_cycles;
      return;
    }
    if (port_ != nullptr && !port_->acquire(port_core_)) {
      ++stats_.port_denied_cycles;
      return;
    }
    allocation_.clear_span(0, params_.num_slots);
    begin_span_write(0, params_.num_slots);
    full_remaining_ = params_.cycles_per_slot * params_.num_slots;
    full_start_ = cycle_;
  }
  if (--full_remaining_ == 0) {
    for (const auto& region : target_regions_) {
      allocation_.write_region(region);
      stats_.slots_rewritten += region.len;
    }
    finish_span_write(0, params_.num_slots);
    ++stats_.regions_started;
    if (tracer_ != nullptr &&
        tracer_->wants_span(trace_cat::kLoader, full_start_,
                            cycle_ - full_start_ + 1)) {
      tracer_->ensure_lane(trace_lane::kSlotBase, "rfu slot 0");
      TraceArgs args;
      args.num("slots", std::uint64_t{params_.num_slots});
      tracer_->complete("full-reconfig", trace_cat::kLoader,
                        trace_lane::kSlotBase, full_start_,
                        cycle_ - full_start_ + 1, args);
    }
  }
}

}  // namespace steersim
