// The steering-configuration basis (paper Table 1).
//
// Three predefined configurations of the 8 RFU slots, plus the fixed FFU
// complement (one unit of every type). The exact per-configuration counts
// are reconstructed — the transcription of Table 1 is numerically corrupt —
// under the constraints the prose states: each predefined configuration
// fills the 8-slot budget, the set is "relatively orthogonal", and every
// type is always served by at least the FFUs. See DESIGN.md.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "config/allocation.hpp"

namespace steersim {

inline constexpr unsigned kDefaultRfuSlots = 8;
inline constexpr unsigned kNumPresetConfigs = 3;
/// Candidates considered by the selector: current + 3 presets.
inline constexpr unsigned kNumCandidates = kNumPresetConfigs + 1;

struct SteeringSet {
  std::string name;
  unsigned num_slots = kDefaultRfuSlots;
  /// RFU-portion unit counts of Config 1..3.
  std::array<FuCounts, kNumPresetConfigs> presets{};
  std::array<std::string, kNumPresetConfigs> preset_names{};
  /// Fixed functional units (always present).
  FuCounts ffu{};

  /// Canonical slot placement of preset `i` (0-based).
  AllocationVector preset_allocation(unsigned i) const;

  /// Total units provided when preset `i` is fully loaded (preset + FFUs).
  FuCounts preset_total(unsigned i) const;

  /// True if every preset fits the slot budget.
  bool feasible() const;
};

/// The reconstructed Table 1 basis:
///   FFUs:      1 IntAlu, 1 IntMdu, 1 Lsu, 1 FpAlu, 1 FpMdu
///   Config 1:  4 IntAlu, 1 IntMdu, 2 Lsu            ("integer")
///   Config 2:  2 IntAlu,           3 Lsu, 1 FpAlu   ("memory")
///   Config 3:  1 IntAlu,           1 Lsu, 1 FpAlu, 1 FpMdu ("float")
SteeringSet default_steering_set();

/// Alternative bases for the E7 steering-basis ablation.
SteeringSet clustered_basis();    ///< three near-identical int-leaning configs
SteeringSet degenerate_basis();   ///< single repeated configuration
SteeringSet balanced_basis();     ///< three copies of a balanced mix
std::vector<SteeringSet> all_bases();

}  // namespace steersim
