// The configuration selection unit (paper Sec. 3.1, Figs. 2 and 3).
//
// Four combinational stages, modelled bit-faithfully:
//   1. unit decoders        — per queue entry, a one-hot of the FU type
//                             required by the instruction's opcode;
//   2. requirements encoder — per type, a 3-bit count of required units
//                             (queue holds at most 7 instructions, so the
//                             counts and their sum fit in 3 bits);
//   3. CEM generators       — per candidate configuration, an error metric
//                             approximating Σ_t required(t)/available(t)
//                             with a barrel shifter whose shift amount is
//                             derived from the two high-order bits of the
//                             3-bit available count (Fig. 3c);
//   4. minimal error select — the 2-bit index of the winning configuration,
//                             ties favouring the current configuration and
//                             then the candidate needing the least
//                             reconfiguration.
#pragma once

#include <array>
#include <span>

#include "common/bitset.hpp"
#include "config/steering_set.hpp"
#include "isa/opcode.hpp"

namespace steersim {

/// Instruction queue capacity assumed by the paper's 3-bit arithmetic.
inline constexpr unsigned kQueueCapacity = 7;

/// One-hot FU-type vector produced by a unit decoder (stage 1).
using UnitOneHot = SmallBitset<kNumFuTypes>;

UnitOneHot unit_decode(Opcode op);

/// Stage 2: per-type 3-bit requirement counts, saturating at 7.
FuCounts encode_requirements(std::span<const Opcode> ready_ops);

/// Fig. 3c: shift amount (divisor exponent) from a 3-bit available count.
/// High-order bit set -> shift 2 (divide by 4); next bit -> shift 1; else 0.
constexpr unsigned cem_shift_amount(std::uint8_t avail) {
  if ((avail & 0b100) != 0) {
    return 2;
  }
  if ((avail & 0b010) != 0) {
    return 1;
  }
  return 0;
}

/// Fig. 3b: the shift-approximated error metric for one candidate.
/// Both inputs are 3-bit quantities per type; the five shifted terms are
/// summed by the 3-bit adder tree (total <= 7 by the queue bound).
unsigned cem_error_approx(const FuCounts& required, const FuCounts& available);

/// Fig. 3a evaluated exactly (the "more accurate divider" the paper notes
/// could be used at extra cost). Types with zero availability contribute
/// required(t) * kCemUnavailablePenalty.
double cem_error_exact(const FuCounts& required, const FuCounts& available);

inline constexpr double kCemUnavailablePenalty = 8.0;

enum class CemMode : std::uint8_t { kShiftApprox, kExactDivide };

/// Tie-break rule used by the minimal-error selector (E8 ablation).
enum class TieBreak : std::uint8_t {
  /// Paper rule: favour the current configuration, then the candidate
  /// needing the least reconfiguration.
  kPaper,
  /// Least reconfiguration only (current configuration not privileged).
  kLeastReconfig,
  /// Naive: first (lowest-index) candidate wins ties.
  kLowestIndex,
};

struct SelectionTrace {
  /// Stage 1 outputs, one per queue entry examined.
  std::array<UnitOneHot, kQueueCapacity> one_hots{};
  unsigned num_entries = 0;
  /// Stage 2 output.
  FuCounts required{};
  /// Stage 3 outputs, candidate order: [0]=current, [1..3]=presets.
  std::array<double, kNumCandidates> errors{};
  /// Stage 4 tie-break input, recorded for the steering audit log.
  std::array<unsigned, kNumCandidates> costs{};
  /// Stage 4 output (2-bit selection).
  unsigned selection = 0;
  /// True when a losing candidate matched the winning error exactly — the
  /// tie-break rule, not the CEM, decided this selection.
  bool tie_broken = false;
};

class ConfigSelectionUnit {
 public:
  explicit ConfigSelectionUnit(SteeringSet set,
                               CemMode mode = CemMode::kShiftApprox,
                               TieBreak tie_break = TieBreak::kPaper);

  /// Runs the four stages.
  ///   `ready_ops`        — opcodes of queue entries awaiting execution;
  ///   `current_total`    — units of each type currently configured
  ///                        (RFUs + FFUs), from the configuration loader;
  ///   `reconfig_cost`    — per candidate, slots that would need rewriting
  ///                        (0 for the current configuration).
  SelectionTrace select(std::span<const Opcode> ready_ops,
                        const FuCounts& current_total,
                        const std::array<unsigned, kNumCandidates>&
                            reconfig_cost) const;

  /// Stages 3-4 only, with the requirement vector supplied directly
  /// (lookahead steering merges queue and trace-cache requirements before
  /// entering the CEM stage).
  SelectionTrace select_counts(const FuCounts& required,
                               const FuCounts& current_total,
                               const std::array<unsigned, kNumCandidates>&
                                   reconfig_cost) const;

  const SteeringSet& steering_set() const { return set_; }
  CemMode mode() const { return mode_; }
  TieBreak tie_break() const { return tie_break_; }

 private:
  SteeringSet set_;
  CemMode mode_;
  TieBreak tie_break_;
};

}  // namespace steersim
