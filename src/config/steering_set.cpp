#include "config/steering_set.hpp"

#include "common/contracts.hpp"

namespace steersim {
namespace {

constexpr FuCounts make_counts(std::uint8_t int_alu, std::uint8_t int_mdu,
                               std::uint8_t lsu, std::uint8_t fp_alu,
                               std::uint8_t fp_mdu) {
  return FuCounts{int_alu, int_mdu, lsu, fp_alu, fp_mdu};
}

}  // namespace

AllocationVector SteeringSet::preset_allocation(unsigned i) const {
  STEERSIM_EXPECTS(i < kNumPresetConfigs);
  return AllocationVector::place(presets[i], num_slots);
}

FuCounts SteeringSet::preset_total(unsigned i) const {
  STEERSIM_EXPECTS(i < kNumPresetConfigs);
  FuCounts total{};
  for (unsigned t = 0; t < kNumFuTypes; ++t) {
    total[t] = static_cast<std::uint8_t>(presets[i][t] + ffu[t]);
  }
  return total;
}

bool SteeringSet::feasible() const {
  for (const auto& preset : presets) {
    if (slots_used(preset) > num_slots) {
      return false;
    }
  }
  return true;
}

SteeringSet default_steering_set() {
  SteeringSet set;
  set.name = "table1";
  set.num_slots = kDefaultRfuSlots;
  set.ffu = make_counts(1, 1, 1, 1, 1);
  set.presets[0] = make_counts(4, 1, 2, 0, 0);
  set.presets[1] = make_counts(2, 0, 3, 1, 0);
  set.presets[2] = make_counts(1, 0, 1, 1, 1);
  set.preset_names = {"integer", "memory", "float"};
  STEERSIM_ENSURES(set.feasible());
  return set;
}

SteeringSet clustered_basis() {
  SteeringSet set;
  set.name = "clustered";
  set.num_slots = kDefaultRfuSlots;
  set.ffu = make_counts(1, 1, 1, 1, 1);
  set.presets[0] = make_counts(4, 1, 2, 0, 0);
  set.presets[1] = make_counts(5, 0, 3, 0, 0);
  set.presets[2] = make_counts(3, 1, 3, 0, 0);
  set.preset_names = {"int-a", "int-b", "int-c"};
  STEERSIM_ENSURES(set.feasible());
  return set;
}

SteeringSet degenerate_basis() {
  SteeringSet set;
  set.name = "degenerate";
  set.num_slots = kDefaultRfuSlots;
  set.ffu = make_counts(1, 1, 1, 1, 1);
  const FuCounts only = make_counts(2, 1, 1, 1, 0);
  set.presets = {only, only, only};
  set.preset_names = {"fixed-a", "fixed-b", "fixed-c"};
  STEERSIM_ENSURES(set.feasible());
  return set;
}

SteeringSet balanced_basis() {
  SteeringSet set;
  set.name = "balanced";
  set.num_slots = kDefaultRfuSlots;
  set.ffu = make_counts(1, 1, 1, 1, 1);
  set.presets[0] = make_counts(2, 1, 1, 1, 0);
  set.presets[1] = make_counts(1, 1, 2, 1, 0);
  set.presets[2] = make_counts(2, 0, 2, 0, 1);
  set.preset_names = {"bal-a", "bal-b", "bal-c"};
  STEERSIM_ENSURES(set.feasible());
  return set;
}

std::vector<SteeringSet> all_bases() {
  return {default_steering_set(), clustered_basis(), degenerate_basis(),
          balanced_basis()};
}

}  // namespace steersim
