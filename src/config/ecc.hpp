// SECDED (single-error-correct, double-error-detect) protection for slot
// configuration encodings (docs/FAULTS.md).
//
// Each slot's 3-bit configuration code is stored as an extended-Hamming
// (8,4) codeword: four data bits (the code, zero-extended), three Hamming
// parity bits, and one overall parity bit. A decoder on the configuration
// read path then classifies every read:
//
//   - clean codeword            -> pass through
//   - single flipped bit        -> corrected in place (data or parity)
//   - two flipped bits          -> detected, uncorrectable
//
// This trades per-slot storage (8 bits instead of 4) for detect-at-read:
// no readback scrubbing pass is needed to notice an upset, so detection
// latency collapses from O(scrub_interval * num_slots) to the next read.
//
// Bit layout (classic extended Hamming): codeword bit i for i in 1..7 is
// Hamming position i (parity at the power-of-two positions 1, 2, 4; data
// at 3, 5, 6, 7) and bit 0 carries even parity over the whole word.
#pragma once

#include <bit>
#include <cstdint>

namespace steersim {

enum class EccOutcome : std::uint8_t {
  kClean,          ///< codeword valid as read
  kCorrected,      ///< single-bit error corrected (data intact after fix)
  kUncorrectable,  ///< double-bit error: detected, cannot be repaired
};

struct EccDecoded {
  std::uint8_t data = 0;  ///< decoded 4-bit payload (valid unless kUncorrectable)
  EccOutcome outcome = EccOutcome::kClean;
};

/// Encodes a 4-bit payload into an 8-bit SECDED codeword.
constexpr std::uint8_t ecc_encode(std::uint8_t data) {
  const unsigned d0 = (data >> 0) & 1u;
  const unsigned d1 = (data >> 1) & 1u;
  const unsigned d2 = (data >> 2) & 1u;
  const unsigned d3 = (data >> 3) & 1u;
  const unsigned p1 = d0 ^ d1 ^ d3;  // covers positions 3, 5, 7
  const unsigned p2 = d0 ^ d2 ^ d3;  // covers positions 3, 6, 7
  const unsigned p4 = d1 ^ d2 ^ d3;  // covers positions 5, 6, 7
  unsigned cw = (p1 << 1) | (p2 << 2) | (d0 << 3) | (p4 << 4) | (d1 << 5) |
                (d2 << 6) | (d3 << 7);
  cw |= static_cast<unsigned>(std::popcount(cw)) & 1u;  // even overall parity
  return static_cast<std::uint8_t>(cw);
}

/// Decodes an 8-bit codeword, correcting a single-bit error in place.
constexpr EccDecoded ecc_decode(std::uint8_t codeword) {
  unsigned cw = codeword;
  unsigned syndrome = 0;
  for (unsigned pos = 1; pos < 8; ++pos) {
    if ((cw >> pos) & 1u) {
      syndrome ^= pos;
    }
  }
  const bool parity_even = (std::popcount(cw) & 1) == 0;

  EccDecoded out;
  if (syndrome == 0 && parity_even) {
    out.outcome = EccOutcome::kClean;
  } else if (!parity_even) {
    // Odd overall parity: exactly one bit flipped — the Hamming syndrome
    // names it (0 means the overall-parity bit itself took the hit).
    if (syndrome != 0) {
      cw ^= 1u << syndrome;
    }
    out.outcome = EccOutcome::kCorrected;
  } else {
    // Nonzero syndrome with even parity: two bits flipped. The syndrome
    // points somewhere, but correcting would miscorrect — report instead.
    out.outcome = EccOutcome::kUncorrectable;
    return out;
  }
  out.data = static_cast<std::uint8_t>(((cw >> 3) & 1u) | (((cw >> 5) & 1u) << 1) |
                                       (((cw >> 6) & 1u) << 2) |
                                       (((cw >> 7) & 1u) << 3));
  return out;
}

}  // namespace steersim
