// Resource allocation vector (Sec. 3.2): one 3-bit code per RFU slot.
//
// This is the configuration loader's bookkeeping structure: it records what
// unit type occupies each slot, using the continuation encoding for the
// trailing slots of multi-slot units. The XOR-style diff between the chosen
// configuration's vector and the current vector determines which slots need
// rewriting.
#pragma once

#include <string>

#include "common/bitset.hpp"
#include "common/fixed_vector.hpp"
#include "config/encoding.hpp"

namespace steersim {

inline constexpr unsigned kMaxRfuSlots = 32;

using SlotMask = SmallBitset<kMaxRfuSlots>;

/// A unit instance's slot footprint.
struct SlotRegion {
  FuType type = FuType::kIntAlu;
  unsigned base = 0;
  unsigned len = 1;

  friend bool operator==(const SlotRegion&, const SlotRegion&) = default;
};

class AllocationVector {
 public:
  AllocationVector() = default;
  /// All slots empty.
  explicit AllocationVector(unsigned num_slots);

  /// Canonical placement of `counts` into `num_slots` slots: unit instances
  /// laid out contiguously in FuType order. Expects the counts to fit.
  static AllocationVector place(const FuCounts& counts, unsigned num_slots);

  unsigned num_slots() const {
    return static_cast<unsigned>(codes_.size());
  }

  std::uint8_t code(unsigned slot) const;
  void set_code(unsigned slot, std::uint8_t code);

  /// Writes a whole unit region (head code + continuations).
  void write_region(const SlotRegion& region);
  /// Clears a span of slots to empty.
  void clear_span(unsigned base, unsigned len);

  /// Unit instances currently present (head slots with valid type codes,
  /// extended over their continuation slots).
  FixedVector<SlotRegion, kMaxRfuSlots> regions() const;

  /// Per-type count of complete unit instances.
  FuCounts counts() const;

  /// Slots whose codes differ from `other` (the XOR difference of Sec. 3.2).
  SlotMask diff(const AllocationVector& other) const;

  /// e.g. "ALU ALU MDU > LSU . . ." ('>' = continuation, '.' = empty).
  std::string to_string() const;

  friend bool operator==(const AllocationVector&, const AllocationVector&) =
      default;

 private:
  FixedVector<std::uint8_t, kMaxRfuSlots> codes_;
};

}  // namespace steersim
