// Functional-unit type encodings and slot costs (paper Table 1).
//
// Each slot of reconfigurable logic carries a 3-bit code naming the unit it
// implements. A unit that spans multiple slots puts its type code in its
// first slot and the special continuation code in the rest, so availability
// logic (Eq. 1) counts each unit exactly once.
#pragma once

#include <cstdint>
#include <optional>

#include "common/contracts.hpp"
#include "isa/fu_type.hpp"

namespace steersim {

inline constexpr std::uint8_t kEncEmpty = 0b000;
inline constexpr std::uint8_t kEncIntAlu = 0b001;
inline constexpr std::uint8_t kEncIntMdu = 0b010;
inline constexpr std::uint8_t kEncLsu = 0b011;
inline constexpr std::uint8_t kEncFpAlu = 0b100;
inline constexpr std::uint8_t kEncFpMdu = 0b101;
/// Slot holds a continuation of the multi-slot unit that starts earlier.
inline constexpr std::uint8_t kEncContinuation = 0b111;

constexpr std::uint8_t encoding_of(FuType t) {
  switch (t) {
    case FuType::kIntAlu:
      return kEncIntAlu;
    case FuType::kIntMdu:
      return kEncIntMdu;
    case FuType::kLsu:
      return kEncLsu;
    case FuType::kFpAlu:
      return kEncFpAlu;
    case FuType::kFpMdu:
      return kEncFpMdu;
  }
  STEERSIM_UNREACHABLE("bad FuType");
}

/// Inverse of encoding_of; nullopt for empty/continuation/undefined codes.
constexpr std::optional<FuType> type_from_encoding(std::uint8_t code) {
  switch (code) {
    case kEncIntAlu:
      return FuType::kIntAlu;
    case kEncIntMdu:
      return FuType::kIntMdu;
    case kEncLsu:
      return FuType::kLsu;
    case kEncFpAlu:
      return FuType::kFpAlu;
    case kEncFpMdu:
      return FuType::kFpMdu;
    default:
      return std::nullopt;
  }
}

/// Reconfigurable-slot footprint of a unit instance (Sec. 4.2: LSUs and
/// Int-ALUs take one slot, Int-MDUs two, FP units three).
constexpr unsigned slot_cost(FuType t) {
  switch (t) {
    case FuType::kIntAlu:
      return 1;
    case FuType::kIntMdu:
      return 2;
    case FuType::kLsu:
      return 1;
    case FuType::kFpAlu:
      return 3;
    case FuType::kFpMdu:
      return 3;
  }
  STEERSIM_UNREACHABLE("bad FuType");
}

/// Total slots consumed by a per-type unit-count vector.
constexpr unsigned slots_used(const FuCounts& counts) {
  unsigned total = 0;
  for (const FuType t : kAllFuTypes) {
    total += counts[fu_index(t)] * slot_cost(t);
  }
  return total;
}

}  // namespace steersim
