#include "config/circuit_cost.hpp"

#include "config/selection_unit.hpp"
#include "isa/opcode.hpp"

namespace steersim {
namespace {

/// A CSA/ripple tree summing `operands` values of `bits` bits each:
/// roughly (operands-1) adders of ~5*bits gates, depth log2(operands)
/// levels of ~2*bits gate delays.
CircuitCost adder_tree(unsigned operands, unsigned bits) {
  if (operands <= 1) {
    return {0, 0};
  }
  unsigned levels = 0;
  for (unsigned n = operands; n > 1; n = (n + 1) / 2) {
    ++levels;
  }
  return {(operands - 1) * 5 * bits, levels * 2 * bits};
}

}  // namespace

CircuitCost unit_decoder_cost() {
  // 7-bit opcode -> kNumOpcodes minterms (6 AND2 each after sharing) ->
  // 5 OR trees of ~kNumOpcodes/5 inputs.
  const unsigned minterms = kNumOpcodes;
  const unsigned and_plane = minterms * 6;
  const unsigned or_inputs = (minterms + kNumFuTypes - 1) / kNumFuTypes;
  const unsigned or_trees = kNumFuTypes * (or_inputs - 1);
  // Depth: ~3 levels of AND + log2(or_inputs) levels of OR.
  unsigned or_depth = 0;
  for (unsigned n = or_inputs; n > 1; n = (n + 1) / 2) {
    ++or_depth;
  }
  return {and_plane + or_trees, 3 + or_depth};
}

CircuitCost requirements_encoder_cost(unsigned queue_entries) {
  // Per FU type: sum `queue_entries` one-bit wires into a 3-bit count
  // (population count = adder tree over 1-bit operands widening to 3),
  // plus saturation (2 gates).
  const CircuitCost per_type = adder_tree(queue_entries, 2) +
                               CircuitCost{2, 1};
  return CircuitCost::parallel(per_type, kNumFuTypes);
}

CircuitCost cem_approx_cost() {
  // Per type: shift control from 2 high-order bits (2 gates, depth 1) +
  // a 3-bit 2-stage barrel shifter (2 levels x 3 muxes x 3 gates).
  const CircuitCost shifter = {2 + 2 * 3 * 3, 1 + 2 * 2};
  // Sum of five 3-bit terms.
  return CircuitCost::parallel(shifter, kNumFuTypes) + adder_tree(5, 3);
}

CircuitCost cem_exact_cost() {
  // Per type: a 3/3-bit restoring array divider: 3 rows, each a 3-bit
  // controlled subtractor (~18 gates) + quotient logic (~4), serial rows.
  const CircuitCost divider = {3 * (18 + 4), 3 * 8};
  // Quotients are up to 3 bits but fractional precision needs ~6 bits to
  // order candidates as real division would; sum five 6-bit terms.
  return CircuitCost::parallel(divider, kNumFuTypes) + adder_tree(5, 6);
}

CircuitCost minimal_error_selector_cost() {
  // Tournament over 4 candidates: 3 compare-select nodes. Each: 3-bit
  // magnitude comparator (~12 gates, depth 4) + tie-break compare on
  // reconfiguration cost (~12 gates) + 2-bit index mux (~6 gates).
  const CircuitCost node = {12 + 12 + 6, 4 + 2};
  return {node.gates * 3, node.depth * 2};  // two tournament levels
}

CircuitCost selection_unit_cost(unsigned queue_entries, bool exact_divider) {
  const CircuitCost decoders =
      CircuitCost::parallel(unit_decoder_cost(), queue_entries);
  const CircuitCost encoder = requirements_encoder_cost(queue_entries);
  const CircuitCost cem = CircuitCost::parallel(
      exact_divider ? cem_exact_cost() : cem_approx_cost(), kNumCandidates);
  const CircuitCost selector = minimal_error_selector_cost();
  // Gates add across stages; depth is the serial combinational path
  // decoder -> encoder -> cem -> selector (parallel replication inside a
  // stage leaves its depth unchanged).
  return decoders + encoder + cem + selector;
}

}  // namespace steersim
