// The configuration loader (paper Sec. 3.2).
//
// Owns the resource allocation vector, tracks in-flight slot rewrites, and
// steers the fabric toward the configuration chosen by the selection unit:
// each cycle it diffs the chosen configuration against the current one and
// begins (partially) reconfiguring unit regions whose slots are idle.
// Busy slots are skipped — that is what makes the active configuration a
// hybrid overlap of steering configurations. A non-partial mode reproduces
// the [7]-style baseline where the whole fabric must be rewritten at once.
#pragma once

#include <vector>

#include "config/allocation.hpp"

namespace steersim {

struct LoaderParams {
  unsigned num_slots = 8;
  /// Partial-reconfiguration cost: cycles to rewrite one slot.
  unsigned cycles_per_slot = 8;
  /// Concurrent region rewrites (1 models a single ICAP-style config port).
  unsigned max_concurrent_regions = 1;
  /// false => full-fabric reconfiguration baseline (no partial rewrites).
  bool partial = true;
  /// Oracle mode: rewrites complete in the same cycle they start (busy
  /// slots are still respected). Used only by the oracle upper bound.
  bool instant = false;
};

struct LoaderStats {
  std::uint64_t targets_requested = 0;  ///< distinct target changes
  std::uint64_t regions_started = 0;
  std::uint64_t slots_rewritten = 0;
  /// Cycles in which at least one wanted region could not start because a
  /// slot it needs was busy executing.
  std::uint64_t blocked_cycles = 0;
};

class ConfigurationLoader {
 public:
  ConfigurationLoader(const LoaderParams& params, AllocationVector initial);

  /// Sets the steering target (the configuration chosen by the selector).
  /// In-flight rewrites for a previous target run to completion.
  void request(const AllocationVector& target);
  const AllocationVector& target() const { return target_; }

  /// Advances one cycle. `slot_busy` marks slots whose unit is executing a
  /// multi-cycle instruction (all slots of a busy unit are set).
  void step(SlotMask slot_busy);

  /// Units currently loaded and usable. Slots under rewrite are cleared, so
  /// `allocation().counts()` is exactly the configured-unit count vector.
  const AllocationVector& allocation() const { return allocation_; }

  SlotMask reconfiguring() const;
  bool idle() const { return active_.empty() && full_remaining_ == 0; }

  /// Slots that would need rewriting to realize `candidate` from the
  /// current allocation (the selector's least-reconfiguration tie-break).
  unsigned reconfig_cost(const AllocationVector& candidate) const;

  const LoaderStats& stats() const { return stats_; }
  const LoaderParams& params() const { return params_; }

 private:
  struct Rewrite {
    SlotRegion region;
    unsigned remaining = 0;
  };

  /// True if `allocation_` already implements `region` exactly.
  bool region_satisfied(const SlotRegion& region) const;
  /// True if any slot of [base, base+len) is part of an active rewrite.
  bool overlaps_active(unsigned base, unsigned len) const;
  void step_partial(SlotMask slot_busy);
  void step_full(SlotMask slot_busy);

  LoaderParams params_;
  AllocationVector allocation_;
  AllocationVector target_;
  std::vector<Rewrite> active_;
  unsigned full_remaining_ = 0;  ///< full-reconfig mode countdown
  LoaderStats stats_;
};

}  // namespace steersim
