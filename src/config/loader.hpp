// The configuration loader (paper Sec. 3.2).
//
// Owns the resource allocation vector, tracks in-flight slot rewrites, and
// steers the fabric toward the configuration chosen by the selection unit:
// each cycle it diffs the chosen configuration against the current one and
// begins (partially) reconfiguring unit regions whose slots are idle.
// Busy slots are skipped — that is what makes the active configuration a
// hybrid overlap of steering configurations. A non-partial mode reproduces
// the [7]-style baseline where the whole fabric must be rewritten at once.
//
// Fault extension (docs/FAULTS.md): configuration memory can suffer
// transient upsets (a slot's bits silently corrupted) and permanent slot
// failures (the slot fenced off for good). The loader masks broken slots
// out of the allocation the rest of the machine sees, runs an optional
// readback scrubber that walks one slot every `scrub_interval` cycles to
// detect silent corruption, and repairs detected regions through the
// ordinary partial-reconfiguration path — repair rewrites compete with
// steering rewrites for the same configuration port. Fenced slots are
// routed around: requested targets are re-placed onto the surviving slots
// (first fit, preserving the candidate's unit order) and units that no
// longer fit are dropped, so steering always chooses among *realizable*
// configurations on the shrunken fabric.
#pragma once

#include <array>
#include <vector>

#include "common/stats.hpp"
#include "config/allocation.hpp"
#include "obs/trace.hpp"

namespace steersim {

struct LoaderParams {
  unsigned num_slots = 8;
  /// Partial-reconfiguration cost: cycles to rewrite one slot.
  unsigned cycles_per_slot = 8;
  /// Concurrent region rewrites (1 models a single ICAP-style config port).
  unsigned max_concurrent_regions = 1;
  /// false => full-fabric reconfiguration baseline (no partial rewrites).
  bool partial = true;
  /// Oracle mode: rewrites complete in the same cycle they start (busy
  /// slots are still respected). Used only by the oracle upper bound.
  bool instant = false;
  /// Scrubber readback cadence: one slot is read back every
  /// `scrub_interval` cycles (0 disables scrubbing). Readback uses a
  /// dedicated port and is free; only the repair *rewrites* it schedules
  /// occupy the configuration port.
  unsigned scrub_interval = 0;
  /// SECDED-protected slot encodings (src/config/ecc.hpp): every read
  /// decodes the slot's codeword, correcting single-bit upsets in place
  /// and escalating double-bit errors to the repair path. Detect-at-read
  /// makes the scrubber redundant (scrub_interval may stay 0), trading
  /// readback traffic for per-slot storage (8 codeword bits vs 4).
  bool ecc = false;
};

/// Shared configuration write port (multi-core fabric, docs/DESIGN.md
/// §Multi-core shared fabric). When several loaders feed one fabric, each
/// is wired to the fabric's arbiter; a loader asks acquire() at the moment
/// it would otherwise begin a rewrite, and the arbiter answers whether the
/// port is (or just became) this core's. A core that holds the port keeps
/// it until its loader drains idle — the fabric polls and releases.
class ConfigPortArbiter {
 public:
  virtual ~ConfigPortArbiter() = default;
  /// True if `core` may start rewrites this cycle (idempotent within a
  /// cycle for the holder).
  virtual bool acquire(unsigned core) = 0;
};

struct LoaderStats {
  std::uint64_t targets_requested = 0;  ///< distinct target changes
  std::uint64_t regions_started = 0;
  std::uint64_t slots_rewritten = 0;
  /// Cycles in which at least one wanted region could not start because a
  /// slot it needs was busy executing.
  std::uint64_t blocked_cycles = 0;
  /// Cycles a wanted rewrite could not start because the shared
  /// configuration port was granted to another core (grant latency).
  std::uint64_t port_denied_cycles = 0;
  /// Units evicted because a quota repartition revoked their slots.
  std::uint64_t quota_evictions = 0;

  // Scrubbing / fault-recovery side (see docs/FAULTS.md).
  std::uint64_t scrub_reads = 0;       ///< readback operations performed
  std::uint64_t upsets_detected = 0;   ///< corrupted slots found by readback
  std::uint64_t slots_repaired = 0;    ///< detected slots restored by rewrites
  std::uint64_t fence_events = 0;      ///< permanent failures accepted
  std::uint64_t units_dropped = 0;     ///< target units unplaceable after fencing
  /// ECC side (LoaderParams::ecc): single-bit upsets corrected at read and
  /// double-bit codewords escalated to the repair path.
  std::uint64_t ecc_corrections = 0;
  std::uint64_t ecc_uncorrectable = 0;
  /// Cycles with any fault state outstanding (silent corruption, detected
  /// damage awaiting rewrite, or fenced slots).
  std::uint64_t degraded_cycles = 0;
  /// Upset-to-detection delay of every scrub detection, in cycles.
  RunningStat detection_latency;
  Histogram detection_latency_hist{0.0, 4096.0, 32};

  /// Metric-registry enumeration (docs/OBSERVABILITY.md).
  template <typename V>
  void visit_metrics(V&& visit) const {
    visit("targets_requested", static_cast<double>(targets_requested));
    visit("regions_started", static_cast<double>(regions_started));
    visit("slots_rewritten", static_cast<double>(slots_rewritten));
    visit("blocked_cycles", static_cast<double>(blocked_cycles));
    visit("port_denied_cycles", static_cast<double>(port_denied_cycles));
    visit("quota_evictions", static_cast<double>(quota_evictions));
    visit("scrub_reads", static_cast<double>(scrub_reads));
    visit("upsets_detected", static_cast<double>(upsets_detected));
    visit("slots_repaired", static_cast<double>(slots_repaired));
    visit("fence_events", static_cast<double>(fence_events));
    visit("units_dropped", static_cast<double>(units_dropped));
    visit("ecc_corrections", static_cast<double>(ecc_corrections));
    visit("ecc_uncorrectable", static_cast<double>(ecc_uncorrectable));
    visit("degraded_cycles", static_cast<double>(degraded_cycles));
    if (detection_latency.count() > 0) {
      visit("detection_latency_mean", detection_latency.mean(), true);
      visit("detection_latency_max", detection_latency.max(), true);
      visit("detection_latency_p95",
            detection_latency_hist.quantile(0.95), true);
    }
  }
};

class ConfigurationLoader {
 public:
  ConfigurationLoader(const LoaderParams& params, AllocationVector initial);

  /// Sets the steering target (the configuration chosen by the selector).
  /// In-flight rewrites for a previous target run to completion. With
  /// fenced slots present the target is first re-placed around them.
  void request(const AllocationVector& target);
  const AllocationVector& target() const { return target_; }
  /// The last externally requested target, before any fence re-placement
  /// (checkpoint/rollback snapshots restore steering intent through this).
  const AllocationVector& requested() const { return requested_; }

  /// Advances one cycle. `slot_busy` marks slots whose unit is executing a
  /// multi-cycle instruction (all slots of a busy unit are set).
  void step(SlotMask slot_busy);

  /// Units currently loaded and usable. Slots under rewrite are cleared, so
  /// `allocation().counts()` is exactly the configured-unit count vector.
  /// This is the loader's *bookkeeping* view: silently corrupted units are
  /// still present here (the hardware does not know they broke).
  const AllocationVector& allocation() const { return allocation_; }

  /// The allocation the execution engine may actually use: regions
  /// overlapping corrupted or fenced slots are masked out, so no
  /// instruction ever issues to a broken unit. Fault-free (the hot case —
  /// this sat atop the cycle-loop profile as a per-cycle copy) it is
  /// `allocation()` itself; with fault state present the masked form is
  /// memoized against the exact (allocation, broken-mask) inputs, so
  /// repeated reads between slot writes cost one comparison. The returned
  /// reference is invalidated by any mutating loader call.
  const AllocationVector& effective_allocation() const;

  SlotMask reconfiguring() const;
  bool idle() const { return active_.empty() && full_remaining_ == 0; }

  /// True when a step() would change nothing but the internal cycle
  /// counter: no rewrites in flight, the target fully implemented, no
  /// fault state, and no background machinery (scrubber, ECC) running.
  /// The processor's event-driven skip-ahead keys off this.
  bool quiescent() const;

  /// Replaces `cycles` quiescent step() calls (cycle-counter advance only).
  /// Caller must hold quiescent() true for the whole window.
  void fast_forward(std::uint64_t cycles) { cycle_ += cycles; }

  /// Slots that would need rewriting to realize `candidate` from the
  /// current allocation (the selector's least-reconfiguration tie-break).
  /// With fenced slots present the cost is computed against the re-placed
  /// (realizable) form of the candidate.
  unsigned reconfig_cost(const AllocationVector& candidate) const;

  // Fault hooks (called by the processor's injection stage).
  /// Marks a slot's configuration memory as corrupted. Returns false if
  /// the slot is fenced (dead config logic cannot be upset in any way that
  /// matters). Corruption is silent: only effective_allocation() changes.
  bool corrupt_slot(unsigned slot);
  /// Permanently fences a slot: evicts the unit occupying it, aborts any
  /// rewrite touching it, and re-places the requested target around the
  /// fence. Returns false if already fenced.
  bool fence_slot(unsigned slot);

  SlotMask corrupted() const { return corrupted_; }
  SlotMask fenced() const { return fenced_; }
  /// Detected-damage slots whose repair rewrite has not completed yet.
  SlotMask repairing() const { return repairing_; }

  // Multi-core fabric hooks (src/multicore/). Both default to the
  // single-core identity: no arbiter installed, quota = every slot.
  /// Wires this loader to a shared configuration-port arbiter as `core`.
  /// nullptr detaches (rewrites start unconditionally again).
  void set_port_arbiter(ConfigPortArbiter* arbiter, unsigned core) {
    port_ = arbiter;
    port_core_ = core;
  }
  /// Restricts placement to `quota` (intersected with the real slot
  /// range): targets are re-placed inside it and units sitting on revoked
  /// slots are evicted, their rewrites aborted. Returns the number of
  /// units evicted. A full quota restores single-core behaviour exactly.
  unsigned set_quota(SlotMask quota);
  SlotMask quota() const { return quota_; }
  /// Slots placement must avoid: fenced plus outside-quota. reconfig_cost
  /// is a pure function of (allocation, unplaceable); policy cost memos
  /// key on this.
  SlotMask unplaceable() const { return fenced_ | barred_; }

  const LoaderStats& stats() const { return stats_; }
  const LoaderParams& params() const { return params_; }

  /// Attaches the cycle tracer (nullptr detaches): region rewrites emit
  /// trace_cat::kLoader duration events on per-slot lanes. Observation
  /// only — never affects loader behaviour.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Rewrite {
    SlotRegion region;
    unsigned remaining = 0;
    std::uint64_t start = 0;  ///< cycle_ when the rewrite began (tracing)
  };

  /// True if `allocation_` already implements `region` exactly.
  bool region_satisfied(const SlotRegion& region) const;
  /// True if any slot of [base, base+len) is part of an active rewrite.
  bool overlaps_active(unsigned base, unsigned len) const;
  void step_partial(SlotMask slot_busy);
  void step_full(SlotMask slot_busy);

  /// Re-places `wanted`'s unit regions onto non-fenced, in-quota slots,
  /// first fit in the candidate's own region order; units that fit nowhere
  /// are dropped (counted into *dropped if given). Identity when nothing
  /// is fenced and the quota is full.
  AllocationVector place_avoiding_fence(const AllocationVector& wanted,
                                        unsigned* dropped = nullptr) const;
  /// Recomputes target_ from requested_ after the fence set grew.
  void retarget();
  /// A rewrite is about to lay fresh frames over [base, base+len): clears
  /// pre-existing corruption (the write replaces the bits).
  void begin_span_write(unsigned base, unsigned len);
  /// A rewrite finished writing [base, base+len): completes any pending
  /// repairs in the span.
  void finish_span_write(unsigned base, unsigned len);
  /// One readback step of the scrubber.
  void scrub_readback();
  /// Decodes every outstanding-upset codeword (the ECC read path runs
  /// every cycle): corrects single-bit errors in place, escalates the rest.
  void ecc_check();
  /// Confirmed damage at `slot` (scrub mismatch or uncorrectable ECC):
  /// records detections for every corrupted slot of the containing unit,
  /// clears its span so the partial-reconfiguration path rewrites it, and
  /// marks target-covered slots as repairing.
  void escalate_corruption(unsigned slot);

  /// Re-derives the cached region decode after any assignment to target_.
  void refresh_target_regions();

  LoaderParams params_;
  AllocationVector allocation_;
  AllocationVector target_;     ///< realizable target actually steered to
  AllocationVector requested_;  ///< last externally requested target
  /// Cached target_.regions(): the per-cycle step path iterates the target
  /// regions, and the decode only changes when the target does.
  FixedVector<SlotRegion, kMaxRfuSlots> target_regions_;
  std::vector<Rewrite> active_;
  unsigned full_remaining_ = 0;  ///< full-reconfig mode countdown

  // Multi-core fabric state (identity defaults for single-core use).
  ConfigPortArbiter* port_ = nullptr;  ///< shared write port; never owns
  unsigned port_core_ = 0;             ///< this loader's core id at the port
  SlotMask quota_;                     ///< slots this core may place onto
  SlotMask barred_;                    ///< complement of quota_ over the fabric

  // Fault state.
  SlotMask corrupted_;   ///< silent upsets not yet detected or overwritten
  SlotMask fenced_;      ///< permanently failed slots
  SlotMask repairing_;   ///< detected damage awaiting a repair rewrite
  std::array<std::uint64_t, kMaxRfuSlots> corrupt_cycle_{};
  /// ECC mode: accumulated flipped codeword bits per slot (0 = clean) and
  /// a per-slot upset ordinal that decorrelates which bit each hit flips.
  std::array<std::uint8_t, kMaxRfuSlots> ecc_flips_{};
  std::array<std::uint8_t, kMaxRfuSlots> upset_seq_{};
  std::uint64_t cycle_ = 0;       ///< step() count, for latency bookkeeping
  unsigned scrub_countdown_ = 0;
  unsigned scrub_ptr_ = 0;        ///< next slot the readback pass visits
  std::uint64_t full_start_ = 0;  ///< full-reconfig start cycle (tracing)

  /// effective_allocation() memo for the degraded path (fault state
  /// present): self-validating against the exact inputs the masked form
  /// was derived from, so no mutation site needs an invalidation hook.
  mutable bool effective_valid_ = false;
  mutable SlotMask effective_broken_;
  mutable AllocationVector effective_base_;
  mutable AllocationVector effective_;

  Tracer* tracer_ = nullptr;  ///< optional observer; never owns
  LoaderStats stats_;

  /// Trace hook: one duration event per completed region rewrite.
  void trace_rewrite(const SlotRegion& region, std::uint64_t start,
                     std::uint64_t duration) const;
};

}  // namespace steersim
