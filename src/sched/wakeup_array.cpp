#include "sched/wakeup_array.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace steersim {

WakeupArray::WakeupArray(unsigned num_entries) : entries_(num_entries) {
  STEERSIM_EXPECTS(num_entries >= 1 && num_entries <= kMaxWakeupEntries);
}

bool WakeupArray::full() const { return free_entries() == 0; }

unsigned WakeupArray::free_entries() const {
  unsigned n = 0;
  for (const auto& e : entries_) {
    n += e.valid ? 0u : 1u;
  }
  return n;
}

std::optional<unsigned> WakeupArray::insert(FuType fu, EntryMask deps,
                                            std::uint64_t tag) {
  for (unsigned i = 0; i < num_entries(); ++i) {
    if (!entries_[i].valid) {
      WakeupEntry& e = entries_[i];
      e.valid = true;
      e.scheduled = false;
      e.fu = fu;
      e.deps = deps;
      e.timer = 0;
      e.result_available = false;
      e.age = next_age_++;
      e.tag = tag;
      ++stats_.inserts;
      return i;
    }
  }
  return std::nullopt;
}

EntryMask WakeupArray::request_execution(
    const ResourceAvail& resource_available) const {
  EntryMask requests;
  for (unsigned i = 0; i < num_entries(); ++i) {
    const WakeupEntry& e = entries_[i];
    if (!e.valid || e.scheduled) {
      continue;
    }
    // Resource columns: "required -> available" per type (one-hot, so only
    // the entry's own FU column can be required).
    bool ready = resource_available[fu_index(e.fu)];
    // Entry-result columns: every needed producer's available line high.
    for (unsigned j = 0; ready && j < num_entries(); ++j) {
      if (e.deps.test(j)) {
        ready = entries_[j].valid && entries_[j].result_available;
      }
    }
    if (ready) {
      requests.set(i);
    }
  }
  return requests;
}

void WakeupArray::grant(unsigned idx, unsigned latency) {
  STEERSIM_EXPECTS(idx < num_entries());
  STEERSIM_EXPECTS(latency >= 1);
  WakeupEntry& e = entries_[idx];
  STEERSIM_EXPECTS(e.valid && !e.scheduled);
  e.scheduled = true;
  // Count latency end-of-cycle ticks before asserting the available line;
  // a dependent's request stage then sees it exactly latency cycles after
  // this grant (back-to-back for single-cycle producers). This is the
  // paper's "set the timer to N-1, assert at a count of one" expressed
  // against our end-of-cycle tick.
  e.timer = latency;
  e.result_available = false;
  ++stats_.grants;
}

void WakeupArray::reschedule(unsigned idx) {
  STEERSIM_EXPECTS(idx < num_entries());
  WakeupEntry& e = entries_[idx];
  STEERSIM_EXPECTS(e.valid);
  e.scheduled = false;
  e.timer = 0;
  e.result_available = false;
  ++stats_.reschedules;
}

void WakeupArray::clear_entry(unsigned idx) {
  entries_[idx] = WakeupEntry{};
  for (auto& e : entries_) {
    e.deps.reset(idx);
  }
}

void WakeupArray::retire(unsigned idx) {
  STEERSIM_EXPECTS(idx < num_entries());
  STEERSIM_EXPECTS(entries_[idx].valid);
  clear_entry(idx);
  ++stats_.retires;
}

void WakeupArray::squash(unsigned idx) {
  STEERSIM_EXPECTS(idx < num_entries());
  STEERSIM_EXPECTS(entries_[idx].valid);
  clear_entry(idx);
  ++stats_.squashes;
}

void WakeupArray::tick() {
  for (auto& e : entries_) {
    if (e.valid && e.scheduled && e.timer > 0) {
      if (--e.timer == 0) {
        e.result_available = true;
      }
    }
  }
}

const WakeupEntry& WakeupArray::entry(unsigned idx) const {
  STEERSIM_EXPECTS(idx < num_entries());
  return entries_[idx];
}

std::vector<unsigned> WakeupArray::age_order() const {
  std::vector<unsigned> order;
  order.reserve(entries_.size());
  for (unsigned i = 0; i < num_entries(); ++i) {
    if (entries_[i].valid) {
      order.push_back(i);
    }
  }
  std::ranges::sort(order, [this](unsigned a, unsigned b) {
    return entries_[a].age < entries_[b].age;
  });
  return order;
}

EntryMask WakeupArray::unscheduled() const {
  EntryMask mask;
  for (unsigned i = 0; i < num_entries(); ++i) {
    if (entries_[i].valid && !entries_[i].scheduled) {
      mask.set(i);
    }
  }
  return mask;
}

}  // namespace steersim
