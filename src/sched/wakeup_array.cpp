#include "sched/wakeup_array.hpp"

#include <algorithm>
#include <bit>

#include "common/contracts.hpp"

namespace steersim {

WakeupArray::WakeupArray(unsigned num_entries) : entries_(num_entries) {
  STEERSIM_EXPECTS(num_entries >= 1 && num_entries <= kMaxWakeupEntries);
}

std::optional<unsigned> WakeupArray::insert(FuType fu, EntryMask deps,
                                            std::uint64_t tag) {
  if (full()) {
    return std::nullopt;
  }
  // Retire/squash clear a producer's column across the array; a surviving
  // dep bit must therefore name a live row or the consumer could never
  // wake (the silent-forever-block this contract makes unreachable).
  STEERSIM_EXPECTS((deps.raw() & ~valid_.raw()) == 0);
  // Lowest free row; < num_entries() because the array is not full and
  // valid_ only ever holds bits below num_entries().
  const unsigned row =
      static_cast<unsigned>(std::countr_zero(~valid_.raw()));
  WakeupEntry& e = entries_[row];
  e.valid = true;
  e.scheduled = false;
  e.fu = fu;
  e.deps = deps;
  e.timer = 0;
  e.result_available = false;
  e.age = next_age_++;
  e.tag = tag;
  valid_.set(row);
  fu_rows_[fu_index(fu)].set(row);
  // Ages are assigned monotonically, so appending keeps oldest-first order.
  order_.push_back(row);
  ++ready_version_;
  ++stats_.inserts;
  return row;
}

EntryMask WakeupArray::dep_ready() const {
  EntryMask ready;
  // A result-available bit implies the producer row is valid (both clear
  // together in clear_entry), so "every dep's line high" is one word test.
  const std::uint64_t not_done = ~result_avail_.raw();
  std::uint64_t cand = (valid_ & ~scheduled_).raw();
  while (cand != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(cand));
    cand &= cand - 1;
    if ((entries_[i].deps.raw() & not_done) == 0) {
      ready.set(i);
    }
  }
  return ready;
}

EntryMask WakeupArray::resource_ready(
    const ResourceAvail& resource_available) const {
  EntryMask mask;
  for (unsigned t = 0; t < kNumFuTypes; ++t) {
    if (resource_available[t]) {
      mask = mask | fu_rows_[t];
    }
  }
  return mask & valid_ & ~scheduled_;
}

void WakeupArray::grant(unsigned idx, unsigned latency) {
  STEERSIM_EXPECTS(idx < num_entries());
  STEERSIM_EXPECTS(latency >= 1);
  STEERSIM_EXPECTS(valid_.test(idx) && !scheduled_.test(idx));
  WakeupEntry& e = entries_[idx];
  e.scheduled = true;
  // Count latency end-of-cycle ticks before asserting the available line;
  // a dependent's request stage then sees it exactly latency cycles after
  // this grant (back-to-back for single-cycle producers). This is the
  // paper's "set the timer to N-1, assert at a count of one" expressed
  // against our end-of-cycle tick.
  e.timer = latency;
  e.result_available = false;
  scheduled_.set(idx);
  counting_.set(idx);
  result_avail_.reset(idx);
  ++ready_version_;
  ++stats_.grants;
}

void WakeupArray::reschedule(unsigned idx) {
  STEERSIM_EXPECTS(idx < num_entries());
  STEERSIM_EXPECTS(valid_.test(idx));
  WakeupEntry& e = entries_[idx];
  e.scheduled = false;
  e.timer = 0;
  e.result_available = false;
  scheduled_.reset(idx);
  counting_.reset(idx);
  result_avail_.reset(idx);
  ++ready_version_;
  ++stats_.reschedules;
}

void WakeupArray::clear_entry(unsigned idx) {
  fu_rows_[fu_index(entries_[idx].fu)].reset(idx);
  valid_.reset(idx);
  scheduled_.reset(idx);
  result_avail_.reset(idx);
  counting_.reset(idx);
  // Clear the retiring producer's column across the surviving rows.
  std::uint64_t rows = valid_.raw();
  while (rows != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(rows));
    rows &= rows - 1;
    entries_[i].deps.reset(idx);
  }
  entries_[idx] = WakeupEntry{};
  // Remove from the incrementally maintained age order (shift; FixedVector
  // has no arbitrary erase).
  for (unsigned i = 0; i < order_.size(); ++i) {
    if (order_[i] == idx) {
      for (unsigned j = i + 1; j < order_.size(); ++j) {
        order_[j - 1] = order_[j];
      }
      order_.pop_back();
      break;
    }
  }
  ++ready_version_;
}

void WakeupArray::retire(unsigned idx) {
  STEERSIM_EXPECTS(idx < num_entries());
  STEERSIM_EXPECTS(valid_.test(idx));
  clear_entry(idx);
  ++stats_.retires;
}

void WakeupArray::squash(unsigned idx) {
  STEERSIM_EXPECTS(idx < num_entries());
  STEERSIM_EXPECTS(valid_.test(idx));
  clear_entry(idx);
  ++stats_.squashes;
}

void WakeupArray::tick() {
  std::uint64_t bits = counting_.raw();
  while (bits != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(bits));
    bits &= bits - 1;
    if (--entries_[i].timer == 0) {
      entries_[i].result_available = true;
      counting_.reset(i);
      result_avail_.set(i);
    }
  }
}

void WakeupArray::advance(std::uint64_t cycles) {
  if (cycles == 0) {
    return;
  }
  std::uint64_t bits = counting_.raw();
  while (bits != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(bits));
    bits &= bits - 1;
    WakeupEntry& e = entries_[i];
    STEERSIM_EXPECTS(e.timer >= cycles);
    e.timer -= static_cast<unsigned>(cycles);
    if (e.timer == 0) {
      e.result_available = true;
      counting_.reset(i);
      result_avail_.set(i);
    }
  }
}

unsigned WakeupArray::min_timer() const {
  unsigned min = 0;
  std::uint64_t bits = counting_.raw();
  while (bits != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(bits));
    bits &= bits - 1;
    if (min == 0 || entries_[i].timer < min) {
      min = entries_[i].timer;
    }
  }
  return min;
}

const WakeupEntry& WakeupArray::entry(unsigned idx) const {
  STEERSIM_EXPECTS(idx < num_entries());
  return entries_[idx];
}

}  // namespace steersim
