// Select stage: resolves contention when multiple wake-up entries request
// the same resource type (paper Sec. 4.1 notes the wake-up logic only
// raises requests; the scheduler must arbitrate). Grants are oldest-first,
// bounded per type by the number of idle unit instances this cycle.
#pragma once

#include <array>
#include <span>

#include "common/fixed_vector.hpp"
#include "sched/wakeup_array.hpp"

namespace steersim {

using GrantList = FixedVector<unsigned, kMaxWakeupEntries>;

/// `requests` — the request-execution vector (possibly masked further by
///              the caller, e.g. memory-ordering constraints);
/// `age_order` — valid rows, oldest first;
/// `free_units` — idle unit instances per type this cycle;
/// `max_grants` — issue-port bound (0 = limited only by units).
/// Returns granted rows (oldest-first).
GrantList select_oldest_first(const WakeupArray& array, EntryMask requests,
                              std::span<const unsigned> age_order,
                              const std::array<unsigned, kNumFuTypes>&
                                  free_units,
                              unsigned max_grants = 0);

}  // namespace steersim
