// Select-free wake-up array (paper Sec. 4.1, Figs. 5 and 6, after
// Brown/Stark/Patt, MICRO-34).
//
// Each entry holds a resource vector: one column per functional-unit type
// (which unit the instruction needs) and one column per array entry (whose
// results it needs). An entry requests execution when, for every column,
// "not required OR available" holds, ANDed with its not-yet-scheduled bit.
// Granted entries start a countdown timer of latency-1 cycles; the entry's
// result-available line asserts when the timer reaches zero (immediately
// for single-cycle instructions), which is exactly one cycle before a
// dependent can issue back-to-back through the forwarding network.
// Entries stay in the array until retirement, which clears the entry's
// column across all rows so later instructions never wait on a retired
// producer (they read the register file instead).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitset.hpp"
#include "isa/fu_type.hpp"

namespace steersim {

inline constexpr unsigned kMaxWakeupEntries = 32;

using EntryMask = SmallBitset<kMaxWakeupEntries>;
using ResourceAvail = std::array<bool, kNumFuTypes>;

struct WakeupEntry {
  bool valid = false;
  bool scheduled = false;
  FuType fu = FuType::kIntAlu;
  EntryMask deps;
  /// Result countdown; meaningful only while scheduled.
  unsigned timer = 0;
  bool result_available = false;
  /// Dispatch order, for oldest-first selection.
  std::uint64_t age = 0;
  /// Cross-reference into the register update unit.
  std::uint64_t tag = 0;
};

struct WakeupStats {
  std::uint64_t inserts = 0;
  std::uint64_t grants = 0;
  std::uint64_t reschedules = 0;
  std::uint64_t retires = 0;
  std::uint64_t squashes = 0;

  /// Metric-registry enumeration (docs/OBSERVABILITY.md).
  template <typename V>
  void visit_metrics(V&& visit) const {
    visit("inserts", static_cast<double>(inserts));
    visit("grants", static_cast<double>(grants));
    visit("reschedules", static_cast<double>(reschedules));
    visit("retires", static_cast<double>(retires));
    visit("squashes", static_cast<double>(squashes));
  }
};

class WakeupArray {
 public:
  explicit WakeupArray(unsigned num_entries);

  unsigned num_entries() const {
    return static_cast<unsigned>(entries_.size());
  }
  bool full() const;
  unsigned free_entries() const;

  /// Dispatches an instruction into a free row. `deps` marks the entry
  /// columns whose results must be available first. Returns the row index,
  /// or nullopt when the array is full.
  std::optional<unsigned> insert(FuType fu, EntryMask deps,
                                 std::uint64_t tag);

  /// Fig. 6: the request-execution vector, given the per-type resource
  /// availability lines (Eq. 1 outputs).
  EntryMask request_execution(const ResourceAvail& resource_available) const;

  /// Issue grant: sets the scheduled bit and arms the countdown timer with
  /// latency-1 (immediate result-available for single-cycle ops).
  void grant(unsigned idx, unsigned latency);

  /// De-asserts the scheduled bit so the entry requests execution again.
  void reschedule(unsigned idx);

  /// Retires the entry: clears its row and its column across the array.
  void retire(unsigned idx);

  /// Squash on misprediction: same clearing as retire, separate statistic.
  void squash(unsigned idx);

  /// End-of-cycle: advances countdown timers.
  void tick();

  const WakeupEntry& entry(unsigned idx) const;
  /// Valid rows in oldest-first order.
  std::vector<unsigned> age_order() const;
  /// Opcount of valid, not-yet-scheduled rows (the "ready" set the
  /// configuration manager inspects).
  EntryMask unscheduled() const;

  const WakeupStats& stats() const { return stats_; }

 private:
  void clear_entry(unsigned idx);

  std::vector<WakeupEntry> entries_;
  std::uint64_t next_age_ = 0;
  WakeupStats stats_;
};

}  // namespace steersim
