// Select-free wake-up array (paper Sec. 4.1, Figs. 5 and 6, after
// Brown/Stark/Patt, MICRO-34).
//
// Each entry holds a resource vector: one column per functional-unit type
// (which unit the instruction needs) and one column per array entry (whose
// results it needs). An entry requests execution when, for every column,
// "not required OR available" holds, ANDed with its not-yet-scheduled bit.
// Granted entries start a countdown timer of latency-1 cycles; the entry's
// result-available line asserts when the timer reaches zero (immediately
// for single-cycle instructions), which is exactly one cycle before a
// dependent can issue back-to-back through the forwarding network.
// Entries stay in the array until retirement, which clears the entry's
// column across all rows so later instructions never wait on a retired
// producer (they read the register file instead).
//
// Storage is column-major: the valid, scheduled, result-available, and
// per-FU-type required columns each live in one machine word (EntryMask),
// so the Fig. 6 request network evaluates in O(rows) word operations
// instead of the O(rows²) per-bit scan a row-major layout needs — a row's
// dependences are satisfied exactly when (deps & ~result_available) == 0.
// Per-row payload (deps word, timer, age, tag) stays row-indexed for the
// select stage and observers. tests/wakeup_scalar_ref.hpp preserves the
// original row-major kernel as a cosimulation oracle.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bitset.hpp"
#include "common/fixed_vector.hpp"
#include "isa/fu_type.hpp"

namespace steersim {

inline constexpr unsigned kMaxWakeupEntries = 32;

using EntryMask = SmallBitset<kMaxWakeupEntries>;
using ResourceAvail = std::array<bool, kNumFuTypes>;

struct WakeupEntry {
  bool valid = false;
  bool scheduled = false;
  FuType fu = FuType::kIntAlu;
  EntryMask deps;
  /// Result countdown; meaningful only while scheduled.
  unsigned timer = 0;
  bool result_available = false;
  /// Dispatch order, for oldest-first selection.
  std::uint64_t age = 0;
  /// Cross-reference into the register update unit.
  std::uint64_t tag = 0;
};

struct WakeupStats {
  std::uint64_t inserts = 0;
  std::uint64_t grants = 0;
  std::uint64_t reschedules = 0;
  std::uint64_t retires = 0;
  std::uint64_t squashes = 0;

  /// Metric-registry enumeration (docs/OBSERVABILITY.md).
  template <typename V>
  void visit_metrics(V&& visit) const {
    visit("inserts", static_cast<double>(inserts));
    visit("grants", static_cast<double>(grants));
    visit("reschedules", static_cast<double>(reschedules));
    visit("retires", static_cast<double>(retires));
    visit("squashes", static_cast<double>(squashes));
  }
};

class WakeupArray {
 public:
  explicit WakeupArray(unsigned num_entries);

  unsigned num_entries() const {
    return static_cast<unsigned>(entries_.size());
  }
  bool full() const { return valid_.count() == num_entries(); }
  unsigned free_entries() const { return num_entries() - valid_.count(); }

  /// Dispatches an instruction into a free row. `deps` marks the entry
  /// columns whose results must be available first; every marked column
  /// must refer to a currently valid row (retire/squash clear a row's
  /// column across the array, so a dep on an invalid row could never be
  /// satisfied — it would block the consumer forever).
  std::optional<unsigned> insert(FuType fu, EntryMask deps,
                                 std::uint64_t tag);

  /// Rows whose result-required columns are all satisfied (valid, not yet
  /// scheduled, every needed producer's available line high) — the request
  /// vector before resource gating.
  EntryMask dep_ready() const;

  /// Rows whose execution-unit-required column is high this cycle, given
  /// the per-type availability lines (Eq. 1 outputs).
  EntryMask resource_ready(const ResourceAvail& resource_available) const;

  /// Fig. 6: the request-execution vector — dependence-ready AND
  /// resource-ready.
  EntryMask request_execution(const ResourceAvail& resource_available) const {
    return dep_ready() & resource_ready(resource_available);
  }

  /// Issue grant: sets the scheduled bit and arms the countdown timer with
  /// latency-1 (immediate result-available for single-cycle ops).
  void grant(unsigned idx, unsigned latency);

  /// De-asserts the scheduled bit so the entry requests execution again.
  void reschedule(unsigned idx);

  /// Retires the entry: clears its row and its column across the array.
  void retire(unsigned idx);

  /// Squash on misprediction: same clearing as retire, separate statistic.
  void squash(unsigned idx);

  /// End-of-cycle: advances countdown timers.
  void tick();

  /// `cycles` back-to-back tick() calls at once (event-driven skip-ahead).
  /// Requires cycles <= min_timer(): no result line may assert before the
  /// last skipped tick, or a dependent could have woken mid-window.
  void advance(std::uint64_t cycles);

  /// Smallest live countdown (0 when no timer is running): the next tick
  /// count at which a result-available line can assert.
  unsigned min_timer() const;

  const WakeupEntry& entry(unsigned idx) const;
  /// Valid rows in oldest-first order. The order is maintained
  /// incrementally (ages are assigned monotonically, so insert appends and
  /// retire/squash remove); the span stays valid until the next insert,
  /// retire, or squash.
  std::span<const unsigned> age_order() const {
    return {order_.begin(), order_.end()};
  }
  /// Opcount of valid, not-yet-scheduled rows (the "ready" set the
  /// configuration manager inspects).
  EntryMask unscheduled() const { return valid_ & ~scheduled_; }

  /// Monotonic counter bumped whenever the ready set (valid, unscheduled
  /// rows and their order) changes: insert, grant, reschedule, retire,
  /// squash. tick() never bumps it — timers do not change which rows are
  /// ready. Lets the steering path cache its ready-ops snapshot.
  std::uint64_t ready_version() const { return ready_version_; }

  const WakeupStats& stats() const { return stats_; }

 private:
  void clear_entry(unsigned idx);

  /// Row payload, kept in sync with the column words (the masks are
  /// authoritative for the hot queries; the per-entry bools exist for the
  /// observer/test API).
  std::vector<WakeupEntry> entries_;
  EntryMask valid_;
  EntryMask scheduled_;
  EntryMask result_avail_;
  /// Scheduled rows whose timer is still counting down.
  EntryMask counting_;
  /// Execution-unit-required columns: rows per FU type (one-hot per row).
  std::array<EntryMask, kNumFuTypes> fu_rows_{};
  FixedVector<unsigned, kMaxWakeupEntries> order_;
  std::uint64_t next_age_ = 0;
  std::uint64_t ready_version_ = 0;
  WakeupStats stats_;
};

}  // namespace steersim
