#include "sched/select_logic.hpp"

namespace steersim {

GrantList select_oldest_first(const WakeupArray& array, EntryMask requests,
                              std::span<const unsigned> age_order,
                              const std::array<unsigned, kNumFuTypes>&
                                  free_units,
                              unsigned max_grants) {
  GrantList grants;
  std::array<unsigned, kNumFuTypes> budget = free_units;
  for (const unsigned idx : age_order) {
    if (max_grants != 0 && grants.size() >= max_grants) {
      break;
    }
    if (!requests.test(idx)) {
      continue;
    }
    const unsigned t = fu_index(array.entry(idx).fu);
    if (budget[t] == 0) {
      continue;
    }
    --budget[t];
    grants.push_back(idx);
    if (grants.full()) {
      break;
    }
  }
  return grants;
}

}  // namespace steersim
