#include "frontend/fetch_unit.hpp"

#include "common/contracts.hpp"

namespace steersim {

FetchUnit::FetchUnit(const InstructionMemory& imem, TraceCache* trace_cache,
                     BranchPredictor& predictor, unsigned width)
    : imem_(imem), trace_cache_(trace_cache), predictor_(predictor),
      width_(width) {
  STEERSIM_EXPECTS(width >= 1 && width <= kMaxFetchWidth);
}

std::uint32_t FetchUnit::predict_next(std::uint32_t pc,
                                      const Instruction& inst) {
  const OpInfo& info = op_info(inst.op);
  if (info.is_branch) {
    const auto target = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(pc) + inst.imm);
    return predictor_.predict(pc, target) ? target : pc + 1;
  }
  if (inst.op == Opcode::kJ || inst.op == Opcode::kJal) {
    if (inst.op == Opcode::kJal) {
      if (ras_.full()) {
        ras_.erase_front(1);
      }
      ras_.push_back(pc + 1);
    }
    return static_cast<std::uint32_t>(static_cast<std::int64_t>(pc) +
                                      inst.imm);
  }
  if (inst.op == Opcode::kJr) {
    if (!ras_.empty()) {
      const std::uint32_t target = ras_.back();
      ras_.pop_back();
      return target;
    }
    return pc + 1;  // no prediction available; will mispredict
  }
  return pc + 1;
}

void FetchUnit::fetch_group(FetchGroup& out) {
  STEERSIM_EXPECTS(out.empty());

  // Resume or start a trace-cache stream.
  if (!streaming_trace_ && trace_cache_ != nullptr && imem_.contains(pc_)) {
    if (const TraceLine* line = trace_cache_->lookup(pc_)) {
      active_trace_ = *line;
      streaming_trace_ = true;
      trace_offset_ = 0;
    }
  }

  if (streaming_trace_) {
    while (out.size() < width_ && trace_offset_ < active_trace_.slots.size()) {
      const TraceSlot& slot = active_trace_.slots[trace_offset_++];
      out.push_back(FetchedInst{slot.inst, slot.pc, slot.next_pc, true});
      pc_ = slot.next_pc;
      ++stats_.fetched;
      ++stats_.trace_fetched;
      if (op_info(slot.inst.op).is_halt) {
        break;
      }
    }
    if (trace_offset_ >= active_trace_.slots.size()) {
      streaming_trace_ = false;
      trace_offset_ = 0;
    }
    return;
  }

  // Conventional fetch: sequential until a predicted-taken transfer.
  while (out.size() < width_ && imem_.contains(pc_)) {
    const std::uint32_t cur_pc = pc_;
    const Instruction inst = decode(imem_.fetch(cur_pc));
    const std::uint32_t next = predict_next(cur_pc, inst);
    out.push_back(FetchedInst{inst, cur_pc, next, false});
    pc_ = next;
    ++stats_.fetched;
    if (op_info(inst.op).is_halt || next != cur_pc + 1) {
      break;  // group ends at a (predicted-)taken transfer
    }
  }
}

void FetchUnit::redirect(std::uint32_t pc) {
  pc_ = pc;
  streaming_trace_ = false;
  trace_offset_ = 0;
  ++stats_.redirects;
}

}  // namespace steersim
