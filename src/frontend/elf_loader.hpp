// Minimal static ELF32 loader for the RV32 front end.
//
// Scope (DESIGN.md §RV32 front end): little-endian ELF32 ET_EXEC images
// for EM_RISCV, program headers only. No section headers, no relocations,
// no dynamic linking, no TLS. This is exactly enough to load the committed
// fixture binaries and statically linked bare-metal programs whose PT_LOAD
// segments are self-contained.
//
// Malformed input is never undefined behaviour: every header field is
// bounds-checked against the byte image and violations raise ElfError with
// a typed kind (truncated file, bad magic, unsupported feature, broken
// segment layout). The loader itself never reads past the input span.
//
// Memory model mapping:
//   * Exactly one PT_LOAD segment must be executable — that is the .text
//     image handed to rv32::translate (so code addresses live in the
//     translated index space, see isa/rv32.hpp).
//   * Non-executable PT_LOAD segments become the initial data-memory
//     image: a flat byte image from address 0 through the highest segment
//     end, packed into the 64-bit little-endian cells Program::data uses.
//     p_memsz beyond p_filesz (BSS) is zero-filled.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace steersim::elf {

/// Typed load failure; message always names the offending field.
class ElfError : public std::runtime_error {
 public:
  enum class Kind {
    kTruncated,    ///< a header or segment points past the end of the file
    kBadMagic,     ///< not an ELF file at all
    kUnsupported,  ///< valid ELF, but not little-endian RV32 ET_EXEC
    kBadLayout,    ///< overlapping/misaligned segments, no text, bad entry
  };

  ElfError(Kind kind, const std::string& message)
      : std::runtime_error("elf: " + message), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// One PT_LOAD segment, file bytes already zero-padded to p_memsz.
struct ElfSegment {
  std::uint32_t vaddr = 0;
  std::vector<std::uint8_t> bytes;  ///< p_memsz bytes (BSS zero-filled)
  bool executable = false;
};

/// Parsed image: the entry point plus every PT_LOAD segment.
struct ElfFile {
  std::uint32_t entry = 0;
  std::vector<ElfSegment> segments;
};

/// Parses headers and extracts PT_LOAD segments. Throws ElfError; never
/// reads outside `image`.
ElfFile parse_elf32(std::span<const std::uint8_t> image);

/// Parses, validates the segment layout (exactly one executable segment,
/// no overlaps, data below kMaxDataImageBytes) and translates the text
/// through the RV32 front end into a runnable Program named `name`.
/// Throws ElfError for image problems and rv32::Rv32Error for
/// untranslatable instructions.
Program load_elf_program(std::span<const std::uint8_t> image,
                         const std::string& name);

/// Ceiling on the flat data image an ELF may request (16 MiB): a sane
/// bound so a corrupt header cannot demand gigabytes.
inline constexpr std::uint64_t kMaxDataImageBytes = 16ull << 20;

/// Deterministic ELF32 image builder — how the committed fixtures are
/// produced and how loader tests construct well-formed and malformed
/// variants without a cross-toolchain.
class ElfBuilder {
 public:
  ElfBuilder& entry(std::uint32_t addr) {
    entry_ = addr;
    return *this;
  }
  /// Adds a PT_LOAD segment. `memsz_extra` appends that many zero bytes
  /// of BSS beyond the file payload.
  ElfBuilder& segment(std::uint32_t vaddr, std::vector<std::uint8_t> bytes,
                      bool executable, std::uint32_t memsz_extra = 0);
  /// Convenience: a text segment from instruction words (little-endian).
  ElfBuilder& text(std::uint32_t vaddr,
                   std::span<const std::uint32_t> words);

  std::vector<std::uint8_t> build() const;

 private:
  struct Seg {
    std::uint32_t vaddr;
    std::vector<std::uint8_t> bytes;
    bool executable;
    std::uint32_t memsz_extra;
  };
  std::uint32_t entry_ = 0;
  std::vector<Seg> segments_;
};

}  // namespace steersim::elf
