#include "frontend/trace_cache.hpp"

#include "common/contracts.hpp"

namespace steersim {

TraceCache::TraceCache(unsigned lines, unsigned max_trace_len)
    : lines_(lines), max_trace_len_(max_trace_len) {
  STEERSIM_EXPECTS(lines >= 1);
  STEERSIM_EXPECTS(max_trace_len >= 1);
  fill_.reserve(max_trace_len);
}

const TraceLine* TraceCache::lookup(std::uint32_t pc) {
  ++stats_.lookups;
  const TraceLine* line = peek(pc);
  if (line != nullptr) {
    ++stats_.hits;
  }
  return line;
}

const TraceLine* TraceCache::peek(std::uint32_t pc) const {
  const TraceLine& line = lines_[pc % lines_.size()];
  if (line.valid && line.start_pc == pc) {
    return &line;
  }
  return nullptr;
}

void TraceCache::observe_retired(std::uint32_t pc, const Instruction& inst,
                                 std::uint32_t next_pc) {
  // A discontinuity between the fill buffer's expectation and the observed
  // PC means an intervening squash; restart the trace.
  if (!fill_.empty() && fill_.back().next_pc != pc) {
    fill_.clear();
    waiting_for_target_ = true;
  }
  // Traces begin at taken-transfer targets: that is where the fetch unit
  // looks them up (a conventional fetch group ends at a predicted-taken
  // transfer, so the next lookup PC is the transfer's target). The very
  // first committed instruction (program entry) also qualifies.
  if (fill_.empty() && waiting_for_target_) {
    const bool at_target =
        !have_prev_ || (prev_next_ == pc && prev_next_ != prev_pc_ + 1);
    if (!at_target) {
      prev_pc_ = pc;
      prev_next_ = next_pc;
      have_prev_ = true;
      return;
    }
    waiting_for_target_ = false;
  }
  prev_pc_ = pc;
  prev_next_ = next_pc;
  have_prev_ = true;
  fill_.push_back(TraceSlot{inst, pc, next_pc});
  if (fill_.size() >= max_trace_len_ || op_info(inst.op).is_halt) {
    install();
  }
}

void TraceCache::flush_fill_buffer() {
  if (!fill_.empty()) {
    install();
  }
}

void TraceCache::install() {
  STEERSIM_EXPECTS(!fill_.empty());
  TraceLine& line = lines_[fill_.front().pc % lines_.size()];
  line.valid = true;
  line.start_pc = fill_.front().pc;
  line.slots = fill_;
  // Pre-decode annotation: unit requirements of the whole trace.
  line.requirements = FuCounts{};
  for (const auto& slot : line.slots) {
    auto& count = line.requirements[fu_index(fu_type_of(slot.inst.op))];
    if (count < 7) {
      ++count;
    }
  }
  fill_.clear();
  waiting_for_target_ = true;
  ++stats_.installs;
}

void TraceCache::clear() {
  for (auto& line : lines_) {
    line.valid = false;
    line.slots.clear();
  }
  fill_.clear();
  waiting_for_target_ = false;
  have_prev_ = false;
}

}  // namespace steersim
