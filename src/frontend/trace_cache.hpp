// Trace cache (Fig. 1 fixed module).
//
// Holds traces of decoded instructions along the executed path so the fetch
// unit can supply instructions *across taken branches* in a single cycle —
// the property the steering architecture (and [7]) relies on to keep the
// 7-entry instruction queue full. Traces are built at retirement from the
// committed path and installed into a direct-mapped line array keyed by the
// trace's start PC.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.hpp"

namespace steersim {

/// One instruction inside a trace: decoded form, its PC, and the committed
/// next PC (embeds the branch direction the trace followed).
struct TraceSlot {
  Instruction inst;
  std::uint32_t pc = 0;
  std::uint32_t next_pc = 0;
};

struct TraceLine {
  bool valid = false;
  std::uint32_t start_pc = 0;
  std::vector<TraceSlot> slots;
  /// Pre-decoded unit requirements of the whole trace (3-bit saturating
  /// counts per type), computed at install — the [7]-style trace-cache
  /// pre-decode annotation that enables lookahead steering.
  FuCounts requirements{};
};

struct TraceCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t installs = 0;
  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }

  /// Metric-registry enumeration (docs/OBSERVABILITY.md).
  template <typename V>
  void visit_metrics(V&& visit) const {
    visit("lookups", static_cast<double>(lookups));
    visit("hits", static_cast<double>(hits));
    visit("installs", static_cast<double>(installs));
    visit("hit_rate", hit_rate(), true);
  }
};

class TraceCache {
 public:
  /// `lines` must be >= 1; `max_trace_len` bounds slots per line.
  TraceCache(unsigned lines, unsigned max_trace_len);

  /// Returns the line starting exactly at `pc`, or nullptr on miss.
  const TraceLine* lookup(std::uint32_t pc);

  /// Side-effect-free lookup (no statistics), for the configuration
  /// manager's lookahead probe.
  const TraceLine* peek(std::uint32_t pc) const;

  /// Feeds one committed instruction (in retirement order). `next_pc` is
  /// the committed successor PC. Builds and installs traces internally.
  void observe_retired(std::uint32_t pc, const Instruction& inst,
                       std::uint32_t next_pc);

  /// Flushes the fill buffer (e.g. at halt) installing any partial trace.
  void flush_fill_buffer();

  void clear();

  const TraceCacheStats& stats() const { return stats_; }
  unsigned lines() const { return static_cast<unsigned>(lines_.size()); }
  unsigned max_trace_len() const { return max_trace_len_; }

 private:
  void install();

  std::vector<TraceLine> lines_;
  unsigned max_trace_len_;
  std::vector<TraceSlot> fill_;
  /// Fills only begin at taken-transfer targets (where the fetch unit will
  /// actually look traces up after a group break); between an install and
  /// the next such target the builder idles.
  bool waiting_for_target_ = false;
  std::uint32_t prev_pc_ = 0;
  std::uint32_t prev_next_ = 0;
  bool have_prev_ = false;
  TraceCacheStats stats_;
};

}  // namespace steersim
