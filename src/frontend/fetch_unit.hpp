// Instruction fetch unit (Fig. 1 fixed module).
//
// Each cycle delivers a fetch group of up to `width` instructions along the
// predicted path. A group sourced from instruction memory ends at the first
// predicted-taken control transfer (a conventional single-block fetch);
// a group sourced from the trace cache may cross taken branches, following
// the committed next-PC chain embedded in the trace. An 8-entry return
// address stack predicts `jr` targets for call/return pairs.
#pragma once

#include <cstdint>

#include "common/fixed_vector.hpp"
#include "frontend/branch_predictor.hpp"
#include "frontend/trace_cache.hpp"
#include "memory/instruction_memory.hpp"

namespace steersim {

inline constexpr unsigned kMaxFetchWidth = 8;

struct FetchedInst {
  Instruction inst;
  std::uint32_t pc = 0;
  /// The PC the front end will fetch next (the prediction).
  std::uint32_t predicted_next = 0;
  bool from_trace = false;
};

using FetchGroup = FixedVector<FetchedInst, kMaxFetchWidth>;

struct FetchStats {
  std::uint64_t fetched = 0;
  std::uint64_t trace_fetched = 0;
  std::uint64_t redirects = 0;

  /// Metric-registry enumeration (docs/OBSERVABILITY.md).
  template <typename V>
  void visit_metrics(V&& visit) const {
    visit("fetched", static_cast<double>(fetched));
    visit("trace_fetched", static_cast<double>(trace_fetched));
    visit("redirects", static_cast<double>(redirects));
  }
};

class FetchUnit {
 public:
  /// `trace_cache` may be nullptr to model a machine without one.
  FetchUnit(const InstructionMemory& imem, TraceCache* trace_cache,
            BranchPredictor& predictor, unsigned width);

  /// Appends this cycle's fetch group to `out` (which must be empty).
  void fetch_group(FetchGroup& out);

  /// Redirects fetch after a misprediction; abandons any in-flight trace.
  void redirect(std::uint32_t pc);

  std::uint32_t pc() const { return pc_; }
  const FetchStats& stats() const { return stats_; }

 private:
  /// Predicted successor of the instruction at `pc`; maintains the RAS.
  std::uint32_t predict_next(std::uint32_t pc, const Instruction& inst);

  const InstructionMemory& imem_;
  TraceCache* trace_cache_;
  BranchPredictor& predictor_;
  unsigned width_;
  std::uint32_t pc_ = 0;

  // Return address stack.
  FixedVector<std::uint32_t, 8> ras_;

  // Trace being streamed across cycles. A copy, not a pointer: the cache
  // may overwrite the line (new install, same index) mid-stream.
  TraceLine active_trace_;
  bool streaming_trace_ = false;
  std::size_t trace_offset_ = 0;

  FetchStats stats_;
};

}  // namespace steersim
